(* Allocation-trace tooling:

     hoard_trace generate --ops 10000 --threads 4 --out t.trace
     hoard_trace validate t.trace
     hoard_trace replay t.trace --allocator hoard --procs 4
     hoard_trace bench t.trace            # compare all allocators
     hoard_trace profile t.trace --perfetto t.json --metrics m.json
     hoard_trace check-json m.json --expect metrics
*)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

let load path =
  match Trace.of_string (read_file path) with
  | Ok t -> t
  | Error m ->
    Printf.eprintf "%s: %s\n" path m;
    exit 1

let factory_of ?(sets = []) name =
  if name = "help" then begin
    print_endline "allocators:";
    print_endline (Allocators.help ());
    exit 0
  end;
  match Allocators.find name with
  | None ->
    Printf.eprintf "unknown allocator %S; known: %s\n" name (String.concat ", " (Allocators.labels ()));
    exit 1
  | Some f when sets = [] -> f
  | Some _ ->
    (match Allocators.with_overrides (fun cfg -> Config_cli.apply cfg sets) name with
     | Some f -> f
     | None ->
       Printf.eprintf "--set: allocator %S has no config knobs\n" name;
       exit 1)

let replay_trace trace factory ~procs =
  let sim = Sim.create ~nprocs:procs () in
  let a = factory.Alloc_intf.instantiate (Sim.platform sim) in
  Trace.replay_sim trace sim a ~nthreads:procs;
  Sim.run sim;
  a.Alloc_intf.check ();
  (Sim.total_cycles sim, a.Alloc_intf.stats (), Cache.total_invalidations (Sim.cache sim))

let generate_cmd =
  let doc = "Generate a synthetic allocation trace." in
  let ops = Arg.(value & opt int 10_000 & info [ "ops" ] ~doc:"Operation count.") in
  let threads = Arg.(value & opt int 4 & info [ "threads" ] ~doc:"Logical threads.") in
  let live = Arg.(value & opt int 50 & info [ "live" ] ~doc:"Live objects per thread (target).") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.") in
  let min_size = Arg.(value & opt int 8 & info [ "min-size" ] ~doc:"Minimum object size.") in
  let max_size = Arg.(value & opt int 1024 & info [ "max-size" ] ~doc:"Maximum object size.") in
  let out = Arg.(required & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Output file.") in
  let run ops threads live seed min_size max_size out =
    let t = Trace.generate ~seed ~ops ~threads ~live_target:live ~size_dist:(Trace.Uniform (min_size, max_size)) () in
    write_file out (Trace.to_string t);
    Printf.printf "wrote %d ops (peak live %d bytes) to %s\n" (Trace.length t) (Trace.max_live_bytes t) out
  in
  Cmd.v (Cmd.info "generate" ~doc)
    Term.(const run $ ops $ threads $ live $ seed $ min_size $ max_size $ out)

let file_arg = Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE" ~doc:"Trace file.")

let validate_cmd =
  let doc = "Check a trace file for well-formedness." in
  let run path =
    let t = load path in
    match Trace.validate t with
    | Ok () ->
      Printf.printf "%s: %d ops, peak live %d bytes, %d objects leaked at end\n" path (Trace.length t)
        (Trace.max_live_bytes t)
        (List.length (Trace.live_at_end t))
    | Error m ->
      Printf.eprintf "%s: INVALID: %s\n" path m;
      exit 1
  in
  Cmd.v (Cmd.info "validate" ~doc) Term.(const run $ file_arg)

let procs_arg = Arg.(value & opt int 4 & info [ "procs" ] ~doc:"Simulated processors.")

let replay_cmd =
  let doc = "Replay a trace against one allocator on the simulator." in
  let alloc = Arg.(value & opt string "hoard" & info [ "allocator"; "a" ] ~doc:"Allocator to drive.") in
  let run path alloc procs sets =
    let t = load path in
    let cycles, stats, invals = replay_trace t (factory_of ~sets alloc) ~procs in
    Printf.printf "%s on %d procs: %d cycles, frag %.2f, %d invalidations\n" alloc procs cycles
      (Alloc_stats.fragmentation stats) invals;
    Format.printf "stats: %a@." Alloc_stats.pp_snapshot stats
  in
  Cmd.v (Cmd.info "replay" ~doc) Term.(const run $ file_arg $ alloc $ procs_arg $ Config_cli.set_opt)

let profile_cmd =
  let doc = "Replay a trace against instrumented hoard: contention, heatmap, Perfetto/metrics export." in
  let perfetto =
    Arg.(value & opt (some string) None & info [ "perfetto" ] ~docv:"FILE" ~doc:"Write a Perfetto/Chrome trace-event JSON file.")
  in
  let metrics =
    Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc:"Write the metrics registry as JSON.")
  in
  let run path procs perfetto metrics sets =
    let t = load path in
    let config = Config_cli.apply (Hoard_config.make ()) sets in
    let b =
      Obs_run.run_spawned ~config ~name:(Filename.basename path) ~nprocs:procs (fun sim _pf a ->
          Trace.replay_sim t sim a ~nthreads:procs)
    in
    Printf.printf "%s on %d procs: %d cycles, %d events recorded (%d dropped)\n" path procs b.Obs_run.b_cycles
      (Obs.total_recorded b.Obs_run.b_obs) (Obs.total_dropped b.Obs_run.b_obs);
    Format.printf "stats: %a@." Alloc_stats.pp_snapshot b.Obs_run.b_stats;
    Table.print (Obs_run.contention_table b);
    print_string b.Obs_run.b_heatmap;
    (match perfetto with
     | Some f ->
       write_file f b.Obs_run.b_perfetto;
       Printf.printf "wrote Perfetto trace to %s (open at https://ui.perfetto.dev)\n" f
     | None -> ());
    match metrics with
    | Some f ->
      write_file f (Obs_run.metrics_json b);
      Printf.printf "wrote metrics to %s\n" f
    | None -> ()
  in
  Cmd.v (Cmd.info "profile" ~doc)
    Term.(const run $ file_arg $ procs_arg $ perfetto $ metrics $ Config_cli.set_opt)

(* Structural validation of the two JSON artefacts the observability layer
   emits, plus metric comparison against a baseline export, for CI smoke
   checks (no external JSON tooling in the image). *)
let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  n = 0 || at 0

(* Sum of the values of every metric whose name starts with [prefix] and
   whose labels render to something containing [label_contains]. *)
let sum_metrics j ~prefix ~label_contains =
  match Option.bind (Json_lite.member "metrics" j) Json_lite.to_list with
  | None -> None
  | Some ms ->
    Some
      (List.fold_left
         (fun acc m ->
           let name_ok =
             match Option.bind (Json_lite.member "name" m) Json_lite.to_string with
             | Some n -> String.starts_with ~prefix n
             | None -> false
           in
           let label_ok =
             match label_contains with
             | None -> true
             | Some sub ->
               (match Json_lite.member "labels" m with
                | Some (Json_lite.Obj kvs) ->
                  List.exists
                    (fun (k, v) ->
                      match Json_lite.to_string v with
                      | Some s -> contains ~sub (k ^ "=" ^ s)
                      | None -> false)
                    kvs
                | _ -> false)
           in
           if name_ok && label_ok then
             match Option.bind (Json_lite.member "value" m) Json_lite.to_float with
             | Some v -> acc +. v
             | None -> acc
           else acc)
         0.0 ms)

let check_json_cmd =
  let doc = "Validate an emitted JSON artefact (Perfetto trace or metrics export)." in
  let expect =
    Arg.(
      value
      & opt (enum [ ("trace", `Trace); ("metrics", `Metrics); ("any", `Any) ]) `Any
      & info [ "expect" ] ~doc:"Expected shape: $(b,trace), $(b,metrics) or $(b,any) (parse only).")
  in
  let baseline =
    Arg.(
      value
      & opt (some file) None
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:
            "A second metrics export to compare against: sum the metrics selected by $(b,--sum-prefix) \
             and $(b,--label-contains) in both files and fail unless FILE's sum stays within \
             $(b,--max-ratio) times the baseline's.")
  in
  let sum_prefix =
    Arg.(
      value
      & opt (some string) None
      & info [ "sum-prefix" ] ~docv:"STR" ~doc:"Metric-name prefix to sum (e.g. $(b,lock.acquisitions)).")
  in
  let label_contains =
    Arg.(
      value
      & opt (some string) None
      & info [ "label-contains" ] ~docv:"STR"
          ~doc:"Only sum metrics one of whose rendered $(i,key=value) labels contains STR.")
  in
  let max_ratio =
    Arg.(value & opt float 1.0 & info [ "max-ratio" ] ~docv:"R" ~doc:"Largest acceptable FILE/baseline sum ratio.")
  in
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"JSON file.") in
  let fail fmt = Printf.ksprintf (fun m -> Printf.eprintf "%s\n" m; exit 1) fmt in
  let run path expect baseline sum_prefix label_contains max_ratio =
    match Json_lite.parse (read_file path) with
    | Error m -> fail "%s: invalid JSON: %s" path m
    | Ok j ->
      (match expect with
       | `Any -> Printf.printf "%s: valid JSON\n" path
       | `Trace ->
         (match Option.bind (Json_lite.member "traceEvents" j) Json_lite.to_list with
          | None -> fail "%s: no traceEvents array" path
          | Some events ->
            List.iteri
              (fun i e ->
                match (Json_lite.member "ph" e, Json_lite.member "pid" e) with
                | Some (Json_lite.Str _), Some (Json_lite.Num _) -> ()
                | _ -> fail "%s: traceEvents[%d] lacks ph/pid" path i)
              events;
            Printf.printf "%s: valid trace JSON, %d events\n" path (List.length events))
       | `Metrics ->
         (match
            ( Option.bind (Json_lite.member "run" j) (Json_lite.member "cycles"),
              Option.bind (Json_lite.member "metrics" j) Json_lite.to_list )
          with
          | Some (Json_lite.Num _), Some ms ->
            List.iteri
              (fun i m ->
                match (Json_lite.member "name" m, Json_lite.member "value" m) with
                | Some (Json_lite.Str _), Some _ -> ()
                | _ -> fail "%s: metrics[%d] lacks name/value" path i)
              ms;
            Printf.printf "%s: valid metrics JSON, %d metrics\n" path (List.length ms)
          | _ -> fail "%s: missing run.cycles or metrics array" path));
      (match (baseline, sum_prefix) with
       | None, _ -> ()
       | Some _, None -> fail "--baseline needs --sum-prefix"
       | Some bpath, Some prefix ->
         let base_j =
           match Json_lite.parse (read_file bpath) with
           | Ok j -> j
           | Error m -> fail "%s: invalid JSON: %s" bpath m
         in
         let sum what j' =
           match sum_metrics j' ~prefix ~label_contains with
           | Some s -> s
           | None -> fail "%s: no metrics array to sum" what
         in
         let cur = sum path j and base = sum bpath base_j in
         let ratio = if base = 0.0 then if cur = 0.0 then 0.0 else infinity else cur /. base in
         let selector =
           prefix
           ^
           match label_contains with
           | Some s -> Printf.sprintf "{%s}" s
           | None -> ""
         in
         Printf.printf "sum(%s): %.0f vs baseline %.0f (ratio %.3f, max %.3f)\n" selector cur base ratio
           max_ratio;
         if ratio > max_ratio then
           fail "%s: sum(%s) = %.0f exceeds %.3f x baseline %.0f" path selector cur max_ratio base)
  in
  Cmd.v (Cmd.info "check-json" ~doc)
    Term.(const run $ file $ expect $ baseline $ sum_prefix $ label_contains $ max_ratio)

let bench_cmd =
  let doc = "Replay a trace against every allocator and compare." in
  let run path procs sets =
    let t = load path in
    let tbl =
      Table.create ~title:(Printf.sprintf "%s on %d processors" path procs)
        ~columns:
          [
            ("allocator", Table.Left);
            ("cycles", Table.Right);
            ("frag", Table.Right);
            ("invalidations", Table.Right);
            ("os maps", Table.Right);
          ]
    in
    List.iter
      (fun f ->
        let f =
          if sets = [] then f
          else
            Option.value
              (Allocators.with_overrides
                 (fun cfg -> Config_cli.apply cfg sets)
                 f.Alloc_intf.label)
              ~default:f
        in
        let cycles, stats, invals = replay_trace t f ~procs in
        Table.add_row tbl
          [
            f.Alloc_intf.label;
            string_of_int cycles;
            Table.cell_float (Alloc_stats.fragmentation stats);
            string_of_int invals;
            string_of_int stats.Alloc_stats.os_maps;
          ])
      (Allocators.all ());
    Table.print tbl
  in
  Cmd.v (Cmd.info "bench" ~doc) Term.(const run $ file_arg $ procs_arg $ Config_cli.set_opt)

let () =
  let doc = "Allocation-trace tooling for the Hoard reproduction." in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "hoard_trace" ~version:"1.0" ~doc)
          [ generate_cmd; validate_cmd; replay_cmd; bench_cmd; profile_cmd; check_json_cmd ]))
