(* CLI for the Hoard reproduction: list experiments, run one or all, at
   quick or full scale, as ASCII tables or CSV.

     hoard_bench list
     hoard_bench run fig_threadtest --full --procs 1,2,4,8,14
     hoard_bench all --quick --csv
*)

open Cmdliner

let scale_of_flag full = if full then Experiments.Full else Experiments.Quick

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

let parse_procs = function
  | None -> None
  | Some s ->
    let parts = String.split_on_char ',' s in
    Some
      (List.map
         (fun p ->
           match int_of_string_opt (String.trim p) with
           | Some n when n >= 1 -> n
           | _ -> failwith (Printf.sprintf "bad processor count %S" p))
         parts)

let print_output ~csv (out : Experiments.output) =
  List.iter
    (fun tbl ->
      if csv then print_string (Table.to_csv tbl)
      else begin
        Table.print tbl;
        print_newline ()
      end)
    out.Experiments.tables;
  match out.Experiments.plot with
  | Some plot when not csv -> print_string plot
  | _ -> ()

let list_cmd =
  let doc = "List the registered experiments (one per paper table/figure)." in
  let run () =
    let tbl =
      Table.create ~title:"Experiments"
        ~columns:[ ("id", Table.Left); ("paper item", Table.Left); ("description", Table.Left) ]
    in
    List.iter
      (fun e -> Table.add_row tbl [ e.Experiments.id; e.Experiments.paper_ref; e.Experiments.describe ])
      (Experiments.all ());
    Table.print tbl
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let full_flag =
  Arg.(value & flag & info [ "full" ] ~doc:"Run at full scale (the EXPERIMENTS.md configuration).")

let quick_flag =
  Arg.(value & flag & info [ "quick" ] ~doc:"Run at quick scale (the default; overrides $(b,--full)).")

let csv_flag = Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of ASCII tables.")

let procs_opt =
  Arg.(
    value
    & opt (some string) None
    & info [ "procs" ] ~docv:"P1,P2,.." ~doc:"Processor counts to sweep (default depends on scale).")

let front_end_opt =
  Arg.(
    value
    & opt int 0
    & info [ "front-end" ] ~docv:"K"
        ~doc:
          "Per-thread block-cache capacity per size class for the hoard instance (0 = the paper's exact \
           algorithm, the default).")

let vmem_conv =
  let parse s =
    match Vmem_backend.kind_of_string s with
    | Some k -> Ok k
    | None ->
      Error (`Msg (Printf.sprintf "unknown vmem backend %S (exact, first-fit, buddy)" s))
  in
  Arg.conv (parse, fun fmt k -> Format.pp_print_string fmt (Vmem_backend.kind_name k))

let vmem_opt =
  Arg.(
    value
    & opt vmem_conv Vmem_backend.Exact
    & info [ "vmem" ] ~docv:"KIND"
        ~doc:
          "Reuse policy of the simulated address space: $(b,exact) (the seed policy, the default), \
           $(b,first-fit) (coalescing free list) or $(b,buddy) (binary buddy system).")

let reservoir_opt =
  Arg.(
    value
    & opt int 0
    & info [ "reservoir" ] ~docv:"R"
        ~doc:
          "Capacity (superblocks) of the size-class-agnostic reservoir: empty superblocks park there \
           decommitted instead of unmapping, bounding residency by heap-held + R*S. 0 (the default) \
           disables it, restoring the seed lifecycle.")

let shelf_opt =
  Arg.(
    value
    & opt int 0
    & info [ "shelf" ] ~docv:"N"
        ~doc:
          "Capacity (superblocks) of the lock-free empty-superblock shelf in front of the global \
           heap: refills pop and trims push with a single CAS, bypassing the global lock. 0 (the \
           default) disables it.")

let slack_opt =
  Arg.(
    value
    & opt int Hoard_config.default.Hoard_config.slack
    & info [ "slack" ] ~docv:"K"
        ~doc:
          "Slack K (superblocks a per-processor heap may hold beyond use) for the instrumented \
           pass. 0 sends every empty superblock across the emptiness threshold — the \
           transfer-heavy configuration the contention smoke measures the shelf on.")

let run_cmd =
  let doc = "Run one experiment by id." in
  let id_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"ID" ~doc:"Experiment id (see list).") in
  let metrics_opt =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Also run an instrumented hoard pass on the experiment's representative workload and write \
             its metrics registry (counters, latency distributions, lock contention) as JSON.")
  in
  let trace_opt =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"With $(b,--metrics) machinery: write the instrumented pass's Perfetto trace-event JSON.")
  in
  let json_opt =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the experiment's tables as a JSON report (the CI artifact format).")
  in
  let run id full quick csv procs metrics trace front_end vmem reservoir shelf slack json sets =
    let config =
      Config_cli.apply
        (Hoard_config.make ~front_end ~vmem_backend:vmem ~reservoir ~shelf ~slack ())
        sets
    in
    let scale = scale_of_flag (full && not quick) in
    match Experiments.find id with
    | None ->
      Printf.eprintf "unknown experiment %S; try: %s\n" id (String.concat " " (Experiments.ids ()));
      exit 1
    | Some e ->
      let out = e.Experiments.run scale ~procs:(parse_procs procs) in
      print_output ~csv out;
      (match json with
       | Some f ->
         write_file f
           (Printf.sprintf "{\"experiment\":\"%s\",\"scale\":\"%s\",\"tables\":[%s]}" id
              (if full && not quick then "full" else "quick")
              (String.concat "," (List.map Table.to_json out.Experiments.tables)));
         Printf.printf "wrote JSON report to %s\n" f
       | None -> ());
      if metrics <> None || trace <> None then begin
        let nprocs =
          match parse_procs procs with
          | Some (p :: _) -> p
          | _ -> 8
        in
        let w = Experiments.obs_workload id scale in
        let b = Obs_run.run_workload ~config w ~nprocs in
        Printf.printf "instrumented pass: %s on %d procs, %d cycles, %d events recorded (%d dropped)\n"
          b.Obs_run.b_name nprocs b.Obs_run.b_cycles (Obs.total_recorded b.Obs_run.b_obs)
          (Obs.total_dropped b.Obs_run.b_obs);
        (match metrics with
         | Some f ->
           write_file f (Obs_run.metrics_json b);
           Printf.printf "wrote metrics to %s\n" f
         | None -> ());
        match trace with
        | Some f ->
          write_file f b.Obs_run.b_perfetto;
          Printf.printf "wrote Perfetto trace to %s\n" f
        | None -> ()
      end
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ id_arg $ full_flag $ quick_flag $ csv_flag $ procs_opt $ metrics_opt $ trace_opt
      $ front_end_opt $ vmem_opt $ reservoir_opt $ shelf_opt $ slack_opt $ json_opt
      $ Config_cli.set_opt)

let all_cmd =
  let doc = "Run every experiment in order." in
  let run full csv procs =
    List.iter
      (fun e ->
        Printf.printf "### %s (%s)\n\n" e.Experiments.title e.Experiments.id;
        print_output ~csv (e.Experiments.run (scale_of_flag full) ~procs:(parse_procs procs)))
      (Experiments.all ())
  in
  Cmd.v (Cmd.info "all" ~doc) Term.(const run $ full_flag $ csv_flag $ procs_opt)

let workload_arg =
  Arg.(
    value
    & opt string "threadtest"
    & info [ "workload"; "w" ] ~docv:"NAME"
        ~doc:(Printf.sprintf "Benchmark to drive (%s)." (String.concat ", " Experiments.workload_names)))

let nprocs_arg = Arg.(value & opt int 8 & info [ "procs"; "p" ] ~doc:"Simulated processors.")

let get_workload name full =
  match Experiments.workload name (scale_of_flag full) with
  | Some w -> w
  | None ->
    Printf.eprintf "unknown workload %S; known: %s\n" name (String.concat ", " Experiments.workload_names);
    exit 1

let inspect_cmd =
  let doc = "Run a benchmark under Hoard, then dump the allocator's heap state." in
  let run name full nprocs front_end vmem reservoir shelf sets =
    let config =
      Config_cli.apply (Hoard_config.make ~front_end ~vmem_backend:vmem ~reservoir ~shelf ()) sets
    in
    let w = get_workload name full in
    let sim = Sim.create ~vmem_backend:config.Hoard_config.vmem_backend ~nprocs () in
    let pf = Sim.platform sim in
    let h = Hoard.create ~config pf in
    let a = Hoard.allocator h in
    w.Workload_intf.spawn sim pf a ~nthreads:nprocs;
    Sim.run sim;
    a.Alloc_intf.check ();
    if config.Hoard_config.front_end > 0 then begin
      List.iter
        (fun (tid, counts) ->
          Printf.printf "tcache tid=%d: %d blocks cached\n" tid (Array.fold_left ( + ) 0 counts))
        (Hoard.cache_counts h);
      if config.Hoard_config.deferred then
        Printf.printf "deferred lists: [%s]\n"
          (String.concat "; " (Array.to_list (Array.map string_of_int (Hoard.deferred_lengths h))))
      else
        Printf.printf "remote queues: [%s]\n"
          (String.concat "; " (Array.to_list (Array.map string_of_int (Hoard.remote_queue_lengths h))));
      Hoard.flush_caches h;
      a.Alloc_intf.check ()
    end;
    if config.Hoard_config.large_cache > 0 then
      Printf.printf "large cache: %d regions parked\n" (Hoard.large_cache_length h);
    if config.Hoard_config.reservoir > 0 then
      Printf.printf "reservoir: %d/%d superblocks parked\n" (Hoard.reservoir_length h)
        config.Hoard_config.reservoir;
    if config.Hoard_config.shelf > 0 then
      Printf.printf "shelf: %d/%d empty superblocks shelved\n" (Hoard.shelf_length h)
        config.Hoard_config.shelf;
    let s = a.Alloc_intf.stats () in
    Printf.printf "%s on %d processors: %d cycles\n%s\n\n" name nprocs (Sim.total_cycles sim)
      (Format.asprintf "%a" Alloc_stats.pp_snapshot s);
    Format.printf "%a@." Hoard.pp_heaps h
  in
  Cmd.v
    (Cmd.info "inspect" ~doc)
    Term.(
      const run $ workload_arg $ full_flag $ nprocs_arg $ front_end_opt $ vmem_opt $ reservoir_opt
      $ shelf_opt $ Config_cli.set_opt)

let sweep_cmd =
  let doc = "Run one benchmark under Hoard with explicit algorithm parameters." in
  let f_arg = Arg.(value & opt float 0.25 & info [ "f" ] ~doc:"Emptiness fraction f.") in
  let k_arg = Arg.(value & opt int 4 & info [ "k" ] ~doc:"Slack K (superblocks).") in
  let s_arg = Arg.(value & opt int 8192 & info [ "sbsize" ] ~doc:"Superblock size S.") in
  let run name full nprocs f k sbsize vmem reservoir shelf sets =
    let config =
      Config_cli.apply
        (Hoard_config.make ~empty_fraction:f ~slack:k ~sb_size:sbsize ~vmem_backend:vmem ~reservoir
           ~shelf ())
        sets
    in
    let w = get_workload name full in
    let r =
      Runner.run
        (Runner.spec ~vmem_backend:config.Hoard_config.vmem_backend w (Hoard.factory ~config ())
           ~nprocs)
    in
    Printf.printf "%s P=%d %s: %d cycles, %.1f ops/Mcycle, frag %.2f, transfers %d/%d, %d invalidations\n"
      name nprocs
      (Format.asprintf "%a" Hoard_config.pp config)
      r.Runner.r_cycles (Runner.ops_per_mcycle r) (Runner.fragmentation r)
      r.Runner.r_stats.Alloc_stats.sb_to_global r.Runner.r_stats.Alloc_stats.sb_from_global
      r.Runner.r_invalidations;
    Printf.printf
      "  vmem: %d KiB peak mapped, %d KiB address space, %d KiB resident at exit; %d decommits, %d recommits, %d/%d parks/drops\n"
      (r.Runner.r_vm_peak_mapped / 1024) (r.Runner.r_vm_address_space / 1024)
      (r.Runner.r_vm_resident / 1024) r.Runner.r_stats.Alloc_stats.decommits
      r.Runner.r_stats.Alloc_stats.recommits r.Runner.r_stats.Alloc_stats.reservoir_parks
      r.Runner.r_stats.Alloc_stats.reservoir_drops
  in
  Cmd.v (Cmd.info "sweep" ~doc)
    Term.(
      const run $ workload_arg $ full_flag $ nprocs_arg $ f_arg $ k_arg $ s_arg $ vmem_opt
      $ reservoir_opt $ shelf_opt $ Config_cli.set_opt)

let serve_cmd =
  let doc =
    "Run the front-tier server mix under one allocator, report request-latency percentiles, and \
     optionally grade the run against an SLO spec (nonzero exit on violation)."
  in
  let profile_arg =
    Arg.(
      value
      & opt string "bursty"
      & info [ "profile" ] ~docv:"NAME" ~doc:"Arrival profile: $(b,steady), $(b,bursty) or $(b,flash).")
  in
  let allocator_arg =
    Arg.(
      value
      & opt string "hoard-fe"
      & info [ "allocator"; "a" ] ~docv:"LABEL" ~doc:"Allocator to serve with (see $(b,hoard_trace) list).")
  in
  let requests_opt =
    Arg.(
      value
      & opt int 0
      & info [ "requests" ] ~docv:"N" ~doc:"Total requests across all workers (0 = the scale default).")
  in
  let slo_opt =
    Arg.(
      value
      & opt (some string) None
      & info [ "slo" ] ~docv:"SPEC.json"
          ~doc:
            "Grade the run against this SLO spec and exit nonzero if any objective is violated. Spec \
             shape: {\"name\":..,\"rules\":[{\"metric\":\"request\",\"quantile\":\"p99\",\
             \"ceiling\":CYCLES},..],\"rss_ceiling\":BYTES}.")
  in
  let report_opt =
    Arg.(
      value
      & opt (some string) None
      & info [ "report" ] ~docv:"FILE"
          ~doc:
            "Write the run's flat metrics JSON (slo.request.* percentiles, RSS peak, op latency \
             distributions) — the file the CI p99 gate diffs with $(b,hoard_trace) check-json.")
  in
  let trace_opt =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a Perfetto trace: request spans per worker, a request-latency counter track, and \
             held/live/resident memory counter tracks.")
  in
  let run profile_name alloc_label full quick nprocs requests slo report trace sets =
    let profile =
      match Server_mix.profile_of_string profile_name with
      | Some p -> p
      | None ->
        Printf.eprintf "unknown profile %S; known: steady, bursty, flash\n" profile_name;
        exit 1
    in
    let factory =
      match Allocators.find alloc_label with
      | Some f -> f
      | None ->
        Printf.eprintf "unknown allocator %S; known:\n%s\n" alloc_label (Allocators.help ());
        exit 1
    in
    let factory =
      if sets = [] then factory
      else
        match Allocators.with_overrides (fun cfg -> Config_cli.apply cfg sets) alloc_label with
        | Some f -> f
        | None ->
          Printf.eprintf "allocator %S has no config knobs (--set applies to the hoard family)\n"
            alloc_label;
          exit 1
    in
    let scale = scale_of_flag (full && not quick) in
    let params =
      let p = Experiments.server_params profile scale in
      if requests > 0 then { p with Server_mix.requests } else p
    in
    let r = Slo.run_server ~params factory ~nprocs in
    let h = Server_mix.request_latencies r.Slo.sv_recorder in
    Printf.printf
      "server mix (%s) under %s on %d procs: %d requests in %d cycles\n\
       request latency (cycles): p50=%d p99=%d p999=%d max=%d; RSS peak %d KiB\n"
      (Server_mix.profile_name profile) alloc_label nprocs (Histogram.count h) r.Slo.sv_cycles
      (Histogram.percentile h 0.5) (Histogram.percentile h 0.99) (Histogram.percentile h 0.999)
      (Option.value ~default:0 (Histogram.max_value h))
      ((r.Slo.sv_stats.Alloc_stats.peak_resident_bytes + 1023) / 1024);
    (match report with
     | Some f ->
       write_file f (Slo.metrics_json r);
       Printf.printf "wrote metrics report to %s\n" f
     | None -> ());
    (match trace with
     | Some f ->
       write_file f (Slo.perfetto_json r);
       Printf.printf "wrote Perfetto trace to %s\n" f
     | None -> ());
    match slo with
    | None -> ()
    | Some spec_file ->
      let contents =
        let ic = open_in_bin spec_file in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      (match Slo.spec_of_string contents with
       | Error msg ->
         Printf.eprintf "%s: %s\n" spec_file msg;
         exit 1
       | Ok spec ->
         let rep = Slo.evaluate spec r in
         Table.print (Slo.report_table rep);
         if not rep.Slo.rp_ok then exit 2)
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ profile_arg $ allocator_arg $ full_flag $ quick_flag $ nprocs_arg $ requests_opt
      $ slo_opt $ report_opt $ trace_opt $ Config_cli.set_opt)

let () =
  let doc = "Reproduction harness for 'Hoard: A Scalable Memory Allocator' (ASPLOS 2000)." in
  let info = Cmd.info "hoard_bench" ~version:"1.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ list_cmd; run_cmd; all_cmd; inspect_cmd; sweep_cmd; serve_cmd ]))
