(* Systematic concurrency checking CLI: the schedule explorer, the
   differential allocation oracle and the sanitizer overhead probe.

     hoard_check list
     hoard_check explore transfer-free-race-mutant --bound 2 --expect-fail
     hoard_check replay lost-update --schedule 0,1
     hoard_check oracle --workload threadtest --subject hoard-san
     hoard_check slowdown
*)

open Cmdliner

let strategy_of_string = function
  | "chess" -> Explorer.Chess
  | "sleep" -> Explorer.Sleep_dfs
  | s -> failwith (Printf.sprintf "unknown strategy %S (chess|sleep)" s)

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

let get_scenario name =
  match Scenarios.find name with
  | Some sc -> sc
  | None ->
    Printf.eprintf "unknown scenario %S; available:\n%s\n" name (Scenarios.help ());
    exit 2

let list_cmd =
  let doc = "List scenarios, oracle subjects and checked workloads." in
  let run () =
    Printf.printf "Explorer scenarios:\n%s\n\nOracle subjects:\n%s\n\nWorkloads (quick scale):\n%s\n"
      (Scenarios.help ()) (Check_run.subject_help ()) (Check_run.workload_help ())
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let scenario_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"SCENARIO" ~doc:"Scenario name (see list).")

let bound_opt =
  Arg.(value & opt int 2 & info [ "bound" ] ~docv:"N" ~doc:"Preemption bound (Chess-style, default 2).")

let strategy_opt =
  Arg.(
    value
    & opt string "chess"
    & info [ "strategy" ] ~docv:"S"
        ~doc:"$(b,chess) (exhaustive bounded-preemption) or $(b,sleep) (sleep-set-pruned DFS).")

let max_runs_opt =
  Arg.(value & opt int 10_000 & info [ "max-runs" ] ~docv:"N" ~doc:"Interleaving budget (default 10000).")

let expect_fail_flag =
  Arg.(
    value & flag
    & info [ "expect-fail" ]
        ~doc:"Exit 0 when a violation IS found (mutant scenarios), 1 when the scenario passes.")

let out_opt =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"FILE"
        ~doc:"Write the minimized failing schedule (replayable seed) to $(docv) — the CI artifact.")

let explore_cmd =
  let doc = "Enumerate admissible interleavings of a scenario up to a preemption bound." in
  let run name strategy bound max_runs expect_fail out =
    let sc = get_scenario name in
    let o = Explorer.explore ~strategy:(strategy_of_string strategy) ~bound ~max_runs sc in
    Printf.printf "%s: %d run(s)%s\n" sc.Explorer.sc_name o.Explorer.o_runs
      (if o.Explorer.o_truncated then " (truncated at --max-runs)" else " (exhaustive at this bound)");
    match o.Explorer.o_failure with
    | None ->
      Printf.printf "no violation up to preemption bound %d\n" bound;
      exit (if expect_fail then 1 else 0)
    | Some f ->
      let seed = Explorer.schedule_to_string f.Explorer.f_schedule in
      Printf.printf "VIOLATION: %s\nminimized schedule (%d decisions, %d minimization replays): %s\n"
        f.Explorer.f_message
        (List.length f.Explorer.f_schedule)
        f.Explorer.f_minimize_runs seed;
      Printf.printf "replay with: hoard_check replay %s --schedule %s\n" sc.Explorer.sc_name
        (if seed = "" then "\"\"" else seed);
      (match out with
       | Some file ->
         write_file file
           (Printf.sprintf "scenario: %s\nschedule: %s\nmessage: %s\n" sc.Explorer.sc_name seed
              f.Explorer.f_message);
         Printf.printf "wrote %s\n" file
       | None -> ());
      exit (if expect_fail then 0 else 1)
  in
  Cmd.v (Cmd.info "explore" ~doc)
    Term.(const run $ scenario_arg $ strategy_opt $ bound_opt $ max_runs_opt $ expect_fail_flag $ out_opt)

let replay_cmd =
  let doc = "Re-run a scenario under a specific schedule (a seed printed by explore)." in
  let schedule_opt =
    Arg.(
      value
      & opt string ""
      & info [ "schedule" ] ~docv:"P1,P2,.."
          ~doc:"Comma-separated processor choices at decision points; the default policy past its end.")
  in
  let run name schedule =
    let sc = get_scenario name in
    match Explorer.replay sc ~schedule:(Explorer.schedule_of_string schedule) with
    | Ok () ->
      Printf.printf "%s: schedule [%s] passes\n" sc.Explorer.sc_name schedule;
      exit 0
    | Error msg ->
      Printf.printf "%s: schedule [%s] FAILS: %s\n" sc.Explorer.sc_name schedule msg;
      exit 1
  in
  Cmd.v (Cmd.info "replay" ~doc) Term.(const run $ scenario_arg $ schedule_opt)

let oracle_cmd =
  let doc = "Run a workload with every allocation mirrored into the differential oracle." in
  let workload_opt =
    Arg.(value & opt string "threadtest" & info [ "workload" ] ~docv:"W" ~doc:"Workload (see list).")
  in
  let subject_opt =
    Arg.(value & opt string "hoard" & info [ "subject" ] ~docv:"A" ~doc:"Allocator subject (see list).")
  in
  let procs_opt = Arg.(value & opt int 4 & info [ "procs" ] ~docv:"P" ~doc:"Simulated processors.") in
  let fuzz_opt =
    Arg.(
      value
      & opt (some int) None
      & info [ "fuzz" ] ~docv:"SEED" ~doc:"Seeded schedule fuzzing for interleaving variety.")
  in
  let no_blowup_flag =
    Arg.(value & flag & info [ "no-blowup" ] ~doc:"Skip the blowup-envelope assertion.")
  in
  let run workload subject nprocs fuzz no_blowup sets =
    let w =
      match Check_run.find_workload workload with
      | Some w -> w
      | None ->
        Printf.eprintf "unknown workload %S; available:\n%s\n" workload (Check_run.workload_help ());
        exit 2
    in
    match
      Check_run.run_oracle ?fuzz ~nprocs ~check_blowup:(not no_blowup)
        ~overrides:(fun cfg -> Config_cli.apply cfg sets)
        ~workload:w ~subject ()
    with
    | r ->
      Printf.printf
        "%s/%s: OK — %d mallocs checked, peak U %d bytes, peak held %d bytes, %d actively shared \
         line(s), quarantine peak %d\n"
        r.Check_run.c_subject r.Check_run.c_workload r.Check_run.c_mallocs r.Check_run.c_peak_usable
        r.Check_run.c_result.Runner.r_stats.Alloc_stats.peak_held_bytes r.Check_run.c_shared_lines
        r.Check_run.c_quarantine_peak
    | exception e ->
      Printf.printf "%s/%s: VIOLATION: %s\n" subject workload (Printexc.to_string e);
      exit 1
  in
  Cmd.v (Cmd.info "oracle" ~doc)
    Term.(
      const run $ workload_opt $ subject_opt $ procs_opt $ fuzz_opt $ no_blowup_flag
      $ Config_cli.set_opt)

let slowdown_cmd =
  let doc = "Measure the host-time overhead of oracle + sanitizer checking." in
  let run () =
    let time f =
      let t0 = Sys.time () in
      f ();
      Sys.time () -. t0
    in
    Printf.printf "%-20s %10s %10s %8s\n" "workload" "plain (s)" "checked(s)" "factor";
    let factors =
      List.map
        (fun w ->
          let factory = Option.get (Allocators.find "hoard") in
          let plain = time (fun () -> ignore (Runner.run (Runner.spec w factory ~nprocs:4))) in
          let checked =
            time (fun () -> ignore (Check_run.run_oracle ~workload:w ~subject:"hoard-san" ()))
          in
          let factor = checked /. Float.max plain 1e-9 in
          Printf.printf "%-20s %10.3f %10.3f %7.1fx\n" w.Workload_intf.w_name plain checked factor;
          factor)
        (Check_run.quick_workloads ())
    in
    let geo =
      exp (List.fold_left (fun acc f -> acc +. log (Float.max f 1e-9)) 0.0 factors /. float_of_int (List.length factors))
    in
    Printf.printf "geometric mean slowdown: %.1fx\n" geo
  in
  Cmd.v (Cmd.info "slowdown" ~doc) Term.(const run $ const ())

let () =
  let doc = "Systematic concurrency checking for the Hoard reproduction." in
  let info = Cmd.info "hoard_check" ~version:"1.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ list_cmd; explore_cmd; replay_cmd; oracle_cmd; slowdown_cmd ]))
