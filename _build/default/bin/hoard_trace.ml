(* Allocation-trace tooling:

     hoard_trace generate --ops 10000 --threads 4 --out t.trace
     hoard_trace validate t.trace
     hoard_trace replay t.trace --allocator hoard --procs 4
     hoard_trace bench t.trace            # compare all allocators
*)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

let load path =
  match Trace.of_string (read_file path) with
  | Ok t -> t
  | Error m ->
    Printf.eprintf "%s: %s\n" path m;
    exit 1

let factories =
  [
    ("serial", Serial_alloc.factory ());
    ("concurrent-single", Concurrent_single.factory ());
    ("pure-private", Pure_private.factory ());
    ("private-ownership", Private_ownership.factory ());
    ("private-threshold", Private_threshold.factory ());
    ("hoard", Hoard.factory ());
  ]

let factory_of name =
  match List.assoc_opt name factories with
  | Some f -> f
  | None ->
    Printf.eprintf "unknown allocator %S; known: %s\n" name (String.concat ", " (List.map fst factories));
    exit 1

let replay_trace trace factory ~procs =
  let sim = Sim.create ~nprocs:procs () in
  let a = factory.Alloc_intf.instantiate (Sim.platform sim) in
  Trace.replay_sim trace sim a ~nthreads:procs;
  Sim.run sim;
  a.Alloc_intf.check ();
  (Sim.total_cycles sim, a.Alloc_intf.stats (), Cache.total_invalidations (Sim.cache sim))

let generate_cmd =
  let doc = "Generate a synthetic allocation trace." in
  let ops = Arg.(value & opt int 10_000 & info [ "ops" ] ~doc:"Operation count.") in
  let threads = Arg.(value & opt int 4 & info [ "threads" ] ~doc:"Logical threads.") in
  let live = Arg.(value & opt int 50 & info [ "live" ] ~doc:"Live objects per thread (target).") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.") in
  let min_size = Arg.(value & opt int 8 & info [ "min-size" ] ~doc:"Minimum object size.") in
  let max_size = Arg.(value & opt int 1024 & info [ "max-size" ] ~doc:"Maximum object size.") in
  let out = Arg.(required & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Output file.") in
  let run ops threads live seed min_size max_size out =
    let t = Trace.generate ~seed ~ops ~threads ~live_target:live ~size_dist:(Trace.Uniform (min_size, max_size)) () in
    write_file out (Trace.to_string t);
    Printf.printf "wrote %d ops (peak live %d bytes) to %s\n" (Trace.length t) (Trace.max_live_bytes t) out
  in
  Cmd.v (Cmd.info "generate" ~doc)
    Term.(const run $ ops $ threads $ live $ seed $ min_size $ max_size $ out)

let file_arg = Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE" ~doc:"Trace file.")

let validate_cmd =
  let doc = "Check a trace file for well-formedness." in
  let run path =
    let t = load path in
    match Trace.validate t with
    | Ok () ->
      Printf.printf "%s: %d ops, peak live %d bytes, %d objects leaked at end\n" path (Trace.length t)
        (Trace.max_live_bytes t)
        (List.length (Trace.live_at_end t))
    | Error m ->
      Printf.eprintf "%s: INVALID: %s\n" path m;
      exit 1
  in
  Cmd.v (Cmd.info "validate" ~doc) Term.(const run $ file_arg)

let procs_arg = Arg.(value & opt int 4 & info [ "procs" ] ~doc:"Simulated processors.")

let replay_cmd =
  let doc = "Replay a trace against one allocator on the simulator." in
  let alloc = Arg.(value & opt string "hoard" & info [ "allocator"; "a" ] ~doc:"Allocator to drive.") in
  let run path alloc procs =
    let t = load path in
    let cycles, stats, invals = replay_trace t (factory_of alloc) ~procs in
    Printf.printf "%s on %d procs: %d cycles, frag %.2f, %d invalidations\n" alloc procs cycles
      (Alloc_stats.fragmentation stats) invals
  in
  Cmd.v (Cmd.info "replay" ~doc) Term.(const run $ file_arg $ alloc $ procs_arg)

let bench_cmd =
  let doc = "Replay a trace against every allocator and compare." in
  let run path procs =
    let t = load path in
    let tbl =
      Table.create ~title:(Printf.sprintf "%s on %d processors" path procs)
        ~columns:
          [
            ("allocator", Table.Left);
            ("cycles", Table.Right);
            ("frag", Table.Right);
            ("invalidations", Table.Right);
            ("os maps", Table.Right);
          ]
    in
    List.iter
      (fun (name, f) ->
        let cycles, stats, invals = replay_trace t f ~procs in
        Table.add_row tbl
          [
            name;
            string_of_int cycles;
            Table.cell_float (Alloc_stats.fragmentation stats);
            string_of_int invals;
            string_of_int stats.Alloc_stats.os_maps;
          ])
      factories;
    Table.print tbl
  in
  Cmd.v (Cmd.info "bench" ~doc) Term.(const run $ file_arg $ procs_arg)

let () =
  let doc = "Allocation-trace tooling for the Hoard reproduction." in
  exit (Cmd.eval (Cmd.group (Cmd.info "hoard_trace" ~version:"1.0" ~doc) [ generate_cmd; validate_cmd; replay_cmd; bench_cmd ]))
