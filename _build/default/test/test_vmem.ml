(* Simulated OS memory: accounting, alignment, reuse, owner tagging. *)

let test_map_rounds_to_pages () =
  let vm = Vmem.create () in
  let a = Vmem.map vm ~bytes:100 ~align:4096 () in
  Alcotest.(check (option int)) "rounded to a page" (Some 4096) (Vmem.region_size vm ~addr:a);
  Alcotest.(check int) "mapped" 4096 (Vmem.mapped_bytes vm)

let test_alignment_respected () =
  let vm = Vmem.create () in
  ignore (Vmem.map vm ~bytes:4096 ~align:4096 ());
  let a = Vmem.map vm ~bytes:8192 ~align:65536 () in
  Alcotest.(check int) "64 KiB aligned" 0 (a mod 65536)

let test_unmap_releases () =
  let vm = Vmem.create () in
  let a = Vmem.map vm ~bytes:8192 ~align:4096 () in
  Vmem.unmap vm ~addr:a;
  Alcotest.(check int) "nothing mapped" 0 (Vmem.mapped_bytes vm);
  Alcotest.(check int) "peak remembers" 8192 (Vmem.peak_bytes vm)

let test_unmap_bad_addr_rejected () =
  let vm = Vmem.create () in
  ignore (Vmem.map vm ~bytes:4096 ~align:4096 ());
  Alcotest.check_raises "bad base" (Invalid_argument "Vmem.unmap: not a live region base") (fun () ->
      Vmem.unmap vm ~addr:12345)

let test_exact_size_reuse () =
  let vm = Vmem.create () in
  let a = Vmem.map vm ~bytes:8192 ~align:8192 () in
  Vmem.unmap vm ~addr:a;
  let b = Vmem.map vm ~bytes:8192 ~align:8192 () in
  Alcotest.(check int) "freed region reused" a b

let test_reuse_respects_alignment () =
  let vm = Vmem.create () in
  (* Free a page at an address that is not 64 KiB-aligned, then request a
     64 KiB-aligned page: the free region must not be reused. *)
  ignore (Vmem.map vm ~bytes:4096 ~align:4096 ());
  let a = Vmem.map vm ~bytes:4096 ~align:4096 () in
  Vmem.unmap vm ~addr:a;
  if a mod 65536 <> 0 then begin
    let b = Vmem.map vm ~bytes:4096 ~align:65536 () in
    Alcotest.(check bool) "not reused" true (b <> a);
    Alcotest.(check int) "aligned" 0 (b mod 65536)
  end

let test_owner_accounting () =
  let vm = Vmem.create () in
  let a1 = Vmem.map vm ~owner:1 ~bytes:4096 ~align:4096 () in
  let _a2 = Vmem.map vm ~owner:2 ~bytes:8192 ~align:4096 () in
  Alcotest.(check int) "owner 1" 4096 (Vmem.mapped_bytes_of_owner vm 1);
  Alcotest.(check int) "owner 2" 8192 (Vmem.mapped_bytes_of_owner vm 2);
  Vmem.unmap vm ~addr:a1;
  Alcotest.(check int) "owner 1 released" 0 (Vmem.mapped_bytes_of_owner vm 1);
  Alcotest.(check int) "owner 1 peak" 4096 (Vmem.peak_bytes_of_owner vm 1);
  Alcotest.(check int) "owner 3 never mapped" 0 (Vmem.mapped_bytes_of_owner vm 3)

let test_is_mapped () =
  let vm = Vmem.create () in
  let a = Vmem.map vm ~bytes:8192 ~align:4096 () in
  Alcotest.(check bool) "base" true (Vmem.is_mapped vm ~addr:a);
  Alcotest.(check bool) "interior" true (Vmem.is_mapped vm ~addr:(a + 5000));
  Alcotest.(check bool) "just past" false (Vmem.is_mapped vm ~addr:(a + 8192));
  Alcotest.(check bool) "before everything" false (Vmem.is_mapped vm ~addr:100)

let test_map_count () =
  let vm = Vmem.create () in
  let a = Vmem.map vm ~bytes:4096 ~align:4096 () in
  Vmem.unmap vm ~addr:a;
  ignore (Vmem.map vm ~bytes:4096 ~align:4096 ());
  Alcotest.(check int) "two maps" 2 (Vmem.map_count vm);
  Alcotest.(check int) "one unmap" 1 (Vmem.unmap_count vm)

let test_bad_args_rejected () =
  let vm = Vmem.create () in
  Alcotest.check_raises "zero bytes" (Invalid_argument "Vmem.map: bytes must be positive") (fun () ->
      ignore (Vmem.map vm ~bytes:0 ~align:4096 ()));
  Alcotest.check_raises "align below page" (Invalid_argument "Vmem.map: align must be a power of two >= page_size")
    (fun () -> ignore (Vmem.map vm ~bytes:4096 ~align:8 ()))

(* Property: live regions returned by map are pairwise disjoint, whatever
   the interleaving of maps and unmaps. *)
let test_regions_disjoint =
  QCheck.Test.make ~name:"Vmem live regions pairwise disjoint" ~count:100
    QCheck.(list (pair (int_range 1 5) bool))
    (fun ops ->
      let vm = Vmem.create () in
      let live = ref [] in
      List.iter
        (fun (pages, unmap_one) ->
          if unmap_one && !live <> [] then begin
            match !live with
            | (a, _) :: rest ->
              Vmem.unmap vm ~addr:a;
              live := rest
            | [] -> ()
          end
          else begin
            let bytes = pages * 4096 in
            let a = Vmem.map vm ~bytes ~align:4096 () in
            live := (a, bytes) :: !live
          end)
        ops;
      let sorted = List.sort compare !live in
      let rec disjoint = function
        | (a1, s1) :: ((a2, _) :: _ as rest) -> a1 + s1 <= a2 && disjoint rest
        | _ -> true
      in
      disjoint sorted
      && Vmem.mapped_bytes vm = List.fold_left (fun acc (_, s) -> acc + s) 0 !live)

let () =
  Alcotest.run "vmem"
    [
      ( "map/unmap",
        [
          Alcotest.test_case "page rounding" `Quick test_map_rounds_to_pages;
          Alcotest.test_case "alignment" `Quick test_alignment_respected;
          Alcotest.test_case "unmap releases" `Quick test_unmap_releases;
          Alcotest.test_case "bad unmap" `Quick test_unmap_bad_addr_rejected;
          Alcotest.test_case "exact reuse" `Quick test_exact_size_reuse;
          Alcotest.test_case "aligned reuse" `Quick test_reuse_respects_alignment;
          Alcotest.test_case "bad args" `Quick test_bad_args_rejected;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "owners" `Quick test_owner_accounting;
          Alcotest.test_case "is_mapped" `Quick test_is_mapped;
          Alcotest.test_case "map count" `Quick test_map_count;
          QCheck_alcotest.to_alcotest test_regions_disjoint;
        ] );
    ]
