(* The host (direct-execution) platform: lock semantics, vmem accounting,
   and true Domain-based parallelism for the pieces that support it. *)

let test_page_map_accounting () =
  let pf = Platform.host () in
  let a = pf.Platform.page_map ~bytes:8192 ~align:8192 ~owner:3 in
  Alcotest.(check int) "aligned" 0 (a mod 8192);
  Alcotest.(check int) "owner accounted" 8192 (pf.Platform.mapped_bytes ~owner:3);
  pf.Platform.page_unmap ~addr:a;
  Alcotest.(check int) "released" 0 (pf.Platform.mapped_bytes ~owner:3);
  Alcotest.(check int) "peak" 8192 (pf.Platform.peak_mapped_bytes ~owner:3)

let test_work_read_write_are_noops () =
  let pf = Platform.host () in
  pf.Platform.work 1000;
  pf.Platform.read ~addr:0 ~len:8;
  pf.Platform.write ~addr:0 ~len:8

let test_locks_exclude () =
  let pf = Platform.host () in
  let lock = pf.Platform.new_lock "m" in
  let counter = ref 0 in
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 10_000 do
              lock.Platform.acquire ();
              incr counter;
              lock.Platform.release ()
            done))
  in
  List.iter Domain.join domains;
  Alcotest.(check int) "no lost updates" 40_000 !counter

let test_host_vmem_exposed () =
  let pf = Platform.host () in
  match Platform.host_vmem pf with
  | None -> Alcotest.fail "host platform must expose its vmem"
  | Some vm ->
    ignore (pf.Platform.page_map ~bytes:4096 ~align:4096 ~owner:1);
    Alcotest.(check int) "same address space" 4096 (Vmem.mapped_bytes vm)

let test_parallel_page_map_disjoint () =
  (* Concurrent mappings from several domains must return disjoint
     regions (the vmem is mutex-protected inside the platform). *)
  let pf = Platform.host () in
  let results = Array.make 4 [] in
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            let acc = ref [] in
            for _ = 1 to 200 do
              acc := pf.Platform.page_map ~bytes:4096 ~align:4096 ~owner:d :: !acc
            done;
            results.(d) <- !acc))
  in
  List.iter Domain.join domains;
  let all = List.sort compare (List.concat (Array.to_list results)) in
  let rec distinct = function
    | a :: (b :: _ as rest) -> a <> b && distinct rest
    | _ -> true
  in
  Alcotest.(check bool) "all regions distinct" true (distinct all);
  Alcotest.(check int) "count" 800 (List.length all)

let test_self_ids_stable () =
  let pf = Platform.host ~nprocs:4 () in
  let t1 = pf.Platform.self_tid () and t2 = pf.Platform.self_tid () in
  Alcotest.(check int) "tid stable" t1 t2;
  Alcotest.(check bool) "proc in range" true
    (pf.Platform.self_proc () >= 0 && pf.Platform.self_proc () < 4)

let () =
  Alcotest.run "platform"
    [
      ( "host",
        [
          Alcotest.test_case "page map accounting" `Quick test_page_map_accounting;
          Alcotest.test_case "noop primitives" `Quick test_work_read_write_are_noops;
          Alcotest.test_case "mutex exclusion (domains)" `Quick test_locks_exclude;
          Alcotest.test_case "vmem exposed" `Quick test_host_vmem_exposed;
          Alcotest.test_case "parallel page map" `Quick test_parallel_page_map_disjoint;
          Alcotest.test_case "self ids" `Quick test_self_ids_stable;
        ] );
    ]
