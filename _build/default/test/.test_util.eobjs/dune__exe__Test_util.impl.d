test/test_util.ml: Alcotest Array Ascii_plot Dlist Fun Histogram List Printf QCheck QCheck_alcotest Rng Stats_acc String Table
