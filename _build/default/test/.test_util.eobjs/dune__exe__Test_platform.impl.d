test/test_platform.ml: Alcotest Array Domain List Platform Vmem
