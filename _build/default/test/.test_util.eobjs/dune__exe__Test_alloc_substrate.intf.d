test/test_alloc_substrate.mli:
