test/test_cache.ml: Alcotest Cache List Printf QCheck QCheck_alcotest Sim
