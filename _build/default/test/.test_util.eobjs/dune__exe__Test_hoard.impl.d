test/test_hoard.ml: Alcotest Alloc_intf Alloc_stats Array Hoard Hoard_config List Platform Printf QCheck QCheck_alcotest Rng Sim Size_class
