test/test_hoard.mli:
