test/test_sim.ml: Alcotest Array Buffer Cache Cost_model List Platform Printf Sim
