test/test_trace.ml: Alcotest Alloc_intf Alloc_stats Concurrent_single Hoard List Platform Private_ownership Pure_private QCheck QCheck_alcotest Result Serial_alloc Sim Trace
