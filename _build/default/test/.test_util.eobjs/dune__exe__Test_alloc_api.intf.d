test/test_alloc_api.mli:
