test/test_harness.ml: Alcotest Alloc_intf Experiments Histogram Hoard Latency_probe List Printf Runner Serial_alloc Sim String Table Threadtest Timeline Workload_intf
