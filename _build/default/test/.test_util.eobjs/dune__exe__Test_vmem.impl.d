test/test_vmem.ml: Alcotest List QCheck QCheck_alcotest Vmem
