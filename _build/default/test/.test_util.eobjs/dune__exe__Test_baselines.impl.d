test/test_baselines.ml: Alcotest Alloc_intf Alloc_stats Concurrent_single Hoard List Platform Printf Private_ownership Private_threshold Pure_private Rng Serial_alloc Sim
