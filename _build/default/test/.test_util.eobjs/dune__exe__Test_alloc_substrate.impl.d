test/test_alloc_substrate.ml: Alcotest Alloc_stats Array Heap_core Large_alloc List Locked_large Platform QCheck QCheck_alcotest Sb_registry Size_class Superblock
