(* calloc / realloc / aligned_alloc over every allocator. *)

let factories =
  [
    Serial_alloc.factory ();
    Concurrent_single.factory ();
    Pure_private.factory ();
    Private_ownership.factory ();
    Private_threshold.factory ();
    Hoard.factory ();
  ]

let with_alloc f k =
  let pf = Platform.host () in
  let a = f.Alloc_intf.instantiate pf in
  k pf a

let test_calloc_basic (f : Alloc_intf.factory) () =
  with_alloc f (fun pf a ->
      let p = Alloc_api.calloc pf a ~count:16 ~size:12 in
      Alcotest.(check bool) "usable >= 192" true (a.Alloc_intf.usable_size p >= 192);
      a.Alloc_intf.free p;
      a.Alloc_intf.check ())

let test_calloc_rejects_bad_args (f : Alloc_intf.factory) () =
  with_alloc f (fun pf a ->
      Alcotest.check_raises "zero count" (Invalid_argument "Alloc_api.calloc: count and size must be positive")
        (fun () -> ignore (Alloc_api.calloc pf a ~count:0 ~size:8));
      Alcotest.check_raises "overflow" (Invalid_argument "Alloc_api.calloc: size overflow") (fun () ->
          ignore (Alloc_api.calloc pf a ~count:max_int ~size:8)))

let test_realloc_in_place (f : Alloc_intf.factory) () =
  with_alloc f (fun pf a ->
      (* Growing within the block's usable size must not move it. *)
      let p = a.Alloc_intf.malloc 100 in
      let usable = a.Alloc_intf.usable_size p in
      let q = Alloc_api.realloc pf a ~addr:p ~size:usable in
      Alcotest.(check int) "in place" p q;
      a.Alloc_intf.free q;
      a.Alloc_intf.check ())

let test_realloc_grows (f : Alloc_intf.factory) () =
  with_alloc f (fun pf a ->
      let p = a.Alloc_intf.malloc 64 in
      let q = Alloc_api.realloc pf a ~addr:p ~size:50_000 in
      Alcotest.(check bool) "moved" true (q <> p);
      Alcotest.(check bool) "big enough" true (a.Alloc_intf.usable_size q >= 50_000);
      Alcotest.(check int) "old block freed" (a.Alloc_intf.usable_size q)
        (a.Alloc_intf.stats ()).Alloc_stats.live_bytes;
      a.Alloc_intf.free q;
      a.Alloc_intf.check ())

let test_realloc_chain (f : Alloc_intf.factory) () =
  with_alloc f (fun pf a ->
      (* Repeated doubling, as a growing dynamic array would do. *)
      let p = ref (a.Alloc_intf.malloc 8) in
      let size = ref 8 in
      for _ = 1 to 12 do
        size := !size * 2;
        p := Alloc_api.realloc pf a ~addr:!p ~size:!size
      done;
      Alcotest.(check bool) "final size" true (a.Alloc_intf.usable_size !p >= 32768);
      a.Alloc_intf.free !p;
      Alcotest.(check int) "clean" 0 (a.Alloc_intf.stats ()).Alloc_stats.live_bytes;
      a.Alloc_intf.check ())

let test_aligned_small (f : Alloc_intf.factory) () =
  with_alloc f (fun pf a ->
      let p = Alloc_api.aligned_alloc pf a ~align:8 ~size:24 in
      Alcotest.(check int) "8-aligned" 0 (p mod 8);
      a.Alloc_intf.free p)

let test_aligned_large (f : Alloc_intf.factory) () =
  with_alloc f (fun pf a ->
      List.iter
        (fun align ->
          let p = Alloc_api.aligned_alloc pf a ~align ~size:100 in
          Alcotest.(check int) (Printf.sprintf "%d-aligned" align) 0 (p mod align);
          a.Alloc_intf.free p)
        [ 16; 64; 256; 4096 ];
      a.Alloc_intf.check ())

let test_aligned_rejects (f : Alloc_intf.factory) () =
  with_alloc f (fun pf a ->
      Alcotest.check_raises "non power of two"
        (Invalid_argument "Alloc_api.aligned_alloc: align must be a positive power of two") (fun () ->
          ignore (Alloc_api.aligned_alloc pf a ~align:24 ~size:8));
      Alcotest.check_raises "beyond page"
        (Invalid_argument "Alloc_api.aligned_alloc: alignment beyond the page size is not supported") (fun () ->
          ignore (Alloc_api.aligned_alloc pf a ~align:65536 ~size:8)))

let suite f =
  ( f.Alloc_intf.label,
    [
      Alcotest.test_case "calloc" `Quick (test_calloc_basic f);
      Alcotest.test_case "calloc bad args" `Quick (test_calloc_rejects_bad_args f);
      Alcotest.test_case "realloc in place" `Quick (test_realloc_in_place f);
      Alcotest.test_case "realloc grows" `Quick (test_realloc_grows f);
      Alcotest.test_case "realloc chain" `Quick (test_realloc_chain f);
      Alcotest.test_case "aligned small" `Quick (test_aligned_small f);
      Alcotest.test_case "aligned large" `Quick (test_aligned_large f);
      Alcotest.test_case "aligned rejects" `Quick (test_aligned_rejects f);
    ] )

let () = Alcotest.run "alloc-api" (List.map suite factories)
