(* The benchmark programs: each runs to completion on the simulator,
   returns all memory, and behaves deterministically; plus physics checks
   for the real Barnes-Hut implementation. *)

let run_workload ?(nprocs = 4) (w : Workload_intf.t) (f : Alloc_intf.factory) =
  Runner.run (Runner.spec w f ~nprocs)

let hoard = Hoard.factory ()

let check_clean name r =
  Alcotest.(check int) (name ^ ": nothing live at end") 0 r.Runner.r_stats.Alloc_stats.live_bytes;
  Alcotest.(check bool) (name ^ ": did some mallocs") true (r.Runner.r_stats.Alloc_stats.mallocs > 0);
  Alcotest.(check bool) (name ^ ": cycles positive") true (r.Runner.r_cycles > 0)

let small_threadtest = Threadtest.make ~params:{ Threadtest.default_params with Threadtest.iterations = 3; objects = 800 } ()

let small_shbench = Shbench.make ~params:{ Shbench.default_params with Shbench.ops = 2000; slots_per_thread = 100 } ()

let small_larson =
  Larson.make ~params:{ Larson.default_params with Larson.rounds = 80; handoffs = 3; objects_per_thread = 100 } ()

let small_false = { False_sharing.default_params with False_sharing.loops = 200; writes_per_object = 30 }

let small_bem =
  Bem_like.make ~params:{ Bem_like.default_params with Bem_like.panels = 120; assemble_rows = 48; solve_iters = 3 } ()

let small_barnes = Barnes_hut.make ~params:{ Barnes_hut.default_params with Barnes_hut.nbodies = 64; steps = 2 } ()

let small_prodcons = Producer_consumer.make ~params:{ Producer_consumer.default_params with Producer_consumer.rounds = 10 } ()

let small_phased =
  Producer_consumer.phased ~params:{ Producer_consumer.default_params with Producer_consumer.rounds = 8; batch = 1500 } ()

let small_kv = Kv_store.make ~params:{ Kv_store.default_params with Kv_store.ops = 1500; key_space = 300 } ()

let small_doc = Doc_tree.make ~params:{ Doc_tree.default_params with Doc_tree.documents = 16 } ()

let all_workloads =
  [
    small_threadtest;
    small_shbench;
    small_larson;
    False_sharing.active ~params:small_false ();
    False_sharing.passive ~params:small_false ();
    small_bem;
    small_barnes;
    small_prodcons;
    small_phased;
    small_kv;
    small_doc;
  ]

let test_all_run_clean () = List.iter (fun w -> check_clean w.Workload_intf.w_name (run_workload w hoard)) all_workloads

let test_all_run_on_every_allocator () =
  List.iter
    (fun f ->
      List.iter
        (fun w ->
          let r = run_workload ~nprocs:2 w f in
          Alcotest.(check int)
            (w.Workload_intf.w_name ^ " on " ^ f.Alloc_intf.label ^ ": clean")
            0 r.Runner.r_stats.Alloc_stats.live_bytes)
        all_workloads)
    [ Serial_alloc.factory (); Concurrent_single.factory (); Pure_private.factory (); Private_ownership.factory () ]

let test_deterministic () =
  List.iter
    (fun w ->
      let a = run_workload w hoard and b = run_workload w hoard in
      Alcotest.(check int) (w.Workload_intf.w_name ^ " cycles reproducible") a.Runner.r_cycles b.Runner.r_cycles;
      Alcotest.(check int)
        (w.Workload_intf.w_name ^ " mallocs reproducible")
        a.Runner.r_stats.Alloc_stats.mallocs b.Runner.r_stats.Alloc_stats.mallocs)
    all_workloads

let test_threadtest_work_scales_down_per_thread () =
  (* Same total work: mallocs at P=1 and P=4 agree. *)
  let r1 = run_workload ~nprocs:1 small_threadtest hoard in
  let r4 = run_workload ~nprocs:4 small_threadtest hoard in
  Alcotest.(check int) "same total mallocs" r1.Runner.r_stats.Alloc_stats.mallocs r4.Runner.r_stats.Alloc_stats.mallocs

let test_larson_bleeds_across_threads () =
  let r = run_workload ~nprocs:4 small_larson hoard in
  Alcotest.(check bool) "remote frees happened" true (r.Runner.r_stats.Alloc_stats.remote_frees > 0)

let test_active_false_sharing_detected_on_serial () =
  let serial = run_workload (False_sharing.active ~params:small_false ()) (Serial_alloc.factory ()) in
  let hoard_r = run_workload (False_sharing.active ~params:small_false ()) hoard in
  let per_op r = float_of_int r.Runner.r_invalidations /. float_of_int r.Runner.r_ops in
  Alcotest.(check bool)
    (Printf.sprintf "serial induces false sharing (%.1f vs %.1f inval/op)" (per_op serial) (per_op hoard_r))
    true
    (per_op serial > 4.0 *. per_op hoard_r)

let test_passive_false_sharing_worse_for_ownership_than_hoard () =
  let own = run_workload (False_sharing.passive ~params:small_false ()) (Pure_private.factory ()) in
  let hoard_r = run_workload (False_sharing.passive ~params:small_false ()) hoard in
  let per_op r = float_of_int r.Runner.r_invalidations /. float_of_int r.Runner.r_ops in
  Alcotest.(check bool)
    (Printf.sprintf "pure-private passive false sharing (%.2f) exceeds hoard (%.2f)" (per_op own) (per_op hoard_r))
    true
    (per_op own > per_op hoard_r)

let test_phased_blowup_separates_families () =
  let blowup f =
    let r = run_workload ~nprocs:4 small_phased f in
    let s = r.Runner.r_stats in
    float_of_int s.Alloc_stats.peak_held_bytes /. float_of_int s.Alloc_stats.peak_live_bytes
  in
  let own = blowup (Private_ownership.factory ()) and hrd = blowup hoard in
  Alcotest.(check bool)
    (Printf.sprintf "ownership blowup %.2f ~ P, hoard %.2f ~ 1" own hrd)
    true
    (own > 3.0 && hrd < 2.5)

let test_producer_consumer_live_bounded () =
  let r = run_workload ~nprocs:2 small_prodcons hoard in
  (* Live never exceeds one batch per pair. *)
  Alcotest.(check bool) "peak live = one batch" true
    (r.Runner.r_stats.Alloc_stats.peak_live_bytes <= 200 * 64 * 2)

(* --- KV store direct API --- *)

let test_kv_model_equivalence () =
  (* The store must agree with a plain Hashtbl model under random ops. *)
  let pf = Platform.host () in
  let a = (Hoard.factory ()).Alloc_intf.instantiate pf in
  let store = Kv_store.create pf a ~buckets:64 ~stripes:8 in
  let model = Hashtbl.create 64 in
  let rng = Rng.create 31 in
  for _ = 1 to 3000 do
    let key = Rng.int rng 150 in
    match Rng.int rng 3 with
    | 0 ->
      let size = Rng.int_in rng 8 2000 in
      Kv_store.put store ~key ~size;
      Hashtbl.replace model key size
    | 1 ->
      let expected = Hashtbl.find_opt model key in
      Alcotest.(check (option int)) "get agrees" expected (Kv_store.get store ~key)
    | _ ->
      let expected = Hashtbl.mem model key in
      Alcotest.(check bool) "delete agrees" expected (Kv_store.delete store ~key);
      Hashtbl.remove model key
  done;
  Kv_store.check store;
  Alcotest.(check int) "length agrees" (Hashtbl.length model) (Kv_store.length store);
  Kv_store.clear store;
  Alcotest.(check int) "clear frees everything" 0 (a.Alloc_intf.stats ()).Alloc_stats.live_bytes;
  a.Alloc_intf.check ()

let test_kv_put_replaces () =
  let pf = Platform.host () in
  let a = (Hoard.factory ()).Alloc_intf.instantiate pf in
  let store = Kv_store.create pf a ~buckets:16 ~stripes:4 in
  Kv_store.put store ~key:1 ~size:100;
  Kv_store.put store ~key:1 ~size:900;
  Alcotest.(check (option int)) "latest value" (Some 900) (Kv_store.get store ~key:1);
  Alcotest.(check int) "one entry" 1 (Kv_store.length store);
  Kv_store.clear store;
  a.Alloc_intf.check ()

(* --- Document tree direct API --- *)

let test_doc_build_destroy_clean () =
  let pf = Platform.host () in
  let a = (Hoard.factory ()).Alloc_intf.instantiate pf in
  let rng = Rng.create 77 in
  for _ = 1 to 20 do
    let doc = Doc_tree.build pf a rng Doc_tree.default_params in
    Alcotest.(check bool) "has nodes" true (Doc_tree.node_count doc >= 1);
    Doc_tree.traverse pf doc ~work_per_node:0;
    Doc_tree.destroy a doc
  done;
  Alcotest.(check int) "no leaks" 0 (a.Alloc_intf.stats ()).Alloc_stats.live_bytes;
  a.Alloc_intf.check ()

let test_doc_deterministic_shape () =
  let pf = Platform.host () in
  let a = (Hoard.factory ()).Alloc_intf.instantiate pf in
  let count seed =
    let doc = Doc_tree.build pf a (Rng.create seed) Doc_tree.default_params in
    let n = Doc_tree.node_count doc in
    Doc_tree.destroy a doc;
    n
  in
  Alcotest.(check int) "same seed same tree" (count 5) (count 5)

(* --- Barnes-Hut physics --- *)

let test_barnes_mass_conserved () =
  let p = { Barnes_hut.default_params with Barnes_hut.nbodies = 100 } in
  let s = Barnes_hut.init_system p in
  Alcotest.(check (float 1e-9)) "total mass" 100.0 (Barnes_hut.total_mass s)

let test_barnes_bodies_move () =
  let p = { Barnes_hut.default_params with Barnes_hut.nbodies = 50; steps = 1 } in
  let s = Barnes_hut.init_system p in
  let before = Barnes_hut.positions s in
  Barnes_hut.step_sequential s;
  let after = Barnes_hut.positions s in
  let moved = ref 0 in
  Array.iteri (fun i (x, y, z) -> if (x, y, z) <> before.(i) then incr moved) after;
  Alcotest.(check bool) (Printf.sprintf "%d bodies moved" !moved) true (!moved > 25)

let test_barnes_energy_finite () =
  let p = { Barnes_hut.default_params with Barnes_hut.nbodies = 80 } in
  let s = Barnes_hut.init_system p in
  for _ = 1 to 5 do
    Barnes_hut.step_sequential s
  done;
  let ke = Barnes_hut.kinetic_energy s in
  Alcotest.(check bool) (Printf.sprintf "kinetic energy %.3f finite" ke) true (Float.is_finite ke && ke >= 0.0);
  Array.iter
    (fun (x, y, z) ->
      Alcotest.(check bool) "positions in unit cube" true
        (x >= 0.0 && x <= 1.0 && y >= 0.0 && y <= 1.0 && z >= 0.0 && z <= 1.0))
    (Barnes_hut.positions s)

let test_barnes_sim_matches_sequential_physics () =
  (* The simulated (allocator-driven) run must produce the same positions
     as the pure sequential stepper: the allocator must not perturb the
     physics. *)
  let p = { Barnes_hut.default_params with Barnes_hut.nbodies = 40; steps = 2 } in
  let seq = Barnes_hut.init_system p in
  Barnes_hut.step_sequential seq;
  Barnes_hut.step_sequential seq;
  let w = Barnes_hut.make ~params:p () in
  let sim = Sim.create ~nprocs:2 () in
  let pf = Sim.platform sim in
  let a = hoard.Alloc_intf.instantiate pf in
  w.Workload_intf.spawn sim pf a ~nthreads:2;
  Sim.run sim;
  (* Positions are not exposed by the workload run; instead verify
     determinism of the run itself against a second identical run. *)
  let sim2 = Sim.create ~nprocs:2 () in
  let pf2 = Sim.platform sim2 in
  let a2 = hoard.Alloc_intf.instantiate pf2 in
  (Barnes_hut.make ~params:p ()).Workload_intf.spawn sim2 pf2 a2 ~nthreads:2;
  Sim.run sim2;
  Alcotest.(check int) "deterministic cycles" (Sim.total_cycles sim) (Sim.total_cycles sim2);
  ignore seq

let () =
  Alcotest.run "workloads"
    [
      ( "lifecycle",
        [
          Alcotest.test_case "all run clean on hoard" `Quick test_all_run_clean;
          Alcotest.test_case "all run on every allocator" `Quick test_all_run_on_every_allocator;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
        ] );
      ( "behaviour",
        [
          Alcotest.test_case "threadtest fixed total work" `Quick test_threadtest_work_scales_down_per_thread;
          Alcotest.test_case "larson bleeds" `Quick test_larson_bleeds_across_threads;
          Alcotest.test_case "active false sharing" `Quick test_active_false_sharing_detected_on_serial;
          Alcotest.test_case "passive false sharing" `Quick test_passive_false_sharing_worse_for_ownership_than_hoard;
          Alcotest.test_case "producer-consumer live bound" `Quick test_producer_consumer_live_bounded;
          Alcotest.test_case "phased blowup separates families" `Quick test_phased_blowup_separates_families;
        ] );
      ( "applications",
        [
          Alcotest.test_case "kv model equivalence" `Quick test_kv_model_equivalence;
          Alcotest.test_case "kv put replaces" `Quick test_kv_put_replaces;
          Alcotest.test_case "doc build/destroy clean" `Quick test_doc_build_destroy_clean;
          Alcotest.test_case "doc deterministic" `Quick test_doc_deterministic_shape;
        ] );
      ( "barnes-physics",
        [
          Alcotest.test_case "mass conserved" `Quick test_barnes_mass_conserved;
          Alcotest.test_case "bodies move" `Quick test_barnes_bodies_move;
          Alcotest.test_case "energy finite" `Quick test_barnes_energy_finite;
          Alcotest.test_case "simulated run deterministic" `Quick test_barnes_sim_matches_sequential_physics;
        ] );
    ]
