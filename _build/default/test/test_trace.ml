(* Allocation traces: validation, generation, serialisation, replay. *)

let mk_ops =
  [
    Trace.Malloc { id = 0; size = 64; tid = 0 };
    Trace.Malloc { id = 1; size = 128; tid = 0 };
    Trace.Free { id = 0; tid = 0 };
    Trace.Malloc { id = 2; size = 32; tid = 1 };
    Trace.Free { id = 1; tid = 1 };
    Trace.Free { id = 2; tid = 1 };
  ]

let test_build_and_read () =
  let t = Trace.of_list mk_ops in
  Alcotest.(check int) "length" 6 (Trace.length t);
  Alcotest.(check bool) "roundtrip list" true (Trace.to_list t = mk_ops);
  match Trace.get t 0 with
  | Trace.Malloc { id; size; tid } ->
    Alcotest.(check (triple int int int)) "first op" (0, 64, 0) (id, size, tid)
  | Trace.Free _ -> Alcotest.fail "expected malloc"

let test_validate_ok () =
  Alcotest.(check bool) "valid" true (Trace.validate (Trace.of_list mk_ops) = Ok ())

let test_validate_rejects_double_free () =
  let bad =
    Trace.of_list [ Trace.Malloc { id = 0; size = 8; tid = 0 }; Trace.Free { id = 0; tid = 0 }; Trace.Free { id = 0; tid = 0 } ]
  in
  Alcotest.(check bool) "rejected" true (Result.is_error (Trace.validate bad))

let test_validate_rejects_free_before_malloc () =
  let bad = Trace.of_list [ Trace.Free { id = 7; tid = 0 } ] in
  Alcotest.(check bool) "rejected" true (Result.is_error (Trace.validate bad))

let test_validate_rejects_bad_size () =
  let bad = Trace.of_list [ Trace.Malloc { id = 0; size = 0; tid = 0 } ] in
  Alcotest.(check bool) "rejected" true (Result.is_error (Trace.validate bad))

let test_max_live () =
  Alcotest.(check int) "peak 192" 192 (Trace.max_live_bytes (Trace.of_list mk_ops))

let test_live_at_end () =
  let t = Trace.of_list [ Trace.Malloc { id = 3; size = 8; tid = 0 }; Trace.Malloc { id = 1; size = 8; tid = 0 } ] in
  Alcotest.(check (list int)) "both live" [ 1; 3 ] (Trace.live_at_end t)

let test_serialise_roundtrip () =
  let t = Trace.of_list mk_ops in
  match Trace.of_string (Trace.to_string t) with
  | Ok t' -> Alcotest.(check bool) "identical" true (Trace.to_list t' = mk_ops)
  | Error m -> Alcotest.fail m

let test_parse_errors () =
  Alcotest.(check bool) "garbage rejected" true (Result.is_error (Trace.of_string "x 1 2\n"));
  Alcotest.(check bool) "bad int rejected" true (Result.is_error (Trace.of_string "m a 8 0\n"))

let test_generate_wellformed () =
  let t = Trace.generate ~ops:5000 ~threads:4 ~live_target:50 ~size_dist:(Trace.Uniform (8, 256)) () in
  Alcotest.(check bool) "valid" true (Trace.validate t = Ok ());
  Alcotest.(check (list int)) "drains clean" [] (Trace.live_at_end t);
  Alcotest.(check bool) "has enough ops" true (Trace.length t >= 5000)

let test_generate_deterministic () =
  let gen () =
    Trace.to_string (Trace.generate ~seed:9 ~ops:1000 ~threads:2 ~live_target:20 ~size_dist:(Trace.Uniform (8, 64)) ())
  in
  Alcotest.(check string) "same trace" (gen ()) (gen ())

let test_generate_size_dists () =
  List.iter
    (fun dist ->
      let t = Trace.generate ~ops:1000 ~threads:2 ~live_target:30 ~size_dist:dist () in
      Trace.iter
        (function
          | Trace.Malloc { size; _ } -> Alcotest.(check bool) "size positive" true (size > 0)
          | Trace.Free _ -> ())
        t)
    [
      Trace.Uniform (1, 1000);
      Trace.Geometric { min_size = 8; mean = 100.0; max_size = 4096 };
      Trace.Mixed [ (0.7, Trace.Uniform (8, 64)); (0.3, Trace.Uniform (1000, 20000)) ];
    ]

let test_replay_host () =
  let t = Trace.generate ~ops:4000 ~threads:3 ~live_target:40 ~size_dist:(Trace.Uniform (8, 2000)) () in
  let a = (Hoard.factory ()).Alloc_intf.instantiate (Platform.host ()) in
  let stats = Trace.replay t a in
  Alcotest.(check int) "all ops replayed" (Trace.length t) stats.Trace.replayed_ops;
  Alcotest.(check int) "allocator empty after" 0 (a.Alloc_intf.stats ()).Alloc_stats.live_bytes;
  Alcotest.(check bool) "peak matches trace" true (stats.Trace.replay_peak_live = Trace.max_live_bytes t);
  a.Alloc_intf.check ()

let test_replay_differential () =
  (* Every allocator must replay the same trace and end empty. *)
  let t = Trace.generate ~seed:17 ~ops:3000 ~threads:2 ~live_target:30 ~size_dist:(Trace.Uniform (8, 4000)) () in
  List.iter
    (fun (f : Alloc_intf.factory) ->
      let a = f.Alloc_intf.instantiate (Platform.host ()) in
      ignore (Trace.replay t a);
      Alcotest.(check int) (f.Alloc_intf.label ^ " empty") 0 (a.Alloc_intf.stats ()).Alloc_stats.live_bytes;
      a.Alloc_intf.check ())
    [
      Serial_alloc.factory ();
      Concurrent_single.factory ();
      Pure_private.factory ();
      Private_ownership.factory ();
      Hoard.factory ();
    ]

let test_replay_sim_multithreaded () =
  let t = Trace.generate ~ops:4000 ~threads:4 ~live_target:40 ~size_dist:(Trace.Uniform (8, 512)) () in
  let sim = Sim.create ~nprocs:4 () in
  let a = (Hoard.factory ()).Alloc_intf.instantiate (Sim.platform sim) in
  Trace.replay_sim t sim a ~nthreads:4;
  Sim.run sim;
  Alcotest.(check int) "allocator empty after" 0 (a.Alloc_intf.stats ()).Alloc_stats.live_bytes;
  a.Alloc_intf.check ()

let test_replay_sim_cross_thread_frees () =
  (* A trace where thread 1 frees what thread 0 allocated. *)
  let ops =
    List.concat
      (List.init 50 (fun i ->
           [ Trace.Malloc { id = i; size = 64; tid = 0 }; Trace.Free { id = i; tid = 1 } ]))
  in
  let t = Trace.of_list ops in
  let sim = Sim.create ~nprocs:2 () in
  let a = (Hoard.factory ()).Alloc_intf.instantiate (Sim.platform sim) in
  Trace.replay_sim t sim a ~nthreads:2;
  Sim.run sim;
  Alcotest.(check int) "empty" 0 (a.Alloc_intf.stats ()).Alloc_stats.live_bytes

let test_replay_sim_crosses_window_boundary () =
  (* Mallocs in one 1024-op window freed by another thread several windows
     later: the deferred-free machinery must resolve them. *)
  let ops = ref [] in
  for i = 0 to 2999 do
    ops := Trace.Malloc { id = i; size = 32; tid = 0 } :: !ops
  done;
  for i = 0 to 2999 do
    ops := Trace.Free { id = i; tid = 1 } :: !ops
  done;
  let t = Trace.of_list (List.rev !ops) in
  (match Trace.validate t with
   | Ok () -> ()
   | Error m -> Alcotest.fail m);
  let sim = Sim.create ~nprocs:2 () in
  let a = (Hoard.factory ()).Alloc_intf.instantiate (Sim.platform sim) in
  Trace.replay_sim t sim a ~nthreads:2;
  Sim.run sim;
  Alcotest.(check int) "all resolved" 0 (a.Alloc_intf.stats ()).Alloc_stats.live_bytes

let test_replay_property =
  QCheck.Test.make ~name:"random traces replay cleanly on hoard" ~count:25
    QCheck.(pair (int_range 100 2000) (int_range 1 4))
    (fun (ops, threads) ->
      let t = Trace.generate ~seed:(ops + threads) ~ops ~threads ~live_target:25 ~size_dist:(Trace.Uniform (1, 6000)) () in
      let a = (Hoard.factory ()).Alloc_intf.instantiate (Platform.host ()) in
      ignore (Trace.replay t a);
      a.Alloc_intf.check ();
      (a.Alloc_intf.stats ()).Alloc_stats.live_bytes = 0)

let () =
  Alcotest.run "trace"
    [
      ( "structure",
        [
          Alcotest.test_case "build/read" `Quick test_build_and_read;
          Alcotest.test_case "validate ok" `Quick test_validate_ok;
          Alcotest.test_case "double free" `Quick test_validate_rejects_double_free;
          Alcotest.test_case "free before malloc" `Quick test_validate_rejects_free_before_malloc;
          Alcotest.test_case "bad size" `Quick test_validate_rejects_bad_size;
          Alcotest.test_case "max live" `Quick test_max_live;
          Alcotest.test_case "live at end" `Quick test_live_at_end;
        ] );
      ( "serialisation",
        [
          Alcotest.test_case "roundtrip" `Quick test_serialise_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
        ] );
      ( "generation",
        [
          Alcotest.test_case "well-formed" `Quick test_generate_wellformed;
          Alcotest.test_case "deterministic" `Quick test_generate_deterministic;
          Alcotest.test_case "size distributions" `Quick test_generate_size_dists;
        ] );
      ( "replay",
        [
          Alcotest.test_case "host replay" `Quick test_replay_host;
          Alcotest.test_case "differential" `Quick test_replay_differential;
          Alcotest.test_case "sim multithreaded" `Quick test_replay_sim_multithreaded;
          Alcotest.test_case "sim cross-thread frees" `Quick test_replay_sim_cross_thread_frees;
          Alcotest.test_case "sim window boundary" `Quick test_replay_sim_crosses_window_boundary;
          QCheck_alcotest.to_alcotest test_replay_property;
        ] );
    ]
