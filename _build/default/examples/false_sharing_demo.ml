(* Demonstrates allocator-induced false sharing, measured directly as
   cache-line invalidations by the coherence simulator.

   The serial allocator hands consecutive 8-byte blocks — sharing one
   cache line — to different processors; their writes then ping-pong the
   line. Hoard's per-processor heaps keep each processor's blocks on its
   own superblocks, so the same program generates orders of magnitude
   fewer invalidations.

     dune exec examples/false_sharing_demo.exe
*)

let run (factory : Alloc_intf.factory) =
  let workload =
    False_sharing.active
      ~params:{ False_sharing.default_params with False_sharing.loops = 800; writes_per_object = 100 }
      ()
  in
  let r = Runner.run (Runner.spec workload factory ~nprocs:4) in
  (r.Runner.r_cycles, r.Runner.r_invalidations, r.Runner.r_ops)

let () =
  print_endline "active-false on a 4-processor machine (each thread: malloc 8B, write 100x, free):\n";
  Printf.printf "%-20s %12s %15s %12s\n" "allocator" "cycles" "invalidations" "inval/op";
  List.iter
    (fun factory ->
      let cycles, invals, ops = run factory in
      Printf.printf "%-20s %12d %15d %12.2f\n" factory.Alloc_intf.label cycles invals
        (float_of_int invals /. float_of_int ops))
    [ Serial_alloc.factory (); Concurrent_single.factory (); Private_ownership.factory (); Hoard.factory () ];
  print_endline "\nThe serial and concurrent-single allocators actively induce false";
  print_endline "sharing (blocks from one cache line go to different processors);";
  print_endline "Hoard and ownership-based heaps avoid it."
