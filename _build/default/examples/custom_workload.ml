(* Building your own experiment from the public API:
   1. generate a synthetic allocation trace (mixed small/large sizes),
   2. replay it against two allocators on identical simulated machines,
   3. compare cycles, fragmentation and coherence traffic.

     dune exec examples/custom_workload.exe
*)

let () =
  (* A trace with an 80/20 mix of small structs and multi-KB buffers,
     4 logical threads, ~60 live objects per thread. *)
  let trace =
    Trace.generate ~seed:2026 ~ops:20_000 ~threads:4 ~live_target:60
      ~size_dist:
        (Trace.Mixed
           [
             (0.8, Trace.Geometric { min_size = 16; mean = 96.0; max_size = 1024 });
             (0.2, Trace.Uniform (2048, 16_384));
           ])
      ()
  in
  (match Trace.validate trace with
   | Ok () -> ()
   | Error m -> failwith m);
  Printf.printf "trace: %d ops, inherent peak live %d bytes\n\n" (Trace.length trace)
    (Trace.max_live_bytes trace);

  let replay_on (factory : Alloc_intf.factory) =
    let sim = Sim.create ~nprocs:4 () in
    let a = factory.Alloc_intf.instantiate (Sim.platform sim) in
    Trace.replay_sim trace sim a ~nthreads:4;
    Sim.run sim;
    a.Alloc_intf.check ();
    let s = a.Alloc_intf.stats () in
    Printf.printf "%-20s cycles=%-10d frag=%-6.2f invalidations=%-8d os_maps=%d\n" factory.Alloc_intf.label
      (Sim.total_cycles sim) (Alloc_stats.fragmentation s)
      (Cache.total_invalidations (Sim.cache sim))
      s.Alloc_stats.os_maps
  in
  List.iter replay_on
    [
      Serial_alloc.factory ();
      Pure_private.factory ();
      Private_ownership.factory ();
      Hoard.factory ();
    ];

  (* Traces serialise to a simple text format for archiving and diffing. *)
  let text = Trace.to_string trace in
  Printf.printf "\nserialised trace: %d bytes; first line: %s\n" (String.length text)
    (List.hd (String.split_on_char '\n' text))
