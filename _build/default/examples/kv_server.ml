(* The memcached-style KV store's direct API: four simulated client
   threads hammer one shared store with gets, puts and deletes, then we
   audit the store and read the allocator's accounting.

     dune exec examples/kv_server.exe
*)

let () =
  let sim = Sim.create ~nprocs:4 () in
  let pf = Sim.platform sim in
  let hoard = Hoard.create pf in
  let a = Hoard.allocator hoard in
  let store = Kv_store.create pf a ~buckets:512 ~stripes:32 in
  let barrier = Sim.new_barrier sim ~parties:4 in
  let hits = Array.make 4 0 and misses = Array.make 4 0 in

  for t = 0 to 3 do
    ignore
      (Sim.spawn sim (fun () ->
           let rng = Rng.create (100 + t) in
           (* Each client owns a key range but reads everyone's. *)
           for key = t * 250 to (t * 250) + 249 do
             Kv_store.put store ~key ~size:(Rng.int_in rng 32 1200)
           done;
           Sim.barrier_wait barrier;
           for _ = 1 to 2500 do
             let key = Rng.int rng 1000 in
             match Rng.int rng 10 with
             | 0 -> Kv_store.put store ~key ~size:(Rng.int_in rng 32 1200)
             | 1 -> ignore (Kv_store.delete store ~key)
             | _ -> (
               match Kv_store.get store ~key with
               | Some _ -> hits.(t) <- hits.(t) + 1
               | None -> misses.(t) <- misses.(t) + 1)
           done;
           Sim.barrier_wait barrier;
           if t = 0 then Kv_store.check store))
  done;
  Sim.run sim;

  Printf.printf "completed in %d simulated cycles\n" (Sim.total_cycles sim);
  Printf.printf "entries live in the store: %d\n" (Kv_store.length store);
  for t = 0 to 3 do
    Printf.printf "client %d: %d hits, %d misses\n" t hits.(t) misses.(t)
  done;
  let s = a.Alloc_intf.stats () in
  Printf.printf "allocator: %d mallocs, live %d KiB, held %d KiB (frag %.2f)\n" s.Alloc_stats.mallocs
    (s.Alloc_stats.live_bytes / 1024) (s.Alloc_stats.held_bytes / 1024) (Alloc_stats.fragmentation s);
  let invals = Cache.total_invalidations (Sim.cache sim) in
  Printf.printf "cache-line invalidations: %d (shared values ping-pong; the allocator adds none)\n" invals
