(* Barnes-Hut n-body on the simulated machine: real octree physics whose
   tree nodes come from the allocator under test. Prints the speedup curve
   for Hoard and the serial allocator, plus a physics sanity summary.

     dune exec examples/barnes_hut_demo.exe
*)

let params = { Barnes_hut.default_params with Barnes_hut.nbodies = 192; steps = 3 }

let run factory nprocs =
  let w = Barnes_hut.make ~params () in
  (Runner.run (Runner.spec w factory ~nprocs)).Runner.r_cycles

let () =
  (* Physics sanity first, with the pure sequential stepper. *)
  let s = Barnes_hut.init_system params in
  Printf.printf "system: %d bodies, total mass %.1f\n" params.Barnes_hut.nbodies (Barnes_hut.total_mass s);
  for step = 1 to 3 do
    Barnes_hut.step_sequential s;
    Printf.printf "  step %d: kinetic energy %.4f\n" step (Barnes_hut.kinetic_energy s)
  done;

  print_endline "\nspeedup of the simulated parallel run (tree nodes heap-allocated each step):";
  Printf.printf "%4s %14s %14s\n" "P" "hoard" "serial";
  let base_h = run (Hoard.factory ()) 1 in
  let base_s = run (Serial_alloc.factory ()) 1 in
  List.iter
    (fun p ->
      let h = run (Hoard.factory ()) p in
      let se = run (Serial_alloc.factory ()) p in
      Printf.printf "%4d %14.2f %14.2f\n" p (float_of_int base_h /. float_of_int h)
        (float_of_int base_s /. float_of_int se))
    [ 1; 2; 4; 8 ];
  print_endline "\nBarnes-Hut is compute-dominated, so both allocators scale, with the";
  print_endline "serial allocator paying for its lock during the tree-build churn."
