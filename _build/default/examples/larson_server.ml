(* The Larson server benchmark: threads continually replace objects in
   their working sets and periodically hand whole sets to the next thread
   (cross-thread frees, "bleeding"). Prints throughput per allocator as
   processors scale — the paper's headline server result.

     dune exec examples/larson_server.exe -- [max_procs]
*)

let () =
  let max_procs =
    if Array.length Sys.argv > 1 then
      match int_of_string_opt Sys.argv.(1) with
      | Some n when n >= 1 -> n
      | _ ->
        prerr_endline "usage: larson_server [max_procs]";
        exit 1
    else 8
  in
  let workload =
    Larson.make
      ~params:{ Larson.default_params with Larson.rounds = 200; handoffs = 4; objects_per_thread = 800 }
      ()
  in
  let allocators =
    [ Serial_alloc.factory (); Concurrent_single.factory (); Private_ownership.factory (); Hoard.factory () ]
  in
  Printf.printf "Larson throughput (memory ops per Mcycle), up to %d processors:\n\n" max_procs;
  Printf.printf "%4s" "P";
  List.iter (fun f -> Printf.printf " %18s" f.Alloc_intf.label) allocators;
  print_newline ();
  let p = ref 1 in
  while !p <= max_procs do
    Printf.printf "%4d" !p;
    List.iter
      (fun f ->
        let r = Runner.run (Runner.spec workload f ~nprocs:!p) in
        Printf.printf " %18.0f" (Runner.ops_per_mcycle r))
      allocators;
    print_newline ();
    p := !p * 2
  done;
  print_endline "\nHoard and ownership-based heaps keep scaling; the serial allocator's";
  print_endline "single lock caps throughput regardless of processor count."
