examples/barnes_hut_demo.ml: Barnes_hut Hoard List Printf Runner Serial_alloc
