examples/larson_server.mli:
