examples/false_sharing_demo.mli:
