examples/custom_workload.ml: Alloc_intf Alloc_stats Cache Hoard List Printf Private_ownership Pure_private Serial_alloc Sim String Trace
