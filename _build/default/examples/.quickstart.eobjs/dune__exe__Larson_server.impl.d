examples/larson_server.ml: Alloc_intf Array Concurrent_single Hoard Larson List Printf Private_ownership Runner Serial_alloc Sys
