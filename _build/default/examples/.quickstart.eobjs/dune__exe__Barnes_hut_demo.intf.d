examples/barnes_hut_demo.mli:
