examples/quickstart.mli:
