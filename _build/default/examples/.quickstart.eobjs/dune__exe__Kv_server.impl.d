examples/kv_server.ml: Alloc_intf Alloc_stats Array Cache Hoard Kv_store Printf Rng Sim
