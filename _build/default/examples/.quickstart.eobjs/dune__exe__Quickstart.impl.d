examples/quickstart.ml: Alloc_intf Alloc_stats Array Hoard Platform Printf Sim
