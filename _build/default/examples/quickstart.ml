(* Quickstart: build a 4-processor simulated machine, run four threads that
   allocate and free through Hoard, and read the allocator's accounting.

     dune exec examples/quickstart.exe
*)

let () =
  (* A simulated 4-processor machine with the default cost model. *)
  let sim = Sim.create ~nprocs:4 () in
  let platform = Sim.platform sim in

  (* The paper's allocator, with its default configuration (S = 8 KiB,
     f = 1/4). Baselines expose the same [Alloc_intf.t] interface. *)
  let hoard = Hoard.create platform in
  let a = Hoard.allocator hoard in

  (* Four threads, one per processor: each allocates a batch of objects,
     writes to them, and frees them. *)
  for t = 0 to 3 do
    ignore
      (Sim.spawn sim (fun () ->
           let objs = Array.init 1000 (fun i -> a.Alloc_intf.malloc (8 + (8 * (i mod 32)))) in
           Array.iter (fun p -> platform.Platform.write ~addr:p ~len:8) objs;
           Sim.work 1000;
           Array.iter a.Alloc_intf.free objs;
           Printf.printf "thread %d done on processor %d\n" t (Sim.self_proc ())))
  done;

  Sim.run sim;

  let s = a.Alloc_intf.stats () in
  Printf.printf "\ncompleted in %d simulated cycles\n" (Sim.total_cycles sim);
  Printf.printf "mallocs: %d  frees: %d\n" s.Alloc_stats.mallocs s.Alloc_stats.frees;
  Printf.printf "peak live: %d bytes, peak held from OS: %d bytes (fragmentation %.2f)\n"
    s.Alloc_stats.peak_live_bytes s.Alloc_stats.peak_held_bytes (Alloc_stats.fragmentation s);
  Printf.printf "superblock transfers to/from global heap: %d/%d\n" s.Alloc_stats.sb_to_global
    s.Alloc_stats.sb_from_global;
  (* Per-heap view: heap 0 is the global heap. *)
  for i = 0 to Hoard.nheaps hoard do
    let info = Hoard.heap_info hoard i in
    Printf.printf "heap %d: %d superblocks, u=%dB a=%dB\n" i info.Hoard.superblocks info.Hoard.u_bytes
      info.Hoard.a_bytes
  done
