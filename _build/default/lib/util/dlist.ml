type 'a node = {
  v : 'a;
  mutable prev : 'a node option;
  mutable next : 'a node option;
  mutable home : 'a t option;
}

and 'a t = {
  mutable first : 'a node option;
  mutable last : 'a node option;
  mutable len : int;
}

let create () = { first = None; last = None; len = 0 }

let length t = t.len

let is_empty t = t.len = 0

let value n = n.v

let push_front t v =
  let n = { v; prev = None; next = t.first; home = Some t } in
  (match t.first with
   | None -> t.last <- Some n
   | Some f -> f.prev <- Some n);
  t.first <- Some n;
  t.len <- t.len + 1;
  n

let push_back t v =
  let n = { v; prev = t.last; next = None; home = Some t } in
  (match t.last with
   | None -> t.first <- Some n
   | Some l -> l.next <- Some n);
  t.last <- Some n;
  t.len <- t.len + 1;
  n

let remove t n =
  (match n.home with
   | Some h when h == t -> ()
   | _ -> invalid_arg "Dlist.remove: node not in this list");
  (match n.prev with
   | None -> t.first <- n.next
   | Some p -> p.next <- n.next);
  (match n.next with
   | None -> t.last <- n.prev
   | Some s -> s.prev <- n.prev);
  n.prev <- None;
  n.next <- None;
  n.home <- None;
  t.len <- t.len - 1

let pop_front t =
  match t.first with
  | None -> None
  | Some n ->
    remove t n;
    Some n.v

let peek_front t =
  match t.first with
  | None -> None
  | Some n -> Some n.v

let peek_back t =
  match t.last with
  | None -> None
  | Some n -> Some n.v

let iter f t =
  let rec loop = function
    | None -> ()
    | Some n ->
      let next = n.next in
      f n.v;
      loop next
  in
  loop t.first

let find p t =
  let rec loop = function
    | None -> None
    | Some n -> if p n.v then Some n.v else loop n.next
  in
  loop t.first

let to_list t =
  let rec loop acc = function
    | None -> List.rev acc
    | Some n -> loop (n.v :: acc) n.next
  in
  loop [] t.first
