type t = {
  mutable n : int;
  mutable total : float;
  mutable mn : float;
  mutable mx : float;
  mutable mean_acc : float;
  mutable m2 : float;
}

let create () = { n = 0; total = 0.0; mn = nan; mx = nan; mean_acc = 0.0; m2 = 0.0 }

let add t x =
  t.n <- t.n + 1;
  t.total <- t.total +. x;
  if t.n = 1 then begin
    t.mn <- x;
    t.mx <- x
  end
  else begin
    if x < t.mn then t.mn <- x;
    if x > t.mx then t.mx <- x
  end;
  let delta = x -. t.mean_acc in
  t.mean_acc <- t.mean_acc +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean_acc))

let count t = t.n

let sum t = t.total

let min_value t = t.mn

let max_value t = t.mx

let mean t = if t.n = 0 then nan else t.mean_acc

let variance t = if t.n = 0 then nan else t.m2 /. float_of_int t.n

let stddev t = sqrt (variance t)
