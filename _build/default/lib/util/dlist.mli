(** Intrusive doubly-linked lists with O(1) removal by node handle.

    Superblocks migrate constantly between fullness groups; each group is a
    [Dlist.t] and each superblock keeps the [node] of its current group so
    that moving it costs O(1), as in the paper's implementation. *)

type 'a t
(** A list of values of type ['a]. *)

type 'a node
(** A handle to one element inside some list. *)

val create : unit -> 'a t

val length : 'a t -> int
(** O(1). *)

val is_empty : 'a t -> bool

val push_front : 'a t -> 'a -> 'a node

val push_back : 'a t -> 'a -> 'a node

val value : 'a node -> 'a

val remove : 'a t -> 'a node -> unit
(** [remove t n] unlinks [n] from [t]. Raises [Invalid_argument] if [n] is
    not currently linked in [t]. *)

val pop_front : 'a t -> 'a option

val peek_front : 'a t -> 'a option

val peek_back : 'a t -> 'a option

val iter : ('a -> unit) -> 'a t -> unit
(** Front-to-back iteration. *)

val find : ('a -> bool) -> 'a t -> 'a option
(** First element (front-to-back) satisfying the predicate. *)

val to_list : 'a t -> 'a list
(** Front-to-back snapshot. *)
