(** ASCII line charts for the benchmark figures.

    Renders one or more (x, y) series on a character grid with axes,
    per-series markers and a legend — enough to see the *shape* of a
    speedup curve in terminal output, which is the quantity this
    reproduction validates. *)

val render :
  title:string ->
  ?width:int ->
  ?height:int ->
  ?x_label:string ->
  ?y_label:string ->
  series:(string * (float * float) list) list ->
  unit ->
  string
(** [render ~title ~series ()] plots every series on shared axes
    ([width] x [height] interior cells, defaults 60 x 16). Series get the
    markers ['*'; '+'; 'o'; 'x'; '#'; '@'] in order; coincident points
    show the later series' marker. Empty series are skipped; an entirely
    empty plot renders the frame only. *)

val markers : char array
(** The marker cycle, exposed for tests. *)
