let markers = [| '*'; '+'; 'o'; 'x'; '#'; '@' |]

let render ~title ?(width = 60) ?(height = 16) ?(x_label = "x") ?(y_label = "y") ~series () =
  let points = List.concat_map snd series in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf ("== " ^ title ^ " ==\n");
  (match points with
   | [] -> Buffer.add_string buf "(no data)\n"
   | (x0, y0) :: rest ->
     let fold f init = List.fold_left (fun acc (x, y) -> f acc x y) init rest in
     let xmin = fold (fun acc x _ -> Float.min acc x) x0 in
     let xmax = fold (fun acc x _ -> Float.max acc x) x0 in
     let ymin = Float.min 0.0 (fold (fun acc _ y -> Float.min acc y) y0) in
     let ymax = fold (fun acc _ y -> Float.max acc y) y0 in
     let ymax = if ymax = ymin then ymin +. 1.0 else ymax in
     let xmax = if xmax = xmin then xmin +. 1.0 else xmax in
     let grid = Array.make_matrix height width ' ' in
     let cell_of x y =
       let cx = int_of_float ((x -. xmin) /. (xmax -. xmin) *. float_of_int (width - 1)) in
       let cy = int_of_float ((y -. ymin) /. (ymax -. ymin) *. float_of_int (height - 1)) in
       (max 0 (min (width - 1) cx), max 0 (min (height - 1) cy))
     in
     List.iteri
       (fun i (_, pts) ->
         let marker = markers.(i mod Array.length markers) in
         List.iter
           (fun (x, y) ->
             let cx, cy = cell_of x y in
             grid.(height - 1 - cy).(cx) <- marker)
           pts)
       series;
     (* y axis with three tick labels: max, mid, min. *)
     let label row =
       let frac = float_of_int (height - 1 - row) /. float_of_int (height - 1) in
       ymin +. (frac *. (ymax -. ymin))
     in
     Array.iteri
       (fun row line ->
         let tick = row = 0 || row = height - 1 || row = height / 2 in
         if tick then Buffer.add_string buf (Printf.sprintf "%8.2f |" (label row))
         else Buffer.add_string buf "         |";
         Buffer.add_string buf (String.init width (fun c -> line.(c)));
         Buffer.add_char buf '\n')
       grid;
     Buffer.add_string buf ("         +" ^ String.make width '-' ^ "\n");
     Buffer.add_string buf
       (Printf.sprintf "          %-8.6g%s%8.6g   (%s vs %s)\n" xmin
          (String.make (max 1 (width - 16)) ' ')
          xmax x_label y_label);
     List.iteri
       (fun i (name, _) ->
         Buffer.add_string buf (Printf.sprintf "          %c %s\n" markers.(i mod Array.length markers) name))
       series);
  Buffer.contents buf
