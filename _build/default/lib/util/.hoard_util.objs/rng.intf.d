lib/util/rng.mli:
