lib/util/table.mli:
