lib/util/dlist.mli:
