lib/util/stats_acc.ml:
