(** Running scalar statistics (count / sum / min / max / mean / variance).

    Welford's algorithm; numerically stable for long benchmark runs. *)

type t

val create : unit -> t

val add : t -> float -> unit

val count : t -> int

val sum : t -> float

val min_value : t -> float
(** [nan] when empty. *)

val max_value : t -> float
(** [nan] when empty. *)

val mean : t -> float
(** [nan] when empty. *)

val variance : t -> float
(** Population variance; [nan] when empty. *)

val stddev : t -> float
