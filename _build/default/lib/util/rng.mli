(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic component of the reproduction (workload generators,
    property tests, trace generators) draws from an explicitly seeded [Rng.t]
    so that runs are bit-reproducible across hosts. *)

type t

val create : int -> t
(** [create seed] returns a generator seeded with [seed]. Distinct seeds
    yield well-decorrelated streams. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] derives a new generator from [t], advancing [t]. The derived
    stream is decorrelated from the parent's subsequent output. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] (inclusive). Requires
    [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin flip. *)

val choose : t -> 'a array -> 'a
(** Uniformly pick an element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val exponential : t -> float -> float
(** [exponential t mean] draws from an exponential distribution with the
    given mean. Used for object-lifetime models. *)
