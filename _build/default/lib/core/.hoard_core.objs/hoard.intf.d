lib/core/hoard.mli: Alloc_intf Format Hoard_config Platform
