lib/core/hoard.ml: Alloc_intf Alloc_stats Array Format Heap_core Hoard_config Locked_large Platform Printf Sb_registry Size_class Superblock
