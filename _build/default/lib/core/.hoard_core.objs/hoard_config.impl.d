lib/core/hoard_config.ml: Format
