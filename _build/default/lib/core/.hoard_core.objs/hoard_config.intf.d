lib/core/hoard_config.mli: Format
