(** Memory-consumption timelines.

    Wraps an allocator to sample (simulated time, held bytes, live bytes)
    every few operations, turning the blowup *bound* experiments into
    curves: pure private heaps' held memory climbs forever under
    producer-consumer while Hoard's stays pinned to the live line. *)

type sample = { at : int;  (** simulated cycles *) held : int; live : int }

type t

val wrap : ?every:int -> Alloc_intf.t -> t * Alloc_intf.t
(** Samples once per [every] operations (default 32). Simulated-platform
    only (timestamps come from {!Sim.now}). *)

val samples : t -> sample list
(** In chronological order. *)

val peak_held : t -> int

val plot : (string * t) list -> title:string -> string
(** Held-bytes-over-time curves (KiB) for several labelled timelines on
    one chart. *)
