type t = { mallocs : Histogram.t; frees : Histogram.t }

let bounds = Histogram.exponential_bounds ~lo:8 ~hi:4_194_304

let wrap (a : Alloc_intf.t) =
  let probe = { mallocs = Histogram.create ~bounds; frees = Histogram.create ~bounds } in
  let timed hist f =
    let t0 = Sim.now () in
    let r = f () in
    Histogram.add hist (Sim.now () - t0);
    r
  in
  ( probe,
    {
      a with
      Alloc_intf.malloc = (fun size -> timed probe.mallocs (fun () -> a.Alloc_intf.malloc size));
      free = (fun addr -> timed probe.frees (fun () -> a.Alloc_intf.free addr));
    } )

let malloc_latencies t = t.mallocs

let free_latencies t = t.frees
