type sample = { at : int; held : int; live : int }

type t = { mutable rev_samples : sample list; mutable ops : int; every : int }

let record t (a : Alloc_intf.t) =
  t.ops <- t.ops + 1;
  if t.ops mod t.every = 0 then begin
    let s = a.Alloc_intf.stats () in
    t.rev_samples <-
      { at = Sim.now (); held = s.Alloc_stats.held_bytes; live = s.Alloc_stats.live_bytes } :: t.rev_samples
  end

let wrap ?(every = 32) (a : Alloc_intf.t) =
  if every < 1 then invalid_arg "Timeline.wrap: every must be >= 1";
  let t = { rev_samples = []; ops = 0; every } in
  ( t,
    {
      a with
      Alloc_intf.malloc =
        (fun size ->
          let p = a.Alloc_intf.malloc size in
          record t a;
          p);
      free =
        (fun addr ->
          a.Alloc_intf.free addr;
          record t a);
    } )

let samples t = List.rev t.rev_samples

let peak_held t = List.fold_left (fun acc s -> max acc s.held) 0 t.rev_samples

let plot labelled ~title =
  let series =
    List.map
      (fun (label, t) ->
        (label, List.map (fun s -> (float_of_int s.at, float_of_int s.held /. 1024.0)) (samples t)))
      labelled
  in
  Ascii_plot.render ~title ~x_label:"cycles" ~y_label:"held KiB" ~series ()
