lib/harness/timeline.mli: Alloc_intf
