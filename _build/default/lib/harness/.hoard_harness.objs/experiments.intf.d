lib/harness/experiments.mli: Alloc_intf Table Workload_intf
