lib/harness/runner.ml: Alloc_intf Alloc_stats Cache Cost_model List Sim Workload_intf
