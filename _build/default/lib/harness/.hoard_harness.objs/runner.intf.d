lib/harness/runner.mli: Alloc_intf Alloc_stats Cost_model Sim Workload_intf
