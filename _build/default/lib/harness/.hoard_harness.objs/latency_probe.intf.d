lib/harness/latency_probe.mli: Alloc_intf Histogram
