lib/harness/timeline.ml: Alloc_intf Alloc_stats Ascii_plot List Sim
