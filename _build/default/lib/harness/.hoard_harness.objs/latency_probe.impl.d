lib/harness/latency_probe.ml: Alloc_intf Histogram Sim
