lib/baselines/serial_alloc.ml: Alloc_intf Alloc_stats Heap_core Locked_large Platform Sb_registry Size_class Superblock
