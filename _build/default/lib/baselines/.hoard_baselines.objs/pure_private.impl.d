lib/baselines/pure_private.ml: Alloc_intf Alloc_stats Array Hashtbl List Locked_large Platform Sb_registry Size_class Superblock
