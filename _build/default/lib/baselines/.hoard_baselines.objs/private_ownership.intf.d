lib/baselines/private_ownership.mli: Alloc_intf Platform
