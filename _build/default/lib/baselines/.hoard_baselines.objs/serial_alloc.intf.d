lib/baselines/serial_alloc.mli: Alloc_intf Platform
