lib/baselines/private_threshold.mli: Alloc_intf Platform
