lib/baselines/private_threshold.ml: Alloc_intf Alloc_stats Array Hashtbl List Locked_large Platform Printf Sb_registry Size_class Superblock
