lib/baselines/concurrent_single.ml: Alloc_intf Alloc_stats Array Heap_core Locked_large Platform Printf Sb_registry Size_class Superblock
