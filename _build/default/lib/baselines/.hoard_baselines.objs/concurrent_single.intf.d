lib/baselines/concurrent_single.mli: Alloc_intf Platform
