lib/baselines/pure_private.mli: Alloc_intf Platform
