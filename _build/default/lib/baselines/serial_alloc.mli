(** Serial single-heap allocator ("serial single heap" row of the paper's
    taxonomy; models Solaris malloc).

    One heap of superblocks behind one lock. Fast and memory-efficient on
    one processor; on multiprocessors every malloc and free serialises on
    the lock (heap contention) and consecutive allocations by different
    threads share cache lines (actively induced false sharing). *)

type t

val create : ?sb_size:int -> ?path_work:int -> ?release_threshold:int -> Platform.t -> t

val allocator : t -> Alloc_intf.t

val factory : ?sb_size:int -> unit -> Alloc_intf.factory

val check : t -> unit
