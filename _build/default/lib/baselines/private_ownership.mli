(** Private heaps with ownership ("private heaps with ownership" taxonomy
    row; models Ptmalloc/MTmalloc arenas).

    One heap per processor, each with its own lock. A freed block returns
    to the heap *owning* its superblock, so — unlike pure private heaps —
    blowup is bounded; but because no memory ever moves between heaps or
    back to the OS, each heap retains its high-water mark and worst-case
    consumption is O(P * U), the factor-of-P blowup the paper measures for
    this family. *)

type t

val create : ?sb_size:int -> ?path_work:int -> ?nheaps:int -> Platform.t -> t

val allocator : t -> Alloc_intf.t

val factory : ?sb_size:int -> unit -> Alloc_intf.factory

val heap_held_bytes : t -> heap:int -> int

val check : t -> unit
