(** Private heaps with thresholds (the paper's fifth taxonomy row; models
    the Vee & Hsu allocator and the DYNIX kernel allocator).

    Like pure private heaps, each thread allocates from unlocked per-thread
    free lists — but every list has a *threshold*: when a thread's free
    list for a size class exceeds [threshold] blocks, half of them are
    flushed to a locked global pool, and a thread whose list is empty
    refills a batch from that pool before carving new memory. Freed memory
    therefore circulates between threads (bounded blowup, unlike pure
    private heaps) at the price of periodic lock traffic and of passive
    false sharing: blocks move between threads in batches with no regard
    for cache-line boundaries. *)

type t

val create : ?sb_size:int -> ?path_work:int -> ?threshold:int -> Platform.t -> t

val allocator : t -> Alloc_intf.t

val factory : ?sb_size:int -> ?threshold:int -> unit -> Alloc_intf.factory

val global_pool_blocks : t -> sclass:int -> int
(** Blocks currently parked in the global pool of a class (tests). *)

val check : t -> unit
