(** Concurrent single heap ("concurrent single heap" taxonomy row).

    One shared pool of superblocks, but fine-grained locking: each size
    class has its own sub-heap and lock, so threads allocating different
    sizes proceed in parallel. Still a single logical heap: all threads
    draw blocks from the same superblocks, so active false sharing is
    rampant, and same-size-class traffic serialises on one lock. Blowup
    stays O(1), as in the paper's analysis of this family. *)

type t

val create : ?sb_size:int -> ?path_work:int -> ?release_threshold:int -> Platform.t -> t

val allocator : t -> Alloc_intf.t

val factory : ?sb_size:int -> unit -> Alloc_intf.factory

val check : t -> unit
