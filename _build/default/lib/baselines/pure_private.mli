(** Pure private heaps ("pure private heaps" taxonomy row; models the
    STL/Cilk per-thread allocators).

    Each thread owns a private heap and never takes a lock on the fast
    path. A freed block goes onto the *freeing* thread's free list,
    whatever thread allocated it. This is fast and avoids heap contention,
    but — as the paper proves — suffers unbounded blowup: in a
    producer-consumer pattern the producer keeps mapping fresh superblocks
    while the freed memory accumulates, unusable, on the consumer's lists.
    Memory is never returned to the OS. Cross-thread frees also re-home
    blocks, passively inducing false sharing. *)

type t

val create : ?sb_size:int -> ?path_work:int -> Platform.t -> t

val allocator : t -> Alloc_intf.t

val factory : ?sb_size:int -> unit -> Alloc_intf.factory

val thread_free_bytes : t -> tid:int -> int
(** Bytes sitting on one thread's private free lists (blowup diagnostics). *)

val check : t -> unit
