(** shbench (paper Table 2): MicroQuill SmartHeap-style benchmark.

    Each thread keeps a working set of slots and continually replaces a
    random slot with a freshly allocated object of random size, mixing
    sizes and lifetimes. Stresses size-class management and, on shared
    heaps, induces heavy lock traffic across classes. *)

type params = {
  ops : int;  (** total replace operations, divided among threads *)
  slots_per_thread : int;  (** live working set per thread *)
  min_size : int;
  max_size : int;  (** paper: sizes up to 1000 bytes *)
  work_per_op : int;
  seed : int;
}

val default_params : params

val make : ?params:params -> unit -> Workload_intf.t
