(** A DOM-style document builder — parser-like allocation churn.

    Each thread repeatedly parses a "document": it builds a random tree
    whose element nodes and text blobs are allocator blocks, traverses it
    (reads plus compute), and tears the whole thing down. The pattern —
    bursts of small allocations with correlated lifetimes ending in a bulk
    free — is the classic browser/compiler workload, and is thread-local
    (no sharing), complementing the server-style {!Kv_store}. *)

type params = {
  documents : int;  (** documents parsed in total, divided among threads *)
  max_depth : int;
  fanout : int;  (** maximum children per element *)
  text_mean : float;  (** mean text-blob size (geometric), bytes *)
  work_per_node : int;
  seed : int;
}

val default_params : params

val make : ?params:params -> unit -> Workload_intf.t

(** {2 Direct API (tests)} *)

type doc

val build : Platform.t -> Alloc_intf.t -> Rng.t -> params -> doc
(** Parse one document (allocates its nodes). *)

val node_count : doc -> int

val traverse : Platform.t -> doc -> work_per_node:int -> unit

val destroy : Alloc_intf.t -> doc -> unit
(** Frees every node and text blob. *)
