type t = {
  w_name : string;
  w_describe : string;
  spawn : Sim.t -> Platform.t -> Alloc_intf.t -> nthreads:int -> unit;
  total_ops : nthreads:int -> int;
}
