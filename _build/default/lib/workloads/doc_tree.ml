type params = {
  documents : int;
  max_depth : int;
  fanout : int;
  text_mean : float;
  work_per_node : int;
  seed : int;
}

let default_params =
  { documents = 160; max_depth = 5; fanout = 4; text_mean = 80.0; work_per_node = 6; seed = 9000 }

type node = {
  elem_addr : int; (* element struct on the heap under test *)
  text_addr : int; (* text blob, 0 if none *)
  text_len : int;
  children : node list;
}

type doc = { root : node; nodes : int }

let elem_bytes = 80

let rec build_node (pf : Platform.t) (a : Alloc_intf.t) rng p ~depth ~count =
  let elem_addr = a.Alloc_intf.malloc elem_bytes in
  pf.Platform.write ~addr:elem_addr ~len:elem_bytes;
  incr count;
  let text_len = if Rng.bool rng then 1 + int_of_float (Rng.exponential rng p.text_mean) else 0 in
  let text_addr =
    if text_len > 0 then begin
      let addr = a.Alloc_intf.malloc text_len in
      pf.Platform.write ~addr ~len:(min text_len 256);
      incr count;
      addr
    end
    else 0
  in
  let children =
    if depth >= p.max_depth then []
    else begin
      (* Explicit order: List.init's evaluation order is unspecified and
         the RNG must be drawn deterministically. *)
      let n = Rng.int rng (p.fanout + 1) in
      let rec mk i acc = if i = 0 then List.rev acc else mk (i - 1) (build_node pf a rng p ~depth:(depth + 1) ~count :: acc) in
      mk n []
    end
  in
  { elem_addr; text_addr; text_len; children }

let build pf a rng p =
  let count = ref 0 in
  let root = build_node pf a rng p ~depth:0 ~count in
  { root; nodes = !count }

let node_count d = d.nodes

let traverse (pf : Platform.t) d ~work_per_node =
  let rec visit n =
    pf.Platform.read ~addr:n.elem_addr ~len:32;
    if n.text_addr <> 0 then pf.Platform.read ~addr:n.text_addr ~len:(min n.text_len 128);
    Sim.work work_per_node;
    List.iter visit n.children
  in
  visit d.root

let destroy (a : Alloc_intf.t) d =
  let rec free_node n =
    List.iter free_node n.children;
    if n.text_addr <> 0 then a.Alloc_intf.free n.text_addr;
    a.Alloc_intf.free n.elem_addr
  in
  free_node d.root

let make ?(params = default_params) () =
  let spawn sim (pf : Platform.t) (a : Alloc_intf.t) ~nthreads =
    let per_thread = params.documents / nthreads in
    for t = 0 to nthreads - 1 do
      ignore
        (Sim.spawn sim (fun () ->
             let rng = Rng.create (params.seed + t) in
             for _ = 1 to per_thread do
               let doc = build pf a rng params in
               traverse pf doc ~work_per_node:params.work_per_node;
               destroy a doc
             done))
    done
  in
  {
    Workload_intf.w_name = "doc-tree";
    w_describe =
      Printf.sprintf "parser churn: %d documents, depth <= %d, fanout <= %d, text ~%.0fB" params.documents
        params.max_depth params.fanout params.text_mean;
    spawn;
    (* Tree sizes are random; approximate by expected nodes per document. *)
    total_ops =
      (fun ~nthreads ->
        let expected_nodes = 3 * int_of_float (float_of_int params.fanout ** 2.5) in
        2 * (params.documents / nthreads) * nthreads * expected_nodes);
  }
