(** Benchmark programs that drive an allocator on the simulated machine.

    A workload registers its threads on a {!Sim.t}; the harness then runs
    the simulation and reads the results. Workloads scale their total work
    inversely with the thread count, so completion cycles at [P] threads
    against cycles at 1 thread gives the paper's speedup curves. *)

type t = {
  w_name : string;
  w_describe : string;
  spawn : Sim.t -> Platform.t -> Alloc_intf.t -> nthreads:int -> unit;
      (** Registers [nthreads] simulated threads implementing the benchmark.
          Must be called once, before [Sim.run]. *)
  total_ops : nthreads:int -> int;
      (** Memory operations (mallocs + frees) a full run performs — used
          for throughput reporting. *)
}
