type params = {
  loops : int;
  writes_per_object : int;
  size : int;
  seed : int;
}

let default_params = { loops = 800; writes_per_object = 100; size = 8; seed = 4000 }

(* The inner loop shared by both variants. *)
let churn (pf : Platform.t) (a : Alloc_intf.t) ~loops ~writes ~size =
  for _ = 1 to loops do
    let p = a.Alloc_intf.malloc size in
    for _ = 1 to writes do
      pf.Platform.write ~addr:p ~len:size
    done;
    a.Alloc_intf.free p
  done

let active ?(params = default_params) () =
  let { loops; writes_per_object; size; _ } = params in
  let spawn sim pf a ~nthreads =
    let per_thread = loops / nthreads in
    for _ = 1 to nthreads do
      ignore (Sim.spawn sim (fun () -> churn pf a ~loops:per_thread ~writes:writes_per_object ~size))
    done
  in
  {
    Workload_intf.w_name = "active-false";
    w_describe =
      Printf.sprintf "%d alloc/[%d writes]/free cycles of %dB objects" loops writes_per_object size;
    spawn;
    total_ops = (fun ~nthreads -> 2 * (loops / nthreads) * nthreads);
  }

let passive ?(params = default_params) () =
  let { loops; writes_per_object; size; _ } = params in
  let spawn sim pf (a : Alloc_intf.t) ~nthreads =
    let per_thread = loops / nthreads in
    let handout = Array.make nthreads 0 in
    let barrier = Sim.new_barrier sim ~parties:nthreads in
    for t = 0 to nthreads - 1 do
      ignore
        (Sim.spawn sim (fun () ->
             (* Thread 0 allocates everyone's seed object back-to-back, so
                they share cache lines. *)
             if t = 0 then
               for i = 0 to nthreads - 1 do
                 handout.(i) <- a.Alloc_intf.malloc size
               done;
             Sim.barrier_wait barrier;
             (* Each thread frees "its" object — putting memory adjacent to
                other threads' objects into its own purview — then churns. *)
             a.Alloc_intf.free handout.(t);
             churn pf a ~loops:per_thread ~writes:writes_per_object ~size))
    done
  in
  {
    Workload_intf.w_name = "passive-false";
    w_describe =
      Printf.sprintf "seed objects handed out by thread 0, then %d alloc/[%d writes]/free cycles of %dB"
        loops writes_per_object size;
    spawn;
    total_ops = (fun ~nthreads -> (2 * (loops / nthreads) * nthreads) + (2 * nthreads));
  }
