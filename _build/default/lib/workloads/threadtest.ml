type params = {
  iterations : int;
  objects : int;
  size : int;
  work_per_op : int;
}

let default_params = { iterations = 10; objects = 4000; size = 8; work_per_op = 4 }

let make ?(params = default_params) () =
  let { iterations; objects; size; work_per_op } = params in
  let spawn sim (pf : Platform.t) (a : Alloc_intf.t) ~nthreads =
    let per_thread = objects / nthreads in
    for _ = 1 to nthreads do
      ignore
        (Sim.spawn sim (fun () ->
             let batch = Array.make per_thread 0 in
             for _ = 1 to iterations do
               for i = 0 to per_thread - 1 do
                 let p = a.Alloc_intf.malloc size in
                 pf.Platform.write ~addr:p ~len:size;
                 Sim.work work_per_op;
                 batch.(i) <- p
               done;
               for i = 0 to per_thread - 1 do
                 a.Alloc_intf.free batch.(i);
                 Sim.work work_per_op
               done
             done))
    done
  in
  {
    Workload_intf.w_name = "threadtest";
    w_describe =
      Printf.sprintf "%d rounds x %d objects of %dB, allocate-then-free batches" iterations objects size;
    spawn;
    total_ops = (fun ~nthreads -> 2 * iterations * (objects / nthreads) * nthreads);
  }
