type params = {
  rounds : int;
  handoffs : int;
  objects_per_thread : int;
  min_size : int;
  max_size : int;
  work_per_op : int;
  seed : int;
}

let default_params =
  { rounds = 400; handoffs = 5; objects_per_thread = 50; min_size = 10; max_size = 100; work_per_op = 5; seed = 3000 }

let make ?(params = default_params) () =
  let { rounds; handoffs; objects_per_thread; min_size; max_size; work_per_op; seed } = params in
  let spawn sim (pf : Platform.t) (a : Alloc_intf.t) ~nthreads =
    (* One mailbox per thread; handoffs rotate object sets around the ring
       under barrier synchronisation, so thread t frees what t-1 allocated. *)
    let mailboxes = Array.make nthreads [||] in
    let barrier = Sim.new_barrier sim ~parties:nthreads in
    for t = 0 to nthreads - 1 do
      ignore
        (Sim.spawn sim (fun () ->
             let rng = Rng.create (seed + t) in
             let mine =
               ref
                 (Array.init objects_per_thread (fun _ ->
                      let size = Rng.int_in rng min_size max_size in
                      let p = a.Alloc_intf.malloc size in
                      pf.Platform.write ~addr:p ~len:(min size 64);
                      p))
             in
             for _ = 1 to handoffs do
               for _ = 1 to rounds do
                 let i = Rng.int rng objects_per_thread in
                 a.Alloc_intf.free !mine.(i);
                 let size = Rng.int_in rng min_size max_size in
                 let p = a.Alloc_intf.malloc size in
                 pf.Platform.write ~addr:p ~len:(min size 64);
                 !mine.(i) <- p;
                 Sim.work work_per_op
               done;
               (* Bleed: publish my set, take my predecessor's. *)
               mailboxes.(t) <- !mine;
               Sim.barrier_wait barrier;
               mine := mailboxes.((t + nthreads - 1) mod nthreads);
               Sim.barrier_wait barrier
             done;
             Array.iter a.Alloc_intf.free !mine))
    done
  in
  {
    Workload_intf.w_name = "larson";
    w_describe =
      Printf.sprintf "server loop: %d objects/thread (%d-%dB), %d replaces x %d ring handoffs"
        objects_per_thread min_size max_size rounds handoffs;
    spawn;
    total_ops =
      (fun ~nthreads -> nthreads * ((2 * rounds * handoffs) + (2 * objects_per_thread)));
  }
