(** The paper's false-sharing micro-benchmarks.

    [active]: each thread loops \{ allocate a small object, write it many
    times, free it \}. An allocator that hands blocks from one cache line
    to different processors (any shared-heap design) *actively induces*
    false sharing and the writes ping-pong the line.

    [passive]: one thread allocates all the objects up front and hands one
    to each thread; each thread frees its object and then enters the same
    allocate/write/free loop. Allocators that let a thread reuse memory
    freed from another thread's cache line *passively induce* false
    sharing even though they never split a line across threads at
    allocation time. *)

type params = {
  loops : int;  (** alloc/write/free cycles, divided among threads *)
  writes_per_object : int;  (** paper: thousands of writes per object *)
  size : int;  (** paper: 8 bytes — several objects per cache line *)
  seed : int;
}

val default_params : params

val active : ?params:params -> unit -> Workload_intf.t

val passive : ?params:params -> unit -> Workload_intf.t
