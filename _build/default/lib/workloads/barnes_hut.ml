type params = {
  nbodies : int;
  steps : int;
  theta : float;
  dt : float;
  work_per_interaction : int;
  seed : int;
}

let default_params = { nbodies = 256; steps = 4; theta = 0.35; dt = 0.01; work_per_interaction = 30; seed = 6000 }

(* --- physics core (independent of the simulator) --- *)

type system = {
  p : params;
  px : float array;
  py : float array;
  pz : float array;
  vx : float array;
  vy : float array;
  vz : float array;
  fx : float array;
  fy : float array;
  fz : float array;
  mass : float array;
}

type node = {
  n_addr : int; (* simulated allocation backing this node; 0 in pure mode *)
  cx : float;
  cy : float;
  cz : float;
  half : float;
  mutable m : float; (* total mass *)
  mutable mx : float; (* mass-weighted position accumulators *)
  mutable my : float;
  mutable mz : float;
  mutable body : int; (* single body if >= 0 and no children *)
  mutable nchildren : int;
  children : node option array; (* 8 octants *)
  mutable crowd : int list; (* bodies at max depth sharing a point *)
}

let min_half = 1e-6

let init_system p =
  let n = p.nbodies in
  let rng = Rng.create p.seed in
  let mk f = Array.init n f in
  {
    p;
    px = mk (fun _ -> Rng.float rng 1.0);
    py = mk (fun _ -> Rng.float rng 1.0);
    pz = mk (fun _ -> Rng.float rng 1.0);
    vx = Array.make n 0.0;
    vy = Array.make n 0.0;
    vz = Array.make n 0.0;
    fx = Array.make n 0.0;
    fy = Array.make n 0.0;
    fz = Array.make n 0.0;
    mass = Array.make n 1.0;
  }

let total_mass s = Array.fold_left ( +. ) 0.0 s.mass

let kinetic_energy s =
  let e = ref 0.0 in
  for i = 0 to Array.length s.mass - 1 do
    e := !e +. (0.5 *. s.mass.(i) *. ((s.vx.(i) ** 2.) +. (s.vy.(i) ** 2.) +. (s.vz.(i) ** 2.)))
  done;
  !e

let positions s = Array.init (Array.length s.px) (fun i -> (s.px.(i), s.py.(i), s.pz.(i)))

let mk_node ~alloc ~cx ~cy ~cz ~half =
  {
    n_addr = alloc ();
    cx;
    cy;
    cz;
    half;
    m = 0.0;
    mx = 0.0;
    my = 0.0;
    mz = 0.0;
    body = -1;
    nchildren = 0;
    children = Array.make 8 None;
    crowd = [];
  }

let octant node x y z =
  (if x >= node.cx then 1 else 0) lor (if y >= node.cy then 2 else 0) lor if z >= node.cz then 4 else 0

let child_center node o =
  let q = node.half /. 2.0 in
  ( (node.cx +. if o land 1 <> 0 then q else -.q),
    (node.cy +. if o land 2 <> 0 then q else -.q),
    node.cz +. if o land 4 <> 0 then q else -.q )

(* Insert body [i]; leaves split on second occupancy, degenerating into a
   crowd list when cells reach the minimum size. *)
let rec insert s ~alloc node i =
  if node.half <= min_half then node.crowd <- i :: node.crowd
  else if node.nchildren = 0 && node.body < 0 && node.crowd = [] then node.body <- i
  else begin
    (if node.body >= 0 then begin
       let j = node.body in
       node.body <- -1;
       insert_into_child s ~alloc node j
     end);
    insert_into_child s ~alloc node i
  end

and insert_into_child s ~alloc node i =
  let o = octant node s.px.(i) s.py.(i) s.pz.(i) in
  let child =
    match node.children.(o) with
    | Some c -> c
    | None ->
      let cx, cy, cz = child_center node o in
      let c = mk_node ~alloc ~cx ~cy ~cz ~half:(node.half /. 2.0) in
      node.children.(o) <- Some c;
      node.nchildren <- node.nchildren + 1;
      c
  in
  insert s ~alloc child i

(* Bottom-up mass and centre-of-mass summary. *)
let rec summarise s node =
  node.m <- 0.0;
  node.mx <- 0.0;
  node.my <- 0.0;
  node.mz <- 0.0;
  let add_body i =
    node.m <- node.m +. s.mass.(i);
    node.mx <- node.mx +. (s.mass.(i) *. s.px.(i));
    node.my <- node.my +. (s.mass.(i) *. s.py.(i));
    node.mz <- node.mz +. (s.mass.(i) *. s.pz.(i))
  in
  if node.body >= 0 then add_body node.body;
  List.iter add_body node.crowd;
  Array.iter
    (function
      | None -> ()
      | Some c ->
        summarise s c;
        node.m <- node.m +. c.m;
        node.mx <- node.mx +. (c.m *. c.mx);
        node.my <- node.my +. (c.m *. c.my);
        node.mz <- node.mz +. (c.m *. c.mz))
    node.children;
  if node.m > 0.0 then begin
    node.mx <- node.mx /. node.m;
    node.my <- node.my /. node.m;
    node.mz <- node.mz /. node.m
  end

let softening = 1e-4

(* Accumulate the force node exerts on body [i]; [visit] is the hook the
   simulated version uses to charge memory traffic per visited node. *)
let rec force s ~theta ~visit node i =
  visit node;
  if node.m > 0.0 && not (node.body = i && node.nchildren = 0 && node.crowd = []) then begin
    let dx = node.mx -. s.px.(i) and dy = node.my -. s.py.(i) and dz = node.mz -. s.pz.(i) in
    let d2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) +. softening in
    let d = sqrt d2 in
    let leafish = node.nchildren = 0 in
    if leafish || 2.0 *. node.half /. d < theta then begin
      (* Aggregate interaction (skip self-contribution in crowded leaves:
         negligible for the benchmark's purposes). *)
      let f = node.m /. (d2 *. d) in
      s.fx.(i) <- s.fx.(i) +. (f *. dx);
      s.fy.(i) <- s.fy.(i) +. (f *. dy);
      s.fz.(i) <- s.fz.(i) +. (f *. dz)
    end
    else
      Array.iter
        (function
          | None -> ()
          | Some c -> force s ~theta ~visit c i)
        node.children
  end

let build_tree s ~alloc =
  let root = mk_node ~alloc ~cx:0.5 ~cy:0.5 ~cz:0.5 ~half:0.5 in
  for i = 0 to Array.length s.px - 1 do
    insert s ~alloc root i
  done;
  summarise s root;
  root

let rec iter_nodes f node =
  f node;
  Array.iter
    (function
      | None -> ()
      | Some c -> iter_nodes f c)
    node.children

let integrate s ~lo ~hi =
  let dt = s.p.dt in
  for i = lo to hi do
    s.vx.(i) <- s.vx.(i) +. (s.fx.(i) *. dt);
    s.vy.(i) <- s.vy.(i) +. (s.fy.(i) *. dt);
    s.vz.(i) <- s.vz.(i) +. (s.fz.(i) *. dt);
    s.px.(i) <- Float.max 0.0 (Float.min 1.0 (s.px.(i) +. (s.vx.(i) *. dt)));
    s.py.(i) <- Float.max 0.0 (Float.min 1.0 (s.py.(i) +. (s.vy.(i) *. dt)));
    s.pz.(i) <- Float.max 0.0 (Float.min 1.0 (s.pz.(i) +. (s.vz.(i) *. dt)));
    s.fx.(i) <- 0.0;
    s.fy.(i) <- 0.0;
    s.fz.(i) <- 0.0
  done

let step_sequential s =
  let root = build_tree s ~alloc:(fun () -> 0) in
  for i = 0 to Array.length s.px - 1 do
    force s ~theta:s.p.theta ~visit:(fun _ -> ()) root i
  done;
  ignore root;
  integrate s ~lo:0 ~hi:(Array.length s.px - 1)

(* --- simulated workload --- *)

let node_bytes = 96

let body_bytes = 48

let make ?(params = default_params) () =
  let spawn sim (pf : Platform.t) (a : Alloc_intf.t) ~nthreads =
    let s = init_system params in
    let n = params.nbodies in
    let barrier = Sim.new_barrier sim ~parties:nthreads in
    let root = ref None in
    let body_addr = Array.make n 0 in
    for t = 0 to nthreads - 1 do
      let lo = n * t / nthreads and hi = (n * (t + 1) / nthreads) - 1 in
      ignore
        (Sim.spawn sim (fun () ->
             (* Bodies themselves are heap objects. *)
             for i = lo to hi do
               body_addr.(i) <- a.Alloc_intf.malloc body_bytes;
               pf.Platform.write ~addr:body_addr.(i) ~len:body_bytes
             done;
             Sim.barrier_wait barrier;
             for _ = 1 to params.steps do
               (* Serial tree build by thread 0 — each node is a malloc. *)
               if t = 0 then begin
                 let alloc () =
                   let p = a.Alloc_intf.malloc node_bytes in
                   pf.Platform.write ~addr:p ~len:32;
                   p
                 in
                 root := Some (build_tree s ~alloc)
               end;
               Sim.barrier_wait barrier;
               (* Parallel force computation over this thread's slice. *)
               let tree =
                 match !root with
                 | Some r -> r
                 | None -> assert false
               in
               for i = lo to hi do
                 force s ~theta:params.theta
                   ~visit:(fun nd ->
                     pf.Platform.read ~addr:nd.n_addr ~len:32;
                     Sim.work params.work_per_interaction)
                   tree i
               done;
               Sim.barrier_wait barrier;
               (* Integrate own slice, then thread 0 tears the tree down. *)
               integrate s ~lo ~hi;
               for i = lo to hi do
                 pf.Platform.write ~addr:body_addr.(i) ~len:body_bytes
               done;
               if t = 0 then begin
                 iter_nodes (fun nd -> a.Alloc_intf.free nd.n_addr) tree;
                 root := None
               end;
               Sim.barrier_wait barrier
             done;
             for i = lo to hi do
               a.Alloc_intf.free body_addr.(i)
             done))
    done
  in
  {
    Workload_intf.w_name = "barnes-hut";
    w_describe =
      Printf.sprintf "octree n-body: %d bodies, %d steps, theta=%.2f (tree nodes heap-allocated per step)"
        params.nbodies params.steps params.theta;
    spawn;
    (* Tree size varies with the distribution; report body traffic plus an
       estimate of two nodes per body per step. *)
    total_ops = (fun ~nthreads:_ -> (2 * params.nbodies) + (params.steps * 4 * params.nbodies));
  }
