(** threadtest (paper Table 2): each thread repeatedly allocates a batch of
    small objects, touches them, and frees them all.

    The canonical heap-contention stress: with [t] threads the program
    performs [iterations] rounds of [objects/t] 8-byte mallocs + frees per
    thread. A serial allocator collapses; Hoard scales near-linearly. *)

type params = {
  iterations : int;  (** rounds per run (paper: 100) *)
  objects : int;  (** objects per round, divided among threads (paper: 100,000) *)
  size : int;  (** object size in bytes (paper: 8) *)
  work_per_op : int;  (** cycles of computation between operations *)
}

val default_params : params
(** Scaled down from the paper's parameters to simulator-friendly sizes. *)

val make : ?params:params -> unit -> Workload_intf.t
