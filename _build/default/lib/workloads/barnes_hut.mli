(** Barnes-Hut n-body simulation (paper Table 2).

    A genuine octree gravity simulation, not a stub: bodies live in the
    unit cube, every step (re)builds an octree whose nodes are allocated
    from the allocator under test, forces are computed in parallel with
    the theta opening criterion, and the tree is torn down. The workload
    is compute-dominated with a serial tree-build phase, so — as in the
    paper — all scalable allocators do fine and the serial allocator lags
    only moderately.

    Determinism: body initialisation and traversal order are driven by a
    seeded {!Rng}, so identical parameters give identical simulated runs. *)

type params = {
  nbodies : int;
  steps : int;
  theta : float;  (** opening criterion (typical: 0.5) *)
  dt : float;
  work_per_interaction : int;  (** cycles per body-node interaction *)
  seed : int;
}

val default_params : params

val make : ?params:params -> unit -> Workload_intf.t

(** {2 Physics core — exposed for unit tests and the example binary} *)

type system

val init_system : params -> system

val step_sequential : system -> unit
(** Advances one step without any allocator/simulator involvement (pure
    OCaml octree), used by tests to validate the physics. *)

val total_mass : system -> float

val kinetic_energy : system -> float

val positions : system -> (float * float * float) array
