lib/workloads/bem_like.ml: Alloc_intf Array Platform Printf Rng Sim Workload_intf
