lib/workloads/doc_tree.mli: Alloc_intf Platform Rng Workload_intf
