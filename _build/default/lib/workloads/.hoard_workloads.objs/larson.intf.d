lib/workloads/larson.mli: Workload_intf
