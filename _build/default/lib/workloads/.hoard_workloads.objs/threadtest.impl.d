lib/workloads/threadtest.ml: Alloc_intf Array Platform Printf Sim Workload_intf
