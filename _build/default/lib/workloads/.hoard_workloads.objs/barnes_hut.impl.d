lib/workloads/barnes_hut.ml: Alloc_intf Array Float List Platform Printf Rng Sim Workload_intf
