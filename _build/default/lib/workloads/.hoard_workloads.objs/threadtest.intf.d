lib/workloads/threadtest.mli: Workload_intf
