lib/workloads/producer_consumer.mli: Workload_intf
