lib/workloads/doc_tree.ml: Alloc_intf List Platform Printf Rng Sim Workload_intf
