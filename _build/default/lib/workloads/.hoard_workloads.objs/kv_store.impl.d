lib/workloads/kv_store.ml: Alloc_intf Array List Platform Printf Rng Sim Workload_intf
