lib/workloads/producer_consumer.ml: Alloc_intf Array Platform Printf Sim Workload_intf
