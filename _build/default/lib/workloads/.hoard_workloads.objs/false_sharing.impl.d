lib/workloads/false_sharing.ml: Alloc_intf Array Platform Printf Sim Workload_intf
