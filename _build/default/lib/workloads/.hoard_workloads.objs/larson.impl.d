lib/workloads/larson.ml: Alloc_intf Array Platform Printf Rng Sim Workload_intf
