lib/workloads/kv_store.mli: Alloc_intf Platform Workload_intf
