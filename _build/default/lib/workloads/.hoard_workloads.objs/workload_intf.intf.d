lib/workloads/workload_intf.mli: Alloc_intf Platform Sim
