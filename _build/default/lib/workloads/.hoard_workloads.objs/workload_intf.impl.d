lib/workloads/workload_intf.ml: Alloc_intf Platform Sim
