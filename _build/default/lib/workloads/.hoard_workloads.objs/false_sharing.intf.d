lib/workloads/false_sharing.mli: Workload_intf
