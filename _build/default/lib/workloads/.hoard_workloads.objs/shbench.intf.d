lib/workloads/shbench.mli: Workload_intf
