lib/workloads/bem_like.mli: Workload_intf
