type params = {
  buckets : int;
  stripes : int;
  ops : int;
  key_space : int;
  value_min : int;
  value_max : int;
  read_pct : int;
  work_per_op : int;
  seed : int;
}

let default_params =
  {
    buckets = 4096;
    stripes = 64;
    ops = 20_000;
    key_space = 2400;
    value_min = 16;
    value_max = 1500;
    read_pct = 90;
    work_per_op = 10;
    seed = 8000;
  }

(* An entry's node is itself an allocator block (the store's metadata
   lives on the heap under test); the OCaml record mirrors it so lookups
   don't need simulated pointer chasing beyond explicit touches. *)
type entry = { key : int; node_addr : int; mutable val_addr : int; mutable val_size : int }

type t = {
  pf : Platform.t;
  alloc : Alloc_intf.t;
  table : entry list array;
  locks : Platform.lock array;
  counts : int array; (* entries per stripe *)
}

let node_bytes = 48

let create pf alloc ~buckets ~stripes =
  if buckets < 1 || stripes < 1 || stripes > buckets then invalid_arg "Kv_store.create: bad shape";
  {
    pf;
    alloc;
    table = Array.make buckets [];
    locks = Array.init stripes (fun i -> pf.Platform.new_lock (Printf.sprintf "kv.stripe%d" i));
    counts = Array.make stripes 0;
  }

(* Fibonacci hashing keeps adjacent keys apart. *)
let bucket_of t key = (key * 2654435761) land max_int mod Array.length t.table

let stripe_of t key = bucket_of t key mod Array.length t.locks

let with_stripe t key f =
  let lock = t.locks.(stripe_of t key) in
  lock.Platform.acquire ();
  let r = f () in
  lock.Platform.release ();
  r

let find_entry t key = List.find_opt (fun e -> e.key = key) t.table.(bucket_of t key)

let put t ~key ~size =
  if size <= 0 then invalid_arg "Kv_store.put: size must be positive";
  with_stripe t key (fun () ->
      match find_entry t key with
      | Some e ->
        (* Replace the value in place. *)
        t.alloc.Alloc_intf.free e.val_addr;
        e.val_addr <- t.alloc.Alloc_intf.malloc size;
        e.val_size <- size;
        t.pf.Platform.write ~addr:e.val_addr ~len:(min size 256);
        t.pf.Platform.write ~addr:e.node_addr ~len:16
      | None ->
        let node_addr = t.alloc.Alloc_intf.malloc node_bytes in
        let val_addr = t.alloc.Alloc_intf.malloc size in
        t.pf.Platform.write ~addr:node_addr ~len:node_bytes;
        t.pf.Platform.write ~addr:val_addr ~len:(min size 256);
        let b = bucket_of t key in
        t.table.(b) <- { key; node_addr; val_addr; val_size = size } :: t.table.(b);
        t.counts.(stripe_of t key) <- t.counts.(stripe_of t key) + 1)

let get t ~key =
  with_stripe t key (fun () ->
      match find_entry t key with
      | Some e ->
        t.pf.Platform.read ~addr:e.node_addr ~len:16;
        t.pf.Platform.read ~addr:e.val_addr ~len:(min e.val_size 256);
        Some e.val_size
      | None -> None)

let delete t ~key =
  with_stripe t key (fun () ->
      let b = bucket_of t key in
      match find_entry t key with
      | Some e ->
        t.alloc.Alloc_intf.free e.val_addr;
        t.alloc.Alloc_intf.free e.node_addr;
        t.table.(b) <- List.filter (fun e' -> e'.key <> key) t.table.(b);
        t.counts.(stripe_of t key) <- t.counts.(stripe_of t key) - 1;
        true
      | None -> false)

let length t = Array.fold_left ( + ) 0 t.counts

let clear t =
  Array.iteri
    (fun b entries ->
      List.iter
        (fun e ->
          t.alloc.Alloc_intf.free e.val_addr;
          t.alloc.Alloc_intf.free e.node_addr;
          t.counts.(stripe_of t e.key) <- t.counts.(stripe_of t e.key) - 1)
        entries;
      t.table.(b) <- [])
    t.table

let check t =
  let entries = ref 0 in
  Array.iteri
    (fun b lst ->
      List.iter
        (fun e ->
          incr entries;
          if bucket_of t e.key <> b then failwith "Kv_store.check: entry in wrong bucket";
          if t.alloc.Alloc_intf.usable_size e.val_addr < e.val_size then
            failwith "Kv_store.check: value block too small")
        lst)
    t.table;
  if !entries <> length t then failwith "Kv_store.check: stripe counts disagree with buckets"

let make ?(params = default_params) () =
  let { buckets; stripes; ops; key_space; value_min; value_max; read_pct; work_per_op; seed } = params in
  let spawn sim (pf : Platform.t) (a : Alloc_intf.t) ~nthreads =
    let store = create pf a ~buckets ~stripes in
    let barrier = Sim.new_barrier sim ~parties:nthreads in
    let per_thread = ops / nthreads in
    for t = 0 to nthreads - 1 do
      ignore
        (Sim.spawn sim (fun () ->
             let rng = Rng.create (seed + t) in
             (* Warm the store with a slice of the key space. *)
             let lo = key_space * t / nthreads and hi = (key_space * (t + 1) / nthreads) - 1 in
             for key = lo to hi do
               put store ~key ~size:(Rng.int_in rng value_min value_max)
             done;
             Sim.barrier_wait barrier;
             for _ = 1 to per_thread do
               let key = Rng.int rng key_space in
               let r = Rng.int rng 100 in
               if r < read_pct then ignore (get store ~key)
               else if r < read_pct + ((100 - read_pct) * 3 / 4) then
                 put store ~key ~size:(Rng.int_in rng value_min value_max)
               else ignore (delete store ~key);
               Sim.work work_per_op
             done;
             Sim.barrier_wait barrier;
             if t = 0 then begin
               check store;
               clear store
             end))
    done
  in
  {
    Workload_intf.w_name = "kv-store";
    w_describe =
      Printf.sprintf "hash-table server: %d ops over %d keys (%d%% get), values %d-%dB, %d stripes" ops
        key_space read_pct value_min value_max stripes;
    spawn;
    (* Approximate: warm-up + one alloc or free per mutating op. *)
    total_ops = (fun ~nthreads -> (2 * key_space) + (2 * (ops / nthreads) * nthreads * (100 - read_pct) / 100));
  }
