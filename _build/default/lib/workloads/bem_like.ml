type params = {
  panels : int;
  assemble_rows : int;
  row_bytes : int;
  solve_iters : int;
  scratch_bytes : int;
  small_per_iter : int;
  work_per_op : int;
  seed : int;
}

let default_params =
  {
    panels = 400;
    assemble_rows = 320;
    row_bytes = 512;
    solve_iters = 12;
    scratch_bytes = 16_384;
    small_per_iter = 1400;
    work_per_op = 30;
    seed = 5000;
  }

let make ?(params = default_params) () =
  let { panels; assemble_rows; row_bytes; solve_iters; scratch_bytes; small_per_iter; work_per_op; seed } =
    params
  in
  let spawn sim (pf : Platform.t) (a : Alloc_intf.t) ~nthreads =
    let mesh = Array.make panels 0 in
    let rows = Array.make assemble_rows 0 in
    let barrier = Sim.new_barrier sim ~parties:nthreads in
    for t = 0 to nthreads - 1 do
      ignore
        (Sim.spawn sim (fun () ->
             let rng = Rng.create (seed + t) in
             (* Phase 1 — serial setup: thread 0 builds the mesh (small,
                long-lived structs of mixed sizes). *)
             if t = 0 then
               for i = 0 to panels - 1 do
                 let p = a.Alloc_intf.malloc (32 + (8 * (i mod 12))) in
                 pf.Platform.write ~addr:p ~len:32;
                 mesh.(i) <- p;
                 Sim.work work_per_op
               done;
             Sim.barrier_wait barrier;
             (* Phase 2 — parallel assembly: each thread builds its share
                of long-lived row blocks, with short-lived temporaries. *)
             let lo = assemble_rows * t / nthreads and hi = (assemble_rows * (t + 1) / nthreads) - 1 in
             for i = lo to hi do
               let tmp = a.Alloc_intf.malloc (Rng.int_in rng 16 128) in
               let row = a.Alloc_intf.malloc row_bytes in
               pf.Platform.write ~addr:row ~len:64;
               Sim.work (4 * work_per_op);
               a.Alloc_intf.free tmp;
               rows.(i) <- row
             done;
             Sim.barrier_wait barrier;
             (* Phase 3 — solve: thread 0 allocates the shared large
                scratch; each thread churns small per-thread temporaries
                while reading the rows (shared, read-only). *)
             for _ = 1 to solve_iters do
               let scratch = if t = 0 then a.Alloc_intf.malloc scratch_bytes else a.Alloc_intf.malloc 2048 in
               pf.Platform.write ~addr:scratch ~len:256;
               let per_thread = small_per_iter / nthreads in
               for _ = 1 to per_thread do
                 let tmp = a.Alloc_intf.malloc (Rng.int_in rng 24 96) in
                 pf.Platform.write ~addr:tmp ~len:24;
                 let i = lo + if hi >= lo then Rng.int rng (hi - lo + 1) else 0 in
                 if hi >= lo then pf.Platform.read ~addr:rows.(i) ~len:64;
                 Sim.work work_per_op;
                 a.Alloc_intf.free tmp
               done;
               a.Alloc_intf.free scratch;
               Sim.barrier_wait barrier
             done;
             (* Phase 4 — teardown by thread 0. *)
             Sim.barrier_wait barrier;
             if t = 0 then begin
               Array.iter a.Alloc_intf.free rows;
               Array.iter a.Alloc_intf.free mesh
             end))
    done
  in
  {
    Workload_intf.w_name = "bem";
    w_describe =
      Printf.sprintf
        "BEM-profile substitute: %d-panel setup, %d row blocks of %dB, %d solve iterations with %dB scratch"
        panels assemble_rows row_bytes solve_iters scratch_bytes;
    spawn;
    total_ops =
      (fun ~nthreads ->
        (2 * panels) + (4 * assemble_rows)
        + (solve_iters * ((2 * nthreads) + (2 * nthreads * (small_per_iter / nthreads)))));
  }
