(** Larson server benchmark (paper Table 2; Larson & Krishnan's "bleeding"
    benchmark).

    Simulates a server: each thread owns a set of objects and continually
    replaces random ones; periodically a thread hands its whole set to the
    next thread in the ring, so objects are freed by a different thread
    than allocated them ("bleeding"). The paper reports throughput (memory
    operations per second) as threads scale; the harness reports
    operations per million simulated cycles. *)

type params = {
  rounds : int;  (** replace operations per thread between handoffs *)
  handoffs : int;  (** ring handoffs over the run *)
  objects_per_thread : int;
  min_size : int;
  max_size : int;  (** paper: 10-100 bytes *)
  work_per_op : int;
  seed : int;
}

val default_params : params

val make : ?params:params -> unit -> Workload_intf.t
