type params = {
  ops : int;
  slots_per_thread : int;
  min_size : int;
  max_size : int;
  work_per_op : int;
  seed : int;
}

let default_params = { ops = 20_000; slots_per_thread = 100; min_size = 1; max_size = 1000; work_per_op = 6; seed = 2000 }

let make ?(params = default_params) () =
  let { ops; slots_per_thread; min_size; max_size; work_per_op; seed } = params in
  let spawn sim (pf : Platform.t) (a : Alloc_intf.t) ~nthreads =
    let per_thread = ops / nthreads in
    for t = 0 to nthreads - 1 do
      ignore
        (Sim.spawn sim (fun () ->
             let rng = Rng.create (seed + t) in
             let slots = Array.make slots_per_thread 0 in
             (* Fill the working set. *)
             for i = 0 to slots_per_thread - 1 do
               let size = Rng.int_in rng min_size max_size in
               let p = a.Alloc_intf.malloc size in
               pf.Platform.write ~addr:p ~len:(min size 64);
               slots.(i) <- p
             done;
             (* Churn. *)
             for _ = 1 to per_thread do
               let i = Rng.int rng slots_per_thread in
               a.Alloc_intf.free slots.(i);
               let size = Rng.int_in rng min_size max_size in
               let p = a.Alloc_intf.malloc size in
               pf.Platform.write ~addr:p ~len:(min size 64);
               slots.(i) <- p;
               Sim.work work_per_op
             done;
             Array.iter a.Alloc_intf.free slots))
    done
  in
  {
    Workload_intf.w_name = "shbench";
    w_describe =
      Printf.sprintf "%d random-size (%d-%dB) slot replacements over %d-slot working sets" ops min_size
        max_size slots_per_thread;
    spawn;
    total_ops =
      (fun ~nthreads -> nthreads * ((2 * (ops / nthreads)) + (2 * slots_per_thread)));
  }
