(** An in-memory key-value store (memcached-style) running on the
    allocator under test — an application-level workload beyond the
    paper's suite, exercising the server pattern its introduction
    motivates.

    The store is a striped-lock hash table whose entry nodes and values
    are allocator blocks; values are replaced in place by put (free old,
    allocate new), and deletions free entry and value, whichever thread
    performs them — so cross-thread frees, mixed sizes and long-lived
    metadata all occur naturally. *)

type params = {
  buckets : int;  (** hash-table buckets *)
  stripes : int;  (** lock stripes guarding bucket ranges *)
  ops : int;  (** total operations, divided among threads *)
  key_space : int;  (** keys are drawn from [\[0, key_space)] *)
  value_min : int;
  value_max : int;
  read_pct : int;  (** percentage of gets; the rest split puts/deletes 3:1 *)
  work_per_op : int;
  seed : int;
}

val default_params : params

val make : ?params:params -> unit -> Workload_intf.t

(** {2 Direct store API (tests, examples)} *)

type t

val create : Platform.t -> Alloc_intf.t -> buckets:int -> stripes:int -> t
(** Build a store on an allocator. Usable from simulated threads (locks
    are platform locks). *)

val put : t -> key:int -> size:int -> unit
(** Insert or replace; the value is a fresh allocator block of [size]. *)

val get : t -> key:int -> int option
(** Value size if present (also touches the value's memory). *)

val delete : t -> key:int -> bool

val length : t -> int

val clear : t -> unit
(** Frees every entry and value. *)

val check : t -> unit
(** Structural validation against the allocator's accounting. *)
