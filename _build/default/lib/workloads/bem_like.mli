(** Synthetic stand-in for BEMengine (paper Table 2).

    The paper's BEMengine is a proprietary boundary-element-method solid
    modeling/electromagnetics engine (Coyote Systems); its code is not
    available, so this workload replays its allocation *profile* as
    described: distinct phases (serial mesh setup, parallel system
    assembly, iterative solve) mixing many small short-lived objects with
    large long-lived matrix blocks, with cross-phase lifetimes. The
    substitution is documented in DESIGN.md. *)

type params = {
  panels : int;  (** mesh panels created in setup, divided among rows *)
  assemble_rows : int;  (** row blocks built in the parallel assembly phase *)
  row_bytes : int;  (** size of a long-lived row block *)
  solve_iters : int;  (** iterations of the solve phase *)
  scratch_bytes : int;  (** large per-iteration scratch buffer *)
  small_per_iter : int;  (** short-lived temporaries per iteration *)
  work_per_op : int;
  seed : int;
}

val default_params : params

val make : ?params:params -> unit -> Workload_intf.t
