type t = { large : Large_alloc.t; lock : Platform.lock; threshold : int }

let create pf ~owner ~stats ~threshold =
  { large = Large_alloc.create pf ~owner ~stats; lock = pf.Platform.new_lock "large"; threshold }

let is_large t size = size > t.threshold

let malloc t size =
  t.lock.acquire ();
  let addr = Large_alloc.malloc t.large size in
  t.lock.release ();
  addr

let try_free t ~addr =
  t.lock.acquire ();
  let found = Large_alloc.free t.large ~addr in
  t.lock.release ();
  found

let usable_size t ~addr = Large_alloc.usable_size t.large ~addr

let live_bytes t = Large_alloc.live_bytes t.large
