(** {!Large_alloc} behind its own lock, with the size threshold test —
    the large-object path shared by every allocator implementation. *)

type t

val create : Platform.t -> owner:int -> stats:Alloc_stats.t -> threshold:int -> t

val is_large : t -> int -> bool
(** Whether a request of this size takes the large path. *)

val malloc : t -> int -> int

val try_free : t -> addr:int -> bool
(** [true] if [addr] was a live large object (now freed). *)

val usable_size : t -> addr:int -> int option

val live_bytes : t -> int
