(** Accounting shared by every allocator implementation.

    Tracks the two quantities the paper's fragmentation and blowup
    definitions are built from:
    - [live]: bytes currently allocated to the program (in usable-size
      terms), with its high-water mark ["U"];
    - [held]: bytes currently held from the OS, with its high-water mark
      ["A"].

    Fragmentation (paper Table 4) is [A_peak / U_peak]. *)

type t

type snapshot = {
  mallocs : int;
  frees : int;
  bytes_requested : int;  (** sum of requested sizes over all mallocs *)
  live_bytes : int;  (** usable bytes currently allocated to the program *)
  peak_live_bytes : int;
  held_bytes : int;  (** bytes currently held from the OS *)
  peak_held_bytes : int;
  os_maps : int;
  os_unmaps : int;
  sb_to_global : int;  (** superblock transfers heap -> global *)
  sb_from_global : int;  (** superblock transfers global -> heap *)
  remote_frees : int;  (** frees whose block belongs to another heap *)
}

val create : unit -> t

val on_malloc : t -> requested:int -> usable:int -> unit

val on_free : t -> usable:int -> unit

val on_map : t -> bytes:int -> unit

val on_unmap : t -> bytes:int -> unit

val on_transfer_to_global : t -> unit

val on_transfer_from_global : t -> unit

val on_remote_free : t -> unit

val snapshot : t -> snapshot

val fragmentation : snapshot -> float
(** [peak_held / peak_live]; [nan] before any allocation. *)

val pp_snapshot : Format.formatter -> snapshot -> unit
