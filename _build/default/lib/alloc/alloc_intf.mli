(** The allocator interface every implementation exposes.

    Mirrors [malloc]/[free]: [malloc size] returns the simulated address of
    a block of at least [size] bytes; [free addr] releases a block
    previously returned by the same allocator. *)

type t = {
  name : string;
  owner : int;  (** this allocator's {!Vmem} owner tag *)
  large_threshold : int;
      (** requests strictly above this size take the page-direct
          large-object path (S/2 in the paper) *)
  malloc : int -> int;
  free : int -> unit;
  usable_size : int -> int;
      (** actual capacity of the block at the given address; raises
          [Invalid_argument] on a foreign address *)
  stats : unit -> Alloc_stats.snapshot;
  check : unit -> unit;
      (** validates internal invariants, raising [Failure] on corruption;
          cheap enough to call from tests after every operation *)
}

type factory = {
  label : string;
  description : string;
  instantiate : Platform.t -> t;
}
(** How the harness creates a fresh allocator per experiment run. *)

val next_owner : unit -> int
(** Process-unique {!Vmem} owner tags, so several allocators can share one
    address space with separate accounting. *)
