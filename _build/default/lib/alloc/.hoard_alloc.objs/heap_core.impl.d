lib/alloc/heap_core.ml: Array Dlist Size_class Superblock
