lib/alloc/heap_core.mli: Size_class Superblock
