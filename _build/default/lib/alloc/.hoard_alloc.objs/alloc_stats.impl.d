lib/alloc/alloc_stats.ml: Format
