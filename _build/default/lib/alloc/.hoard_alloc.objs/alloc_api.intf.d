lib/alloc/alloc_api.mli: Alloc_intf Platform
