lib/alloc/superblock.mli: Dlist
