lib/alloc/sb_registry.ml: Hashtbl Superblock
