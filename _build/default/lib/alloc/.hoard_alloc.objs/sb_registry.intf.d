lib/alloc/sb_registry.mli: Superblock
