lib/alloc/locked_large.mli: Alloc_stats Platform
