lib/alloc/large_alloc.ml: Alloc_stats Hashtbl Platform
