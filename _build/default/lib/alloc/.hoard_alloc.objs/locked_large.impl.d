lib/alloc/locked_large.ml: Large_alloc Platform
