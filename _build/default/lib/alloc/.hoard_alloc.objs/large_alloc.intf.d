lib/alloc/large_alloc.mli: Alloc_stats Platform
