lib/alloc/alloc_intf.ml: Alloc_stats Atomic Platform
