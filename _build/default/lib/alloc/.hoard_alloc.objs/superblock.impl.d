lib/alloc/superblock.ml: Array Bytes Dlist
