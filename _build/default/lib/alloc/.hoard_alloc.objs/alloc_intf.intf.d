lib/alloc/alloc_intf.mli: Alloc_stats Platform
