lib/alloc/alloc_stats.mli: Format
