lib/alloc/size_class.ml: Array List
