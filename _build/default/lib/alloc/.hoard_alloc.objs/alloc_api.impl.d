lib/alloc/alloc_api.ml: Alloc_intf Platform
