type t = { size : int; table : (int, Superblock.t) Hashtbl.t }

let create ~sb_size =
  if sb_size <= 0 || sb_size land (sb_size - 1) <> 0 then
    invalid_arg "Sb_registry.create: sb_size must be a positive power of two";
  { size = sb_size; table = Hashtbl.create 256 }

let sb_size t = t.size

let slot t addr = addr / t.size

let register t sb =
  let key = slot t (Superblock.base sb) in
  if Hashtbl.mem t.table key then invalid_arg "Sb_registry.register: slot already occupied";
  Hashtbl.replace t.table key sb

let unregister t sb = Hashtbl.remove t.table (slot t (Superblock.base sb))

let lookup t ~addr = Hashtbl.find_opt t.table (slot t addr)

let count t = Hashtbl.length t.table

let iter t f = Hashtbl.iter (fun _ sb -> f sb) t.table
