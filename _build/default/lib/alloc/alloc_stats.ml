type snapshot = {
  mallocs : int;
  frees : int;
  bytes_requested : int;
  live_bytes : int;
  peak_live_bytes : int;
  held_bytes : int;
  peak_held_bytes : int;
  os_maps : int;
  os_unmaps : int;
  sb_to_global : int;
  sb_from_global : int;
  remote_frees : int;
}

type t = { mutable s : snapshot }

let zero =
  {
    mallocs = 0;
    frees = 0;
    bytes_requested = 0;
    live_bytes = 0;
    peak_live_bytes = 0;
    held_bytes = 0;
    peak_held_bytes = 0;
    os_maps = 0;
    os_unmaps = 0;
    sb_to_global = 0;
    sb_from_global = 0;
    remote_frees = 0;
  }

let create () = { s = zero }

let on_malloc t ~requested ~usable =
  let s = t.s in
  let live = s.live_bytes + usable in
  t.s <-
    {
      s with
      mallocs = s.mallocs + 1;
      bytes_requested = s.bytes_requested + requested;
      live_bytes = live;
      peak_live_bytes = max s.peak_live_bytes live;
    }

let on_free t ~usable =
  let s = t.s in
  t.s <- { s with frees = s.frees + 1; live_bytes = s.live_bytes - usable }

let on_map t ~bytes =
  let s = t.s in
  let held = s.held_bytes + bytes in
  t.s <- { s with held_bytes = held; peak_held_bytes = max s.peak_held_bytes held; os_maps = s.os_maps + 1 }

let on_unmap t ~bytes =
  let s = t.s in
  t.s <- { s with held_bytes = s.held_bytes - bytes; os_unmaps = s.os_unmaps + 1 }

let on_transfer_to_global t = t.s <- { t.s with sb_to_global = t.s.sb_to_global + 1 }

let on_transfer_from_global t = t.s <- { t.s with sb_from_global = t.s.sb_from_global + 1 }

let on_remote_free t = t.s <- { t.s with remote_frees = t.s.remote_frees + 1 }

let snapshot t = t.s

let fragmentation s =
  if s.peak_live_bytes = 0 then nan else float_of_int s.peak_held_bytes /. float_of_int s.peak_live_bytes

let pp_snapshot fmt s =
  Format.fprintf fmt
    "mallocs=%d frees=%d live=%dB peak_live=%dB held=%dB peak_held=%dB frag=%.2f maps=%d unmaps=%d to_glob=%d \
     from_glob=%d remote_frees=%d"
    s.mallocs s.frees s.live_bytes s.peak_live_bytes s.held_bytes s.peak_held_bytes (fragmentation s) s.os_maps
    s.os_unmaps s.sb_to_global s.sb_from_global s.remote_frees
