(** O(1) pointer-to-superblock resolution.

    Superblocks are S-aligned in the address space, so the superblock
    containing an address is found by indexing [addr / S] — the same trick
    the paper's implementation uses to make [free] constant-time. One
    registry is shared by all heaps of an allocator. *)

type t

val create : sb_size:int -> t

val sb_size : t -> int

val register : t -> Superblock.t -> unit

val unregister : t -> Superblock.t -> unit
(** Called when a superblock is returned to the OS. *)

val lookup : t -> addr:int -> Superblock.t option
(** The live superblock whose span contains [addr], if any. *)

val count : t -> int

val iter : t -> (Superblock.t -> unit) -> unit
(** Iterates over registered superblocks in unspecified order. *)
