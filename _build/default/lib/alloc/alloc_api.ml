let calloc (pf : Platform.t) (a : Alloc_intf.t) ~count ~size =
  if count <= 0 || size <= 0 then invalid_arg "Alloc_api.calloc: count and size must be positive";
  if count > max_int / size then invalid_arg "Alloc_api.calloc: size overflow";
  let total = count * size in
  let addr = a.Alloc_intf.malloc total in
  pf.Platform.write ~addr ~len:total;
  addr

let realloc (pf : Platform.t) (a : Alloc_intf.t) ~addr ~size =
  if size <= 0 then invalid_arg "Alloc_api.realloc: size must be positive";
  let old_usable = a.Alloc_intf.usable_size addr in
  if size <= old_usable then addr
  else begin
    let fresh = a.Alloc_intf.malloc size in
    let copied = min old_usable size in
    pf.Platform.read ~addr ~len:copied;
    pf.Platform.write ~addr:fresh ~len:copied;
    a.Alloc_intf.free addr;
    fresh
  end

let aligned_alloc (pf : Platform.t) (a : Alloc_intf.t) ~align ~size =
  if size <= 0 then invalid_arg "Alloc_api.aligned_alloc: size must be positive";
  if align <= 0 || align land (align - 1) <> 0 then
    invalid_arg "Alloc_api.aligned_alloc: align must be a positive power of two";
  if align <= 8 then a.Alloc_intf.malloc size
  else if align > pf.Platform.page_size then
    invalid_arg "Alloc_api.aligned_alloc: alignment beyond the page size is not supported"
  else
    (* Force the page-aligned large-object path; pages satisfy any
       alignment up to their own size. *)
    a.Alloc_intf.malloc (max size (a.Alloc_intf.large_threshold + 1))
