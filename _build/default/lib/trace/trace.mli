(** Allocation traces: a recorded or generated sequence of malloc/free
    operations with logical object ids, replayable against any allocator.

    Traces serve three purposes in the reproduction: fragmentation studies
    on identical operation sequences, differential testing (every
    allocator must serve the same trace correctly), and failure injection
    (replay up to an operation, then inspect). The textual format is one
    operation per line: ["m <id> <size> <tid>"] or ["f <id> <tid>"]. *)

type op =
  | Malloc of { id : int; size : int; tid : int }
  | Free of { id : int; tid : int }

type t

val create : unit -> t

val add : t -> op -> unit

val length : t -> int

val get : t -> int -> op

val iter : (op -> unit) -> t -> unit

val of_list : op list -> t

val to_list : t -> op list

(** {2 Validation} *)

val validate : t -> (unit, string) result
(** Checks well-formedness: ids malloc'd before freed, no double malloc of
    a live id, no double free, positive sizes. *)

val live_at_end : t -> int list
(** Ids still live after the whole trace (sorted). *)

val max_live_bytes : t -> int
(** The trace's inherent peak memory ("U" for a perfect allocator, in
    requested bytes). *)

(** {2 Generation} *)

type size_dist =
  | Uniform of int * int
  | Geometric of { min_size : int; mean : float; max_size : int }
  | Mixed of (float * size_dist) list  (** weighted mixture *)

val generate :
  ?seed:int ->
  ops:int ->
  threads:int ->
  live_target:int ->
  size_dist:size_dist ->
  unit ->
  t
(** Random trace: allocation probability self-regulates around
    [live_target] live objects per thread; frees pick random live objects
    of the same thread. Always well-formed; ends by freeing everything. *)

(** {2 Serialisation} *)

val to_string : t -> string

val of_string : string -> (t, string) result

(** {2 Replay} *)

type replay_stats = {
  replayed_ops : int;
  replay_peak_live : int;  (** peak requested bytes live during replay *)
}

val replay : t -> Alloc_intf.t -> replay_stats
(** Runs the trace against an allocator (single-threaded; thread ids are
    ignored). Raises if the allocator misbehaves (via its own checks). *)

val replay_sim : t -> Sim.t -> Alloc_intf.t -> nthreads:int -> unit
(** Multi-threaded replay on the simulator: operations are partitioned by
    [tid mod nthreads]; cross-thread frees are routed to the freeing
    thread recorded in the trace. Threads synchronise per 1024-op window
    so that frees never run ahead of their mallocs. Call [Sim.run]
    afterwards. *)
