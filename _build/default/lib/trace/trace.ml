type op =
  | Malloc of { id : int; size : int; tid : int }
  | Free of { id : int; tid : int }

type t = { mutable ops : op array; mutable len : int }

let create () = { ops = Array.make 64 (Free { id = 0; tid = 0 }); len = 0 }

let add t op =
  if t.len = Array.length t.ops then begin
    let bigger = Array.make (2 * t.len) op in
    Array.blit t.ops 0 bigger 0 t.len;
    t.ops <- bigger
  end;
  t.ops.(t.len) <- op;
  t.len <- t.len + 1

let length t = t.len

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Trace.get";
  t.ops.(i)

let iter f t =
  for i = 0 to t.len - 1 do
    f t.ops.(i)
  done

let of_list ops =
  let t = create () in
  List.iter (add t) ops;
  t

let to_list t = Array.to_list (Array.sub t.ops 0 t.len)

let validate t =
  let live = Hashtbl.create 256 in
  let err = ref None in
  (try
     iter
       (function
         | Malloc { id; size; _ } ->
           if size <= 0 then raise (Failure (Printf.sprintf "malloc id %d: non-positive size %d" id size));
           if Hashtbl.mem live id then raise (Failure (Printf.sprintf "malloc of live id %d" id));
           Hashtbl.replace live id size
         | Free { id; _ } ->
           if not (Hashtbl.mem live id) then raise (Failure (Printf.sprintf "free of dead id %d" id));
           Hashtbl.remove live id)
       t
   with Failure m -> err := Some m);
  match !err with
  | Some m -> Error m
  | None -> Ok ()

let live_at_end t =
  let live = Hashtbl.create 256 in
  iter
    (function
      | Malloc { id; size; _ } -> Hashtbl.replace live id size
      | Free { id; _ } -> Hashtbl.remove live id)
    t;
  List.sort compare (Hashtbl.fold (fun id _ acc -> id :: acc) live [])

let max_live_bytes t =
  let live = Hashtbl.create 256 in
  let cur = ref 0 and peak = ref 0 in
  iter
    (function
      | Malloc { id; size; _ } ->
        Hashtbl.replace live id size;
        cur := !cur + size;
        if !cur > !peak then peak := !cur
      | Free { id; _ } ->
        (match Hashtbl.find_opt live id with
         | Some size ->
           cur := !cur - size;
           Hashtbl.remove live id
         | None -> ()))
    t;
  !peak

(* --- generation --- *)

type size_dist =
  | Uniform of int * int
  | Geometric of { min_size : int; mean : float; max_size : int }
  | Mixed of (float * size_dist) list

let rec draw_size rng = function
  | Uniform (lo, hi) -> Rng.int_in rng lo hi
  | Geometric { min_size; mean; max_size } ->
    let x = min_size + int_of_float (Rng.exponential rng mean) in
    min x max_size
  | Mixed weighted ->
    let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 weighted in
    let r = Rng.float rng total in
    let rec pick acc = function
      | [ (_, d) ] -> d
      | (w, d) :: rest -> if r < acc +. w then d else pick (acc +. w) rest
      | [] -> invalid_arg "Trace.draw_size: empty mixture"
    in
    draw_size rng (pick 0.0 weighted)

let generate ?(seed = 42) ~ops ~threads ~live_target ~size_dist () =
  if threads < 1 then invalid_arg "Trace.generate: threads must be >= 1";
  let rng = Rng.create seed in
  let t = create () in
  let next_id = ref 0 in
  let live = Array.make threads [] in
  let live_count = Array.make threads 0 in
  for _ = 1 to ops do
    let tid = Rng.int rng threads in
    (* Allocation probability decays as the thread's live set approaches
       twice the target, regulating around live_target. *)
    let p_alloc =
      if live_count.(tid) = 0 then 1.0
      else Float.max 0.05 (1.0 -. (float_of_int live_count.(tid) /. float_of_int (2 * live_target)))
    in
    if Rng.float rng 1.0 < p_alloc then begin
      let id = !next_id in
      incr next_id;
      add t (Malloc { id; size = draw_size rng size_dist; tid });
      live.(tid) <- id :: live.(tid);
      live_count.(tid) <- live_count.(tid) + 1
    end
    else begin
      match live.(tid) with
      | [] -> ()
      | id :: rest ->
        add t (Free { id; tid });
        live.(tid) <- rest;
        live_count.(tid) <- live_count.(tid) - 1
    end
  done;
  (* Drain: free everything so traces end clean. *)
  Array.iteri (fun tid ids -> List.iter (fun id -> add t (Free { id; tid })) ids) live;
  t

(* --- serialisation --- *)

let to_string t =
  let buf = Buffer.create (t.len * 12) in
  iter
    (function
      | Malloc { id; size; tid } -> Buffer.add_string buf (Printf.sprintf "m %d %d %d\n" id size tid)
      | Free { id; tid } -> Buffer.add_string buf (Printf.sprintf "f %d %d\n" id tid))
    t;
  Buffer.contents buf

let of_string s =
  let t = create () in
  let err = ref None in
  List.iteri
    (fun lineno line ->
      if !err = None && String.trim line <> "" then
        match String.split_on_char ' ' (String.trim line) with
        | [ "m"; id; size; tid ] ->
          (match (int_of_string_opt id, int_of_string_opt size, int_of_string_opt tid) with
           | Some id, Some size, Some tid -> add t (Malloc { id; size; tid })
           | _ -> err := Some (Printf.sprintf "line %d: bad malloc" (lineno + 1)))
        | [ "f"; id; tid ] ->
          (match (int_of_string_opt id, int_of_string_opt tid) with
           | Some id, Some tid -> add t (Free { id; tid })
           | _ -> err := Some (Printf.sprintf "line %d: bad free" (lineno + 1)))
        | _ -> err := Some (Printf.sprintf "line %d: unrecognised op" (lineno + 1)))
    (String.split_on_char '\n' s);
  match !err with
  | Some m -> Error m
  | None -> Ok t

(* --- replay --- *)

type replay_stats = { replayed_ops : int; replay_peak_live : int }

let replay t (a : Alloc_intf.t) =
  let addr_of = Hashtbl.create 256 in
  let size_of = Hashtbl.create 256 in
  let cur = ref 0 and peak = ref 0 in
  iter
    (function
      | Malloc { id; size; _ } ->
        Hashtbl.replace addr_of id (a.Alloc_intf.malloc size);
        Hashtbl.replace size_of id size;
        cur := !cur + size;
        if !cur > !peak then peak := !cur
      | Free { id; _ } ->
        (match Hashtbl.find_opt addr_of id with
         | Some addr ->
           a.Alloc_intf.free addr;
           Hashtbl.remove addr_of id;
           cur := !cur - (try Hashtbl.find size_of id with Not_found -> 0)
         | None -> invalid_arg (Printf.sprintf "Trace.replay: free of unknown id %d" id)))
    t;
  { replayed_ops = t.len; replay_peak_live = !peak }

let window = 1024

let replay_sim t sim (a : Alloc_intf.t) ~nthreads =
  if nthreads < 1 then invalid_arg "Trace.replay_sim: nthreads must be >= 1";
  let addr_of = Hashtbl.create 256 in
  let barrier = Sim.new_barrier sim ~parties:nthreads in
  let nwindows = (t.len + window - 1) / window in
  for me = 0 to nthreads - 1 do
    ignore
      (Sim.spawn sim (fun () ->
           let pending = ref [] in
           let try_free id =
             match Hashtbl.find_opt addr_of id with
             | Some addr ->
               a.Alloc_intf.free addr;
               Hashtbl.remove addr_of id;
               true
             | None -> false
           in
           for w = 0 to nwindows - 1 do
             (* Retry frees deferred from earlier windows first. *)
             pending := List.filter (fun id -> not (try_free id)) !pending;
             for i = w * window to min ((w + 1) * window) t.len - 1 do
               match t.ops.(i) with
               | Malloc { id; size; tid } ->
                 if tid mod nthreads = me then Hashtbl.replace addr_of id (a.Alloc_intf.malloc size)
               | Free { id; tid } -> if tid mod nthreads = me && not (try_free id) then pending := id :: !pending
             done;
             Sim.barrier_wait barrier
           done;
           (* Frees may still chase mallocs that landed in the final
              window; bounded retry with a barrier per round. *)
           let rounds = ref 0 in
           while !pending <> [] && !rounds < nwindows + 2 do
             pending := List.filter (fun id -> not (try_free id)) !pending;
             incr rounds;
             Sim.barrier_wait barrier
           done;
           while !rounds < nwindows + 2 do
             incr rounds;
             Sim.barrier_wait barrier
           done;
           if !pending <> [] then failwith "Trace.replay_sim: unresolvable frees (invalid trace?)"))
  done
