type region = { bytes : int; owner : int }

type owner_acct = { mutable cur : int; mutable peak : int }

type t = {
  page_size : int;
  mutable next_addr : int;
  regions : (int, region) Hashtbl.t; (* base addr -> region *)
  free_by_size : (int, int list ref) Hashtbl.t; (* size -> free base addrs *)
  owners : (int, owner_acct) Hashtbl.t;
  mutable mapped : int;
  mutable peak : int;
  mutable maps : int;
  mutable unmaps : int;
  mutable max_region : int; (* largest region ever mapped; bounds is_mapped's walk *)
}

let create ?(page_size = 4096) ?(base = 0x1000_0000) () =
  if page_size <= 0 || page_size land (page_size - 1) <> 0 then
    invalid_arg "Vmem.create: page_size must be a positive power of two";
  {
    page_size;
    next_addr = base;
    regions = Hashtbl.create 1024;
    free_by_size = Hashtbl.create 64;
    owners = Hashtbl.create 16;
    mapped = 0;
    peak = 0;
    maps = 0;
    unmaps = 0;
    max_region = 0;
  }

let page_size t = t.page_size

let round_up x align = (x + align - 1) land lnot (align - 1)

let owner_acct t owner =
  match Hashtbl.find_opt t.owners owner with
  | Some a -> a
  | None ->
    let a = { cur = 0; peak = 0 } in
    Hashtbl.replace t.owners owner a;
    a

(* Exact-size reuse: pop the first free region of this size whose base
   satisfies the alignment. *)
let take_free t bytes align =
  match Hashtbl.find_opt t.free_by_size bytes with
  | None -> None
  | Some lst ->
    let rec pick acc = function
      | [] -> None
      | addr :: rest when addr land (align - 1) = 0 ->
        lst := List.rev_append acc rest;
        Some addr
      | addr :: rest -> pick (addr :: acc) rest
    in
    pick [] !lst

let map t ?(owner = 0) ~bytes ~align () =
  if bytes <= 0 then invalid_arg "Vmem.map: bytes must be positive";
  if align < t.page_size || align land (align - 1) <> 0 then
    invalid_arg "Vmem.map: align must be a power of two >= page_size";
  let bytes = round_up bytes t.page_size in
  let addr =
    match take_free t bytes align with
    | Some addr -> addr
    | None ->
      let addr = round_up t.next_addr align in
      t.next_addr <- addr + bytes;
      addr
  in
  Hashtbl.replace t.regions addr { bytes; owner };
  t.mapped <- t.mapped + bytes;
  if t.mapped > t.peak then t.peak <- t.mapped;
  let acct = owner_acct t owner in
  acct.cur <- acct.cur + bytes;
  if acct.cur > acct.peak then acct.peak <- acct.cur;
  t.maps <- t.maps + 1;
  if bytes > t.max_region then t.max_region <- bytes;
  addr

let unmap t ~addr =
  match Hashtbl.find_opt t.regions addr with
  | None -> invalid_arg "Vmem.unmap: not a live region base"
  | Some { bytes; owner } ->
    Hashtbl.remove t.regions addr;
    t.mapped <- t.mapped - bytes;
    (owner_acct t owner).cur <- (owner_acct t owner).cur - bytes;
    t.unmaps <- t.unmaps + 1;
    let lst =
      match Hashtbl.find_opt t.free_by_size bytes with
      | Some lst -> lst
      | None ->
        let lst = ref [] in
        Hashtbl.replace t.free_by_size bytes lst;
        lst
    in
    lst := addr :: !lst

let region_size t ~addr =
  match Hashtbl.find_opt t.regions addr with
  | None -> None
  | Some { bytes; _ } -> Some bytes

let is_mapped t ~addr =
  (* Regions are page-aligned and page-sized, so walking back page by page
     from [addr] finds the candidate base. *)
  let floor = addr - t.max_region in
  let rec back page =
    if page < 0 || page < floor then false
    else
      match Hashtbl.find_opt t.regions page with
      | Some { bytes; _ } -> addr < page + bytes
      | None -> if page = 0 then false else back (page - t.page_size)
  in
  addr >= 0 && back (addr land lnot (t.page_size - 1))

let mapped_bytes t = t.mapped

let peak_bytes t = t.peak

let mapped_bytes_of_owner t owner =
  match Hashtbl.find_opt t.owners owner with
  | None -> 0
  | Some a -> a.cur

let peak_bytes_of_owner t owner =
  match Hashtbl.find_opt t.owners owner with
  | None -> 0
  | Some a -> a.peak

let map_count t = t.maps

let unmap_count t = t.unmaps

let iter_regions t f = Hashtbl.iter (fun addr { bytes; owner } -> f ~addr ~bytes ~owner) t.regions
