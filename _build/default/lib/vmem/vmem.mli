(** Simulated OS virtual memory.

    Stands in for the [mmap]/[munmap] interface the paper's allocators sit
    on. Addresses are plain integers in a private simulated address space;
    no backing store is kept because the experiments only require address
    arithmetic, cache-line identity and accounting.

    The allocator-visible quantities of the paper — memory *held* from the
    OS (the "A" of the blowup definition) and its high-water mark — are
    tracked here exactly, per owner tag, so fragmentation and blowup are
    measured rather than estimated.

    Freed regions are recycled (exact-size reuse, then first-fit with
    coalescing of the tail bump region), so address reuse patterns resemble
    a real OS enough for false-sharing experiments. *)

type t

val create : ?page_size:int -> ?base:int -> unit -> t
(** [create ()] makes an empty address space. [page_size] defaults to 4096;
    [base] (default [0x1000_0000]) is the first address handed out. *)

val page_size : t -> int

val map : t -> ?owner:int -> bytes:int -> align:int -> unit -> int
(** [map t ~bytes ~align ()] reserves [bytes] (rounded up to whole pages)
    at an address that is a multiple of [align] (a power of two, at least
    [page_size]). [owner] tags the region for per-allocator accounting
    (default 0). Returns the base address. *)

val unmap : t -> addr:int -> unit
(** Releases a region previously returned by {!map}. Raises
    [Invalid_argument] on an address that is not a live region base. *)

val region_size : t -> addr:int -> int option
(** Size in bytes of the live region based at [addr], if any. *)

val is_mapped : t -> addr:int -> bool
(** True when [addr] falls inside any live region. *)

val mapped_bytes : t -> int
(** Total bytes currently held from the simulated OS. *)

val peak_bytes : t -> int
(** High-water mark of {!mapped_bytes}. *)

val mapped_bytes_of_owner : t -> int -> int

val peak_bytes_of_owner : t -> int -> int

val map_count : t -> int
(** Number of {!map} calls ever made (OS traffic). *)

val unmap_count : t -> int

val iter_regions : t -> (addr:int -> bytes:int -> owner:int -> unit) -> unit
(** Iterates over live regions in unspecified order. *)
