type proc = int

type outcome = Hit | Cold_miss | Coherence_miss

type summary = {
  hits : int;
  cold_misses : int;
  coherence_misses : int;
  invalidations_sent : int;
  cross_node_events : int;
}

type proc_stats = {
  p_hits : int;
  p_cold_misses : int;
  p_coherence_misses : int;
  p_invalidations_sent : int;
  p_invalidations_received : int;
  p_evictions : int;
}

(* Directory entry: which processors hold the line, and whether one of them
   holds it exclusively (dirty). [mask] is a processor bit set. *)
type line_state = { mutable mask : int; mutable exclusive : bool }

type counters = {
  mutable hits : int;
  mutable cold : int;
  mutable coher : int;
  mutable inval_sent : int;
  mutable inval_recv : int;
  mutable evictions : int;
}

(* Per-processor LRU tracking for finite caches: a doubly-linked list in
   recency order plus a line -> node index. *)
type lru = { order : int Dlist.t; nodes : (int, int Dlist.node) Hashtbl.t }

type t = {
  line_size : int;
  line_shift : int;
  nprocs : int;
  capacity_lines : int option;
  node_of : int -> int;
  directory : (int, line_state) Hashtbl.t; (* line index -> state *)
  counters : counters array;
  lrus : lru array; (* used only when capacity_lines is set *)
  mutable cross_node_total : int;
}

let create ?(line_size = 64) ?capacity_lines ?(node_of = fun _ -> 0) ~nprocs () =
  if line_size <= 0 || line_size land (line_size - 1) <> 0 then
    invalid_arg "Cache.create: line_size must be a positive power of two";
  if nprocs < 1 || nprocs > 62 then invalid_arg "Cache.create: nprocs must be in [1, 62]";
  (match capacity_lines with
   | Some c when c < 1 -> invalid_arg "Cache.create: capacity_lines must be >= 1"
   | _ -> ());
  let rec log2 n = if n = 1 then 0 else 1 + log2 (n / 2) in
  {
    line_size;
    line_shift = log2 line_size;
    nprocs;
    capacity_lines;
    node_of;
    directory = Hashtbl.create 4096;
    counters =
      Array.init nprocs (fun _ -> { hits = 0; cold = 0; coher = 0; inval_sent = 0; inval_recv = 0; evictions = 0 });
    lrus = Array.init nprocs (fun _ -> { order = Dlist.create (); nodes = Hashtbl.create 256 });
    cross_node_total = 0;
  }

let line_size t = t.line_size

let nprocs t = t.nprocs

let line_of_addr t addr = addr lsr t.line_shift

let popcount mask =
  let rec loop m acc = if m = 0 then acc else loop (m land (m - 1)) (acc + 1) in
  loop mask 0

let credit_invalidations t p remote_mask =
  let n = popcount remote_mask in
  if n > 0 then begin
    t.counters.(p).inval_sent <- t.counters.(p).inval_sent + n;
    for q = 0 to t.nprocs - 1 do
      if remote_mask land (1 lsl q) <> 0 then t.counters.(q).inval_recv <- t.counters.(q).inval_recv + 1
    done
  end;
  n

let state_of t line =
  match Hashtbl.find_opt t.directory line with
  | Some s -> s
  | None ->
    let s = { mask = 0; exclusive = false } in
    Hashtbl.replace t.directory line s;
    s

(* Coherence events whose peer lives on another node. For an invalidating
   write, each remote copy is an event; for a served miss, one event if any
   current holder is remote-node. *)
let cross_node_of_mask t p mask =
  let my = t.node_of p in
  let n = ref 0 in
  for q = 0 to t.nprocs - 1 do
    if mask land (1 lsl q) <> 0 && t.node_of q <> my then incr n
  done;
  !n

let access_line t p line ~is_write =
  let s = state_of t line in
  let bit = 1 lsl p in
  let holds = s.mask land bit <> 0 in
  let remote = s.mask land lnot bit in
  if is_write then
    if holds && remote = 0 then begin
      (* Already sole holder: silent upgrade to exclusive. *)
      s.exclusive <- true;
      t.counters.(p).hits <- t.counters.(p).hits + 1;
      (Hit, 0)
    end
    else if holds then begin
      (* Upgrade: kill the other copies but the data is local. *)
      let n = credit_invalidations t p remote in
      s.mask <- bit;
      s.exclusive <- true;
      t.counters.(p).hits <- t.counters.(p).hits + 1;
      (Hit, n)
    end
    else if remote <> 0 then begin
      let n = credit_invalidations t p remote in
      s.mask <- bit;
      s.exclusive <- true;
      t.counters.(p).coher <- t.counters.(p).coher + 1;
      (Coherence_miss, n)
    end
    else begin
      s.mask <- bit;
      s.exclusive <- true;
      t.counters.(p).cold <- t.counters.(p).cold + 1;
      (Cold_miss, 0)
    end
  else if holds then begin
    t.counters.(p).hits <- t.counters.(p).hits + 1;
    (Hit, 0)
  end
  else if remote <> 0 then begin
    (* Served cache-to-cache; an exclusive holder is downgraded to shared
       (no invalidation: the remote copy survives). *)
    s.mask <- s.mask lor bit;
    s.exclusive <- false;
    t.counters.(p).coher <- t.counters.(p).coher + 1;
    (Coherence_miss, 0)
  end
  else begin
    s.mask <- bit;
    s.exclusive <- false;
    t.counters.(p).cold <- t.counters.(p).cold + 1;
    (Cold_miss, 0)
  end

(* Record that processor [p] now caches [line]; evict its least recently
   used line when over capacity (the victim silently drops out of the
   directory — writebacks are modelled as free/asynchronous). *)
let lru_touch t p line =
  match t.capacity_lines with
  | None -> ()
  | Some capacity ->
    let lru = t.lrus.(p) in
    (match Hashtbl.find_opt lru.nodes line with
     | Some node -> Dlist.remove lru.order node
     | None -> ());
    Hashtbl.replace lru.nodes line (Dlist.push_front lru.order line);
    if Dlist.length lru.order > capacity then
      match Dlist.peek_back lru.order with
      | None -> ()
      | Some victim ->
        (match Hashtbl.find_opt lru.nodes victim with
         | Some node -> Dlist.remove lru.order node
         | None -> ());
        Hashtbl.remove lru.nodes victim;
        (match Hashtbl.find_opt t.directory victim with
         | Some st ->
           st.mask <- st.mask land lnot (1 lsl p);
           if st.mask = 0 then st.exclusive <- false
         | None -> ());
        t.counters.(p).evictions <- t.counters.(p).evictions + 1

let access t p ~addr ~len ~is_write =
  if len <= 0 then invalid_arg "Cache.access: len must be positive";
  if p < 0 || p >= t.nprocs then invalid_arg "Cache.access: bad processor id";
  let first = line_of_addr t addr and last = line_of_addr t (addr + len - 1) in
  let acc = ref { hits = 0; cold_misses = 0; coherence_misses = 0; invalidations_sent = 0; cross_node_events = 0 } in
  for line = first to last do
    (* Snapshot the holder set before the transition to attribute
       cross-node traffic. *)
    let pre_mask =
      match Hashtbl.find_opt t.directory line with
      | Some s -> s.mask land lnot (1 lsl p)
      | None -> 0
    in
    let outcome, invals = access_line t p line ~is_write in
    lru_touch t p line;
    let cross =
      if is_write && invals > 0 then cross_node_of_mask t p pre_mask
      else if outcome = Coherence_miss then min 1 (cross_node_of_mask t p pre_mask)
      else 0
    in
    t.cross_node_total <- t.cross_node_total + cross;
    let a = !acc in
    acc :=
      {
        hits = (a.hits + if outcome = Hit then 1 else 0);
        cold_misses = (a.cold_misses + if outcome = Cold_miss then 1 else 0);
        coherence_misses = (a.coherence_misses + if outcome = Coherence_miss then 1 else 0);
        invalidations_sent = a.invalidations_sent + invals;
        cross_node_events = a.cross_node_events + cross;
      }
  done;
  !acc

let read t p ~addr ~len = access t p ~addr ~len ~is_write:false

let write t p ~addr ~len = access t p ~addr ~len ~is_write:true

let stats t p =
  let c = t.counters.(p) in
  {
    p_hits = c.hits;
    p_cold_misses = c.cold;
    p_coherence_misses = c.coher;
    p_invalidations_sent = c.inval_sent;
    p_invalidations_received = c.inval_recv;
    p_evictions = c.evictions;
  }

let total_cross_node_events t = t.cross_node_total

let total_invalidations t = Array.fold_left (fun acc c -> acc + c.inval_recv) 0 t.counters

let total_coherence_misses t = Array.fold_left (fun acc c -> acc + c.coher) 0 t.counters

let sharers t ~line =
  match Hashtbl.find_opt t.directory line with
  | None -> []
  | Some s ->
    let rec loop q acc = if q < 0 then acc else loop (q - 1) (if s.mask land (1 lsl q) <> 0 then q :: acc else acc) in
    loop (t.nprocs - 1) []

let reset_stats t =
  Array.iter
    (fun c ->
      c.hits <- 0;
      c.cold <- 0;
      c.coher <- 0;
      c.inval_sent <- 0;
      c.inval_recv <- 0;
      c.evictions <- 0)
    t.counters
