lib/simcache/cache.mli:
