lib/simcache/cost_model.ml:
