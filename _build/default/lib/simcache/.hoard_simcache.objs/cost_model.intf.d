lib/simcache/cost_model.mli:
