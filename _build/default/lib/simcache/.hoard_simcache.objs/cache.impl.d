lib/simcache/cache.ml: Array Dlist Hashtbl
