(* The systematic checking layer: schedule explorer, differential
   oracle, heap sanitizer — plus the determinism, edge-case and
   registry-churn regressions that ride on them. *)

let sprintf = Printf.sprintf

(* ------------------------------------------------------------------ *)
(* Explorer self-tests on the counter scenarios.                       *)

let test_explorer_finds_lost_update () =
  (* Invisible at bound 0 (no preemption can split the read-modify-write
     around the sync point), found at bound 1. *)
  let o0 = Explorer.explore ~bound:0 Scenarios.lost_update in
  Alcotest.(check bool) "bound 0 passes" true (o0.Explorer.o_failure = None);
  let o1 = Explorer.explore ~bound:1 Scenarios.lost_update in
  (match o1.Explorer.o_failure with
   | None -> Alcotest.fail "bound 1 must find the lost update"
   | Some f ->
     Alcotest.(check bool) "message mentions the counter" true
       (Astring.String.is_infix ~affix:"lost update" f.Explorer.f_message);
     (* The minimized schedule must still reproduce the failure. *)
     (match Explorer.replay Scenarios.lost_update ~schedule:f.Explorer.f_schedule with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "minimized schedule must replay to failure"));
  Alcotest.(check bool) "not truncated" false o1.Explorer.o_truncated

let test_explorer_locked_update_clean () =
  let o = Explorer.explore ~bound:2 Scenarios.locked_update in
  Alcotest.(check bool) "no failure" true (o.Explorer.o_failure = None);
  Alcotest.(check bool) "explored more than one interleaving" true (o.Explorer.o_runs > 1);
  Alcotest.(check bool) "not truncated" false o.Explorer.o_truncated

let test_sleep_dfs_agrees_and_prunes () =
  let chess = Explorer.explore ~strategy:Explorer.Chess ~bound:2 Scenarios.locked_update in
  let sleep = Explorer.explore ~strategy:Explorer.Sleep_dfs ~bound:2 Scenarios.locked_update in
  Alcotest.(check bool) "same verdict" true
    (chess.Explorer.o_failure = None && sleep.Explorer.o_failure = None);
  Alcotest.(check bool)
    (sprintf "sleep (%d runs) <= chess (%d runs)" sleep.Explorer.o_runs chess.Explorer.o_runs)
    true
    (sleep.Explorer.o_runs <= chess.Explorer.o_runs);
  let sleep_bug = Explorer.explore ~strategy:Explorer.Sleep_dfs ~bound:1 Scenarios.lost_update in
  Alcotest.(check bool) "sleep-dfs still finds the lost update" true (sleep_bug.Explorer.o_failure <> None)

let test_schedule_string_roundtrip () =
  let s = [ 1; 0; 0; 1; 3 ] in
  Alcotest.(check (list int)) "roundtrip" s (Explorer.schedule_of_string (Explorer.schedule_to_string s));
  Alcotest.(check (list int)) "empty" [] (Explorer.schedule_of_string "");
  Alcotest.(check string) "render" "1,0,2" (Explorer.schedule_to_string [ 1; 0; 2 ])

(* ------------------------------------------------------------------ *)
(* The headline demonstration: a planted concurrency mutant is caught  *)
(* at preemption bound <= 2 with a minimized replayable schedule,      *)
(* while the real allocator survives the same exploration.             *)

let test_mutant_transfer_race_caught () =
  let sc = Scenarios.transfer_free_race ~mutant:"skip-owner-recheck" in
  let o = Explorer.explore ~bound:2 sc in
  match o.Explorer.o_failure with
  | None -> Alcotest.fail "explorer must catch the skip-owner-recheck mutant at bound <= 2"
  | Some f ->
    Alcotest.(check bool) "failure names the foreign-superblock free" true
      (Astring.String.is_infix ~affix:"another heap" f.Explorer.f_message);
    (match Explorer.replay sc ~schedule:f.Explorer.f_schedule with
     | Error _ -> ()
     | Ok () ->
       Alcotest.fail
         (sprintf "minimized schedule [%s] must replay to failure"
            (Explorer.schedule_to_string f.Explorer.f_schedule)))

let test_real_transfer_race_survives () =
  let o = Explorer.explore ~bound:2 (Scenarios.transfer_free_race ~mutant:"") in
  (match o.Explorer.o_failure with
   | None -> ()
   | Some f ->
     Alcotest.fail
       (sprintf "real allocator failed under schedule [%s]: %s"
          (Explorer.schedule_to_string f.Explorer.f_schedule)
          f.Explorer.f_message));
  Alcotest.(check bool) "explored the tree exhaustively" false o.Explorer.o_truncated;
  Alcotest.(check bool) "explored more than one interleaving" true (o.Explorer.o_runs > 1)

let test_mutant_emptiness_caught_real_passes () =
  (* The off-by-one trim needs no interleaving at all: the default run's
     post-check rejects it. *)
  let bad = Explorer.explore ~bound:0 (Scenarios.emptiness_trim ~mutant:"emptiness-off-by-one") in
  (match bad.Explorer.o_failure with
   | None -> Alcotest.fail "emptiness-off-by-one must fail the invariant check"
   | Some f ->
     Alcotest.(check bool) "names the invariant" true
       (Astring.String.is_infix ~affix:"invariant" f.Explorer.f_message));
  let ok = Explorer.explore ~bound:0 (Scenarios.emptiness_trim ~mutant:"") in
  Alcotest.(check bool) "real allocator holds the invariant" true (ok.Explorer.o_failure = None)

let test_registry_churn_explored () =
  let o = Explorer.explore ~bound:1 ~max_runs:400 Scenarios.registry_churn in
  match o.Explorer.o_failure with
  | None -> ()
  | Some f ->
    Alcotest.fail
      (sprintf "registry churn failed under [%s]: %s"
         (Explorer.schedule_to_string f.Explorer.f_schedule)
         f.Explorer.f_message)

let test_reservoir_churn_explored () =
  let o = Explorer.explore ~bound:1 ~max_runs:400 Scenarios.reservoir_churn in
  match o.Explorer.o_failure with
  | None -> ()
  | Some f ->
    Alcotest.fail
      (sprintf "reservoir churn failed under [%s]: %s"
         (Explorer.schedule_to_string f.Explorer.f_schedule)
         f.Explorer.f_message)

(* ------------------------------------------------------------------ *)
(* The lock-free transfer protocols (PR 6): the Treiber stack under the
   reservoir and shelf, the park/take publication ordering, and the
   shelf transfer path — real variants explored exhaustively, seeded
   mutants caught with a minimized replayable schedule.                 *)

let test_lockfree_stack_protocol_clean () =
  (* Sleep-set DFS makes the full bound-2 tree (tag-retry loops included)
     affordable: ~11k interleavings. *)
  let o =
    Explorer.explore ~strategy:Explorer.Sleep_dfs ~bound:2 ~max_runs:200_000
      (Scenarios.lockfree_stack ~mutant:"")
  in
  (match o.Explorer.o_failure with
   | None -> ()
   | Some f ->
     Alcotest.fail
       (sprintf "lock-free stack failed under [%s]: %s"
          (Explorer.schedule_to_string f.Explorer.f_schedule)
          f.Explorer.f_message));
  Alcotest.(check bool) "explored the tree exhaustively" false o.Explorer.o_truncated

let test_lockfree_stack_aba_mutant_caught () =
  let sc = Scenarios.lockfree_stack ~mutant:"reservoir-no-aba" in
  let o = Explorer.explore ~bound:2 sc in
  match o.Explorer.o_failure with
  | None -> Alcotest.fail "explorer must catch the frozen ABA tag at bound <= 2"
  | Some f ->
    Alcotest.(check bool) "failure names the stack corruption" true
      (Astring.String.is_infix ~affix:"Lockfree" f.Explorer.f_message);
    (match Explorer.replay sc ~schedule:f.Explorer.f_schedule with
     | Error _ -> ()
     | Ok () ->
       Alcotest.fail
         (sprintf "minimized schedule [%s] must replay to failure"
            (Explorer.schedule_to_string f.Explorer.f_schedule)))

let test_park_take_order_clean () =
  (* Chess, not Sleep_dfs: the scenario's oracle reads vmem page
     residency, which step footprints do not see, so sleep-set pruning
     is unsound here (it prunes the very schedule the mutant fails on).
     The unreduced bound-2 tree is small anyway (~320 runs). *)
  let o =
    Explorer.explore ~strategy:Explorer.Chess ~bound:2 ~max_runs:200_000
      (Scenarios.park_take_order ~mutant:"")
  in
  (match o.Explorer.o_failure with
   | None -> ()
   | Some f ->
     Alcotest.fail
       (sprintf "park/take ordering failed under [%s]: %s"
          (Explorer.schedule_to_string f.Explorer.f_schedule)
          f.Explorer.f_message));
  Alcotest.(check bool) "explored the tree exhaustively" false o.Explorer.o_truncated

let test_park_before_decommit_mutant_caught () =
  let sc = Scenarios.park_take_order ~mutant:"park-before-decommit" in
  let o = Explorer.explore ~bound:2 sc in
  match o.Explorer.o_failure with
  | None -> Alcotest.fail "explorer must catch park-before-decommit at bound <= 2"
  | Some f ->
    Alcotest.(check bool) "failure names the dropped pages" true
      (Astring.String.is_infix ~affix:"decommitted" f.Explorer.f_message);
    (match Explorer.replay sc ~schedule:f.Explorer.f_schedule with
     | Error _ -> ()
     | Ok () ->
       Alcotest.fail
         (sprintf "minimized schedule [%s] must replay to failure"
            (Explorer.schedule_to_string f.Explorer.f_schedule)))

let test_shelf_transfer_explored () =
  let o = Explorer.explore ~strategy:Explorer.Sleep_dfs ~bound:1 ~max_runs:200_000 Scenarios.shelf_transfer in
  (match o.Explorer.o_failure with
   | None -> ()
   | Some f ->
     Alcotest.fail
       (sprintf "shelf transfer failed under [%s]: %s"
          (Explorer.schedule_to_string f.Explorer.f_schedule)
          f.Explorer.f_message));
  Alcotest.(check bool) "explored the tree exhaustively" false o.Explorer.o_truncated

(* ------------------------------------------------------------------ *)
(* The deferred remote-free list and the large-object cache (PR 8):
   real protocols explored exhaustively at preemption bound 2, the two
   seeded mutants caught with a minimized replayable schedule.          *)

let test_deferred_list_protocol_clean () =
  let o =
    Explorer.explore ~bound:2 ~max_runs:200_000 (Scenarios.deferred_remote_free ~mutant:"")
  in
  (match o.Explorer.o_failure with
   | None -> ()
   | Some f ->
     Alcotest.fail
       (sprintf "deferred remote free failed under [%s]: %s"
          (Explorer.schedule_to_string f.Explorer.f_schedule)
          f.Explorer.f_message));
  Alcotest.(check bool) "explored the tree exhaustively" false o.Explorer.o_truncated

let test_deferred_lost_node_mutant_caught () =
  let sc = Scenarios.deferred_remote_free ~mutant:"deferred-lost-node" in
  let o = Explorer.explore ~bound:2 sc in
  match o.Explorer.o_failure with
  | None -> Alcotest.fail "explorer must catch the lost push at bound <= 2"
  | Some f ->
    Alcotest.(check bool) "failure counts the missing block" true
      (Astring.String.is_infix ~affix:"expected 2" f.Explorer.f_message);
    (match Explorer.replay sc ~schedule:f.Explorer.f_schedule with
     | Error _ -> ()
     | Ok () ->
       Alcotest.fail
         (sprintf "minimized schedule [%s] must replay to failure"
            (Explorer.schedule_to_string f.Explorer.f_schedule)))

let test_large_cache_protocol_clean () =
  (* Chess, not Sleep_dfs: Large_cache.check reads vmem page residency,
     invisible to step footprints (the park_take_order caveat). The
     bound-2 tree is ~12k runs. *)
  let o =
    Explorer.explore ~strategy:Explorer.Chess ~bound:2 ~max_runs:200_000
      (Scenarios.large_cache_churn ~mutant:"")
  in
  (match o.Explorer.o_failure with
   | None -> ()
   | Some f ->
     Alcotest.fail
       (sprintf "large-cache churn failed under [%s]: %s"
          (Explorer.schedule_to_string f.Explorer.f_schedule)
          f.Explorer.f_message));
  Alcotest.(check bool) "explored the tree exhaustively" false o.Explorer.o_truncated

let test_large_cache_aba_mutant_caught () =
  let sc = Scenarios.large_cache_churn ~mutant:"large-cache-no-aba" in
  let o = Explorer.explore ~bound:2 sc in
  match o.Explorer.o_failure with
  | None -> Alcotest.fail "explorer must catch the frozen bucket tag at bound <= 2"
  | Some f ->
    Alcotest.(check bool) "failure names the corruption" true
      (Astring.String.is_infix ~affix:"Lockfree" f.Explorer.f_message
      || Astring.String.is_infix ~affix:"large-cache-churn" f.Explorer.f_message);
    (match Explorer.replay sc ~schedule:f.Explorer.f_schedule with
     | Error _ -> ()
     | Ok () ->
       Alcotest.fail
         (sprintf "minimized schedule [%s] must replay to failure"
            (Explorer.schedule_to_string f.Explorer.f_schedule)))

(* ------------------------------------------------------------------ *)
(* The lock-free global heap (PR 10): the Global_index entry stacks and
   Busy handshake explored raw, the end-to-end transfer race through the
   real allocator, and the two seeded mutants caught with a minimized
   replayable schedule.                                                 *)

let test_global_index_churn_clean () =
  (* Bound 2 under sleep-set DFS is exhaustive at ~15k runs (~1s): node
     allocation is host-side bump allocation, so the tree holds only the
     protocol's own CAS steps, not free-list seeding noise. *)
  let o =
    Explorer.explore ~strategy:Explorer.Sleep_dfs ~bound:2 ~max_runs:200_000
      (Scenarios.global_index_churn ~mutant:"")
  in
  (match o.Explorer.o_failure with
   | None -> ()
   | Some f ->
     Alcotest.fail
       (sprintf "global index churn failed under [%s]: %s"
          (Explorer.schedule_to_string f.Explorer.f_schedule)
          f.Explorer.f_message));
  Alcotest.(check bool) "explored the tree exhaustively" false o.Explorer.o_truncated

let test_global_no_aba_mutant_caught () =
  let sc = Scenarios.global_index_churn ~mutant:"global-no-aba" in
  let o = Explorer.explore ~bound:2 sc in
  match o.Explorer.o_failure with
  | None -> Alcotest.fail "explorer must catch the frozen entry-stack tag at bound <= 2"
  | Some f ->
    Alcotest.(check bool) "failure names the duplicated node" true
      (Astring.String.is_infix ~affix:"reachable twice" f.Explorer.f_message);
    (match Explorer.replay sc ~schedule:f.Explorer.f_schedule with
     | Error _ -> ()
     | Ok () ->
       Alcotest.fail
         (sprintf "minimized schedule [%s] must replay to failure"
            (Explorer.schedule_to_string f.Explorer.f_schedule)))

let test_global_index_free_clean () =
  (* Frees' Busy handshake racing a claim CAS: the full bound-2 sleep
     tree is ~3k interleavings. *)
  let o =
    Explorer.explore ~strategy:Explorer.Sleep_dfs ~bound:2 ~max_runs:200_000
      (Scenarios.global_index_free ~mutant:"")
  in
  (match o.Explorer.o_failure with
   | None -> ()
   | Some f ->
     Alcotest.fail
       (sprintf "global index free failed under [%s]: %s"
          (Explorer.schedule_to_string f.Explorer.f_schedule)
          f.Explorer.f_message));
  Alcotest.(check bool) "explored the tree exhaustively" false o.Explorer.o_truncated

let test_global_skip_revalidate_mutant_caught () =
  let sc = Scenarios.global_index_free ~mutant:"global-skip-revalidate" in
  let o = Explorer.explore ~bound:2 sc in
  match o.Explorer.o_failure with
  | None -> Alcotest.fail "explorer must catch the blind claim store at bound <= 2"
  | Some f ->
    Alcotest.(check bool) "failure names the stomped gauge" true
      (Astring.String.is_infix ~affix:"gauge" f.Explorer.f_message);
    (match Explorer.replay sc ~schedule:f.Explorer.f_schedule with
     | Error _ -> ()
     | Ok () ->
       Alcotest.fail
         (sprintf "minimized schedule [%s] must replay to failure"
            (Explorer.schedule_to_string f.Explorer.f_schedule)))

let test_global_transfer_explored () =
  (* End to end through the real allocator (trim publish vs refill claim
     vs deferred-free reclaim). Bound 1 sleep is exhaustive at ~1.3k
     runs; the bound-2 sleep tree (~44k runs, ~16s) is certified in
     deep-check. *)
  let o =
    Explorer.explore ~strategy:Explorer.Sleep_dfs ~bound:1 ~max_runs:200_000
      Scenarios.global_transfer
  in
  (match o.Explorer.o_failure with
   | None -> ()
   | Some f ->
     Alcotest.fail
       (sprintf "global transfer failed under [%s]: %s"
          (Explorer.schedule_to_string f.Explorer.f_schedule)
          f.Explorer.f_message));
  Alcotest.(check bool) "explored the tree exhaustively" false o.Explorer.o_truncated

(* ------------------------------------------------------------------ *)
(* Differential fuzz: deferred vs direct frees. The same generated
   trace replays against every hoard-family factory's base config and
   against the same config with the deferred lists and the large cache
   switched on; the allocation-visible outcome (op counts, live bytes
   after a full flush) must be identical — the deferred path only
   changes WHEN blocks return to their owner, never whether they do.    *)

let test_deferred_differential_fuzz () =
  let replay_with config t =
    let sim = Sim.create ~vmem_backend:config.Hoard_config.vmem_backend ~nprocs:4 () in
    let pf = Sim.platform sim in
    let h = Hoard.create ~config pf in
    let a = Hoard.allocator h in
    Trace.replay_sim t sim a ~nthreads:4;
    Sim.run sim;
    a.Alloc_intf.check ();
    Hoard.flush_caches h;
    Hoard.check h;
    let s = a.Alloc_intf.stats () in
    (s.Alloc_stats.mallocs, s.Alloc_stats.frees, s.Alloc_stats.live_bytes)
  in
  List.iter
    (fun seed ->
      (* Sizes straddle the large threshold so the fuzz also covers the
         large-object cache against the direct map/unmap path. *)
      let t =
        Trace.generate ~seed ~ops:2500 ~threads:4 ~live_target:40
          ~size_dist:(Trace.Uniform (8, 6000)) ()
      in
      List.iter
        (fun f ->
          let label = f.Alloc_intf.label in
          match Allocators.base_config label with
          | None -> () (* non-hoard comparison allocators: no deferred variant *)
          | Some cfg ->
            let direct = replay_with { cfg with Hoard_config.deferred = false } t in
            let deferred =
              replay_with
                {
                  cfg with
                  Hoard_config.deferred = true;
                  front_end = max cfg.Hoard_config.front_end 4;
                  large_cache = 4;
                }
                t
            in
            let pp (m, fr, lv) = sprintf "mallocs=%d frees=%d live=%d" m fr lv in
            Alcotest.(check string)
              (sprintf "%s seed %d: deferred outcome equals direct" label seed)
              (pp direct) (pp deferred))
        (Allocators.all () @ Allocators.extras ()))
    [ 3; 1009 ]

(* ------------------------------------------------------------------ *)
(* Differential oracle on the paper workloads.                         *)

let test_oracle_workloads_green () =
  (* Every quick workload, oracle-checked, on the paper allocator and the
     front-end variant, with the blowup envelope asserted at the end. *)
  List.iter
    (fun subject ->
      List.iter
        (fun w ->
          let r = Check_run.run_oracle ~fuzz:7 ~workload:w ~subject () in
          Alcotest.(check bool)
            (sprintf "%s/%s checked ops" subject r.Check_run.c_workload)
            true
            (r.Check_run.c_mallocs > 0 && r.Check_run.c_peak_usable > 0))
        (Check_run.quick_workloads ()))
    [ "hoard"; "hoard-fe" ]

let test_oracle_sanitizer_workloads_green () =
  (* The acceptance gate: paper workloads green under the oracle with the
     sanitizer on (quarantine, poison, access checking). *)
  List.iter
    (fun w ->
      let r = Check_run.run_oracle ~fuzz:11 ~workload:w ~subject:"hoard-san" () in
      Alcotest.(check bool)
        (sprintf "hoard-san/%s ran" r.Check_run.c_workload)
        true (r.Check_run.c_mallocs > 0))
    (Check_run.quick_workloads ())

let test_oracle_reservoir_workloads_green () =
  (* Every quick workload under the reservoir + first-fit lifecycle: the
     oracle's residency check (resident <= held + R*S) runs in the post
     phase for every hoard subject, so a green run certifies the bound. *)
  List.iter
    (fun w ->
      let r = Check_run.run_oracle ~fuzz:13 ~workload:w ~subject:"hoard-res" () in
      Alcotest.(check bool)
        (sprintf "hoard-res/%s ran" r.Check_run.c_workload)
        true (r.Check_run.c_mallocs > 0))
    (Check_run.quick_workloads ())

let test_oracle_shelf_workloads_green () =
  (* The lock-free transfer path (shelf + reservoir + front end) under
     the oracle: blowup slop includes the shelf's parked superblocks, and
     flush_caches/check at quiescence validate the shelf walk. *)
  List.iter
    (fun w ->
      let r = Check_run.run_oracle ~fuzz:17 ~workload:w ~subject:"hoard-shelf" () in
      Alcotest.(check bool)
        (sprintf "hoard-shelf/%s ran" r.Check_run.c_workload)
        true (r.Check_run.c_mallocs > 0))
    (Check_run.quick_workloads ())

let test_oracle_global_workloads_green () =
  (* The lock-free global heap under the oracle: every quick workload on
     hoard-gl, whose post-run check walks the Global_index (owner-0
     membership, slot words, gauge conservation) instead of heap 0's
     Dlist fullness groups. *)
  List.iter
    (fun w ->
      let r = Check_run.run_oracle ~fuzz:29 ~workload:w ~subject:"hoard-gl" () in
      Alcotest.(check bool)
        (sprintf "hoard-gl/%s ran" r.Check_run.c_workload)
        true (r.Check_run.c_mallocs > 0))
    (Check_run.quick_workloads ())

let test_oracle_false_sharing_verdicts () =
  let fs = Check_run.find_workload "active-false" |> Option.get in
  (* Hoard never hands blocks of one cache line to different threads. *)
  let h = Check_run.run_oracle ~workload:fs ~subject:"hoard" ~expect_no_false_sharing:true () in
  Alcotest.(check int) "hoard: no actively shared lines" 0 h.Check_run.c_shared_lines;
  (* A single shared heap carves consecutive blocks for whoever asks. *)
  let c = Check_run.run_oracle ~workload:fs ~subject:"concurrent-single" ~check_blowup:false () in
  Alcotest.(check bool)
    (sprintf "concurrent-single shares lines (%d)" c.Check_run.c_shared_lines)
    true
    (c.Check_run.c_shared_lines > 0)

let test_oracle_catches_misbehavior () =
  (* The oracle itself must reject bad allocators: a double free through
     the wrapped interface raises. *)
  let pf = Platform.host () in
  let a = (Serial_alloc.factory ()).Alloc_intf.instantiate pf in
  let _o, checked = Oracle.wrap pf a in
  let addr = checked.Alloc_intf.malloc 64 in
  checked.Alloc_intf.free addr;
  (match checked.Alloc_intf.free addr with
   | () -> Alcotest.fail "oracle must reject a double free"
   | exception Oracle.Oracle_violation msg ->
     Alcotest.(check bool) "names the address" true (Astring.String.is_infix ~affix:"not a live block" msg));
  Platform.host_release pf

(* ------------------------------------------------------------------ *)
(* Heap sanitizer diagnostics (S/tentpole layer 3).                    *)

let san_config = Hoard_config.make ~sanitize:true ~quarantine:8 ()

let with_san_hoard f =
  let pf = Platform.host () in
  let h = Hoard.create ~config:san_config pf in
  let a = Hoard.allocator h in
  Fun.protect ~finally:(fun () -> Platform.host_release pf) (fun () -> f h a)

let test_sanitizer_double_free () =
  with_san_hoard (fun _h a ->
      let addr = a.Alloc_intf.malloc 64 in
      a.Alloc_intf.free addr;
      match a.Alloc_intf.free addr with
      | () -> Alcotest.fail "double free must raise"
      | exception Hoard.Sanitizer_violation msg ->
        Alcotest.(check bool) "names double free" true (Astring.String.is_infix ~affix:"double free" msg);
        Alcotest.(check bool) "names the superblock" true (Astring.String.is_infix ~affix:"superblock" msg))

let test_sanitizer_use_after_free () =
  with_san_hoard (fun h a ->
      let addr = a.Alloc_intf.malloc 64 in
      a.Alloc_intf.free addr;
      Alcotest.(check bool) "block quarantined" true (Hoard.quarantine_length h > 0);
      (match a.Alloc_intf.usable_size addr with
       | _ -> Alcotest.fail "usable_size of a quarantined block must raise"
       | exception Hoard.Sanitizer_violation msg ->
         Alcotest.(check bool) "names the quarantined block" true
           (Astring.String.is_infix ~affix:"quarantined" msg));
      let checker = Option.get (Hoard.sanitizer_access_check h) in
      match checker ~addr ~len:8 ~write:false with
      | () -> Alcotest.fail "read of a quarantined block must raise"
      | exception Hoard.Sanitizer_violation msg ->
        Alcotest.(check bool) "names use-after-free" true
          (Astring.String.is_infix ~affix:"use-after-free" msg))

let test_sanitizer_overflow_and_canary () =
  with_san_hoard (fun h a ->
      let addr = a.Alloc_intf.malloc 64 in
      let usable = a.Alloc_intf.usable_size addr in
      let checker = Option.get (Hoard.sanitizer_access_check h) in
      checker ~addr ~len:usable ~write:true;
      (match checker ~addr ~len:(usable + 8) ~write:true with
       | () -> Alcotest.fail "write past the block end must raise"
       | exception Hoard.Sanitizer_violation msg ->
         Alcotest.(check bool) "names overflow" true (Astring.String.is_infix ~affix:"overflow" msg));
      let sb_base = addr - (addr mod san_config.Hoard_config.sb_size) in
      match checker ~addr:sb_base ~len:8 ~write:true with
      | () -> Alcotest.fail "write into the superblock header must raise"
      | exception Hoard.Sanitizer_violation msg ->
        Alcotest.(check bool) "names the header canary" true (Astring.String.is_infix ~affix:"header" msg))

let test_sanitizer_foreign_and_interior () =
  with_san_hoard (fun _h a ->
      let addr = a.Alloc_intf.malloc 64 in
      (match a.Alloc_intf.free (addr + 4) with
       | () -> Alcotest.fail "interior free must raise"
       | exception Hoard.Sanitizer_violation msg ->
         Alcotest.(check bool) "names interior pointer" true (Astring.String.is_infix ~affix:"interior" msg));
      a.Alloc_intf.free addr)

let test_sanitizer_quarantine_drains () =
  with_san_hoard (fun h a ->
      let addrs = Array.init 24 (fun _ -> a.Alloc_intf.malloc 32) in
      Array.iter a.Alloc_intf.free addrs;
      (* Ring capacity 8: the older 16 frees were evicted and completed. *)
      Alcotest.(check int) "quarantine at capacity" 8 (Hoard.quarantine_length h);
      Hoard.flush_caches h;
      Alcotest.(check int) "flush drains the quarantine" 0 (Hoard.quarantine_length h);
      let s = a.Alloc_intf.stats () in
      Alcotest.(check int) "all frees completed" 24 s.Alloc_stats.frees;
      Alcotest.(check int) "nothing live" 0 s.Alloc_stats.live_bytes;
      Hoard.check h)

(* ------------------------------------------------------------------ *)
(* S2: schedule-fuzz determinism — same seed, same run.                *)

let ring_signature obs =
  List.map (fun (name, r) -> (name, Event_ring.recorded r)) (Obs.rings obs)

let run_traced ~fuzz factory_of_obs =
  let obs = Obs.create () in
  let w = Threadtest.make ~params:{ Threadtest.default_params with Threadtest.iterations = 3; objects = 1200 } () in
  let r = Runner.run_with ~fuzz (Runner.spec w (factory_of_obs obs) ~nprocs:4) in
  (ring_signature obs, r.Runner.r_stats, r.Runner.r_cycles)

let test_fuzz_determinism () =
  List.iter
    (fun (label, config) ->
      let factory_of_obs obs = Hoard.factory ~config ~obs () in
      let sig1, stats1, cyc1 = run_traced ~fuzz:42 factory_of_obs in
      let sig2, stats2, cyc2 = run_traced ~fuzz:42 factory_of_obs in
      Alcotest.(check (list (pair string int))) (label ^ ": same ring counts") sig1 sig2;
      Alcotest.(check bool) (label ^ ": same stats") true (stats1 = stats2);
      Alcotest.(check int) (label ^ ": same cycles") cyc1 cyc2)
    [
      ("hoard", Hoard_config.default);
      ("hoard-fe", Hoard_config.make ~front_end:Allocators.front_end_default ());
      ( "hoard-df",
        Hoard_config.make ~front_end:Allocators.front_end_default ~deferred:true
          ~large_cache:Allocators.large_cache_default () );
    ]

(* ------------------------------------------------------------------ *)
(* S3: API edge cases, oracle-checked, across every registry factory.  *)

let test_edge_cases_all_factories () =
  List.iter
    (fun (factory : Alloc_intf.factory) ->
      let label = factory.Alloc_intf.label in
      let sim = Sim.create ~nprocs:1 () in
      let pf = Sim.platform sim in
      let failures = ref [] in
      let expect name f = try f () with e -> failures := sprintf "%s: %s" name (Printexc.to_string e) :: !failures in
      ignore
        (Sim.spawn sim (fun () ->
             let a = factory.Alloc_intf.instantiate pf in
             let o, a = Oracle.wrap pf a in
             expect "malloc 0 rejected" (fun () ->
                 match a.Alloc_intf.malloc 0 with
                 | _ -> failwith "malloc 0 must raise"
                 | exception Invalid_argument _ -> ());
             expect "shrink in place" (fun () ->
                 let addr = a.Alloc_intf.malloc 256 in
                 let r = a.Alloc_intf.realloc ~addr ~size:64 in
                 if a.Alloc_intf.usable_size r < 64 then failwith "shrunk block too small";
                 if r <> addr then failwith "shrink within usable size must stay in place";
                 a.Alloc_intf.free r);
             expect "realloc grow" (fun () ->
                 let addr = a.Alloc_intf.malloc 16 in
                 let r = a.Alloc_intf.realloc ~addr ~size:3000 in
                 if a.Alloc_intf.usable_size r < 3000 then failwith "grown block too small";
                 a.Alloc_intf.free r);
             expect "realloc size 0 rejected" (fun () ->
                 let addr = a.Alloc_intf.malloc 32 in
                 (match a.Alloc_intf.realloc ~addr ~size:0 with
                  | _ -> failwith "realloc size 0 must raise"
                  | exception Invalid_argument _ -> ());
                 a.Alloc_intf.free addr);
             expect "aligned_alloc page alignment" (fun () ->
                 (* Alignment above any superblock size class: served
                    page-aligned from the large path. *)
                 let addr = a.Alloc_intf.aligned_alloc ~align:pf.Platform.page_size ~size:100 in
                 if addr mod pf.Platform.page_size <> 0 then failwith "not page aligned";
                 a.Alloc_intf.free addr);
             expect "aligned_alloc beyond page rejected" (fun () ->
                 match a.Alloc_intf.aligned_alloc ~align:(pf.Platform.page_size * 2) ~size:8 with
                 | _ -> failwith "align > page_size must raise"
                 | exception Invalid_argument _ -> ());
             expect "calloc zeroes and frees" (fun () ->
                 let addr = a.Alloc_intf.calloc ~count:10 ~size:8 in
                 if a.Alloc_intf.usable_size addr < 80 then failwith "calloc too small";
                 a.Alloc_intf.free addr);
             expect "calloc overflow rejected" (fun () ->
                 match a.Alloc_intf.calloc ~count:((max_int / 16) + 1) ~size:16 with
                 | _ -> failwith "overflowing calloc must raise"
                 | exception Invalid_argument _ -> ());
             a.Alloc_intf.check ();
             Oracle.final_check o ~stats:(a.Alloc_intf.stats ());
             if Oracle.live_count o <> 0 then failures := "edge cases leaked blocks" :: !failures));
      Sim.run sim;
      match !failures with
      | [] -> ()
      | fs -> Alcotest.fail (sprintf "%s: %s" label (String.concat "; " (List.rev fs))))
    (Allocators.all () @ Allocators.extras ())

(* ------------------------------------------------------------------ *)
(* S4: registry lookups under real-domain register/unregister churn.   *)

let test_registry_domain_churn () =
  (* One writer domain maps/unmaps superblocks in its own address range;
     three reader domains hammer lookup across all ranges. The wait-free
     snapshot must never yield a superblock that does not span the
     queried address, and lookups of live registrations must hit. *)
  let ndomains = 4 in
  let sb_size = 4096 in
  let pf = Platform.host ~nprocs:ndomains () in
  let reg = Sb_registry.create pf ~sb_size in
  let rounds = 400 in
  let per = 8 in
  let base_of d i = ((d * per) + i + 1) * sb_size in
  let failures = Atomic.make 0 in
  let stop = Atomic.make false in
  let mk d i = Superblock.create ~base:(base_of d i) ~sb_size ~sclass:0 ~block_size:64 in
  let writer d =
    let sbs = Array.init per (mk d) in
    for _ = 1 to rounds do
      Array.iter (fun sb -> Sb_registry.register reg sb) sbs;
      Array.iter
        (fun sb ->
          match Sb_registry.lookup reg ~addr:(Superblock.base sb + 100) with
          | Some got when Superblock.base got = Superblock.base sb -> ()
          | Some _ | None -> Atomic.incr failures)
        sbs;
      Array.iter (fun sb -> Sb_registry.unregister reg sb) sbs
    done
  in
  let reader () =
    let rng = Random.State.make [| 0x5eed |] in
    while not (Atomic.get stop) do
      let d = Random.State.int rng 2 in
      let i = Random.State.int rng per in
      let addr = base_of d i + 8 + Random.State.int rng (sb_size - 16) in
      match Sb_registry.lookup reg ~addr with
      | None -> ()
      | Some sb ->
        if not (Superblock.base sb <= addr && addr < Superblock.base sb + sb_size) then
          Atomic.incr failures
    done
  in
  let doms =
    List.init ndomains (fun d ->
        Domain.spawn (fun () ->
            if d < 2 then writer d
            else reader ()))
  in
  (* Writers are domains 0 and 1; once both finish, stop the readers. *)
  let writers, readers = List.partition (fun (i, _) -> i < 2) (List.mapi (fun i d -> (i, d)) doms) in
  List.iter (fun (_, d) -> Domain.join d) writers;
  Atomic.set stop true;
  List.iter (fun (_, d) -> Domain.join d) readers;
  Alcotest.(check int) "no stale or misplaced lookups" 0 (Atomic.get failures);
  Alcotest.(check int) "registry empty at the end" 0 (Sb_registry.count reg);
  Platform.host_release pf

let () =
  Alcotest.run "check"
    [
      ( "explorer",
        [
          Alcotest.test_case "finds lost update at bound 1" `Quick test_explorer_finds_lost_update;
          Alcotest.test_case "locked update clean" `Quick test_explorer_locked_update_clean;
          Alcotest.test_case "sleep-dfs agrees and prunes" `Quick test_sleep_dfs_agrees_and_prunes;
          Alcotest.test_case "schedule string roundtrip" `Quick test_schedule_string_roundtrip;
        ] );
      ( "mutants",
        [
          Alcotest.test_case "transfer race mutant caught" `Quick test_mutant_transfer_race_caught;
          Alcotest.test_case "real allocator survives race" `Quick test_real_transfer_race_survives;
          Alcotest.test_case "emptiness mutant caught" `Quick test_mutant_emptiness_caught_real_passes;
          Alcotest.test_case "registry churn survives" `Quick test_registry_churn_explored;
          Alcotest.test_case "reservoir churn survives" `Quick test_reservoir_churn_explored;
        ] );
      ( "lockfree",
        [
          Alcotest.test_case "treiber stack survives bound 2" `Quick test_lockfree_stack_protocol_clean;
          Alcotest.test_case "frozen ABA tag caught" `Quick test_lockfree_stack_aba_mutant_caught;
          Alcotest.test_case "park/take ordering survives bound 2" `Quick test_park_take_order_clean;
          Alcotest.test_case "park-before-decommit caught" `Quick test_park_before_decommit_mutant_caught;
          Alcotest.test_case "shelf transfer survives" `Quick test_shelf_transfer_explored;
        ] );
      ( "deferred",
        [
          Alcotest.test_case "deferred list survives bound 2" `Quick test_deferred_list_protocol_clean;
          Alcotest.test_case "lost push caught" `Quick test_deferred_lost_node_mutant_caught;
          Alcotest.test_case "large cache survives bound 2" `Quick test_large_cache_protocol_clean;
          Alcotest.test_case "frozen bucket tag caught" `Quick test_large_cache_aba_mutant_caught;
          Alcotest.test_case "deferred vs direct differential" `Quick test_deferred_differential_fuzz;
        ] );
      ( "global",
        [
          Alcotest.test_case "index churn survives bound 2" `Quick test_global_index_churn_clean;
          Alcotest.test_case "frozen entry tag caught" `Quick test_global_no_aba_mutant_caught;
          Alcotest.test_case "busy handshake survives bound 2" `Quick test_global_index_free_clean;
          Alcotest.test_case "blind claim store caught" `Quick test_global_skip_revalidate_mutant_caught;
          Alcotest.test_case "end-to-end transfer survives" `Quick test_global_transfer_explored;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "paper workloads green" `Quick test_oracle_workloads_green;
          Alcotest.test_case "workloads green with sanitizer" `Quick test_oracle_sanitizer_workloads_green;
          Alcotest.test_case "workloads green with reservoir" `Quick test_oracle_reservoir_workloads_green;
          Alcotest.test_case "workloads green with shelf" `Quick test_oracle_shelf_workloads_green;
          Alcotest.test_case "workloads green with lock-free global" `Quick test_oracle_global_workloads_green;
          Alcotest.test_case "false sharing verdicts" `Quick test_oracle_false_sharing_verdicts;
          Alcotest.test_case "oracle catches misbehavior" `Quick test_oracle_catches_misbehavior;
        ] );
      ( "sanitizer",
        [
          Alcotest.test_case "double free" `Quick test_sanitizer_double_free;
          Alcotest.test_case "use after free" `Quick test_sanitizer_use_after_free;
          Alcotest.test_case "overflow and canary" `Quick test_sanitizer_overflow_and_canary;
          Alcotest.test_case "foreign and interior" `Quick test_sanitizer_foreign_and_interior;
          Alcotest.test_case "quarantine drains" `Quick test_sanitizer_quarantine_drains;
        ] );
      ( "regressions",
        [
          Alcotest.test_case "fuzz-schedule determinism" `Quick test_fuzz_determinism;
          Alcotest.test_case "edge cases on every factory" `Quick test_edge_cases_all_factories;
          Alcotest.test_case "registry domain churn" `Quick test_registry_domain_churn;
        ] );
    ]
