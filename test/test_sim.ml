(* Scheduler, clock, lock and barrier semantics of the simulated machine. *)

let um = Cost_model.uniform_memory

let test_single_thread_work () =
  let sim = Sim.create ~cost:um ~nprocs:1 () in
  ignore (Sim.spawn sim (fun () -> Sim.work 100));
  Sim.run sim;
  Alcotest.(check int) "100 cycles" 100 (Sim.total_cycles sim)

let test_parallel_work_overlaps () =
  let sim = Sim.create ~cost:um ~nprocs:4 () in
  for _ = 1 to 4 do
    ignore (Sim.spawn sim (fun () -> Sim.work 1000))
  done;
  Sim.run sim;
  Alcotest.(check int) "perfect overlap" 1000 (Sim.total_cycles sim)

let test_two_threads_one_proc_serialise () =
  let sim = Sim.create ~cost:um ~nprocs:1 () in
  ignore (Sim.spawn sim (fun () -> Sim.work 500));
  ignore (Sim.spawn sim (fun () -> Sim.work 500));
  Sim.run sim;
  Alcotest.(check int) "serialised" 1000 (Sim.total_cycles sim)

let test_self_ids () =
  let sim = Sim.create ~cost:um ~nprocs:3 () in
  let seen = Array.make 3 (-1) in
  for _ = 0 to 2 do
    ignore (Sim.spawn sim (fun () -> seen.(Sim.self_tid ()) <- Sim.self_proc ()))
  done;
  Sim.run sim;
  Alcotest.(check (array int)) "round-robin placement" [| 0; 1; 2 |] seen

let test_spawn_pinned () =
  let sim = Sim.create ~cost:um ~nprocs:4 () in
  let proc = ref (-1) in
  ignore (Sim.spawn sim ~proc:3 (fun () -> proc := Sim.self_proc ()));
  Sim.run sim;
  Alcotest.(check int) "pinned to proc 3" 3 !proc

let test_lock_mutual_exclusion () =
  let sim = Sim.create ~nprocs:4 () in
  let lock = Sim.new_lock sim "l" in
  let inside = ref 0 and max_inside = ref 0 and count = ref 0 in
  for _ = 1 to 4 do
    ignore
      (Sim.spawn sim (fun () ->
           for _ = 1 to 50 do
             Sim.acquire lock;
             incr inside;
             if !inside > !max_inside then max_inside := !inside;
             Sim.work 10;
             incr count;
             decr inside;
             Sim.release lock
           done))
  done;
  Sim.run sim;
  Alcotest.(check int) "never two holders" 1 !max_inside;
  Alcotest.(check int) "all sections ran" 200 !count;
  Alcotest.(check int) "acquisitions counted" 200 (Sim.lock_acquisitions lock)

let test_lock_contention_costs_cycles () =
  (* Same total work, with and without contention on one lock. *)
  let run ~shared =
    let sim = Sim.create ~nprocs:4 () in
    let locks =
      if shared then Array.make 4 (Sim.new_lock sim "shared") else Array.init 4 (fun i -> Sim.new_lock sim (string_of_int i))
    in
    for i = 0 to 3 do
      ignore
        (Sim.spawn sim (fun () ->
             for _ = 1 to 100 do
               Sim.acquire locks.(i);
               Sim.work 20;
               Sim.release locks.(i)
             done))
    done;
    Sim.run sim;
    Sim.total_cycles sim
  in
  let contended = run ~shared:true and independent = run ~shared:false in
  Alcotest.(check bool)
    (Printf.sprintf "contended (%d) slower than independent (%d)" contended independent)
    true
    (contended > 2 * independent)

let test_ticket_lock_mutual_exclusion () =
  let sim = Sim.create ~lock_kind:Sim.Ticket ~nprocs:4 () in
  let lock = Sim.new_lock sim "t" in
  let inside = ref 0 and max_inside = ref 0 and count = ref 0 in
  for _ = 1 to 4 do
    ignore
      (Sim.spawn sim (fun () ->
           for _ = 1 to 50 do
             Sim.acquire lock;
             incr inside;
             if !inside > !max_inside then max_inside := !inside;
             Sim.work 10;
             incr count;
             decr inside;
             Sim.release lock
           done))
  done;
  Sim.run sim;
  Alcotest.(check int) "never two holders" 1 !max_inside;
  Alcotest.(check int) "all sections ran" 200 !count

let test_ticket_lock_fifo () =
  (* Three contenders arrive in a known order; with ticket locks they must
     enter in exactly that order. *)
  let sim = Sim.create ~cost:Cost_model.uniform_memory ~lock_kind:Sim.Ticket ~nprocs:3 () in
  let lock = Sim.new_lock sim "t" in
  let order = ref [] in
  for i = 0 to 2 do
    ignore
      (Sim.spawn sim (fun () ->
           Sim.work (10 * (i + 1));
           (* staggered arrival: 10, 20, 30 *)
           Sim.acquire lock;
           order := i :: !order;
           Sim.work 500;
           (* hold long enough that all wait *)
           Sim.release lock))
  done;
  Sim.run sim;
  Alcotest.(check (list int)) "FIFO entry order" [ 0; 1; 2 ] (List.rev !order)

let test_release_by_non_holder_rejected () =
  let sim = Sim.create ~cost:um ~nprocs:2 () in
  let lock = Sim.new_lock sim "l" in
  let failed = ref false in
  ignore
    (Sim.spawn sim (fun () ->
         try Sim.release lock with
         | Invalid_argument _ -> failed := true));
  Sim.run sim;
  Alcotest.(check bool) "release rejected" true !failed

let test_barrier_synchronises () =
  let sim = Sim.create ~cost:um ~nprocs:4 () in
  let b = Sim.new_barrier sim ~parties:4 in
  let before = ref 0 and wrong = ref false in
  for i = 0 to 3 do
    ignore
      (Sim.spawn sim (fun () ->
           Sim.work ((i + 1) * 100);
           incr before;
           Sim.barrier_wait b;
           if !before <> 4 then wrong := true))
  done;
  Sim.run sim;
  Alcotest.(check bool) "no thread passed early" false !wrong

let test_barrier_reusable () =
  let sim = Sim.create ~cost:um ~nprocs:2 () in
  let b = Sim.new_barrier sim ~parties:2 in
  let phases = ref [] in
  for i = 0 to 1 do
    ignore
      (Sim.spawn sim (fun () ->
           for phase = 1 to 3 do
             Sim.work (100 * (i + 1));
             Sim.barrier_wait b;
             if i = 0 then phases := phase :: !phases
           done))
  done;
  Sim.run sim;
  Alcotest.(check (list int)) "three phases" [ 3; 2; 1 ] !phases

let test_deadlock_detected () =
  let sim = Sim.create ~cost:um ~nprocs:2 () in
  let b = Sim.new_barrier sim ~parties:2 in
  ignore (Sim.spawn sim (fun () -> Sim.barrier_wait b));
  Alcotest.check_raises "deadlock"
    (Sim.Deadlock "1 thread(s) cannot progress: tid 0 (proc 0) blocked on a barrier") (fun () ->
      Sim.run sim)

(* Satellite: the enriched Deadlock message names the lock, its current
   holder (tid and processor), and each blocked waiter. Classic AB-BA:
   spin locks never park, so this is caught by the spin-streak progress
   scan rather than empty run queues. *)
let test_deadlock_names_holder () =
  let sim = Sim.create ~cost:um ~nprocs:2 () in
  let la = Sim.new_lock sim "A" and lb = Sim.new_lock sim "B" in
  ignore
    (Sim.spawn sim ~proc:0 (fun () ->
         Sim.acquire la;
         Sim.work 500;
         Sim.acquire lb;
         Sim.release lb;
         Sim.release la));
  ignore
    (Sim.spawn sim ~proc:1 (fun () ->
         Sim.acquire lb;
         Sim.work 500;
         Sim.acquire la;
         Sim.release la;
         Sim.release lb));
  match Sim.run sim with
  | () -> Alcotest.fail "AB-BA deadlock not detected"
  | exception Sim.Deadlock msg ->
    let expect =
      "2 thread(s) cannot progress: "
      ^ "tid 0 (proc 0) waits for lock \"B\" held by tid 1 (proc 1); "
      ^ "tid 1 (proc 1) waits for lock \"A\" held by tid 0 (proc 0)"
    in
    Alcotest.(check string) "enriched deadlock message" expect msg

let test_determinism () =
  let trace () =
    let sim = Sim.create ~nprocs:3 () in
    let lock = Sim.new_lock sim "l" in
    let log = Buffer.create 64 in
    for i = 0 to 2 do
      ignore
        (Sim.spawn sim (fun () ->
             for _ = 1 to 20 do
               Sim.acquire lock;
               Buffer.add_string log (string_of_int i);
               Sim.work (10 + i);
               Sim.release lock
             done))
    done;
    Sim.run sim;
    (Buffer.contents log, Sim.total_cycles sim)
  in
  let a = trace () and b = trace () in
  Alcotest.(check (pair string int)) "identical runs" a b

let test_memory_costs_charged () =
  let sim = Sim.create ~nprocs:1 () in
  ignore
    (Sim.spawn sim (fun () ->
         Sim.write ~addr:4096 ~len:8;
         (* cold miss *)
         Sim.write ~addr:4096 ~len:8 (* hit *)));
  Sim.run sim;
  let c = Cost_model.default in
  Alcotest.(check int) "cold miss + hit" (c.cold_miss + c.cache_hit) (Sim.total_cycles sim)

let test_false_sharing_visible () =
  (* Two processors writing the same line ping-pong invalidations; writing
     different lines does not. *)
  let run ~same_line =
    let sim = Sim.create ~nprocs:2 () in
    for i = 0 to 1 do
      ignore
        (Sim.spawn sim (fun () ->
             let addr = if same_line then 4096 + (i * 8) else 4096 + (i * 256) in
             for _ = 1 to 100 do
               Sim.write ~addr ~len:8
             done))
    done;
    Sim.run sim;
    Cache.total_invalidations (Sim.cache sim)
  in
  Alcotest.(check bool) "same line invalidates" true (run ~same_line:true > 50);
  Alcotest.(check int) "distinct lines don't" 0 (run ~same_line:false)

let test_now_monotone () =
  let sim = Sim.create ~nprocs:1 () in
  let ok = ref true in
  ignore
    (Sim.spawn sim (fun () ->
         let prev = ref (Sim.now ()) in
         for _ = 1 to 50 do
           Sim.work 10;
           let t = Sim.now () in
           if t < !prev then ok := false;
           prev := t
         done));
  Sim.run sim;
  Alcotest.(check bool) "clock monotone" true !ok

let test_work_zero_is_noop () =
  let sim = Sim.create ~cost:um ~nprocs:1 () in
  ignore (Sim.spawn sim (fun () -> Sim.work 0));
  Sim.run sim;
  Alcotest.(check int) "no cycles" 0 (Sim.total_cycles sim)

let test_fuzzed_schedule_deterministic_per_seed () =
  let run seed =
    let sim = Sim.create ~fuzz_schedule:seed ~nprocs:3 () in
    let lock = Sim.new_lock sim "l" in
    let log = Buffer.create 64 in
    for i = 0 to 2 do
      ignore
        (Sim.spawn sim (fun () ->
             for _ = 1 to 15 do
               Sim.acquire lock;
               Buffer.add_string log (string_of_int i);
               Sim.release lock
             done))
    done;
    Sim.run sim;
    Buffer.contents log
  in
  Alcotest.(check string) "same seed same schedule" (run 7) (run 7);
  (* Different seeds should (overwhelmingly) explore different orders. *)
  Alcotest.(check bool) "different seeds differ" true (run 1 <> run 2 || run 3 <> run 4)

let test_fuzzed_schedule_locks_still_exclude () =
  let sim = Sim.create ~fuzz_schedule:99 ~nprocs:4 () in
  let lock = Sim.new_lock sim "l" in
  let inside = ref 0 and bad = ref false in
  for _ = 1 to 4 do
    ignore
      (Sim.spawn sim (fun () ->
           for _ = 1 to 30 do
             Sim.acquire lock;
             incr inside;
             if !inside > 1 then bad := true;
             Sim.work 5;
             decr inside;
             Sim.release lock
           done))
  done;
  Sim.run sim;
  Alcotest.(check bool) "mutual exclusion preserved" false !bad

let test_page_unmap_via_platform () =
  let sim = Sim.create ~nprocs:1 () in
  let pf = Sim.platform sim in
  let remaining = ref (-1) in
  ignore
    (Sim.spawn sim (fun () ->
         let a = pf.Platform.page_map ~bytes:8192 ~align:8192 ~owner:5 in
         pf.Platform.page_unmap ~addr:a;
         remaining := pf.Platform.mapped_bytes ~owner:5));
  Sim.run sim;
  Alcotest.(check int) "released" 0 !remaining

let test_page_map_via_platform () =
  let sim = Sim.create ~nprocs:1 () in
  let pf = Sim.platform sim in
  let got = ref 0 in
  ignore
    (Sim.spawn sim (fun () ->
         let (_ : int) = pf.Platform.page_map ~bytes:8192 ~align:8192 ~owner:7 in
         got := pf.Platform.mapped_bytes ~owner:7));
  Sim.run sim;
  Alcotest.(check int) "8 KiB accounted" 8192 !got

(* --- two-tier topology and thread lifecycle --- *)

let expect_invalid name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  | exception Invalid_argument _ -> ()

let test_topology_validated () =
  (* Shape must cover the machine exactly. *)
  expect_invalid "sockets*cores <> nprocs" (fun () -> Sim.create ~topology:(2, 3) ~nprocs:4 ());
  expect_invalid "zero sockets" (fun () -> Sim.create ~topology:(0, 4) ~nprocs:4 ());
  (* topology derives node_of; giving both is ambiguous. *)
  expect_invalid "node_of with topology" (fun () ->
      Sim.create ~node_of:(fun p -> p) ~topology:(2, 2) ~nprocs:4 ());
  (* A well-formed topology is queryable after creation. *)
  let sim = Sim.create ~topology:(2, 2) ~nprocs:4 () in
  Alcotest.(check bool) "topology retained" true (Sim.topology sim <> None);
  Alcotest.(check int) "socket-major placement" 1 (Cache.socket_of (Sim.cache sim) 2)

let test_topology_charges_cross_socket () =
  (* Two procs ping-ponging one line: on the 2-socket machine every
     coherence event crosses the socket and pays the surcharge. *)
  let run topo =
    let sim =
      match topo with
      | false -> Sim.create ~nprocs:2 ()
      | true -> Sim.create ~topology:(2, 1) ~nprocs:2 ()
    in
    for _ = 0 to 1 do
      ignore
        (Sim.spawn sim (fun () ->
             for _ = 1 to 50 do
               Sim.write ~addr:4096 ~len:8
             done))
    done;
    Sim.run sim;
    (Sim.total_cycles sim, Cache.total_cross_socket_events (Sim.cache sim))
  in
  let flat_cycles, flat_cross = run false in
  let numa_cycles, numa_cross = run true in
  Alcotest.(check int) "flat machine has no socket crossings" 0 flat_cross;
  Alcotest.(check bool) "socket crossings counted" true (numa_cross > 0);
  Alcotest.(check bool)
    (Printf.sprintf "2-socket (%d) costs more than flat (%d)" numa_cycles flat_cycles)
    true
    (numa_cycles > flat_cycles)

let test_spawn_at_activates_later () =
  let sim = Sim.create ~cost:um ~nprocs:2 () in
  let t0 = ref (-1) and t1 = ref (-1) in
  ignore (Sim.spawn sim (fun () -> Sim.work 100));
  ignore (Sim.spawn_at sim ~at:500 (fun () -> t0 := Sim.now ()));
  (* An idle machine jumps forward to the next pending spawn. *)
  ignore (Sim.spawn_at sim ~at:2000 (fun () -> t1 := Sim.now ()));
  Sim.run sim;
  Alcotest.(check bool) (Printf.sprintf "not before its time (%d)" !t0) true (!t0 >= 500);
  Alcotest.(check bool) (Printf.sprintf "idle jump (%d)" !t1) true (!t1 >= 2000);
  expect_invalid "negative at" (fun () ->
      let sim = Sim.create ~nprocs:1 () in
      ignore (Sim.spawn_at sim ~at:(-1) (fun () -> ())))

let test_peak_live_threads_tracks_churn () =
  (* Overlapping waves: the second wave starts while the first is still
     working, so the peak sees both. *)
  let sim = Sim.create ~cost:um ~nprocs:4 () in
  for _ = 1 to 2 do
    ignore (Sim.spawn sim (fun () -> Sim.work 1000))
  done;
  for _ = 1 to 2 do
    ignore (Sim.spawn_at sim ~at:100 (fun () -> Sim.work 100))
  done;
  Sim.run sim;
  Alcotest.(check int) "overlapping waves peak at 4" 4 (Sim.peak_live_threads sim);
  Alcotest.(check int) "all retired" 0 (Sim.live_threads sim);
  (* Disjoint waves: the first is long gone when the second starts, so
     the peak stays at the wave size — total threads never enter it. *)
  let sim = Sim.create ~cost:um ~nprocs:4 () in
  for _ = 1 to 2 do
    ignore (Sim.spawn sim (fun () -> Sim.work 10))
  done;
  for _ = 1 to 2 do
    ignore (Sim.spawn_at sim ~at:10_000 (fun () -> Sim.work 10))
  done;
  Sim.run sim;
  Alcotest.(check int) "disjoint waves peak at 2" 2 (Sim.peak_live_threads sim)

let () =
  Alcotest.run "sim"
    [
      ( "scheduler",
        [
          Alcotest.test_case "single thread work" `Quick test_single_thread_work;
          Alcotest.test_case "parallel overlap" `Quick test_parallel_work_overlaps;
          Alcotest.test_case "one proc serialises" `Quick test_two_threads_one_proc_serialise;
          Alcotest.test_case "self ids" `Quick test_self_ids;
          Alcotest.test_case "pinned spawn" `Quick test_spawn_pinned;
          Alcotest.test_case "determinism" `Quick test_determinism;
        ] );
      ( "locks",
        [
          Alcotest.test_case "mutual exclusion" `Quick test_lock_mutual_exclusion;
          Alcotest.test_case "contention costs" `Quick test_lock_contention_costs_cycles;
          Alcotest.test_case "bad release" `Quick test_release_by_non_holder_rejected;
          Alcotest.test_case "ticket mutual exclusion" `Quick test_ticket_lock_mutual_exclusion;
          Alcotest.test_case "ticket FIFO" `Quick test_ticket_lock_fifo;
        ] );
      ( "barriers",
        [
          Alcotest.test_case "synchronises" `Quick test_barrier_synchronises;
          Alcotest.test_case "reusable" `Quick test_barrier_reusable;
          Alcotest.test_case "deadlock detected" `Quick test_deadlock_detected;
          Alcotest.test_case "deadlock names holder" `Quick test_deadlock_names_holder;
        ] );
      ( "memory",
        [
          Alcotest.test_case "costs charged" `Quick test_memory_costs_charged;
          Alcotest.test_case "false sharing visible" `Quick test_false_sharing_visible;
          Alcotest.test_case "page map via platform" `Quick test_page_map_via_platform;
          Alcotest.test_case "page unmap via platform" `Quick test_page_unmap_via_platform;
          Alcotest.test_case "now monotone" `Quick test_now_monotone;
          Alcotest.test_case "work zero" `Quick test_work_zero_is_noop;
          Alcotest.test_case "fuzz deterministic per seed" `Quick test_fuzzed_schedule_deterministic_per_seed;
          Alcotest.test_case "fuzz keeps exclusion" `Quick test_fuzzed_schedule_locks_still_exclude;
        ] );
      ( "topology & lifecycle",
        [
          Alcotest.test_case "topology validated" `Quick test_topology_validated;
          Alcotest.test_case "cross-socket charged" `Quick test_topology_charges_cross_socket;
          Alcotest.test_case "spawn_at activates later" `Quick test_spawn_at_activates_later;
          Alcotest.test_case "peak live threads" `Quick test_peak_live_threads_tracks_churn;
        ] );
    ]
