(* Size classes, superblocks, heap cores, the superblock registry and the
   large-object path. *)

let classes = Size_class.create ~max_small:4096 ()

(* --- Size_class --- *)

let test_size_class_monotone () =
  let sizes = Size_class.sizes classes in
  for i = 1 to Array.length sizes - 1 do
    Alcotest.(check bool) "strictly increasing" true (sizes.(i) > sizes.(i - 1))
  done;
  Alcotest.(check int) "first is 8" 8 sizes.(0);
  Alcotest.(check int) "last is max_small" 4096 sizes.(Array.length sizes - 1)

let test_size_class_alignment () =
  Array.iter (fun s -> Alcotest.(check int) "8-aligned" 0 (s mod 8)) (Size_class.sizes classes)

let test_size_class_roundtrip =
  QCheck.Test.make ~name:"class_of_size returns smallest fitting class" ~count:500 (QCheck.int_range 1 4096)
    (fun size ->
      let c = Size_class.class_of_size classes size in
      let bs = Size_class.size_of_class classes c in
      bs >= size && (c = 0 || Size_class.size_of_class classes (c - 1) < size))

let test_size_class_growth_bounded =
  QCheck.Test.make ~name:"internal fragmentation bounded by growth factor" ~count:500 (QCheck.int_range 8 4096)
    (fun size ->
      let c = Size_class.class_of_size classes size in
      let bs = Size_class.size_of_class classes c in
      float_of_int bs <= (1.2 *. float_of_int size) +. 8.0)

let test_size_class_lut_matches_search () =
  (* The O(1) lookup table must agree with the binary-search builder on
     every representable request size. *)
  for size = 1 to 4096 do
    Alcotest.(check int)
      (Printf.sprintf "class_of_size %d" size)
      (Size_class.class_of_size_search classes size)
      (Size_class.class_of_size classes size)
  done

let test_size_class_zero_and_overflow () =
  Alcotest.(check int) "0 treated as 1" 0 (Size_class.class_of_size classes 0);
  Alcotest.check_raises "oversize" (Invalid_argument "Size_class.class_of_size: request exceeds max_small")
    (fun () -> ignore (Size_class.class_of_size classes 4097))

(* --- Superblock --- *)

let mk_sb ?(block_size = 64) () = Superblock.create ~base:(16 * 8192) ~sb_size:8192 ~sclass:3 ~block_size

let test_sb_capacity () =
  let sb = mk_sb () in
  Alcotest.(check int) "capacity" ((8192 - 64) / 64) (Superblock.n_blocks sb);
  Alcotest.(check bool) "empty" true (Superblock.is_empty sb)

let test_sb_alloc_free_roundtrip () =
  let sb = mk_sb () in
  let a = Superblock.alloc_block sb in
  Alcotest.(check bool) "in range" true (Superblock.contains sb a);
  Alcotest.(check bool) "live" true (Superblock.is_block_live sb a);
  Alcotest.(check int) "used" 1 (Superblock.used sb);
  Superblock.free_block sb a;
  Alcotest.(check int) "back to empty" 0 (Superblock.used sb);
  Alcotest.(check bool) "not live" false (Superblock.is_block_live sb a)

let test_sb_fills_exactly () =
  let sb = mk_sb () in
  let n = Superblock.n_blocks sb in
  let addrs = Array.init n (fun _ -> Superblock.alloc_block sb) in
  Alcotest.(check bool) "full" true (Superblock.is_full sb);
  Alcotest.check_raises "overflow" (Failure "Superblock.alloc_block: full") (fun () ->
      ignore (Superblock.alloc_block sb));
  (* All addresses distinct and block-aligned. *)
  let sorted = Array.copy addrs in
  Array.sort compare sorted;
  for i = 1 to n - 1 do
    Alcotest.(check bool) "distinct" true (sorted.(i) > sorted.(i - 1))
  done;
  Array.iter (fun a -> Alcotest.(check int) "aligned" 0 ((a - Superblock.base sb - 64) mod 64)) addrs

let test_sb_double_free_detected () =
  let sb = mk_sb () in
  let a = Superblock.alloc_block sb in
  Superblock.free_block sb a;
  Alcotest.check_raises "double free" (Failure "Superblock.free_block: double free") (fun () ->
      Superblock.free_block sb a)

let test_sb_foreign_addr_rejected () =
  let sb = mk_sb () in
  ignore (Superblock.alloc_block sb);
  Alcotest.check_raises "outside" (Invalid_argument "Superblock: address outside block area") (fun () ->
      Superblock.free_block sb 0);
  let base = Superblock.base sb in
  Alcotest.check_raises "misaligned" (Invalid_argument "Superblock: address not at a block boundary") (fun () ->
      Superblock.free_block sb (base + 64 + 4))

let test_sb_lifo_reuse () =
  let sb = mk_sb () in
  let a = Superblock.alloc_block sb in
  let _b = Superblock.alloc_block sb in
  Superblock.free_block sb a;
  Alcotest.(check int) "LIFO: last freed reused first" a (Superblock.alloc_block sb)

let test_sb_reinit () =
  let sb = mk_sb ~block_size:64 () in
  let a = Superblock.alloc_block sb in
  Alcotest.check_raises "reinit busy" (Failure "Superblock.reinit: superblock not empty") (fun () ->
      Superblock.reinit sb ~sclass:0 ~block_size:8);
  Superblock.free_block sb a;
  Superblock.reinit sb ~sclass:0 ~block_size:8;
  Alcotest.(check int) "new capacity" ((8192 - 64) / 8) (Superblock.n_blocks sb);
  Alcotest.(check int) "new class" 0 (Superblock.sclass sb);
  let a = Superblock.alloc_block sb in
  Alcotest.(check bool) "allocates again" true (Superblock.contains sb a)

let test_sb_reformat () =
  let sb = mk_sb ~block_size:64 () in
  Superblock.set_owner sb 2;
  let a = Superblock.alloc_block sb in
  Alcotest.check_raises "reformat busy" (Failure "Superblock.reformat: superblock not empty") (fun () ->
      Superblock.reformat sb ~sclass:0 ~block_size:8);
  Superblock.free_block sb a;
  Superblock.reformat sb ~sclass:0 ~block_size:8;
  Alcotest.(check int) "new capacity" ((8192 - 64) / 8) (Superblock.n_blocks sb);
  Alcotest.(check int) "new class" 0 (Superblock.sclass sb);
  Alcotest.(check int) "ownership severed" (-1) (Superblock.owner sb);
  Alcotest.(check int) "grouping severed" (-1) (Superblock.group_index sb);
  Alcotest.(check bool) "stale block not live" false (Superblock.is_block_live sb a);
  let b = Superblock.alloc_block sb in
  Alcotest.(check bool) "allocates again" true (Superblock.contains sb b);
  Superblock.check sb

let test_sb_model =
  QCheck.Test.make ~name:"Superblock matches set model under random ops" ~count:200
    QCheck.(list bool)
    (fun ops ->
      let sb = Superblock.create ~base:0 ~sb_size:4096 ~sclass:0 ~block_size:128 in
      let live = ref [] in
      List.iter
        (fun do_alloc ->
          if do_alloc && not (Superblock.is_full sb) then live := Superblock.alloc_block sb :: !live
          else
            match !live with
            | a :: rest ->
              Superblock.free_block sb a;
              live := rest
            | [] -> ())
        ops;
      Superblock.check sb;
      Superblock.used sb = List.length !live
      && List.for_all (fun a -> Superblock.is_block_live sb a) !live
      && List.sort_uniq compare !live = List.sort compare !live)

(* --- Superblock fullness and fullness-group boundary math ---

   Locked in before the global-heap refactor swaps callers: the lock-free
   global index must bin superblocks exactly as Heap_core always has. *)

let test_sb_fullness_math () =
  let sb = mk_sb () in
  let cap = Superblock.n_blocks sb in
  Alcotest.(check (float 1e-9)) "empty" 0.0 (Superblock.fullness sb);
  let addrs = Array.init cap (fun _ -> Superblock.alloc_block sb) in
  Alcotest.(check (float 1e-9)) "full" 1.0 (Superblock.fullness sb);
  Superblock.free_block sb addrs.(0);
  Alcotest.(check (float 1e-9))
    "one below full"
    (float_of_int (cap - 1) /. float_of_int cap)
    (Superblock.fullness sb);
  Alcotest.(check bool) "not full" false (Superblock.is_full sb);
  Alcotest.(check bool) "not empty" false (Superblock.is_empty sb)

let test_bin_index_boundaries () =
  let ngroups = 8 and cap = 127 in
  let bin used = Heap_core.bin_index ~ngroups ~used ~cap in
  Alcotest.(check int) "empty is the empties bin" (Heap_core.empties_bin_index ~ngroups) (bin 0);
  Alcotest.(check int) "empties bin is ngroups+1" (ngroups + 1) (Heap_core.empties_bin_index ~ngroups);
  Alcotest.(check int) "full is the full bin" (Heap_core.full_bin_index ~ngroups) (bin cap);
  Alcotest.(check int) "full bin is ngroups" ngroups (Heap_core.full_bin_index ~ngroups);
  Alcotest.(check int) "one block is bin 0" 0 (bin 1);
  Alcotest.(check int) "one below full is last partial bin" (ngroups - 1) (bin (cap - 1));
  (* Exact group boundaries: used = ceil(k * cap / ngroups) is the first
     occupancy in bin k. *)
  for k = 1 to ngroups - 1 do
    let first_in_k = ((k * cap) + ngroups - 1) / ngroups in
    Alcotest.(check int) (Printf.sprintf "first occupancy of bin %d" k) k (bin first_in_k);
    Alcotest.(check int) (Printf.sprintf "below the bin-%d boundary" k) (k - 1) (bin (first_in_k - 1))
  done

let test_bin_index_single_group () =
  (* ngroups = 1 degenerates to empty / partial / full. *)
  for used = 1 to 9 do
    Alcotest.(check int) "partial" 0 (Heap_core.bin_index ~ngroups:1 ~used ~cap:10)
  done;
  Alcotest.(check int) "empty" 2 (Heap_core.bin_index ~ngroups:1 ~used:0 ~cap:10);
  Alcotest.(check int) "full" 1 (Heap_core.bin_index ~ngroups:1 ~used:10 ~cap:10)

let test_bin_index_model =
  QCheck.Test.make ~name:"bin_index is monotone, in range, and agrees with fullness" ~count:500
    QCheck.(pair (int_range 1 16) (int_range 1 1000))
    (fun (ngroups, cap) ->
      let ok = ref true in
      let prev = ref (-1) in
      for used = 0 to cap do
        let b = Heap_core.bin_index ~ngroups ~used ~cap in
        (* Range: partials in [0, ngroups), full = ngroups, empty = ngroups+1. *)
        (if used = 0 then ok := !ok && b = ngroups + 1
         else if used = cap then ok := !ok && b = ngroups
         else begin
           ok := !ok && b >= 0 && b < ngroups;
           (* Partial bins equal the floor of fullness * ngroups. *)
           ok := !ok && b = used * ngroups / cap;
           (* Monotone over the partial range. *)
           if !prev >= 0 then ok := !ok && b >= !prev;
           prev := b
         end)
      done;
      !ok)

(* Heap_core.bin placement must agree with the pure math on a real
   superblock as occupancy sweeps the whole range. *)
let test_heap_core_binning_matches_bin_index () =
  let heap = Heap_core.create ~id:1 ~classes ~sb_size:8192 () in
  let sb = Superblock.create ~base:8192 ~sb_size:8192 ~sclass:5 ~block_size:512 in
  Heap_core.insert heap sb;
  let ngroups = Heap_core.ngroups heap in
  let cap = Superblock.n_blocks sb in
  let addrs = ref [] in
  for used = 1 to cap do
    (match Heap_core.malloc heap ~sclass:5 ~block_size:512 with
     | Some (a, _) -> addrs := a :: !addrs
     | None -> Alcotest.fail "heap ran dry");
    Alcotest.(check int)
      (Printf.sprintf "group at used=%d" used)
      (Heap_core.bin_index ~ngroups ~used ~cap)
      (Superblock.group_index sb)
  done;
  List.iter
    (fun a ->
      Heap_core.free heap sb a;
      Alcotest.(check int)
        (Printf.sprintf "group at used=%d (freeing)" (Superblock.used sb))
        (Heap_core.bin_index ~ngroups ~used:(Superblock.used sb) ~cap)
        (Superblock.group_index sb))
    !addrs;
  Heap_core.check heap

(* --- Heap_core --- *)

let mk_heap () = Heap_core.create ~id:1 ~classes ~sb_size:8192 ()

let new_sb_for heap sclass serial =
  let block_size = Size_class.size_of_class classes sclass in
  let sb = Superblock.create ~base:(serial * 8192) ~sb_size:8192 ~sclass ~block_size in
  Heap_core.insert heap sb;
  sb

let test_heap_malloc_from_inserted () =
  let heap = mk_heap () in
  let _sb = new_sb_for heap 0 1 in
  match Heap_core.malloc heap ~sclass:0 ~block_size:8 with
  | Some (addr, sb) ->
    Alcotest.(check bool) "addr in sb" true (Superblock.contains sb addr);
    Alcotest.(check int) "u" 8 (Heap_core.u heap);
    Alcotest.(check int) "a" 8192 (Heap_core.a heap);
    Heap_core.check heap
  | None -> Alcotest.fail "expected allocation"

let test_heap_malloc_empty_heap () =
  let heap = mk_heap () in
  Alcotest.(check bool) "nothing to allocate" true (Heap_core.malloc heap ~sclass:0 ~block_size:8 = None)

let test_heap_prefers_fuller_superblock () =
  let heap = mk_heap () in
  let sb1 = new_sb_for heap 5 1 in
  let sb2 = new_sb_for heap 5 2 in
  (* Fill sb1 to ~60%, sb2 to ~20%. *)
  let fill sb frac =
    let n = int_of_float (frac *. float_of_int (Superblock.n_blocks sb)) in
    for _ = 1 to n do
      ignore (Superblock.alloc_block sb)
    done
  in
  (* Re-insert after manual filling so groups are correct. *)
  Heap_core.remove heap sb1;
  Heap_core.remove heap sb2;
  fill sb1 0.6;
  fill sb2 0.2;
  Heap_core.insert heap sb1;
  Heap_core.insert heap sb2;
  (match Heap_core.malloc heap ~sclass:5 ~block_size:(Size_class.size_of_class classes 5) with
   | Some (_, sb) -> Alcotest.(check bool) "picked the fuller one" true (sb == sb1)
   | None -> Alcotest.fail "expected allocation");
  Heap_core.check heap

let test_heap_recycles_empty_for_other_class () =
  let heap = mk_heap () in
  let _sb = new_sb_for heap 0 1 in
  (* The empty superblock of class 0 must serve a class-7 request. *)
  match Heap_core.malloc heap ~sclass:7 ~block_size:(Size_class.size_of_class classes 7) with
  | Some (_, sb) ->
    Alcotest.(check int) "reinitialised" 7 (Superblock.sclass sb);
    Heap_core.check heap
  | None -> Alcotest.fail "expected recycling"

let test_heap_pick_victim_prefers_empty () =
  let heap = mk_heap () in
  let sb_busy = new_sb_for heap 0 1 in
  let _sb_empty = new_sb_for heap 0 2 in
  (match Heap_core.malloc heap ~sclass:0 ~block_size:8 with
   | Some _ -> ()
   | None -> Alcotest.fail "alloc");
  ignore sb_busy;
  (* One superblock now has a live block, the other is still empty. A
     victim capped at 50% fullness must be the empty one (empties first). *)
  match Heap_core.pick_victim heap ~max_fullness:0.5 with
  | Some victim ->
    Alcotest.(check bool) "victim is the empty superblock" true (Superblock.is_empty victim);
    Alcotest.(check int) "a dropped" 8192 (Heap_core.a heap);
    Heap_core.check heap
  | None -> Alcotest.fail "expected a victim"

let test_heap_pick_victim_respects_fullness () =
  let heap = mk_heap () in
  let sb = new_sb_for heap 5 1 in
  Heap_core.remove heap sb;
  let n = Superblock.n_blocks sb in
  for _ = 1 to n - 1 do
    ignore (Superblock.alloc_block sb)
  done;
  Heap_core.insert heap sb;
  Alcotest.(check bool) "no victim below 50% emptiness" true (Heap_core.pick_victim heap ~max_fullness:0.5 = None)

let test_heap_take_for_class () =
  let heap = mk_heap () in
  let _sb0 = new_sb_for heap 0 1 in
  (match Heap_core.malloc heap ~sclass:0 ~block_size:8 with
   | Some _ -> ()
   | None -> Alcotest.fail "alloc");
  (match Heap_core.take_for_class heap ~sclass:0 with
   | Some sb ->
     Alcotest.(check int) "partial of the class" 0 (Superblock.sclass sb);
     Alcotest.(check int) "heap emptied" 0 (Heap_core.a heap)
   | None -> Alcotest.fail "expected superblock");
  Alcotest.(check bool) "nothing left" true (Heap_core.take_for_class heap ~sclass:0 = None)

let test_heap_free_repositions () =
  let heap = mk_heap () in
  let _sb = new_sb_for heap 0 1 in
  let live = ref [] in
  for _ = 1 to 100 do
    match Heap_core.malloc heap ~sclass:0 ~block_size:8 with
    | Some (a, sb) -> live := (a, sb) :: !live
    | None -> Alcotest.fail "alloc"
  done;
  Heap_core.check heap;
  List.iter (fun (a, sb) -> Heap_core.free heap sb a) !live;
  Heap_core.check heap;
  Alcotest.(check int) "all free" 0 (Heap_core.u heap);
  Alcotest.(check int) "superblock back in empties" 1 (Heap_core.empty_superblock_count heap)

let test_heap_accounting_model =
  QCheck.Test.make ~name:"Heap_core u/a accounting matches model" ~count:100
    QCheck.(list (pair (int_range 0 8) bool))
    (fun ops ->
      let heap = mk_heap () in
      let serial = ref 1 in
      let live = ref [] in
      List.iter
        (fun (sclass, do_alloc) ->
          let block_size = Size_class.size_of_class classes sclass in
          if do_alloc then begin
            (match Heap_core.malloc heap ~sclass ~block_size with
             | Some (a, sb) -> live := (a, sb, block_size) :: !live
             | None ->
               incr serial;
               ignore (new_sb_for heap sclass !serial);
               (match Heap_core.malloc heap ~sclass ~block_size with
                | Some (a, sb) -> live := (a, sb, block_size) :: !live
                | None -> failwith "alloc after insert"))
          end
          else
            match !live with
            | (a, sb, _) :: rest ->
              Heap_core.free heap sb a;
              live := rest
            | [] -> ())
        ops;
      Heap_core.check heap;
      Heap_core.u heap = List.fold_left (fun acc (_, _, bs) -> acc + bs) 0 !live)

let test_heap_pick_victim_protect_last () =
  let heap = mk_heap () in
  let _sb = new_sb_for heap 3 1 in
  (match Heap_core.malloc heap ~sclass:3 ~block_size:(Size_class.size_of_class classes 3) with
   | Some _ -> ()
   | None -> Alcotest.fail "alloc");
  (* One partial superblock, sole member of its class: protected. *)
  Alcotest.(check bool) "protected last sb not picked" true
    (Heap_core.pick_victim ~protect_last:true heap ~max_fullness:0.9 = None);
  Alcotest.(check bool) "has_victim agrees" false (Heap_core.has_victim heap ~max_fullness:0.9 ~protect_last:true);
  (* Without protection it is eligible. *)
  (match Heap_core.pick_victim heap ~max_fullness:0.9 with
   | Some _ -> ()
   | None -> Alcotest.fail "unprotected pick should succeed");
  Heap_core.check heap

let test_heap_pick_victim_protect_last_allows_empties () =
  let heap = mk_heap () in
  let _sb = new_sb_for heap 3 1 in
  (* Completely empty superblock: always transferable, even when last. *)
  match Heap_core.pick_victim ~protect_last:true heap ~max_fullness:0.0 with
  | Some sb -> Alcotest.(check bool) "empty picked" true (Superblock.is_empty sb)
  | None -> Alcotest.fail "empty superblock must be transferable"

let test_heap_pick_victim_second_sb_eligible () =
  let heap = mk_heap () in
  let _a = new_sb_for heap 3 1 in
  let _b = new_sb_for heap 3 2 in
  (match Heap_core.malloc heap ~sclass:3 ~block_size:(Size_class.size_of_class classes 3) with
   | Some _ -> ()
   | None -> Alcotest.fail "alloc");
  (match Heap_core.malloc heap ~sclass:3 ~block_size:(Size_class.size_of_class classes 3) with
   | Some _ -> ()
   | None -> Alcotest.fail "alloc");
  (* Both blocks land in one sb (fullest-first); the other stays empty and
     is picked. With two sbs in the class, protection does not apply. *)
  match Heap_core.pick_victim ~protect_last:true heap ~max_fullness:0.9 with
  | Some _ -> Heap_core.check heap
  | None -> Alcotest.fail "victim expected with two superblocks in class"

let test_heap_usable_accounting () =
  let heap = mk_heap () in
  let sb = new_sb_for heap 0 1 in
  Alcotest.(check int) "usable = blocks * size" (Superblock.n_blocks sb * 8) (Heap_core.usable_a heap);
  Heap_core.remove heap sb;
  Alcotest.(check int) "usable zero after remove" 0 (Heap_core.usable_a heap)

(* --- Locked_large --- *)

let test_locked_large_threshold () =
  let pf = Platform.host () in
  let stats = Alloc_stats.create () in
  let ll = Locked_large.create pf ~owner:11 ~stats ~threshold:4096 in
  Alcotest.(check bool) "4096 is small" false (Locked_large.is_large ll 4096);
  Alcotest.(check bool) "4097 is large" true (Locked_large.is_large ll 4097);
  let p = Locked_large.malloc ll 5000 in
  Alcotest.(check (option int)) "usable" (Some 5000) (Locked_large.usable_size ll ~addr:p);
  Alcotest.(check bool) "free hit" true (Locked_large.try_free ll ~addr:p);
  Alcotest.(check bool) "second free miss" false (Locked_large.try_free ll ~addr:p);
  Alcotest.(check int) "no live bytes" 0 (Locked_large.live_bytes ll)

(* --- Sb_registry --- *)

let test_registry_lookup () =
  let reg = Sb_registry.create (Platform.host ()) ~sb_size:8192 in
  let sb = Superblock.create ~base:(8192 * 5) ~sb_size:8192 ~sclass:0 ~block_size:8 in
  Sb_registry.register reg sb;
  (match Sb_registry.lookup reg ~addr:((8192 * 5) + 4000) with
   | Some found -> Alcotest.(check bool) "same superblock" true (found == sb)
   | None -> Alcotest.fail "expected hit");
  Alcotest.(check bool) "miss elsewhere" true (Sb_registry.lookup reg ~addr:(8192 * 7) = None);
  Sb_registry.unregister reg sb;
  Alcotest.(check bool) "gone" true (Sb_registry.lookup reg ~addr:(8192 * 5) = None)

let test_registry_duplicate_rejected () =
  let reg = Sb_registry.create (Platform.host ()) ~sb_size:8192 in
  let sb = Superblock.create ~base:8192 ~sb_size:8192 ~sclass:0 ~block_size:8 in
  Sb_registry.register reg sb;
  Alcotest.check_raises "duplicate" (Invalid_argument "Sb_registry.register: slot already occupied") (fun () ->
      Sb_registry.register reg sb)

(* --- Large objects --- *)

let test_large_roundtrip () =
  let pf = Platform.host () in
  let stats = Alloc_stats.create () in
  let large = Large_alloc.create pf ~owner:9 ~stats ~shard:(Alloc_stats.shard stats 0) in
  let a = Large_alloc.malloc large 10_000 in
  Alcotest.(check (option int)) "usable" (Some 10_000) (Large_alloc.usable_size large ~addr:a);
  Alcotest.(check int) "one live" 1 (Large_alloc.live_count large);
  let s = Alloc_stats.snapshot stats in
  Alcotest.(check int) "held page-rounded" 12_288 s.Alloc_stats.held_bytes;
  Alcotest.(check bool) "free" true (Large_alloc.free large ~addr:a);
  Alcotest.(check bool) "double free is miss" false (Large_alloc.free large ~addr:a);
  let s = Alloc_stats.snapshot stats in
  Alcotest.(check int) "held back to zero" 0 s.Alloc_stats.held_bytes

let () =
  Alcotest.run "alloc-substrate"
    [
      ( "size-class",
        [
          Alcotest.test_case "monotone" `Quick test_size_class_monotone;
          Alcotest.test_case "alignment" `Quick test_size_class_alignment;
          Alcotest.test_case "zero/overflow" `Quick test_size_class_zero_and_overflow;
          Alcotest.test_case "LUT matches binary search" `Quick test_size_class_lut_matches_search;
          QCheck_alcotest.to_alcotest test_size_class_roundtrip;
          QCheck_alcotest.to_alcotest test_size_class_growth_bounded;
        ] );
      ( "superblock",
        [
          Alcotest.test_case "capacity" `Quick test_sb_capacity;
          Alcotest.test_case "roundtrip" `Quick test_sb_alloc_free_roundtrip;
          Alcotest.test_case "fills exactly" `Quick test_sb_fills_exactly;
          Alcotest.test_case "double free" `Quick test_sb_double_free_detected;
          Alcotest.test_case "foreign addr" `Quick test_sb_foreign_addr_rejected;
          Alcotest.test_case "LIFO reuse" `Quick test_sb_lifo_reuse;
          Alcotest.test_case "reinit" `Quick test_sb_reinit;
          Alcotest.test_case "reformat" `Quick test_sb_reformat;
          Alcotest.test_case "fullness math" `Quick test_sb_fullness_math;
          QCheck_alcotest.to_alcotest test_sb_model;
        ] );
      ( "fullness-bins",
        [
          Alcotest.test_case "boundaries" `Quick test_bin_index_boundaries;
          Alcotest.test_case "single group" `Quick test_bin_index_single_group;
          Alcotest.test_case "heap-core agreement" `Quick test_heap_core_binning_matches_bin_index;
          QCheck_alcotest.to_alcotest test_bin_index_model;
        ] );
      ( "heap-core",
        [
          Alcotest.test_case "malloc from inserted" `Quick test_heap_malloc_from_inserted;
          Alcotest.test_case "empty heap" `Quick test_heap_malloc_empty_heap;
          Alcotest.test_case "prefers fuller" `Quick test_heap_prefers_fuller_superblock;
          Alcotest.test_case "recycles across classes" `Quick test_heap_recycles_empty_for_other_class;
          Alcotest.test_case "victim prefers empty" `Quick test_heap_pick_victim_prefers_empty;
          Alcotest.test_case "victim fullness cap" `Quick test_heap_pick_victim_respects_fullness;
          Alcotest.test_case "take for class" `Quick test_heap_take_for_class;
          Alcotest.test_case "free repositions" `Quick test_heap_free_repositions;
          Alcotest.test_case "protect-last" `Quick test_heap_pick_victim_protect_last;
          Alcotest.test_case "protect-last empties" `Quick test_heap_pick_victim_protect_last_allows_empties;
          Alcotest.test_case "second sb eligible" `Quick test_heap_pick_victim_second_sb_eligible;
          Alcotest.test_case "usable accounting" `Quick test_heap_usable_accounting;
          QCheck_alcotest.to_alcotest test_heap_accounting_model;
        ] );
      ( "registry",
        [
          Alcotest.test_case "lookup" `Quick test_registry_lookup;
          Alcotest.test_case "duplicate" `Quick test_registry_duplicate_rejected;
        ] );
      ( "large",
        [
          Alcotest.test_case "roundtrip" `Quick test_large_roundtrip;
          Alcotest.test_case "locked threshold" `Quick test_locked_large_threshold;
        ] );
    ]
