(* calloc / realloc / aligned_alloc / the batch-and-flush extensions over
   every registered allocator, including the front-end hoard. *)

let factories = Allocators.all ()

let with_alloc f k =
  let pf = Platform.host () in
  let a = f.Alloc_intf.instantiate pf in
  k pf a

let test_calloc_basic (f : Alloc_intf.factory) () =
  with_alloc f (fun pf a ->
      let p = Alloc_api.calloc pf a ~count:16 ~size:12 in
      Alcotest.(check bool) "usable >= 192" true (a.Alloc_intf.usable_size p >= 192);
      a.Alloc_intf.free p;
      a.Alloc_intf.check ())

let test_calloc_rejects_bad_args (f : Alloc_intf.factory) () =
  with_alloc f (fun pf a ->
      Alcotest.check_raises "zero count" (Invalid_argument "Alloc_api.calloc: count and size must be positive")
        (fun () -> ignore (Alloc_api.calloc pf a ~count:0 ~size:8));
      Alcotest.check_raises "overflow" (Invalid_argument "Alloc_api.calloc: size overflow") (fun () ->
          ignore (Alloc_api.calloc pf a ~count:max_int ~size:8)))

let test_realloc_in_place (f : Alloc_intf.factory) () =
  with_alloc f (fun pf a ->
      (* Growing within the block's usable size must not move it. *)
      let p = a.Alloc_intf.malloc 100 in
      let usable = a.Alloc_intf.usable_size p in
      let q = Alloc_api.realloc pf a ~addr:p ~size:usable in
      Alcotest.(check int) "in place" p q;
      a.Alloc_intf.free q;
      a.Alloc_intf.check ())

let test_realloc_grows (f : Alloc_intf.factory) () =
  with_alloc f (fun pf a ->
      let p = a.Alloc_intf.malloc 64 in
      let q = Alloc_api.realloc pf a ~addr:p ~size:50_000 in
      Alcotest.(check bool) "moved" true (q <> p);
      Alcotest.(check bool) "big enough" true (a.Alloc_intf.usable_size q >= 50_000);
      (* A front end may still hold the freed old block; flush is a no-op
         for everyone else. *)
      a.Alloc_intf.flush ();
      Alcotest.(check int) "old block freed" (a.Alloc_intf.usable_size q)
        (a.Alloc_intf.stats ()).Alloc_stats.live_bytes;
      a.Alloc_intf.free q;
      a.Alloc_intf.check ())

let test_realloc_chain (f : Alloc_intf.factory) () =
  with_alloc f (fun pf a ->
      (* Repeated doubling, as a growing dynamic array would do. *)
      let p = ref (a.Alloc_intf.malloc 8) in
      let size = ref 8 in
      for _ = 1 to 12 do
        size := !size * 2;
        p := Alloc_api.realloc pf a ~addr:!p ~size:!size
      done;
      Alcotest.(check bool) "final size" true (a.Alloc_intf.usable_size !p >= 32768);
      a.Alloc_intf.free !p;
      a.Alloc_intf.flush ();
      Alcotest.(check int) "clean" 0 (a.Alloc_intf.stats ()).Alloc_stats.live_bytes;
      a.Alloc_intf.check ())

let test_aligned_small (f : Alloc_intf.factory) () =
  with_alloc f (fun pf a ->
      let p = Alloc_api.aligned_alloc pf a ~align:8 ~size:24 in
      Alcotest.(check int) "8-aligned" 0 (p mod 8);
      a.Alloc_intf.free p)

let test_aligned_large (f : Alloc_intf.factory) () =
  with_alloc f (fun pf a ->
      List.iter
        (fun align ->
          let p = Alloc_api.aligned_alloc pf a ~align ~size:100 in
          Alcotest.(check int) (Printf.sprintf "%d-aligned" align) 0 (p mod align);
          a.Alloc_intf.free p)
        [ 16; 64; 256; 4096 ];
      a.Alloc_intf.check ())

let test_aligned_rejects (f : Alloc_intf.factory) () =
  with_alloc f (fun pf a ->
      Alcotest.check_raises "non power of two"
        (Invalid_argument "Alloc_api.aligned_alloc: align must be a positive power of two") (fun () ->
          ignore (Alloc_api.aligned_alloc pf a ~align:24 ~size:8));
      Alcotest.check_raises "beyond page"
        (Invalid_argument "Alloc_api.aligned_alloc: alignment beyond the page size is not supported") (fun () ->
          ignore (Alloc_api.aligned_alloc pf a ~align:65536 ~size:8)))

let test_members_delegate (f : Alloc_intf.factory) () =
  (* The record members are the real interface; the free functions are
     compatibility wrappers. Drive the members directly. *)
  with_alloc f (fun _pf a ->
      let p = a.Alloc_intf.calloc ~count:8 ~size:16 in
      Alcotest.(check bool) "calloc member" true (a.Alloc_intf.usable_size p >= 128);
      let q = a.Alloc_intf.realloc ~addr:p ~size:1024 in
      Alcotest.(check bool) "realloc member" true (a.Alloc_intf.usable_size q >= 1024);
      let r = a.Alloc_intf.aligned_alloc ~align:64 ~size:100 in
      Alcotest.(check int) "aligned member" 0 (r mod 64);
      a.Alloc_intf.free q;
      a.Alloc_intf.free r;
      a.Alloc_intf.flush ();
      a.Alloc_intf.check ())

let test_batch_roundtrip (f : Alloc_intf.factory) () =
  with_alloc f (fun _pf a ->
      let ps = a.Alloc_intf.malloc_batch 32 64 in
      Alcotest.(check int) "batch length" 32 (Array.length ps);
      Array.iter
        (fun p -> Alcotest.(check bool) "batch usable" true (a.Alloc_intf.usable_size p >= 64))
        ps;
      let sorted = Array.copy ps in
      Array.sort compare sorted;
      for i = 1 to Array.length sorted - 1 do
        Alcotest.(check bool) "batch distinct" true (sorted.(i - 1) <> sorted.(i))
      done;
      Alcotest.(check int) "zero batch" 0 (Array.length (a.Alloc_intf.malloc_batch 0 64));
      a.Alloc_intf.free_batch ps;
      a.Alloc_intf.flush ();
      a.Alloc_intf.check ();
      Alcotest.(check int) "clean" 0 (a.Alloc_intf.stats ()).Alloc_stats.live_bytes)

let test_hoard_realloc_stays_in_block () =
  (* Hoard's realloc override: any size that fits the block's class stays
     in place, including shrinking — the generic default only guarantees
     growth within usable size. *)
  let pf = Platform.host () in
  let h = Hoard.create pf in
  let a = Hoard.allocator h in
  let p = a.Alloc_intf.malloc 100 in
  let usable = a.Alloc_intf.usable_size p in
  Alcotest.(check int) "grow to usable in place" p (a.Alloc_intf.realloc ~addr:p ~size:usable);
  Alcotest.(check int) "shrink in place" p (a.Alloc_intf.realloc ~addr:p ~size:10);
  let q = a.Alloc_intf.realloc ~addr:p ~size:(usable + 1) in
  Alcotest.(check bool) "moved past usable" true (q <> p);
  a.Alloc_intf.free q;
  a.Alloc_intf.check ();
  Alcotest.(check int) "clean" 0 (a.Alloc_intf.stats ()).Alloc_stats.live_bytes

let suite f =
  ( f.Alloc_intf.label,
    [
      Alcotest.test_case "calloc" `Quick (test_calloc_basic f);
      Alcotest.test_case "calloc bad args" `Quick (test_calloc_rejects_bad_args f);
      Alcotest.test_case "realloc in place" `Quick (test_realloc_in_place f);
      Alcotest.test_case "realloc grows" `Quick (test_realloc_grows f);
      Alcotest.test_case "realloc chain" `Quick (test_realloc_chain f);
      Alcotest.test_case "aligned small" `Quick (test_aligned_small f);
      Alcotest.test_case "aligned large" `Quick (test_aligned_large f);
      Alcotest.test_case "aligned rejects" `Quick (test_aligned_rejects f);
      Alcotest.test_case "record members" `Quick (test_members_delegate f);
      Alcotest.test_case "batch roundtrip" `Quick (test_batch_roundtrip f);
    ] )

let () =
  Alcotest.run "alloc-api"
    (List.map suite factories
    @ [
        ( "overrides",
          [ Alcotest.test_case "hoard realloc in block" `Quick test_hoard_realloc_stays_in_block ] );
      ])
