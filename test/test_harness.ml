(* The experiment harness: runner metrics and the experiment registry,
   including shape assertions on the headline results (who wins, roughly
   by how much). These run at Quick scale. *)

let hoard = Hoard.factory ()

let serial = Serial_alloc.factory ()

let tt = Threadtest.make ~params:{ Threadtest.default_params with Threadtest.iterations = 3; objects = 1600 } ()

let test_runner_basic () =
  let r = Runner.run (Runner.spec tt hoard ~nprocs:2) in
  Alcotest.(check string) "workload name" "threadtest" r.Runner.r_workload;
  Alcotest.(check string) "allocator name" "hoard" r.Runner.r_allocator;
  Alcotest.(check int) "nthreads defaults to nprocs" 2 r.Runner.r_nthreads;
  Alcotest.(check bool) "cycles positive" true (r.Runner.r_cycles > 0);
  Alcotest.(check bool) "ops positive" true (r.Runner.r_ops > 0)

let test_runner_deterministic () =
  let a = Runner.run (Runner.spec tt hoard ~nprocs:4) in
  let b = Runner.run (Runner.spec tt hoard ~nprocs:4) in
  Alcotest.(check int) "same cycles" a.Runner.r_cycles b.Runner.r_cycles;
  Alcotest.(check int) "same invalidations" a.Runner.r_invalidations b.Runner.r_invalidations

let test_speedup_metric () =
  let base = Runner.run (Runner.spec tt hoard ~nprocs:1) in
  Alcotest.(check (float 1e-9)) "self speedup = 1" 1.0 (Runner.speedup ~base base)

let test_headline_hoard_scales_threadtest () =
  let base = Runner.run (Runner.spec tt hoard ~nprocs:1) in
  let at8 = Runner.run (Runner.spec tt hoard ~nprocs:8) in
  let sp = Runner.speedup ~base at8 in
  Alcotest.(check bool) (Printf.sprintf "hoard speedup %.2f >= 6 at 8P" sp) true (sp >= 6.0)

let test_headline_serial_collapses_threadtest () =
  let base = Runner.run (Runner.spec tt serial ~nprocs:1) in
  let at8 = Runner.run (Runner.spec tt serial ~nprocs:8) in
  let sp = Runner.speedup ~base at8 in
  Alcotest.(check bool) (Printf.sprintf "serial speedup %.2f < 1 at 8P" sp) true (sp < 1.0)

let test_headline_uniproc_overhead_small () =
  let s = Runner.run (Runner.spec tt serial ~nprocs:1) in
  let h = Runner.run (Runner.spec tt hoard ~nprocs:1) in
  let ratio = float_of_int h.Runner.r_cycles /. float_of_int s.Runner.r_cycles in
  Alcotest.(check bool) (Printf.sprintf "hoard/serial = %.2f within 25%%" ratio) true (ratio < 1.25)

let test_headline_hoard_fragmentation_low () =
  let r = Runner.run (Runner.spec tt hoard ~nprocs:4) in
  let frag = Runner.fragmentation r in
  Alcotest.(check bool) (Printf.sprintf "threadtest frag %.2f <= 3" frag) true (frag <= 3.0)

let test_experiment_registry_complete () =
  let ids = Experiments.ids () in
  List.iter
    (fun required ->
      Alcotest.(check bool) (required ^ " registered") true (List.mem required ids))
    [
      "table1"; "table2"; "table3"; "table4"; "table5";
      "fig_threadtest"; "fig_shbench"; "fig_larson"; "fig_active_false"; "fig_passive_false";
      "fig_bem"; "fig_barnes"; "exp_blowup"; "exp_falseshare"; "exp_oversub"; "exp_latency";
      "exp_apps"; "exp_timeline"; "exp_costmodel"; "exp_numa"; "exp_contention";
      "abl_f"; "abl_k"; "abl_sbsize"; "abl_lock";
      "abl_nheaps";
    ]

let test_find () =
  Alcotest.(check bool) "finds" true (Experiments.find "table4" <> None);
  Alcotest.(check bool) "rejects unknown" true (Experiments.find "nope" = None)

let test_every_experiment_produces_tables () =
  (* Run each experiment at Quick scale with a tiny processor sweep; every
     one must yield at least one non-empty table. Heavy but the definitive
     smoke test that every table/figure can regenerate. *)
  List.iter
    (fun e ->
      let out = e.Experiments.run Experiments.Quick ~procs:(Some [ 1; 2 ]) in
      Alcotest.(check bool) (e.Experiments.id ^ " yields tables") true (List.length out.Experiments.tables > 0);
      List.iter
        (fun tbl ->
          let rendered = Table.render tbl in
          Alcotest.(check bool) (e.Experiments.id ^ " table non-trivial") true (String.length rendered > 40))
        out.Experiments.tables)
    (Experiments.all ())

let test_figures_carry_plots () =
  match Experiments.find "fig_threadtest" with
  | None -> Alcotest.fail "fig_threadtest missing"
  | Some e ->
    let out = e.Experiments.run Experiments.Quick ~procs:(Some [ 1; 2 ]) in
    (match out.Experiments.plot with
     | Some plot -> Alcotest.(check bool) "plot non-trivial" true (String.length plot > 200)
     | None -> Alcotest.fail "speedup figures must render a plot")

let test_workload_catalog () =
  List.iter
    (fun name ->
      match Experiments.workload name Experiments.Quick with
      | Some w -> Alcotest.(check bool) (name ^ " constructs") true (String.length w.Workload_intf.w_name > 0)
      | None -> Alcotest.fail (name ^ " missing from catalog"))
    Experiments.workload_names;
  Alcotest.(check bool) "unknown rejected" true (Experiments.workload "nope" Experiments.Quick = None)

let test_allocator_catalog () =
  List.iter
    (fun label ->
      Alcotest.(check bool) (label ^ " found") true (Experiments.allocator label <> None))
    [ "serial"; "concurrent-single"; "private-ownership"; "pure-private"; "private-threshold"; "hoard" ]

let test_latency_probe () =
  let sim = Sim.create ~nprocs:2 () in
  let pf = Sim.platform sim in
  let probe, a = Latency_probe.wrap ((Hoard.factory ()).Alloc_intf.instantiate pf) in
  for _ = 0 to 1 do
    ignore
      (Sim.spawn sim (fun () ->
           for _ = 1 to 50 do
             a.Alloc_intf.free (a.Alloc_intf.malloc 64)
           done))
  done;
  Sim.run sim;
  let h = Latency_probe.malloc_latencies probe in
  Alcotest.(check int) "100 mallocs sampled" 100 (Histogram.count h);
  Alcotest.(check bool) "latencies positive" true (Histogram.mean h > 0.0);
  Alcotest.(check int) "frees sampled too" 100 (Histogram.count (Latency_probe.free_latencies probe))

let test_timeline_records () =
  let sim = Sim.create ~nprocs:1 () in
  let pf = Sim.platform sim in
  let tl, a = Timeline.wrap ~every:10 ((Hoard.factory ()).Alloc_intf.instantiate pf) in
  ignore
    (Sim.spawn sim (fun () ->
         let ps = List.init 100 (fun _ -> a.Alloc_intf.malloc 64) in
         List.iter a.Alloc_intf.free ps));
  Sim.run sim;
  let samples = Timeline.samples tl in
  Alcotest.(check int) "one sample per 10 ops" 20 (List.length samples);
  let rec monotone = function
    | a :: (b :: _ as rest) -> a.Timeline.at <= b.Timeline.at && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "timestamps monotone" true (monotone samples);
  Alcotest.(check bool) "peak held positive" true (Timeline.peak_held tl > 0)

let test_error_in_simulated_thread_surfaces () =
  (* A double free inside the simulation must abort the run with the
     allocator's own error, not corrupt state silently. *)
  let sim = Sim.create ~nprocs:1 () in
  let a = (Hoard.factory ()).Alloc_intf.instantiate (Sim.platform sim) in
  ignore
    (Sim.spawn sim (fun () ->
         let p = a.Alloc_intf.malloc 64 in
         a.Alloc_intf.free p;
         a.Alloc_intf.free p));
  Alcotest.check_raises "double free surfaces" (Failure "Superblock.free_block: double free") (fun () ->
      Sim.run sim)

let test_csv_export () =
  match Experiments.find "table2" with
  | None -> Alcotest.fail "table2 missing"
  | Some e ->
    let out = e.Experiments.run Experiments.Quick ~procs:None in
    List.iter
      (fun tbl ->
        let csv = Table.to_csv tbl in
        Alcotest.(check bool) "csv has header and rows" true (List.length (String.split_on_char '\n' csv) > 2))
      out.Experiments.tables

let () =
  Alcotest.run "harness"
    [
      ( "runner",
        [
          Alcotest.test_case "basic" `Quick test_runner_basic;
          Alcotest.test_case "deterministic" `Quick test_runner_deterministic;
          Alcotest.test_case "speedup metric" `Quick test_speedup_metric;
        ] );
      ( "headline-shapes",
        [
          Alcotest.test_case "hoard scales" `Quick test_headline_hoard_scales_threadtest;
          Alcotest.test_case "serial collapses" `Quick test_headline_serial_collapses_threadtest;
          Alcotest.test_case "uniproc overhead" `Quick test_headline_uniproc_overhead_small;
          Alcotest.test_case "fragmentation low" `Quick test_headline_hoard_fragmentation_low;
        ] );
      ( "registry",
        [
          Alcotest.test_case "complete" `Quick test_experiment_registry_complete;
          Alcotest.test_case "find" `Quick test_find;
          Alcotest.test_case "csv export" `Quick test_csv_export;
          Alcotest.test_case "figures carry plots" `Quick test_figures_carry_plots;
          Alcotest.test_case "workload catalog" `Quick test_workload_catalog;
          Alcotest.test_case "allocator catalog" `Quick test_allocator_catalog;
          Alcotest.test_case "latency probe" `Quick test_latency_probe;
          Alcotest.test_case "timeline records" `Quick test_timeline_records;
          Alcotest.test_case "errors surface" `Quick test_error_in_simulated_thread_surfaces;
          Alcotest.test_case "all experiments regenerate" `Slow test_every_experiment_produces_tables;
        ] );
    ]
