(* The experiment harness: runner metrics and the experiment registry,
   including shape assertions on the headline results (who wins, roughly
   by how much). These run at Quick scale. *)

let hoard = Hoard.factory ()

let serial = Serial_alloc.factory ()

let tt = Threadtest.make ~params:{ Threadtest.default_params with Threadtest.iterations = 3; objects = 1600 } ()

let test_runner_basic () =
  let r = Runner.run (Runner.spec tt hoard ~nprocs:2) in
  Alcotest.(check string) "workload name" "threadtest" r.Runner.r_workload;
  Alcotest.(check string) "allocator name" "hoard" r.Runner.r_allocator;
  Alcotest.(check int) "nthreads defaults to nprocs" 2 r.Runner.r_nthreads;
  Alcotest.(check bool) "cycles positive" true (r.Runner.r_cycles > 0);
  Alcotest.(check bool) "ops positive" true (r.Runner.r_ops > 0)

let test_runner_deterministic () =
  let a = Runner.run (Runner.spec tt hoard ~nprocs:4) in
  let b = Runner.run (Runner.spec tt hoard ~nprocs:4) in
  Alcotest.(check int) "same cycles" a.Runner.r_cycles b.Runner.r_cycles;
  Alcotest.(check int) "same invalidations" a.Runner.r_invalidations b.Runner.r_invalidations

let test_speedup_metric () =
  let base = Runner.run (Runner.spec tt hoard ~nprocs:1) in
  Alcotest.(check (float 1e-9)) "self speedup = 1" 1.0 (Runner.speedup ~base base)

let test_headline_hoard_scales_threadtest () =
  let base = Runner.run (Runner.spec tt hoard ~nprocs:1) in
  let at8 = Runner.run (Runner.spec tt hoard ~nprocs:8) in
  let sp = Runner.speedup ~base at8 in
  Alcotest.(check bool) (Printf.sprintf "hoard speedup %.2f >= 6 at 8P" sp) true (sp >= 6.0)

let test_headline_serial_collapses_threadtest () =
  let base = Runner.run (Runner.spec tt serial ~nprocs:1) in
  let at8 = Runner.run (Runner.spec tt serial ~nprocs:8) in
  let sp = Runner.speedup ~base at8 in
  Alcotest.(check bool) (Printf.sprintf "serial speedup %.2f < 1 at 8P" sp) true (sp < 1.0)

let test_headline_uniproc_overhead_small () =
  let s = Runner.run (Runner.spec tt serial ~nprocs:1) in
  let h = Runner.run (Runner.spec tt hoard ~nprocs:1) in
  let ratio = float_of_int h.Runner.r_cycles /. float_of_int s.Runner.r_cycles in
  Alcotest.(check bool) (Printf.sprintf "hoard/serial = %.2f within 25%%" ratio) true (ratio < 1.25)

let test_headline_hoard_fragmentation_low () =
  let r = Runner.run (Runner.spec tt hoard ~nprocs:4) in
  let frag = Runner.fragmentation r in
  Alcotest.(check bool) (Printf.sprintf "threadtest frag %.2f <= 3" frag) true (frag <= 3.0)

let test_experiment_registry_complete () =
  let ids = Experiments.ids () in
  List.iter
    (fun required ->
      Alcotest.(check bool) (required ^ " registered") true (List.mem required ids))
    [
      "table1"; "table2"; "table3"; "table4"; "table5";
      "fig_threadtest"; "fig_shbench"; "fig_larson"; "fig_active_false"; "fig_passive_false";
      "fig_bem"; "fig_barnes"; "exp_blowup"; "exp_falseshare"; "exp_oversub"; "exp_latency";
      "exp_apps"; "exp_timeline"; "exp_costmodel"; "exp_numa"; "exp_contention";
      "abl_f"; "abl_k"; "abl_sbsize"; "abl_lock";
      "abl_nheaps";
    ]

let test_find () =
  Alcotest.(check bool) "finds" true (Experiments.find "table4" <> None);
  Alcotest.(check bool) "rejects unknown" true (Experiments.find "nope" = None)

let test_every_experiment_produces_tables () =
  (* Run each experiment at Quick scale with a tiny processor sweep; every
     one must yield at least one non-empty table. Heavy but the definitive
     smoke test that every table/figure can regenerate. *)
  List.iter
    (fun e ->
      let out = e.Experiments.run Experiments.Quick ~procs:(Some [ 1; 2 ]) in
      Alcotest.(check bool) (e.Experiments.id ^ " yields tables") true (List.length out.Experiments.tables > 0);
      List.iter
        (fun tbl ->
          let rendered = Table.render tbl in
          Alcotest.(check bool) (e.Experiments.id ^ " table non-trivial") true (String.length rendered > 40))
        out.Experiments.tables)
    (Experiments.all ())

let test_figures_carry_plots () =
  match Experiments.find "fig_threadtest" with
  | None -> Alcotest.fail "fig_threadtest missing"
  | Some e ->
    let out = e.Experiments.run Experiments.Quick ~procs:(Some [ 1; 2 ]) in
    (match out.Experiments.plot with
     | Some plot -> Alcotest.(check bool) "plot non-trivial" true (String.length plot > 200)
     | None -> Alcotest.fail "speedup figures must render a plot")

let test_workload_catalog () =
  List.iter
    (fun name ->
      match Experiments.workload name Experiments.Quick with
      | Some w -> Alcotest.(check bool) (name ^ " constructs") true (String.length w.Workload_intf.w_name > 0)
      | None -> Alcotest.fail (name ^ " missing from catalog"))
    Experiments.workload_names;
  Alcotest.(check bool) "unknown rejected" true (Experiments.workload "nope" Experiments.Quick = None)

let test_allocator_catalog () =
  List.iter
    (fun label ->
      Alcotest.(check bool) (label ^ " found") true (Experiments.allocator label <> None))
    [ "serial"; "concurrent-single"; "private-ownership"; "pure-private"; "private-threshold"; "hoard" ]

let test_latency_probe () =
  let sim = Sim.create ~nprocs:2 () in
  let pf = Sim.platform sim in
  let probe, a = Latency_probe.wrap ((Hoard.factory ()).Alloc_intf.instantiate pf) in
  for _ = 0 to 1 do
    ignore
      (Sim.spawn sim (fun () ->
           for _ = 1 to 50 do
             a.Alloc_intf.free (a.Alloc_intf.malloc 64)
           done))
  done;
  Sim.run sim;
  let h = Latency_probe.malloc_latencies probe in
  Alcotest.(check int) "100 mallocs sampled" 100 (Histogram.count h);
  Alcotest.(check bool) "latencies positive" true (Histogram.mean h > 0.0);
  Alcotest.(check int) "frees sampled too" 100 (Histogram.count (Latency_probe.free_latencies probe))

let test_timeline_records () =
  let sim = Sim.create ~nprocs:1 () in
  let pf = Sim.platform sim in
  let tl, a = Timeline.wrap ~every:10 ((Hoard.factory ()).Alloc_intf.instantiate pf) in
  ignore
    (Sim.spawn sim (fun () ->
         let ps = List.init 100 (fun _ -> a.Alloc_intf.malloc 64) in
         List.iter a.Alloc_intf.free ps));
  Sim.run sim;
  let samples = Timeline.samples tl in
  Alcotest.(check int) "one sample per 10 ops" 20 (List.length samples);
  let rec monotone = function
    | a :: (b :: _ as rest) -> a.Timeline.at <= b.Timeline.at && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "timestamps monotone" true (monotone samples);
  Alcotest.(check bool) "peak held positive" true (Timeline.peak_held tl > 0)

let test_latency_probe_batch () =
  let sim = Sim.create ~nprocs:1 () in
  let pf = Sim.platform sim in
  let probe, a = Latency_probe.wrap ((Hoard.factory ()).Alloc_intf.instantiate pf) in
  ignore
    (Sim.spawn sim (fun () ->
         for _ = 1 to 10 do
           a.Alloc_intf.free_batch (a.Alloc_intf.malloc_batch 8 64)
         done;
         let p = a.Alloc_intf.malloc 32 in
         let p = a.Alloc_intf.realloc ~addr:p ~size:128 in
         a.Alloc_intf.free p));
  Sim.run sim;
  (* Whole-call timing: a batch of 8 is one sample, not eight. *)
  Alcotest.(check int) "batch mallocs timed" 10 (Histogram.count (Latency_probe.batch_malloc_latencies probe));
  Alcotest.(check int) "batch frees timed" 10 (Histogram.count (Latency_probe.batch_free_latencies probe));
  Alcotest.(check int) "reallocs timed" 1 (Histogram.count (Latency_probe.realloc_latencies probe));
  let m = Metrics.create () in
  Latency_probe.publish probe m;
  (match Metrics.get m ~name:"latency.batch.malloc" () with
   | Some (Metrics.Dist d) ->
     Alcotest.(check int) "gauge count" 10 d.Metrics.d_count;
     Alcotest.(check bool) "p999 populated" true (d.Metrics.d_p999 > 0)
   | _ -> Alcotest.fail "latency.batch.malloc gauge missing");
  match Metrics.get m ~name:"latency.realloc" () with
  | Some (Metrics.Dist d) -> Alcotest.(check int) "realloc gauge count" 1 d.Metrics.d_count
  | _ -> Alcotest.fail "latency.realloc gauge missing"

let test_timeline_resident () =
  let sim = Sim.create ~nprocs:1 () in
  let pf = Sim.platform sim in
  let tl, a = Timeline.wrap ~every:8 ((Hoard.factory ()).Alloc_intf.instantiate pf) in
  ignore
    (Sim.spawn sim (fun () ->
         let ps = List.init 64 (fun _ -> a.Alloc_intf.malloc 256) in
         List.iter a.Alloc_intf.free ps));
  Sim.run sim;
  Alcotest.(check bool) "resident sampled" true
    (List.exists (fun s -> s.Timeline.resident > 0) (Timeline.samples tl));
  List.iter
    (fun s ->
      Alcotest.(check bool) "live never exceeds held" true (s.Timeline.live <= s.Timeline.held);
      Alcotest.(check bool) "held never exceeds resident" true (s.Timeline.held <= s.Timeline.resident))
    (Timeline.samples tl);
  Alcotest.(check bool) "peak resident covers peak held" true
    (Timeline.peak_resident tl >= Timeline.peak_held tl);
  let plot = Timeline.plot ~metric:Timeline.Resident [ ("hoard", tl) ] ~title:"t" in
  Alcotest.(check bool) "plot labels the resident series" true (Astring.String.is_infix ~affix:"resident" plot)

(* --- the SLO layer --- *)

let small_server_params profile =
  { Server_mix.default_params with Server_mix.profile; requests = 200 }

let test_slo_spec_roundtrip () =
  let src =
    {|{"name":"front","rules":[{"metric":"request","quantile":"p99","ceiling":50000},
       {"metric":"malloc","quantile":0.5,"ceiling":4000}],"rss_ceiling":1048576}|}
  in
  (match Slo.spec_of_string src with
   | Error e -> Alcotest.fail e
   | Ok spec ->
     Alcotest.(check string) "name" "front" spec.Slo.sp_name;
     Alcotest.(check int) "two rules" 2 (List.length spec.Slo.sp_rules);
     (match spec.Slo.sp_rules with
      | [ a; b ] ->
        Alcotest.(check string) "p99 alias decoded" "p99" (Slo.quantile_name a.Slo.ru_quantile);
        Alcotest.(check int) "ceiling" 50000 a.Slo.ru_ceiling;
        Alcotest.(check string) "numeric quantile decoded" "p50" (Slo.quantile_name b.Slo.ru_quantile)
      | _ -> Alcotest.fail "rules lost");
     Alcotest.(check (option int)) "rss ceiling" (Some 1048576) spec.Slo.sp_rss_ceiling);
  (match Slo.spec_of_string {|{"rules":[{"metric":"request","quantile":2.0,"ceiling":5}]}|} with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "quantile > 1 accepted");
  match Slo.spec_of_string {|{"name":"no rules"}|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing rules accepted"

let test_slo_evaluate_pass_and_fail () =
  let r = Slo.run_server ~params:(small_server_params Server_mix.Steady) (Allocators.hoard_fe ()) ~nprocs:4 in
  let rule metric q ceiling = { Slo.ru_metric = metric; ru_quantile = q; ru_ceiling = ceiling } in
  let generous =
    {
      Slo.sp_name = "generous";
      sp_rules = [ rule "request" 0.99 max_int; rule "malloc" 0.5 max_int ];
      sp_rss_ceiling = Some max_int;
    }
  in
  Alcotest.(check bool) "generous spec passes" true (Slo.evaluate generous r).Slo.rp_ok;
  let strict = { Slo.sp_name = "strict"; sp_rules = [ rule "request" 0.5 1 ]; sp_rss_ceiling = None } in
  let rep = Slo.evaluate strict r in
  Alcotest.(check bool) "1-cycle ceiling fails" false rep.Slo.rp_ok;
  (match rep.Slo.rp_checks with
   | [ c ] ->
     Alcotest.(check string) "check named" "request.p50" c.Slo.ck_name;
     Alcotest.(check bool) "observed recorded" true (c.Slo.ck_observed > 1)
   | _ -> Alcotest.fail "one check expected");
  (* A typo'd metric name must fail, not silently pass. *)
  let typo = { Slo.sp_name = "typo"; sp_rules = [ rule "requests" 0.5 max_int ]; sp_rss_ceiling = None } in
  Alcotest.(check bool) "unknown metric fails" false (Slo.evaluate typo r).Slo.rp_ok;
  let tbl = Table.render (Slo.report_table rep) in
  Alcotest.(check bool) "table shows verdict" true (Astring.String.is_infix ~affix:"VIOLATED" tbl)

let test_server_run_counts_and_determinism () =
  let run () = Slo.run_server ~params:(small_server_params Server_mix.Bursty) (Allocators.hoard_fe ()) ~nprocs:4 in
  let a = run () and b = run () in
  Alcotest.(check int) "all requests served" 200 (Server_mix.completed a.Slo.sv_recorder);
  (* The sink wires completions into the run's ring: drop-proof kind
     totals must agree with the recorder exactly. *)
  Alcotest.(check int) "ring req_done total" 200 (Obs.count_kind a.Slo.sv_obs Event_ring.Req_done);
  Alcotest.(check int) "ring req_arrival total" 200 (Obs.count_kind a.Slo.sv_obs Event_ring.Req_arrival);
  Alcotest.(check int) "cycles reproduce" a.Slo.sv_cycles b.Slo.sv_cycles;
  let p99 r = Histogram.percentile (Server_mix.request_latencies r.Slo.sv_recorder) 0.99 in
  Alcotest.(check int) "p99 reproduces" (p99 a) (p99 b);
  (* Open-loop latency is measured from scheduled arrival: with bursts
     outpacing service, the tail must exceed the median visibly. *)
  let h = Server_mix.request_latencies a.Slo.sv_recorder in
  Alcotest.(check bool) "queueing shows in the tail" true
    (Histogram.percentile h 0.99 > Histogram.percentile h 0.5)

let test_server_metrics_json_gate_shape () =
  let r = Slo.run_server ~params:(small_server_params Server_mix.Flash) (Allocators.hoard_fe ()) ~nprocs:4 in
  match Json_lite.parse (Slo.metrics_json r) with
  | Error e -> Alcotest.fail ("metrics JSON invalid: " ^ e)
  | Ok j ->
    (match Option.bind (Json_lite.member "run" j) (Json_lite.member "cycles") with
     | Some (Json_lite.Num c) -> Alcotest.(check bool) "cycles positive" true (c > 0.0)
     | _ -> Alcotest.fail "run.cycles missing");
    (match Option.bind (Json_lite.member "metrics" j) Json_lite.to_list with
     | None -> Alcotest.fail "metrics array missing"
     | Some ms ->
       (* The gate metric must be present, flat (summable) and labelled
          with the allocator it measures. *)
       let p99 =
         List.find_opt
           (fun m ->
             Option.bind (Json_lite.member "name" m) Json_lite.to_string = Some "slo.request.p99")
           ms
       in
       (match p99 with
        | None -> Alcotest.fail "slo.request.p99 missing"
        | Some m ->
          (match Option.bind (Json_lite.member "value" m) Json_lite.to_float with
           | Some v -> Alcotest.(check bool) "flat numeric value" true (v > 0.0)
           | None -> Alcotest.fail "p99 value not a number");
          (match Json_lite.member "labels" m with
           | Some labels ->
             Alcotest.(check (option string)) "allocator label" (Some "hoard-fe")
               (Option.bind (Json_lite.member "allocator" labels) Json_lite.to_string)
           | None -> Alcotest.fail "labels missing")))

let test_server_perfetto_export () =
  (* Satellite check, on a real 4-domain run: the trace round-trips
     through Json_lite, every counter track is monotone in ts, and
     instant counts match the rings' drop-proof totals. *)
  let r = Slo.run_server ~params:(small_server_params Server_mix.Bursty) (Allocators.hoard_fe ()) ~nprocs:4 in
  match Json_lite.parse (Slo.perfetto_json r) with
  | Error e -> Alcotest.fail ("trace JSON invalid: " ^ e)
  | Ok j ->
    (match Option.bind (Json_lite.member "traceEvents" j) Json_lite.to_list with
     | None -> Alcotest.fail "traceEvents missing"
     | Some events ->
       let field name e = Json_lite.member name e in
       let str_field name e = Option.bind (field name e) Json_lite.to_string in
       let num_field name e = Option.bind (field name e) Json_lite.to_float in
       let counters name =
         List.filter (fun e -> str_field "ph" e = Some "C" && str_field "name" e = Some name) events
       in
       List.iter
         (fun track ->
           let ts = List.filter_map (num_field "ts") (counters track) in
           Alcotest.(check bool) (track ^ " track non-empty") true (ts <> []);
           let rec monotone = function
             | a :: (b :: _ as rest) -> a <= b && monotone rest
             | _ -> true
           in
           Alcotest.(check bool) (track ^ " ts monotone") true (monotone ts))
         [ "request.latency"; "memory KiB" ];
       (* Request spans: one per recorded sample. *)
       let spans = List.filter (fun e -> str_field "ph" e = Some "X" && str_field "name" e = Some "request") events in
       Alcotest.(check int) "one span per request" 200 (List.length spans);
       (* Ring instants: exactly the retained events, kind by kind. *)
       let instants kind_name =
         List.length
           (List.filter
              (fun e -> str_field "ph" e = Some "i" && str_field "name" e = Some kind_name)
              events)
       in
       List.iter
         (fun (_, ring) ->
           List.iter
             (fun kind ->
               let retained = ref 0 in
               Event_ring.iter ring (fun e -> if e.Event_ring.kind = kind then incr retained);
               if !retained > 0 then
                 Alcotest.(check bool)
                   (Event_ring.kind_name kind ^ " instants cover ring")
                   true
                   (instants (Event_ring.kind_name kind) >= !retained))
             Event_ring.all_kinds)
         (Obs.rings r.Slo.sv_obs);
       Alcotest.(check int) "req_done instants match drop-proof total" 200 (instants "req_done"))

let test_error_in_simulated_thread_surfaces () =
  (* A double free inside the simulation must abort the run with the
     allocator's own error, not corrupt state silently. *)
  let sim = Sim.create ~nprocs:1 () in
  let a = (Hoard.factory ()).Alloc_intf.instantiate (Sim.platform sim) in
  ignore
    (Sim.spawn sim (fun () ->
         let p = a.Alloc_intf.malloc 64 in
         a.Alloc_intf.free p;
         a.Alloc_intf.free p));
  Alcotest.check_raises "double free surfaces" (Failure "Superblock.free_block: double free") (fun () ->
      Sim.run sim)

let test_csv_export () =
  match Experiments.find "table2" with
  | None -> Alcotest.fail "table2 missing"
  | Some e ->
    let out = e.Experiments.run Experiments.Quick ~procs:None in
    List.iter
      (fun tbl ->
        let csv = Table.to_csv tbl in
        Alcotest.(check bool) "csv has header and rows" true (List.length (String.split_on_char '\n' csv) > 2))
      out.Experiments.tables

let () =
  Alcotest.run "harness"
    [
      ( "runner",
        [
          Alcotest.test_case "basic" `Quick test_runner_basic;
          Alcotest.test_case "deterministic" `Quick test_runner_deterministic;
          Alcotest.test_case "speedup metric" `Quick test_speedup_metric;
        ] );
      ( "headline-shapes",
        [
          Alcotest.test_case "hoard scales" `Quick test_headline_hoard_scales_threadtest;
          Alcotest.test_case "serial collapses" `Quick test_headline_serial_collapses_threadtest;
          Alcotest.test_case "uniproc overhead" `Quick test_headline_uniproc_overhead_small;
          Alcotest.test_case "fragmentation low" `Quick test_headline_hoard_fragmentation_low;
        ] );
      ( "registry",
        [
          Alcotest.test_case "complete" `Quick test_experiment_registry_complete;
          Alcotest.test_case "find" `Quick test_find;
          Alcotest.test_case "csv export" `Quick test_csv_export;
          Alcotest.test_case "figures carry plots" `Quick test_figures_carry_plots;
          Alcotest.test_case "workload catalog" `Quick test_workload_catalog;
          Alcotest.test_case "allocator catalog" `Quick test_allocator_catalog;
          Alcotest.test_case "latency probe" `Quick test_latency_probe;
          Alcotest.test_case "latency probe batch ops" `Quick test_latency_probe_batch;
          Alcotest.test_case "timeline records" `Quick test_timeline_records;
          Alcotest.test_case "timeline resident" `Quick test_timeline_resident;
          Alcotest.test_case "errors surface" `Quick test_error_in_simulated_thread_surfaces;
          Alcotest.test_case "all experiments regenerate" `Slow test_every_experiment_produces_tables;
        ] );
      ( "slo",
        [
          Alcotest.test_case "spec round-trip" `Quick test_slo_spec_roundtrip;
          Alcotest.test_case "evaluate pass/fail" `Quick test_slo_evaluate_pass_and_fail;
          Alcotest.test_case "server counts + determinism" `Quick test_server_run_counts_and_determinism;
          Alcotest.test_case "gate metrics shape" `Quick test_server_metrics_json_gate_shape;
          Alcotest.test_case "perfetto export" `Quick test_server_perfetto_export;
        ] );
    ]
