(* Utility-library tests: PRNG, intrusive lists, histograms, tables, stats. *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different streams" true (Rng.next_int64 a <> Rng.next_int64 b)

let test_rng_copy_independent () =
  let a = Rng.create 7 in
  ignore (Rng.next_int64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.next_int64 a) (Rng.next_int64 b);
  ignore (Rng.next_int64 a);
  Alcotest.(check bool) "now divergent positions" true (Rng.next_int64 a <> Rng.next_int64 b)

let test_rng_bounds =
  QCheck.Test.make ~name:"Rng.int_in stays within bounds" ~count:500
    QCheck.(triple small_int small_int small_int)
    (fun (seed, lo, span) ->
      let rng = Rng.create seed in
      let hi = lo + abs span in
      let x = Rng.int_in rng lo hi in
      x >= lo && x <= hi)

let test_rng_int_distribution () =
  let rng = Rng.create 123 in
  let counts = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let x = Rng.int rng 10 in
    counts.(x) <- counts.(x) + 1
  done;
  Array.iteri
    (fun i c -> Alcotest.(check bool) (Printf.sprintf "bucket %d roughly uniform (%d)" i c) true (c > 700 && c < 1300))
    counts

let test_rng_shuffle_permutes () =
  let rng = Rng.create 5 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation" (Array.init 50 Fun.id) sorted

let test_rng_exponential_positive () =
  let rng = Rng.create 11 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "positive" true (Rng.exponential rng 10.0 >= 0.0)
  done

(* --- Dlist --- *)

let test_dlist_push_pop () =
  let l = Dlist.create () in
  ignore (Dlist.push_back l 1);
  ignore (Dlist.push_back l 2);
  ignore (Dlist.push_front l 0);
  Alcotest.(check (list int)) "order" [ 0; 1; 2 ] (Dlist.to_list l);
  Alcotest.(check int) "length" 3 (Dlist.length l);
  Alcotest.(check (option int)) "pop front" (Some 0) (Dlist.pop_front l);
  Alcotest.(check (option int)) "peek front" (Some 1) (Dlist.peek_front l);
  Alcotest.(check (option int)) "peek back" (Some 2) (Dlist.peek_back l)

let test_dlist_remove_middle () =
  let l = Dlist.create () in
  let _a = Dlist.push_back l 'a' in
  let b = Dlist.push_back l 'b' in
  let _c = Dlist.push_back l 'c' in
  Dlist.remove l b;
  Alcotest.(check (list char)) "middle removed" [ 'a'; 'c' ] (Dlist.to_list l)

let test_dlist_remove_foreign_rejected () =
  let l1 = Dlist.create () and l2 = Dlist.create () in
  let n = Dlist.push_back l1 1 in
  ignore (Dlist.push_back l2 2);
  Alcotest.check_raises "foreign node" (Invalid_argument "Dlist.remove: node not in this list") (fun () ->
      Dlist.remove l2 n)

let test_dlist_double_remove_rejected () =
  let l = Dlist.create () in
  let n = Dlist.push_back l 1 in
  Dlist.remove l n;
  Alcotest.check_raises "double remove" (Invalid_argument "Dlist.remove: node not in this list") (fun () ->
      Dlist.remove l n)

let test_dlist_find () =
  let l = Dlist.create () in
  List.iter (fun x -> ignore (Dlist.push_back l x)) [ 1; 3; 5; 6; 7 ];
  Alcotest.(check (option int)) "first even" (Some 6) (Dlist.find (fun x -> x mod 2 = 0) l);
  Alcotest.(check (option int)) "none" None (Dlist.find (fun x -> x > 100) l)

(* Model-based property: a Dlist driven by random push/pop/remove agrees
   with a plain list model. *)
let test_dlist_model =
  QCheck.Test.make ~name:"Dlist matches list model" ~count:200
    QCheck.(list (int_range 0 3))
    (fun ops ->
      let l = Dlist.create () in
      let nodes = ref [] in
      let model = ref [] in
      List.iteri
        (fun i op ->
          match op with
          | 0 ->
            nodes := !nodes @ [ Dlist.push_back l i ];
            model := !model @ [ i ]
          | 1 ->
            nodes := Dlist.push_front l i :: !nodes;
            model := i :: !model
          | 2 ->
            (match (!nodes, !model) with
             | n :: rest, _ :: mrest ->
               Dlist.remove l n;
               nodes := rest;
               model := mrest
             | [], [] -> ()
             | _ -> assert false)
          | _ ->
            (match (Dlist.pop_front l, !model) with
             | Some x, m :: mrest when x = m ->
               model := mrest;
               nodes := List.tl !nodes
             | None, [] -> ()
             | _ -> failwith "pop mismatch"))
        ops;
      Dlist.to_list l = !model && Dlist.length l = List.length !model)

let test_dlist_empty_edges () =
  let l = Dlist.create () in
  Alcotest.(check bool) "is_empty" true (Dlist.is_empty l);
  Alcotest.(check int) "length" 0 (Dlist.length l);
  Alcotest.(check (option int)) "pop_front" None (Dlist.pop_front l);
  Alcotest.(check (option int)) "peek_front" None (Dlist.peek_front l);
  Alcotest.(check (option int)) "peek_back" None (Dlist.peek_back l);
  let visited = ref 0 in
  Dlist.iter (fun _ -> incr visited) l;
  Alcotest.(check int) "iter no-op" 0 !visited;
  Alcotest.(check (list int)) "to_list" [] (Dlist.to_list l)

(* Removing the node currently being visited must not derail the walk:
   [iter] captures the successor before calling [f]. This is exactly the
   reposition-while-scanning pattern of Heap_core's fullness groups. *)
let test_dlist_remove_current_while_iterating () =
  let l = Dlist.create () in
  let nodes = List.map (fun x -> (x, Dlist.push_back l x)) [ 1; 2; 3; 4 ] in
  let visited = ref [] in
  Dlist.iter
    (fun v ->
      visited := v :: !visited;
      if v mod 2 = 0 then Dlist.remove l (List.assoc v nodes))
    l;
  Alcotest.(check (list int)) "all visited" [ 1; 2; 3; 4 ] (List.rev !visited);
  Alcotest.(check (list int)) "evens removed" [ 1; 3 ] (Dlist.to_list l);
  Alcotest.(check int) "length tracks" 2 (Dlist.length l)

(* Remove-and-relink mid-iteration: the moved node is pushed to the front
   of the SAME list while the walk is past it, so it must not be visited
   twice — the walk follows captured successors, not the mutated head. *)
let test_dlist_reposition_while_iterating () =
  let l = Dlist.create () in
  let n2 = ref None in
  ignore (Dlist.push_back l 1);
  n2 := Some (Dlist.push_back l 2);
  ignore (Dlist.push_back l 3);
  let visited = ref [] in
  Dlist.iter
    (fun v ->
      visited := v :: !visited;
      if v = 2 then begin
        (match !n2 with
         | Some n -> Dlist.remove l n
         | None -> assert false);
        ignore (Dlist.push_front l 2)
      end)
    l;
  Alcotest.(check (list int)) "each visited once" [ 1; 2; 3 ] (List.rev !visited);
  Alcotest.(check (list int)) "repositioned to front" [ 2; 1; 3 ] (Dlist.to_list l)

let test_dlist_remove_head_and_tail_edges () =
  let l = Dlist.create () in
  let a = Dlist.push_back l 'a' in
  let b = Dlist.push_back l 'b' in
  let c = Dlist.push_back l 'c' in
  Dlist.remove l a;
  Alcotest.(check (option char)) "new head" (Some 'b') (Dlist.peek_front l);
  Dlist.remove l c;
  Alcotest.(check (option char)) "new tail" (Some 'b') (Dlist.peek_back l);
  Dlist.remove l b;
  Alcotest.(check bool) "empty after removing singleton" true (Dlist.is_empty l);
  Alcotest.(check (option char)) "no head" None (Dlist.peek_front l);
  Alcotest.(check (option char)) "no tail" None (Dlist.peek_back l);
  (* The emptied list is immediately reusable (the empty-bin edge: a
     fullness group drained by transfers keeps serving). *)
  ignore (Dlist.push_back l 'z');
  Alcotest.(check (list char)) "reusable" [ 'z' ] (Dlist.to_list l)

let test_dlist_node_reuse_across_lists_rejected () =
  let l1 = Dlist.create () and l2 = Dlist.create () in
  let n = Dlist.push_back l1 1 in
  Dlist.remove l1 n;
  (* A detached node is homeless; only the list that created it via push
     may ever hold it, and a remove through a stale handle must fail even
     against its original list. *)
  Alcotest.check_raises "stale node" (Invalid_argument "Dlist.remove: node not in this list") (fun () ->
      Dlist.remove l1 n);
  Alcotest.check_raises "foreign list" (Invalid_argument "Dlist.remove: node not in this list") (fun () ->
      Dlist.remove l2 n)

(* --- Histogram --- *)

let test_histogram_buckets () =
  let h = Histogram.create ~bounds:[| 10; 100 |] in
  List.iter (Histogram.add h) [ 5; 9; 10; 50; 100; 1000 ];
  Alcotest.(check int) "count" 6 (Histogram.count h);
  let buckets = Histogram.buckets h in
  Alcotest.(check int) "under 10" 2 (let _, _, c = buckets.(0) in c);
  Alcotest.(check int) "10..99" 2 (let _, _, c = buckets.(1) in c);
  Alcotest.(check int) "overflow" 2 (let _, _, c = buckets.(2) in c);
  Alcotest.(check (option int)) "min" (Some 5) (Histogram.min_value h);
  Alcotest.(check (option int)) "max" (Some 1000) (Histogram.max_value h)

let test_histogram_mean_total () =
  let h = Histogram.create ~bounds:[| 8 |] in
  List.iter (Histogram.add h) [ 2; 4; 6 ];
  Alcotest.(check int) "total" 12 (Histogram.total h);
  Alcotest.(check (float 0.001)) "mean" 4.0 (Histogram.mean h)

let test_histogram_exponential_bounds () =
  Alcotest.(check (array int)) "powers of two" [| 8; 16; 32; 64 |] (Histogram.exponential_bounds ~lo:8 ~hi:64)

let test_histogram_percentiles () =
  let h = Histogram.create ~bounds:[| 10; 100; 1000 |] in
  for _ = 1 to 90 do
    Histogram.add h 5
  done;
  for _ = 1 to 9 do
    Histogram.add h 50
  done;
  Histogram.add h 5000;
  Alcotest.(check int) "p50 in first bucket" 10 (Histogram.percentile h 0.5);
  Alcotest.(check int) "p95 in second bucket" 100 (Histogram.percentile h 0.95);
  Alcotest.(check int) "p100 is max" 5000 (Histogram.percentile h 1.0);
  Alcotest.(check int) "empty is 0" 0 (Histogram.percentile (Histogram.create ~bounds:[| 1 |]) 0.5)

let test_histogram_log_linear_bounds () =
  (* sub=1 degenerates to the power-of-two layout (plus the explicit top
     edge the log-linear constructor always appends). *)
  Alcotest.(check (array int)) "sub=1 is exponential" [| 8; 16; 32; 64; 128 |]
    (Histogram.log_linear_bounds ~lo:8 ~hi:64 ~sub:1);
  (* Each power-of-two span is cut into sub linear steps. *)
  Alcotest.(check (array int)) "sub=4 cuts each span" [| 16; 20; 24; 28; 32 |]
    (Histogram.log_linear_bounds ~lo:16 ~hi:31 ~sub:4)

let test_histogram_log_linear_p50_equivalence () =
  (* The same stream through the old power-of-two layout and the new
     sub-bucketed one: both percentile estimates are upper bounds of the
     true median, and the finer layout's estimate is never looser. *)
  let vals = List.init 1001 (fun i -> 8 + (i * 13 mod 4096)) in
  let coarse = Histogram.create ~bounds:(Histogram.exponential_bounds ~lo:8 ~hi:8192) in
  let fine = Histogram.create_log_linear ~lo:8 ~hi:8192 ~sub:8 in
  List.iter
    (fun v ->
      Histogram.add coarse v;
      Histogram.add fine v)
    vals;
  let true_median = List.nth (List.sort compare vals) 500 in
  let p50_coarse = Histogram.percentile coarse 0.5 in
  let p50_fine = Histogram.percentile fine 0.5 in
  Alcotest.(check bool) "both bound the median" true (p50_coarse >= true_median && p50_fine >= true_median);
  Alcotest.(check bool) "fine is no looser" true (p50_fine <= p50_coarse);
  (* The point of sub-bucketing: relative error drops from a factor of
     two to 1/sub. *)
  Alcotest.(check bool) "fine within 1/8 of the median" true
    (float_of_int p50_fine <= float_of_int true_median *. (1.0 +. 1.0 /. 8.0) +. 1.0)

let test_histogram_log_linear_p999_tight () =
  let h = Histogram.create_log_linear ~lo:8 ~hi:1_048_576 ~sub:8 in
  for _ = 1 to 995 do
    Histogram.add h 100
  done;
  for _ = 1 to 5 do
    Histogram.add h 100_000
  done;
  let p999 = Histogram.percentile h 0.999 in
  Alcotest.(check bool) "p999 bounds the outlier within 1/8" true
    (p999 >= 100_000 && float_of_int p999 <= 100_000.0 *. 1.125)

let test_histogram_counts_consistent =
  QCheck.Test.make ~name:"Histogram bucket counts sum to n" ~count:200
    QCheck.(list small_nat)
    (fun xs ->
      let h = Histogram.create ~bounds:[| 4; 16; 64; 256 |] in
      List.iter (Histogram.add h) xs;
      Array.fold_left (fun acc (_, _, c) -> acc + c) 0 (Histogram.buckets h) = List.length xs)

(* --- Table --- *)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec at i = i + n <= h && (String.sub haystack i n = needle || at (i + 1)) in
  n = 0 || at 0

let test_table_render_contains_cells () =
  let t = Table.create ~title:"demo" ~columns:[ ("name", Table.Left); ("value", Table.Right) ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "beta"; "22" ];
  let s = Table.render t in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " present") true (contains s needle))
    [ "demo"; "alpha"; "beta"; "22" ]

let test_table_wrong_arity_rejected () =
  let t = Table.create ~title:"t" ~columns:[ ("a", Table.Left) ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row (t): 2 cells, 1 columns") (fun () ->
      Table.add_row t [ "x"; "y" ])

let test_table_csv () =
  let t = Table.create ~title:"t" ~columns:[ ("a", Table.Left); ("b", Table.Right) ] in
  Table.add_row t [ "x,y"; "2" ];
  Alcotest.(check string) "csv quoted" "a,b\n\"x,y\",2\n" (Table.to_csv t)

(* --- Ascii_plot --- *)

let test_plot_contains_series () =
  let s =
    Ascii_plot.render ~title:"demo" ~series:[ ("alpha", [ (1.0, 1.0); (2.0, 2.0) ]); ("beta", [ (1.0, 0.5) ]) ] ()
  in
  List.iter
    (fun needle -> Alcotest.(check bool) (needle ^ " present") true (contains s needle))
    [ "demo"; "alpha"; "beta"; "*"; "+" ]

let test_plot_empty () =
  let s = Ascii_plot.render ~title:"empty" ~series:[] () in
  Alcotest.(check bool) "renders placeholder" true (contains s "(no data)")

let test_plot_flat_series () =
  (* A constant series must not divide by zero. *)
  let s = Ascii_plot.render ~title:"flat" ~series:[ ("c", [ (1.0, 3.0); (2.0, 3.0); (3.0, 3.0) ]) ] () in
  Alcotest.(check bool) "renders" true (String.length s > 100)

let test_plot_single_point () =
  let s = Ascii_plot.render ~title:"pt" ~series:[ ("p", [ (5.0, 5.0) ]) ] () in
  Alcotest.(check bool) "renders" true (contains s "*")

(* --- Stats_acc --- *)

let test_stats_acc_basics () =
  let s = Stats_acc.create () in
  List.iter (Stats_acc.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  Alcotest.(check int) "count" 4 (Stats_acc.count s);
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats_acc.mean s);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats_acc.min_value s);
  Alcotest.(check (float 1e-9)) "max" 4.0 (Stats_acc.max_value s);
  Alcotest.(check (float 1e-9)) "variance" 1.25 (Stats_acc.variance s)

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
          Alcotest.test_case "copy" `Quick test_rng_copy_independent;
          Alcotest.test_case "distribution" `Quick test_rng_int_distribution;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
          Alcotest.test_case "exponential positive" `Quick test_rng_exponential_positive;
          qt test_rng_bounds;
        ] );
      ( "dlist",
        [
          Alcotest.test_case "push/pop" `Quick test_dlist_push_pop;
          Alcotest.test_case "remove middle" `Quick test_dlist_remove_middle;
          Alcotest.test_case "foreign remove" `Quick test_dlist_remove_foreign_rejected;
          Alcotest.test_case "double remove" `Quick test_dlist_double_remove_rejected;
          Alcotest.test_case "find" `Quick test_dlist_find;
          Alcotest.test_case "empty edges" `Quick test_dlist_empty_edges;
          Alcotest.test_case "remove while iterating" `Quick test_dlist_remove_current_while_iterating;
          Alcotest.test_case "reposition while iterating" `Quick test_dlist_reposition_while_iterating;
          Alcotest.test_case "head/tail removal edges" `Quick test_dlist_remove_head_and_tail_edges;
          Alcotest.test_case "stale node rejected" `Quick test_dlist_node_reuse_across_lists_rejected;
          qt test_dlist_model;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "mean/total" `Quick test_histogram_mean_total;
          Alcotest.test_case "exponential bounds" `Quick test_histogram_exponential_bounds;
          Alcotest.test_case "percentiles" `Quick test_histogram_percentiles;
          Alcotest.test_case "log-linear bounds" `Quick test_histogram_log_linear_bounds;
          Alcotest.test_case "log-linear p50 equivalence" `Quick test_histogram_log_linear_p50_equivalence;
          Alcotest.test_case "log-linear p999 tight" `Quick test_histogram_log_linear_p999_tight;
          qt test_histogram_counts_consistent;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render_contains_cells;
          Alcotest.test_case "arity" `Quick test_table_wrong_arity_rejected;
          Alcotest.test_case "csv" `Quick test_table_csv;
        ] );
      ( "ascii_plot",
        [
          Alcotest.test_case "series present" `Quick test_plot_contains_series;
          Alcotest.test_case "empty" `Quick test_plot_empty;
          Alcotest.test_case "flat series" `Quick test_plot_flat_series;
          Alcotest.test_case "single point" `Quick test_plot_single_point;
        ] );
      ("stats_acc", [ Alcotest.test_case "basics" `Quick test_stats_acc_basics ]);
    ]
