(* Coherence simulator semantics: MESI-ish transitions and the counters the
   false-sharing experiments are built on. *)

let mk () = Cache.create ~line_size:64 ~nprocs:4 ()

let test_first_touch_is_cold () =
  let c = mk () in
  let s = Cache.read c 0 ~addr:4096 ~len:8 in
  Alcotest.(check int) "cold" 1 s.Cache.cold_misses;
  Alcotest.(check int) "no hit" 0 s.Cache.hits

let test_second_touch_hits () =
  let c = mk () in
  ignore (Cache.read c 0 ~addr:4096 ~len:8);
  let s = Cache.read c 0 ~addr:4100 ~len:8 in
  Alcotest.(check int) "hit" 1 s.Cache.hits

let test_read_sharing_no_invalidation () =
  let c = mk () in
  ignore (Cache.read c 0 ~addr:0 ~len:8);
  let s = Cache.read c 1 ~addr:0 ~len:8 in
  Alcotest.(check int) "coherence miss" 1 s.Cache.coherence_misses;
  Alcotest.(check int) "no invalidation" 0 s.Cache.invalidations_sent;
  Alcotest.(check (list int)) "both sharers" [ 0; 1 ] (Cache.sharers c ~line:0)

let test_write_invalidates_readers () =
  let c = mk () in
  ignore (Cache.read c 0 ~addr:0 ~len:8);
  ignore (Cache.read c 1 ~addr:0 ~len:8);
  ignore (Cache.read c 2 ~addr:0 ~len:8);
  let s = Cache.write c 3 ~addr:0 ~len:8 in
  Alcotest.(check int) "three invalidations" 3 s.Cache.invalidations_sent;
  Alcotest.(check (list int)) "sole owner" [ 3 ] (Cache.sharers c ~line:0);
  Alcotest.(check int) "received counted" 1 (Cache.stats c 0).Cache.p_invalidations_received

let test_upgrade_from_shared_is_hit () =
  let c = mk () in
  ignore (Cache.read c 0 ~addr:0 ~len:8);
  ignore (Cache.read c 1 ~addr:0 ~len:8);
  let s = Cache.write c 0 ~addr:0 ~len:8 in
  Alcotest.(check int) "hit (data local)" 1 s.Cache.hits;
  Alcotest.(check int) "peer invalidated" 1 s.Cache.invalidations_sent

let test_write_write_pingpong () =
  let c = mk () in
  ignore (Cache.write c 0 ~addr:0 ~len:8);
  let s = Cache.write c 1 ~addr:8 ~len:8 in
  (* Different byte, same line: textbook false sharing. *)
  Alcotest.(check int) "coherence miss" 1 s.Cache.coherence_misses;
  Alcotest.(check int) "invalidation" 1 s.Cache.invalidations_sent;
  let s = Cache.write c 0 ~addr:0 ~len:8 in
  Alcotest.(check int) "ping-pong continues" 1 s.Cache.coherence_misses

let test_distinct_lines_independent () =
  let c = mk () in
  ignore (Cache.write c 0 ~addr:0 ~len:8);
  let s = Cache.write c 1 ~addr:64 ~len:8 in
  Alcotest.(check int) "no coherence traffic" 0 (s.Cache.coherence_misses + s.Cache.invalidations_sent)

let test_multi_line_access () =
  let c = mk () in
  let s = Cache.read c 0 ~addr:60 ~len:8 in
  (* Spans lines 0 and 1. *)
  Alcotest.(check int) "two cold misses" 2 s.Cache.cold_misses;
  let s = Cache.read c 0 ~addr:0 ~len:128 in
  Alcotest.(check int) "two hits" 2 s.Cache.hits

let test_reset_stats_keeps_directory () =
  let c = mk () in
  ignore (Cache.write c 0 ~addr:0 ~len:8);
  Cache.reset_stats c;
  Alcotest.(check int) "counters zero" 0 (Cache.stats c 0).Cache.p_hits;
  let s = Cache.read c 0 ~addr:0 ~len:8 in
  Alcotest.(check int) "directory intact: hit" 1 s.Cache.hits

let test_bad_args () =
  let c = mk () in
  Alcotest.check_raises "len 0" (Invalid_argument "Cache.access: len must be positive") (fun () ->
      ignore (Cache.read c 0 ~addr:0 ~len:0));
  Alcotest.check_raises "bad proc" (Invalid_argument "Cache.access: bad processor id") (fun () ->
      ignore (Cache.read c 9 ~addr:0 ~len:8))

(* --- finite capacity --- *)

let test_capacity_evicts_lru () =
  let c = Cache.create ~line_size:64 ~capacity_lines:2 ~nprocs:1 () in
  ignore (Cache.read c 0 ~addr:0 ~len:8);
  (* line 0 *)
  ignore (Cache.read c 0 ~addr:64 ~len:8);
  (* line 1 *)
  ignore (Cache.read c 0 ~addr:128 ~len:8);
  (* line 2: evicts line 0 *)
  Alcotest.(check int) "one eviction" 1 (Cache.stats c 0).Cache.p_evictions;
  let s = Cache.read c 0 ~addr:0 ~len:8 in
  Alcotest.(check int) "line 0 misses again" 1 s.Cache.cold_misses;
  let s = Cache.read c 0 ~addr:128 ~len:8 in
  Alcotest.(check int) "line 2 still hits" 1 s.Cache.hits

let test_capacity_lru_order_updated () =
  let c = Cache.create ~line_size:64 ~capacity_lines:2 ~nprocs:1 () in
  ignore (Cache.read c 0 ~addr:0 ~len:8);
  ignore (Cache.read c 0 ~addr:64 ~len:8);
  ignore (Cache.read c 0 ~addr:0 ~len:8);
  (* touch line 0: line 1 becomes LRU *)
  ignore (Cache.read c 0 ~addr:128 ~len:8);
  (* evicts line 1, not line 0 *)
  let s = Cache.read c 0 ~addr:0 ~len:8 in
  Alcotest.(check int) "line 0 survived" 1 s.Cache.hits;
  let s = Cache.read c 0 ~addr:64 ~len:8 in
  Alcotest.(check int) "line 1 evicted" 1 s.Cache.cold_misses

let test_capacity_per_processor () =
  (* Evictions on one processor must not disturb another's cache. *)
  let c = Cache.create ~line_size:64 ~capacity_lines:1 ~nprocs:2 () in
  ignore (Cache.read c 0 ~addr:0 ~len:8);
  ignore (Cache.read c 1 ~addr:0 ~len:8);
  ignore (Cache.read c 0 ~addr:64 ~len:8);
  (* proc 0 evicts line 0 *)
  let s = Cache.read c 1 ~addr:0 ~len:8 in
  Alcotest.(check int) "proc 1 still hits line 0" 1 s.Cache.hits

let test_infinite_cache_never_evicts () =
  let c = Cache.create ~line_size:64 ~nprocs:1 () in
  for i = 0 to 9999 do
    ignore (Cache.read c 0 ~addr:(i * 64) ~len:8)
  done;
  Alcotest.(check int) "no evictions" 0 (Cache.stats c 0).Cache.p_evictions;
  let s = Cache.read c 0 ~addr:0 ~len:8 in
  Alcotest.(check int) "first line still cached" 1 s.Cache.hits

(* --- NUMA topology --- *)

let test_cross_node_counted () =
  (* Procs 0,1 on node 0; procs 2,3 on node 1. *)
  let c = Cache.create ~line_size:64 ~node_of:(fun p -> p / 2) ~nprocs:4 () in
  ignore (Cache.write c 0 ~addr:0 ~len:8);
  (* Same-node write ping-pong: no cross-node events. *)
  let s = Cache.write c 1 ~addr:0 ~len:8 in
  Alcotest.(check int) "same node free" 0 s.Cache.cross_node_events;
  (* Cross-node invalidation: one event. *)
  let s = Cache.write c 2 ~addr:0 ~len:8 in
  Alcotest.(check int) "cross node counted" 1 s.Cache.cross_node_events;
  (* Cross-node read service: one event. *)
  let s = Cache.read c 0 ~addr:0 ~len:8 in
  Alcotest.(check int) "cross read counted" 1 s.Cache.cross_node_events;
  Alcotest.(check int) "total" 2 (Cache.total_cross_node_events c)

let test_flat_machine_no_cross_node () =
  let c = mk () in
  ignore (Cache.write c 0 ~addr:0 ~len:8);
  let s = Cache.write c 3 ~addr:0 ~len:8 in
  Alcotest.(check int) "flat: never cross-node" 0 s.Cache.cross_node_events

let test_numa_costs_charged_in_sim () =
  (* Two procs ping-ponging one line: same sim but with a topology must
     cost strictly more. *)
  let run topo =
    let sim =
      match topo with
      | false -> Sim.create ~nprocs:2 ()
      | true -> Sim.create ~node_of:(fun p -> p) ~nprocs:2 ()
    in
    for _ = 0 to 1 do
      ignore
        (Sim.spawn sim (fun () ->
             for _ = 1 to 100 do
               Sim.write ~addr:4096 ~len:8
             done))
    done;
    Sim.run sim;
    Sim.total_cycles sim
  in
  let flat = run false and numa = run true in
  Alcotest.(check bool) (Printf.sprintf "numa (%d) > flat (%d)" numa flat) true (numa > flat)

(* --- domain-map validation: out-of-range and non-contiguous ids --- *)

let expect_invalid name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  | exception Invalid_argument _ -> ()

let test_reject_out_of_range_ids () =
  expect_invalid "negative node id" (fun () ->
      Cache.create ~node_of:(fun p -> if p = 1 then -1 else 0) ~nprocs:4 ());
  expect_invalid "node id >= nprocs" (fun () ->
      Cache.create ~node_of:(fun p -> if p = 3 then 4 else 0) ~nprocs:4 ());
  expect_invalid "socket id out of range" (fun () -> Cache.create ~socket_of:(fun _ -> 7) ~nprocs:4 ())

let test_reject_non_contiguous_ids () =
  (* Node ids {0, 2}: id 1 unused — a gap would make every event against
     the phantom node "remote" and silently skew the counters. *)
  expect_invalid "gap in node ids" (fun () ->
      Cache.create ~node_of:(fun p -> if p < 2 then 0 else 2) ~nprocs:4 ());
  expect_invalid "gap in socket ids" (fun () ->
      Cache.create ~socket_of:(fun p -> if p = 0 then 0 else 2) ~nprocs:4 ());
  (* Id 0 itself unused. *)
  expect_invalid "ids not starting at 0" (fun () -> Cache.create ~node_of:(fun _ -> 1) ~nprocs:4 ())

let test_valid_maps_accepted_and_queried () =
  let c = Cache.create ~node_of:(fun p -> p / 2) ~socket_of:(fun p -> p / 2) ~nprocs:4 () in
  Alcotest.(check int) "node of proc 0" 0 (Cache.node_of c 0);
  Alcotest.(check int) "node of proc 3" 1 (Cache.node_of c 3);
  Alcotest.(check int) "socket of proc 2" 1 (Cache.socket_of c 2);
  (* A socket-crossing write counts in both cross-domain counters. *)
  ignore (Cache.write c 0 ~addr:0 ~len:8);
  ignore (Cache.write c 2 ~addr:0 ~len:8);
  Alcotest.(check int) "cross-node counted" 1 (Cache.total_cross_node_events c);
  Alcotest.(check int) "cross-socket counted" 1 (Cache.total_cross_socket_events c)

(* Property: invalidations sent and received balance globally, and every
   access is classified exactly once. *)
let test_counters_balance =
  QCheck.Test.make ~name:"Cache invalidations balance, classification total" ~count:200
    QCheck.(list (triple (int_range 0 3) (int_range 0 63) bool))
    (fun ops ->
      let c = mk () in
      let naccesses = List.length ops in
      List.iter
        (fun (p, slot, w) ->
          let addr = slot * 8 in
          if w then ignore (Cache.write c p ~addr ~len:8) else ignore (Cache.read c p ~addr ~len:8))
        ops;
      let sent = ref 0 and recv = ref 0 and classified = ref 0 in
      for p = 0 to 3 do
        let s = Cache.stats c p in
        sent := !sent + s.Cache.p_invalidations_sent;
        recv := !recv + s.Cache.p_invalidations_received;
        classified := !classified + s.Cache.p_hits + s.Cache.p_cold_misses + s.Cache.p_coherence_misses
      done;
      !sent = !recv && !classified = naccesses)

let () =
  Alcotest.run "cache"
    [
      ( "transitions",
        [
          Alcotest.test_case "cold first touch" `Quick test_first_touch_is_cold;
          Alcotest.test_case "hit second touch" `Quick test_second_touch_hits;
          Alcotest.test_case "read sharing" `Quick test_read_sharing_no_invalidation;
          Alcotest.test_case "write invalidates" `Quick test_write_invalidates_readers;
          Alcotest.test_case "upgrade" `Quick test_upgrade_from_shared_is_hit;
          Alcotest.test_case "write ping-pong" `Quick test_write_write_pingpong;
          Alcotest.test_case "distinct lines" `Quick test_distinct_lines_independent;
          Alcotest.test_case "multi-line access" `Quick test_multi_line_access;
        ] );
      ( "stats",
        [
          Alcotest.test_case "reset" `Quick test_reset_stats_keeps_directory;
          Alcotest.test_case "bad args" `Quick test_bad_args;
          QCheck_alcotest.to_alcotest test_counters_balance;
        ] );
      ( "numa",
        [
          Alcotest.test_case "cross-node counted" `Quick test_cross_node_counted;
          Alcotest.test_case "flat has none" `Quick test_flat_machine_no_cross_node;
          Alcotest.test_case "sim charges surcharge" `Quick test_numa_costs_charged_in_sim;
        ] );
      ( "topology validation",
        [
          Alcotest.test_case "out-of-range ids rejected" `Quick test_reject_out_of_range_ids;
          Alcotest.test_case "non-contiguous ids rejected" `Quick test_reject_non_contiguous_ids;
          Alcotest.test_case "valid maps accepted" `Quick test_valid_maps_accepted_and_queried;
        ] );
      ( "capacity",
        [
          Alcotest.test_case "evicts LRU" `Quick test_capacity_evicts_lru;
          Alcotest.test_case "LRU order" `Quick test_capacity_lru_order_updated;
          Alcotest.test_case "per processor" `Quick test_capacity_per_processor;
          Alcotest.test_case "infinite never evicts" `Quick test_infinite_cache_never_evicts;
        ] );
    ]
