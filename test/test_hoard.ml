(* The Hoard allocator: API behaviour, the emptiness invariant, superblock
   transfer, blowup bounds and multiprocessor operation on the simulator. *)

let cfg = Hoard_config.default

let mk () =
  let pf = Platform.host () in
  let h = Hoard.create pf in
  (h, Hoard.allocator h)

let test_malloc_returns_usable_block () =
  let _, a = mk () in
  let p = a.Alloc_intf.malloc 100 in
  Alcotest.(check bool) "usable >= request" true (a.Alloc_intf.usable_size p >= 100);
  a.Alloc_intf.free p;
  a.Alloc_intf.check ()

let test_live_blocks_distinct () =
  let _, a = mk () in
  let ps = List.init 500 (fun i -> a.Alloc_intf.malloc (8 + (i mod 200))) in
  let sorted = List.sort compare ps in
  let rec distinct = function
    | x :: (y :: _ as rest) -> x <> y && distinct rest
    | _ -> true
  in
  Alcotest.(check bool) "distinct addresses" true (distinct sorted);
  List.iter a.Alloc_intf.free ps;
  a.Alloc_intf.check ();
  Alcotest.(check int) "nothing live" 0 (a.Alloc_intf.stats ()).Alloc_stats.live_bytes

let test_malloc_zero_rejected () =
  let _, a = mk () in
  Alcotest.check_raises "size 0" (Invalid_argument "Hoard.malloc: size must be positive") (fun () ->
      ignore (a.Alloc_intf.malloc 0))

let test_free_foreign_rejected () =
  let _, a = mk () in
  ignore (a.Alloc_intf.malloc 64);
  Alcotest.check_raises "foreign" (Invalid_argument "Hoard.free: foreign pointer") (fun () ->
      a.Alloc_intf.free 0xDEAD000)

let test_double_free_detected () =
  let _, a = mk () in
  let p = a.Alloc_intf.malloc 64 in
  a.Alloc_intf.free p;
  Alcotest.check_raises "double free" (Failure "Superblock.free_block: double free") (fun () ->
      a.Alloc_intf.free p)

let test_large_objects () =
  let _, a = mk () in
  let threshold = Hoard_config.max_small cfg in
  let p = a.Alloc_intf.malloc (threshold + 1) in
  Alcotest.(check bool) "usable" true (a.Alloc_intf.usable_size p >= threshold + 1);
  let q = a.Alloc_intf.malloc (10 * 8192) in
  a.Alloc_intf.free p;
  a.Alloc_intf.free q;
  let s = a.Alloc_intf.stats () in
  Alcotest.(check int) "live zero" 0 s.Alloc_stats.live_bytes;
  Alcotest.(check int) "held zero (large released)" 0 s.Alloc_stats.held_bytes

let test_boundary_sizes () =
  let _, a = mk () in
  let threshold = Hoard_config.max_small cfg in
  List.iter
    (fun size ->
      let p = a.Alloc_intf.malloc size in
      Alcotest.(check bool) (Printf.sprintf "size %d" size) true (a.Alloc_intf.usable_size p >= size);
      a.Alloc_intf.free p;
      a.Alloc_intf.check ())
    [ 1; 7; 8; 9; 63; 64; 65; threshold - 1; threshold; threshold + 1; 8192; 8193 ]

let test_memory_reused_after_free () =
  let _, a = mk () in
  let p1 = a.Alloc_intf.malloc 64 in
  a.Alloc_intf.free p1;
  let p2 = a.Alloc_intf.malloc 64 in
  Alcotest.(check int) "same block reused (LIFO)" p1 p2

let test_empty_superblocks_released_to_os () =
  let pf = Platform.host () in
  let h = Hoard.create pf in
  let a = Hoard.allocator h in
  (* Fill many superblocks, then free everything: held memory must shrink
     to at most the release threshold (+1 in the local heap). *)
  let ps = List.init 5000 (fun _ -> a.Alloc_intf.malloc 64) in
  let peak = (a.Alloc_intf.stats ()).Alloc_stats.held_bytes in
  List.iter a.Alloc_intf.free ps;
  let after = (a.Alloc_intf.stats ()).Alloc_stats.held_bytes in
  Alcotest.(check bool)
    (Printf.sprintf "held shrank (%d -> %d)" peak after)
    true
    (after <= (cfg.Hoard_config.release_threshold + cfg.Hoard_config.slack + 2) * cfg.Hoard_config.sb_size);
  Alcotest.(check bool) "unmaps happened" true ((a.Alloc_intf.stats ()).Alloc_stats.os_unmaps > 0);
  a.Alloc_intf.check ()

let test_invariant_after_frees () =
  let pf = Platform.host () in
  let h = Hoard.create pf in
  let a = Hoard.allocator h in
  let rng = Rng.create 99 in
  let live = ref [] in
  for _ = 1 to 3000 do
    if Rng.bool rng || !live = [] then live := a.Alloc_intf.malloc (Rng.int_in rng 8 512) :: !live
    else begin
      let idx = Rng.int rng (List.length !live) in
      let p = List.nth !live idx in
      live := List.filteri (fun i _ -> i <> idx) !live;
      let u_before = (Hoard.heap_info h 1).Hoard.u_bytes in
      let ok_before = Hoard.invariant_holds h ~heap_id:1 in
      a.Alloc_intf.free p;
      (* The paper's inductive guarantee: if the emptiness invariant held
         before a free into a heap, moving one f-empty superblock restores
         it afterwards. (A malloc that maps a fresh superblock may break
         it; frees then converge it back, one transfer at a time.) Only
         check heap 1 when the free actually debited it. *)
      if ok_before && (Hoard.heap_info h 1).Hoard.u_bytes < u_before then
        Alcotest.(check bool) "invariant preserved by free" true (Hoard.invariant_holds h ~heap_id:1)
    end
  done;
  a.Alloc_intf.check ()

let test_transfer_to_global_happens () =
  let pf = Platform.host () in
  let h = Hoard.create pf in
  let a = Hoard.allocator h in
  let ps = List.init 4000 (fun _ -> a.Alloc_intf.malloc 32) in
  List.iter a.Alloc_intf.free ps;
  let s = a.Alloc_intf.stats () in
  Alcotest.(check bool) "superblocks crossed to global" true (s.Alloc_stats.sb_to_global > 0);
  ignore h

let test_superblocks_return_from_global () =
  let pf = Platform.host () in
  let h = Hoard.create ~config:{ cfg with Hoard_config.release_to_os = false } pf in
  let a = Hoard.allocator h in
  let ps = List.init 4000 (fun _ -> a.Alloc_intf.malloc 32) in
  List.iter a.Alloc_intf.free ps;
  (* Everything sits in the global heap now; allocating again must pull
     superblocks back rather than mapping new memory. *)
  let maps_before = (a.Alloc_intf.stats ()).Alloc_stats.os_maps in
  let ps = List.init 4000 (fun _ -> a.Alloc_intf.malloc 32) in
  let s = a.Alloc_intf.stats () in
  Alcotest.(check int) "no new OS memory" maps_before s.Alloc_stats.os_maps;
  Alcotest.(check bool) "transfers from global" true (s.Alloc_stats.sb_from_global > 0);
  List.iter a.Alloc_intf.free ps;
  a.Alloc_intf.check ()

let test_blowup_bounded_producer_consumer () =
  (* The paper's adversary: producer allocates a batch, consumer frees it,
     repeatedly. Hoard's held memory must stay O(U + P), not grow with the
     number of rounds. *)
  let sim = Sim.create ~nprocs:2 () in
  let pf = Sim.platform sim in
  let h = Hoard.create pf in
  let a = Hoard.allocator h in
  let rounds = 50 and batch = 200 in
  let mailbox = ref [] in
  let b = Sim.new_barrier sim ~parties:2 in
  ignore
    (Sim.spawn sim ~proc:0 (fun () ->
         for _ = 1 to rounds do
           mailbox := List.init batch (fun _ -> a.Alloc_intf.malloc 64);
           Sim.barrier_wait b;
           (* consumer frees *)
           Sim.barrier_wait b
         done));
  ignore
    (Sim.spawn sim ~proc:1 (fun () ->
         for _ = 1 to rounds do
           Sim.barrier_wait b;
           List.iter a.Alloc_intf.free !mailbox;
           mailbox := [];
           Sim.barrier_wait b
         done));
  Sim.run sim;
  let s = a.Alloc_intf.stats () in
  let u_peak = s.Alloc_stats.peak_live_bytes in
  let a_peak = s.Alloc_stats.peak_held_bytes in
  (* Bound: (1/(1-f)) * U + slack for partially-filled superblocks per
     heap/class in play, far below the unbounded growth of pure-private. *)
  let s_bytes = cfg.Hoard_config.sb_size in
  let slack_sbs = (cfg.Hoard_config.slack * 3) + cfg.Hoard_config.release_threshold + 4 in
  let bound = (2 * u_peak) + (slack_sbs * s_bytes) in
  Alcotest.(check bool)
    (Printf.sprintf "A(%d) <= bound(%d), U=%d" a_peak bound u_peak)
    true (a_peak <= bound);
  Alcotest.(check int) "all freed" 0 s.Alloc_stats.live_bytes;
  a.Alloc_intf.check ()

let test_remote_free_returns_to_owner () =
  let sim = Sim.create ~nprocs:2 () in
  let pf = Sim.platform sim in
  let h = Hoard.create pf in
  let a = Hoard.allocator h in
  let ps = ref [] in
  let b = Sim.new_barrier sim ~parties:2 in
  ignore
    (Sim.spawn sim ~proc:0 (fun () ->
         ps := List.init 100 (fun _ -> a.Alloc_intf.malloc 64);
         Sim.barrier_wait b));
  ignore
    (Sim.spawn sim ~proc:1 (fun () ->
         Sim.barrier_wait b;
         List.iter a.Alloc_intf.free !ps));
  Sim.run sim;
  let s = a.Alloc_intf.stats () in
  Alcotest.(check bool) "remote frees recorded" true (s.Alloc_stats.remote_frees > 0);
  Alcotest.(check int) "nothing live" 0 s.Alloc_stats.live_bytes;
  a.Alloc_intf.check ()

let test_heaps_info () =
  let pf = Platform.host ~nprocs:1 () in
  let h = Hoard.create pf in
  let a = Hoard.allocator h in
  Alcotest.(check int) "one per-proc heap" 1 (Hoard.nheaps h);
  let p = a.Alloc_intf.malloc 64 in
  let info = Hoard.heap_info h 1 in
  Alcotest.(check int) "u = one block" 64 info.Hoard.u_bytes;
  Alcotest.(check int) "a = one superblock" cfg.Hoard_config.sb_size info.Hoard.a_bytes;
  a.Alloc_intf.free p

let test_nheaps_override () =
  let pf = Platform.host ~nprocs:4 () in
  let h = Hoard.create ~config:{ cfg with Hoard_config.nheaps = Some 2 } pf in
  Alcotest.(check int) "two heaps" 2 (Hoard.nheaps h)

let test_stats_requested_bytes () =
  let _, a = mk () in
  let p = a.Alloc_intf.malloc 100 in
  let q = a.Alloc_intf.malloc 200 in
  let s = a.Alloc_intf.stats () in
  Alcotest.(check int) "requested" 300 s.Alloc_stats.bytes_requested;
  Alcotest.(check int) "mallocs" 2 s.Alloc_stats.mallocs;
  a.Alloc_intf.free p;
  a.Alloc_intf.free q

(* Property: random alloc/free sequences keep the allocator structurally
   sound and the address space consistent with a shadow model. *)
let test_random_ops_sound =
  QCheck.Test.make ~name:"Hoard sound under random op sequences" ~count:30
    QCheck.(list (pair (int_range 1 5000) bool))
    (fun ops ->
      let pf = Platform.host () in
      let h = Hoard.create pf in
      let a = Hoard.allocator h in
      let live = ref [] in
      List.iter
        (fun (size, do_alloc) ->
          if do_alloc || !live = [] then begin
            let p = a.Alloc_intf.malloc size in
            if a.Alloc_intf.usable_size p < size then failwith "usable too small";
            live := (p, size) :: !live
          end
          else begin
            match !live with
            | (p, _) :: rest ->
              a.Alloc_intf.free p;
              live := rest
            | [] -> ()
          end)
        ops;
      a.Alloc_intf.check ();
      (* Live blocks must not overlap. *)
      let spans = List.map (fun (p, _) -> (p, a.Alloc_intf.usable_size p)) !live in
      let sorted = List.sort compare spans in
      let rec disjoint = function
        | (a1, s1) :: ((a2, _) :: _ as rest) -> a1 + s1 <= a2 && disjoint rest
        | _ -> true
      in
      List.iter (fun (p, _) -> a.Alloc_intf.free p) !live;
      a.Alloc_intf.check ();
      disjoint sorted && (a.Alloc_intf.stats ()).Alloc_stats.live_bytes = 0)

let test_tiny_superblocks () =
  (* S = 4096 (one page): exercises the boundary where few blocks fit per
     superblock and large objects begin at 2 KiB. *)
  let config = { cfg with Hoard_config.sb_size = 4096 } in
  let pf = Platform.host () in
  let h = Hoard.create ~config pf in
  let a = Hoard.allocator h in
  let ps = List.init 500 (fun i -> a.Alloc_intf.malloc (1 + (i mod 3000))) in
  a.Alloc_intf.check ();
  List.iter a.Alloc_intf.free ps;
  a.Alloc_intf.check ();
  Alcotest.(check int) "clean" 0 (a.Alloc_intf.stats ()).Alloc_stats.live_bytes

let test_exact_superblock_fill () =
  (* Fill size class 64 across exactly several superblocks and free in
     allocation order (anti-LIFO), stressing group migration. *)
  let pf = Platform.host () in
  let h = Hoard.create pf in
  let a = Hoard.allocator h in
  let per_sb = (8192 - 64) / 64 in
  let ps = Array.init (3 * per_sb) (fun _ -> a.Alloc_intf.malloc 64) in
  a.Alloc_intf.check ();
  Array.iter a.Alloc_intf.free ps;
  a.Alloc_intf.check ();
  Alcotest.(check int) "clean" 0 (a.Alloc_intf.stats ()).Alloc_stats.live_bytes

let test_sim_random_stress =
  QCheck.Test.make ~name:"hoard sound under random multiprocessor interleavings" ~count:10
    QCheck.(pair (int_range 2 6) (int_range 1 500))
    (fun (nprocs, seed) ->
      let nprocs = max 2 (min 6 nprocs) and seed = max 1 seed in
      let sim = Sim.create ~nprocs () in
      let pf = Sim.platform sim in
      let h = Hoard.create pf in
      let a = Hoard.allocator h in
      (* Shared mailbox: threads sometimes free blocks allocated by
         others (racy by design; the mailbox is plain shared state whose
         accesses are atomic at effect granularity). *)
      let mailbox = ref [] in
      let barrier = Sim.new_barrier sim ~parties:nprocs in
      for t = 0 to nprocs - 1 do
        ignore
          (Sim.spawn sim (fun () ->
               let rng = Rng.create (seed + (t * 7919)) in
               let mine = ref [] in
               for _ = 1 to 200 do
                 match Rng.int rng 4 with
                 | 0 | 1 -> mine := a.Alloc_intf.malloc (Rng.int_in rng 1 5000) :: !mine
                 | 2 -> (
                   match !mine with
                   | p :: rest ->
                     if Rng.bool rng then a.Alloc_intf.free p
                     else mailbox := p :: !mailbox;
                     mine := rest
                   | [] -> ())
                 | _ -> (
                   match !mailbox with
                   | p :: rest ->
                     mailbox := rest;
                     a.Alloc_intf.free p
                   | [] -> ())
               done;
               List.iter a.Alloc_intf.free !mine;
               (* Everyone done churning: thread 0 drains what remains. *)
               Sim.barrier_wait barrier;
               if t = 0 then begin
                 List.iter a.Alloc_intf.free !mailbox;
                 mailbox := []
               end))
      done;
      Sim.run sim;
      a.Alloc_intf.check ();
      (a.Alloc_intf.stats ()).Alloc_stats.live_bytes = 0)

let test_fuzzed_schedules_sound =
  QCheck.Test.make ~name:"hoard sound under fuzzed schedules" ~count:15 (QCheck.int_range 1 10_000)
    (fun seed ->
      let sim = Sim.create ~fuzz_schedule:seed ~nprocs:4 () in
      let pf = Sim.platform sim in
      let h = Hoard.create pf in
      let a = Hoard.allocator h in
      let barrier = Sim.new_barrier sim ~parties:4 in
      let box = ref [] in
      for t = 0 to 3 do
        ignore
          (Sim.spawn sim (fun () ->
               let rng = Rng.create (seed + t) in
               let mine = ref [] in
               for _ = 1 to 150 do
                 if Rng.bool rng then mine := a.Alloc_intf.malloc (Rng.int_in rng 8 600) :: !mine
                 else begin
                   match !mine with
                   | p :: rest ->
                     if Rng.bool rng then a.Alloc_intf.free p else box := p :: !box;
                     mine := rest
                   | [] -> ()
                 end
               done;
               List.iter a.Alloc_intf.free !mine;
               Sim.barrier_wait barrier;
               if t = 0 then begin
                 List.iter a.Alloc_intf.free !box;
                 box := []
               end))
      done;
      Sim.run sim;
      a.Alloc_intf.check ();
      (a.Alloc_intf.stats ()).Alloc_stats.live_bytes = 0)

let test_assign_by_tid_spreads_heaps () =
  (* 8 threads on 2 processors: by-proc mapping uses 2 heaps, tid hashing
     with 8 heaps uses more of them. *)
  let used_heaps config =
    let sim = Sim.create ~nprocs:2 () in
    let pf = Sim.platform sim in
    let h = Hoard.create ~config pf in
    let a = Hoard.allocator h in
    for _ = 0 to 7 do
      ignore
        (Sim.spawn sim (fun () ->
             let ps = List.init 40 (fun _ -> a.Alloc_intf.malloc 64) in
             List.iter a.Alloc_intf.free ps))
    done;
    Sim.run sim;
    let used = ref 0 in
    for i = 1 to Hoard.nheaps h do
      let info = Hoard.heap_info h i in
      if info.Hoard.a_bytes > 0 || info.Hoard.superblocks > 0 then incr used
    done;
    (* Heaps that returned everything to the global heap still count if
       they ever held memory; approximate via stats: count heaps with any
       residual superblocks, falling back to >= 1. *)
    max 1 !used
  in
  let by_proc = used_heaps { cfg with Hoard_config.nheaps = Some 8 } in
  let by_tid = used_heaps { cfg with Hoard_config.nheaps = Some 8; assign_by_tid = true } in
  Alcotest.(check bool)
    (Printf.sprintf "tid hashing uses more heaps (%d > %d)" by_tid by_proc)
    true (by_tid > by_proc)

let test_heap_info_reconciles_with_stats () =
  let pf = Platform.host () in
  let h = Hoard.create ~config:{ cfg with Hoard_config.release_to_os = false } pf in
  let a = Hoard.allocator h in
  let rng = Rng.create 2026 in
  let live = ref [] in
  for _ = 1 to 2000 do
    if Rng.bool rng || !live = [] then live := a.Alloc_intf.malloc (Rng.int_in rng 8 2000) :: !live
    else begin
      match !live with
      | p :: rest ->
        a.Alloc_intf.free p;
        live := rest
      | [] -> ()
    end
  done;
  (* Sum of per-heap holdings must equal the allocator's held bytes (no
     large objects in this size range beyond 2000 < S/2? sizes up to 2000
     are small; keep an eye on the large path via its own accounting). *)
  let sum_a = ref 0 and sum_u = ref 0 in
  for i = 0 to Hoard.nheaps h do
    let info = Hoard.heap_info h i in
    sum_a := !sum_a + info.Hoard.a_bytes;
    sum_u := !sum_u + info.Hoard.u_bytes
  done;
  let s = a.Alloc_intf.stats () in
  Alcotest.(check int) "sum of heap a = held" s.Alloc_stats.held_bytes !sum_a;
  Alcotest.(check int) "sum of heap u = live" s.Alloc_stats.live_bytes !sum_u;
  List.iter a.Alloc_intf.free !live;
  a.Alloc_intf.check ()

let test_usable_size_matches_class () =
  let pf = Platform.host () in
  let h = Hoard.create pf in
  let a = Hoard.allocator h in
  let classes = Size_class.create ~max_small:(Hoard_config.max_small cfg) () in
  for size = 1 to 600 do
    let p = a.Alloc_intf.malloc size in
    let expected = Size_class.size_of_class classes (Size_class.class_of_size classes size) in
    Alcotest.(check int) (Printf.sprintf "usable for %d" size) expected (a.Alloc_intf.usable_size p);
    a.Alloc_intf.free p
  done

(* --- the lock-free front end: per-thread caches + remote-free queues --- *)

let mk_fe ?(k = 8) () =
  let pf = Platform.host () in
  let h = Hoard.create ~config:{ cfg with Hoard_config.front_end = k } pf in
  (h, Hoard.allocator h)

let test_front_end_off_by_default () =
  (* Paper-fidelity experiments must never pick the front end up by
     accident. *)
  Alcotest.(check int) "default front_end" 0 Hoard_config.default.Hoard_config.front_end

let test_cache_bounded_and_flushed () =
  let k = 8 in
  let h, a = mk_fe ~k () in
  (* Hammer a single size class far past K: the cache must stay bounded,
     evicting overflow back through the heap. *)
  let ps = List.init 300 (fun _ -> a.Alloc_intf.malloc 64) in
  List.iter a.Alloc_intf.free ps;
  List.iter
    (fun (tid, counts) ->
      Array.iteri
        (fun c n ->
          Alcotest.(check bool) (Printf.sprintf "tid %d class %d: %d <= K" tid c n) true (n <= k))
        counts)
    (Hoard.cache_counts h);
  let s = a.Alloc_intf.stats () in
  Alcotest.(check bool) "cache hits happened" true (s.Alloc_stats.cache_hits > 0);
  Alcotest.(check bool) "overflow was flushed" true (s.Alloc_stats.cache_flushes > 0);
  Hoard.flush_caches h;
  Alcotest.(check bool) "caches empty after flush" true
    (List.for_all (fun (_, counts) -> Array.for_all (( = ) 0) counts) (Hoard.cache_counts h));
  Alcotest.(check bool) "queues empty after flush" true
    (Array.for_all (( = ) 0) (Hoard.remote_queue_lengths h));
  Alcotest.(check int) "nothing live" 0 (a.Alloc_intf.stats ()).Alloc_stats.live_bytes;
  a.Alloc_intf.check ()

let test_check_exact_with_caches_populated () =
  let h, a = mk_fe () in
  let ps = List.init 400 (fun i -> a.Alloc_intf.malloc (8 + (i mod 900))) in
  (* Caches hold fill surplus: check must reconcile exactly anyway. *)
  a.Alloc_intf.check ();
  List.iter a.Alloc_intf.free ps;
  (* Caches now hold freed blocks, still charged to their heaps. *)
  a.Alloc_intf.check ();
  Hoard.flush_caches h;
  a.Alloc_intf.check ();
  Alcotest.(check int) "live zero once flushed" 0 (a.Alloc_intf.stats ()).Alloc_stats.live_bytes

let test_double_free_cached_detected () =
  let _, a = mk_fe () in
  let p = a.Alloc_intf.malloc 64 in
  a.Alloc_intf.free p;
  Alcotest.check_raises "double free while cached" (Failure "Hoard.free: double free (cached)")
    (fun () -> a.Alloc_intf.free p)

let test_remote_queue_drain_reuses_memory () =
  (* Producer on proc 0, consumer on proc 1: the consumer's frees land on
     the producer heap's remote-free queue; the producer's next slow path
     drains them, so re-allocating must not map new OS memory. *)
  let sim = Sim.create ~nprocs:2 () in
  let pf = Sim.platform sim in
  let config = { cfg with Hoard_config.front_end = 8; release_to_os = false } in
  let h = Hoard.create ~config pf in
  let a = Hoard.allocator h in
  let ps = ref [] in
  let maps = ref (-1, -1) in
  let b = Sim.new_barrier sim ~parties:2 in
  ignore
    (Sim.spawn sim ~proc:0 (fun () ->
         ps := List.init 200 (fun _ -> a.Alloc_intf.malloc 64);
         Sim.barrier_wait b;
         (* consumer frees and flushes *)
         Sim.barrier_wait b;
         let before = (a.Alloc_intf.stats ()).Alloc_stats.os_maps in
         let qs = List.init 200 (fun _ -> a.Alloc_intf.malloc 64) in
         maps := (before, (a.Alloc_intf.stats ()).Alloc_stats.os_maps);
         List.iter a.Alloc_intf.free qs));
  ignore
    (Sim.spawn sim ~proc:1 (fun () ->
         Sim.barrier_wait b;
         List.iter a.Alloc_intf.free !ps;
         (* Push everything out of this thread's cache onto the owners'
            remote-free queues before signalling the producer. *)
         a.Alloc_intf.flush ();
         Sim.barrier_wait b));
  Sim.run sim;
  let before, after = !maps in
  Alcotest.(check int) "no new OS maps after drain" before after;
  let s = a.Alloc_intf.stats () in
  Alcotest.(check bool) "remote enqueues recorded" true (s.Alloc_stats.remote_enqueues > 0);
  Alcotest.(check bool) "remote drains recorded" true (s.Alloc_stats.remote_drains > 0);
  Hoard.flush_caches h;
  a.Alloc_intf.check ();
  Alcotest.(check int) "nothing live" 0 (a.Alloc_intf.stats ()).Alloc_stats.live_bytes

let test_front_end_cuts_lock_traffic () =
  (* The PR's acceptance bar: on larson and threadtest at 4 simulated
     processors, the front end takes >= 5x fewer heap-lock acquisitions
     per malloc/free pair than the paper-exact configuration. *)
  let nprocs = 4 in
  let acqs_per_pair ~front_end name =
    let w =
      match Experiments.workload name Experiments.Quick with
      | Some w -> w
      | None -> Alcotest.failf "unknown workload %s" name
    in
    let config = { cfg with Hoard_config.front_end } in
    let r = Runner.run (Runner.spec w (Hoard.factory ~config ()) ~nprocs) in
    let acqs =
      List.fold_left
        (fun acc (lname, n, _) ->
          if String.starts_with ~prefix:"hoard.heap" lname then acc + n else acc)
        0 r.Runner.r_lock_stats
    in
    let pairs = r.Runner.r_stats.Alloc_stats.mallocs + r.Runner.r_stats.Alloc_stats.frees in
    float_of_int acqs /. float_of_int (max 1 pairs)
  in
  List.iter
    (fun name ->
      let base = acqs_per_pair ~front_end:0 name in
      let fe = acqs_per_pair ~front_end:32 name in
      Alcotest.(check bool)
        (Printf.sprintf "%s: %.4f acqs/pair with front end vs %.4f without (>= 5x)" name fe base)
        true (base >= 5.0 *. fe))
    [ "larson"; "threadtest" ]

let test_cross_thread_double_free_cached () =
  (* The regression this PR fixes: a freed block sitting in thread 0's
     front-end cache is bitmap-live, so a double free of the same address
     from ANOTHER thread used to slip past the old guard (which only
     consulted the caller's own cache) and hand the block out twice. The
     per-block custody bit must reject it from any thread. *)
  let sim = Sim.create ~nprocs:2 () in
  let pf = Sim.platform sim in
  let h = Hoard.create ~config:{ cfg with Hoard_config.front_end = 8 } pf in
  let a = Hoard.allocator h in
  let b = Sim.new_barrier sim ~parties:2 in
  let target = ref 0 in
  let second = ref "no exception" in
  ignore
    (Sim.spawn sim ~proc:0 (fun () ->
         let p = a.Alloc_intf.malloc 64 in
         target := p;
         a.Alloc_intf.free p;
         (* p is now cached (and still bitmap-live) in this thread. *)
         Sim.barrier_wait b));
  ignore
    (Sim.spawn sim ~proc:1 (fun () ->
         Sim.barrier_wait b;
         match a.Alloc_intf.free !target with
         | () -> ()
         | exception Failure msg -> second := msg));
  Sim.run sim;
  Alcotest.(check string) "cross-thread double free rejected" "Hoard.free: double free (cached)" !second;
  Hoard.flush_caches h;
  a.Alloc_intf.check ();
  Alcotest.(check int) "nothing live" 0 (a.Alloc_intf.stats ()).Alloc_stats.live_bytes

let test_recycled_tid_reflushes_on_exit () =
  (* Thread pools hand the same tid to successive workers. The exit flush
     used to be registered only when the cache was CREATED, on the domain
     alive at that moment — a later domain adopting the tid exited without
     flushing, leaking its cached blocks. Force the recycling by pinning
     self_tid, and demand the second domain's exit drains the cache too. *)
  let pf0 = Platform.host () in
  let pf = { pf0 with Platform.self_tid = (fun () -> 7) } in
  let h = Hoard.create ~config:{ cfg with Hoard_config.front_end = 8 } pf in
  let a = Hoard.allocator h in
  let worker () =
    let p = a.Alloc_intf.malloc 64 in
    a.Alloc_intf.free p
    (* p stays in tid 7's cache unless this domain's exit flushes it. *)
  in
  (* The exit flush surrenders cached blocks to the owning heap's remote
     queue, where they stay charged until a drain — so the observable is
     the cache itself, not live_bytes. *)
  let cache_empty () =
    List.for_all (fun (_, counts) -> Array.for_all (( = ) 0) counts) (Hoard.cache_counts h)
  in
  Domain.join (Domain.spawn worker);
  Alcotest.(check bool) "first worker's exit flushed its cache" true (cache_empty ());
  Domain.join (Domain.spawn worker);
  Alcotest.(check bool) "second worker (recycled tid) flushed too" true (cache_empty ());
  Hoard.flush_caches h;
  Alcotest.(check int) "every block recovered from the queues" 0
    (a.Alloc_intf.stats ()).Alloc_stats.live_bytes;
  a.Alloc_intf.check ();
  Platform.host_release pf0

let test_remote_forward_bounded () =
  (* Drain forwarding: blocks queued on a heap whose superblock then
     migrates are re-forwarded to the new owner's queue — boundedly.
     Choreography: t1 frees t0's blocks so two of SB1's land on heap 1's
     remote queue (cap 2); t0 then empties the heap far enough that SB1
     (2 pending blocks) transfers to the global heap, and its next drain
     forwards the stale entries to heap 0's queue. *)
  let sim = Sim.create ~nprocs:2 () in
  let pf = Sim.platform sim in
  let obs = Obs.create () in
  let config =
    {
      cfg with
      Hoard_config.sb_size = 4096;
      nheaps = Some 2;
      slack = 0;
      release_to_os = false;
      front_end = 8;
      remote_queue_cap = 2;
    }
  in
  let h = Hoard.create ~config ~obs pf in
  let a = Hoard.allocator h in
  let sb_size = config.Hoard_config.sb_size in
  let b = Sim.new_barrier sim ~parties:2 in
  let groups = ref [] in
  let held = ref [] in
  ignore
    (Sim.spawn sim ~proc:0 (fun () ->
         (* Fill three superblocks of one class on heap 1. *)
         let ps = Array.init 200 (fun _ -> a.Alloc_intf.malloc 64) in
         let by_base = Hashtbl.create 8 in
         Array.iter
           (fun p ->
             let base = p - (p mod sb_size) in
             Hashtbl.replace by_base base (p :: (Option.value (Hashtbl.find_opt by_base base) ~default:[])))
           ps;
         groups := Hashtbl.fold (fun _ g acc -> g :: acc) by_base [] |> List.sort (fun x y -> compare (List.length y) (List.length x));
         Sim.barrier_wait b;
         (* t1 queued two SB1 blocks on our heap. Free everything except
            SB1's queued blocks and three SB3 keepers, then flush: the
            trims exile SB1 (2 pending < SB3's 3 live, and SB3 stays as
            the class's protected last), and the flush's own drain meets
            the migrated entries and must forward them. *)
         Sim.barrier_wait b;
         (match !groups with
          | sb1 :: rest ->
            let followers = List.concat rest in
            let keep, free_now_ =
              match followers with
              | k1 :: k2 :: k3 :: tl -> ([ k1; k2; k3 ], tl)
              | _ -> Alcotest.fail "remote-forward: not enough blocks"
            in
            held := keep;
            List.iter a.Alloc_intf.free (List.filteri (fun i _ -> i >= 12) sb1);
            List.iter a.Alloc_intf.free free_now_;
            a.Alloc_intf.flush ();
            (* The forwarding under test has happened; release the keepers
               from inside the sim (the allocator is sim-backed). *)
            List.iter a.Alloc_intf.free !held;
            a.Alloc_intf.flush ()
          | [] -> Alcotest.fail "remote-forward: no superblocks")));
  ignore
    (Sim.spawn sim ~proc:1 (fun () ->
         Sim.barrier_wait b;
         (* Free 12 SB1 blocks from the wrong thread: 8 fill this thread's
            cache, the eviction offers 4 to heap 1's queue (cap 2), the
            flush pushes the rest through the locked path. *)
         (match !groups with
          | sb1 :: _ -> List.iter a.Alloc_intf.free (List.filteri (fun i _ -> i < 12) sb1)
          | [] -> Alcotest.fail "remote-forward: no superblocks");
         a.Alloc_intf.flush ();
         Sim.barrier_wait b));
  Sim.run sim;
  let s = a.Alloc_intf.stats () in
  Alcotest.(check bool)
    (Printf.sprintf "forwards recorded (%d)" s.Alloc_stats.remote_forwards)
    true (s.Alloc_stats.remote_forwards > 0);
  let fwd_events =
    List.fold_left (fun acc (_, r) -> acc + Event_ring.recorded_kind r Event_ring.Remote_forward) 0 (Obs.rings obs)
  in
  Alcotest.(check int) "one event per forwarded block" s.Alloc_stats.remote_forwards fwd_events;
  (* The bound the fix enforces: no queue ever exceeds 2x its cap. *)
  Array.iteri
    (fun id len ->
      Alcotest.(check bool)
        (Printf.sprintf "queue %d: %d <= 2*cap" id len)
        true
        (len <= 2 * config.Hoard_config.remote_queue_cap))
    (Hoard.remote_queue_lengths h);
  Hoard.flush_caches h;
  a.Alloc_intf.check ();
  Alcotest.(check int) "nothing live" 0 (a.Alloc_intf.stats ()).Alloc_stats.live_bytes

(* --- the lock-free empty-superblock shelf --- *)

let test_shelf_off_by_default () =
  Alcotest.(check int) "default shelf" 0 Hoard_config.default.Hoard_config.shelf;
  let _, a = mk () in
  let ps = List.init 3000 (fun _ -> a.Alloc_intf.malloc 64) in
  List.iter a.Alloc_intf.free ps;
  let s = a.Alloc_intf.stats () in
  Alcotest.(check int) "no shelf pushes" 0 s.Alloc_stats.shelf_pushes;
  Alcotest.(check int) "no shelf pops" 0 s.Alloc_stats.shelf_pops

let test_shelf_roundtrip () =
  (* Empty victims take the CAS route to the shelf; the next refill pops
     them back (reinitialised to the needed class) without touching the
     global lock. *)
  let pf = Platform.host () in
  let config = { cfg with Hoard_config.shelf = 2; slack = 0 } in
  let h = Hoard.create ~config pf in
  let a = Hoard.allocator h in
  let ps = List.init 3000 (fun _ -> a.Alloc_intf.malloc 64) in
  List.iter a.Alloc_intf.free ps;
  let s = a.Alloc_intf.stats () in
  Alcotest.(check bool) "pushes recorded" true (s.Alloc_stats.shelf_pushes > 0);
  Alcotest.(check bool) "shelf within cap" true (Hoard.shelf_length h <= config.Hoard_config.shelf);
  Alcotest.(check bool) "shelf stocked" true (Hoard.shelf_length h > 0);
  a.Alloc_intf.check ();
  (* A different size class: the pop must reinitialise the superblock. *)
  let qs = List.init 50 (fun _ -> a.Alloc_intf.malloc 256) in
  let s = a.Alloc_intf.stats () in
  Alcotest.(check bool) "pops recorded" true (s.Alloc_stats.shelf_pops > 0);
  List.iter a.Alloc_intf.free qs;
  a.Alloc_intf.check ();
  Alcotest.(check int) "nothing live" 0 (a.Alloc_intf.stats ()).Alloc_stats.live_bytes;
  Platform.host_release pf

let test_shelf_cuts_global_lock_traffic () =
  (* The non-blocking transfer path's acceptance bar: empty-superblock
     round trips that used to serialise on the global lock now complete
     with CAS only, so global-lock acquisitions must drop measurably. *)
  let nprocs = 4 in
  let global_acqs ~shelf name =
    let w =
      match Experiments.workload name Experiments.Quick with
      | Some w -> w
      | None -> Alcotest.failf "unknown workload %s" name
    in
    let config = { cfg with Hoard_config.shelf; slack = 0 } in
    let r = Runner.run (Runner.spec w (Hoard.factory ~config ()) ~nprocs) in
    List.fold_left
      (fun acc (lname, n, _) -> if lname = "hoard.heap0" then acc + n else acc)
      0 r.Runner.r_lock_stats
  in
  List.iter
    (fun name ->
      let base = global_acqs ~shelf:0 name in
      let shelved = global_acqs ~shelf:8 name in
      Alcotest.(check bool)
        (Printf.sprintf "%s: %d global-lock acquisitions with shelf vs %d without" name shelved base)
        true
        (shelved < base))
    [ "larson"; "threadtest" ]

(* --- the lock-free global heap (Global_index) --- *)

let test_global_locked_by_default () =
  Alcotest.(check bool) "default global mode" true
    (Hoard_config.default.Hoard_config.global = Hoard_config.Locked);
  let _, a = mk () in
  let ps = List.init 3000 (fun _ -> a.Alloc_intf.malloc 64) in
  List.iter a.Alloc_intf.free ps;
  let s = a.Alloc_intf.stats () in
  Alcotest.(check int) "no index pushes" 0 s.Alloc_stats.global_pushes;
  Alcotest.(check int) "no index pops" 0 s.Alloc_stats.global_pops

let test_global_lockfree_roundtrip () =
  (* Exiled superblocks take the publish route into the index; the next
     refill claims them back (reinitialised to the needed class) without
     ever touching a heap-0 lock. *)
  let pf = Platform.host () in
  let config =
    { cfg with Hoard_config.global = Hoard_config.Lockfree; slack = 0; release_to_os = false }
  in
  let h = Hoard.create ~config pf in
  let a = Hoard.allocator h in
  let ps = List.init 3000 (fun _ -> a.Alloc_intf.malloc 64) in
  List.iter a.Alloc_intf.free ps;
  let s = a.Alloc_intf.stats () in
  Alcotest.(check bool) "exiles published to the index" true (s.Alloc_stats.global_pushes > 0);
  Alcotest.(check bool) "index holds the exiles" true
    ((Hoard.heap_info h 0).Hoard.superblocks > 0);
  a.Alloc_intf.check ();
  (* A different size class: the claim must reinitialise an empty member. *)
  let qs = List.init 200 (fun _ -> a.Alloc_intf.malloc 256) in
  let s = a.Alloc_intf.stats () in
  Alcotest.(check bool) "claims recorded" true (s.Alloc_stats.global_pops > 0);
  List.iter a.Alloc_intf.free qs;
  a.Alloc_intf.check ();
  (* Frees into index members ride heap 0's deferred list and stay
     charged until drained; the quiescent flush settles them. *)
  Hoard.flush_caches h;
  a.Alloc_intf.check ();
  Alcotest.(check int) "nothing live" 0 (a.Alloc_intf.stats ()).Alloc_stats.live_bytes;
  Platform.host_release pf

let test_global_lockfree_zero_heap0_lock () =
  (* The tentpole's acceptance bar: the lock-free index does not cut
     heap-0 lock traffic, it eliminates it — zero acquisitions on a
     transfer-heavy multiprocessor workload, against a locked baseline
     that must show real traffic on the same run. *)
  let nprocs = 8 in
  let heap0_acqs config =
    let w =
      match Experiments.workload "threadtest" Experiments.Quick with
      | Some w -> w
      | None -> Alcotest.fail "unknown workload threadtest"
    in
    let r = Runner.run (Runner.spec w (Hoard.factory ~config ()) ~nprocs) in
    List.fold_left
      (fun acc (lname, n, _) -> if lname = "hoard.heap0" then acc + n else acc)
      0 r.Runner.r_lock_stats
  in
  let locked = { cfg with Hoard_config.front_end = 16; deferred = true; slack = 0 } in
  let base = heap0_acqs locked in
  let gl = heap0_acqs { locked with Hoard_config.global = Hoard_config.Lockfree } in
  Alcotest.(check bool)
    (Printf.sprintf "locked baseline exercises heap 0 (%d acquisitions)" base)
    true (base > 0);
  Alcotest.(check int) "lock-free global: zero heap-0 acquisitions" 0 gl

let test_orphan_adoptions_match_events () =
  (* Satellite: every adoption the exit path counts must trace exactly
     one Orphan_adopt event, in both global-heap modes — the lockfree
     exit publishes the whole orphan batch to the index, the locked exit
     moves it under one global-lock acquisition, and both account
     identically. *)
  List.iter
    (fun gmode ->
      let name = Hoard_config.global_mode_name gmode in
      let sim = Sim.create ~nprocs:2 () in
      let pf = Sim.platform sim in
      let obs = Obs.create () in
      let config =
        {
          cfg with
          Hoard_config.nheaps = Some 2;
          release_to_os = false;
          front_end = 4;
          deferred = (gmode = Hoard_config.Lockfree);
          global = gmode;
        }
      in
      let h = Hoard.create ~config ~obs pf in
      let a = Hoard.allocator h in
      let ps = ref [] in
      ignore
        (Sim.spawn sim ~proc:0 (fun () ->
             (* Leave every block live: the exit must orphan this heap's
                superblocks into the global heap, not release them. *)
             ps := List.init 120 (fun _ -> a.Alloc_intf.malloc 64);
             a.Alloc_intf.thread_exit ()));
      Sim.run sim;
      let s = a.Alloc_intf.stats () in
      Alcotest.(check bool)
        (Printf.sprintf "%s: adoptions happened (%d)" name s.Alloc_stats.orphan_adoptions)
        true
        (s.Alloc_stats.orphan_adoptions > 0);
      let ev =
        List.fold_left
          (fun acc (_, r) -> acc + Event_ring.recorded_kind r Event_ring.Orphan_adopt)
          0 (Obs.rings obs)
      in
      Alcotest.(check int)
        (Printf.sprintf "%s: one event per adoption" name)
        s.Alloc_stats.orphan_adoptions ev;
      Hoard.check h)
    [ Hoard_config.Locked; Hoard_config.Lockfree ]

(* --- the superblock reservoir --- *)

let mk_res ?(reservoir = 4) ?(release_threshold = 0) () =
  let pf = Platform.host ~vmem_backend:Vmem_backend.First_fit () in
  let config =
    { cfg with Hoard_config.reservoir; release_threshold; vmem_backend = Vmem_backend.First_fit }
  in
  let h = Hoard.create ~config pf in
  (h, Hoard.allocator h, config)

let test_reservoir_off_by_default () =
  (* Seed lifecycle must be untouched unless the knob is turned. *)
  Alcotest.(check int) "default reservoir" 0 Hoard_config.default.Hoard_config.reservoir;
  let _, a = mk () in
  let ps = List.init 5000 (fun _ -> a.Alloc_intf.malloc 64) in
  List.iter a.Alloc_intf.free ps;
  let s = a.Alloc_intf.stats () in
  Alcotest.(check int) "no parks" 0 s.Alloc_stats.reservoir_parks;
  Alcotest.(check int) "no parked bytes" 0 s.Alloc_stats.reservoir_bytes

let test_reservoir_parks_and_decommits () =
  let h, a, config = mk_res () in
  let ps = List.init 5000 (fun _ -> a.Alloc_intf.malloc 64) in
  List.iter a.Alloc_intf.free ps;
  let s = a.Alloc_intf.stats () in
  let sb = config.Hoard_config.sb_size in
  Alcotest.(check bool) "superblocks parked" true (Hoard.reservoir_length h > 0);
  Alcotest.(check bool) "parks recorded" true (s.Alloc_stats.reservoir_parks > 0);
  Alcotest.(check bool) "parked pages decommitted" true (s.Alloc_stats.decommits > 0);
  Alcotest.(check int) "parked byte accounting"
    (Hoard.reservoir_length h * sb) s.Alloc_stats.reservoir_bytes;
  Alcotest.(check bool)
    (Printf.sprintf "resident %d <= held %d + R*S %d" s.Alloc_stats.resident_bytes
       s.Alloc_stats.held_bytes (config.Hoard_config.reservoir * sb))
    true
    (s.Alloc_stats.resident_bytes
     <= s.Alloc_stats.held_bytes + (config.Hoard_config.reservoir * sb));
  a.Alloc_intf.check ()

let test_reservoir_bounded_drops_overflow () =
  let h, a, config = mk_res ~reservoir:2 () in
  let ps = List.init 8000 (fun _ -> a.Alloc_intf.malloc 64) in
  List.iter a.Alloc_intf.free ps;
  let s = a.Alloc_intf.stats () in
  Alcotest.(check bool) "length within cap" true
    (Hoard.reservoir_length h <= config.Hoard_config.reservoir);
  Alcotest.(check bool) "overflow dropped" true (s.Alloc_stats.reservoir_drops > 0);
  Alcotest.(check bool) "overflow unmapped" true (s.Alloc_stats.os_unmaps > 0);
  a.Alloc_intf.check ()

let test_reservoir_reuse_recommits () =
  let h, a, _ = mk_res () in
  (* Fill one size class, free everything: superblocks park decommitted. *)
  let ps = List.init 5000 (fun _ -> a.Alloc_intf.malloc 64) in
  List.iter a.Alloc_intf.free ps;
  let parked = Hoard.reservoir_length h in
  Alcotest.(check bool) "parked" true (parked > 0);
  let maps_before = (a.Alloc_intf.stats ()).Alloc_stats.os_maps in
  (* Allocate a *different* size class: reuse must reformat the parked
     superblocks and recommit their pages instead of mapping fresh ones. *)
  let qs = List.init 200 (fun _ -> a.Alloc_intf.malloc 256) in
  let s = a.Alloc_intf.stats () in
  Alcotest.(check bool) "recommits recorded" true (s.Alloc_stats.recommits > 0);
  Alcotest.(check bool) "reservoir drained" true (Hoard.reservoir_length h < parked);
  Alcotest.(check int) "no new OS memory while parked" maps_before s.Alloc_stats.os_maps;
  List.iter a.Alloc_intf.free qs;
  a.Alloc_intf.check ();
  Alcotest.(check int) "nothing live" 0 (a.Alloc_intf.stats ()).Alloc_stats.live_bytes

let test_reservoir_multiproc_sound () =
  (* Churn across 4 simulated processors with a tiny reservoir: the
     residency bound and the allocator's structural checks must hold at
     every interleaving we drive. *)
  let sim = Sim.create ~vmem_backend:Vmem_backend.First_fit ~nprocs:4 () in
  let pf = Sim.platform sim in
  let config =
    { cfg with Hoard_config.reservoir = 2; release_threshold = 0;
      vmem_backend = Vmem_backend.First_fit }
  in
  let h = Hoard.create ~config pf in
  let a = Hoard.allocator h in
  for t = 0 to 3 do
    ignore
      (Sim.spawn sim (fun () ->
           let rng = Rng.create (17 + t) in
           for _ = 1 to 10 do
             let ps = List.init 120 (fun _ -> a.Alloc_intf.malloc (Rng.int_in rng 8 2048)) in
             List.iter a.Alloc_intf.free ps
           done))
  done;
  Sim.run sim;
  a.Alloc_intf.check ();
  let s = a.Alloc_intf.stats () in
  let cap = config.Hoard_config.reservoir * config.Hoard_config.sb_size in
  Alcotest.(check bool) "residency bound" true
    (s.Alloc_stats.resident_bytes <= s.Alloc_stats.held_bytes + cap);
  Alcotest.(check int) "nothing live" 0 s.Alloc_stats.live_bytes

let test_config_validation () =
  List.iter
    (fun bad -> Alcotest.check_raises "rejected" (Invalid_argument bad) (fun () ->
         Hoard_config.validate
           (match bad with
            | "Hoard_config: sb-size must be a power of two >= 1024" ->
              { cfg with Hoard_config.sb_size = 5000 }
            | "Hoard_config: empty-fraction must lie in (0, 1)" ->
              { cfg with Hoard_config.empty_fraction = 1.5 }
            | "Hoard_config: slack must be non-negative" -> { cfg with Hoard_config.slack = -1 }
            | _ -> assert false)))
    [
      "Hoard_config: sb-size must be a power of two >= 1024";
      "Hoard_config: empty-fraction must lie in (0, 1)";
      "Hoard_config: slack must be non-negative";
    ]

(* The large-object cache: a freed large region parks decommitted (no
   unmap, residency drops, held stays) and the next same-size allocation
   is a take -> commit instead of a second OS map. *)
let test_large_cache_roundtrip () =
  let pf = Platform.host () in
  let h = Hoard.create ~config:(Hoard_config.make ~large_cache:4 ()) pf in
  let a = Hoard.allocator h in
  let size = Hoard_config.max_small cfg + 1 in
  let p = a.Alloc_intf.malloc size in
  let s0 = a.Alloc_intf.stats () in
  Alcotest.(check int) "first allocation paid a map" 1 s0.Alloc_stats.large_maps;
  a.Alloc_intf.free p;
  let s1 = a.Alloc_intf.stats () in
  Alcotest.(check int) "parked, not unmapped" 0 s1.Alloc_stats.os_unmaps;
  Alcotest.(check int) "still held while parked" s0.Alloc_stats.held_bytes s1.Alloc_stats.held_bytes;
  Alcotest.(check bool) "residency dropped"
    true
    (s1.Alloc_stats.resident_bytes < s0.Alloc_stats.resident_bytes);
  Alcotest.(check int) "cache length" 1 (Hoard.large_cache_length h);
  let q = a.Alloc_intf.malloc size in
  let s2 = a.Alloc_intf.stats () in
  Alcotest.(check int) "served by the cache" 1 s2.Alloc_stats.large_cache_hits;
  Alcotest.(check int) "no second map" 1 s2.Alloc_stats.large_maps;
  Alcotest.(check int) "region reused in place" p q;
  a.Alloc_intf.free q;
  Hoard.check h

(* The deferred remote-free lists: a consumer's flushed remote frees are
   CAS pushes (no remote-queue enqueues), and the owner's next fill
   reclaims them in one exchange. *)
let test_deferred_lists_reclaim () =
  let sim = Sim.create ~nprocs:2 () in
  let pf = Sim.platform sim in
  let h =
    Hoard.create ~config:(Hoard_config.make ~front_end:4 ~deferred:true ()) pf
  in
  let a = Hoard.allocator h in
  let barrier = Sim.new_barrier sim ~parties:2 in
  let box = ref [||] in
  ignore
    (Sim.spawn sim ~proc:0 (fun () ->
         box := Array.init 32 (fun _ -> a.Alloc_intf.malloc 64);
         Sim.barrier_wait barrier;
         (* consumer freed and flushed: the next fills reclaim. *)
         Sim.barrier_wait barrier;
         for _ = 1 to 64 do
           a.Alloc_intf.free (a.Alloc_intf.malloc 64)
         done;
         a.Alloc_intf.flush ()));
  ignore
    (Sim.spawn sim ~proc:1 (fun () ->
         Sim.barrier_wait barrier;
         Array.iter a.Alloc_intf.free !box;
         a.Alloc_intf.flush ();
         Sim.barrier_wait barrier));
  Sim.run sim;
  Hoard.flush_caches h;
  Hoard.check h;
  let s = a.Alloc_intf.stats () in
  Alcotest.(check int) "no bounded-queue enqueues" 0 s.Alloc_stats.remote_enqueues;
  Alcotest.(check bool) "remote frees were deferred" true (s.Alloc_stats.deferred_enqueues >= 32);
  Alcotest.(check bool) "the owner reclaimed" true (s.Alloc_stats.deferred_reclaims >= 1);
  Alcotest.(check bool) "reclaims batch"
    true
    (s.Alloc_stats.deferred_reclaims <= s.Alloc_stats.deferred_enqueues);
  Alcotest.(check int) "nothing live" 0 s.Alloc_stats.live_bytes

(* The knob registry: make, textual set/set_all, name normalization,
   registry-driven help and printing. *)
let test_knob_registry () =
  (* make with no overrides is the default config. *)
  Alcotest.(check bool) "make () = default" true (Hoard_config.make () = Hoard_config.default);
  (* A labelled make equals the textual set of the same knob. *)
  Alcotest.(check bool) "make ~deferred = set deferred=true" true
    (Hoard_config.make ~deferred:true ~front_end:4 ()
    = Hoard_config.set_all Hoard_config.default [ "deferred=true"; "front-end=4" ]);
  (* One representative knob per value shape. *)
  let c = Hoard_config.set Hoard_config.default "sb-size=4096" in
  Alcotest.(check int) "int knob" 4096 c.Hoard_config.sb_size;
  let c = Hoard_config.set Hoard_config.default "empty-fraction=0.5" in
  Alcotest.(check (float 1e-9)) "float knob" 0.5 c.Hoard_config.empty_fraction;
  let c = Hoard_config.set Hoard_config.default "large-cache=7" in
  Alcotest.(check int) "large-cache knob" 7 c.Hoard_config.large_cache;
  let c = Hoard_config.set Hoard_config.default "nheaps=3" in
  Alcotest.(check bool) "nheaps int" true (c.Hoard_config.nheaps = Some 3);
  let c = Hoard_config.set c "nheaps=auto" in
  Alcotest.(check bool) "nheaps auto" true (c.Hoard_config.nheaps = None);
  (* Underscores normalize to dashes. *)
  let c = Hoard_config.set Hoard_config.default "front_end=9" in
  Alcotest.(check int) "underscore alias" 9 c.Hoard_config.front_end;
  (* The seeded mutants round-trip through the registry; unknown mutant
     names are rejected by validation. *)
  let c = Hoard_config.set Hoard_config.default "mutant=orphan-lost-superblock" in
  Alcotest.(check string) "mutant knob" "orphan-lost-superblock" c.Hoard_config.mutant;
  (* Unknown knobs and malformed or out-of-range values are rejected. *)
  let rejects s =
    match Hoard_config.set Hoard_config.default s with
    | _ -> Alcotest.fail (Printf.sprintf "%S must be rejected" s)
    | exception Invalid_argument _ -> ()
  in
  rejects "bogus=1";
  rejects "deferred";
  rejects "deferred=maybe";
  rejects "sb-size=5000";
  rejects "empty-fraction=2.0";
  (* The registry drives the CLI help and the printer. *)
  let names = Hoard_config.knob_names () in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " registered") true (List.mem n names);
      Alcotest.(check bool) (n ^ " documented") true
        (Astring.String.is_infix ~affix:n (Hoard_config.knob_doc ())))
    [ "sb-size"; "empty-fraction"; "deferred"; "large-cache"; "front-end"; "mutant" ];
  let printed =
    Format.asprintf "%a" Hoard_config.pp
      (Hoard_config.make ~deferred:true ~front_end:4 ~large_cache:2 ())
  in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " printed") true (Astring.String.is_infix ~affix:n printed))
    [ "deferred"; "large-cache"; "front-end" ]

(* Fuzz: a textual [set_all] over a random subset of knobs must land on
   exactly the config the labelled builder produces for the same subset —
   the two front doors of the registry can never diverge. The mutant knob
   draws from [known_mutants], covering the newly seeded ones. *)
let test_set_all_matches_labelled_make =
  QCheck.Test.make ~name:"set_all = labelled make on random knob subsets" ~count:300
    QCheck.(pair (int_bound 0x7FFF) (int_bound 1000))
    (fun (mask, vseed) ->
      let bit i = mask land (1 lsl i) <> 0 in
      let pick i l = List.nth l ((vseed + i) mod List.length l) in
      let opt i l = if bit i then Some (pick i l) else None in
      let sb_size = opt 0 [ 4096; 8192; 32768 ] in
      let empty_fraction = opt 1 [ 0.125; 0.25; 0.5 ] in
      let slack = opt 2 [ 0; 2; 4 ] in
      let nheaps = opt 3 [ Some 1; Some 3; Some 9; None ] in
      let release_threshold = opt 4 [ 0; 2; 8 ] in
      let front_end = opt 5 [ 0; 4; 16 ] in
      let deferred = opt 6 [ true; false ] in
      let large_cache = opt 7 [ 0; 2; 8 ] in
      let sanitize = opt 8 [ true; false ] in
      let quarantine = opt 9 [ 0; 8; 64 ] in
      let mutant = opt 10 Hoard_config.known_mutants in
      let shelf = opt 11 [ 0; 2; 4 ] in
      let reservoir = opt 12 [ 0; 2; 4 ] in
      let assign_by_tid = opt 13 [ true; false ] in
      let global = opt 14 [ Hoard_config.Locked; Hoard_config.Lockfree ] in
      let labelled =
        Hoard_config.make ?sb_size ?empty_fraction ?slack ?nheaps ?release_threshold ?front_end
          ?deferred ?large_cache ?sanitize ?quarantine ?mutant ?shelf ?reservoir ?assign_by_tid
          ?global ()
      in
      let textual =
        List.filter_map
          (fun x -> x)
          [
            Option.map (Printf.sprintf "sb-size=%d") sb_size;
            Option.map (Printf.sprintf "empty-fraction=%g") empty_fraction;
            Option.map (Printf.sprintf "slack=%d") slack;
            Option.map
              (function Some n -> Printf.sprintf "nheaps=%d" n | None -> "nheaps=auto")
              nheaps;
            Option.map (Printf.sprintf "release-threshold=%d") release_threshold;
            Option.map (Printf.sprintf "front-end=%d") front_end;
            Option.map (Printf.sprintf "deferred=%b") deferred;
            Option.map (Printf.sprintf "large-cache=%d") large_cache;
            Option.map (Printf.sprintf "sanitize=%b") sanitize;
            Option.map (Printf.sprintf "quarantine=%d") quarantine;
            Option.map (Printf.sprintf "mutant=%s") mutant;
            Option.map (Printf.sprintf "shelf=%d") shelf;
            Option.map (Printf.sprintf "reservoir=%d") reservoir;
            Option.map (Printf.sprintf "assign-by-tid=%b") assign_by_tid;
            Option.map
              (fun g -> Printf.sprintf "global=%s" (Hoard_config.global_mode_name g))
              global;
          ]
      in
      labelled = Hoard_config.set_all Hoard_config.default textual)

let () =
  Alcotest.run "hoard"
    [
      ( "api",
        [
          Alcotest.test_case "malloc usable" `Quick test_malloc_returns_usable_block;
          Alcotest.test_case "distinct blocks" `Quick test_live_blocks_distinct;
          Alcotest.test_case "zero rejected" `Quick test_malloc_zero_rejected;
          Alcotest.test_case "foreign free" `Quick test_free_foreign_rejected;
          Alcotest.test_case "double free" `Quick test_double_free_detected;
          Alcotest.test_case "large objects" `Quick test_large_objects;
          Alcotest.test_case "boundary sizes" `Quick test_boundary_sizes;
          Alcotest.test_case "reuse after free" `Quick test_memory_reused_after_free;
          Alcotest.test_case "stats" `Quick test_stats_requested_bytes;
          Alcotest.test_case "config validation" `Quick test_config_validation;
          Alcotest.test_case "knob registry" `Quick test_knob_registry;
          QCheck_alcotest.to_alcotest test_set_all_matches_labelled_make;
          Alcotest.test_case "large cache roundtrip" `Quick test_large_cache_roundtrip;
          Alcotest.test_case "deferred lists reclaim" `Quick test_deferred_lists_reclaim;
        ] );
      ( "algorithm",
        [
          Alcotest.test_case "release to OS" `Quick test_empty_superblocks_released_to_os;
          Alcotest.test_case "emptiness invariant" `Quick test_invariant_after_frees;
          Alcotest.test_case "transfer to global" `Quick test_transfer_to_global_happens;
          Alcotest.test_case "return from global" `Quick test_superblocks_return_from_global;
          Alcotest.test_case "heap info" `Quick test_heaps_info;
          Alcotest.test_case "nheaps override" `Quick test_nheaps_override;
          Alcotest.test_case "tiny superblocks" `Quick test_tiny_superblocks;
          Alcotest.test_case "exact superblock fill" `Quick test_exact_superblock_fill;
          Alcotest.test_case "tid-hash heap assignment" `Quick test_assign_by_tid_spreads_heaps;
          Alcotest.test_case "heap info reconciles" `Quick test_heap_info_reconciles_with_stats;
          Alcotest.test_case "usable matches class" `Quick test_usable_size_matches_class;
          QCheck_alcotest.to_alcotest test_random_ops_sound;
          QCheck_alcotest.to_alcotest test_sim_random_stress;
          QCheck_alcotest.to_alcotest test_fuzzed_schedules_sound;
        ] );
      ( "multiprocessor",
        [
          Alcotest.test_case "blowup bounded" `Quick test_blowup_bounded_producer_consumer;
          Alcotest.test_case "remote free" `Quick test_remote_free_returns_to_owner;
        ] );
      ( "reservoir",
        [
          Alcotest.test_case "off by default" `Quick test_reservoir_off_by_default;
          Alcotest.test_case "parks and decommits" `Quick test_reservoir_parks_and_decommits;
          Alcotest.test_case "bounded, drops overflow" `Quick test_reservoir_bounded_drops_overflow;
          Alcotest.test_case "reuse recommits" `Quick test_reservoir_reuse_recommits;
          Alcotest.test_case "multiproc sound" `Quick test_reservoir_multiproc_sound;
        ] );
      ( "front end",
        [
          Alcotest.test_case "off by default" `Quick test_front_end_off_by_default;
          Alcotest.test_case "cache bounded and flushed" `Quick test_cache_bounded_and_flushed;
          Alcotest.test_case "check exact with caches" `Quick test_check_exact_with_caches_populated;
          Alcotest.test_case "double free cached" `Quick test_double_free_cached_detected;
          Alcotest.test_case "remote queue drain reuse" `Quick test_remote_queue_drain_reuses_memory;
          Alcotest.test_case "5x fewer lock acquisitions" `Quick test_front_end_cuts_lock_traffic;
          Alcotest.test_case "cross-thread double free cached" `Quick test_cross_thread_double_free_cached;
          Alcotest.test_case "recycled tid exit flush" `Quick test_recycled_tid_reflushes_on_exit;
          Alcotest.test_case "remote forwards bounded" `Quick test_remote_forward_bounded;
        ] );
      ( "shelf",
        [
          Alcotest.test_case "off by default" `Quick test_shelf_off_by_default;
          Alcotest.test_case "push/pop roundtrip" `Quick test_shelf_roundtrip;
          Alcotest.test_case "cuts global lock traffic" `Quick test_shelf_cuts_global_lock_traffic;
        ] );
      ( "global heap",
        [
          Alcotest.test_case "locked by default" `Quick test_global_locked_by_default;
          Alcotest.test_case "lockfree roundtrip" `Quick test_global_lockfree_roundtrip;
          Alcotest.test_case "zero heap-0 lock acquisitions" `Quick test_global_lockfree_zero_heap0_lock;
          Alcotest.test_case "orphan adoptions match events" `Quick test_orphan_adoptions_match_events;
        ] );
    ]
