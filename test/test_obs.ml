(* The observability layer: event rings, the metrics registry, the JSON
   validator, Perfetto export, the heatmap, and — the load-bearing part —
   the event-count invariants: ring per-kind totals must equal the
   Alloc_stats counter deltas, on the simulator and under real domains,
   and instrumentation must not change a simulated run's timing. *)

(* --- event rings --- *)

let test_ring_basic () =
  let r = Event_ring.create ~capacity:8 in
  Alcotest.(check int) "capacity" 8 (Event_ring.capacity r);
  for i = 1 to 5 do
    Event_ring.record r ~at:(10 * i) ~kind:Event_ring.Sb_map ~who:0 ~heap:1 ~sclass:2 ~arg:i
  done;
  Alcotest.(check int) "recorded" 5 (Event_ring.recorded r);
  Alcotest.(check int) "retained" 5 (Event_ring.retained r);
  Alcotest.(check int) "dropped" 0 (Event_ring.dropped r);
  let events = Event_ring.to_list r in
  Alcotest.(check int) "list length" 5 (List.length events);
  let first = List.hd events in
  Alcotest.(check int) "oldest first" 10 first.Event_ring.at;
  Alcotest.(check int) "payload" 1 first.Event_ring.arg

let test_ring_wrap_exact_counts () =
  let r = Event_ring.create ~capacity:8 in
  for i = 1 to 20 do
    let kind = if i mod 3 = 0 then Event_ring.Remote_free else Event_ring.Sb_from_global in
    Event_ring.record r ~at:i ~kind ~who:(i mod 4) ~heap:0 ~sclass:0 ~arg:i
  done;
  Alcotest.(check int) "recorded survives wrap" 20 (Event_ring.recorded r);
  Alcotest.(check int) "retained = capacity" 8 (Event_ring.retained r);
  Alcotest.(check int) "dropped" 12 (Event_ring.dropped r);
  (* Per-kind totals are exact even though 12 events were overwritten. *)
  Alcotest.(check int) "remote_free kind total" 6 (Event_ring.recorded_kind r Event_ring.Remote_free);
  Alcotest.(check int) "from_global kind total" 14 (Event_ring.recorded_kind r Event_ring.Sb_from_global);
  (* iter sees only the newest [capacity] events, oldest first. *)
  let ats = ref [] in
  Event_ring.iter r (fun e -> ats := e.Event_ring.at :: !ats);
  Alcotest.(check (list int)) "newest window, oldest first" [ 20; 19; 18; 17; 16; 15; 14; 13 ] !ats

let test_kind_names_distinct () =
  let names = List.map Event_ring.kind_name Event_ring.all_kinds in
  Alcotest.(check int) "all kinds named uniquely" (List.length names)
    (List.length (List.sort_uniq compare names))

(* --- metrics registry --- *)

let test_metrics_registry () =
  let m = Metrics.create () in
  Metrics.register m ~name:"answer" (fun () -> Metrics.Int 42);
  Metrics.register m ~name:"ratio" (fun () -> Metrics.Float 1.5);
  let c = Metrics.counter m ~name:"hits" () in
  incr c;
  incr c;
  Metrics.register m ~name:"per_heap" ~labels:[ ("heap", "1") ] (fun () -> Metrics.Int 1);
  Metrics.register m ~name:"per_heap" ~labels:[ ("heap", "2") ] (fun () -> Metrics.Int 2);
  Alcotest.(check int) "snapshot size" 5 (List.length (Metrics.snapshot m));
  (match Metrics.get m ~name:"hits" () with
   | Some (Metrics.Int 2) -> ()
   | _ -> Alcotest.fail "counter readback");
  (match Metrics.get m ~name:"per_heap" ~labels:[ ("heap", "2") ] () with
   | Some (Metrics.Int 2) -> ()
   | _ -> Alcotest.fail "labelled readback");
  Alcotest.check_raises "duplicate rejected" (Invalid_argument "Metrics.register: duplicate metric \"answer\"")
    (fun () -> Metrics.register m ~name:"answer" (fun () -> Metrics.Int 0))

let test_metrics_json_parses () =
  let m = Metrics.create () in
  Metrics.register m ~name:"n" (fun () -> Metrics.Int 7);
  Metrics.register m ~name:"lat" (fun () ->
      Metrics.Dist { Metrics.d_count = 3; d_mean = 2.5; d_p50 = 2; d_p95 = 4; d_p99 = 4; d_p999 = 4; d_max = 4 });
  Metrics.register m ~name:"esc\"aped" ~labels:[ ("k", "v\\w") ] (fun () -> Metrics.Float 0.5);
  match Json_lite.parse (Metrics.to_json m) with
  | Error e -> Alcotest.fail ("metrics JSON invalid: " ^ e)
  | Ok j ->
    (match Json_lite.to_list j with
     | Some entries ->
       Alcotest.(check int) "one object per metric" 3 (List.length entries);
       let first = List.hd entries in
       (match Option.bind (Json_lite.member "value" first) Json_lite.to_float with
        | Some v -> Alcotest.(check (float 1e-9)) "int value round-trips" 7.0 v
        | None -> Alcotest.fail "value field missing")
     | None -> Alcotest.fail "not an array")

let test_metrics_csv () =
  let m = Metrics.create () in
  Metrics.register m ~name:"n" (fun () -> Metrics.Int 7);
  Metrics.register m ~name:"lat" (fun () ->
      Metrics.Dist { Metrics.d_count = 1; d_mean = 2.0; d_p50 = 2; d_p95 = 2; d_p99 = 2; d_p999 = 2; d_max = 2 });
  let csv = Metrics.to_csv m in
  Alcotest.(check bool) "has header" true (String.length csv > 0);
  Alcotest.(check bool) "dist flattened" true
    (String.split_on_char '\n' csv |> List.exists (fun l -> String.length l >= 7 && String.sub l 0 7 = "lat.p50"))

(* --- Json_lite --- *)

let test_json_valid () =
  List.iter
    (fun s ->
      match Json_lite.parse s with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (Printf.sprintf "%S should parse: %s" s e))
    [
      "null"; "true"; "[]"; "{}"; "[1, -2.5, 3e2, 0.125]"; "{\"a\": [{\"b\": \"c\\nd\"}], \"e\": false}";
      "\"\\u0041\\\"\"";
    ]

let test_json_invalid () =
  List.iter
    (fun s ->
      match Json_lite.parse s with
      | Ok _ -> Alcotest.fail (Printf.sprintf "%S should be rejected" s)
      | Error _ -> ())
    [ ""; "{"; "[1"; "tru"; "1 2"; "{\"a\"}"; "[1,]"; "\"unterminated" ]

let test_json_accessors () =
  match Json_lite.parse "{\"xs\": [1, 2], \"s\": \"hi\"}" with
  | Error e -> Alcotest.fail e
  | Ok j ->
    Alcotest.(check (option string)) "string member" (Some "hi")
      (Option.bind (Json_lite.member "s" j) Json_lite.to_string);
    (match Option.bind (Json_lite.member "xs" j) Json_lite.to_list with
     | Some [ a; _ ] -> Alcotest.(check (option (float 1e-9))) "number" (Some 1.0) (Json_lite.to_float a)
     | _ -> Alcotest.fail "array member");
    Alcotest.(check bool) "missing member" true (Json_lite.member "nope" j = None)

(* --- Perfetto --- *)

let test_perfetto_json () =
  let p = Perfetto.create () in
  Perfetto.process_name p ~pid:0 "machine";
  Perfetto.thread_name p ~pid:0 ~tid:1 "proc1";
  Perfetto.instant p ~name:"sb_map" ~cat:"ring.heap1" ~ts:10 ~pid:0 ~tid:1
    ~args:[ ("bytes", "8192"); ("label", Perfetto.str "a\"b") ]
    ();
  Perfetto.span p ~name:"hoard.heap1" ~cat:"lock" ~ts:20 ~dur:5 ~pid:0 ~tid:1 ();
  Perfetto.counter p ~name:"held" ~ts:30 ~pid:0 ~series:[ ("bytes", 4096) ];
  Alcotest.(check int) "event count" 5 (Perfetto.event_count p);
  match Json_lite.parse (Perfetto.to_json p) with
  | Error e -> Alcotest.fail ("trace JSON invalid: " ^ e)
  | Ok j ->
    (match Option.bind (Json_lite.member "traceEvents" j) Json_lite.to_list with
     | Some events -> Alcotest.(check int) "traceEvents length" 5 (List.length events)
     | None -> Alcotest.fail "traceEvents missing")

(* --- heatmap --- *)

let test_heatmap_render () =
  let s =
    Heatmap.render ~title:"t" ~ncols:4
      ~rows:[ ("alpha", [ Some 0.0; Some 0.55; Some 1.0 ]); ("b", [ None; Some 0.99 ]) ]
      ~legend:"legend line" ()
  in
  Alcotest.(check bool) "title" true (String.length s > 0);
  let has sub =
    let n = String.length sub in
    let rec scan i = i + n <= String.length s && (String.sub s i n = sub || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "row label" true (has "alpha");
  Alcotest.(check bool) "zero decile" true (has "05");
  (* 1.0 clamps into the top decile, padding fills with '-' *)
  Alcotest.(check bool) "full + padded cells" true (has "9-");
  Alcotest.(check bool) "legend appended" true (has "legend line")

(* --- Obs context --- *)

let test_obs_rings_registry () =
  let o = Obs.create ~config:{ Obs.ring_capacity = 16 } () in
  let r1 = Obs.new_ring o "heap1" in
  let _r2 = Obs.new_ring o "large" in
  Alcotest.(check int) "two rings" 2 (List.length (Obs.rings o));
  Alcotest.(check bool) "find" true
    (match Obs.find_ring o "heap1" with Some r -> r == r1 | None -> false);
  Alcotest.(check bool) "duplicate rejected" true
    (try
       ignore (Obs.new_ring o "heap1");
       false
     with Invalid_argument _ -> true);
  Event_ring.record r1 ~at:1 ~kind:Event_ring.Sb_map ~who:0 ~heap:1 ~sclass:0 ~arg:0;
  Alcotest.(check int) "total recorded" 1 (Obs.total_recorded o);
  Alcotest.(check int) "kind count" 1 (Obs.count_kind o Event_ring.Sb_map);
  (* Ring counts are published to the registry. *)
  match Metrics.get (Obs.metrics o) ~name:"obs.events" ~labels:[ ("ring", "heap1") ] () with
  | Some (Metrics.Int 1) -> ()
  | _ -> Alcotest.fail "obs.events{ring=heap1} gauge"

(* --- ring/stats invariants on the simulator --- *)

let check_ring_stats_invariants ~msg obs (s : Alloc_stats.snapshot) =
  let k = Obs.count_kind obs in
  Alcotest.(check int) (msg ^ ": to_global events = counter") s.Alloc_stats.sb_to_global
    (k Event_ring.Sb_to_global);
  Alcotest.(check int) (msg ^ ": from_global events = counter") s.Alloc_stats.sb_from_global
    (k Event_ring.Sb_from_global);
  Alcotest.(check int) (msg ^ ": remote_free events = counter") s.Alloc_stats.remote_frees
    (k Event_ring.Remote_free);
  Alcotest.(check int) (msg ^ ": map events = os_maps") s.Alloc_stats.os_maps
    (k Event_ring.Sb_map + k Event_ring.Large_map);
  Alcotest.(check int) (msg ^ ": unmap events = os_unmaps") s.Alloc_stats.os_unmaps
    (k Event_ring.Sb_unmap + k Event_ring.Large_unmap)

(* Latency probe + timeline + event rings composed on one simulated run,
   with traffic crafted to produce remote frees and large objects. *)
let test_sim_composition () =
  let nprocs = 2 and blocks = 120 in
  let sim = Sim.create ~nprocs () in
  let pf = Sim.platform sim in
  let obs = Obs.create () in
  let hoard = Hoard.create ~obs pf in
  let probe, a = Latency_probe.wrap (Hoard.allocator hoard) in
  let tl, a = Timeline.wrap ~every:16 a in
  let slots = Array.make blocks 0 in
  let b = Sim.new_barrier sim ~parties:2 in
  ignore
    (Sim.spawn sim ~proc:0 (fun () ->
         for i = 0 to blocks - 1 do
           slots.(i) <- a.Alloc_intf.malloc 64
         done;
         let big = a.Alloc_intf.malloc 100_000 in
         Sim.barrier_wait b;
         a.Alloc_intf.free big));
  ignore
    (Sim.spawn sim ~proc:1 (fun () ->
         Sim.barrier_wait b;
         (* Frees into proc 0's heap: remote. *)
         Array.iter a.Alloc_intf.free slots));
  Sim.run sim;
  a.Alloc_intf.check ();
  let s = a.Alloc_intf.stats () in
  Alcotest.(check int) "probe saw every malloc" s.Alloc_stats.mallocs
    (Histogram.count (Latency_probe.malloc_latencies probe));
  Alcotest.(check bool) "timeline sampled" true (List.length (Timeline.samples tl) > 0);
  Alcotest.(check bool) "remote frees happened" true (s.Alloc_stats.remote_frees > 0);
  Alcotest.(check bool) "large path exercised" true (Obs.count_kind obs Event_ring.Large_map = 1);
  check_ring_stats_invariants ~msg:"sim" obs s

(* Instrumentation must not perturb the simulation: an instrumented run
   reports exactly the cycles of an uninstrumented one. *)
let test_instrumentation_free () =
  let w = Experiments.obs_workload "fig_threadtest" Experiments.Quick in
  let plain = Runner.run (Runner.spec w (Hoard.factory ()) ~nprocs:4) in
  let b = Obs_run.run_workload w ~nprocs:4 in
  Alcotest.(check int) "same cycles with tracing on" plain.Runner.r_cycles b.Obs_run.b_cycles;
  Alcotest.(check bool) "and events were recorded" true (Obs.total_recorded b.Obs_run.b_obs > 0)

let test_obs_run_bundle () =
  let w = Experiments.obs_workload "fig_threadtest" Experiments.Quick in
  let b = Obs_run.run_workload w ~nprocs:4 in
  check_ring_stats_invariants ~msg:"bundle" b.Obs_run.b_obs b.Obs_run.b_stats;
  (* Perfetto export parses and has one event per recorded artefact. *)
  (match Json_lite.parse b.Obs_run.b_perfetto with
   | Error e -> Alcotest.fail ("perfetto: " ^ e)
   | Ok j ->
     (match Option.bind (Json_lite.member "traceEvents" j) Json_lite.to_list with
      | Some evs -> Alcotest.(check bool) "trace has events" true (List.length evs > 0)
      | None -> Alcotest.fail "traceEvents missing"));
  (* Metrics JSON parses, and its counters agree with the snapshot. *)
  (match Json_lite.parse (Obs_run.metrics_json b) with
   | Error e -> Alcotest.fail ("metrics: " ^ e)
   | Ok j ->
     let metric name =
       match Option.bind (Json_lite.member "metrics" j) Json_lite.to_list with
       | None -> Alcotest.fail "metrics array missing"
       | Some ms ->
         (match
            List.find_opt
              (fun m ->
                match Option.bind (Json_lite.member "name" m) Json_lite.to_string with
                | Some n -> n = name
                | None -> false)
              ms
          with
          | Some m ->
            (match Option.bind (Json_lite.member "value" m) Json_lite.to_float with
             | Some v -> int_of_float v
             | None -> Alcotest.fail (name ^ " has no numeric value"))
          | None -> Alcotest.fail (name ^ " not exported"))
     in
     Alcotest.(check int) "alloc.sb_to_global" b.Obs_run.b_stats.Alloc_stats.sb_to_global
       (metric "alloc.sb_to_global");
     Alcotest.(check int) "alloc.sb_from_global" b.Obs_run.b_stats.Alloc_stats.sb_from_global
       (metric "alloc.sb_from_global");
     Alcotest.(check int) "alloc.remote_frees" b.Obs_run.b_stats.Alloc_stats.remote_frees
       (metric "alloc.remote_frees"));
  (* Contention entries cover every simulated lock. *)
  Alcotest.(check int) "contention entries = locks" (List.length b.Obs_run.b_lock_stats)
    (List.length b.Obs_run.b_contention);
  Alcotest.(check bool) "heatmap rendered" true (String.length b.Obs_run.b_heatmap > 0)

let test_obs_run_deterministic () =
  let w = Experiments.obs_workload "fig_threadtest" Experiments.Quick in
  let a = Obs_run.run_workload w ~nprocs:4 in
  let b = Obs_run.run_workload w ~nprocs:4 in
  Alcotest.(check int) "cycles" a.Obs_run.b_cycles b.Obs_run.b_cycles;
  Alcotest.(check int) "events" (Obs.total_recorded a.Obs_run.b_obs) (Obs.total_recorded b.Obs_run.b_obs);
  Alcotest.(check string) "perfetto byte-identical" a.Obs_run.b_perfetto b.Obs_run.b_perfetto

(* --- 4-domain host stress: invariants under real parallelism --- *)

let make_barrier parties =
  let count = Atomic.make 0 and sense = Atomic.make false in
  fun () ->
    let s = Atomic.get sense in
    if Atomic.fetch_and_add count 1 = parties - 1 then begin
      Atomic.set count 0;
      Atomic.set sense (not s)
    end
    else while Atomic.get sense = s do Domain.cpu_relax () done

let test_host_stress_counts () =
  let ndomains = 4 and rounds = 15 and batch = 48 in
  let pf = Platform.host ~nprocs:ndomains () in
  let obs = Obs.create () in
  let h = Hoard.create ~obs pf in
  let a = Hoard.allocator h in
  let slots = Array.init ndomains (fun _ -> Array.make batch 0) in
  let barrier = make_barrier ndomains in
  let doms =
    List.init ndomains (fun d ->
        Domain.spawn (fun () ->
            let rng = Random.State.make [| 0x0b5; d |] in
            for _ = 1 to rounds do
              for i = 0 to batch - 1 do
                (* A size mix crossing the large threshold now and then. *)
                let size = if Random.State.int rng 20 = 0 then 50_000 else 8 + Random.State.int rng 2040 in
                slots.(d).(i) <- a.Alloc_intf.malloc size
              done;
              barrier ();
              (* Free the next domain's batch: every small free is remote. *)
              let v = (d + 1) mod ndomains in
              for i = 0 to batch - 1 do
                a.Alloc_intf.free slots.(v).(i)
              done;
              barrier ()
            done))
  in
  List.iter Domain.join doms;
  a.Alloc_intf.check ();
  let s = a.Alloc_intf.stats () in
  Alcotest.(check int) "all freed" s.Alloc_stats.mallocs s.Alloc_stats.frees;
  Alcotest.(check bool) "remote traffic happened" true (s.Alloc_stats.remote_frees > 0);
  (* Quiescent: every ring total must agree exactly with its counter. *)
  check_ring_stats_invariants ~msg:"host" obs s;
  (* Per-ring bookkeeping is internally consistent too. *)
  List.iter
    (fun (name, r) ->
      Alcotest.(check int) (name ^ " retained+dropped") (Event_ring.recorded r)
        (Event_ring.retained r + Event_ring.dropped r))
    (Obs.rings obs);
  Platform.host_release pf

let () =
  Alcotest.run "obs"
    [
      ( "event-ring",
        [
          Alcotest.test_case "basic" `Quick test_ring_basic;
          Alcotest.test_case "wrap keeps exact counts" `Quick test_ring_wrap_exact_counts;
          Alcotest.test_case "kind names distinct" `Quick test_kind_names_distinct;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "registry" `Quick test_metrics_registry;
          Alcotest.test_case "json export parses" `Quick test_metrics_json_parses;
          Alcotest.test_case "csv export" `Quick test_metrics_csv;
        ] );
      ( "json-lite",
        [
          Alcotest.test_case "valid" `Quick test_json_valid;
          Alcotest.test_case "invalid" `Quick test_json_invalid;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
      ( "exporters",
        [
          Alcotest.test_case "perfetto json" `Quick test_perfetto_json;
          Alcotest.test_case "heatmap" `Quick test_heatmap_render;
        ] );
      ( "obs-context", [ Alcotest.test_case "ring registry" `Quick test_obs_rings_registry ] );
      ( "instrumented-runs",
        [
          Alcotest.test_case "sim composition" `Quick test_sim_composition;
          Alcotest.test_case "tracing is timing-free" `Quick test_instrumentation_free;
          Alcotest.test_case "bundle invariants" `Quick test_obs_run_bundle;
          Alcotest.test_case "deterministic" `Quick test_obs_run_deterministic;
        ] );
      ( "host-stress", [ Alcotest.test_case "4-domain counts" `Quick test_host_stress_counts ] );
    ]
