(* Multicore stress tests: real OCaml 5 domains hammering one Hoard
   instance through malloc / free / usable_size, with every free crossing
   heaps (the paper's producer-consumer pattern, the shape of Larson).
   These are the tests that die if the superblock registry or the stats
   shards are not domain-safe.

   Invariants are only asserted at quiescent points (all domains parked at
   a barrier, or after join): [Hoard.check] compares unsynchronised
   accounting sums, and the emptiness invariant is legitimately broken
   mid-flight between a malloc and the free that restores it. *)

let ndomains = 4

(* Sense-reversing spin barrier usable from real domains. *)
let make_barrier parties =
  let count = Atomic.make 0 and sense = Atomic.make false in
  fun () ->
    let s = Atomic.get sense in
    if Atomic.fetch_and_add count 1 = parties - 1 then begin
      Atomic.set count 0;
      Atomic.set sense (not s)
    end
    else while Atomic.get sense = s do Domain.cpu_relax () done

let spawn_domains n body =
  let doms = List.init n (fun i -> Domain.spawn (fun () -> body i)) in
  List.iter Domain.join doms

(* Heap slot a domain's threads land on (assign_by_tid = false on a host
   platform: executing processor = tid mod nprocs). Used to decide whether
   the schedule could produce remote frees at all. *)
let heap_slot ~nheaps tid = tid mod nheaps

let distinct_heaps ~nheaps tids =
  List.sort_uniq compare (List.map (heap_slot ~nheaps) (Array.to_list tids)) |> List.length

(* --- cross-heap free storm --- *)

let test_free_storm () =
  let rounds = 25 and batch = 64 in
  let pf = Platform.host ~nprocs:ndomains () in
  let h = Hoard.create pf in
  let a = Hoard.allocator h in
  let slots = Array.init ndomains (fun _ -> Array.make batch 0) in
  let barrier = make_barrier ndomains in
  let failures = Atomic.make 0 in
  let quiescent_check d =
    (* Everyone is parked at the barrier surrounding this call. *)
    barrier ();
    if d = 0 then (try Hoard.check h with _ -> Atomic.incr failures);
    barrier ()
  in
  spawn_domains ndomains (fun d ->
      let rng = Random.State.make [| 0xbeef; d |] in
      for round = 1 to rounds do
        for i = 0 to batch - 1 do
          let size = 8 + Random.State.int rng 2040 in
          let addr = a.Alloc_intf.malloc size in
          (* Concurrent lookups against other domains' registrations. *)
          if a.Alloc_intf.usable_size addr < size then Atomic.incr failures;
          slots.(d).(i) <- addr
        done;
        quiescent_check d;
        (* Free the neighbour's batch: every free acts on a superblock
           owned by another domain's heap. *)
        let victim = slots.((d + 1) mod ndomains) in
        for i = 0 to batch - 1 do
          if a.Alloc_intf.usable_size victim.(i) <= 0 then Atomic.incr failures;
          a.Alloc_intf.free victim.(i)
        done;
        quiescent_check d;
        ignore round
      done);
  Alcotest.(check int) "no mid-run check failures" 0 (Atomic.get failures);
  Hoard.check h;
  for id = 0 to Hoard.nheaps h do
    Alcotest.(check bool) (Printf.sprintf "invariant heap %d" id) true (Hoard.invariant_holds h ~heap_id:id)
  done;
  let s = a.Alloc_intf.stats () in
  let expected = ndomains * rounds * batch in
  Alcotest.(check int) "exact mallocs" expected s.Alloc_stats.mallocs;
  Alcotest.(check int) "exact frees" expected s.Alloc_stats.frees;
  Alcotest.(check int) "no live bytes" 0 s.Alloc_stats.live_bytes;
  Platform.host_release pf;
  Alcotest.(check bool) "vmem released" true (Platform.host_vmem pf = None)

(* --- producer-consumer ring (Larson shape) --- *)

let test_producer_consumer () =
  let per_producer = 2000 and ring_size = 32 in
  let nproducers = ndomains / 2 in
  let total = nproducers * per_producer in
  let pf = Platform.host ~nprocs:ndomains () in
  let h = Hoard.create pf in
  let a = Hoard.allocator h in
  let ring = Array.init ring_size (fun _ -> Atomic.make (-1)) in
  let consumed = Atomic.make 0 in
  let tids = Array.make ndomains 0 in
  let failures = Atomic.make 0 in
  spawn_domains ndomains (fun d ->
      tids.(d) <- (Domain.self () :> int);
      let rng = Random.State.make [| 0xf00d; d |] in
      if d < nproducers then
        for _ = 1 to per_producer do
          let size = 16 + Random.State.int rng 496 in
          let addr = a.Alloc_intf.malloc size in
          if a.Alloc_intf.usable_size addr < size then Atomic.incr failures;
          let slot = ref (Random.State.int rng ring_size) in
          let published = ref false in
          while not !published do
            let cell = ring.(!slot) in
            if Atomic.get cell = -1 && Atomic.compare_and_set cell (-1) addr then published := true
            else begin
              slot := (!slot + 1) mod ring_size;
              Domain.cpu_relax ()
            end
          done
        done
      else begin
        let slot = ref d in
        while Atomic.get consumed < total do
          let cell = ring.(!slot mod ring_size) in
          let addr = Atomic.get cell in
          if addr <> -1 && Atomic.compare_and_set cell addr (-1) then begin
            Atomic.incr consumed;
            a.Alloc_intf.free addr
          end
          else Domain.cpu_relax ();
          incr slot
        done
      end);
  Alcotest.(check int) "no usable_size failures" 0 (Atomic.get failures);
  Hoard.check h;
  let s = a.Alloc_intf.stats () in
  Alcotest.(check int) "exact mallocs" total s.Alloc_stats.mallocs;
  Alcotest.(check int) "exact frees" total s.Alloc_stats.frees;
  Alcotest.(check int) "no live bytes" 0 s.Alloc_stats.live_bytes;
  (* Consumers free blocks malloc'd by producers; whenever any two of the
     domains landed on different heaps, some of those frees must have been
     remote. (With every domain hashed to one heap — astronomically
     unlikely — the assertion is vacuous.) *)
  if distinct_heaps ~nheaps:(Hoard.nheaps h) tids > 1 then
    Alcotest.(check bool)
      (Printf.sprintf "remote frees observed (%d)" s.Alloc_stats.remote_frees)
      true
      (s.Alloc_stats.remote_frees > 0);
  Platform.host_release pf

(* --- the same storm through the lock-free front end --- *)

let test_front_end_storm () =
  (* Every free is a neighbour's block, so eviction constantly batches
     onto other heaps' remote-free queues while those heaps' owners are
     allocating. Worker caches are flushed by Domain.at_exit on join;
     flush_caches then empties the remote-free queues so the final stats
     must be exact. *)
  let rounds = 20 and batch = 64 in
  let pf = Platform.host ~nprocs:ndomains () in
  let h = Hoard.create ~config:(Hoard_config.make ~front_end:16 ()) pf in
  let a = Hoard.allocator h in
  let slots = Array.init ndomains (fun _ -> Array.make batch 0) in
  let barrier = make_barrier ndomains in
  let failures = Atomic.make 0 in
  spawn_domains ndomains (fun d ->
      let rng = Random.State.make [| 0xfe17; d |] in
      for _ = 1 to rounds do
        for i = 0 to batch - 1 do
          let size = 8 + Random.State.int rng 2040 in
          let addr = a.Alloc_intf.malloc size in
          if a.Alloc_intf.usable_size addr < size then Atomic.incr failures;
          slots.(d).(i) <- addr
        done;
        barrier ();
        let victim = slots.((d + 1) mod ndomains) in
        for i = 0 to batch - 1 do
          a.Alloc_intf.free victim.(i)
        done;
        barrier ()
      done);
  Hoard.flush_caches h;
  Hoard.check h;
  let s = a.Alloc_intf.stats () in
  let expected = ndomains * rounds * batch in
  Alcotest.(check int) "no usable_size failures" 0 (Atomic.get failures);
  Alcotest.(check int) "exact mallocs" expected s.Alloc_stats.mallocs;
  Alcotest.(check int) "exact frees" expected s.Alloc_stats.frees;
  Alcotest.(check int) "no live bytes" 0 s.Alloc_stats.live_bytes;
  Alcotest.(check bool) "front end exercised" true (s.Alloc_stats.cache_hits > 0);
  Alcotest.(check bool) "remote queues exercised" true (s.Alloc_stats.remote_enqueues > 0);
  Platform.host_release pf

(* --- stats exactness across domains, small and large paths --- *)

let test_stats_exact () =
  let small_sizes = [| 24; 96; 512; 2048 |] and large_sizes = [| 5000; 20_000 |] in
  let reps = 200 in
  let pf = Platform.host ~nprocs:ndomains () in
  let h = Hoard.create pf in
  let a = Hoard.allocator h in
  let barrier = make_barrier ndomains in
  spawn_domains ndomains (fun _ ->
      let own = ref [] in
      for _ = 1 to reps do
        Array.iter (fun sz -> own := a.Alloc_intf.malloc sz :: !own) small_sizes;
        Array.iter (fun sz -> own := a.Alloc_intf.malloc sz :: !own) large_sizes
      done;
      barrier ();
      List.iter a.Alloc_intf.free !own;
      barrier ());
  let per_domain = reps * (Array.length small_sizes + Array.length large_sizes) in
  let bytes_per_rep =
    Array.fold_left ( + ) 0 small_sizes + Array.fold_left ( + ) 0 large_sizes
  in
  let s = a.Alloc_intf.stats () in
  Alcotest.(check int) "exact mallocs" (ndomains * per_domain) s.Alloc_stats.mallocs;
  Alcotest.(check int) "exact frees" (ndomains * per_domain) s.Alloc_stats.frees;
  Alcotest.(check int) "exact bytes requested" (ndomains * reps * bytes_per_rep) s.Alloc_stats.bytes_requested;
  Alcotest.(check int) "no live bytes" 0 s.Alloc_stats.live_bytes;
  Alcotest.(check bool) "peak covers one domain's footprint" true
    (s.Alloc_stats.peak_live_bytes >= reps * bytes_per_rep);
  Hoard.check h;
  for id = 0 to Hoard.nheaps h do
    Alcotest.(check bool) (Printf.sprintf "invariant heap %d" id) true (Hoard.invariant_holds h ~heap_id:id)
  done;
  Platform.host_release pf

(* --- domain churn: create / serve / exit waves --- *)

let test_churn_waves () =
  (* Successive waves of domains are born, serve one batch (with every
     free crossing to a neighbour's heap through the front-end cache),
     retire through [thread_exit] and die. The runtime recycles domain
     ids across waves, so a tcache that exit failed to retire would be
     inherited — stale — by a later wave's domain. thread_exit is called
     twice per domain: the second call must find no cache and an empty
     heap (exit is idempotent; a double exit-flush would double-count
     frees). After each wave, a global [Hoard.flush_caches] settles the
     remote-free queues the exits legitimately left behind (an exiting
     thread's evictions can land on a heap whose own thread is already
     gone) — but it must find ZERO blocks still sitting in any front-end
     cache: [cache_flushes] may not move during it. That is the leaked-
     tcache probe; conservation after the settle is exact. *)
  let waves = 5 and batch = 48 in
  let pf = Platform.host ~nprocs:ndomains () in
  let h = Hoard.create ~config:(Hoard_config.make ~front_end:8 ()) pf in
  let a = Hoard.allocator h in
  let failures = Atomic.make 0 in
  for wave = 1 to waves do
    let stash = Array.init ndomains (fun _ -> Array.make batch 0) in
    let barrier = make_barrier ndomains in
    spawn_domains ndomains (fun d ->
        let rng = Random.State.make [| 0xc4a0; wave; d |] in
        for i = 0 to batch - 1 do
          let size = 8 + Random.State.int rng 1016 in
          let addr = a.Alloc_intf.malloc size in
          if a.Alloc_intf.usable_size addr < size then Atomic.incr failures;
          stash.(d).(i) <- addr
        done;
        barrier ();
        (* Serve: free the neighbour's batch — remote frees batching
           through this domain's cache onto other heaps' queues. *)
        let victim = stash.((d + 1) mod ndomains) in
        for i = 0 to batch - 1 do
          a.Alloc_intf.free victim.(i)
        done;
        barrier ();
        (* Retire; exits of different domains race each other's heap
           adoptions on the global heap. *)
        a.Alloc_intf.thread_exit ();
        a.Alloc_intf.thread_exit ());
    (* Every domain retired: no cache may still hold blocks, so the
       settling flush must not flush a single one. *)
    let before = (a.Alloc_intf.stats ()).Alloc_stats.cache_flushes in
    Hoard.flush_caches h;
    let s = a.Alloc_intf.stats () in
    Alcotest.(check int)
      (Printf.sprintf "wave %d no leaked tcache blocks" wave)
      before s.Alloc_stats.cache_flushes;
    let expected = wave * ndomains * batch in
    Alcotest.(check int) (Printf.sprintf "wave %d exact mallocs" wave) expected s.Alloc_stats.mallocs;
    Alcotest.(check int) (Printf.sprintf "wave %d exact frees" wave) expected s.Alloc_stats.frees;
    Alcotest.(check int) (Printf.sprintf "wave %d no live bytes" wave) 0 s.Alloc_stats.live_bytes;
    Hoard.check h;
    (* Per-processor heaps only: the global heap is the designed home
       for adopted superblocks whose blocks the settle just freed, so
       the per-processor emptiness invariant does not apply to it. *)
    for id = 1 to Hoard.nheaps h do
      Alcotest.(check bool)
        (Printf.sprintf "wave %d invariant heap %d" wave id)
        true
        (Hoard.invariant_holds h ~heap_id:id)
    done
  done;
  Alcotest.(check int) "no usable_size failures" 0 (Atomic.get failures);
  let s = a.Alloc_intf.stats () in
  Alcotest.(check bool)
    (Printf.sprintf "orphan adoptions recorded (%d)" s.Alloc_stats.orphan_adoptions)
    true
    (s.Alloc_stats.orphan_adoptions >= 1);
  Platform.host_release pf

(* --- the same storm under fuzzed simulator schedules --- *)

let test_sim_fuzzed_storm () =
  let rounds = 6 and batch = 24 and nthreads = 4 in
  List.iter
    (fun seed ->
      let sim = Sim.create ~fuzz_schedule:seed ~nprocs:nthreads () in
      let pf = Sim.platform sim in
      let a = (Hoard.factory ()).Alloc_intf.instantiate pf in
      let slots = Array.init nthreads (fun _ -> Array.make batch 0) in
      let barrier = Sim.new_barrier sim ~parties:nthreads in
      for t = 0 to nthreads - 1 do
        ignore
          (Sim.spawn sim (fun () ->
               let rng = Random.State.make [| seed; t |] in
               for _ = 1 to rounds do
                 for i = 0 to batch - 1 do
                   (* Mix of small and (rarely) large requests. *)
                   let size =
                     if Random.State.int rng 16 = 0 then 4096 + Random.State.int rng 4096
                     else 8 + Random.State.int rng 1024
                   in
                   let addr = a.Alloc_intf.malloc size in
                   assert (a.Alloc_intf.usable_size addr >= size);
                   slots.(t).(i) <- addr
                 done;
                 Sim.barrier_wait barrier;
                 let victim = slots.((t + 1) mod nthreads) in
                 for i = 0 to batch - 1 do
                   a.Alloc_intf.free victim.(i)
                 done;
                 Sim.barrier_wait barrier
               done))
      done;
      Sim.run sim;
      a.Alloc_intf.check ();
      let s = a.Alloc_intf.stats () in
      let expected = nthreads * rounds * batch in
      Alcotest.(check int) (Printf.sprintf "seed %d exact mallocs" seed) expected s.Alloc_stats.mallocs;
      Alcotest.(check int) (Printf.sprintf "seed %d exact frees" seed) expected s.Alloc_stats.frees;
      Alcotest.(check int) (Printf.sprintf "seed %d no live bytes" seed) 0 s.Alloc_stats.live_bytes)
    [ 0; 1; 2; 3; 4; 5; 6; 7 ]

(* --- registry under concurrent register/unregister/lookup --- *)

let test_registry_concurrent () =
  let pf = Platform.host ~nprocs:ndomains () in
  let sb_size = 8192 in
  let reg = Sb_registry.create pf ~sb_size in
  let per_domain = 400 in
  let failures = Atomic.make 0 in
  spawn_domains ndomains (fun d ->
      (* Disjoint slot ranges per domain; lookups race against the other
         domains' registrations and removals. *)
      let base i = ((d * per_domain) + i) * sb_size in
      let sbs =
        Array.init per_domain (fun i ->
            Superblock.create ~base:(base i) ~sb_size ~sclass:0 ~block_size:16)
      in
      for i = 0 to per_domain - 1 do
        Sb_registry.register reg sbs.(i);
        (match Sb_registry.lookup reg ~addr:(base i + (sb_size / 2)) with
         | Some sb when sb == sbs.(i) -> ()
         | _ -> Atomic.incr failures);
        (* Probe a foreign domain's range: must never raise or tear. *)
        ignore (Sb_registry.lookup reg ~addr:(((d + 1) mod ndomains) * per_domain * sb_size))
      done;
      for i = 0 to per_domain - 1 do
        if i land 1 = 0 then Sb_registry.unregister reg sbs.(i)
      done);
  Alcotest.(check int) "no lookup failures" 0 (Atomic.get failures);
  Alcotest.(check int) "count reflects survivors" (ndomains * per_domain / 2) (Sb_registry.count reg);
  Platform.host_release pf

let () =
  Alcotest.run "race_stress"
    [
      ( "domains",
        [
          Alcotest.test_case "cross-heap free storm" `Quick test_free_storm;
          Alcotest.test_case "front-end free storm" `Quick test_front_end_storm;
          Alcotest.test_case "producer-consumer ring" `Quick test_producer_consumer;
          Alcotest.test_case "stats exact across domains" `Quick test_stats_exact;
          Alcotest.test_case "churn waves create/serve/exit" `Quick test_churn_waves;
          Alcotest.test_case "registry concurrent ops" `Quick test_registry_concurrent;
        ] );
      ("simsched", [ Alcotest.test_case "fuzzed-schedule storm" `Quick test_sim_fuzzed_storm ]);
    ]
