(* Baseline allocators: per-family behaviour plus a generic correctness
   suite run over every allocator in the taxonomy (including Hoard). *)

(* --- generic correctness, parameterised over the allocator --- *)

let generic_roundtrip (f : Alloc_intf.factory) () =
  let a = f.Alloc_intf.instantiate (Platform.host ()) in
  let p = a.Alloc_intf.malloc 100 in
  Alcotest.(check bool) "usable >= request" true (a.Alloc_intf.usable_size p >= 100);
  a.Alloc_intf.free p;
  Alcotest.(check int) "live zero" 0 (a.Alloc_intf.stats ()).Alloc_stats.live_bytes;
  a.Alloc_intf.check ()

let generic_no_overlap (f : Alloc_intf.factory) () =
  let a = f.Alloc_intf.instantiate (Platform.host ()) in
  let rng = Rng.create 7 in
  let live = ref [] in
  for _ = 1 to 2000 do
    if Rng.bool rng || !live = [] then begin
      let size = Rng.int_in rng 1 6000 in
      let p = a.Alloc_intf.malloc size in
      live := (p, a.Alloc_intf.usable_size p) :: !live
    end
    else begin
      match !live with
      | (p, _) :: rest ->
        a.Alloc_intf.free p;
        live := rest
      | [] -> ()
    end
  done;
  a.Alloc_intf.check ();
  let sorted = List.sort compare !live in
  let rec disjoint = function
    | (a1, s1) :: ((a2, _) :: _ as rest) ->
      if a1 + s1 > a2 then failwith (Printf.sprintf "overlap: %x+%d vs %x" a1 s1 a2) else disjoint rest
    | _ -> true
  in
  Alcotest.(check bool) "live blocks disjoint" true (disjoint sorted);
  List.iter (fun (p, _) -> a.Alloc_intf.free p) !live;
  Alcotest.(check int) "all returned" 0 (a.Alloc_intf.stats ()).Alloc_stats.live_bytes;
  a.Alloc_intf.check ()

let generic_held_covers_live (f : Alloc_intf.factory) () =
  let pf = Platform.host () in
  let a = f.Alloc_intf.instantiate pf in
  let ps = List.init 300 (fun i -> a.Alloc_intf.malloc (8 + (8 * (i mod 100)))) in
  let s = a.Alloc_intf.stats () in
  Alcotest.(check bool) "held >= live" true (s.Alloc_stats.held_bytes >= s.Alloc_stats.live_bytes);
  (* Held bytes as tracked by the allocator must agree with the address
     space's per-owner accounting. *)
  Alcotest.(check int) "held = vmem owner bytes" (pf.Platform.mapped_bytes ~owner:a.Alloc_intf.owner)
    s.Alloc_stats.held_bytes;
  List.iter a.Alloc_intf.free ps

let generic_sim_multithread (f : Alloc_intf.factory) () =
  (* Four threads allocate and free concurrently on the simulator; the
     allocator must stay sound and account every byte. *)
  let sim = Sim.create ~nprocs:4 () in
  let a = f.Alloc_intf.instantiate (Sim.platform sim) in
  for t = 0 to 3 do
    ignore
      (Sim.spawn sim (fun () ->
           let rng = Rng.create (1000 + t) in
           let live = ref [] in
           for _ = 1 to 300 do
             if Rng.bool rng || !live = [] then live := a.Alloc_intf.malloc (Rng.int_in rng 8 256) :: !live
             else begin
               match !live with
               | p :: rest ->
                 a.Alloc_intf.free p;
                 live := rest
               | [] -> ()
             end
           done;
           List.iter a.Alloc_intf.free !live))
  done;
  Sim.run sim;
  a.Alloc_intf.check ();
  Alcotest.(check int) "nothing live" 0 (a.Alloc_intf.stats ()).Alloc_stats.live_bytes

let generic_sim_cross_thread_free (f : Alloc_intf.factory) () =
  (* Producer on proc 0 allocates, consumer on proc 1 frees. *)
  let sim = Sim.create ~nprocs:2 () in
  let a = f.Alloc_intf.instantiate (Sim.platform sim) in
  let b = Sim.new_barrier sim ~parties:2 in
  let box = ref [] in
  ignore
    (Sim.spawn sim ~proc:0 (fun () ->
         for _ = 1 to 10 do
           box := List.init 50 (fun i -> a.Alloc_intf.malloc (8 + (8 * (i mod 16))));
           Sim.barrier_wait b;
           Sim.barrier_wait b
         done));
  ignore
    (Sim.spawn sim ~proc:1 (fun () ->
         for _ = 1 to 10 do
           Sim.barrier_wait b;
           List.iter a.Alloc_intf.free !box;
           box := [];
           Sim.barrier_wait b
         done));
  Sim.run sim;
  a.Alloc_intf.check ();
  Alcotest.(check int) "nothing live" 0 (a.Alloc_intf.stats ()).Alloc_stats.live_bytes

let generic_suite name f =
  ( name,
    [
      Alcotest.test_case "roundtrip" `Quick (generic_roundtrip f);
      Alcotest.test_case "no overlap" `Quick (generic_no_overlap f);
      Alcotest.test_case "held covers live" `Quick (generic_held_covers_live f);
      Alcotest.test_case "sim multithread" `Quick (generic_sim_multithread f);
      Alcotest.test_case "sim cross-thread free" `Quick (generic_sim_cross_thread_free f);
    ] )

(* --- family-specific behaviour --- *)

let test_serial_single_lock_contention () =
  let sim = Sim.create ~nprocs:4 () in
  let t = Serial_alloc.create (Sim.platform sim) in
  let a = Serial_alloc.allocator t in
  for _ = 0 to 3 do
    ignore
      (Sim.spawn sim (fun () ->
           for _ = 1 to 100 do
             a.Alloc_intf.free (a.Alloc_intf.malloc 64)
           done))
  done;
  Sim.run sim;
  let spins = List.fold_left (fun acc (_, _, s) -> acc + s) 0 (Sim.lock_stats sim) in
  Alcotest.(check bool) (Printf.sprintf "heap lock contended (%d spins)" spins) true (spins > 0)

let test_pure_private_blowup_unbounded () =
  (* Producer-consumer: pure-private's held memory grows with rounds even
     though live memory is constant — the unbounded blowup of the paper. *)
  let sim = Sim.create ~nprocs:2 () in
  let t = Pure_private.create (Sim.platform sim) in
  let a = Pure_private.allocator t in
  let b = Sim.new_barrier sim ~parties:2 in
  let box = ref [] in
  let rounds = 40 and batch = 300 in
  ignore
    (Sim.spawn sim ~proc:0 (fun () ->
         for _ = 1 to rounds do
           box := List.init batch (fun _ -> a.Alloc_intf.malloc 64);
           Sim.barrier_wait b;
           Sim.barrier_wait b
         done));
  ignore
    (Sim.spawn sim ~proc:1 (fun () ->
         for _ = 1 to rounds do
           Sim.barrier_wait b;
           List.iter a.Alloc_intf.free !box;
           box := [];
           Sim.barrier_wait b
         done));
  Sim.run sim;
  let s = a.Alloc_intf.stats () in
  let blowup = float_of_int s.Alloc_stats.peak_held_bytes /. float_of_int s.Alloc_stats.peak_live_bytes in
  Alcotest.(check bool) (Printf.sprintf "blowup %.1fx grows with rounds" blowup) true (blowup > 10.0);
  (* The freed memory is stranded on the consumer's lists. *)
  Alcotest.(check bool) "stranded on consumer" true (Pure_private.thread_free_bytes t ~tid:1 > 0)

let test_private_ownership_blowup_bounded_by_p () =
  (* Same adversary: ownership-based heaps stay bounded (no growth with
     rounds), unlike pure-private. *)
  let sim = Sim.create ~nprocs:2 () in
  let t = Private_ownership.create (Sim.platform sim) in
  let a = Private_ownership.allocator t in
  let b = Sim.new_barrier sim ~parties:2 in
  let box = ref [] in
  let rounds = 40 and batch = 300 in
  ignore
    (Sim.spawn sim ~proc:0 (fun () ->
         for _ = 1 to rounds do
           box := List.init batch (fun _ -> a.Alloc_intf.malloc 64);
           Sim.barrier_wait b;
           Sim.barrier_wait b
         done));
  ignore
    (Sim.spawn sim ~proc:1 (fun () ->
         for _ = 1 to rounds do
           Sim.barrier_wait b;
           List.iter a.Alloc_intf.free !box;
           box := [];
           Sim.barrier_wait b
         done));
  Sim.run sim;
  let s = a.Alloc_intf.stats () in
  let blowup = float_of_int s.Alloc_stats.peak_held_bytes /. float_of_int s.Alloc_stats.peak_live_bytes in
  Alcotest.(check bool) (Printf.sprintf "blowup %.1fx stays small" blowup) true (blowup < 4.0)

let test_concurrent_single_classes_parallel () =
  (* Two threads on different size classes should not contend. *)
  let sim = Sim.create ~nprocs:2 () in
  let t = Concurrent_single.create (Sim.platform sim) in
  let a = Concurrent_single.allocator t in
  ignore
    (Sim.spawn sim ~proc:0 (fun () ->
         for _ = 1 to 200 do
           a.Alloc_intf.free (a.Alloc_intf.malloc 8)
         done));
  ignore
    (Sim.spawn sim ~proc:1 (fun () ->
         for _ = 1 to 200 do
           a.Alloc_intf.free (a.Alloc_intf.malloc 1024)
         done));
  Sim.run sim;
  let spins = List.fold_left (fun acc (_, _, s) -> acc + s) 0 (Sim.lock_stats sim) in
  Alcotest.(check int) "no lock contention across classes" 0 spins

let test_threshold_flushes_to_global_pool () =
  let pf = Platform.host () in
  let t = Private_threshold.create ~threshold:16 pf in
  let a = Private_threshold.allocator t in
  (* Free more than the threshold in one class: the excess must land in
     the global pool. *)
  let ps = List.init 40 (fun _ -> a.Alloc_intf.malloc 64) in
  List.iter a.Alloc_intf.free ps;
  let sclass = 7 in
  ignore sclass;
  let total_pool = ref 0 in
  for c = 0 to 40 do
    (try total_pool := !total_pool + Private_threshold.global_pool_blocks t ~sclass:c with _ -> ())
  done;
  Alcotest.(check bool) (Printf.sprintf "pool has blocks (%d)" !total_pool) true (!total_pool > 0);
  a.Alloc_intf.check ()

let test_threshold_blowup_bounded () =
  (* Producer-consumer: freed blocks flow back through the global pool, so
     consumption stays bounded, unlike pure-private. *)
  let sim = Sim.create ~nprocs:2 () in
  let t = Private_threshold.create (Sim.platform sim) in
  let a = Private_threshold.allocator t in
  let b = Sim.new_barrier sim ~parties:2 in
  let box = ref [] in
  let rounds = 40 and batch = 300 in
  ignore
    (Sim.spawn sim ~proc:0 (fun () ->
         for _ = 1 to rounds do
           box := List.init batch (fun _ -> a.Alloc_intf.malloc 64);
           Sim.barrier_wait b;
           Sim.barrier_wait b
         done));
  ignore
    (Sim.spawn sim ~proc:1 (fun () ->
         for _ = 1 to rounds do
           Sim.barrier_wait b;
           List.iter a.Alloc_intf.free !box;
           box := [];
           Sim.barrier_wait b
         done));
  Sim.run sim;
  let s = a.Alloc_intf.stats () in
  let blowup = float_of_int s.Alloc_stats.peak_held_bytes /. float_of_int s.Alloc_stats.peak_live_bytes in
  Alcotest.(check bool) (Printf.sprintf "blowup %.1fx bounded" blowup) true (blowup < 5.0)

let test_pure_private_no_locks_on_fast_path () =
  let sim = Sim.create ~nprocs:2 () in
  let t = Pure_private.create (Sim.platform sim) in
  let a = Pure_private.allocator t in
  for _ = 0 to 1 do
    ignore
      (Sim.spawn sim (fun () ->
           for _ = 1 to 100 do
             a.Alloc_intf.free (a.Alloc_intf.malloc 64)
           done))
  done;
  Sim.run sim;
  (* The malloc/free fast path takes no lock: the only acquisitions are
     the heap-table lock (once per thread) and a registry stripe lock
     (once per superblock registration, a map-time event) — nothing
     proportional to the 200 operations. *)
  let maps = (a.Alloc_intf.stats ()).Alloc_stats.os_maps in
  let acqs = List.fold_left (fun acc (_, n, _) -> acc + n) 0 (Sim.lock_stats sim) in
  Alcotest.(check bool)
    (Printf.sprintf "at most %d acquisitions (%d)" (2 + maps) acqs)
    true
    (acqs <= 2 + maps)

let () =
  Alcotest.run "baselines"
    [
      generic_suite "generic:serial" (Serial_alloc.factory ());
      generic_suite "generic:concurrent-single" (Concurrent_single.factory ());
      generic_suite "generic:pure-private" (Pure_private.factory ());
      generic_suite "generic:private-ownership" (Private_ownership.factory ());
      generic_suite "generic:private-threshold" (Private_threshold.factory ());
      generic_suite "generic:hoard" (Hoard.factory ());
      ( "family",
        [
          Alcotest.test_case "serial lock contention" `Quick test_serial_single_lock_contention;
          Alcotest.test_case "pure-private blowup" `Quick test_pure_private_blowup_unbounded;
          Alcotest.test_case "ownership blowup bounded" `Quick test_private_ownership_blowup_bounded_by_p;
          Alcotest.test_case "concurrent-single parallel classes" `Quick test_concurrent_single_classes_parallel;
          Alcotest.test_case "pure-private lock-free" `Quick test_pure_private_no_locks_on_fast_path;
          Alcotest.test_case "threshold flushes to pool" `Quick test_threshold_flushes_to_global_pool;
          Alcotest.test_case "threshold blowup bounded" `Quick test_threshold_blowup_bounded;
        ] );
    ]
