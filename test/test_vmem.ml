(* Simulated OS memory: accounting, alignment, reuse, owner tagging. *)

let test_map_rounds_to_pages () =
  let vm = Vmem.create () in
  let a = Vmem.map vm ~bytes:100 ~align:4096 () in
  Alcotest.(check (option int)) "rounded to a page" (Some 4096) (Vmem.region_size vm ~addr:a);
  Alcotest.(check int) "mapped" 4096 (Vmem.mapped_bytes vm)

let test_alignment_respected () =
  let vm = Vmem.create () in
  ignore (Vmem.map vm ~bytes:4096 ~align:4096 ());
  let a = Vmem.map vm ~bytes:8192 ~align:65536 () in
  Alcotest.(check int) "64 KiB aligned" 0 (a mod 65536)

let test_unmap_releases () =
  let vm = Vmem.create () in
  let a = Vmem.map vm ~bytes:8192 ~align:4096 () in
  Vmem.unmap vm ~addr:a;
  Alcotest.(check int) "nothing mapped" 0 (Vmem.mapped_bytes vm);
  Alcotest.(check int) "peak remembers" 8192 (Vmem.peak_bytes vm)

let test_unmap_bad_addr_rejected () =
  let vm = Vmem.create () in
  ignore (Vmem.map vm ~bytes:4096 ~align:4096 ());
  Alcotest.check_raises "bad base" (Invalid_argument "Vmem.unmap: not a live region base") (fun () ->
      Vmem.unmap vm ~addr:12345)

let test_exact_size_reuse () =
  let vm = Vmem.create () in
  let a = Vmem.map vm ~bytes:8192 ~align:8192 () in
  Vmem.unmap vm ~addr:a;
  let b = Vmem.map vm ~bytes:8192 ~align:8192 () in
  Alcotest.(check int) "freed region reused" a b

let test_reuse_respects_alignment () =
  let vm = Vmem.create () in
  (* Free a page at an address that is not 64 KiB-aligned, then request a
     64 KiB-aligned page: the free region must not be reused. *)
  ignore (Vmem.map vm ~bytes:4096 ~align:4096 ());
  let a = Vmem.map vm ~bytes:4096 ~align:4096 () in
  Vmem.unmap vm ~addr:a;
  if a mod 65536 <> 0 then begin
    let b = Vmem.map vm ~bytes:4096 ~align:65536 () in
    Alcotest.(check bool) "not reused" true (b <> a);
    Alcotest.(check int) "aligned" 0 (b mod 65536)
  end

let test_owner_accounting () =
  let vm = Vmem.create () in
  let a1 = Vmem.map vm ~owner:1 ~bytes:4096 ~align:4096 () in
  let _a2 = Vmem.map vm ~owner:2 ~bytes:8192 ~align:4096 () in
  Alcotest.(check int) "owner 1" 4096 (Vmem.mapped_bytes_of_owner vm 1);
  Alcotest.(check int) "owner 2" 8192 (Vmem.mapped_bytes_of_owner vm 2);
  Vmem.unmap vm ~addr:a1;
  Alcotest.(check int) "owner 1 released" 0 (Vmem.mapped_bytes_of_owner vm 1);
  Alcotest.(check int) "owner 1 peak" 4096 (Vmem.peak_bytes_of_owner vm 1);
  Alcotest.(check int) "owner 3 never mapped" 0 (Vmem.mapped_bytes_of_owner vm 3)

let test_is_mapped () =
  let vm = Vmem.create () in
  let a = Vmem.map vm ~bytes:8192 ~align:4096 () in
  Alcotest.(check bool) "base" true (Vmem.is_mapped vm ~addr:a);
  Alcotest.(check bool) "interior" true (Vmem.is_mapped vm ~addr:(a + 5000));
  Alcotest.(check bool) "just past" false (Vmem.is_mapped vm ~addr:(a + 8192));
  Alcotest.(check bool) "before everything" false (Vmem.is_mapped vm ~addr:100)

let test_map_count () =
  let vm = Vmem.create () in
  let a = Vmem.map vm ~bytes:4096 ~align:4096 () in
  Vmem.unmap vm ~addr:a;
  ignore (Vmem.map vm ~bytes:4096 ~align:4096 ());
  Alcotest.(check int) "two maps" 2 (Vmem.map_count vm);
  Alcotest.(check int) "one unmap" 1 (Vmem.unmap_count vm)

let test_bad_args_rejected () =
  let vm = Vmem.create () in
  Alcotest.check_raises "zero bytes" (Invalid_argument "Vmem.map: bytes must be positive") (fun () ->
      ignore (Vmem.map vm ~bytes:0 ~align:4096 ()));
  Alcotest.check_raises "align below page" (Invalid_argument "Vmem.map: align must be a power of two >= page_size")
    (fun () -> ignore (Vmem.map vm ~bytes:4096 ~align:8 ()))

(* Property: live regions returned by map are pairwise disjoint, whatever
   the interleaving of maps and unmaps. *)
let test_regions_disjoint =
  QCheck.Test.make ~name:"Vmem live regions pairwise disjoint" ~count:100
    QCheck.(list (pair (int_range 1 5) bool))
    (fun ops ->
      let vm = Vmem.create () in
      let live = ref [] in
      List.iter
        (fun (pages, unmap_one) ->
          if unmap_one && !live <> [] then begin
            match !live with
            | (a, _) :: rest ->
              Vmem.unmap vm ~addr:a;
              live := rest
            | [] -> ()
          end
          else begin
            let bytes = pages * 4096 in
            let a = Vmem.map vm ~bytes ~align:4096 () in
            live := (a, bytes) :: !live
          end)
        ops;
      let sorted = List.sort compare !live in
      let rec disjoint = function
        | (a1, s1) :: ((a2, _) :: _ as rest) -> a1 + s1 <= a2 && disjoint rest
        | _ -> true
      in
      disjoint sorted
      && Vmem.mapped_bytes vm = List.fold_left (fun acc (_, s) -> acc + s) 0 !live)

(* --- backends: the same surface under every reuse policy --- *)

let each_backend f = List.iter (fun k -> f k) Vmem_backend.all_kinds

let test_backend_basics () =
  each_backend (fun k ->
      let name = Vmem_backend.kind_name k in
      let vm = Vmem.create ~backend:k () in
      Alcotest.(check bool) (name ^ " kind") true (Vmem.backend_kind vm = k);
      let a = Vmem.map vm ~bytes:100 ~align:4096 () in
      Alcotest.(check (option int)) (name ^ " rounded") (Some 4096) (Vmem.region_size vm ~addr:a);
      let b = Vmem.map vm ~bytes:8192 ~align:65536 () in
      Alcotest.(check int) (name ^ " aligned") 0 (b mod 65536);
      Vmem.unmap vm ~addr:a;
      Vmem.unmap vm ~addr:b;
      Alcotest.(check int) (name ^ " empty") 0 (Vmem.mapped_bytes vm);
      Vmem.check vm)

let test_backend_reuse () =
  (* All three policies must reuse an identical repeat request; only the
     non-exact ones must also satisfy a differently-sized one from freed
     space. *)
  each_backend (fun k ->
      let name = Vmem_backend.kind_name k in
      let vm = Vmem.create ~backend:k () in
      let a = Vmem.map vm ~bytes:8192 ~align:8192 () in
      Vmem.unmap vm ~addr:a;
      let b = Vmem.map vm ~bytes:8192 ~align:8192 () in
      Alcotest.(check int) (name ^ " same-size reuse") a b;
      Vmem.check vm)

let test_firstfit_coalesce_and_split () =
  let vm = Vmem.create ~backend:Vmem_backend.First_fit () in
  (* Three adjacent pages freed separately must coalesce: a 3-page
     request is served from them without growing the address space. *)
  let a1 = Vmem.map vm ~bytes:4096 ~align:4096 () in
  let a2 = Vmem.map vm ~bytes:4096 ~align:4096 () in
  let a3 = Vmem.map vm ~bytes:4096 ~align:4096 () in
  Alcotest.(check int) "adjacent" (a1 + 4096) a2;
  let span0 = Vmem.address_space_bytes vm in
  Vmem.unmap vm ~addr:a1;
  Vmem.unmap vm ~addr:a3;
  Vmem.unmap vm ~addr:a2;
  (* out of order: merges both neighbours *)
  let b = Vmem.map vm ~bytes:(3 * 4096) ~align:4096 () in
  Alcotest.(check int) "coalesced reuse" a1 b;
  Alcotest.(check int) "no address-space growth" span0 (Vmem.address_space_bytes vm);
  (* Splitting: free the 3 pages again, take 1 — the remainder must
     serve the next 2-page request. *)
  Vmem.unmap vm ~addr:b;
  let c = Vmem.map vm ~bytes:4096 ~align:4096 () in
  let d = Vmem.map vm ~bytes:(2 * 4096) ~align:4096 () in
  Alcotest.(check int) "split head" a1 c;
  Alcotest.(check int) "split tail" (a1 + 4096) d;
  Alcotest.(check int) "still no growth" span0 (Vmem.address_space_bytes vm);
  Vmem.check vm

let test_buddy_merge () =
  let vm = Vmem.create ~backend:Vmem_backend.Buddy () in
  (* Two 4 KiB buddies freed must merge into an 8 KiB chunk that can
     serve an 8 KiB-aligned 8 KiB request without new address space. *)
  let a = Vmem.map vm ~bytes:8192 ~align:8192 () in
  Vmem.unmap vm ~addr:a;
  (* Now the backend holds one 8 KiB chunk at a. Take its two halves... *)
  let h1 = Vmem.map vm ~bytes:4096 ~align:4096 () in
  let h2 = Vmem.map vm ~bytes:4096 ~align:4096 () in
  Alcotest.(check bool) "halves from the chunk" true (h1 >= a && h1 < a + 8192 && h2 >= a && h2 < a + 8192);
  let span0 = Vmem.address_space_bytes vm in
  (* ...free them: they must re-merge so the 8 KiB request fits again. *)
  Vmem.unmap vm ~addr:h1;
  Vmem.unmap vm ~addr:h2;
  let b = Vmem.map vm ~bytes:8192 ~align:8192 () in
  Alcotest.(check int) "buddies re-merged" a b;
  Alcotest.(check int) "no growth" span0 (Vmem.address_space_bytes vm);
  Vmem.check vm

(* Differential fuzz: one random map/unmap/align trace replayed against
   all three backends. Placement may differ; the accounting surface may
   not: mapped = sum of live regions, regions disjoint (Vmem.check),
   owner totals agree across backends, and every map is properly
   aligned. *)
let test_backend_differential =
  QCheck.Test.make ~name:"Vmem backends agree on the accounting surface" ~count:60
    QCheck.(list (triple (int_range 1 9) (int_range 0 2) bool))
    (fun ops ->
      let run k =
        let vm = Vmem.create ~backend:k () in
        let live = ref [] in
        List.iter
          (fun (pages, align_pow, unmap_oldest) ->
            if unmap_oldest && !live <> [] then begin
              let a = List.hd (List.rev !live) in
              Vmem.unmap vm ~addr:a;
              live := List.filter (fun x -> x <> a) !live
            end
            else begin
              let align = 4096 lsl align_pow in
              let owner = pages mod 3 in
              let a = Vmem.map vm ~owner ~bytes:(pages * 4096) ~align () in
              if a mod align <> 0 then failwith "unaligned map";
              live := a :: !live
            end)
          ops;
        Vmem.check vm;
        ( Vmem.mapped_bytes vm,
          Vmem.map_count vm,
          Vmem.unmap_count vm,
          List.map (fun o -> Vmem.mapped_bytes_of_owner vm o) [ 0; 1; 2 ] )
      in
      let exact = run Vmem_backend.Exact in
      let ff = run Vmem_backend.First_fit in
      let buddy = run Vmem_backend.Buddy in
      exact = ff && ff = buddy)

(* --- residency --- *)

let test_decommit_commit () =
  each_backend (fun k ->
      let name = Vmem_backend.kind_name k in
      let vm = Vmem.create ~backend:k () in
      let a = Vmem.map vm ~bytes:8192 ~align:4096 () in
      let b = Vmem.map vm ~bytes:4096 ~align:4096 () in
      Alcotest.(check int) (name ^ " all resident") 12288 (Vmem.resident_bytes vm);
      Vmem.decommit vm ~addr:a;
      Alcotest.(check int) (name ^ " resident after decommit") 4096 (Vmem.resident_bytes vm);
      Alcotest.(check int) (name ^ " mapped unchanged") 12288 (Vmem.mapped_bytes vm);
      Alcotest.(check bool) (name ^ " page decommitted") true
        (Vmem.residency vm ~addr:(a + 4100) = Vmem.Decommitted);
      Alcotest.(check bool) (name ^ " other resident") true (Vmem.is_resident vm ~addr:b);
      (* Idempotent: a second decommit neither double-debits nor counts. *)
      Vmem.decommit vm ~addr:a;
      Alcotest.(check int) (name ^ " idempotent decommit") 4096 (Vmem.resident_bytes vm);
      Alcotest.(check int) (name ^ " one decommit counted") 1 (Vmem.decommit_count vm);
      Vmem.commit vm ~addr:a;
      Vmem.commit vm ~addr:a;
      Alcotest.(check int) (name ^ " recommitted") 12288 (Vmem.resident_bytes vm);
      Alcotest.(check int) (name ^ " one commit counted") 1 (Vmem.commit_count vm);
      Alcotest.(check int) (name ^ " peak resident") 12288 (Vmem.peak_resident_bytes vm);
      Vmem.check vm)

let test_unmap_decommitted () =
  let vm = Vmem.create () in
  let a = Vmem.map vm ~bytes:8192 ~align:4096 () in
  Vmem.decommit vm ~addr:a;
  Vmem.unmap vm ~addr:a;
  Alcotest.(check int) "resident not double-debited" 0 (Vmem.resident_bytes vm);
  Alcotest.(check int) "nothing mapped" 0 (Vmem.mapped_bytes vm);
  Alcotest.(check bool) "unmapped" true (Vmem.residency vm ~addr:a = Vmem.Unmapped);
  Vmem.check vm

(* --- is_mapped regression: one huge region + many small ones ---
   The seed walked backwards one page at a time from the probe address,
   so a probe into the middle of a huge region cost max_region/page_size
   lookups. The interval index answers in O(log n); with a 256 MiB
   region and thousands of probes this completes instantly where the
   walk took ~65k hash probes per query. *)
let test_is_mapped_huge_region () =
  let vm = Vmem.create () in
  let huge_bytes = 256 * 1024 * 1024 in
  let huge = Vmem.map vm ~bytes:huge_bytes ~align:4096 () in
  let smalls = Array.init 200 (fun _ -> Vmem.map vm ~bytes:4096 ~align:4096 ()) in
  (* Probes all over the huge region, each interior page boundary region. *)
  for i = 0 to 4095 do
    let addr = huge + (i * (huge_bytes / 4096)) in
    if not (Vmem.is_mapped vm ~addr) then Alcotest.failf "huge interior %#x not mapped" addr
  done;
  Array.iter
    (fun a ->
      Alcotest.(check bool) "small mapped" true (Vmem.is_mapped vm ~addr:(a + 17));
      Alcotest.(check (option int)) "small sized" (Some 4096) (Vmem.region_size vm ~addr:a))
    smalls;
  Alcotest.(check bool) "past the end" false
    (Vmem.is_mapped vm ~addr:(smalls.(199) + 4096 + (1 lsl 30)));
  Vmem.check vm

let () =
  Alcotest.run "vmem"
    [
      ( "map/unmap",
        [
          Alcotest.test_case "page rounding" `Quick test_map_rounds_to_pages;
          Alcotest.test_case "alignment" `Quick test_alignment_respected;
          Alcotest.test_case "unmap releases" `Quick test_unmap_releases;
          Alcotest.test_case "bad unmap" `Quick test_unmap_bad_addr_rejected;
          Alcotest.test_case "exact reuse" `Quick test_exact_size_reuse;
          Alcotest.test_case "aligned reuse" `Quick test_reuse_respects_alignment;
          Alcotest.test_case "bad args" `Quick test_bad_args_rejected;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "owners" `Quick test_owner_accounting;
          Alcotest.test_case "is_mapped" `Quick test_is_mapped;
          Alcotest.test_case "map count" `Quick test_map_count;
          QCheck_alcotest.to_alcotest test_regions_disjoint;
          Alcotest.test_case "is_mapped huge region" `Quick test_is_mapped_huge_region;
        ] );
      ( "backends",
        [
          Alcotest.test_case "basics under every policy" `Quick test_backend_basics;
          Alcotest.test_case "same-size reuse everywhere" `Quick test_backend_reuse;
          Alcotest.test_case "first-fit coalesce + split" `Quick test_firstfit_coalesce_and_split;
          Alcotest.test_case "buddy merge" `Quick test_buddy_merge;
          QCheck_alcotest.to_alcotest test_backend_differential;
        ] );
      ( "residency",
        [
          Alcotest.test_case "decommit/commit" `Quick test_decommit_commit;
          Alcotest.test_case "unmap decommitted" `Quick test_unmap_decommitted;
        ] );
    ]
