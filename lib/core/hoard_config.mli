(** Tunables of the Hoard algorithm, with the paper's defaults. *)

type t = {
  sb_size : int;
      (** S: superblock size in bytes; power of two (paper: 8 KiB). *)
  empty_fraction : float;
      (** f: a heap may keep at most a fraction f of its superblock bytes
          free before crossing the emptiness threshold (paper: 1/4). *)
  slack : int;
      (** K: number of superblocks' worth of free space a heap may hold
          regardless of f. The paper's analysis uses K = 0; the
          implementation keeps a small positive K (default 4) so that
          batch-free workloads such as threadtest do not thrash
          superblocks through the global heap (see the abl_k ablation). *)
  growth : float;  (** size-class growth factor b (paper: 1.2). *)
  ngroups : int;  (** fullness groups per size class (paper: groups of f). *)
  nheaps : int option;
      (** number of per-processor heaps; [None] means one per processor. *)
  assign_by_tid : bool;
      (** map threads to heaps by hashing the thread id (the released
          implementation's policy, useful when threads outnumber
          processors) instead of by executing processor (the paper's
          presentation). Default false. *)
  release_to_os : bool;
      (** return empty superblocks from the global heap to the OS. *)
  release_threshold : int;
      (** empty superblocks the global heap retains before releasing. *)
  reservoir : int;
      (** R: capacity (superblocks) of the size-class-agnostic reservoir
          empty superblocks are parked in — decommitted but still mapped —
          when the global heap drains them, instead of being unmapped.
          Reuse pulls from the reservoir first (recommit + reformat to the
          needed class), turning an unmap+map round trip into a cheap
          commit. Overflow beyond R is unmapped as before, bounding
          residency by heap-held + R·S. 0 (the default) disables the
          reservoir, restoring the seed lifecycle. *)
  shelf : int;
      (** capacity (superblocks) of the lock-free empty-superblock shelf
          sitting in front of the global heap. Emptiness-invariant trims
          push an empty victim onto the shelf with one CAS instead of
          taking the global lock, and a refill pops it the same way, so
          the common empty-superblock round trip is non-blocking; partial
          superblocks (and shelf overflow/underflow) still go through the
          classic locked global-heap path. 0 (the default) disables the
          shelf. *)
  vmem_backend : Vmem_backend.kind;
      (** reuse policy of the simulated address space underneath this
          allocator's platform. The config record is the single source of
          truth for instrumented runs — harnesses construct the platform,
          so they read this field when building the simulator; it cannot
          retroactively change a platform the caller already built.
          Default [Exact] (the seed policy). *)
  path_work : int;
      (** instruction cycles charged per malloc/free beyond memory ops. *)
  front_end : int;
      (** capacity (blocks per size class) of the per-thread front-end
          cache serving malloc/free without lock traffic. 0 (the default)
          disables the front end entirely, restoring the paper's exact
          hot path; positive values must be at least 2 so that fills and
          flushes can move [front_end / 2] blocks per lock acquisition. *)
  remote_queue_cap : int;
      (** capacity (blocks) of each heap's remote-free queue. A remote
          free finding the owner's queue full falls back to the classic
          lock-the-owner free path. Only meaningful with [front_end > 0]. *)
  sanitize : bool;
      (** heap sanitizer: freed blocks are quarantined (and, through the
          checked platform from [Hoard.sanitizer_access_check], poisoned
          against use-after-free), double frees and foreign pointers are
          diagnosed with {!Hoard.Sanitizer_violation} naming the owning
          superblock, heap and recent event trace. Default false: the
          sanitizer costs host time and delays block reuse, so it is a
          testing configuration, not a benchmarking one. *)
  quarantine : int;
      (** ring capacity (blocks) of the sanitizer's free quarantine: the
          most recent [quarantine] frees are held back from reuse so late
          use-after-free and double free remain detectable. 0 checks
          frees but recycles immediately. Only meaningful with
          [sanitize]. *)
  mutant : string;
      (** hidden test hook: "" (default) is the real allocator; a known
          mutant name plants a specific concurrency bug for the schedule
          explorer to find (see {!known_mutants}). Never set outside
          tests. *)
}

val known_mutants : string list
(** ["skip-owner-recheck"] drops the ownership re-check after acquiring a
    heap lock in [free], racing against superblock transfer to the global
    heap; ["emptiness-off-by-one"] makes the emptiness-invariant trim use
    K+1 while the invariant checker still demands K;
    ["reservoir-no-aba"] freezes the ABA tag of the lock-free reservoir
    and shelf stacks, planting the classic Treiber pop-over-recycled-head
    bug; ["park-before-decommit"] publishes a superblock to the reservoir
    BEFORE decommitting its pages, so a concurrent taker can recommit and
    reuse pages the parker then decommits out from under it. *)

val default : t

val validate : t -> unit
(** Raises [Invalid_argument] on out-of-range parameters. *)

val max_small : t -> int
(** Largest request served from superblocks: S/2, as in the paper. *)

val pp : Format.formatter -> t -> unit
