(** Tunables of the Hoard algorithm, with the paper's defaults.

    Construction goes through {!make} (a labelled builder over the
    defaults) or {!set}/{!set_all} (textual ["knob=value"] overrides,
    the engine behind the shared [--set] CLI option). Both are backed by
    the same knob registry, which also drives {!validate}, {!pp} and the
    CLI help — adding a knob is one registry entry, not an edit to every
    record literal and flag parser. *)

(** Structure of the global heap (heap 0). [Locked]: the classic Dlist
    fullness groups behind the heap-0 lock (the paper's presentation).
    [Lockfree]: the CAS-published fullness index ([Global_index]) — every
    superblock transfer to/from the global heap, every free into a
    global superblock and every surplus release runs without ever
    acquiring the heap-0 lock. *)
type global_mode =
  | Locked
  | Lockfree

val global_mode_name : global_mode -> string

val global_mode_of_string : string -> global_mode option

type t = {
  sb_size : int;
      (** S: superblock size in bytes; power of two (paper: 8 KiB). *)
  empty_fraction : float;
      (** f: a heap may keep at most a fraction f of its superblock bytes
          free before crossing the emptiness threshold (paper: 1/4). *)
  slack : int;
      (** K: number of superblocks' worth of free space a heap may hold
          regardless of f. The paper's analysis uses K = 0; the
          implementation keeps a small positive K (default 4) so that
          batch-free workloads such as threadtest do not thrash
          superblocks through the global heap (see the abl_k ablation). *)
  growth : float;  (** size-class growth factor b (paper: 1.2). *)
  ngroups : int;  (** fullness groups per size class (paper: groups of f). *)
  nheaps : int option;
      (** number of per-processor heaps; [None] means one per processor. *)
  assign_by_tid : bool;
      (** map threads to heaps by hashing the thread id (the released
          implementation's policy, useful when threads outnumber
          processors) instead of by executing processor (the paper's
          presentation). Default false. *)
  release_to_os : bool;
      (** return empty superblocks from the global heap to the OS. *)
  release_threshold : int;
      (** empty superblocks the global heap retains before releasing. *)
  reservoir : int;
      (** R: capacity (superblocks) of the size-class-agnostic reservoir
          empty superblocks are parked in — decommitted but still mapped —
          when the global heap drains them, instead of being unmapped.
          Reuse pulls from the reservoir first (recommit + reformat to the
          needed class), turning an unmap+map round trip into a cheap
          commit. Overflow beyond R is unmapped as before, bounding
          residency by heap-held + R·S. 0 (the default) disables the
          reservoir, restoring the seed lifecycle. *)
  shelf : int;
      (** capacity (superblocks) of the lock-free empty-superblock shelf
          sitting in front of the global heap. Emptiness-invariant trims
          push an empty victim onto the shelf with one CAS instead of
          taking the global lock, and a refill pops it the same way, so
          the common empty-superblock round trip is non-blocking; partial
          superblocks (and shelf overflow/underflow) still go through the
          classic locked global-heap path. 0 (the default) disables the
          shelf. *)
  vmem_backend : Vmem_backend.kind;
      (** reuse policy of the simulated address space underneath this
          allocator's platform. The config record is the single source of
          truth for instrumented runs — harnesses construct the platform,
          so they read this field when building the simulator; it cannot
          retroactively change a platform the caller already built.
          Default [Exact] (the seed policy). *)
  path_work : int;
      (** instruction cycles charged per malloc/free beyond memory ops. *)
  front_end : int;
      (** capacity (blocks per size class) of the per-thread front-end
          cache serving malloc/free without lock traffic. 0 (the default)
          disables the front end entirely, restoring the paper's exact
          hot path; positive values must be at least 2 so that fills and
          flushes can move [front_end / 2] blocks per lock acquisition. *)
  remote_queue_cap : int;
      (** capacity (blocks) of each heap's bounded remote-free queue. A
          remote free finding the owner's queue full falls back to the
          classic lock-the-owner free path. Only meaningful with
          [front_end > 0]; ignored entirely under [deferred]. *)
  deferred : bool;
      (** replace each heap's bounded remote-free queue with an unbounded
          intrusive deferred list: a remote free pushes the block onto the
          owner's list with a single CAS (wait-free fast path, no
          fallback to locking the owner), and the owner reclaims the
          whole list with one exchange during its next fill/flush/trim,
          batching the blocks back through the heap core so the emptiness
          invariant and blowup envelope stay exact. Only meaningful with
          [front_end > 0]. Default false. *)
  large_cache : int;
      (** per-bucket capacity of the lock-free MPSC large-object cache in
          front of the large allocator: freed large regions are parked
          decommitted (still mapped) in per-page-count buckets and reused
          by take → commit instead of a map round trip; overflow beyond
          the bucket capacity unmaps as before. 0 (the default) disables
          the cache, restoring the seed large path. *)
  global : global_mode;
      (** how the global heap is structured; see {!global_mode}. Default
          [Locked] (the seed structure). *)
  sanitize : bool;
      (** heap sanitizer: freed blocks are quarantined (and, through the
          checked platform from [Hoard.sanitizer_access_check], poisoned
          against use-after-free), double frees and foreign pointers are
          diagnosed with {!Hoard.Sanitizer_violation} naming the owning
          superblock, heap and recent event trace. Default false: the
          sanitizer costs host time and delays block reuse, so it is a
          testing configuration, not a benchmarking one. *)
  quarantine : int;
      (** ring capacity (blocks) of the sanitizer's free quarantine: the
          most recent [quarantine] frees are held back from reuse so late
          use-after-free and double free remain detectable. 0 checks
          frees but recycles immediately. Only meaningful with
          [sanitize]. *)
  mutant : string;
      (** hidden test hook: "" (default) is the real allocator; a known
          mutant name plants a specific concurrency bug for the schedule
          explorer to find (see {!known_mutants}). Never set outside
          tests. *)
}

val known_mutants : string list
(** ["skip-owner-recheck"] drops the ownership re-check after acquiring a
    heap lock in [free], racing against superblock transfer to the global
    heap; ["emptiness-off-by-one"] makes the emptiness-invariant trim use
    K+1 while the invariant checker still demands K;
    ["reservoir-no-aba"] freezes the ABA tag of the lock-free reservoir
    and shelf stacks, planting the classic Treiber pop-over-recycled-head
    bug; ["park-before-decommit"] publishes a superblock to the reservoir
    BEFORE decommitting its pages, so a concurrent taker can recommit and
    reuse pages the parker then decommits out from under it;
    ["deferred-lost-node"] makes the deferred-list push treat a failed
    CAS as success (dropping the retry), silently losing the block under
    producer contention; ["large-cache-no-aba"] freezes the ABA tag of
    the large-object cache's bucket stacks; ["global-no-aba"] freezes the
    ABA tags of the lock-free global index's per-bin membership stacks
    (a pop over a concurrently recycled head then splices a stale tail,
    stranding superblocks the index check finds unreachable);
    ["global-skip-revalidate"] makes the index's acquire skip the
    claim-CAS revalidation after popping a membership entry, so a
    concurrent deferred-free reclaimer holding the superblock Busy
    mutates it while the acquiring heap inserts and allocates from it. *)

val default : t

val make :
  ?base:t ->
  ?sb_size:int ->
  ?empty_fraction:float ->
  ?slack:int ->
  ?growth:float ->
  ?ngroups:int ->
  ?nheaps:int option ->
  ?assign_by_tid:bool ->
  ?release_to_os:bool ->
  ?release_threshold:int ->
  ?reservoir:int ->
  ?shelf:int ->
  ?vmem_backend:Vmem_backend.kind ->
  ?path_work:int ->
  ?front_end:int ->
  ?remote_queue_cap:int ->
  ?deferred:bool ->
  ?large_cache:int ->
  ?global:global_mode ->
  ?sanitize:bool ->
  ?quarantine:int ->
  ?mutant:string ->
  unit ->
  t
(** Labelled builder: every omitted knob takes its value from [?base]
    (default {!default}). The result is {!validate}d — out-of-range
    knobs raise [Invalid_argument] at construction, not at first use. *)

val set : t -> string -> t
(** [set t "knob=value"] parses and applies one textual override, range-
    checking the result. Knob names accept both ['-'] and ['_'] word
    separators. Raises [Invalid_argument] (naming the known knobs) on an
    unknown knob or malformed value. This is the engine behind the
    [--set] option shared by hoard_bench, hoard_trace and hoard_check. *)

val set_all : t -> string list -> t
(** Left fold of {!set}. *)

val knob_names : unit -> string list

val knob_doc : unit -> string
(** One line per knob, ["  name  doc"], for CLI [--set] help text. *)

val validate : t -> unit
(** Raises [Invalid_argument] on out-of-range parameters. Driven by the
    same per-knob range checks as {!set}. *)

val max_small : t -> int
(** Largest request served from superblocks: S/2, as in the paper. *)

val pp : Format.formatter -> t -> unit
(** Registry-driven: the core shape knobs always print; every other knob
    prints only when it differs from {!default}. *)
