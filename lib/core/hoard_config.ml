type t = {
  sb_size : int;
  empty_fraction : float;
  slack : int;
  growth : float;
  ngroups : int;
  nheaps : int option;
  assign_by_tid : bool;
  release_to_os : bool;
  release_threshold : int;
  reservoir : int;
  shelf : int;
  vmem_backend : Vmem_backend.kind;
  path_work : int;
  front_end : int;
  remote_queue_cap : int;
  sanitize : bool;
  quarantine : int;
  mutant : string;
}

let known_mutants =
  [ "skip-owner-recheck"; "emptiness-off-by-one"; "reservoir-no-aba"; "park-before-decommit" ]

let default =
  {
    sb_size = 8192;
    empty_fraction = 0.25;
    slack = 4;
    growth = 1.2;
    ngroups = 8;
    nheaps = None;
    assign_by_tid = false;
    release_to_os = true;
    release_threshold = 4;
    reservoir = 0;
    shelf = 0;
    vmem_backend = Vmem_backend.Exact;
    path_work = 30;
    front_end = 0;
    remote_queue_cap = 256;
    sanitize = false;
    quarantine = 32;
    mutant = "";
  }

let validate t =
  if t.sb_size < 1024 || t.sb_size land (t.sb_size - 1) <> 0 then
    invalid_arg "Hoard_config: sb_size must be a power of two >= 1024";
  if not (t.empty_fraction > 0.0 && t.empty_fraction < 1.0) then
    invalid_arg "Hoard_config: empty_fraction must lie in (0, 1)";
  if t.slack < 0 then invalid_arg "Hoard_config: slack must be non-negative";
  if t.growth <= 1.0 then invalid_arg "Hoard_config: growth must exceed 1.0";
  if t.ngroups < 1 then invalid_arg "Hoard_config: ngroups must be >= 1";
  (match t.nheaps with
   | Some n when n < 1 -> invalid_arg "Hoard_config: nheaps must be >= 1"
   | _ -> ());
  if t.release_threshold < 0 then invalid_arg "Hoard_config: release_threshold must be non-negative";
  if t.reservoir < 0 then invalid_arg "Hoard_config: reservoir must be non-negative";
  if t.shelf < 0 then invalid_arg "Hoard_config: shelf must be non-negative";
  if t.path_work < 0 then invalid_arg "Hoard_config: path_work must be non-negative";
  if t.front_end < 0 then invalid_arg "Hoard_config: front_end must be non-negative";
  if t.front_end > 0 && t.front_end < 2 then invalid_arg "Hoard_config: front_end must be 0 or >= 2";
  if t.remote_queue_cap < 1 then invalid_arg "Hoard_config: remote_queue_cap must be >= 1";
  if t.quarantine < 0 then invalid_arg "Hoard_config: quarantine must be non-negative";
  if t.mutant <> "" && not (List.mem t.mutant known_mutants) then
    invalid_arg
      (Printf.sprintf "Hoard_config: unknown mutant %S (known: %s)" t.mutant
         (String.concat ", " known_mutants))

let max_small t = t.sb_size / 2

let pp fmt t =
  Format.fprintf fmt "S=%d f=%.3f K=%d b=%.2f groups=%d heaps=%s release=%b/%d fe=%d" t.sb_size
    t.empty_fraction t.slack t.growth t.ngroups
    (match t.nheaps with
     | None -> "per-proc"
     | Some n -> string_of_int n)
    t.release_to_os t.release_threshold t.front_end;
  if t.reservoir > 0 then Format.fprintf fmt " reservoir=%d" t.reservoir;
  if t.shelf > 0 then Format.fprintf fmt " shelf=%d" t.shelf;
  if t.vmem_backend <> Vmem_backend.Exact then
    Format.fprintf fmt " vmem=%s" (Vmem_backend.kind_name t.vmem_backend);
  if t.sanitize then Format.fprintf fmt " sanitize(q=%d)" t.quarantine;
  if t.mutant <> "" then Format.fprintf fmt " MUTANT=%s" t.mutant
