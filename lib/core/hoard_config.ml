(* How the global heap (heap 0) is structured: [Locked] is the classic
   Dlist fullness groups behind the heap-0 lock; [Lockfree] replaces them
   with the CAS-published fullness index (Global_index) so the transfer
   path never takes the heap-0 lock. *)
type global_mode =
  | Locked
  | Lockfree

let global_mode_name = function
  | Locked -> "locked"
  | Lockfree -> "lockfree"

let global_mode_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "locked" | "lock" -> Some Locked
  | "lockfree" | "lock-free" | "lock_free" -> Some Lockfree
  | _ -> None

type t = {
  sb_size : int;
  empty_fraction : float;
  slack : int;
  growth : float;
  ngroups : int;
  nheaps : int option;
  assign_by_tid : bool;
  release_to_os : bool;
  release_threshold : int;
  reservoir : int;
  shelf : int;
  vmem_backend : Vmem_backend.kind;
  path_work : int;
  front_end : int;
  remote_queue_cap : int;
  deferred : bool;
  large_cache : int;
  global : global_mode;
  sanitize : bool;
  quarantine : int;
  mutant : string;
}

let known_mutants =
  [
    "skip-owner-recheck";
    "emptiness-off-by-one";
    "reservoir-no-aba";
    "park-before-decommit";
    "deferred-lost-node";
    "large-cache-no-aba";
    "orphan-lost-superblock";
    "global-no-aba";
    "global-skip-revalidate";
  ]

let default =
  {
    sb_size = 8192;
    empty_fraction = 0.25;
    slack = 4;
    growth = 1.2;
    ngroups = 8;
    nheaps = None;
    assign_by_tid = false;
    release_to_os = true;
    release_threshold = 4;
    reservoir = 0;
    shelf = 0;
    vmem_backend = Vmem_backend.Exact;
    path_work = 30;
    front_end = 0;
    remote_queue_cap = 256;
    deferred = false;
    large_cache = 0;
    global = Locked;
    sanitize = false;
    quarantine = 32;
    mutant = "";
  }

(* ------------------------------------------------------------------ *)
(* The knob registry: one record per tunable, carrying its name, doc
   line, parser, range check and printers. [validate], [pp], [set] and
   the shared [--set knob=value] CLI option in hoard_bench/hoard_trace/
   hoard_check are all driven from this list, so a new knob is one
   registry entry — no per-binary flag parser or record-literal edits. *)

type knob = {
  k_name : string;
  k_doc : string;
  k_get : t -> string; (* render current value *)
  k_parse : t -> string -> t; (* parse + store; Invalid_argument on junk *)
  k_check : t -> string option; (* range check; error message when bad *)
}

let bad name fmt = Printf.ksprintf (fun m -> invalid_arg (Printf.sprintf "Hoard_config: %s: %s" name m)) fmt

let parse_int name s =
  match int_of_string_opt (String.trim s) with
  | Some v -> v
  | None -> bad name "expected an integer, got %S" s

let parse_float name s =
  match float_of_string_opt (String.trim s) with
  | Some v -> v
  | None -> bad name "expected a number, got %S" s

let parse_bool name s =
  match String.lowercase_ascii (String.trim s) with
  | "true" | "on" | "1" | "yes" -> true
  | "false" | "off" | "0" | "no" -> false
  | _ -> bad name "expected a boolean (true/false/on/off/1/0), got %S" s

let int_knob name doc ~get ~store ~check =
  {
    k_name = name;
    k_doc = doc;
    k_get = (fun t -> string_of_int (get t));
    k_parse = (fun t s -> store t (parse_int name s));
    k_check = (fun t -> check (get t));
  }

let bool_knob name doc ~get ~store =
  {
    k_name = name;
    k_doc = doc;
    k_get = (fun t -> string_of_bool (get t));
    k_parse = (fun t s -> store t (parse_bool name s));
    k_check = (fun _ -> None);
  }

let non_negative name v = if v < 0 then Some (Printf.sprintf "%s must be non-negative" name) else None

let knobs =
  [
    {
      k_name = "sb-size";
      k_doc = "S: superblock size in bytes; power of two >= 1024 (paper: 8192).";
      k_get = (fun t -> string_of_int t.sb_size);
      k_parse = (fun t s -> { t with sb_size = parse_int "sb-size" s });
      k_check =
        (fun t ->
          if t.sb_size < 1024 || t.sb_size land (t.sb_size - 1) <> 0 then
            Some "sb-size must be a power of two >= 1024"
          else None);
    };
    {
      k_name = "empty-fraction";
      k_doc = "f: emptiness-invariant fraction in (0, 1) (paper: 0.25).";
      k_get = (fun t -> Printf.sprintf "%g" t.empty_fraction);
      k_parse = (fun t s -> { t with empty_fraction = parse_float "empty-fraction" s });
      k_check =
        (fun t ->
          if t.empty_fraction > 0.0 && t.empty_fraction < 1.0 then None
          else Some "empty-fraction must lie in (0, 1)");
    };
    int_knob "slack" "K: superblocks of slack a heap may hold regardless of f."
      ~get:(fun t -> t.slack)
      ~store:(fun t v -> { t with slack = v })
      ~check:(non_negative "slack");
    {
      k_name = "growth";
      k_doc = "b: size-class growth factor, > 1.0 (paper: 1.2).";
      k_get = (fun t -> Printf.sprintf "%g" t.growth);
      k_parse = (fun t s -> { t with growth = parse_float "growth" s });
      k_check = (fun t -> if t.growth <= 1.0 then Some "growth must exceed 1.0" else None);
    };
    int_knob "ngroups" "Fullness groups per size class, >= 1."
      ~get:(fun t -> t.ngroups)
      ~store:(fun t v -> { t with ngroups = v })
      ~check:(fun v -> if v < 1 then Some "ngroups must be >= 1" else None);
    {
      k_name = "nheaps";
      k_doc = "Per-processor heap count; 'auto' (or 'per-proc') means one per processor.";
      k_get =
        (fun t ->
          match t.nheaps with
          | None -> "auto"
          | Some n -> string_of_int n);
      k_parse =
        (fun t s ->
          match String.lowercase_ascii (String.trim s) with
          | "auto" | "per-proc" | "per_proc" -> { t with nheaps = None }
          | s -> { t with nheaps = Some (parse_int "nheaps" s) });
      k_check =
        (fun t ->
          match t.nheaps with
          | Some n when n < 1 -> Some "nheaps must be >= 1 (or auto)"
          | _ -> None);
    };
    bool_knob "assign-by-tid" "Map threads to heaps by thread-id hash instead of by processor."
      ~get:(fun t -> t.assign_by_tid)
      ~store:(fun t v -> { t with assign_by_tid = v });
    bool_knob "release-to-os" "Return empty superblocks from the global heap to the OS."
      ~get:(fun t -> t.release_to_os)
      ~store:(fun t v -> { t with release_to_os = v });
    int_knob "release-threshold" "Empty superblocks the global heap retains before releasing."
      ~get:(fun t -> t.release_threshold)
      ~store:(fun t v -> { t with release_threshold = v })
      ~check:(non_negative "release-threshold");
    int_knob "reservoir" "R: capacity (superblocks) of the decommitted parking reservoir; 0 disables."
      ~get:(fun t -> t.reservoir)
      ~store:(fun t v -> { t with reservoir = v })
      ~check:(non_negative "reservoir");
    int_knob "shelf" "Capacity of the lock-free empty-superblock shelf; 0 disables."
      ~get:(fun t -> t.shelf)
      ~store:(fun t v -> { t with shelf = v })
      ~check:(non_negative "shelf");
    {
      k_name = "vmem";
      k_doc = "Address-space reuse policy: exact, first-fit or buddy.";
      k_get = (fun t -> Vmem_backend.kind_name t.vmem_backend);
      k_parse =
        (fun t s ->
          match Vmem_backend.kind_of_string (String.trim s) with
          | Some k -> { t with vmem_backend = k }
          | None -> bad "vmem" "unknown backend %S (exact, first-fit, buddy)" s);
      k_check = (fun _ -> None);
    };
    int_knob "path-work" "Instruction cycles charged per malloc/free beyond memory ops."
      ~get:(fun t -> t.path_work)
      ~store:(fun t v -> { t with path_work = v })
      ~check:(non_negative "path-work");
    int_knob "front-end" "K: per-thread per-class cache capacity; 0 disables, else >= 2."
      ~get:(fun t -> t.front_end)
      ~store:(fun t v -> { t with front_end = v })
      ~check:(fun v ->
        if v < 0 then Some "front-end must be non-negative"
        else if v > 0 && v < 2 then Some "front-end must be 0 or >= 2"
        else None);
    int_knob "remote-queue-cap" "Capacity of each heap's bounded remote-free queue (ignored with deferred)."
      ~get:(fun t -> t.remote_queue_cap)
      ~store:(fun t v -> { t with remote_queue_cap = v })
      ~check:(fun v -> if v < 1 then Some "remote-queue-cap must be >= 1" else None);
    bool_knob "deferred"
      "Replace the bounded remote-free queues with unbounded deferred lists (CAS push, exchange reclaim)."
      ~get:(fun t -> t.deferred)
      ~store:(fun t v -> { t with deferred = v });
    int_knob "large-cache" "Per-bucket capacity of the MPSC large-object cache; 0 disables."
      ~get:(fun t -> t.large_cache)
      ~store:(fun t v -> { t with large_cache = v })
      ~check:(non_negative "large-cache");
    {
      k_name = "global";
      k_doc = "Global-heap structure: locked (Dlist groups) or lockfree (CAS fullness index).";
      k_get = (fun t -> global_mode_name t.global);
      k_parse =
        (fun t s ->
          match global_mode_of_string s with
          | Some m -> { t with global = m }
          | None -> bad "global" "unknown mode %S (locked, lockfree)" s);
      k_check = (fun _ -> None);
    };
    bool_knob "sanitize" "Heap sanitizer: poison-on-free, quarantine, double-free diagnosis."
      ~get:(fun t -> t.sanitize)
      ~store:(fun t v -> { t with sanitize = v });
    int_knob "quarantine" "Sanitizer quarantine ring capacity (blocks)."
      ~get:(fun t -> t.quarantine)
      ~store:(fun t v -> { t with quarantine = v })
      ~check:(non_negative "quarantine");
    {
      k_name = "mutant";
      k_doc = "Hidden test hook: plant a known concurrency bug (never set outside tests).";
      k_get = (fun t -> t.mutant);
      k_parse = (fun t s -> { t with mutant = String.trim s });
      k_check =
        (fun t ->
          if t.mutant <> "" && not (List.mem t.mutant known_mutants) then
            Some
              (Printf.sprintf "unknown mutant %S (known: %s)" t.mutant (String.concat ", " known_mutants))
          else None);
    };
  ]

let normalize_name s =
  String.map (function '_' -> '-' | c -> c) (String.lowercase_ascii (String.trim s))

let find_knob name =
  let name = normalize_name name in
  List.find_opt (fun k -> k.k_name = name) knobs

let knob_names () = List.map (fun k -> k.k_name) knobs

let knob_doc () =
  String.concat "\n" (List.map (fun k -> Printf.sprintf "  %-18s %s" k.k_name k.k_doc) knobs)

let validate t =
  List.iter
    (fun k ->
      match k.k_check t with
      | Some msg -> invalid_arg ("Hoard_config: " ^ msg)
      | None -> ())
    knobs

let set t spec =
  match String.index_opt spec '=' with
  | None -> bad "set" "expected knob=value, got %S (knobs: %s)" spec (String.concat ", " (knob_names ()))
  | Some i ->
    let name = String.sub spec 0 i in
    let value = String.sub spec (i + 1) (String.length spec - i - 1) in
    (match find_knob name with
     | None ->
       bad "set" "unknown knob %S (knobs: %s)" (String.trim name) (String.concat ", " (knob_names ()))
     | Some k ->
       let t = k.k_parse t value in
       (match k.k_check t with
        | Some msg -> invalid_arg ("Hoard_config: " ^ msg)
        | None -> t))

let set_all t specs = List.fold_left set t specs

let make ?(base = default) ?sb_size ?empty_fraction ?slack ?growth ?ngroups ?nheaps ?assign_by_tid
    ?release_to_os ?release_threshold ?reservoir ?shelf ?vmem_backend ?path_work ?front_end
    ?remote_queue_cap ?deferred ?large_cache ?global ?sanitize ?quarantine ?mutant () =
  let v field = function Some x -> x | None -> field in
  let t =
    {
      sb_size = v base.sb_size sb_size;
      empty_fraction = v base.empty_fraction empty_fraction;
      slack = v base.slack slack;
      growth = v base.growth growth;
      ngroups = v base.ngroups ngroups;
      nheaps = v base.nheaps nheaps;
      assign_by_tid = v base.assign_by_tid assign_by_tid;
      release_to_os = v base.release_to_os release_to_os;
      release_threshold = v base.release_threshold release_threshold;
      reservoir = v base.reservoir reservoir;
      shelf = v base.shelf shelf;
      vmem_backend = v base.vmem_backend vmem_backend;
      path_work = v base.path_work path_work;
      front_end = v base.front_end front_end;
      remote_queue_cap = v base.remote_queue_cap remote_queue_cap;
      deferred = v base.deferred deferred;
      large_cache = v base.large_cache large_cache;
      global = v base.global global;
      sanitize = v base.sanitize sanitize;
      quarantine = v base.quarantine quarantine;
      mutant = v base.mutant mutant;
    }
  in
  validate t;
  t

let max_small t = t.sb_size / 2

(* Registry-driven printer: the core shape parameters always print (in
   registry order), every other knob only when it differs from the
   default — so new knobs show up in [inspect] output automatically. *)
let always_shown =
  [ "sb-size"; "empty-fraction"; "slack"; "growth"; "ngroups"; "nheaps"; "front-end" ]

let pp fmt t =
  let first = ref true in
  List.iter
    (fun k ->
      let cur = k.k_get t in
      if List.mem k.k_name always_shown || cur <> k.k_get default then begin
        if not !first then Format.pp_print_string fmt " ";
        first := false;
        if k.k_name = "mutant" then Format.fprintf fmt "MUTANT=%s" cur
        else Format.fprintf fmt "%s=%s" k.k_name cur
      end)
    knobs
