(** The Hoard allocator (the paper's contribution).

    Structure: one global heap (heap 0) plus N per-processor heaps. A
    thread running on processor p allocates from heap [1 + p mod N]. Small
    requests (<= S/2) are served from superblocks; each heap keeps its
    superblocks segregated by size class and sorted into fullness groups,
    and allocation takes the fullest superblock with space (keeping memory
    densely packed). When a heap has nothing suitable it pulls a superblock
    from the global heap, and only when the global heap is also empty does
    it map fresh memory from the OS.

    [free] returns a block to the superblock's *owning* heap (never the
    caller's), which prevents actively-induced false sharing and, combined
    with the emptiness invariant, bounds blowup: after every free, a
    per-processor heap with [u] bytes in use out of [a] bytes held must
    satisfy [u >= a - K*S] or [u >= (1-f)*a]; if both fail, a superblock
    that is at least f-empty is moved to the global heap, from which any
    processor can reuse it. Empty superblocks beyond a threshold are
    returned from the global heap to the OS.

    Requests above S/2 go straight to the OS (large-object path).

    {b Front end} (off by default): with [config.front_end = K > 0], each
    thread keeps a cache of up to [K] block addresses per size class.
    malloc pops and free pushes with no lock at all; misses and overflows
    move [K/2] blocks per heap-lock acquisition, and blocks evicted from a
    cache are batched onto the owning heap's remote-free queue (one
    innermost queue lock) for the owner to drain on its next locked slow
    path. Cached and queued blocks stay charged to the heap that owns
    their superblock, so the emptiness invariant, the blowup bound and
    {!check} are unchanged — the cost is up to
    [K * P * classes + remote_queue_cap * (P+1)] blocks of memory parked
    in flight. [front_end = 0] is bit-for-bit the paper's algorithm.

    {b Deferred frees} ([config.deferred], needs the front end): each
    heap's bounded remote-free queue is replaced by an unbounded
    intrusive {!Deferred_list} — eviction pushes the block itself with
    one CAS on the owner's list head (no queue lock, no cap, no locked
    fallback), and the owner detaches the whole list with a single
    exchange on its next fill/flush, batching the blocks back through
    the heap core. The charging discipline is the queue's, so every
    invariant above still holds exactly.

    {b Large cache} ([config.large_cache = C > 0]): a lock-free MPSC
    {!Large_cache} fronts the large-object path — freed regions of up
    to 16 pages park decommitted-but-mapped in bounded buckets (cap [C]
    each), and an allocation of the same page count takes one back with
    pop → commit instead of an OS map. Parked regions stay held, so the
    blowup envelope widens by at most [Large_cache.capacity_bytes]. *)

type t

val create : ?config:Hoard_config.t -> ?obs:Obs.t -> Platform.t -> t
(** With [obs], the instance traces into one {!Event_ring} per lock
    domain (["global"], ["heap1"].. plus ["large"]) and publishes its
    {!Alloc_stats} into the registry; without it, tracing costs nothing
    (the fast paths carry no event sites, slow-path sites are a single
    branch on an immutable [option]). *)

val allocator : t -> Alloc_intf.t
(** The public allocator interface backed by this instance. *)

val factory : ?config:Hoard_config.t -> ?obs:Obs.t -> unit -> Alloc_intf.factory

val config : t -> Hoard_config.t

val obs : t -> Obs.t option

val size_classes : t -> Size_class.t

val nheaps : t -> int
(** Number of per-processor heaps (excluding the global heap). *)

(** {2 Introspection (tests, experiments)} *)

type heap_info = {
  heap_id : int;  (** 0 = global *)
  u_bytes : int;
  a_bytes : int;
  superblocks : int;
  empty_superblocks : int;
}

val heap_info : t -> int -> heap_info
(** [heap_info t i] for [i] in [0 .. nheaps t]. *)

val fullness_profile : t -> (string * (int * float) array) array
(** One row per heap (["global"], ["heap1"], ..): the heap's
    {!Heap_core.class_profile}. Reads without locking (like {!pp_heaps});
    call at quiescence. Feeds the observability heatmap. *)

val invariant_holds : t -> heap_id:int -> bool
(** The emptiness invariant [u >= a - K*S || u >= (1-f)*a] for a
    per-processor heap. Guaranteed immediately after any [free] into that
    heap; a malloc that installs a fresh superblock may transiently exceed
    it (the paper's algorithm enforces the invariant only on frees). *)

val check : t -> unit
(** Deep structural validation of every heap. Exact even while front-end
    caches and remote-free queues hold blocks (they stay charged to their
    owning heaps). *)

val on_thread_exit : t -> unit
(** The calling (simulated) thread is retiring: flushes and retires its
    front-end cache (a later thread recycling the tid starts fresh),
    drains the pending remote frees of its heap, then releases the heap
    assignment by moving every superblock still on that heap to the
    global heap — orphaned superblocks are adopted for reuse by any
    processor instead of stranded against the held envelope. Each
    adoption is counted in [orphan_adoptions] and traced as an
    [Orphan_adopt] event. Idempotent per thread; exposed through
    {!Alloc_intf.t.thread_exit}. *)

(** {2 Front end} *)

val flush_caches : t -> unit
(** Quiescent-only: returns every block held in thread caches and
    remote-free queues to its owning heap core, then re-establishes the
    emptiness invariant. Touches no platform locks, charges no costs and
    records no events, so it is callable from outside any simulated
    thread (after a run, before reading exact figures). Live bytes equal
    the program's outstanding allocations exactly afterwards. *)

val cache_counts : t -> (int * int array) list
(** Per thread id (ascending), the per-class number of cached blocks.
    Lock-free reads; call at quiescence. *)

val remote_queue_lengths : t -> int array
(** Pending remote-free count per heap (bounded queue plus deferred
    list), index 0 = global. Lock-free reads; call at quiescence. *)

val deferred_lengths : t -> int array
(** Blocks currently parked on each heap's deferred free list, index 0 =
    global (all zeros without [config.deferred]). Lock-free reads; call
    at quiescence. *)

val large_cache_length : t -> int
(** Regions currently parked in the large-object cache (0 when
    [config.large_cache = 0]). Lock-free read; exact at quiescence. *)

val reservoir_length : t -> int
(** Superblocks currently parked in the reservoir (0 when
    [config.reservoir = 0]). Lock-free read; exact at quiescence. *)

val shelf_length : t -> int
(** Empty superblocks currently on the lock-free shelf in front of the
    global heap (0 when [config.shelf = 0]). Lock-free read; exact at
    quiescence. *)

val pp_heaps : Format.formatter -> t -> unit
(** Human-readable dump of every heap: per size class, the superblock
    count and aggregate fullness — the view used by
    [hoard_bench inspect]. *)

(** {2 Heap sanitizer (config.sanitize)} *)

exception Sanitizer_violation of string
(** An invalid heap operation caught by the sanitizer: double free, free
    of an interior/header/foreign pointer, use-after-free or overflow
    seen through the checked platform, or realloc/usable_size of a
    quarantined block. The message names the operation, the address, the
    owning superblock (base, class, block size, owner heap) and — when
    tracing is on — the owning heap's most recent event-ring entries. *)

val sanitizer_access_check : t -> (addr:int -> len:int -> write:bool -> unit) option
(** [Some checker] when the instance was created with [config.sanitize].
    Install it on the *workload's* view of the platform (wrap
    [Platform.read]/[write]) to turn stray touches of superblock memory —
    headers (canaries), dead or quarantined blocks (poison), spans past a
    block's end (overflow) — into {!Sanitizer_violation}. The allocator
    itself must keep the unchecked platform: it writes headers and
    free-list links legitimately. Addresses outside any superblock are
    ignored. *)

val quarantine_length : t -> int
(** Blocks currently held in the sanitizer quarantine (0 without
    [sanitize]). Frees deferred there are completed by {!flush_caches}
    (host-side) or a thread's [flush] (in-sim), so stats' free counters
    catch up at the latest then. *)
