type heap = {
  core : Heap_core.t;
  lock : Platform.lock;
  sh : Alloc_stats.shard;
  ring : Event_ring.t option; (* same lock domain as [sh]; None when tracing is off *)
}

type t = {
  pf : Platform.t;
  cfg : Hoard_config.t;
  classes : Size_class.t;
  reg : Sb_registry.t;
  stats : Alloc_stats.t;
  owner : int;
  global : heap;
  heaps : heap array; (* per-processor heaps, ids 1..N *)
  large : Locked_large.t;
  obs : Obs.t option;
}

type heap_info = {
  heap_id : int;
  u_bytes : int;
  a_bytes : int;
  superblocks : int;
  empty_superblocks : int;
}

let create ?(config = Hoard_config.default) ?obs pf =
  Hoard_config.validate config;
  if config.sb_size < pf.Platform.page_size then
    invalid_arg "Hoard.create: sb_size must be at least the platform page size";
  let n =
    match config.nheaps with
    | Some n -> n
    | None -> pf.Platform.nprocs
  in
  let classes = Size_class.create ~growth:config.growth ~max_small:(Hoard_config.max_small config) () in
  (* Stats shards mirror the lock domains: shard [id] for heap [id]
     (0 = global), one extra shard for the large path. Event rings, when
     tracing is on, mirror the same domains. *)
  let stats = Alloc_stats.create ~shards:(n + 2) () in
  let ring name =
    match obs with
    | None -> None
    | Some o -> Some (Obs.new_ring o name)
  in
  let mk_heap id =
    {
      core = Heap_core.create ~id ~classes ~ngroups:config.ngroups ~sb_size:config.sb_size ();
      lock = pf.Platform.new_lock (Printf.sprintf "hoard.heap%d" id);
      sh = Alloc_stats.shard stats id;
      ring = ring (if id = 0 then "global" else Printf.sprintf "heap%d" id);
    }
  in
  let owner = Alloc_intf.next_owner () in
  let t =
    {
      pf;
      cfg = config;
      classes;
      reg = Sb_registry.create pf ~sb_size:config.sb_size;
      stats;
      owner;
      global = mk_heap 0;
      heaps = Array.init n (fun i -> mk_heap (i + 1));
      large =
        Locked_large.create pf ~owner ~stats ~shard:(n + 1) ?ring:(ring "large")
          ~threshold:(Hoard_config.max_small config);
      obs;
    }
  in
  (match obs with
   | Some o -> Alloc_stats.publish stats (Obs.metrics o)
   | None -> ());
  t

let config t = t.cfg

let nheaps t = Array.length t.heaps

let heap_by_id t id = if id = 0 then t.global else t.heaps.(id - 1)

(* Fibonacci hash so consecutive thread ids spread across heaps. *)
let hash_tid tid = (tid * 2654435761) land max_int

let my_heap t =
  let slot =
    if t.cfg.assign_by_tid then hash_tid (t.pf.Platform.self_tid ()) else t.pf.Platform.self_proc ()
  in
  t.heaps.(slot mod Array.length t.heaps)

(* Emptiness threshold crossed: both clauses of the invariant fail. The
   comparison uses usable bytes (excluding header and carving waste) so
   that crossing the threshold guarantees an at-least-f-empty superblock
   exists to transfer. *)
let too_empty t core =
  let u = Heap_core.u core and a = Heap_core.usable_a core in
  u < a - (t.cfg.slack * t.cfg.sb_size) && float_of_int u < (1.0 -. t.cfg.empty_fraction) *. float_of_int a

let touch_header t sb = t.pf.Platform.write ~addr:(Superblock.base sb) ~len:16

(* Record into [h]'s ring; the caller must hold [h]'s lock (the ring
   shares the stats shard's domain). Free when tracing is off. *)
let event t h kind ~sclass ~arg =
  match h.ring with
  | None -> ()
  | Some r ->
    Event_ring.record r ~at:(t.pf.Platform.now ()) ~kind ~who:(t.pf.Platform.self_proc ())
      ~heap:(Heap_core.id h.core) ~sclass ~arg

(* Global heap: drop surplus empty superblocks back to the OS. Caller holds
   the global lock. *)
let release_surplus t =
  if t.cfg.release_to_os then
    while Heap_core.empty_superblock_count t.global.core > t.cfg.release_threshold do
      match Heap_core.pick_victim t.global.core ~max_fullness:0.0 with
      | None -> assert false (* the count said an empty superblock exists *)
      | Some sb ->
        Sb_registry.unregister t.reg sb;
        t.pf.Platform.page_unmap ~addr:(Superblock.base sb);
        Alloc_stats.on_unmap t.stats ~bytes:(Superblock.sb_size sb);
        event t t.global Event_ring.Sb_unmap ~sclass:(Superblock.sclass sb) ~arg:(Superblock.sb_size sb)
    done

(* Fetch a superblock usable for [sclass], from the global heap if
   possible, otherwise from the OS, and insert it into [h] (whose lock the
   caller holds). *)
let refill t h ~sclass ~block_size =
  let from_global =
    t.global.lock.acquire ();
    let sb = Heap_core.take_for_class t.global.core ~sclass in
    (* Flip ownership before releasing the global lock: a concurrent free
       must either see the old owner (and retry against our heap lock,
       which we hold) or block here until the handoff is complete. *)
    (match sb with
     | Some sb -> Superblock.set_owner sb (Heap_core.id h.core)
     | None -> ());
    t.global.lock.release ();
    sb
  in
  let sb =
    match from_global with
    | Some sb ->
      if Superblock.is_empty sb && (Superblock.sclass sb <> sclass || Superblock.block_size sb <> block_size)
      then Superblock.reinit sb ~sclass ~block_size;
      Alloc_stats.on_transfer_from_global h.sh;
      event t h Event_ring.Sb_from_global ~sclass ~arg:(Superblock.base sb);
      sb
    | None ->
      let base = t.pf.Platform.page_map ~bytes:t.cfg.sb_size ~align:t.cfg.sb_size ~owner:t.owner in
      let sb = Superblock.create ~base ~sb_size:t.cfg.sb_size ~sclass ~block_size in
      Sb_registry.register t.reg sb;
      Alloc_stats.on_map t.stats ~bytes:t.cfg.sb_size;
      event t h Event_ring.Sb_map ~sclass ~arg:t.cfg.sb_size;
      sb
  in
  Heap_core.insert h.core sb;
  touch_header t sb

let malloc t size =
  if size <= 0 then invalid_arg "Hoard.malloc: size must be positive";
  t.pf.Platform.work t.cfg.path_work;
  if Locked_large.is_large t.large size then Locked_large.malloc t.large size
  else begin
    let sclass = Size_class.class_of_size t.classes size in
    let block_size = Size_class.size_of_class t.classes sclass in
    let h = my_heap t in
    h.lock.acquire ();
    let addr =
      match Heap_core.malloc h.core ~sclass ~block_size with
      | Some (addr, sb) ->
        touch_header t sb;
        addr
      | None ->
        refill t h ~sclass ~block_size;
        (match Heap_core.malloc h.core ~sclass ~block_size with
         | Some (addr, sb) ->
           touch_header t sb;
           addr
         | None -> assert false (* refill installed an allocatable superblock *))
    in
    Alloc_stats.on_malloc h.sh ~requested:size ~usable:block_size;
    (* The allocator links free blocks through their first word. *)
    t.pf.Platform.write ~addr ~len:8;
    h.lock.release ();
    addr
  end

(* Lock the heap owning [sb], re-checking ownership after acquisition: the
   superblock may migrate to the global heap between the read and the lock
   (the paper's free protocol). *)
let rec lock_owner t sb =
  let id = Superblock.owner sb in
  let h = heap_by_id t id in
  h.lock.acquire ();
  if Superblock.owner sb = Heap_core.id h.core then h
  else begin
    h.lock.release ();
    lock_owner t sb
  end

let free t addr =
  t.pf.Platform.work t.cfg.path_work;
  match Sb_registry.lookup t.reg ~addr with
  | Some sb ->
    let h = lock_owner t sb in
    let my = my_heap t in
    if h != my && h != t.global then begin
      Alloc_stats.on_remote_free h.sh;
      event t h Event_ring.Remote_free ~sclass:(Superblock.sclass sb) ~arg:addr
    end;
    t.pf.Platform.write ~addr ~len:8;
    Heap_core.free h.core sb addr;
    touch_header t sb;
    Alloc_stats.on_free h.sh ~usable:(Superblock.block_size sb);
    if Heap_core.id h.core = 0 then release_surplus t
    else if too_empty t h.core then begin
      (* The paper's free path: crossing the emptiness threshold moves ONE
         at-least-f-empty superblock to the global heap. One is enough to
         restore the invariant when it held before the free (each free
         releases at most one block); heaps that malloc drove far below the
         threshold converge back over subsequent frees instead of exiling
         their superblocks all at once. *)
      event t h Event_ring.Emptiness_cross ~sclass:(Superblock.sclass sb) ~arg:(Heap_core.u h.core);
      match Heap_core.pick_victim ~protect_last:true h.core ~max_fullness:(1.0 -. t.cfg.empty_fraction) with
      | None -> ()
      | Some victim ->
        t.global.lock.acquire ();
        Heap_core.insert t.global.core victim;
        touch_header t victim;
        Alloc_stats.on_transfer_to_global t.global.sh;
        event t t.global Event_ring.Sb_to_global ~sclass:(Superblock.sclass victim)
          ~arg:(Superblock.base victim);
        release_surplus t;
        t.global.lock.release ()
    end;
    h.lock.release ()
  | None -> if not (Locked_large.try_free t.large ~addr) then invalid_arg "Hoard.free: foreign pointer"

let usable_size t addr =
  match Sb_registry.lookup t.reg ~addr with
  | Some sb ->
    if Superblock.is_block_live sb addr then Superblock.block_size sb
    else invalid_arg "Hoard.usable_size: dead block"
  | None ->
    (match Locked_large.usable_size t.large ~addr with
     | Some n -> n
     | None -> invalid_arg "Hoard.usable_size: foreign pointer")

let obs t = t.obs

let size_classes t = t.classes

(* Lock-free reads, like [pp_heaps]: call at quiescence (after the run, or
   from outside any simulated thread — heap locks perform effects). *)
let fullness_profile t =
  let profile h =
    let label = if Heap_core.id h.core = 0 then "global" else Printf.sprintf "heap%d" (Heap_core.id h.core) in
    (label, Heap_core.class_profile h.core)
  in
  Array.append [| profile t.global |] (Array.map profile t.heaps)

let heap_info t id =
  let h = heap_by_id t id in
  {
    heap_id = id;
    u_bytes = Heap_core.u h.core;
    a_bytes = Heap_core.a h.core;
    superblocks = Heap_core.superblock_count h.core;
    empty_superblocks = Heap_core.empty_superblock_count h.core;
  }

let invariant_holds t ~heap_id =
  (* The invariant a free restores: either the heap is not too empty, or
     no transferable superblock remains (every candidate is some class's
     last, protected against ping-pong). *)
  let core = (heap_by_id t heap_id).core in
  (not (too_empty t core))
  || not (Heap_core.has_victim core ~max_fullness:(1.0 -. t.cfg.empty_fraction) ~protect_last:true)

let check t =
  Heap_core.check t.global.core;
  Array.iter (fun h -> Heap_core.check h.core) t.heaps;
  let s = Alloc_stats.snapshot t.stats in
  let total_u = Array.fold_left (fun acc h -> acc + Heap_core.u h.core) (Heap_core.u t.global.core) t.heaps in
  if total_u + Locked_large.live_bytes t.large <> s.live_bytes then
    failwith "Hoard.check: live-bytes accounting mismatch"

let allocator t =
  {
    Alloc_intf.name = "hoard";
    owner = t.owner;
    large_threshold = Hoard_config.max_small t.cfg;
    malloc = (fun size -> malloc t size);
    free = (fun addr -> free t addr);
    usable_size = (fun addr -> usable_size t addr);
    stats = (fun () -> Alloc_stats.snapshot t.stats);
    check = (fun () -> check t);
  }

let factory ?(config = Hoard_config.default) ?obs () =
  {
    Alloc_intf.label = "hoard";
    description = "per-processor heaps + global heap, emptiness invariant (the paper's allocator)";
    instantiate = (fun pf -> allocator (create ~config ?obs pf));
  }

let pp_heaps fmt t =
  let pp_heap h =
    let core = h.core in
    let label = if Heap_core.id core = 0 then "global" else Printf.sprintf "heap %d" (Heap_core.id core) in
    Format.fprintf fmt "@[<v 2>%s: %d superblocks, u=%dB a=%dB (%d empty)@," label
      (Heap_core.superblock_count core) (Heap_core.u core) (Heap_core.a core)
      (Heap_core.empty_superblock_count core);
    (* Aggregate per size class. *)
    let nclasses = Size_class.count t.classes in
    let count = Array.make nclasses 0 and used = Array.make nclasses 0 and cap = Array.make nclasses 0 in
    Heap_core.iter core (fun sb ->
        let c = Superblock.sclass sb in
        count.(c) <- count.(c) + 1;
        used.(c) <- used.(c) + Superblock.used sb;
        cap.(c) <- cap.(c) + Superblock.n_blocks sb);
    for c = 0 to nclasses - 1 do
      if count.(c) > 0 then
        Format.fprintf fmt "class %4dB: %2d sb, %4d/%4d blocks (%.0f%%)@,"
          (Size_class.size_of_class t.classes c)
          count.(c) used.(c) cap.(c)
          (100.0 *. float_of_int used.(c) /. float_of_int (max 1 cap.(c)))
    done;
    Format.fprintf fmt "@]@,"
  in
  Format.fprintf fmt "@[<v>";
  pp_heap t.global;
  Array.iter pp_heap t.heaps;
  Format.fprintf fmt "@]"
