module IntMap = Map.Make (Int)

type heap = {
  core : Heap_core.t;
  lock : Platform.lock;
  sh : Alloc_stats.shard;
  ring : Event_ring.t option; (* same lock domain as [sh]; None when tracing is off *)
  rq_lock : Platform.lock; (* innermost lock: never held while acquiring any other *)
  mutable rq_blocks : (Superblock.t * int) list; (* remote frees pending a drain, newest first *)
  mutable rq_len : int;
  (* cfg.deferred: the unbounded deferred free list replacing the bounded
     queue above — producers CAS-push, the owner exchange-reclaims. *)
  dfl : Deferred_list.t option;
}

(* A thread's front-end cache: per size class, up to [front_end] block
   addresses served and absorbed without any lock. The blocks stay
   bitmap-allocated in their superblocks and charged to the owning heap's
   [u] (and to live bytes), so the emptiness invariant and [check] reason
   about them exactly as if the program still held them. *)
type tcache = {
  tc_slots : (int * Superblock.t) list array; (* per class, newest first *)
  tc_count : int array;
  tc_sh : Alloc_stats.shard; (* single writer: the owning thread *)
  tc_ring : Event_ring.t option;
  (* Domain currently driving this cache. Thread ids recycle across
     sequential domains, and [Domain.at_exit] hooks die with their
     domain — so the exit flush must be re-registered whenever a NEW
     domain adopts the tid, not only at cache creation. *)
  mutable tc_domain : int;
}

(* Sanitizer state: the most recent [q_cap] freed blocks are held back
   from reuse (FIFO), still bitmap-live in their superblocks, so a second
   free or a late touch through the checked platform is diagnosable
   instead of silently recycling. Host mutex: step-atomic on the
   simulator, real exclusion across domains, zero simulated cost. *)
type san = {
  q : int Queue.t; (* quarantined block addresses, oldest first *)
  q_set : (int, unit) Hashtbl.t;
  q_cap : int;
  q_mu : Mutex.t;
}

type t = {
  pf : Platform.t;
  cfg : Hoard_config.t;
  classes : Size_class.t;
  reg : Sb_registry.t;
  stats : Alloc_stats.t;
  owner : int;
  global : heap;
  heaps : heap array; (* per-processor heaps, ids 1..N *)
  large : Locked_large.t;
  (* cfg.large_cache > 0: the lock-free MPSC cache in front of the large
     path, held here (as well as inside [large]) for check/introspection. *)
  lcache : Large_cache.t option;
  reservoir : Sb_reservoir.t option; (* cfg.reservoir > 0: the empty-superblock parking lot *)
  (* cfg.shelf > 0: lock-free stack of empty superblocks in front of the
     global heap. Trim pushes an empty victim, refill pops — one CAS each,
     no global lock. Shelved superblocks stay registered, resident and
     owned by heap 0, so they remain inside the held/resident envelopes. *)
  shelf : Superblock.t Lockfree.t option;
  (* cfg.global = Lockfree: heap 0's Dlist fullness groups are replaced by
     the CAS-published fullness index — its core stays empty, its lock is
     never taken on the transfer path, and frees into global superblocks
     run through heap 0's deferred list + the index's Busy protocol. *)
  gindex : Global_index.t option;
  obs : Obs.t option;
  fe : int; (* cached [cfg.front_end]; 0 = the paper's exact algorithm *)
  rq_cap : int;
  tcaches : tcache IntMap.t Atomic.t; (* tid -> cache; replaced under [tc_mu] *)
  tc_mu : Mutex.t; (* host mutex: serialises tcache creation, zero simulated cost *)
  creator_did : int; (* domain that built [t]; its threads skip at-exit hooks *)
  san : san option;
  (* Test-mutant plumbing (cfg.mutant): the real allocator always runs
     with trim_slack = cfg.slack and the ownership re-check on. *)
  trim_slack : int;
  skip_owner_recheck : bool;
  park_before_decommit : bool;
  orphan_lost : bool;
}

exception Sanitizer_violation of string

type heap_info = {
  heap_id : int;
  u_bytes : int;
  a_bytes : int;
  superblocks : int;
  empty_superblocks : int;
}

let create ?(config = Hoard_config.default) ?obs pf =
  Hoard_config.validate config;
  if config.sb_size < pf.Platform.page_size then
    invalid_arg "Hoard.create: sb_size must be at least the platform page size";
  let n =
    match config.nheaps with
    | Some n -> n
    | None -> pf.Platform.nprocs
  in
  let classes = Size_class.create ~growth:config.growth ~max_small:(Hoard_config.max_small config) () in
  (* Stats shards mirror the lock domains: shard [id] for heap [id]
     (0 = global), one extra shard for the large path. Event rings, when
     tracing is on, mirror the same domains. Thread caches add their own
     shard (and ring) as they appear. *)
  let stats = Alloc_stats.create ~shards:(n + 2) () in
  let ring name =
    match obs with
    | None -> None
    | Some o -> Some (Obs.new_ring o name)
  in
  (* The lock-free structures share one contention counter and one mutant
     switch each: "reservoir-no-aba" freezes the ABA tag of the reservoir
     and the shelf (they run the same protocol), "large-cache-no-aba"
     that of the large cache, "deferred-lost-node" drops a deferred
     push's CAS retry. *)
  let aba_tag = config.mutant <> "reservoir-no-aba" in
  (* Every lock-free structure gets its own labelled retry hook, so the
     unified alloc.cas_retries total breaks down per structure in exports. *)
  let retry label = Alloc_stats.retry_hook stats ~label in
  let lockfree_global = config.global = Hoard_config.Lockfree in
  let use_dfl = (config.deferred && config.front_end > 0) || lockfree_global in
  let deferred_retry = if use_dfl then retry "deferred" else fun () -> () in
  let mk_heap id =
    {
      core = Heap_core.create ~id ~classes ~ngroups:config.ngroups ~sb_size:config.sb_size ();
      lock = pf.Platform.new_lock (Printf.sprintf "hoard.heap%d" id);
      sh = Alloc_stats.shard stats id;
      ring = ring (if id = 0 then "global" else Printf.sprintf "heap%d" id);
      rq_lock = pf.Platform.new_lock (Printf.sprintf "hoard.rfq%d" id);
      rq_blocks = [];
      rq_len = 0;
      dfl =
        (* The deferred list is the front end's eviction channel; without
           a front end nothing would ever push, so it is not built — except
           heap 0's under the lock-free global index, where it is the
           universal no-lock channel for frees into global superblocks. *)
        (if (config.deferred && config.front_end > 0) || (id = 0 && lockfree_global) then
           Some
             (Deferred_list.create pf
                ~name:(Printf.sprintf "hoard.dfl%d" id)
                ~lost_node:(config.mutant = "deferred-lost-node")
                ~on_retry:deferred_retry ())
         else None);
    }
  in
  let owner = Alloc_intf.next_owner () in
  let lcache =
    if config.large_cache > 0 then
      Some
        (Large_cache.create pf ~name:"hoard.lcache" ~cap:config.large_cache
           ~aba_tag:(config.mutant <> "large-cache-no-aba")
           ~on_retry:(retry "large-cache") ())
    else None
  in
  let t =
    {
      pf;
      cfg = config;
      classes;
      reg = Sb_registry.create pf ~sb_size:config.sb_size;
      stats;
      owner;
      global = mk_heap 0;
      heaps = Array.init n (fun i -> mk_heap (i + 1));
      large =
        Locked_large.create pf ~owner ~stats ~shard:(n + 1) ?ring:(ring "large") ?cache:lcache
          ~threshold:(Hoard_config.max_small config);
      lcache;
      reservoir =
        (if config.reservoir > 0 then
           Some (Sb_reservoir.create ~aba_tag ~on_retry:(retry "reservoir") pf ~cap:config.reservoir)
         else None);
      shelf =
        (if config.shelf > 0 then
           Some (Lockfree.create pf ~name:"hoard.shelf" ~cap:config.shelf ~aba_tag ~on_retry:(retry "shelf") ())
         else None);
      gindex =
        (if lockfree_global then
           Some
             (Global_index.create pf ~name:"hoard.gindex" ~nclasses:(Size_class.count classes)
                ~ngroups:config.ngroups
                ~aba_tag:(config.mutant <> "global-no-aba")
                ~skip_revalidate:(config.mutant = "global-skip-revalidate")
                ~on_retry:(retry "global") ())
         else None);
      obs;
      fe = config.front_end;
      rq_cap = config.remote_queue_cap;
      tcaches = Atomic.make IntMap.empty;
      tc_mu = Mutex.create ();
      creator_did = (Domain.self () :> int);
      san =
        (if config.sanitize then
           Some { q = Queue.create (); q_set = Hashtbl.create 64; q_cap = config.quarantine; q_mu = Mutex.create () }
         else None);
      trim_slack = (config.slack + if config.mutant = "emptiness-off-by-one" then 1 else 0);
      skip_owner_recheck = config.mutant = "skip-owner-recheck";
      park_before_decommit = config.mutant = "park-before-decommit";
      orphan_lost = config.mutant = "orphan-lost-superblock";
    }
  in
  (match obs with
   | Some o -> Alloc_stats.publish stats (Obs.metrics o)
   | None -> ());
  t

let config t = t.cfg

let nheaps t = Array.length t.heaps

let heap_by_id t id = if id = 0 then t.global else t.heaps.(id - 1)

(* Fibonacci hash so consecutive thread ids spread across heaps. *)
let hash_tid tid = (tid * 2654435761) land max_int

let my_heap t =
  let slot =
    if t.cfg.assign_by_tid then hash_tid (t.pf.Platform.self_tid ()) else t.pf.Platform.self_proc ()
  in
  t.heaps.(slot mod Array.length t.heaps)

(* Emptiness threshold crossed: both clauses of the invariant fail. The
   comparison uses usable bytes (excluding header and carving waste) so
   that crossing the threshold guarantees an at-least-f-empty superblock
   exists to transfer. *)
let too_empty ?slack t core =
  let k =
    match slack with
    | Some k -> k
    | None -> t.cfg.slack
  in
  let u = Heap_core.u core and a = Heap_core.usable_a core in
  u < a - (k * t.cfg.sb_size) && float_of_int u < (1.0 -. t.cfg.empty_fraction) *. float_of_int a

let touch_header t sb = t.pf.Platform.write ~addr:(Superblock.base sb) ~len:16

(* Record into [h]'s ring; the caller must hold [h]'s lock (the ring
   shares the stats shard's domain). Free when tracing is off. *)
let event t h kind ~sclass ~arg =
  match h.ring with
  | None -> ()
  | Some r ->
    Event_ring.record r ~at:(t.pf.Platform.now ()) ~kind ~who:(t.pf.Platform.self_proc ())
      ~heap:(Heap_core.id h.core) ~sclass ~arg

(* Record into the calling thread's cache ring (its own lock domain). *)
let event_tc t tc kind ~sclass ~arg =
  match tc.tc_ring with
  | None -> ()
  | Some r ->
    Event_ring.record r ~at:(t.pf.Platform.now ()) ~kind ~who:(t.pf.Platform.self_proc ())
      ~heap:(Heap_core.id (my_heap t).core) ~sclass ~arg

(* Dispose of one empty superblock the caller holds privately (already
   removed from its heap / the index, still registered). With a reservoir
   it is parked — unregistered, decommitted, still mapped — so a later
   refill pays a commit instead of an OS map; past the cap R (and always
   without one) it goes back to the OS. [h] is the lock domain whose ring
   records the disposal (the caller holds its lock); the reservoir lock
   is innermost. *)
let drop_empty_superblock t h sb =
  Sb_registry.unregister t.reg sb;
  let bytes = Superblock.sb_size sb in
  match t.reservoir with
  | Some res when t.park_before_decommit ->
    (* MUTANT: publish first, decommit after. A concurrent refill
       can take, recommit and start allocating from the superblock
       before our decommit lands — which then drops pages out from
       under live blocks: exactly the race the real path's
       decommit-before-park ordering forbids, for the schedule
       explorer to find. *)
    if Sb_reservoir.park res sb then begin
      t.pf.Platform.page_decommit ~addr:(Superblock.base sb);
      Alloc_stats.on_decommit t.stats ~bytes;
      Alloc_stats.on_park t.stats ~bytes;
      Alloc_stats.on_park_commit t.stats;
      event t h Event_ring.Decommit ~sclass:(Superblock.sclass sb) ~arg:bytes
    end
    else begin
      t.pf.Platform.page_unmap ~addr:(Superblock.base sb);
      Alloc_stats.on_unmap t.stats ~bytes;
      event t h Event_ring.Sb_unmap ~sclass:(Superblock.sclass sb) ~arg:bytes
    end
  | Some res ->
    (* Decommit and record stats while the superblock is still
       private: the moment [park] publishes it, a concurrent refill
       may take, recommit and reformat it, so a decommit (or a
       held/reservoir gauge update) after that point would race the
       taker — dropping pages under a live superblock. *)
    t.pf.Platform.page_decommit ~addr:(Superblock.base sb);
    Alloc_stats.on_decommit t.stats ~bytes;
    Alloc_stats.on_park t.stats ~bytes;
    event t h Event_ring.Decommit ~sclass:(Superblock.sclass sb) ~arg:bytes;
    if Sb_reservoir.park res sb then Alloc_stats.on_park_commit t.stats
    else begin
      (* Bounced on a full reservoir: the superblock is still ours
         and already decommitted — return it to the OS, as the
         no-reservoir path would have. *)
      t.pf.Platform.page_unmap ~addr:(Superblock.base sb);
      Alloc_stats.on_park_bounce t.stats ~bytes;
      event t h Event_ring.Sb_unmap ~sclass:(Superblock.sclass sb) ~arg:bytes
    end
  | None ->
    t.pf.Platform.page_unmap ~addr:(Superblock.base sb);
    Alloc_stats.on_unmap t.stats ~bytes;
    event t h Event_ring.Sb_unmap ~sclass:(Superblock.sclass sb) ~arg:bytes

(* Global heap, locked structure: drop surplus empty superblocks. Caller
   holds the global lock. *)
let release_surplus t =
  if t.cfg.release_to_os then
    while Heap_core.empty_superblock_count t.global.core > t.cfg.release_threshold do
      match Heap_core.pick_victim t.global.core ~max_fullness:0.0 with
      | None -> assert false (* the count said an empty superblock exists *)
      | Some sb -> drop_empty_superblock t t.global sb
    done

(* Global heap, lock-free index: surplus release by claiming empties off
   the index — each take is a CAS, no heap-0 lock. Bounded per call (the
   gauge may be momentarily stale and another releaser may be racing us;
   a later trim finishes the job), which also keeps the loop explorable.
   Caller holds [h]'s lock (for the disposal events). *)
let maybe_release_global t h gi =
  if t.cfg.release_to_os then begin
    let budget = ref 8 in
    while !budget > 0 && Global_index.empties gi > t.cfg.release_threshold do
      decr budget;
      match
        Global_index.take_empty gi ~record:(fun kind ~arg -> event t h kind ~sclass:(-1) ~arg)
      with
      | None -> budget := 0
      | Some sb ->
        Alloc_stats.on_global_pop t.stats;
        drop_empty_superblock t h sb
    done
  end

(* Transfer a privately-held superblock to the lock-free global heap: flip
   the owner while it is still unreachable, then one index publish — no
   heap-0 lock. Stats and events land on the calling heap's domain (the
   caller holds [h]'s lock); snapshot sums shards, so totals are
   unchanged. *)
let publish_global t h gi sb =
  let sclass = Superblock.sclass sb in
  Superblock.set_owner sb 0;
  touch_header t sb;
  Global_index.publish gi sb ~record:(fun kind ~arg -> event t h kind ~sclass ~arg);
  Alloc_stats.on_global_push t.stats;
  Alloc_stats.on_transfer_to_global h.sh;
  event t h Event_ring.Sb_to_global ~sclass ~arg:(Superblock.base sb)

(* Return queued remote frees to [h]'s core. Caller holds [h]'s lock; the
   queue lock is innermost, so the swap can never deadlock. A block whose
   superblock migrated since it was enqueued is forwarded to the current
   owner's queue — but boundedly: forwarding past the cap used to grow
   queues without limit (a drain could keep re-inflating its peers), so a
   forward is accepted only up to 2x the cap and counted; rejects land on
   [spill] for the caller to route through the classic locked path
   ([dispose_batch]) AFTER releasing [h]'s lock — taking another heap's
   lock here would invert the lock order. Returns the number of blocks
   freed into [h]. *)
let drain_rq t h ~spill =
  if h.rq_len = 0 then 0
  else begin
    h.rq_lock.acquire ();
    let items = h.rq_blocks in
    h.rq_blocks <- [];
    h.rq_len <- 0;
    h.rq_lock.release ();
    let mine = ref 0 and forwarded = ref 0 in
    List.iter
      (fun (sb, addr) ->
        let owner_id = Superblock.owner sb in
        if owner_id = Heap_core.id h.core then begin
          t.pf.Platform.write ~addr ~len:8;
          Superblock.clear_cached sb addr;
          Heap_core.free h.core sb addr;
          touch_header t sb;
          Alloc_stats.on_drain h.sh ~usable:(Superblock.block_size sb);
          incr mine
        end
        else if owner_id = 0 && t.gindex <> None then begin
          (* Migrated to the lock-free global heap: its deferred list is
             the universal owner-0 channel — one CAS, never heap 0's
             lock or queue. *)
          (match t.global.dfl with
           | Some dfl -> Deferred_list.push dfl sb addr
           | None -> assert false (* the lock-free index forces heap 0's list *));
          incr forwarded;
          event t h Event_ring.Remote_forward ~sclass:(Superblock.sclass sb) ~arg:addr
        end
        else begin
          let h' = heap_by_id t owner_id in
          h'.rq_lock.acquire ();
          let accepted = h'.rq_len < 2 * t.rq_cap in
          if accepted then begin
            h'.rq_blocks <- (sb, addr) :: h'.rq_blocks;
            h'.rq_len <- h'.rq_len + 1
          end;
          h'.rq_lock.release ();
          if accepted then begin
            incr forwarded;
            event t h Event_ring.Remote_forward ~sclass:(Superblock.sclass sb) ~arg:addr
          end
          else spill := (sb, addr) :: !spill
        end)
      items;
    if !forwarded > 0 then Alloc_stats.on_remote_forward h.sh ~blocks:!forwarded;
    if !mine > 0 then event t h Event_ring.Remote_drain ~sclass:0 ~arg:!mine;
    !mine
  end

(* Owner side of the deferred protocol: one exchange detaches the whole
   list, then every block is freed into [h]'s core. A block whose
   superblock migrated since its push is re-pushed onto the CURRENT
   owner's list — one CAS; the list is unbounded, so unlike the bounded
   queues, forwarding can neither cascade nor spill into the locked
   path. Caller holds [h]'s lock. *)
let reclaim_deferred t h =
  match h.dfl with
  | None -> 0
  | Some dfl ->
    (match Deferred_list.reclaim dfl with
     | [] -> 0
     | items ->
       let mine = ref 0 and forwarded = ref 0 in
       List.iter
         (fun (sb, addr) ->
           let owner_id = Superblock.owner sb in
           if owner_id = Heap_core.id h.core then begin
             t.pf.Platform.write ~addr ~len:8;
             Superblock.clear_cached sb addr;
             Heap_core.free h.core sb addr;
             touch_header t sb;
             Alloc_stats.on_drain h.sh ~usable:(Superblock.block_size sb);
             incr mine
           end
           else begin
             (match (heap_by_id t owner_id).dfl with
              | Some dfl' -> Deferred_list.push dfl' sb addr
              | None -> assert false (* deferred mode builds a list per heap *));
             incr forwarded;
             event t h Event_ring.Remote_forward ~sclass:(Superblock.sclass sb) ~arg:addr
           end)
         items;
       if !forwarded > 0 then Alloc_stats.on_remote_forward h.sh ~blocks:!forwarded;
       Alloc_stats.on_deferred_reclaim h.sh;
       event t h Event_ring.Deferred_reclaim ~sclass:0 ~arg:!mine;
       !mine)

(* Return every pending remote free to [h]'s core: the deferred list when
   configured, the bounded queue otherwise (both, during a transition,
   costs one extra branch). Caller holds [h]'s lock. *)
let drain_pending t h ~spill = reclaim_deferred t h + drain_rq t h ~spill

(* Reclaim heap 0's deferred list through the lock-free index: one
   exchange detaches it, then each block runs the Busy handshake — no
   heap-0 lock anywhere. Blocks whose superblock was claimed away since
   the push are re-routed: to [spill] (the locked [dispose_batch], run by
   the caller after releasing [h]'s lock) when a heap owns it now, back
   onto the list when it is still in transit or another reclaimer holds
   it Busy. Caller holds [h]'s lock — stats and events land there. *)
let reclaim_global_lockfree t h gi ~spill =
  match t.global.dfl with
  | None -> 0
  | Some dfl ->
    (match Deferred_list.reclaim dfl with
     | [] -> 0
     | items ->
       let mine = ref 0 and forwarded = ref 0 in
       List.iter
         (fun (sb, addr) ->
           Superblock.clear_cached sb addr;
           match Global_index.free_block gi sb ~addr with
           | Global_index.Freed { now_empty = _ } ->
             t.pf.Platform.write ~addr ~len:8;
             touch_header t sb;
             Alloc_stats.on_drain h.sh ~usable:(Superblock.block_size sb);
             incr mine
           | Global_index.Requeue ->
             (* Another reclaimer holds the superblock Busy; hand the
                block back rather than spin against it. *)
             Superblock.mark_cached sb addr;
             Deferred_list.push dfl sb addr
           | Global_index.Not_member { owner } ->
             Superblock.mark_cached sb addr;
             if owner = 0 then Deferred_list.push dfl sb addr (* claim in transit *)
             else begin
               incr forwarded;
               event t h Event_ring.Remote_forward ~sclass:(Superblock.sclass sb) ~arg:addr;
               spill := (sb, addr) :: !spill
             end)
         items;
       if !forwarded > 0 then Alloc_stats.on_remote_forward h.sh ~blocks:!forwarded;
       if !mine > 0 then begin
         Alloc_stats.on_deferred_reclaim h.sh;
         event t h Event_ring.Deferred_reclaim ~sclass:0 ~arg:!mine
       end;
       !mine)

(* Fetch a superblock usable for [sclass]: off the lock-free shelf (one
   CAS, no global lock) when one is stocked, else from the global heap,
   the reservoir, or the OS, and insert it into [h] (whose lock the
   caller holds). *)
let refill t h ~sclass ~block_size ~spill =
  let from_shelf () =
    match t.shelf with
    | None -> None
    | Some shelf ->
      (match Lockfree.pop shelf with
       | None -> None
       | Some sb ->
         (* The pop made the superblock private to us (owner still 0; the
            [Heap_core.insert] below flips it under our held lock, the
            same handoff discipline as the global path). It is empty by
            the shelf's invariant, so a class change is a plain reinit. *)
         if Superblock.sclass sb <> sclass || Superblock.block_size sb <> block_size then
           Superblock.reinit sb ~sclass ~block_size;
         Alloc_stats.on_shelf_pop h.sh;
         event t h Event_ring.Shelf_pop ~sclass ~arg:(Superblock.base sb);
         Some sb)
  in
  let from_global () =
    match t.gindex with
    | Some gi ->
      (* Pending frees may hand the index exactly the superblock we are
         about to ask for — and the reclaim is lock-free too. *)
      ignore (reclaim_global_lockfree t h gi ~spill);
      (match Global_index.acquire gi ~sclass ~record:(fun kind ~arg -> event t h kind ~sclass ~arg) with
       | None -> None
       | Some sb ->
         (* The claim CAS made the superblock private; a free racing the
            owner flip sees owner 0 + word Absent and parks the block on
            heap 0's deferred list, whose next reclaim forwards it to us. *)
         Superblock.set_owner sb (Heap_core.id h.core);
         Alloc_stats.on_global_pop t.stats;
         Some sb)
    | None ->
      t.global.lock.acquire ();
      (* Pending frees may hand the global heap exactly the superblock we
         are about to ask for. *)
      ignore (drain_pending t t.global ~spill);
      let sb = Heap_core.take_for_class t.global.core ~sclass in
      (* Flip ownership before releasing the global lock: a concurrent free
         must either see the old owner (and retry against our heap lock,
         which we hold) or block here until the handoff is complete. *)
      (match sb with
       | Some sb -> Superblock.set_owner sb (Heap_core.id h.core)
       | None -> ());
      t.global.lock.release ();
      sb
  in
  let from_reservoir () =
    match t.reservoir with
    | None -> None
    | Some res ->
      (match Sb_reservoir.take res with
       | None -> None
       | Some sb ->
         (* Recommit-before-reuse: the parked superblock's pages were
            dropped; touching it without the commit is the lifecycle bug
            the sanitizer's residency check exists to catch. *)
         let base = Superblock.base sb in
         t.pf.Platform.page_commit ~addr:base;
         Superblock.reformat sb ~sclass ~block_size;
         Sb_registry.register t.reg sb;
         Alloc_stats.on_unpark t.stats ~bytes:t.cfg.sb_size;
         Alloc_stats.on_recommit t.stats ~bytes:t.cfg.sb_size;
         event t h Event_ring.Recommit ~sclass ~arg:t.cfg.sb_size;
         if t.san <> None && t.pf.Platform.page_residency ~addr:base <> Vmem.Resident then
           failwith "Hoard.refill: reservoir superblock reused without recommit";
         Some sb)
  in
  let sb =
    match from_shelf () with
    | Some sb -> sb
    | None ->
      (match from_global () with
       | Some sb ->
         if Superblock.is_empty sb && (Superblock.sclass sb <> sclass || Superblock.block_size sb <> block_size)
         then Superblock.reinit sb ~sclass ~block_size;
         Alloc_stats.on_transfer_from_global h.sh;
         event t h Event_ring.Sb_from_global ~sclass ~arg:(Superblock.base sb);
         sb
       | None ->
         (match from_reservoir () with
          | Some sb -> sb
          | None ->
            let base = t.pf.Platform.page_map ~bytes:t.cfg.sb_size ~align:t.cfg.sb_size ~owner:t.owner in
            let sb = Superblock.create ~base ~sb_size:t.cfg.sb_size ~sclass ~block_size in
            Sb_registry.register t.reg sb;
            Alloc_stats.on_map t.stats ~bytes:t.cfg.sb_size;
            event t h Event_ring.Sb_map ~sclass ~arg:t.cfg.sb_size;
            sb))
  in
  Heap_core.insert h.core sb;
  touch_header t sb

(* Lock the heap owning [sb], re-checking ownership after acquisition: the
   superblock may migrate to the global heap between the read and the lock
   (the paper's free protocol). Under the lock-free index an owner-0
   superblock has no lock to take — it returns [None] and the caller
   routes the block through heap 0's deferred list instead. *)
let rec lock_owner t sb =
  let id = Superblock.owner sb in
  if id = 0 && t.gindex <> None then None
  else begin
    let h = heap_by_id t id in
    h.lock.acquire ();
    (* The skip-owner-recheck mutant returns without re-reading the owner:
       the superblock may have migrated to the global heap between the read
       above and the acquisition, and the caller then frees into the wrong
       heap — the bug the schedule explorer is expected to find. *)
    if t.skip_owner_recheck || Superblock.owner sb = Heap_core.id h.core then Some h
    else begin
      h.lock.release ();
      lock_owner t sb
    end
  end

(* The paper's post-free bookkeeping, factored so queue drains share it.
   Caller holds [h]'s lock. With [deep] (drains return many blocks at
   once), keep transferring until the invariant is restored; without it,
   move at most ONE at-least-f-empty superblock to the global heap — one
   is enough to restore the invariant when it held before the free (each
   free releases at most one block); heaps that malloc drove far below the
   threshold converge back over subsequent frees instead of exiling their
   superblocks all at once. *)
let trim_heap ?(deep = false) t h ~sclass =
  if Heap_core.id h.core = 0 then release_surplus t (* the held lock IS the global lock *)
  else begin
    let continue_ = ref true in
    while !continue_ && too_empty ~slack:t.trim_slack t h.core do
      event t h Event_ring.Emptiness_cross ~sclass ~arg:(Heap_core.u h.core);
      (match Heap_core.pick_victim ~protect_last:true h.core ~max_fullness:(1.0 -. t.cfg.empty_fraction) with
       | None -> continue_ := false
       | Some victim ->
         (* An EMPTY victim takes the non-blocking route when a shelf is
            configured: flip its owner to the global heap while it is
            still private (the pick removed it from [h]; nothing else can
            reach it — it has no live blocks), then publish with one CAS.
            Partial victims, and empties bouncing off a full shelf, go
            through the classic locked global-heap transfer. *)
         let shelved =
           match t.shelf with
           | Some shelf when Superblock.is_empty victim ->
             Superblock.set_owner victim 0;
             touch_header t victim;
             if Lockfree.push shelf victim then begin
               Alloc_stats.on_shelf_push h.sh;
               event t h Event_ring.Shelf_push ~sclass:(Superblock.sclass victim)
                 ~arg:(Superblock.base victim);
               true
             end
             else false
           | _ -> false
         in
         if not shelved then begin
           match t.gindex with
           | Some gi ->
             (* The non-blocking transfer: one index publish, any
                fullness, never heap 0's lock. *)
             publish_global t h gi victim;
             maybe_release_global t h gi
           | None ->
             t.global.lock.acquire ();
             Heap_core.insert t.global.core victim;
             touch_header t victim;
             Alloc_stats.on_transfer_to_global t.global.sh;
             event t t.global Event_ring.Sb_to_global ~sclass:(Superblock.sclass victim)
               ~arg:(Superblock.base victim);
             release_surplus t;
             t.global.lock.release ()
         end);
      if not deep then continue_ := false
    done
  end

(* Classic locked disposal of blocks already counted as freed (they sat
   in a cache or overflowed a queue), batched: one heap-lock acquisition
   covers every block with the same current owner; blocks that migrate
   mid-round are retried next round. The first block's owner is pinned by
   [lock_owner], so every round frees at least one block. *)
let rec dispose_batch t pairs =
  (* Under the lock-free index, owner-0 blocks have no heap to lock:
     they go to heap 0's deferred list in one pre-linked CAS (custody
     marks stay on until the reclaim clears them). *)
  let pairs =
    match (t.gindex, t.global.dfl) with
    | Some _, Some dfl ->
      let global, rest = List.partition (fun (sb, _) -> Superblock.owner sb = 0) pairs in
      if global <> [] then Deferred_list.push_many dfl global;
      rest
    | _ -> pairs
  in
  match pairs with
  | [] -> ()
  | (sb0, _) :: _ ->
    (match lock_owner t sb0 with
     | None -> dispose_batch t pairs (* migrated to owner 0 since the partition: redo it *)
     | Some h ->
       let id = Heap_core.id h.core in
       let later = ref [] and n = ref 0 in
       List.iter
         (fun (sb, addr) ->
           if Superblock.owner sb = id then begin
             t.pf.Platform.write ~addr ~len:8;
             Superblock.clear_cached sb addr;
             Heap_core.free h.core sb addr;
             touch_header t sb;
             Alloc_stats.on_drain h.sh ~usable:(Superblock.block_size sb);
             incr n
           end
           else later := (sb, addr) :: !later)
         pairs;
       if !n > 0 then trim_heap ~deep:true t h ~sclass:(Superblock.sclass sb0);
       h.lock.release ();
       dispose_batch t !later)

(* Route cache-evicted blocks out. Deferred mode: partition by the owner
   observed now and publish each group as one pre-linked chain — a single
   CAS per owner heap instead of one per block, no queue lock, no cap, no
   locked fallback; a block whose superblock migrates between the owner
   read and the push just lands on the stale owner's list, whose reclaim
   forwards it. Queue mode: partition by owner, push each group onto its
   owner's remote-free queue in one innermost-lock critical section, and
   hand whatever the caps reject to the classic locked path in one batch. *)
let surrender_many t tc pairs =
  if t.cfg.deferred then begin
    let groups = Array.make (Array.length t.heaps + 1) [] in
    List.iter
      (fun (addr, sb) -> groups.(Superblock.owner sb) <- (sb, addr) :: groups.(Superblock.owner sb))
      pairs;
    Array.iteri
      (fun id group ->
        match group with
        | [] -> ()
        | _ ->
          (match (heap_by_id t id).dfl with
           | Some dfl -> Deferred_list.push_many dfl group
           | None -> assert false (* deferred mode builds a list per heap *));
          List.iter
            (fun (sb, addr) ->
              Alloc_stats.on_deferred_enqueue tc.tc_sh;
              event_tc t tc Event_ring.Deferred_enqueue ~sclass:(Superblock.sclass sb) ~arg:addr)
            group)
      groups
  end
  else begin
  let groups = Array.make (Array.length t.heaps + 1) [] in
  List.iter
    (fun (addr, sb) -> groups.(Superblock.owner sb) <- (sb, addr) :: groups.(Superblock.owner sb))
    pairs;
  let overflow = ref [] in
  Array.iteri
    (fun id group ->
      match group with
      | [] -> ()
      | _ when id = 0 && t.gindex <> None ->
        (* Queue mode, lock-free global heap: heap 0 has no drained queue,
           so owner-0 evictions go to its deferred list — one pre-linked
           CAS, no cap, no locked fallback. *)
        (match t.global.dfl with
         | Some dfl -> Deferred_list.push_many dfl group
         | None -> assert false (* the lock-free index forces heap 0's list *));
        List.iter
          (fun (sb, addr) ->
            Alloc_stats.on_deferred_enqueue tc.tc_sh;
            event_tc t tc Event_ring.Deferred_enqueue ~sclass:(Superblock.sclass sb) ~arg:addr)
          group
      | (sb0, _) :: _ ->
        let h = heap_by_id t id in
        h.rq_lock.acquire ();
        let accepted = ref 0 in
        let room = ref (t.rq_cap - h.rq_len) in
        List.iter
          (fun (sb, addr) ->
            if !room > 0 then begin
              decr room;
              h.rq_blocks <- (sb, addr) :: h.rq_blocks;
              h.rq_len <- h.rq_len + 1;
              incr accepted
            end
            else overflow := (sb, addr) :: !overflow)
          group;
        h.rq_lock.release ();
        if !accepted > 0 then begin
          Alloc_stats.on_remote_enqueue tc.tc_sh ~blocks:!accepted;
          event_tc t tc Event_ring.Remote_enqueue ~sclass:(Superblock.sclass sb0) ~arg:!accepted
        end)
    groups;
  dispose_batch t !overflow
  end

(* Evict the oldest half of an overflowing class so the next [fe/2] frees
   stay lock-free. *)
let flush_class t tc ~sclass =
  let keep = t.fe / 2 in
  let rec split n acc = function
    | rest when n = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: tl -> split (n - 1) (x :: acc) tl
  in
  let kept, excess = split keep [] tc.tc_slots.(sclass) in
  let n_excess = tc.tc_count.(sclass) - keep in
  tc.tc_slots.(sclass) <- kept;
  tc.tc_count.(sclass) <- keep;
  Alloc_stats.on_cache_flush tc.tc_sh ~blocks:n_excess;
  event_tc t tc Event_ring.Cache_flush ~sclass ~arg:n_excess;
  surrender_many t tc excess

(* Empty the calling thread's cache entirely (thread exit, explicit
   flush). *)
let flush_tcache t tc =
  let all = ref [] in
  Array.iteri
    (fun sclass stack ->
      match stack with
      | [] -> ()
      | _ ->
        Alloc_stats.on_cache_flush tc.tc_sh ~blocks:tc.tc_count.(sclass);
        event_tc t tc Event_ring.Cache_flush ~sclass ~arg:tc.tc_count.(sclass);
        tc.tc_slots.(sclass) <- [];
        tc.tc_count.(sclass) <- 0;
        all := List.rev_append stack !all)
    tc.tc_slots;
  if !all <> [] then surrender_many t tc !all

let new_tcache t tid =
  Mutex.lock t.tc_mu;
  let tc =
    match IntMap.find_opt tid (Atomic.get t.tcaches) with
    | Some tc -> tc
    | None ->
      let ring =
        match t.obs with
        | None -> None
        | Some o ->
          let name = Printf.sprintf "tcache%d" tid in
          (* Thread ids can be recycled across sequential domains; the
             successor inherits the name's ring. *)
          (match Obs.find_ring o name with
           | Some r -> Some r
           | None -> Some (Obs.new_ring o name))
      in
      let tc =
        {
          tc_slots = Array.make (Size_class.count t.classes) [];
          tc_count = Array.make (Size_class.count t.classes) 0;
          tc_sh = Alloc_stats.add_shard t.stats;
          tc_ring = ring;
          tc_domain = (Domain.self () :> int);
        }
      in
      Atomic.set t.tcaches (IntMap.add tid tc (Atomic.get t.tcaches));
      (* Real worker domains flush their cache when they exit, so nothing
         leaks into a dead thread. Simulated threads share the creator
         domain and are flushed by [flush_caches] at quiescence instead. *)
      if tc.tc_domain <> t.creator_did then Domain.at_exit (fun () -> flush_tcache t tc);
      tc
  in
  Mutex.unlock t.tc_mu;
  tc

(* [Domain.at_exit] hooks belong to the registering domain, so a cache
   surviving its domain (recycled thread id: domain A exits, domain B is
   assigned the same tid) must re-arm the exit flush ON the adopting
   domain — registering only at creation silently dropped every later
   domain's flush, leaking its cached blocks. *)
let adopt_tcache t tc =
  let did = (Domain.self () :> int) in
  if tc.tc_domain <> did then begin
    Mutex.lock t.tc_mu;
    if tc.tc_domain <> did then begin
      tc.tc_domain <- did;
      if did <> t.creator_did then Domain.at_exit (fun () -> flush_tcache t tc)
    end;
    Mutex.unlock t.tc_mu
  end

let tcache t =
  let tid = t.pf.Platform.self_tid () in
  match IntMap.find_opt tid (Atomic.get t.tcaches) with
  | Some tc ->
    adopt_tcache t tc;
    tc
  | None -> new_tcache t tid

(* The slow half of a front-end malloc: one lock acquisition drains the
   pending remote frees and pulls [fe/2 + 1] blocks — one to return, the
   rest into the cache. *)
let malloc_fill t tc ~size ~sclass ~block_size =
  let h = my_heap t in
  let spill = ref [] in
  h.lock.acquire ();
  let drained = drain_pending t h ~spill in
  let want = (t.fe / 2) + 1 in
  let blocks = ref [] and got = ref 0 in
  while !got < want do
    match Heap_core.malloc_batch h.core ~sclass ~block_size ~n:(want - !got) with
    | [] -> refill t h ~sclass ~block_size ~spill
    | batch ->
      List.iter (fun (_, sb) -> touch_header t sb) batch;
      blocks := List.rev_append batch !blocks;
      got := !got + List.length batch
  done;
  let addr =
    match !blocks with
    | [] -> assert false (* want >= 1 *)
    | (addr, _) :: cached ->
      Alloc_stats.on_malloc h.sh ~requested:size ~usable:block_size;
      let n_cached = List.length cached in
      if n_cached > 0 then begin
        (* Fill surplus enters front-end custody: mark it, so a wild free
           of a cached address is caught as a double free, not recycled. *)
        List.iter
          (fun (a, sb) ->
            Superblock.mark_cached sb a;
            tc.tc_slots.(sclass) <- (a, sb) :: tc.tc_slots.(sclass))
          cached;
        tc.tc_count.(sclass) <- tc.tc_count.(sclass) + n_cached;
        Alloc_stats.on_cache_fill h.sh ~blocks:n_cached ~bytes:(n_cached * block_size)
      end;
      addr
  in
  if drained > 0 then trim_heap ~deep:true t h ~sclass;
  t.pf.Platform.write ~addr ~len:8;
  h.lock.release ();
  (* Spilled forwards (a drain met an over-full peer queue) take the
     locked path only now, with no heap lock held. *)
  if !spill <> [] then dispose_batch t !spill;
  addr

let malloc t size =
  if size <= 0 then invalid_arg "Hoard.malloc: size must be positive";
  t.pf.Platform.work t.cfg.path_work;
  if Locked_large.is_large t.large size then Locked_large.malloc t.large size
  else begin
    let sclass = Size_class.class_of_size t.classes size in
    let block_size = Size_class.size_of_class t.classes sclass in
    if t.fe > 0 then begin
      let tc = tcache t in
      match tc.tc_slots.(sclass) with
      | (addr, sb) :: rest ->
        tc.tc_slots.(sclass) <- rest;
        tc.tc_count.(sclass) <- tc.tc_count.(sclass) - 1;
        (* Custody ends: the block is the program's again, and a free of
           it must be accepted. *)
        Superblock.clear_cached sb addr;
        Alloc_stats.on_cache_hit tc.tc_sh ~requested:size;
        event_tc t tc Event_ring.Cache_hit ~sclass ~arg:addr;
        t.pf.Platform.write ~addr ~len:8;
        addr
      | [] -> malloc_fill t tc ~size ~sclass ~block_size
    end
    else begin
      let h = my_heap t in
      let spill = ref [] in
      h.lock.acquire ();
      let addr =
        match Heap_core.malloc h.core ~sclass ~block_size with
        | Some (addr, sb) ->
          touch_header t sb;
          addr
        | None ->
          refill t h ~sclass ~block_size ~spill;
          (match Heap_core.malloc h.core ~sclass ~block_size with
           | Some (addr, sb) ->
             touch_header t sb;
             addr
           | None -> assert false (* refill installed an allocatable superblock *))
      in
      Alloc_stats.on_malloc h.sh ~requested:size ~usable:block_size;
      (* The allocator links free blocks through their first word. *)
      t.pf.Platform.write ~addr ~len:8;
      h.lock.release ();
      if !spill <> [] then dispose_batch t !spill;
      addr
    end
  end

(* Batched allocation: one heap-lock acquisition for the whole request,
   regardless of the front-end setting. *)
let malloc_many t n size =
  if n <= 0 then [||]
  else if size <= 0 then invalid_arg "Hoard.malloc: size must be positive"
  else begin
    t.pf.Platform.work t.cfg.path_work;
    if Locked_large.is_large t.large size then Array.init n (fun _ -> Locked_large.malloc t.large size)
    else begin
      let sclass = Size_class.class_of_size t.classes size in
      let block_size = Size_class.size_of_class t.classes sclass in
      let h = my_heap t in
      let spill = ref [] in
      h.lock.acquire ();
      ignore (drain_pending t h ~spill);
      let out = Array.make n 0 and got = ref 0 in
      while !got < n do
        match Heap_core.malloc_batch h.core ~sclass ~block_size ~n:(n - !got) with
        | [] -> refill t h ~sclass ~block_size ~spill
        | batch ->
          List.iter
            (fun (addr, sb) ->
              touch_header t sb;
              out.(!got) <- addr;
              Alloc_stats.on_malloc h.sh ~requested:size ~usable:block_size;
              t.pf.Platform.write ~addr ~len:8;
              incr got)
            batch
      done;
      h.lock.release ();
      if !spill <> [] then dispose_batch t !spill;
      out
    end
  end

let free_now t addr =
  t.pf.Platform.work t.cfg.path_work;
  match Sb_registry.lookup t.reg ~addr with
  | Some sb ->
    if t.fe > 0 then begin
      let tc = tcache t in
      let sclass = Superblock.sclass sb in
      (* A block absorbed by ANY thread's cache (or parked on a remote
         queue) stays bitmap-live, so liveness alone cannot catch a second
         free — and scanning only the caller's own cache missed the
         cross-thread case entirely. The superblock's custody bit is the
         shared O(1) record of "freed but still cached", whoever holds
         it. *)
      if (not (Superblock.is_block_live sb addr)) || Superblock.is_block_cached sb addr then
        failwith "Hoard.free: double free (cached)";
      if tc.tc_count.(sclass) >= t.fe then flush_class t tc ~sclass;
      Superblock.mark_cached sb addr;
      tc.tc_slots.(sclass) <- (addr, sb) :: tc.tc_slots.(sclass);
      tc.tc_count.(sclass) <- tc.tc_count.(sclass) + 1;
      Alloc_stats.on_cached_free tc.tc_sh;
      t.pf.Platform.write ~addr ~len:8
    end
    else begin
      match lock_owner t sb with
      | Some h ->
        let my = my_heap t in
        if h != my && h != t.global then begin
          Alloc_stats.on_remote_free h.sh;
          event t h Event_ring.Remote_free ~sclass:(Superblock.sclass sb) ~arg:addr
        end;
        t.pf.Platform.write ~addr ~len:8;
        Heap_core.free h.core sb addr;
        touch_header t sb;
        Alloc_stats.on_free h.sh ~usable:(Superblock.block_size sb);
        trim_heap t h ~sclass:(Superblock.sclass sb);
        h.lock.release ()
      | None ->
        (* The superblock lives in the lock-free global heap: park the
           block on heap 0's deferred list (one CAS; the next reclaim
           completes the free through the Busy handshake). The block
           enters front-end-style custody — counted as freed now, still
           charged to live bytes until reclaimed — and only MY heap's
           lock is taken, for its stats shard and ring. *)
        if (not (Superblock.is_block_live sb addr)) || Superblock.is_block_cached sb addr then
          failwith "Hoard.free: double free";
        let h = my_heap t in
        h.lock.acquire ();
        t.pf.Platform.write ~addr ~len:8;
        Superblock.mark_cached sb addr;
        (match t.global.dfl with
         | Some dfl -> Deferred_list.push dfl sb addr
         | None -> assert false (* the lock-free index forces heap 0's list *));
        Alloc_stats.on_cached_free h.sh;
        Alloc_stats.on_deferred_enqueue h.sh;
        event t h Event_ring.Deferred_enqueue ~sclass:(Superblock.sclass sb) ~arg:addr;
        h.lock.release ()
    end
  | None -> if not (Locked_large.try_free t.large ~addr) then invalid_arg "Hoard.free: foreign pointer"

(* Whether the sanitizer currently quarantines this block address. *)
let quarantined t addr =
  match t.san with
  | None -> false
  | Some s ->
    Mutex.lock s.q_mu;
    let r = Hashtbl.mem s.q_set addr in
    Mutex.unlock s.q_mu;
    r

(* Build and raise the sanitizer diagnostic: what happened, where, the
   owning superblock/heap, and that heap's most recent event-ring entries
   (when tracing is on) as the last-op trace. Terminal, so the unlocked
   ring read is fine. *)
let san_report t ~what ~addr sb =
  let b = Buffer.create 128 in
  Printf.bprintf b "heap sanitizer: %s at 0x%x" what addr;
  (match sb with
   | None -> ()
   | Some sb ->
     Printf.bprintf b " (superblock 0x%x class=%d block=%dB owner=heap%d)" (Superblock.base sb)
       (Superblock.sclass sb) (Superblock.block_size sb) (Superblock.owner sb);
     let owner_id = Superblock.owner sb in
     if owner_id >= 0 && owner_id <= Array.length t.heaps then begin
       match (heap_by_id t owner_id).ring with
       | None -> ()
       | Some r ->
         let evs = Event_ring.to_list r in
         let n = List.length evs in
         let evs = if n > 6 then List.filteri (fun i _ -> i >= n - 6) evs else evs in
         if evs <> [] then begin
           Printf.bprintf b "; last heap events:";
           List.iter
             (fun (e : Event_ring.event) ->
               Printf.bprintf b " [%s at=%d proc=%d class=%d arg=%d]" (Event_ring.kind_name e.kind) e.at
                 e.who e.sclass e.arg)
             evs
         end
     end);
  raise (Sanitizer_violation (Buffer.contents b))

(* Sanitizing free: validate the pointer (double free, interior, header,
   foreign), poison the block, and push it through the quarantine ring.
   The evicted oldest block takes the real free path; until then the
   block stays bitmap-live, so stats' free counters lag the program's
   frees by at most [quarantine] until a flush. *)
let free t addr =
  match t.san with
  | None -> free_now t addr
  | Some s ->
    t.pf.Platform.work t.cfg.path_work;
    (match Sb_registry.lookup t.reg ~addr with
     | None ->
       if not (Locked_large.try_free t.large ~addr) then san_report t ~what:"free of foreign pointer" ~addr None
     | Some sb ->
       if quarantined t addr then san_report t ~what:"double free (block still in quarantine)" ~addr (Some sb);
       (match Superblock.locate sb addr with
        | Superblock.Header -> san_report t ~what:"free of a superblock header address" ~addr (Some sb)
        | Superblock.Tail_waste -> san_report t ~what:"free of a tail-waste address" ~addr (Some sb)
        | Superblock.Block { b_start; b_live; _ } ->
          if b_start <> addr then san_report t ~what:"free of an interior pointer" ~addr (Some sb);
          if not b_live then san_report t ~what:"double free" ~addr (Some sb));
       (* Poison-on-free: scribble the whole block, so the cost (and the
          coherence traffic) of poisoning is modelled. *)
       t.pf.Platform.write ~addr ~len:(Superblock.block_size sb);
       Mutex.lock s.q_mu;
       Queue.push addr s.q;
       Hashtbl.replace s.q_set addr ();
       let evicted =
         if Queue.length s.q > s.q_cap then begin
           let a = Queue.pop s.q in
           Hashtbl.remove s.q_set a;
           Some a
         end
         else None
       in
       Mutex.unlock s.q_mu;
       (match evicted with
        | Some a -> free_now t a
        | None -> ()))

let usable_size t addr =
  match Sb_registry.lookup t.reg ~addr with
  | Some sb ->
    if quarantined t addr then san_report t ~what:"usable_size of a freed (quarantined) block" ~addr (Some sb);
    if Superblock.is_block_live sb addr then Superblock.block_size sb
    else if t.san <> None then san_report t ~what:"usable_size of a dead block" ~addr (Some sb)
    else invalid_arg "Hoard.usable_size: dead block"
  | None ->
    (match Locked_large.usable_size t.large ~addr with
     | Some n -> n
     | None -> invalid_arg "Hoard.usable_size: foreign pointer")

(* In-place whenever the block's superblock already carves pieces big
   enough; a single registry lookup replaces the generic path's
   usable_size round trip. Growth falls back to allocate-copy-free
   through the front end. *)
let realloc t ~addr ~size =
  if size <= 0 then invalid_arg "Alloc_api.realloc: size must be positive";
  (match Sb_registry.lookup t.reg ~addr with
   | Some sb when quarantined t addr -> san_report t ~what:"realloc of a freed (quarantined) block" ~addr (Some sb)
   | _ -> ());
  match Sb_registry.lookup t.reg ~addr with
  | Some sb when Superblock.is_block_live sb addr && size <= Superblock.block_size sb -> addr
  | _ ->
    let old_usable = usable_size t addr in
    if size <= old_usable then addr
    else begin
      let fresh = malloc t size in
      let copied = min old_usable size in
      t.pf.Platform.read ~addr ~len:copied;
      t.pf.Platform.write ~addr:fresh ~len:copied;
      free t addr;
      fresh
    end

(* Empty the quarantine from inside a simulated thread: every deferred
   free takes the real free path now, with its usual costs. *)
let drain_quarantine t =
  match t.san with
  | None -> ()
  | Some s ->
    Mutex.lock s.q_mu;
    let items = List.rev (Queue.fold (fun acc a -> a :: acc) [] s.q) in
    Queue.clear s.q;
    Hashtbl.reset s.q_set;
    Mutex.unlock s.q_mu;
    List.iter (fun a -> free_now t a) items

let quarantine_length t =
  match t.san with
  | None -> 0
  | Some s ->
    Mutex.lock s.q_mu;
    let n = Queue.length s.q in
    Mutex.unlock s.q_mu;
    n

(* In-thread flush: cache out to the owners' queues, then drain and trim
   the calling thread's own heap. *)
let flush t =
  drain_quarantine t;
  if t.fe > 0 then
    match IntMap.find_opt (t.pf.Platform.self_tid ()) (Atomic.get t.tcaches) with
    | Some tc -> flush_tcache t tc
    | None -> ()

(* ... then drain and trim the calling thread's own heap, plus (under the
   lock-free index) heap 0's deferred list — all without the heap-0
   lock. *)
let flush t =
  flush t;
  if t.fe > 0 || t.gindex <> None then begin
    let h = my_heap t in
    let spill = ref [] in
    h.lock.acquire ();
    if drain_pending t h ~spill > 0 then trim_heap ~deep:true t h ~sclass:0;
    (match t.gindex with
     | Some gi ->
       ignore (reclaim_global_lockfree t h gi ~spill);
       maybe_release_global t h gi
     | None -> ());
    h.lock.release ();
    if !spill <> [] then dispose_batch t !spill
  end

(* Thread retirement: the front-end cache is flushed AND retired (a
   recycled thread id starts from a fresh cache instead of inheriting
   stale slots), pending remote frees are drained, and then the heap
   assignment itself is released — every superblock still on the exiting
   thread's heap is adopted by the global heap. Under per-tid assignment
   no live thread maps to this heap any more, so without adoption its
   superblocks would be stranded: unreachable for reuse yet still counted
   against the held envelope, inflating blowup beyond O(U + P) as threads
   churn. Threads sharing the heap (per-proc assignment, or a tid hash
   collision) simply refill from the global heap afterwards — adoption is
   a transfer, never a release, so no live block moves or dies.

   Idempotent: a second call finds no cache and an empty heap. *)
let on_thread_exit t =
  drain_quarantine t;
  let tid = t.pf.Platform.self_tid () in
  if t.fe > 0 then begin
    match IntMap.find_opt tid (Atomic.get t.tcaches) with
    | Some tc ->
      flush_tcache t tc;
      Mutex.lock t.tc_mu;
      Atomic.set t.tcaches (IntMap.remove tid (Atomic.get t.tcaches));
      Mutex.unlock t.tc_mu
    | None -> ()
  end;
  let h = my_heap t in
  let spill = ref [] in
  h.lock.acquire ();
  ignore (drain_pending t h ~spill);
  let orphans = ref [] in
  Heap_core.iter h.core (fun sb -> orphans := sb :: !orphans);
  List.iter
    (fun sb ->
      Heap_core.remove h.core sb;
      Alloc_stats.on_orphan_adopt h.sh;
      event t h Event_ring.Orphan_adopt ~sclass:(Superblock.sclass sb) ~arg:(Superblock.base sb))
    !orphans;
  (if t.orphan_lost then
     (* MUTANT: the superblocks were unhooked from the exiting heap but
        never inserted into the global heap — their blocks (and their held
        bytes) leak out of every heap's accounting, which [check]'s
        live-bytes conservation reports and the schedule explorer is
        expected to find. *)
     List.iter
       (fun sb ->
         Superblock.set_owner sb 0;
         touch_header t sb)
       !orphans
   else
     match t.gindex with
     | Some gi ->
       (* Lock-free adoption: one index publish per superblock; the whole
          exit path completes without ever touching the heap-0 lock. *)
       List.iter (fun sb -> publish_global t h gi sb) !orphans;
       if !orphans <> [] then maybe_release_global t h gi
     | None ->
       (* Batched locked adoption: ONE heap-0 critical section covers the
          whole orphan batch — insert everything, then a single surplus
          sweep — instead of an acquire/release per superblock. *)
       if !orphans <> [] then begin
         t.global.lock.acquire ();
         List.iter
           (fun sb ->
             Heap_core.insert t.global.core sb;
             touch_header t sb;
             Alloc_stats.on_transfer_to_global t.global.sh;
             event t t.global Event_ring.Sb_to_global ~sclass:(Superblock.sclass sb)
               ~arg:(Superblock.base sb))
           !orphans;
         release_surplus t;
         t.global.lock.release ()
       end);
  h.lock.release ();
  if !spill <> [] then dispose_batch t !spill

(* Quiescent-only: returns every cached and queued block straight to the
   heap cores WITHOUT platform locks, costs or events (on the simulated
   platform those are effects, usable only inside simulated threads).
   Afterwards live bytes equal program-held bytes exactly, and the
   emptiness invariant is re-established; surplus empty superblocks stay
   mapped (releasing them would charge platform unmaps). *)
let flush_caches t =
  let dispose (sb, addr) =
    Superblock.clear_cached sb addr;
    match (t.gindex, Superblock.owner sb) with
    | Some gi, 0 ->
      (* Lock-free mode: heap 0's core is empty, the member lives in the
         index — complete the free through its quiescent path. *)
      Global_index.q_free gi sb ~addr;
      Alloc_stats.on_drain t.global.sh ~usable:(Superblock.block_size sb)
    | _ ->
      let h = heap_by_id t (Superblock.owner sb) in
      Heap_core.free h.core sb addr;
      Alloc_stats.on_drain h.sh ~usable:(Superblock.block_size sb)
  in
  (* Quarantined blocks first: the program already freed them, so complete
     those frees (counting them as frees, not drains) before rebalancing. *)
  (match t.san with
   | None -> ()
   | Some s ->
     Mutex.lock s.q_mu;
     let items = List.rev (Queue.fold (fun acc a -> a :: acc) [] s.q) in
     Queue.clear s.q;
     Hashtbl.reset s.q_set;
     Mutex.unlock s.q_mu;
     List.iter
       (fun addr ->
         match Sb_registry.lookup t.reg ~addr with
         | None -> assert false
         | Some sb -> (
           match (t.gindex, Superblock.owner sb) with
           | Some gi, 0 ->
             Global_index.q_free gi sb ~addr;
             Alloc_stats.on_free t.global.sh ~usable:(Superblock.block_size sb)
           | _ ->
             let h = heap_by_id t (Superblock.owner sb) in
             Heap_core.free h.core sb addr;
             Alloc_stats.on_free h.sh ~usable:(Superblock.block_size sb)))
       items);
  IntMap.iter
    (fun _ tc ->
      Array.iteri
        (fun sclass stack ->
          match stack with
          | [] -> ()
          | _ ->
            Alloc_stats.on_cache_flush tc.tc_sh ~blocks:tc.tc_count.(sclass);
            tc.tc_slots.(sclass) <- [];
            tc.tc_count.(sclass) <- 0;
            List.iter (fun (addr, sb) -> dispose (sb, addr)) stack)
        tc.tc_slots)
    (Atomic.get t.tcaches);
  let take h =
    let items = h.rq_blocks in
    h.rq_blocks <- [];
    h.rq_len <- 0;
    match h.dfl with
    | None -> items
    | Some dfl ->
      (* The quiescent drain uses charge-free peek/poke, so it is as
         cost- and schedule-invisible as the queue grab above. *)
      List.rev_append (Deferred_list.drain_quiescent dfl) items
  in
  (* At quiescence owners are stable, so one pass routes every queued
     block to its final heap. *)
  List.iter dispose (take t.global);
  Array.iter (fun h -> List.iter dispose (take h)) t.heaps;
  Array.iter
    (fun h ->
      let continue_ = ref true in
      while !continue_ && too_empty t h.core do
        match Heap_core.pick_victim ~protect_last:true h.core ~max_fullness:(1.0 -. t.cfg.empty_fraction) with
        | None -> continue_ := false
        | Some victim -> (
          match t.gindex with
          | Some gi ->
            Superblock.set_owner victim 0;
            Global_index.q_publish gi victim;
            Alloc_stats.on_transfer_to_global t.global.sh
          | None ->
            Heap_core.insert t.global.core victim;
            Alloc_stats.on_transfer_to_global t.global.sh)
      done)
    t.heaps

(* The checker a test harness installs on the *workload's* view of the
   platform (the allocator itself keeps the raw platform: it legitimately
   writes headers and free-list links). Unknown addresses are ignored —
   large objects and workload scratch space live outside superblocks. *)
let sanitizer_access_check t =
  match t.san with
  | None -> None
  | Some _ ->
    Some
      (fun ~addr ~len ~write ->
        (* A parked superblock is unregistered, so the block-level checks
           below can't see it — but its pages are decommitted, and any
           touch means a stale pointer outlived the park (or a reuse path
           skipped the recommit). The residency probe is charge-free. *)
        if t.reservoir <> None && t.pf.Platform.page_residency ~addr = Vmem.Decommitted then
          san_report t
            ~what:
              (if write then "write to a decommitted page (parked superblock)"
               else "read of a decommitted page (parked superblock)")
            ~addr None;
        match Sb_registry.lookup t.reg ~addr with
        | None -> ()
        | Some sb ->
          (match Superblock.locate sb addr with
           | Superblock.Header ->
             san_report t
               ~what:
                 (if write then "header canary clobbered (write into a superblock header)"
                  else "read of a superblock header")
               ~addr (Some sb)
           | Superblock.Tail_waste -> san_report t ~what:"access to superblock tail waste" ~addr (Some sb)
           | Superblock.Block { b_start; b_live; _ } ->
             if (not b_live) || quarantined t b_start then
               san_report t
                 ~what:(if write then "use-after-free write to a poisoned block" else "use-after-free read of a poisoned block")
                 ~addr (Some sb)
             else if addr + len > b_start + Superblock.block_size sb then
               san_report t ~what:"buffer overflow past the end of a block" ~addr (Some sb)))

let obs t = t.obs

let size_classes t = t.classes

(* Lock-free reads, like [pp_heaps]: call at quiescence (after the run, or
   from outside any simulated thread — heap locks perform effects). *)
let fullness_profile t =
  let profile h =
    let label = if Heap_core.id h.core = 0 then "global" else Printf.sprintf "heap%d" (Heap_core.id h.core) in
    (label, Heap_core.class_profile h.core)
  in
  Array.append [| profile t.global |] (Array.map profile t.heaps)

let heap_info t id =
  match (id, t.gindex) with
  | 0, Some gi ->
    (* Lock-free mode: heap 0's holdings live in the index, not the core. *)
    let members = Global_index.members gi in
    {
      heap_id = 0;
      u_bytes = Global_index.u_bytes gi;
      a_bytes = members * t.cfg.sb_size;
      superblocks = members;
      empty_superblocks = Global_index.empties gi;
    }
  | _ ->
    let h = heap_by_id t id in
    {
      heap_id = id;
      u_bytes = Heap_core.u h.core;
      a_bytes = Heap_core.a h.core;
      superblocks = Heap_core.superblock_count h.core;
      empty_superblocks = Heap_core.empty_superblock_count h.core;
    }

let cache_counts t =
  List.rev (IntMap.fold (fun tid tc acc -> (tid, Array.copy tc.tc_count) :: acc) (Atomic.get t.tcaches) [])

let remote_queue_lengths t =
  Array.init
    (Array.length t.heaps + 1)
    (fun id ->
      let h = heap_by_id t id in
      h.rq_len
      +
      match h.dfl with
      | None -> 0
      | Some dfl -> Deferred_list.length dfl)

let deferred_lengths t =
  Array.init
    (Array.length t.heaps + 1)
    (fun id ->
      match (heap_by_id t id).dfl with
      | None -> 0
      | Some dfl -> Deferred_list.length dfl)

let large_cache_length t =
  match t.lcache with
  | None -> 0
  | Some c -> Large_cache.length c

let invariant_holds t ~heap_id =
  (* The invariant a free restores: either the heap is not too empty, or
     no transferable superblock remains (every candidate is some class's
     last, protected against ping-pong). *)
  let core = (heap_by_id t heap_id).core in
  (not (too_empty t core))
  || not (Heap_core.has_victim core ~max_fullness:(1.0 -. t.cfg.empty_fraction) ~protect_last:true)

let reservoir_length t =
  match t.reservoir with
  | None -> 0
  | Some res -> Sb_reservoir.length res

let shelf_length t =
  match t.shelf with
  | None -> 0
  | Some shelf -> Lockfree.length shelf

let check t =
  Heap_core.check t.global.core;
  Array.iter (fun h -> Heap_core.check h.core) t.heaps;
  (* Lock-free global index: the heap-0 core must be empty (every global
     superblock lives in the index), the index structurally sound, and
     every member owned by heap 0, registered and resident — membership
     is a transfer, never a release. *)
  (match t.gindex with
   | None -> ()
   | Some gi ->
     if Heap_core.superblock_count t.global.core <> 0 then
       failwith "Hoard.check: heap-0 core holds superblocks in lock-free mode";
     Global_index.check gi;
     Global_index.iter_members gi (fun sb ->
         if Superblock.owner sb <> 0 then failwith "Hoard.check: global member not owned by heap 0";
         let base = Superblock.base sb in
         if Sb_registry.lookup t.reg ~addr:(base + Superblock.header_bytes) = None then
           failwith "Hoard.check: global member not registered";
         if t.pf.Platform.page_residency ~addr:base <> Vmem.Resident then
           failwith "Hoard.check: global member not resident"));
  let s = Alloc_stats.snapshot t.stats in
  let total_u = Array.fold_left (fun acc h -> acc + Heap_core.u h.core) (Heap_core.u t.global.core) t.heaps in
  let total_u =
    total_u
    +
    match t.gindex with
    | Some gi -> Global_index.u_bytes gi
    | None -> 0
  in
  if total_u + Locked_large.live_bytes t.large <> s.live_bytes then
    failwith "Hoard.check: live-bytes accounting mismatch";
  (* Shelf invariants (quiescent walk via charge-free peeks; [Lockfree.iter]
     itself rejects in-flight operations, cycles and duplicate slots — the
     structural signature of a lost ABA tag): every shelved superblock is
     empty, still registered and resident (shelving is a transfer, not a
     release), owned by the global heap, within the cap. *)
  (match t.shelf with
   | None -> ()
   | Some shelf ->
     let n = ref 0 in
     Lockfree.iter shelf (fun sb ->
         incr n;
         if not (Superblock.is_empty sb) then failwith "Hoard.check: shelved superblock has live blocks";
         if Superblock.owner sb <> 0 then failwith "Hoard.check: shelved superblock not owned by heap 0";
         let base = Superblock.base sb in
         if Sb_registry.lookup t.reg ~addr:(base + Superblock.header_bytes) = None then
           failwith "Hoard.check: shelved superblock not registered";
         if t.pf.Platform.page_residency ~addr:base <> Vmem.Resident then
           failwith "Hoard.check: shelved superblock not resident");
     if !n > Lockfree.cap shelf then failwith "Hoard.check: shelf over capacity");
  (* Deferred free lists (quiescent structural walk; [Deferred_list.iter]
     itself rejects cycles, payload-less nodes and length drift): every
     listed block is bitmap-live and custody-marked in its superblock —
     it stays charged to the owning heap until the owner's reclaim,
     exactly like a queued block. *)
  let check_dfl h =
    match h.dfl with
    | None -> ()
    | Some dfl ->
      Deferred_list.iter dfl (fun sb addr ->
          if not (Superblock.is_block_live sb addr) then
            failwith (Printf.sprintf "Hoard.check: deferred block %#x not bitmap-live" addr);
          if not (Superblock.is_block_cached sb addr) then
            failwith (Printf.sprintf "Hoard.check: deferred block %#x without custody mark" addr))
  in
  check_dfl t.global;
  Array.iter check_dfl t.heaps;
  (* Large cache: buckets within capacity, stacks structurally sound,
     every parked region mapped and decommitted. *)
  (match t.lcache with
   | None -> ()
   | Some c -> Large_cache.check c);
  (* Reservoir lifecycle (quiescent, like the heap walks above): parked
     superblocks are empty, unregistered, decommitted, within the cap, and
     the parked-byte accounting matches; the residency bound
     resident <= held + R * S follows and is asserted directly. *)
  match t.reservoir with
  | None ->
    if s.reservoir_bytes <> 0 then failwith "Hoard.check: reservoir bytes without a reservoir"
  | Some res ->
    let n = ref 0 in
    Sb_reservoir.iter res (fun sb ->
        incr n;
        if not (Superblock.is_empty sb) then failwith "Hoard.check: parked superblock has live blocks";
        let base = Superblock.base sb in
        if Sb_registry.lookup t.reg ~addr:(base + Superblock.header_bytes) <> None then
          failwith "Hoard.check: parked superblock still registered";
        if t.pf.Platform.page_residency ~addr:base <> Vmem.Decommitted then
          failwith "Hoard.check: parked superblock not decommitted");
    if !n > Sb_reservoir.cap res then failwith "Hoard.check: reservoir over capacity";
    if s.reservoir_bytes <> !n * t.cfg.sb_size then failwith "Hoard.check: reservoir byte accounting mismatch";
    if s.resident_bytes > s.held_bytes + (Sb_reservoir.cap res * t.cfg.sb_size) then
      failwith
        (Printf.sprintf "Hoard.check: residency bound violated (resident=%dB > held=%dB + R*S=%dB)"
           s.resident_bytes s.held_bytes
           (Sb_reservoir.cap res * t.cfg.sb_size))

let allocator t =
  Alloc_api.make ~pf:t.pf ~name:"hoard" ~owner:t.owner ~large_threshold:(Hoard_config.max_small t.cfg)
    ~malloc:(fun size -> malloc t size)
    ~free:(fun addr -> free t addr)
    ~usable_size:(fun addr -> usable_size t addr)
    ~stats:(fun () -> Alloc_stats.snapshot t.stats)
    ~check:(fun () -> check t)
    ~malloc_batch:(fun n size -> malloc_many t n size)
    ~flush:(fun () -> flush t)
    ~thread_exit:(fun () -> on_thread_exit t)
    ~realloc:(fun ~addr ~size -> realloc t ~addr ~size)
    ()

let factory ?(config = Hoard_config.default) ?obs () =
  {
    Alloc_intf.label = "hoard";
    description = "per-processor heaps + global heap, emptiness invariant (the paper's allocator)";
    instantiate = (fun pf -> allocator (create ~config ?obs pf));
  }

let pp_heaps fmt t =
  (* Aggregate per size class over any superblock iterator. *)
  let pp_classes iter =
    let nclasses = Size_class.count t.classes in
    let count = Array.make nclasses 0 and used = Array.make nclasses 0 and cap = Array.make nclasses 0 in
    iter (fun sb ->
        let c = Superblock.sclass sb in
        count.(c) <- count.(c) + 1;
        used.(c) <- used.(c) + Superblock.used sb;
        cap.(c) <- cap.(c) + Superblock.n_blocks sb);
    for c = 0 to nclasses - 1 do
      if count.(c) > 0 then
        Format.fprintf fmt "class %4dB: %2d sb, %4d/%4d blocks (%.0f%%)@,"
          (Size_class.size_of_class t.classes c)
          count.(c) used.(c) cap.(c)
          (100.0 *. float_of_int used.(c) /. float_of_int (max 1 cap.(c)))
    done;
    Format.fprintf fmt "@]@,"
  in
  let pp_heap h =
    let core = h.core in
    let label = if Heap_core.id core = 0 then "global" else Printf.sprintf "heap %d" (Heap_core.id core) in
    Format.fprintf fmt "@[<v 2>%s: %d superblocks, u=%dB a=%dB (%d empty)@," label
      (Heap_core.superblock_count core) (Heap_core.u core) (Heap_core.a core)
      (Heap_core.empty_superblock_count core);
    pp_classes (Heap_core.iter core)
  in
  Format.fprintf fmt "@[<v>";
  (match t.gindex with
   | Some gi ->
     let members = Global_index.members gi in
     Format.fprintf fmt "@[<v 2>global (lock-free index): %d superblocks, u=%dB a=%dB (%d empty)@,"
       members (Global_index.u_bytes gi)
       (members * t.cfg.sb_size)
       (Global_index.empties gi);
     pp_classes (Global_index.iter_members gi)
   | None -> pp_heap t.global);
  Array.iter pp_heap t.heaps;
  Format.fprintf fmt "@]"
