(** Thread-churn workload family: wave, rolling and flash-crowd thread
    populations over threadtest/larson/server-style allocation bodies.

    Threads are created mid-run with {!Sim.spawn_at} and retire through
    {!Alloc_intf.t.thread_exit}, so these workloads exercise the
    allocator's exit path — front-end cache retirement and
    orphaned-superblock adoption — under concurrency. A shared exchange
    stack routes a fraction of frees through peer threads, building up
    remote-free state on heaps whose owner is about to exit. Runs are
    leak-free: the last thread to retire drains the exchange.

    The blowup envelope for churn runs uses P = {!Sim.peak_live_threads}
    (peak concurrently-live population), not the total thread count. *)

type pattern = Wave | Rolling | Flash

val pattern_name : pattern -> string

val pattern_of_string : string -> pattern option

val patterns : pattern list

type body = Threadtest_body | Larson_body | Server_body

val body_name : body -> string

val body_of_string : string -> body option

val bodies : body list

type params = {
  pattern : pattern;
  body : body;
  generations : int;  (** waves / chain links / flash crowds *)
  spawn_gap : int;  (** cycles between waves, respawns or crowds *)
  iterations : int;  (** body rounds per thread *)
  objects : int;  (** live objects a body keeps in flight *)
  min_size : int;
  max_size : int;
  post_pct : int;  (** % of frees routed through the shared exchange *)
  work_per_op : int;
  seed : int;
}

val default_params : params

val make : ?params:params -> unit -> Workload_intf.t
(** [nthreads] at spawn time is the population parameter: threads per
    wave (Wave), concurrent chains (Rolling), or crowd size (Flash,
    which adds [max 1 (nthreads/2)] long-lived base threads). *)
