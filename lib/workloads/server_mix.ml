(* A front-tier request-serving workload family: each simulated thread is
   a server worker taking requests from an arrival process, and each
   request is an arena-style allocation spike (a burst of mixed-size
   blocks, most freed at request end), a session-state touch on a shared
   striped KV table, and a response block handed to a peer worker that
   frees it remotely — kv_store's striped table and producer_consumer's
   mailbox handoff, composed into one request loop.

   Three arrival processes give the latency-tail experiments their x-axis:

   - [Steady]: closed loop — a worker serves, thinks, serves again.
     Latency is pure service time; the baseline distribution.
   - [Bursty]: open loop — arrivals come in tight bursts separated by
     idle gaps (same mean rate). Queueing delay appears whenever a burst
     outpaces service, so allocator stalls compound into the tail.
   - [Flash]: open loop — steady arrivals with periodic flash crowds
     (a window where the inter-arrival gap divides by [flash_div]).
     The worst-case p999 generator: backlog builds through the crowd and
     drains afterwards.

   Open-loop latency is measured from the *scheduled arrival*, not from
   when the worker got around to the request, so backlog shows up as tail
   latency exactly as it would at a service boundary. *)

type profile = Steady | Bursty | Flash

let profile_name = function
  | Steady -> "steady"
  | Bursty -> "bursty"
  | Flash -> "flash"

let profile_of_string = function
  | "steady" -> Some Steady
  | "bursty" -> Some Bursty
  | "flash" -> Some Flash
  | _ -> None

let profiles = [ Steady; Bursty; Flash ]

type params = {
  profile : profile;
  requests : int;  (** total requests, split evenly across threads *)
  allocs_min : int;  (** arena spike: blocks allocated per request *)
  allocs_max : int;
  size_min : int;
  size_max : int;
  batch : int;  (** blocks per [malloc_batch] fill inside the spike; 0 = singles only *)
  session_keys : int;  (** key space of the shared session table *)
  session_pct : int;  (** % of requests touching session state *)
  retain_pct : int;  (** % of requests retaining one block past the request *)
  retain_cap : int;  (** per-thread retained blocks; the oldest is freed beyond this *)
  response_size : int;  (** response block handed to a peer worker (freed remotely) *)
  work_per_req : int;  (** non-allocator compute per request *)
  think : int;  (** closed-loop think time between requests (cycles) *)
  gap : int;  (** open-loop mean inter-arrival per thread (cycles) *)
  burst : int;  (** bursty: requests per burst *)
  flash_every : int;  (** flash: a crowd starts every this many requests *)
  flash_len : int;  (** flash: requests per crowd *)
  flash_div : int;  (** flash: gap divisor inside a crowd *)
  seed : int;
}

let default_params =
  {
    profile = Steady;
    requests = 4000;
    allocs_min = 4;
    allocs_max = 24;
    size_min = 16;
    size_max = 2048;
    batch = 8;
    session_keys = 600;
    session_pct = 60;
    retain_pct = 25;
    retain_cap = 64;
    response_size = 256;
    work_per_req = 60;
    think = 40;
    (* Mean inter-arrival ~2x the uncontended service time (~2.3k cycles
       under hoard at 4P): a scalable allocator runs below saturation and
       shows a true tail, while a contended one (serial service time is
       >10x at 8P) saturates and its backlog explodes the p99/p999 —
       which is the separation the latency experiments measure. *)
    gap = 4000;
    burst = 16;
    flash_every = 200;
    flash_len = 50;
    flash_div = 8;
    seed = 9000;
  }

(* --- per-request latency recorder ---

   Shared by every worker thread of a run. Safe because simulated threads
   are cooperatively scheduled closures in one host thread; the recorder
   is sim-only, like [Sim.now] itself. *)

let max_samples = 20_000

type recorder = {
  r_lat : Histogram.t;
  mutable r_completed : int;
  mutable r_rev_samples : (int * int * int) list;  (** (arrival, latency, proc), newest first *)
  mutable r_nsamples : int;
  mutable r_sink : (arrival:int -> latency:int -> who:int -> unit) option;
}

let new_recorder () =
  {
    (* Sub-bucketed log-linear layout: the whole point is a trustworthy
       p999, and requests span ~3 decades of cycles. *)
    (* The top edge covers a fully saturated full-scale run (a serial
       allocator's backlog reaches tens of millions of cycles): a clamped
       p999 would hide exactly the blowup the suite exists to show. *)
    r_lat = Histogram.create_log_linear ~lo:16 ~hi:268_435_456 ~sub:8;
    r_completed = 0;
    r_rev_samples = [];
    r_nsamples = 0;
    r_sink = None;
  }

let set_sink r sink = r.r_sink <- Some sink

let request_latencies r = r.r_lat

let completed r = r.r_completed

let samples r = List.rev r.r_rev_samples

let record_request r ~arrival ~latency ~who =
  Histogram.add r.r_lat latency;
  r.r_completed <- r.r_completed + 1;
  if r.r_nsamples < max_samples then begin
    r.r_nsamples <- r.r_nsamples + 1;
    r.r_rev_samples <- (arrival, latency, who) :: r.r_rev_samples
  end;
  match r.r_sink with
  | Some f -> f ~arrival ~latency ~who
  | None -> ()

(* --- the workload --- *)

let make ?(params = default_params) ?(recorder = new_recorder ()) () =
  let p = params in
  if p.flash_div < 1 || p.burst < 1 then invalid_arg "Server_mix.make: bad shape";
  let spawn sim (pf : Platform.t) (a : Alloc_intf.t) ~nthreads =
    let per_thread = max 1 (p.requests / nthreads) in
    let session = Kv_store.create pf a ~buckets:(max 64 p.session_keys) ~stripes:16 in
    (* Peer mailboxes: worker t's responses land in t+1's box and are
       freed there — steady cross-thread (remote) free traffic. *)
    let mailboxes = Array.make nthreads [] in
    let mbox_locks = Array.init nthreads (fun i -> pf.Platform.new_lock (Printf.sprintf "server.mbox%d" i)) in
    let barrier = Sim.new_barrier sim ~parties:nthreads in
    let drain_mailbox t =
      let lock = mbox_locks.(t) in
      lock.Platform.acquire ();
      let got = mailboxes.(t) in
      mailboxes.(t) <- [];
      lock.Platform.release ();
      match got with
      | [] -> ()
      | addrs -> a.Alloc_intf.free_batch (Array.of_list addrs)
    in
    let post_response t addr =
      let peer = (t + 1) mod nthreads in
      let lock = mbox_locks.(peer) in
      lock.Platform.acquire ();
      mailboxes.(peer) <- addr :: mailboxes.(peer);
      lock.Platform.release ()
    in
    for t = 0 to nthreads - 1 do
      ignore
        (Sim.spawn sim (fun () ->
             let rng = Rng.create (p.seed + (7919 * t)) in
             let retained = Queue.create () in
             let serve () =
               (* Incoming remote frees first: a worker starts a request
                  by clearing its completed-response backlog. *)
               drain_mailbox t;
               (* Arena spike: batch fills plus mixed-size singles. *)
               let n = Rng.int_in rng p.allocs_min p.allocs_max in
               let arena = ref [] in
               let filled = ref 0 in
               if p.batch > 1 then
                 while n - !filled >= p.batch do
                   let size = Rng.int_in rng p.size_min p.size_max in
                   let blocks = a.Alloc_intf.malloc_batch p.batch size in
                   pf.Platform.write ~addr:blocks.(0) ~len:(min size 128);
                   Array.iter (fun b -> arena := b :: !arena) blocks;
                   filled := !filled + p.batch
                 done;
               while !filled < n do
                 let size = Rng.int_in rng p.size_min p.size_max in
                 let b = a.Alloc_intf.malloc size in
                 pf.Platform.write ~addr:b ~len:(min size 128);
                 arena := b :: !arena;
                 incr filled
               done;
               (* Session state: read-mostly touches on the shared table. *)
               if Rng.int rng 100 < p.session_pct then begin
                 let key = Rng.int rng p.session_keys in
                 let r = Rng.int rng 100 in
                 if r < 70 then ignore (Kv_store.get session ~key)
                 else if r < 95 then
                   Kv_store.put session ~key ~size:(Rng.int_in rng p.size_min p.size_max)
                 else ignore (Kv_store.delete session ~key)
               end;
               Sim.work p.work_per_req;
               (* Response handoff: freed by the peer, not by us. *)
               let resp = a.Alloc_intf.malloc p.response_size in
               pf.Platform.write ~addr:resp ~len:(min p.response_size 128);
               post_response t resp;
               (* Mixed lifetimes: most arena blocks die with the request,
                  an occasional survivor lives on for ~retain_cap more
                  requests. *)
               (match !arena with
                | survivor :: rest when Rng.int rng 100 < p.retain_pct ->
                  Queue.push survivor retained;
                  if Queue.length retained > p.retain_cap then a.Alloc_intf.free (Queue.pop retained);
                  if rest <> [] then a.Alloc_intf.free_batch (Array.of_list rest)
                | blocks -> if blocks <> [] then a.Alloc_intf.free_batch (Array.of_list blocks))
             in
             (match p.profile with
              | Steady ->
                for _ = 1 to per_thread do
                  let t0 = Sim.now () in
                  serve ();
                  record_request recorder ~arrival:t0 ~latency:(Sim.now () - t0) ~who:(Sim.self_proc ());
                  Sim.work p.think
                done
              | Bursty | Flash ->
                let next_arrival = ref (Sim.now ()) in
                for i = 0 to per_thread - 1 do
                  (* Advance the arrival clock per the process... *)
                  let gap =
                    match p.profile with
                    | Bursty ->
                      if i mod p.burst = p.burst - 1 then
                        (* idle gap between bursts restores the mean rate *)
                        1 + int_of_float (Rng.exponential rng (float_of_int (p.burst * p.gap)))
                      else max 1 (p.gap / 10)
                    | Flash ->
                      let in_crowd = i mod p.flash_every < p.flash_len in
                      let mean = if in_crowd then max 1 (p.gap / p.flash_div) else p.gap in
                      1 + int_of_float (Rng.exponential rng (float_of_int mean))
                    | Steady -> assert false
                  in
                  let arrival = !next_arrival in
                  next_arrival := arrival + gap;
                  (* ...then idle-wait if we are ahead of it. If we are
                     behind (backlogged), serve immediately: the latency
                     below includes the queueing delay. *)
                  let now = Sim.now () in
                  if now < arrival then Sim.work (arrival - now);
                  serve ();
                  record_request recorder ~arrival ~latency:(Sim.now () - arrival) ~who:(Sim.self_proc ())
                done);
             (* Shutdown: peers may still be producing until everyone is
                done, so drain only after the barrier. *)
             Sim.barrier_wait barrier;
             drain_mailbox t;
             while not (Queue.is_empty retained) do
               a.Alloc_intf.free (Queue.pop retained)
             done;
             Sim.barrier_wait barrier;
             if t = 0 then begin
               Kv_store.check session;
               Kv_store.clear session
             end))
    done
  in
  let name = "server-" ^ profile_name p.profile in
  {
    Workload_intf.w_name = name;
    w_describe =
      Printf.sprintf
        "%s request mix: %d reqs, %d-%d blocks/req of %d-%dB (batch %d), %d%% session ops over %d keys, \
         %d%% retain, peer-freed %dB responses"
        (profile_name p.profile) p.requests p.allocs_min p.allocs_max p.size_min p.size_max p.batch
        p.session_pct p.session_keys p.retain_pct p.response_size;
    spawn;
    total_ops =
      (fun ~nthreads ->
        (* Per request: the arena spike (alloc+free each) plus the
           response round trip; session ops add roughly one more. *)
        let per_req = p.allocs_min + p.allocs_max + 3 in
        max 1 (p.requests / nthreads) * nthreads * per_req);
  }
