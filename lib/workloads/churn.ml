(* Thread-churn workload family: the population itself is the stressor.
   Instead of a fixed set of threads running to completion, threads are
   created and retired mid-run in one of three patterns, each over a
   small allocation body in the style of an existing benchmark. Every
   retiring thread calls [thread_exit], so the run continuously exercises
   the allocator's exit path: tcache flush + retire, deferred-list drain,
   and orphaned-superblock adoption. The blowup envelope for these runs
   must be computed with P = peak *live* threads (Sim.peak_live_threads),
   not the total ever created — that is exactly what adoption buys.

   Patterns ([nthreads] is the population parameter):
   - [Wave]: [generations] waves of [nthreads] threads, wave g starting
     at [g * spawn_gap]. Waves overlap when the gap undercuts the body's
     runtime; each thread serves one body and exits.
   - [Rolling]: [nthreads] chains; each thread runs one body, then
     schedules its successor [spawn_gap] cycles after its own exit, for
     [generations] links — a steady population with perpetual turnover.
   - [Flash]: [max 1 (nthreads/2)] long-lived base threads running
     [generations] bodies each, plus a flash crowd of [nthreads]
     one-body threads at every [g * spawn_gap] — populations spike and
     collapse around a steady floor.

   Cross-thread traffic: a shared lock-protected exchange stack. Bodies
   occasionally post a block instead of freeing it and free a couple of
   peers' posts per round, so superblocks accumulate remote frees (and
   remote-queue/deferred-list state) right when their owner exits. The
   last thread to retire drains the exchange, keeping runs leak-free for
   the differential oracle's final live-set comparison. *)

type pattern = Wave | Rolling | Flash

let pattern_name = function
  | Wave -> "wave"
  | Rolling -> "rolling"
  | Flash -> "flash"

let pattern_of_string = function
  | "wave" -> Some Wave
  | "rolling" -> Some Rolling
  | "flash" -> Some Flash
  | _ -> None

let patterns = [ Wave; Rolling; Flash ]

type body = Threadtest_body | Larson_body | Server_body

let body_name = function
  | Threadtest_body -> "threadtest"
  | Larson_body -> "larson"
  | Server_body -> "server"

let body_of_string = function
  | "threadtest" -> Some Threadtest_body
  | "larson" -> Some Larson_body
  | "server" -> Some Server_body
  | _ -> None

let bodies = [ Threadtest_body; Larson_body; Server_body ]

type params = {
  pattern : pattern;
  body : body;
  generations : int;  (** waves / chain links / crowds (see pattern docs) *)
  spawn_gap : int;  (** cycles between waves, respawns or crowds *)
  iterations : int;  (** body rounds per thread *)
  objects : int;  (** live objects a body keeps in flight *)
  min_size : int;
  max_size : int;
  post_pct : int;  (** % of frees routed through the shared exchange *)
  work_per_op : int;
  seed : int;
}

let default_params =
  {
    pattern = Wave;
    body = Threadtest_body;
    generations = 3;
    spawn_gap = 30_000;
    iterations = 4;
    objects = 64;
    min_size = 16;
    max_size = 256;
    post_pct = 10;
    work_per_op = 4;
    seed = 7000;
  }

let make ?(params = default_params) () =
  let p = params in
  if p.generations < 1 || p.iterations < 1 || p.objects < 1 then
    invalid_arg "Churn.make: generations, iterations and objects must be >= 1";
  if p.min_size < 1 || p.max_size < p.min_size then invalid_arg "Churn.make: bad size range";
  let spawn sim (pf : Platform.t) (a : Alloc_intf.t) ~nthreads =
    (* Shared exchange: peers free what a retiring thread could not. *)
    let exchange = ref [] in
    let xlock = pf.Platform.new_lock "churn.exchange" in
    let post addr =
      xlock.Platform.acquire ();
      exchange := addr :: !exchange;
      xlock.Platform.release ()
    in
    let take n =
      xlock.Platform.acquire ();
      let rec split k acc = function
        | rest when k = 0 -> (acc, rest)
        | [] -> (acc, [])
        | x :: tl -> split (k - 1) (x :: acc) tl
      in
      let got, rest = split n [] !exchange in
      exchange := rest;
      xlock.Platform.release ();
      got
    in
    let drain_all () =
      xlock.Platform.acquire ();
      let got = !exchange in
      exchange := [];
      xlock.Platform.release ();
      List.iter a.Alloc_intf.free got
    in
    (* The retirement census: the thread completing the expected total
       drains the exchange so nothing outlives the run. *)
    let base_threads = match p.pattern with Flash -> max 1 (nthreads / 2) | Wave | Rolling -> 0 in
    let total_threads =
      match p.pattern with
      | Wave -> p.generations * nthreads
      | Rolling -> p.generations * nthreads
      | Flash -> base_threads + (p.generations * nthreads)
    in
    let retired = ref 0 in
    let free_or_post rng addr =
      if Rng.int rng 100 < p.post_pct then post addr else a.Alloc_intf.free addr
    in
    let one_round style rng slots =
      (* Peers' posts first: remote frees against heaps we do not own. *)
      List.iter a.Alloc_intf.free (take 2);
      (match style with
       | Threadtest_body ->
         (* Allocate-then-free batch of uniform small objects. *)
         Array.iteri
           (fun i _ ->
             let b = a.Alloc_intf.malloc p.min_size in
             pf.Platform.write ~addr:b ~len:p.min_size;
             slots.(i) <- b;
             Sim.work p.work_per_op)
           slots;
         Array.iteri
           (fun i b ->
             free_or_post rng b;
             slots.(i) <- 0;
             Sim.work p.work_per_op)
           slots
       | Larson_body ->
         (* Random replacement over a standing slot set. *)
         for _ = 1 to Array.length slots do
           let i = Rng.int rng (Array.length slots) in
           if slots.(i) <> 0 then free_or_post rng slots.(i);
           let size = Rng.int_in rng p.min_size p.max_size in
           let b = a.Alloc_intf.malloc size in
           pf.Platform.write ~addr:b ~len:(min size 64);
           slots.(i) <- b;
           Sim.work p.work_per_op
         done
       | Server_body ->
         (* Request spike: mixed sizes, most freed at once, one survivor
            retained in a slot, one response posted for a peer. *)
         let n = max 2 (Array.length slots / 8) in
         let spike =
           Array.init n (fun _ ->
               let size = Rng.int_in rng p.min_size p.max_size in
               let b = a.Alloc_intf.malloc size in
               pf.Platform.write ~addr:b ~len:(min size 64);
               b)
         in
         Sim.work (p.work_per_op * n);
         let i = Rng.int rng (Array.length slots) in
         if slots.(i) <> 0 then a.Alloc_intf.free slots.(i);
         slots.(i) <- spike.(0);
         post spike.(1);
         for j = 2 to n - 1 do
           a.Alloc_intf.free spike.(j)
         done)
    in
    let body ~rounds tseed =
      let rng = Rng.create (p.seed + tseed) in
      let slots = Array.make p.objects 0 in
      (match p.body with
       | Larson_body | Server_body ->
         (* Standing set established up front, like the originals. *)
         Array.iteri
           (fun i _ ->
             let size = Rng.int_in rng p.min_size p.max_size in
             let b = a.Alloc_intf.malloc size in
             pf.Platform.write ~addr:b ~len:(min size 64);
             slots.(i) <- b)
           slots
       | Threadtest_body -> ());
      for _ = 1 to rounds do
        one_round p.body rng slots
      done;
      Array.iteri
        (fun i b ->
          if b <> 0 then begin
            free_or_post rng b;
            slots.(i) <- 0
          end)
        slots;
      (* Retire: the allocator releases this thread's cache and heap
         assignment; the last thread out also empties the exchange. *)
      incr retired;
      if !retired = total_threads then drain_all ();
      a.Alloc_intf.thread_exit ()
    in
    (match p.pattern with
     | Wave ->
       for g = 0 to p.generations - 1 do
         for i = 0 to nthreads - 1 do
           ignore
             (Sim.spawn_at sim ~at:(g * p.spawn_gap) (fun () ->
                  body ~rounds:p.iterations ((g * nthreads) + i)))
         done
       done
     | Rolling ->
       let rec link chain gen () =
         body ~rounds:p.iterations ((gen * nthreads) + chain);
         if gen + 1 < p.generations then
           ignore (Sim.spawn_at sim ~at:(Sim.now () + p.spawn_gap) (link chain (gen + 1)))
       in
       for chain = 0 to nthreads - 1 do
         ignore (Sim.spawn_at sim ~at:0 (link chain 0))
       done
     | Flash ->
       for i = 0 to base_threads - 1 do
         ignore
           (Sim.spawn_at sim ~at:0 (fun () -> body ~rounds:(p.generations * p.iterations) (100_000 + i)))
       done;
       for g = 0 to p.generations - 1 do
         for i = 0 to nthreads - 1 do
           ignore
             (Sim.spawn_at sim ~at:(g * p.spawn_gap) (fun () -> body ~rounds:1 ((g * nthreads) + i)))
         done
       done);
    ()
  in
  let name = Printf.sprintf "churn-%s-%s" (pattern_name p.pattern) (body_name p.body) in
  let ops_per_round =
    match p.body with
    | Threadtest_body -> 2 * p.objects
    | Larson_body -> 2 * p.objects
    | Server_body -> 2 * (max 2 (p.objects / 8))
  in
  {
    Workload_intf.w_name = name;
    w_describe =
      Printf.sprintf
        "%s population churn over a %s body: %d generations every %d cycles, %d rounds x %d objects of \
         %d-%dB per thread, %d%% peer-freed; every thread retires through thread_exit"
        (pattern_name p.pattern) (body_name p.body) p.generations p.spawn_gap p.iterations p.objects
        p.min_size p.max_size p.post_pct;
    spawn;
    total_ops =
      (fun ~nthreads ->
        let per_thread = p.iterations * ops_per_round in
        match p.pattern with
        | Wave | Rolling -> p.generations * nthreads * per_thread
        | Flash ->
          (max 1 (nthreads / 2) * p.generations * p.iterations * ops_per_round)
          + (p.generations * nthreads * ops_per_round));
  }
