(** Front-tier server request mix: the latency-tail workload family.

    Each thread is a server worker; each request is an arena-style
    allocation spike (mixed sizes, mostly freed at request end, a few
    survivors with long lifetimes), a touch on a shared striped session
    table ({!Kv_store}), and a response block freed remotely by a peer
    worker. Three arrival processes — closed-loop steady, open-loop
    bursty, open-loop with periodic flash crowds — turn allocator stalls
    into measurable p99/p999 request latency: open-loop latency is
    measured from the scheduled arrival, so backlog counts.

    Simulated platform only (arrivals and latencies use {!Sim.now}). *)

type profile = Steady | Bursty | Flash

val profile_name : profile -> string

val profile_of_string : string -> profile option

val profiles : profile list
(** All three, in presentation order. *)

type params = {
  profile : profile;
  requests : int;  (** total requests, split evenly across threads *)
  allocs_min : int;
  allocs_max : int;
  size_min : int;
  size_max : int;
  batch : int;  (** blocks per [malloc_batch] fill in the spike; 0/1 = singles *)
  session_keys : int;
  session_pct : int;
  retain_pct : int;
  retain_cap : int;
  response_size : int;
  work_per_req : int;
  think : int;  (** closed-loop think time, cycles *)
  gap : int;  (** open-loop mean inter-arrival per thread, cycles *)
  burst : int;
  flash_every : int;
  flash_len : int;
  flash_div : int;
  seed : int;
}

val default_params : params

(** Collects per-request latencies across every worker of one run:
    a log-linear histogram (trustworthy p999), completion count, and up
    to 20k (arrival, latency, proc) samples for timeline/trace export.
    One recorder per run; sim-only, like the workload. *)
type recorder

val new_recorder : unit -> recorder

val set_sink : recorder -> (arrival:int -> latency:int -> who:int -> unit) -> unit
(** Invoked at every request completion (e.g. to record [Req_done] ring
    events); called from inside simulated threads, must not block. *)

val request_latencies : recorder -> Histogram.t

val completed : recorder -> int

val samples : recorder -> (int * int * int) list
(** [(arrival, latency, proc)] in completion order, capped at 20k. *)

val make : ?params:params -> ?recorder:recorder -> unit -> Workload_intf.t
(** Fresh recorder per run unless one is supplied: re-spawning a workload
    made with an explicit recorder accumulates into the same histograms. *)
