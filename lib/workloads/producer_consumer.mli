(** The blowup adversary from the paper's analysis section.

    Threads pair up: even threads allocate batches of objects, odd threads
    free them, round after round. Live memory is bounded by one batch per
    pair, but an allocator whose freed memory is stranded on the freeing
    thread's heap (pure private heaps) consumes memory proportional to the
    number of rounds — the unbounded blowup the paper proves. Hoard's
    emptiness invariant keeps consumption O(U + P). *)

type params = {
  rounds : int;
  batch : int;  (** objects per round per pair *)
  size : int;
  seed : int;
}

val default_params : params

val make : ?params:params -> unit -> Workload_intf.t

val pipelined : ?params:params -> unit -> Workload_intf.t
(** The double-buffered variant: one barrier per round, the producer
    filling one buffer while the consumer drains the other — so every
    free is remote and concurrent with the owner heap's allocation
    burst. The adversarial schedule for the remote-free path: bounded
    remote queues make the consumer contend for the owner's heap lock
    mid-burst, deferred lists make each free one CAS. *)

val phased : ?params:params -> unit -> Workload_intf.t
(** The O(P) blowup adversary: threads take turns — in each round exactly
    one thread allocates the whole batch and frees it again, so live
    memory never exceeds one batch. Ownership-based private heaps strand
    the freed batch in the allocating thread's heap, consuming P times the
    live memory after one lap; Hoard's emptiness invariant returns the
    superblocks to the global heap for the next thread to reuse. *)
