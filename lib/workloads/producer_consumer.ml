type params = {
  rounds : int;
  batch : int;
  size : int;
  seed : int;
}

let default_params = { rounds = 50; batch = 200; size = 64; seed = 7000 }

let make ?(params = default_params) () =
  let { rounds; batch; size; _ } = params in
  let spawn sim (pf : Platform.t) (a : Alloc_intf.t) ~nthreads =
    let pairs = max 1 (nthreads / 2) in
    let mailboxes = Array.make pairs [||] in
    let barrier = Sim.new_barrier sim ~parties:nthreads in
    for t = 0 to nthreads - 1 do
      let pair = t / 2 in
      let is_producer = t mod 2 = 0 || nthreads = 1 in
      ignore
        (Sim.spawn sim (fun () ->
             for _ = 1 to rounds do
               if is_producer && pair < pairs then begin
                 mailboxes.(pair) <- Array.init batch (fun _ ->
                     let p = a.Alloc_intf.malloc size in
                     pf.Platform.write ~addr:p ~len:(min size 64);
                     p)
               end;
               Sim.barrier_wait barrier;
               if (not is_producer) && pair < pairs then begin
                 Array.iter a.Alloc_intf.free mailboxes.(pair);
                 mailboxes.(pair) <- [||]
               end
               else if nthreads = 1 then begin
                 (* Degenerate single-thread case: free your own batch. *)
                 Array.iter a.Alloc_intf.free mailboxes.(0);
                 mailboxes.(0) <- [||]
               end;
               Sim.barrier_wait barrier
             done))
    done
  in
  {
    Workload_intf.w_name = "producer-consumer";
    w_describe = Printf.sprintf "%d rounds of %d x %dB objects passed producer -> consumer" rounds batch size;
    spawn;
    total_ops = (fun ~nthreads -> 2 * rounds * batch * max 1 (nthreads / 2));
  }

(* Double-buffered hand-off: the producer fills buffer [round land 1]
   while the consumer drains buffer [(round - 1) land 1], with a single
   barrier per round between the two half-steps. Unlike [make] (which
   serialises the pair at two barriers per round), producer mallocs and
   consumer frees overlap in time — every free is remote AND concurrent
   with the owner's allocation burst, the adversarial schedule for the
   remote-free path: bounded queues force the consumer to take the
   owner's heap lock mid-burst, deferred lists make it one CAS. *)
let pipelined ?(params = default_params) () =
  let { rounds; batch; size; _ } = params in
  let spawn sim (pf : Platform.t) (a : Alloc_intf.t) ~nthreads =
    let pairs = max 1 (nthreads / 2) in
    let buffers = Array.init pairs (fun _ -> Array.make 2 [||]) in
    let barrier = Sim.new_barrier sim ~parties:nthreads in
    for t = 0 to nthreads - 1 do
      let pair = t / 2 in
      let is_producer = t mod 2 = 0 || nthreads = 1 in
      ignore
        (Sim.spawn sim (fun () ->
             (* Round r: producer fills slot r&1; consumer drains slot
                (r-1)&1, skipping round 0 (nothing produced yet) — and
                one extra round drains the last buffer. *)
             for round = 0 to rounds do
               if is_producer && pair < pairs && round < rounds then
                 buffers.(pair).(round land 1) <-
                   Array.init batch (fun _ ->
                       let p = a.Alloc_intf.malloc size in
                       pf.Platform.write ~addr:p ~len:(min size 64);
                       p);
               if ((not is_producer) || nthreads = 1) && pair < pairs && round > 0 then begin
                 let slot = (round - 1) land 1 in
                 Array.iter a.Alloc_intf.free buffers.(pair).(slot);
                 buffers.(pair).(slot) <- [||]
               end;
               Sim.barrier_wait barrier
             done))
    done
  in
  {
    Workload_intf.w_name = "producer-consumer-pipelined";
    w_describe =
      Printf.sprintf
        "%d double-buffered rounds of %d x %dB objects: remote frees concurrent with the owner's mallocs"
        rounds batch size;
    spawn;
    total_ops = (fun ~nthreads -> 2 * rounds * batch * max 1 (nthreads / 2));
  }

let phased ?(params = default_params) () =
  let { rounds; batch; size; _ } = params in
  let spawn sim (pf : Platform.t) (a : Alloc_intf.t) ~nthreads =
    let barrier = Sim.new_barrier sim ~parties:nthreads in
    for t = 0 to nthreads - 1 do
      ignore
        (Sim.spawn sim (fun () ->
             for round = 0 to rounds - 1 do
               if round mod nthreads = t then begin
                 let ps =
                   Array.init batch (fun _ ->
                       let p = a.Alloc_intf.malloc size in
                       pf.Platform.write ~addr:p ~len:(min size 64);
                       p)
                 in
                 Array.iter a.Alloc_intf.free ps
               end;
               Sim.barrier_wait barrier
             done))
    done
  in
  {
    Workload_intf.w_name = "phased-blowup";
    w_describe =
      Printf.sprintf "%d rounds, one thread at a time allocating and freeing %d x %dB" rounds batch size;
    spawn;
    total_ops = (fun ~nthreads:_ -> 2 * rounds * batch);
  }
