(** One fully-instrumented Hoard run on the simulator: the allocator is
    built with an {!Obs.t} (event rings + metrics), wrapped in a
    {!Latency_probe}, and the simulator's lock hooks feed the contention
    profiler, a ["locks"] event ring and Perfetto lock-hold spans. This is
    what [hoard_trace profile] and [hoard_bench run --metrics] execute.

    Instrumentation never changes the run: event recording and the lock
    hooks charge no simulated cycles, so an instrumented run's cycle count
    equals the uninstrumented one (asserted by the determinism test). *)

type bundle = {
  b_name : string;
  b_nprocs : int;
  b_cycles : int;
  b_stats : Alloc_stats.snapshot;
  b_obs : Obs.t;
  b_latency : Latency_probe.t;
  b_lock_stats : (string * int * int) list;  (** [Sim.lock_stats] at end of run *)
  b_contention : Contention.entry list;  (** sorted most-contended first *)
  b_perfetto : string;  (** Chrome trace-event JSON, Perfetto-loadable *)
  b_heatmap : string;  (** ASCII fullness heatmap, heap x size class *)
}

val run_spawned :
  ?config:Hoard_config.t ->
  ?obs_config:Obs.config ->
  ?cost:Cost_model.t ->
  ?lock_kind:Sim.lock_kind ->
  name:string ->
  nprocs:int ->
  (Sim.t -> Platform.t -> Alloc_intf.t -> unit) ->
  bundle
(** Builds the instrumented stack, hands the wrapped allocator to the
    spawn callback (which must spawn its threads, e.g. via
    [Trace.replay_sim] or a workload), then runs the simulation to
    completion and collects the bundle. *)

val run_workload :
  ?config:Hoard_config.t ->
  ?obs_config:Obs.config ->
  ?cost:Cost_model.t ->
  ?lock_kind:Sim.lock_kind ->
  ?nthreads:int ->
  Workload_intf.t ->
  nprocs:int ->
  bundle
(** [nthreads] defaults to [nprocs]. *)

val metrics_json : bundle -> string
(** A JSON object [{"run": {...}, "metrics": [...]}]: run header
    (name, nprocs, cycles, event totals) plus the full registry export. *)

val contention_table : ?n:int -> bundle -> Table.t
(** The top-[n] (default 10) most-contended locks as a printable table. *)
