type t = {
  mallocs : Histogram.t;
  frees : Histogram.t;
  batch_mallocs : Histogram.t;
  batch_frees : Histogram.t;
  reallocs : Histogram.t;
}

(* Log-linear sub-bucketing: 8 sub-buckets per power-of-two span keeps
   the relative error of every reported percentile under 12.5%, which is
   what makes the p999 column meaningful (a pure power-of-two layout can
   be off by 2x exactly where the tail lives). *)
let bounds = Histogram.log_linear_bounds ~lo:8 ~hi:4_194_304 ~sub:8

let wrap (a : Alloc_intf.t) =
  let probe =
    {
      mallocs = Histogram.create ~bounds;
      frees = Histogram.create ~bounds;
      batch_mallocs = Histogram.create ~bounds;
      batch_frees = Histogram.create ~bounds;
      reallocs = Histogram.create ~bounds;
    }
  in
  let timed hist f =
    let t0 = Sim.now () in
    let r = f () in
    Histogram.add hist (Sim.now () - t0);
    r
  in
  ( probe,
    {
      a with
      Alloc_intf.malloc = (fun size -> timed probe.mallocs (fun () -> a.Alloc_intf.malloc size));
      free = (fun addr -> timed probe.frees (fun () -> a.Alloc_intf.free addr));
      (* Whole-call durations: a batch fill that has to take the heap lock
         (or transfer a superblock) is exactly where front-end tail spikes
         hide, and splitting it per block would average that spike away. *)
      malloc_batch = (fun n size -> timed probe.batch_mallocs (fun () -> a.Alloc_intf.malloc_batch n size));
      free_batch = (fun addrs -> timed probe.batch_frees (fun () -> a.Alloc_intf.free_batch addrs));
      realloc = (fun ~addr ~size -> timed probe.reallocs (fun () -> a.Alloc_intf.realloc ~addr ~size));
    } )

let malloc_latencies t = t.mallocs

let free_latencies t = t.frees

let batch_malloc_latencies t = t.batch_mallocs

let batch_free_latencies t = t.batch_frees

let realloc_latencies t = t.reallocs

let dist_of hist =
  Metrics.Dist
    {
      Metrics.d_count = Histogram.count hist;
      d_mean = Histogram.mean hist;
      d_p50 = Histogram.percentile hist 0.5;
      d_p95 = Histogram.percentile hist 0.95;
      d_p99 = Histogram.percentile hist 0.99;
      d_p999 = Histogram.percentile hist 0.999;
      d_max = Option.value ~default:0 (Histogram.max_value hist);
    }

let publish t metrics =
  let dist hist () = dist_of hist in
  Metrics.register metrics ~name:"latency.malloc" (dist t.mallocs);
  Metrics.register metrics ~name:"latency.free" (dist t.frees);
  Metrics.register metrics ~name:"latency.batch.malloc" (dist t.batch_mallocs);
  Metrics.register metrics ~name:"latency.batch.free" (dist t.batch_frees);
  Metrics.register metrics ~name:"latency.realloc" (dist t.reallocs)
