type t = { mallocs : Histogram.t; frees : Histogram.t }

let bounds = Histogram.exponential_bounds ~lo:8 ~hi:4_194_304

let wrap (a : Alloc_intf.t) =
  let probe = { mallocs = Histogram.create ~bounds; frees = Histogram.create ~bounds } in
  let timed hist f =
    let t0 = Sim.now () in
    let r = f () in
    Histogram.add hist (Sim.now () - t0);
    r
  in
  ( probe,
    {
      a with
      Alloc_intf.malloc = (fun size -> timed probe.mallocs (fun () -> a.Alloc_intf.malloc size));
      free = (fun addr -> timed probe.frees (fun () -> a.Alloc_intf.free addr));
    } )

let malloc_latencies t = t.mallocs

let free_latencies t = t.frees

let publish t metrics =
  let dist hist () =
    Metrics.Dist
      {
        Metrics.d_count = Histogram.count hist;
        d_mean = Histogram.mean hist;
        d_p50 = Histogram.percentile hist 0.5;
        d_p95 = Histogram.percentile hist 0.95;
        d_p99 = Histogram.percentile hist 0.99;
        d_max = Option.value ~default:0 (Histogram.max_value hist);
      }
  in
  Metrics.register metrics ~name:"latency.malloc" (dist t.mallocs);
  Metrics.register metrics ~name:"latency.free" (dist t.frees)
