type spec = {
  workload : Workload_intf.t;
  allocator : Alloc_intf.factory;
  nprocs : int;
  nthreads : int option;
  cost : Cost_model.t;
  lock_kind : Sim.lock_kind;
  vmem_backend : Vmem_backend.kind;
  topology : (int * int) option;
}

let spec ?nthreads ?(cost = Cost_model.default) ?(lock_kind = Sim.Spin)
    ?(vmem_backend = Vmem_backend.Exact) ?topology workload allocator ~nprocs =
  { workload; allocator; nprocs; nthreads; cost; lock_kind; vmem_backend; topology }

type result = {
  r_workload : string;
  r_allocator : string;
  r_nprocs : int;
  r_nthreads : int;
  r_cycles : int;
  r_ops : int;
  r_stats : Alloc_stats.snapshot;
  r_invalidations : int;
  r_coherence_misses : int;
  r_lock_acquisitions : int;
  r_lock_spins : int;
  r_lock_stats : (string * int * int) list;
  r_vm_peak_mapped : int;
  r_vm_address_space : int;
  r_vm_resident : int;
  r_cross_node_events : int;
  r_cross_socket_events : int;
  r_peak_live_threads : int;
}

let run_with ?fuzz ?wrap_platform ?wrap_allocator ?post
    { workload; allocator; nprocs; nthreads; cost; lock_kind; vmem_backend; topology } =
  let nthreads =
    match nthreads with
    | Some n -> n
    | None -> nprocs
  in
  let sim = Sim.create ~cost ~lock_kind ?fuzz_schedule:fuzz ~vmem_backend ?topology ~nprocs () in
  let pf = Sim.platform sim in
  (* The allocator always sees the raw platform; only the workload's view
     is wrapped (e.g. with the sanitizer's access checker). *)
  let a = allocator.Alloc_intf.instantiate pf in
  let a =
    match wrap_allocator with
    | Some w -> w pf a
    | None -> a
  in
  let wpf =
    match wrap_platform with
    | Some w -> w pf
    | None -> pf
  in
  workload.Workload_intf.spawn sim wpf a ~nthreads;
  Sim.run sim;
  a.Alloc_intf.check ();
  (match post with
   | Some f -> f a
   | None -> ());
  let lock_stats = Sim.lock_stats sim in
  let acqs, spins =
    List.fold_left (fun (acc_a, acc_s) (_, a', s') -> (acc_a + a', acc_s + s')) (0, 0) lock_stats
  in
  let vm = Sim.vmem sim in
  Vmem.check vm;
  {
    r_workload = workload.Workload_intf.w_name;
    r_allocator = allocator.Alloc_intf.label;
    r_nprocs = nprocs;
    r_nthreads = nthreads;
    r_cycles = Sim.total_cycles sim;
    r_ops = workload.Workload_intf.total_ops ~nthreads;
    r_stats = a.Alloc_intf.stats ();
    r_invalidations = Cache.total_invalidations (Sim.cache sim);
    r_coherence_misses = Cache.total_coherence_misses (Sim.cache sim);
    r_lock_acquisitions = acqs;
    r_lock_spins = spins;
    r_lock_stats = lock_stats;
    r_vm_peak_mapped = Vmem.peak_bytes vm;
    r_vm_address_space = Vmem.address_space_bytes vm;
    r_vm_resident = Vmem.resident_bytes vm;
    r_cross_node_events = Cache.total_cross_node_events (Sim.cache sim);
    r_cross_socket_events = Cache.total_cross_socket_events (Sim.cache sim);
    r_peak_live_threads = Sim.peak_live_threads sim;
  }

let run spec = run_with spec

let speedup ~base r = float_of_int base.r_cycles /. float_of_int r.r_cycles

let ops_per_mcycle r = 1_000_000.0 *. float_of_int r.r_ops /. float_of_int r.r_cycles

let fragmentation r = Alloc_stats.fragmentation r.r_stats
