(** Executes one (workload, allocator, machine-size) combination on a fresh
    simulated machine and collects every metric the paper's tables and
    figures are built from. *)

type spec = {
  workload : Workload_intf.t;
  allocator : Alloc_intf.factory;
  nprocs : int;
  nthreads : int option;  (** defaults to [nprocs] *)
  cost : Cost_model.t;
  lock_kind : Sim.lock_kind;  (** defaults to {!Sim.Spin} *)
  vmem_backend : Vmem_backend.kind;
      (** address-space reuse policy of the simulated OS (defaults to
          {!Vmem_backend.Exact}, the seed behaviour) *)
  topology : (int * int) option;
      (** two-tier machine shape [(sockets, cores_per_socket)] handed to
          {!Sim.create}; [None] (the default) builds the flat machine *)
}

val spec :
  ?nthreads:int ->
  ?cost:Cost_model.t ->
  ?lock_kind:Sim.lock_kind ->
  ?vmem_backend:Vmem_backend.kind ->
  ?topology:int * int ->
  Workload_intf.t ->
  Alloc_intf.factory ->
  nprocs:int ->
  spec

type result = {
  r_workload : string;
  r_allocator : string;
  r_nprocs : int;
  r_nthreads : int;
  r_cycles : int;  (** completion time in simulated cycles *)
  r_ops : int;  (** memory operations the workload reports *)
  r_stats : Alloc_stats.snapshot;
  r_invalidations : int;
  r_coherence_misses : int;
  r_lock_acquisitions : int;
  r_lock_spins : int;
  r_lock_stats : (string * int * int) list;
      (** per-lock [(name, acquisitions, spins)], creation order *)
  r_vm_peak_mapped : int;
      (** high-water mark of simultaneously mapped bytes, as the
          simulated OS saw it (independent of allocator bookkeeping) *)
  r_vm_address_space : int;
      (** total address-space span the run consumed — how far the OS had
          to extend the mapping area; the fragmentation experiments'
          reuse metric *)
  r_vm_resident : int;  (** committed (resident) bytes at exit *)
  r_cross_node_events : int;
      (** coherence events that crossed a NUMA node boundary (0 on flat
          machines) *)
  r_cross_socket_events : int;
      (** coherence events that crossed a socket boundary of the
          two-tier topology (0 without one) *)
  r_peak_live_threads : int;
      (** peak concurrently-live threads — the P of the blowup envelope
          under thread churn (equals nthreads for non-churn workloads) *)
}

val run : spec -> result
(** Deterministic: same spec, same result. *)

val run_with :
  ?fuzz:int ->
  ?wrap_platform:(Platform.t -> Platform.t) ->
  ?wrap_allocator:(Platform.t -> Alloc_intf.t -> Alloc_intf.t) ->
  ?post:(Alloc_intf.t -> unit) ->
  spec ->
  result
(** {!run} with checking hooks, used by [lib/check]. [fuzz] seeds
    {!Sim.create}'s schedule fuzzer. [wrap_allocator] interposes on the
    allocator the workload sees (e.g. the differential oracle);
    [wrap_platform] wraps the workload's view of the platform (e.g. the
    sanitizer's access checker) — the allocator itself always runs on the
    raw platform. [post] runs after the post-run [check], for quiescent
    assertions. Still deterministic: same arguments, same result. *)

val speedup : base:result -> result -> float
(** [base.cycles / r.cycles] — the paper's speedup metric, with [base]
    normally the same allocator at one processor. *)

val ops_per_mcycle : result -> float
(** Throughput: memory operations per million simulated cycles (the
    Larson figure's y-axis). *)

val fragmentation : result -> float
(** Peak held / peak live (the paper's Table 4 metric). *)
