(** Memory-consumption timelines.

    Wraps an allocator to sample (simulated time, held bytes, live bytes,
    resident bytes) every few operations, turning the blowup *bound*
    experiments into curves: pure private heaps' held memory climbs
    forever under producer-consumer while Hoard's stays pinned to the
    live line. The [resident] series is the RSS-over-time view: with a
    decommit policy (reservoir parking), resident drops below held, which
    only a curve — not an end-of-run figure — makes visible. *)

type sample = {
  at : int;  (** simulated cycles *)
  held : int;
  live : int;
  resident : int;  (** committed pages, the simulated RSS *)
}

type t

(** Which series {!plot} draws. *)
type metric = Held | Live | Resident

val wrap : ?every:int -> Alloc_intf.t -> t * Alloc_intf.t
(** Samples once per [every] operations (default 32); a batch call counts
    as one operation. Simulated-platform only (timestamps come from
    {!Sim.now}). *)

val samples : t -> sample list
(** In chronological order. *)

val peak_held : t -> int

val peak_resident : t -> int

val metric_value : metric -> sample -> int

val metric_name : metric -> string

val plot : ?metric:metric -> (string * t) list -> title:string -> string
(** Bytes-over-time curves (KiB) for several labelled timelines on one
    chart; [metric] selects the series (default {!Held}). *)
