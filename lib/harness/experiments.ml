type scale = Quick | Full

type output = { tables : Table.t list; plot : string option }

type t = {
  id : string;
  title : string;
  paper_ref : string;
  describe : string;
  run : scale -> procs:int list option -> output;
}

let tables_only tables = { tables; plot = None }

let default_procs = function
  | Quick -> [ 1; 2; 4; 8 ]
  | Full -> [ 1; 2; 4; 8; 12; 14 ]

(* The paper's comparison set: Hoard vs Ptmalloc (private-ownership) vs
   MTmalloc (concurrent-single) vs Solaris malloc (serial). *)
let figure_allocators () =
  [ Serial_alloc.factory (); Concurrent_single.factory (); Private_ownership.factory (); Hoard.factory () ]

let all_allocators () = figure_allocators () @ [ Pure_private.factory (); Private_threshold.factory () ]

(* --- scaled workload constructors --- *)

let threadtest = function
  | Quick -> Threadtest.make ~params:{ Threadtest.default_params with Threadtest.iterations = 5; objects = 2000 } ()
  | Full -> Threadtest.make ~params:{ Threadtest.default_params with Threadtest.iterations = 16; objects = 8000 } ()

let shbench = function
  | Quick -> Shbench.make ~params:{ Shbench.default_params with Shbench.ops = 6000; slots_per_thread = 250 } ()
  | Full -> Shbench.make ~params:{ Shbench.default_params with Shbench.ops = 48_000; slots_per_thread = 500 } ()

let larson = function
  | Quick ->
    Larson.make
      ~params:{ Larson.default_params with Larson.rounds = 150; handoffs = 3; objects_per_thread = 800 } ()
  | Full ->
    Larson.make
      ~params:{ Larson.default_params with Larson.rounds = 600; handoffs = 6; objects_per_thread = 2000 } ()

let false_params = function
  | Quick -> { False_sharing.default_params with False_sharing.loops = 400; writes_per_object = 60 }
  | Full -> { False_sharing.default_params with False_sharing.loops = 1600; writes_per_object = 120 }

let active_false scale = False_sharing.active ~params:(false_params scale) ()

let passive_false scale = False_sharing.passive ~params:(false_params scale) ()

let bem = function
  | Quick ->
    Bem_like.make
      ~params:{ Bem_like.default_params with Bem_like.panels = 240; assemble_rows = 96; solve_iters = 6 } ()
  | Full ->
    Bem_like.make
      ~params:{ Bem_like.default_params with Bem_like.panels = 1200; assemble_rows = 480; solve_iters = 16 } ()

let barnes = function
  | Quick -> Barnes_hut.make ~params:{ Barnes_hut.default_params with Barnes_hut.nbodies = 96; steps = 2 } ()
  | Full -> Barnes_hut.make ~params:{ Barnes_hut.default_params with Barnes_hut.nbodies = 320; steps = 4 } ()

let churn ?(pattern = Churn.Wave) ?(body = Churn.Threadtest_body) scale =
  let base = { Churn.default_params with Churn.pattern; body } in
  match scale with
  | Quick -> Churn.make ~params:{ base with Churn.generations = 2; iterations = 2; objects = 32 } ()
  | Full -> Churn.make ~params:{ base with Churn.generations = 4; iterations = 4; objects = 64 } ()

let producer_consumer ~rounds ~batch =
  Producer_consumer.make ~params:{ Producer_consumer.default_params with Producer_consumer.rounds; batch } ()

(* Batch sized so that U (one live batch) dwarfs the K*S slack Hoard's
   heaps legitimately retain: the O(P) signal is then unmistakable. *)
let phased_blowup ~rounds =
  Producer_consumer.phased
    ~params:{ Producer_consumer.default_params with Producer_consumer.rounds; batch = 3000 } ()

let prodcons_rounds = function
  | Quick -> [ 5; 10; 20; 40 ]
  | Full -> [ 10; 20; 40; 80 ]

let prodcons_pipelined scale =
  Producer_consumer.pipelined
    ~params:
      {
        Producer_consumer.default_params with
        Producer_consumer.rounds = List.nth (prodcons_rounds scale) 2;
        batch = 200;
      }
    ()

(* --- helpers --- *)

let run_one workload alloc ~nprocs = Runner.run (Runner.spec workload alloc ~nprocs)

let kib bytes = Printf.sprintf "%d KiB" ((bytes + 1023) / 1024)

(* Speedup figure: rows = processor counts, columns = allocators, cells =
   T(1)/T(P) per allocator. A companion table reports raw cycles. *)
let speedup_figure ~id ~title ~paper_ref ~describe ~workload_of_scale =
  let run scale ~procs =
    let procs =
      match procs with
      | Some ps -> if List.mem 1 ps then ps else 1 :: ps
      | None -> default_procs scale
    in
    let allocs = figure_allocators () in
    let results =
      List.map
        (fun alloc -> List.map (fun p -> run_one (workload_of_scale scale) alloc ~nprocs:p) procs)
        allocs
    in
    let columns = ("P", Table.Right) :: List.map (fun a -> (a.Alloc_intf.label, Table.Right)) allocs in
    let speedups = Table.create ~title:(title ^ " — speedup T(1)/T(P)") ~columns in
    let cycles = Table.create ~title:(title ^ " — simulated cycles") ~columns in
    List.iteri
      (fun pi p ->
        let srow =
          List.map
            (fun per_alloc ->
              let base = List.hd per_alloc in
              Table.cell_float (Runner.speedup ~base (List.nth per_alloc pi)))
            results
        in
        let crow = List.map (fun per_alloc -> string_of_int (List.nth per_alloc pi).Runner.r_cycles) results in
        Table.add_row speedups (string_of_int p :: srow);
        Table.add_row cycles (string_of_int p :: crow))
      procs;
    let plot =
      Ascii_plot.render ~title:(title ^ " — speedup") ~x_label:"processors" ~y_label:"speedup"
        ~series:
          (List.map2
             (fun alloc per_alloc ->
               ( alloc.Alloc_intf.label,
                 List.map2
                   (fun p r -> (float_of_int p, Runner.speedup ~base:(List.hd per_alloc) r))
                   procs per_alloc ))
             allocs results)
        ()
    in
    { tables = [ speedups; cycles ]; plot = Some plot }
  in
  { id; title; paper_ref; describe; run }

(* --- Table 1: allocator taxonomy, measured --- *)

let taxonomy =
  let run scale ~procs =
    ignore procs;
    let p_scal =
      match scale with
      | Quick -> 4
      | Full -> 8
    in
    let tbl =
      Table.create ~title:"Allocator taxonomy (measured)"
        ~columns:
          [
            ("allocator", Table.Left);
            ("uniproc slowdown", Table.Right);
            ("fast", Table.Left);
            (Printf.sprintf "speedup@%dP" p_scal, Table.Right);
            ("scalable", Table.Left);
            ("inval/op (active-false)", Table.Right);
            ("avoids false sharing", Table.Left);
            ("pc A/U", Table.Right);
            ("pc growth", Table.Right);
            (Printf.sprintf "phased A/U@%dP" p_scal, Table.Right);
            ("blowup class", Table.Left);
          ]
    in
    let serial_base = run_one (threadtest scale) (Serial_alloc.factory ()) ~nprocs:1 in
    List.iter
      (fun alloc ->
        (* Fast: uniprocessor threadtest time relative to the serial allocator. *)
        let uni = run_one (threadtest scale) alloc ~nprocs:1 in
        let slowdown = float_of_int uni.Runner.r_cycles /. float_of_int serial_base.Runner.r_cycles in
        (* Scalable: threadtest speedup at p_scal processors. *)
        let at_p = run_one (threadtest scale) alloc ~nprocs:p_scal in
        let sp = Runner.speedup ~base:uni at_p in
        (* False sharing: invalidations per op on active-false. *)
        let af = run_one (active_false scale) alloc ~nprocs:4 in
        let inval_per_op = float_of_int af.Runner.r_invalidations /. float_of_int af.Runner.r_ops in
        (* Blowup: producer-consumer held/live ratio, and its growth when
           the round count doubles (growth ~2 means unbounded-in-time). *)
        let rs = prodcons_rounds scale in
        let r_lo = List.nth rs (List.length rs - 2) and r_hi = List.nth rs (List.length rs - 1) in
        let pc r = run_one (producer_consumer ~rounds:r ~batch:200) alloc ~nprocs:2 in
        let lo = pc r_lo and hi = pc r_hi in
        let blowup r = float_of_int r.Runner.r_stats.Alloc_stats.peak_held_bytes
                       /. float_of_int r.Runner.r_stats.Alloc_stats.peak_live_bytes in
        let growth = blowup hi /. blowup lo in
        (* O(P) signal: one thread at a time holds U live; allocators that
           strand freed memory per heap peak near P * U. *)
        let phased = run_one (phased_blowup ~rounds:(2 * p_scal)) alloc ~nprocs:p_scal in
        let phased_ratio = blowup phased in
        let cls =
          if growth > 1.5 then "unbounded"
          else if phased_ratio >= 0.7 *. float_of_int p_scal then "O(P)"
          else "O(1)"
        in
        Table.add_row tbl
          [
            alloc.Alloc_intf.label;
            Table.cell_ratio slowdown;
            (if slowdown < 1.5 then "yes" else "no");
            Table.cell_ratio sp;
            (if sp > float_of_int p_scal /. 2.0 then "yes" else "no");
            Table.cell_float inval_per_op;
            (if inval_per_op < 1.0 then "yes" else "no");
            Table.cell_float (blowup hi);
            Table.cell_float growth;
            Table.cell_float phased_ratio;
            cls;
          ])
      (all_allocators ());
    tables_only [ tbl ]
  in
  {
    id = "table1";
    title = "Table 1: allocator taxonomy";
    paper_ref = "Table 1";
    describe = "fast / scalable / false-sharing / blowup classification, measured on this substrate";
    run;
  }

(* --- Table 2: the benchmark suite --- *)

let suite scale =
  [ threadtest scale; shbench scale; larson scale; active_false scale; passive_false scale; bem scale; barnes scale ]

(* Table 4 covers the application benchmarks: the synthetic false-sharing
   micro-benchmarks keep a few bytes live, making the held/live ratio
   meaningless (the paper's Table 4 also lists only the applications). *)
let frag_suite scale = [ threadtest scale; shbench scale; larson scale; bem scale; barnes scale ]

let benchmarks_table =
  let run scale ~procs =
    ignore procs;
    let tbl =
      Table.create ~title:"Benchmark suite" ~columns:[ ("benchmark", Table.Left); ("parameters", Table.Left) ]
    in
    List.iter
      (fun w -> Table.add_row tbl [ w.Workload_intf.w_name; w.Workload_intf.w_describe ])
      (suite scale);
    tables_only [ tbl ]
  in
  {
    id = "table2";
    title = "Table 2: benchmark suite";
    paper_ref = "Table 2";
    describe = "the benchmarks and their run parameters at this scale";
    run;
  }

(* --- Table 3: program statistics --- *)

let program_stats =
  let run scale ~procs =
    ignore procs;
    let tbl =
      Table.create ~title:"Program memory statistics (1 processor, hoard)"
        ~columns:
          [
            ("benchmark", Table.Left);
            ("mallocs", Table.Right);
            ("total requested", Table.Right);
            ("avg size (B)", Table.Right);
            ("peak live", Table.Right);
            ("ops", Table.Right);
          ]
    in
    List.iter
      (fun w ->
        let r = run_one w (Hoard.factory ()) ~nprocs:1 in
        let s = r.Runner.r_stats in
        Table.add_row tbl
          [
            w.Workload_intf.w_name;
            string_of_int s.Alloc_stats.mallocs;
            kib s.Alloc_stats.bytes_requested;
            Table.cell_float (float_of_int s.Alloc_stats.bytes_requested /. float_of_int (max 1 s.Alloc_stats.mallocs));
            kib s.Alloc_stats.peak_live_bytes;
            string_of_int r.Runner.r_ops;
          ])
      (suite scale);
    tables_only [ tbl ]
  in
  {
    id = "table3";
    title = "Table 3: program statistics";
    paper_ref = "Table 3";
    describe = "objects allocated, bytes requested, average size and peak live memory per benchmark";
    run;
  }

(* --- Table 4: fragmentation --- *)

let fragmentation =
  let run scale ~procs =
    let p =
      match procs with
      | Some (p :: _) -> p
      | _ -> ( match scale with Quick -> 4 | Full -> 8)
    in
    let tbl =
      Table.create
        ~title:(Printf.sprintf "Hoard fragmentation (A_peak / U_peak) at %d processors" p)
        ~columns:
          [
            ("benchmark", Table.Left);
            ("peak held", Table.Right);
            ("peak live", Table.Right);
            ("fragmentation", Table.Right);
          ]
    in
    List.iter
      (fun w ->
        let r = run_one w (Hoard.factory ()) ~nprocs:p in
        let s = r.Runner.r_stats in
        Table.add_row tbl
          [
            w.Workload_intf.w_name;
            kib s.Alloc_stats.peak_held_bytes;
            kib s.Alloc_stats.peak_live_bytes;
            Table.cell_float (Runner.fragmentation r);
          ])
      (frag_suite scale);
    tables_only [ tbl ]
  in
  {
    id = "table4";
    title = "Table 4: fragmentation";
    paper_ref = "Table 4";
    describe = "Hoard's worst-case memory held over worst-case memory live, per benchmark";
    run;
  }

(* --- Table 5: uniprocessor overhead --- *)

let uniproc_overhead =
  let run scale ~procs =
    ignore procs;
    let allocs = all_allocators () in
    let tbl =
      Table.create ~title:"Uniprocessor runtime relative to the serial allocator"
        ~columns:
          (("benchmark", Table.Left) :: List.map (fun a -> (a.Alloc_intf.label, Table.Right)) allocs)
    in
    List.iter
      (fun w ->
        let base = run_one w (Serial_alloc.factory ()) ~nprocs:1 in
        let row =
          List.map
            (fun alloc ->
              let r = run_one w alloc ~nprocs:1 in
              Table.cell_ratio (float_of_int r.Runner.r_cycles /. float_of_int base.Runner.r_cycles))
            allocs
        in
        Table.add_row tbl (w.Workload_intf.w_name :: row))
      (suite scale);
    tables_only [ tbl ]
  in
  {
    id = "table5";
    title = "Table 5: uniprocessor overhead";
    paper_ref = "Table 5";
    describe = "single-processor runtime of every allocator normalised to the serial allocator";
    run;
  }

(* --- Larson throughput figure --- *)

let larson_figure =
  let run scale ~procs =
    let procs =
      match procs with
      | Some ps -> ps
      | None -> default_procs scale
    in
    let allocs = figure_allocators () in
    let columns = ("P", Table.Right) :: List.map (fun a -> (a.Alloc_intf.label, Table.Right)) allocs in
    let tbl = Table.create ~title:"Larson — throughput (memory ops per Mcycle)" ~columns in
    let results =
      List.map (fun alloc -> List.map (fun p -> Runner.ops_per_mcycle (run_one (larson scale) alloc ~nprocs:p)) procs) allocs
    in
    List.iteri
      (fun pi p ->
        let row = List.map (fun per_alloc -> Table.cell_float (List.nth per_alloc pi)) results in
        Table.add_row tbl (string_of_int p :: row))
      procs;
    let plot =
      Ascii_plot.render ~title:"Larson throughput" ~x_label:"processors" ~y_label:"ops/Mcycle"
        ~series:
          (List.map2
             (fun alloc per_alloc ->
               (alloc.Alloc_intf.label, List.map2 (fun p v -> (float_of_int p, v)) procs per_alloc))
             allocs results)
        ()
    in
    { tables = [ tbl ]; plot = Some plot }
  in
  {
    id = "fig_larson";
    title = "Figure: Larson server benchmark";
    paper_ref = "Larson throughput figure";
    describe = "server-style object bleeding; throughput must scale with processors for Hoard";
    run;
  }

(* --- blowup experiment --- *)

let blowup_exp =
  let run scale ~procs =
    ignore procs;
    let allocs =
      [ Hoard.factory (); Private_ownership.factory (); Pure_private.factory (); Serial_alloc.factory () ]
    in
    let columns =
      ("rounds", Table.Right)
      :: List.concat_map
           (fun a -> [ (a.Alloc_intf.label ^ " A", Table.Right); (a.Alloc_intf.label ^ " A/U", Table.Right) ])
           allocs
    in
    let tbl = Table.create ~title:"Blowup: producer-consumer, peak held memory vs rounds (P=2)" ~columns in
    List.iter
      (fun rounds ->
        let row =
          List.concat_map
            (fun alloc ->
              let r = run_one (producer_consumer ~rounds ~batch:200) alloc ~nprocs:2 in
              let s = r.Runner.r_stats in
              [
                kib s.Alloc_stats.peak_held_bytes;
                Table.cell_float
                  (float_of_int s.Alloc_stats.peak_held_bytes /. float_of_int s.Alloc_stats.peak_live_bytes);
              ])
            allocs
        in
        Table.add_row tbl (string_of_int rounds :: row))
      (prodcons_rounds scale);
    let phased_tbl =
      Table.create ~title:"Blowup: phased adversary, peak held / peak live vs processors"
        ~columns:(("P", Table.Right) :: List.map (fun a -> (a.Alloc_intf.label, Table.Right)) allocs)
    in
    let procs =
      match scale with
      | Quick -> [ 2; 4 ]
      | Full -> [ 2; 4; 8; 14 ]
    in
    List.iter
      (fun p ->
        let row =
          List.map
            (fun alloc ->
              let r = run_one (phased_blowup ~rounds:(2 * p)) alloc ~nprocs:p in
              let s = r.Runner.r_stats in
              Table.cell_float
                (float_of_int s.Alloc_stats.peak_held_bytes /. float_of_int s.Alloc_stats.peak_live_bytes))
            allocs
        in
        Table.add_row phased_tbl (string_of_int p :: row))
      procs;
    tables_only [ tbl; phased_tbl ]
  in
  {
    id = "exp_blowup";
    title = "Blowup bound validation";
    paper_ref = "Section 3 analysis (blowup definitions and bounds)";
    describe = "peak held memory under the producer-consumer adversary: O(1) for Hoard, unbounded for pure-private";
    run;
  }

(* --- false-sharing counts --- *)

let falseshare_exp =
  let run scale ~procs =
    let p =
      match procs with
      | Some (p :: _) -> p
      | _ -> ( match scale with Quick -> 4 | Full -> 8)
    in
    let tbl =
      Table.create
        ~title:(Printf.sprintf "False sharing: cache invalidations per memory op at %d processors" p)
        ~columns:
          [
            ("allocator", Table.Left);
            ("active-false inval/op", Table.Right);
            ("passive-false inval/op", Table.Right);
          ]
    in
    List.iter
      (fun alloc ->
        let af = run_one (active_false scale) alloc ~nprocs:p in
        let pf = run_one (passive_false scale) alloc ~nprocs:p in
        let per_op r = float_of_int r.Runner.r_invalidations /. float_of_int r.Runner.r_ops in
        Table.add_row tbl [ alloc.Alloc_intf.label; Table.cell_float (per_op af); Table.cell_float (per_op pf) ])
      (all_allocators ());
    tables_only [ tbl ]
  in
  {
    id = "exp_falseshare";
    title = "False-sharing measurement";
    paper_ref = "Section on allocator-induced false sharing";
    describe = "directly counted invalidations for the active/passive false-sharing benchmarks";
    run;
  }

(* --- ablations --- *)

let hoard_with f = Hoard.factory ~config:f ()

let ablation ~id ~title ~describe ~values ~label =
  let run scale ~procs =
    let p =
      match procs with
      | Some (p :: _) -> p
      | _ -> ( match scale with Quick -> 4 | Full -> 8)
    in
    let tbl =
      Table.create
        ~title:(Printf.sprintf "%s (threadtest & shbench @ %dP, phased blowup @ %dP)" title p p)
        ~columns:
          [
            (label, Table.Right);
            ("threadtest cycles", Table.Right);
            ("shbench cycles", Table.Right);
            ("shbench frag", Table.Right);
            ("shbench transfers", Table.Right);
            ("phased A/U", Table.Right);
          ]
    in
    List.iter
      (fun (name, cfg) ->
        let tt = run_one (threadtest scale) (hoard_with cfg) ~nprocs:p in
        let sh = run_one (shbench scale) (hoard_with cfg) ~nprocs:p in
        let ph = run_one (phased_blowup ~rounds:(2 * p)) (hoard_with cfg) ~nprocs:p in
        let s = ph.Runner.r_stats in
        Table.add_row tbl
          [
            name;
            string_of_int tt.Runner.r_cycles;
            string_of_int sh.Runner.r_cycles;
            Table.cell_float (Runner.fragmentation sh);
            string_of_int
              (sh.Runner.r_stats.Alloc_stats.sb_to_global + sh.Runner.r_stats.Alloc_stats.sb_from_global);
            Table.cell_float
              (float_of_int s.Alloc_stats.peak_held_bytes /. float_of_int s.Alloc_stats.peak_live_bytes);
          ])
      values;
    tables_only [ tbl ]
  in
  { id; title; paper_ref = "design ablation"; describe; run }

let abl_f =
  let cfg f = Hoard_config.make ~empty_fraction:f () in
  ablation ~id:"abl_f" ~title:"Ablation: emptiness fraction f"
    ~describe:"sensitivity of throughput, fragmentation and blowup to the emptiness fraction"
    ~values:[ ("f=1/8", cfg 0.125); ("f=1/4", cfg 0.25); ("f=1/2", cfg 0.5) ]
    ~label:"f"

let abl_k =
  let cfg k = Hoard_config.make ~slack:k () in
  ablation ~id:"abl_k" ~title:"Ablation: slack K"
    ~describe:"sensitivity to the number of superblocks a heap may hold beyond the emptiness fraction"
    ~values:[ ("K=0", cfg 0); ("K=1", cfg 1); ("K=4", cfg 4); ("K=16", cfg 16) ]
    ~label:"K"

let abl_sbsize =
  let cfg s = Hoard_config.make ~sb_size:s () in
  ablation ~id:"abl_sbsize" ~title:"Ablation: superblock size S"
    ~describe:"trade-off between transfer granularity and fragmentation"
    ~values:[ ("S=4K", cfg 4096); ("S=8K", cfg 8192); ("S=16K", cfg 16384); ("S=64K", cfg 65536) ]
    ~label:"S"

(* --- NUMA / two-tier topology --- *)

let numa_exp =
  let run scale ~procs =
    let p =
      match procs with
      | Some (p :: _) -> p
      | _ -> ( match scale with Quick -> 4 | Full -> 8)
    in
    (* The shared two-tier helper needs sockets * cores_per_socket =
       nprocs: round an odd request up to the next even machine. *)
    let p = if p mod 2 = 0 then p else p + 1 in
    let allocs = figure_allocators () in
    let tbl =
      Table.create
        ~title:(Printf.sprintf "NUMA: threadtest cycles at %d processors, flat vs 2-socket topology" p)
        ~columns:
          [
            ("allocator", Table.Left);
            ("flat cycles", Table.Right);
            ("2-socket cycles", Table.Right);
            ("socket penalty", Table.Right);
            ("cross-node events", Table.Right);
            ("cross-socket events", Table.Right);
          ]
    in
    List.iter
      (fun alloc ->
        let flat = Runner.run (Runner.spec (threadtest scale) alloc ~nprocs:p) in
        let numa = Runner.run (Runner.spec ~topology:(2, p / 2) (threadtest scale) alloc ~nprocs:p) in
        Table.add_row tbl
          [
            alloc.Alloc_intf.label;
            string_of_int flat.Runner.r_cycles;
            string_of_int numa.Runner.r_cycles;
            Table.cell_ratio (float_of_int numa.Runner.r_cycles /. float_of_int flat.Runner.r_cycles);
            string_of_int numa.Runner.r_cross_node_events;
            string_of_int numa.Runner.r_cross_socket_events;
          ])
      allocs;
    tables_only [ tbl ]
  in
  {
    id = "exp_numa";
    title = "NUMA two-tier topology";
    paper_ref = "extension (the paper targets flat SMPs)";
    describe =
      "flat vs 2-socket machine via the shared topology helper: socket-crossing coherence pays \
       cross_node + cross_socket, so allocators that localise memory keep their speed";
    run;
  }

(* --- exp_scale: the 64-128P two-tier scale-out matrix --- *)

let scale_procs = function
  | Quick -> [ 8; 64 ]
  | Full -> [ 8; 16; 32; 64; 128 ]

(* Topologies applicable at P processors: flat plus every socket count
   that divides the machine evenly. *)
let scale_topologies p =
  ("flat", None)
  :: List.filter_map
       (fun sockets ->
         if p mod sockets = 0 && p / sockets >= 1 && sockets < p then
           Some (Printf.sprintf "%d-socket" sockets, Some (sockets, p / sockets))
         else None)
       [ 2; 4 ]

(* The O(U + P) envelope with P = peak LIVE threads: 2U/(1-f) for the
   superblock worst case, plus what the configuration legitimately
   retains per heap and in flight (slack superblocks per heap, the
   release threshold, front-end caches and queues, one superblock per
   size class per heap for protect_last). Mirrors Check_run's oracle
   slop; churn workloads must fit it because exiting threads' heaps are
   adopted rather than stranded. *)
let scale_envelope (cfg : Hoard_config.t) ~nprocs ~peak_live_threads ~peak_live_bytes =
  let nheaps =
    match cfg.Hoard_config.nheaps with
    | Some n -> n
    | None -> nprocs
  in
  let heaps = min nheaps (peak_live_threads + 1) + 1 in
  let classes = 16 in
  let per_heap = (cfg.Hoard_config.slack + classes) * cfg.Hoard_config.sb_size in
  let fe_blocks = cfg.Hoard_config.front_end * classes * peak_live_threads in
  let slop =
    (heaps * per_heap)
    + (cfg.Hoard_config.release_threshold * cfg.Hoard_config.sb_size)
    + (fe_blocks * cfg.Hoard_config.sb_size / 8)
    + (4 * cfg.Hoard_config.sb_size)
  in
  int_of_float (2.0 *. float_of_int peak_live_bytes /. (1.0 -. cfg.Hoard_config.empty_fraction)) + slop

let scale_exp =
  let run scale ~procs =
    let procs =
      match procs with
      | Some ps -> ps
      | None -> scale_procs scale
    in
    let workloads =
      [
        ("threadtest", fun () -> threadtest scale);
        ("churn-wave", fun () -> churn ~pattern:Churn.Wave scale);
        ("churn-rolling", fun () -> churn ~pattern:Churn.Rolling scale);
      ]
    in
    (* Same config twice over, except for the global heap's structure:
       the lockfree rows isolate the index and must show ZERO heap-0
       lock acquisitions (enforced) — the tentpole's acceptance bar at
       scale, where heap-0 is the natural serialization point. *)
    let modes =
      [
        ("locked", Hoard_config.default);
        ("lockfree", { Hoard_config.default with Hoard_config.global = Hoard_config.Lockfree });
      ]
    in
    let tbl =
      Table.create ~title:"Scale-out matrix: hoard across P x topology (two-tier machines)"
        ~columns:
          [
            ("workload", Table.Left);
            ("P", Table.Right);
            ("topology", Table.Left);
            ("global", Table.Left);
            ("cycles", Table.Right);
            ("cross-node", Table.Right);
            ("cross-socket", Table.Right);
            ("peak live thr", Table.Right);
            ("heap0 locks", Table.Right);
            ("peak held", Table.Right);
            ("envelope", Table.Right);
            ("held/env", Table.Right);
          ]
    in
    List.iteri
      (fun wi (wname, mk) ->
        if wi > 0 then Table.add_separator tbl;
        List.iter
          (fun p ->
            List.iter
              (fun (tname, topo) ->
                List.iter
                  (fun (mname, cfg) ->
                    let r =
                      Runner.run
                        (Runner.spec ?topology:topo (mk ()) (Hoard.factory ~config:cfg ()) ~nprocs:p)
                    in
                    let s = r.Runner.r_stats in
                    let heap0_locks =
                      List.fold_left
                        (fun acc (lname, n, _) -> if lname = "hoard.heap0" then acc + n else acc)
                        0 r.Runner.r_lock_stats
                    in
                    if mname = "lockfree" && heap0_locks > 0 then
                      failwith
                        (Printf.sprintf
                           "exp_scale: lock-free global heap took %d heap-0 lock acquisitions on \
                            %s at %dP (%s)"
                           heap0_locks wname p tname);
                    let env =
                      scale_envelope cfg ~nprocs:p ~peak_live_threads:r.Runner.r_peak_live_threads
                        ~peak_live_bytes:s.Alloc_stats.peak_live_bytes
                    in
                    let ratio =
                      float_of_int s.Alloc_stats.peak_held_bytes /. float_of_int (max 1 env)
                    in
                    if s.Alloc_stats.peak_held_bytes > env then
                      failwith
                        (Printf.sprintf
                           "exp_scale: blowup envelope violated on %s at %dP (%s, %s): peak held \
                            %d > %d (U=%d, P_live=%d)"
                           wname p tname mname s.Alloc_stats.peak_held_bytes env
                           s.Alloc_stats.peak_live_bytes r.Runner.r_peak_live_threads);
                    Table.add_row tbl
                      [
                        wname;
                        string_of_int p;
                        tname;
                        mname;
                        string_of_int r.Runner.r_cycles;
                        string_of_int r.Runner.r_cross_node_events;
                        string_of_int r.Runner.r_cross_socket_events;
                        string_of_int r.Runner.r_peak_live_threads;
                        string_of_int heap0_locks;
                        kib s.Alloc_stats.peak_held_bytes;
                        kib env;
                        Table.cell_float ratio;
                      ])
                  modes)
              (scale_topologies p))
          procs)
      workloads;
    tables_only [ tbl ]
  in
  {
    id = "exp_scale";
    title = "Scale-out matrix: P in {8..128} x {flat, 2-socket, 4-socket}";
    paper_ref = "extension (beyond the paper's 14-processor machine)";
    describe =
      "threadtest and churn on two-tier machines up to 128 simulated processors: cycles, cross-node \
       and cross-socket coherence, and peak-held vs the O(U + P) envelope with P = peak live threads \
       (enforced)";
    run;
  }

(* --- cost-model sensitivity (methodology validation) --- *)

let costmodel_exp =
  let run scale ~procs =
    let p =
      match procs with
      | Some (p :: _) -> p
      | _ -> ( match scale with Quick -> 4 | Full -> 8)
    in
    let models =
      [ ("cheap memory", Cost_model.cheap_memory); ("default", Cost_model.default); ("expensive memory", Cost_model.expensive_memory) ]
    in
    let tbl =
      Table.create
        ~title:(Printf.sprintf "Cost-model sensitivity: threadtest speedup at %d processors" p)
        ~columns:
          [ ("cost model", Table.Left); ("serial", Table.Right); ("hoard", Table.Right); ("hoard/serial gap", Table.Right) ]
    in
    List.iter
      (fun (name, cost) ->
        let sp alloc =
          let base = Runner.run (Runner.spec ~cost (threadtest scale) alloc ~nprocs:1) in
          Runner.speedup ~base (Runner.run (Runner.spec ~cost (threadtest scale) alloc ~nprocs:p))
        in
        let s_serial = sp (Serial_alloc.factory ()) and s_hoard = sp (Hoard.factory ()) in
        Table.add_row tbl
          [ name; Table.cell_float s_serial; Table.cell_float s_hoard; Table.cell_ratio (s_hoard /. s_serial) ])
      models;
    tables_only [ tbl ]
  in
  {
    id = "exp_costmodel";
    title = "Cost-model sensitivity";
    paper_ref = "methodology validation";
    describe = "the headline separation (Hoard scales, serial collapses) must hold under 3x cost perturbations";
    run;
  }

(* --- memory consumption over time (evaluation extension) --- *)

let timeline_exp =
  let run scale ~procs =
    ignore procs;
    let rounds =
      match scale with
      | Quick -> 20
      | Full -> 60
    in
    let allocs = [ Hoard.factory (); Private_ownership.factory (); Pure_private.factory () ] in
    let timelines =
      List.map
        (fun alloc ->
          let sim = Sim.create ~nprocs:2 () in
          let pf = Sim.platform sim in
          let tl, a = Timeline.wrap (alloc.Alloc_intf.instantiate pf) in
          (producer_consumer ~rounds ~batch:200).Workload_intf.spawn sim pf a ~nthreads:2;
          Sim.run sim;
          (alloc.Alloc_intf.label, tl))
        allocs
    in
    let tbl =
      Table.create ~title:"Held memory over producer-consumer rounds (P=2)"
        ~columns:[ ("allocator", Table.Left); ("peak held", Table.Right); ("samples", Table.Right) ]
    in
    List.iter
      (fun (label, tl) ->
        Table.add_row tbl
          [
            label;
            Printf.sprintf "%d KiB" (Timeline.peak_held tl / 1024);
            string_of_int (List.length (Timeline.samples tl));
          ])
      timelines;
    { tables = [ tbl ]; plot = Some (Timeline.plot timelines ~title:"Held memory vs time (producer-consumer)") }
  in
  {
    id = "exp_timeline";
    title = "Memory consumption over time";
    paper_ref = "evaluation extension (blowup as a curve)";
    describe = "held-memory timelines under producer-consumer: unbounded growth is visible as a climbing curve";
    run;
  }

(* --- application workloads beyond the paper's suite --- *)

let kv_store = function
  | Quick -> Kv_store.make ~params:{ Kv_store.default_params with Kv_store.ops = 6000; key_space = 1200 } ()
  | Full -> Kv_store.make ~params:{ Kv_store.default_params with Kv_store.ops = 32_000; key_space = 2400 } ()

let doc_tree = function
  | Quick -> Doc_tree.make ~params:{ Doc_tree.default_params with Doc_tree.documents = 64 } ()
  | Full -> Doc_tree.make ~params:{ Doc_tree.default_params with Doc_tree.documents = 240 } ()

let apps_exp =
  let run scale ~procs =
    let procs =
      match procs with
      | Some ps -> if List.mem 1 ps then ps else 1 :: ps
      | None -> default_procs scale
    in
    let allocs = figure_allocators () in
    let table_for mk title =
      let tbl =
        Table.create ~title ~columns:(("P", Table.Right) :: List.map (fun a -> (a.Alloc_intf.label, Table.Right)) allocs)
      in
      let results = List.map (fun alloc -> List.map (fun p -> run_one (mk scale) alloc ~nprocs:p) procs) allocs in
      List.iteri
        (fun pi p ->
          let row =
            List.map
              (fun per_alloc -> Table.cell_float (Runner.speedup ~base:(List.hd per_alloc) (List.nth per_alloc pi)))
              results
          in
          Table.add_row tbl (string_of_int p :: row))
        procs;
      tbl
    in
    tables_only
      [
        table_for kv_store "KV store (memcached-style server) — speedup";
        table_for doc_tree "Document builder (parser churn) — speedup";
      ]
  in
  {
    id = "exp_apps";
    title = "Application workloads (KV store, document builder)";
    paper_ref = "evaluation extension (application-level workloads)";
    describe = "a striped-lock KV server and a DOM-style parser-churn application on every allocator";
    run;
  }

(* --- malloc latency distribution (evaluation extension) --- *)

let latency_exp =
  let run scale ~procs =
    let p =
      match procs with
      | Some (p :: _) -> p
      | _ -> ( match scale with Quick -> 4 | Full -> 8)
    in
    let tbl =
      Table.create
        ~title:(Printf.sprintf "Malloc latency distribution on shbench at %d processors (cycles)" p)
        ~columns:
          [
            ("allocator", Table.Left);
            ("mean", Table.Right);
            ("p50 <=", Table.Right);
            ("p95 <=", Table.Right);
            ("p99 <=", Table.Right);
            ("max", Table.Right);
          ]
    in
    List.iter
      (fun alloc ->
        let sim = Sim.create ~nprocs:p () in
        let pf = Sim.platform sim in
        let probe, a = Latency_probe.wrap (alloc.Alloc_intf.instantiate pf) in
        (shbench scale).Workload_intf.spawn sim pf a ~nthreads:p;
        Sim.run sim;
        let h = Latency_probe.malloc_latencies probe in
        Table.add_row tbl
          [
            alloc.Alloc_intf.label;
            Table.cell_float (Histogram.mean h);
            string_of_int (Histogram.percentile h 0.5);
            string_of_int (Histogram.percentile h 0.95);
            string_of_int (Histogram.percentile h 0.99);
            (match Histogram.max_value h with
             | Some v -> string_of_int v
             | None -> "-");
          ])
      (all_allocators ());
    tables_only [ tbl ]
  in
  {
    id = "exp_latency";
    title = "Malloc latency distribution";
    paper_ref = "evaluation extension (tail latency)";
    describe = "per-operation latency percentiles: contention appears as a long malloc tail";
    run;
  }

(* --- per-lock contention profile --- *)

let contention_exp =
  let run scale ~procs =
    let p =
      match procs with
      | Some (p :: _) -> p
      | _ -> ( match scale with Quick -> 4 | Full -> 8)
    in
    let tbl =
      Table.create
        ~title:(Printf.sprintf "Per-lock contention: hoard at %d processors" p)
        ~columns:
          [
            ("workload", Table.Left);
            ("lock", Table.Left);
            ("acquisitions", Table.Right);
            ("spins", Table.Right);
            ("spins/acq", Table.Right);
          ]
    in
    List.iteri
      (fun i (wname, w) ->
        if i > 0 then Table.add_separator tbl;
        let r = Runner.run (Runner.spec w (Hoard.factory ()) ~nprocs:p) in
        let entries = Contention.top ~n:8 (Contention.of_lock_stats r.Runner.r_lock_stats) in
        List.iter
          (fun (e : Contention.entry) ->
            if e.c_acqs > 0 then
              Table.add_row tbl
                [
                  wname;
                  e.c_name;
                  string_of_int e.c_acqs;
                  string_of_int e.c_spins;
                  Table.cell_float (Contention.spins_per_acq e);
                ])
          entries)
      [ ("threadtest", threadtest scale); ("larson", larson scale) ];
    tables_only [ tbl ]
  in
  {
    id = "exp_contention";
    title = "Per-lock contention profile";
    paper_ref = "analysis extension (which lock serialises the run?)";
    describe = "acquisitions and spins per named lock: global-heap vs per-heap lock pressure";
    run;
  }

(* --- lock-discipline ablation --- *)

let abl_lock =
  let run scale ~procs =
    let procs =
      match procs with
      | Some ps -> ps
      | None -> ( match scale with Quick -> [ 2; 4; 8 ] | Full -> [ 2; 4; 8; 14 ])
    in
    let tbl =
      Table.create ~title:"Ablation: spin vs ticket locks (serial allocator on threadtest, cycles)"
        ~columns:
          [ ("P", Table.Right); ("spin cycles", Table.Right); ("ticket cycles", Table.Right); ("ticket/spin", Table.Right) ]
    in
    List.iter
      (fun p ->
        let spin =
          Runner.run (Runner.spec ~lock_kind:Sim.Spin (threadtest scale) (Serial_alloc.factory ()) ~nprocs:p)
        in
        let ticket =
          Runner.run (Runner.spec ~lock_kind:Sim.Ticket (threadtest scale) (Serial_alloc.factory ()) ~nprocs:p)
        in
        Table.add_row tbl
          [
            string_of_int p;
            string_of_int spin.Runner.r_cycles;
            string_of_int ticket.Runner.r_cycles;
            Table.cell_ratio (float_of_int ticket.Runner.r_cycles /. float_of_int spin.Runner.r_cycles);
          ])
      procs;
    tables_only [ tbl ]
  in
  {
    id = "abl_lock";
    title = "Ablation: lock discipline";
    paper_ref = "design ablation";
    describe = "test-and-set spin locks vs FIFO ticket locks under heap contention";
    run;
  }

(* --- oversubscription: more threads than processors --- *)

let oversub =
  let run scale ~procs =
    let p =
      match procs with
      | Some (p :: _) -> p
      | _ -> ( match scale with Quick -> 4 | Full -> 8)
    in
    let allocs = [ Private_ownership.factory (); Hoard.factory () ] in
    let tbl =
      Table.create
        ~title:(Printf.sprintf "Oversubscription: threadtest cycles at %d processors, threads = k*P" p)
        ~columns:
          (("threads", Table.Right) :: List.map (fun a -> (a.Alloc_intf.label, Table.Right)) allocs)
    in
    List.iter
      (fun k ->
        let row =
          List.map
            (fun alloc ->
              let r = Runner.run (Runner.spec ~nthreads:(k * p) (threadtest scale) alloc ~nprocs:p) in
              string_of_int r.Runner.r_cycles)
            allocs
        in
        Table.add_row tbl (string_of_int (k * p) :: row))
      [ 1; 2; 4 ];
    tables_only [ tbl ]
  in
  {
    id = "exp_oversub";
    title = "Oversubscription (threads > processors)";
    paper_ref = "Section 4 discussion (thread-to-heap mapping)";
    describe = "multiple threads share per-processor heaps; Hoard must keep scaling";
    run;
  }

(* --- heap-count ablation (the implementation's "2P heaps" trick) --- *)

let abl_nheaps =
  let run scale ~procs =
    let p =
      match procs with
      | Some (p :: _) -> p
      | _ -> ( match scale with Quick -> 4 | Full -> 8)
    in
    let tbl =
      Table.create
        ~title:(Printf.sprintf "Ablation: heaps per processor (larson + threadtest at %dP, threads = 2P)" p)
        ~columns:
          [
            ("heaps", Table.Right);
            ("larson ops/Mcycle", Table.Right);
            ("threadtest cycles", Table.Right);
            ("lock spins", Table.Right);
          ]
    in
    List.iter
      (fun mult ->
        let cfg = Hoard_config.make ~nheaps:(Some (mult * p)) ~assign_by_tid:true () in
        let alloc = hoard_with cfg in
        (* Oversubscribed: two threads per processor, so heap sharing is
           real and extra heaps can pay off. *)
        let lar = Runner.run (Runner.spec ~nthreads:(2 * p) (larson scale) alloc ~nprocs:p) in
        let tt = Runner.run (Runner.spec ~nthreads:(2 * p) (threadtest scale) (hoard_with cfg) ~nprocs:p) in
        Table.add_row tbl
          [
            Printf.sprintf "%dP" mult;
            Table.cell_float (Runner.ops_per_mcycle lar);
            string_of_int tt.Runner.r_cycles;
            string_of_int (lar.Runner.r_lock_spins + tt.Runner.r_lock_spins);
          ])
      [ 1; 2; 4 ];
    tables_only [ tbl ]
  in
  {
    id = "abl_nheaps";
    title = "Ablation: heaps per processor";
    paper_ref = "implementation note (Hoard used more heaps than processors)";
    describe = "does giving Hoard 2P or 4P heaps help when threads outnumber processors?";
    run;
  }

(* --- memory-lifecycle fragmentation (vmem backends + reservoir) --- *)

(* Churny variants of larson and shbench whose sizes run well past
   max_small (S/2 = 4 KiB), so a large share of the traffic takes the
   large-object path, where the vmem backend's reuse policy decides
   whether the address space keeps growing: the exact-reuse seed policy
   only re-serves identical byte counts, so random-size churn extends
   the mapping area indefinitely, while first-fit coalescing and the
   buddy system recycle it. *)
let frag_larson = function
  | Quick ->
    Larson.make
      ~params:
        {
          Larson.default_params with
          Larson.rounds = 120;
          handoffs = 3;
          objects_per_thread = 48;
          min_size = 64;
          max_size = 256_000;
        }
      ()
  | Full ->
    Larson.make
      ~params:
        {
          Larson.default_params with
          Larson.rounds = 400;
          handoffs = 6;
          objects_per_thread = 96;
          min_size = 64;
          max_size = 256_000;
        }
      ()

let frag_shbench = function
  | Quick ->
    Shbench.make
      ~params:
        { Shbench.default_params with Shbench.ops = 4000; slots_per_thread = 64; min_size = 16; max_size = 256_000 }
      ()
  | Full ->
    Shbench.make
      ~params:
        {
          Shbench.default_params with
          Shbench.ops = 24_000;
          slots_per_thread = 128;
          min_size = 16;
          max_size = 256_000;
        }
      ()

(* The four lifecycle configurations the experiment compares; the first
   is the seed (exact reuse, no reservoir), the baseline the address-
   space "vs seed" column divides by. *)
let frag_configs =
  [
    ("exact R=0 (seed)", Vmem_backend.Exact, 0);
    ("first-fit R=0", Vmem_backend.First_fit, 0);
    ("first-fit R=8", Vmem_backend.First_fit, 8);
    ("buddy R=8", Vmem_backend.Buddy, 8);
  ]

let frag_exp =
  let run scale ~procs =
    let p =
      match procs with
      | Some (p :: _) -> p
      | _ -> 4
    in
    let run_config w (backend, reservoir) ~nprocs =
      let cfg = Hoard_config.make ~vmem_backend:backend ~reservoir () in
      let r = Runner.run (Runner.spec ~vmem_backend:backend w (Hoard.factory ~config:cfg ())  ~nprocs) in
      (* The memory-lifecycle invariant, enforced (not just reported):
         the CI fragmentation smoke runs this experiment and must exit
         non-zero if a parked superblock skipped its decommit or a
         bounced park skipped its unmap. *)
      let s = r.Runner.r_stats in
      let cap = reservoir * cfg.Hoard_config.sb_size in
      if s.Alloc_stats.resident_bytes > s.Alloc_stats.held_bytes + cap then
        failwith
          (Printf.sprintf
             "exp_fragmentation: lifecycle invariant violated on %s (%s, R=%d): resident %d > held %d + R*S %d"
             w.Workload_intf.w_name (Vmem_backend.kind_name backend) reservoir s.Alloc_stats.resident_bytes
             s.Alloc_stats.held_bytes cap);
      if s.Alloc_stats.reservoir_bytes > cap then
        failwith
          (Printf.sprintf "exp_fragmentation: reservoir over capacity on %s: %d bytes > %d"
             w.Workload_intf.w_name s.Alloc_stats.reservoir_bytes cap);
      r
    in
    let workload_table (wname, w) =
      let tbl =
        Table.create
          ~title:(Printf.sprintf "Memory lifecycle: %s churn at %d processors" wname p)
          ~columns:
            [
              ("config", Table.Left);
              ("peak mapped", Table.Right);
              ("addr space", Table.Right);
              ("vs seed", Table.Right);
              ("resident@end", Table.Right);
              ("held@end", Table.Right);
              ("maps/unmaps", Table.Right);
              ("decommit/recommit", Table.Right);
              ("park/drop", Table.Right);
            ]
      in
      let seed_span = ref 0 in
      List.iter
        (fun (name, backend, reservoir) ->
          let r = run_config w (backend, reservoir) ~nprocs:p in
          let s = r.Runner.r_stats in
          if backend = Vmem_backend.Exact && reservoir = 0 then seed_span := r.Runner.r_vm_address_space;
          Table.add_row tbl
            [
              name;
              kib r.Runner.r_vm_peak_mapped;
              kib r.Runner.r_vm_address_space;
              Table.cell_ratio (float_of_int r.Runner.r_vm_address_space /. float_of_int (max 1 !seed_span));
              kib r.Runner.r_vm_resident;
              kib s.Alloc_stats.held_bytes;
              Printf.sprintf "%d/%d" s.Alloc_stats.os_maps s.Alloc_stats.os_unmaps;
              Printf.sprintf "%d/%d" s.Alloc_stats.decommits s.Alloc_stats.recommits;
              Printf.sprintf "%d/%d" s.Alloc_stats.reservoir_parks s.Alloc_stats.reservoir_drops;
            ])
        frag_configs;
      tbl
    in
    let tables =
      (* threadtest's all-small churn is where the reservoir itself acts
         (superblocks empty onto the global heap and park instead of
         unmapping); the two large-object churners are where the backend
         reuse policy decides address-space growth. *)
      List.map workload_table
        [
          ("larson", frag_larson scale);
          ("shbench", frag_shbench scale);
          (* The paper-sized larson (all-small objects) is where the
             reservoir itself acts: ring handoffs empty whole superblocks
             onto the global heap, which parks them (decommit) and serves
             later refills from the reservoir (recommit) instead of
             unmap/map round trips. *)
          ("larson-small", larson scale);
          ("threadtest", threadtest scale);
        ]
    in
    (* Uniprocessor guard: the lifecycle refactor must not tax the plain
       small-object path — threadtest at P=1 under each configuration,
       normalised to the seed. *)
    let uni =
      Table.create ~title:"Uniprocessor threadtest under each lifecycle configuration"
        ~columns:[ ("config", Table.Left); ("cycles", Table.Right); ("vs seed", Table.Right) ]
    in
    let seed_cycles = ref 0 in
    List.iter
      (fun (name, backend, reservoir) ->
        let r = run_config (threadtest scale) (backend, reservoir) ~nprocs:1 in
        if backend = Vmem_backend.Exact && reservoir = 0 then seed_cycles := r.Runner.r_cycles;
        Table.add_row uni
          [
            name;
            string_of_int r.Runner.r_cycles;
            Table.cell_ratio (float_of_int r.Runner.r_cycles /. float_of_int (max 1 !seed_cycles));
          ])
      frag_configs;
    tables_only (tables @ [ uni ])
  in
  {
    id = "exp_fragmentation";
    title = "Address-space fragmentation and the memory lifecycle";
    paper_ref = "evaluation extension (vmem backends, residency, superblock reservoir)";
    describe =
      "large-object churn on every vmem backend with and without the superblock reservoir: address-space \
       growth, residency, and the resident <= held + R*S invariant (enforced)";
    run;
  }

(* --- exp_server: latency-tail SLOs on the front-tier request mix --- *)

let server_params profile scale =
  let requests =
    match scale with
    | Quick -> 1200
    | Full -> 8000
  in
  { Server_mix.default_params with Server_mix.profile; requests }

(* The latency-tail comparison set: the paper's serial and
   private-ownership baselines against the three Hoard configurations
   whose whole purpose is the tail (base, lock-free front end, lock-free
   shelf). *)
let server_allocators () =
  [
    Serial_alloc.factory ();
    Private_ownership.factory ();
    Hoard.factory ();
    Allocators.hoard_fe ();
    Allocators.hoard_df ();
    Allocators.hoard_shelf ();
  ]

let server_exp =
  let run scale ~procs =
    let procs =
      match procs with
      | Some ps -> ps
      | None -> ( match scale with Quick -> [ 8 ] | Full -> [ 4; 8; 16 ])
    in
    (* One RSS curve per allocator config, drawn at the gate's processor
       count when it is in the sweep. *)
    let plot_p = if List.mem 8 procs then 8 else List.hd procs in
    let allocs = server_allocators () in
    let outputs =
      List.map
        (fun profile ->
          let tbl =
            Table.create
              ~title:
                (Printf.sprintf "Server mix (%s): per-request latency, simulated cycles"
                   (Server_mix.profile_name profile))
              ~columns:
                [
                  ("allocator", Table.Left);
                  ("P", Table.Right);
                  ("requests", Table.Right);
                  ("p50", Table.Right);
                  ("p99", Table.Right);
                  ("p999", Table.Right);
                  ("max", Table.Right);
                  ("RSS peak KiB", Table.Right);
                  ("cycles", Table.Right);
                ]
          in
          let timelines = ref [] in
          List.iter
            (fun alloc ->
              List.iter
                (fun p ->
                  let r = Slo.run_server ~params:(server_params profile scale) alloc ~nprocs:p in
                  let h = Server_mix.request_latencies r.Slo.sv_recorder in
                  Table.add_row tbl
                    [
                      alloc.Alloc_intf.label;
                      string_of_int p;
                      string_of_int (Histogram.count h);
                      string_of_int (Histogram.percentile h 0.5);
                      string_of_int (Histogram.percentile h 0.99);
                      string_of_int (Histogram.percentile h 0.999);
                      string_of_int (Option.value ~default:0 (Histogram.max_value h));
                      string_of_int ((r.Slo.sv_stats.Alloc_stats.peak_resident_bytes + 1023) / 1024);
                      string_of_int r.Slo.sv_cycles;
                    ];
                  if p = plot_p then timelines := (alloc.Alloc_intf.label, r.Slo.sv_timeline) :: !timelines)
                procs)
            allocs;
          let plot =
            Timeline.plot ~metric:Timeline.Resident (List.rev !timelines)
              ~title:
                (Printf.sprintf "RSS over time — server mix (%s, %dP)" (Server_mix.profile_name profile)
                   plot_p)
          in
          (tbl, plot))
        Server_mix.profiles
    in
    { tables = List.map fst outputs; plot = Some (String.concat "\n" (List.map snd outputs)) }
  in
  {
    id = "exp_server";
    title = "Front-tier server latency tails (p50/p99/p999) and RSS over time";
    paper_ref = "evaluation extension (latency-tail SLO observability)";
    describe =
      "steady/bursty/flash request mixes over the latency-tail comparison set: per-request percentile \
       tables in simulated cycles plus a resident-memory curve per allocator config";
    run;
  }

(* --- registry --- *)

(* --- the remote-free path: bounded queues vs deferred lists --- *)

(* The pipelined producer-consumer makes every free remote and concurrent
   with the owner's allocation burst, so this is where the remote-free
   discipline shows: hoard-fe's bounded queues drain under the owner's
   heap lock (and block the producer mid-burst), hoard-df's deferred
   lists take one CAS per free and one exchange per reclaim. The
   companion instrumented pass ([--metrics], obs_workload below) exports
   the per-lock acquisition counts CI gates on. *)
let remote_exp =
  let run scale ~procs =
    let procs =
      match procs with
      | Some ps -> ps
      | None -> ( match scale with Quick -> [ 2; 8 ] | Full -> [ 2; 8; 14 ])
    in
    let allocs = [ Allocators.hoard_fe (); Allocators.hoard_df () ] in
    let tbl =
      Table.create ~title:"Remote frees: bounded queues (hoard-fe) vs deferred lists (hoard-df)"
        ~columns:
          [
            ("allocator", Table.Left);
            ("P", Table.Right);
            ("cycles", Table.Right);
            ("rq enq", Table.Right);
            ("deferred enq", Table.Right);
            ("reclaims", Table.Right);
            ("blocks/reclaim", Table.Right);
            ("large maps", Table.Right);
            ("large hits", Table.Right);
          ]
    in
    List.iter
      (fun alloc ->
        List.iter
          (fun p ->
            let r = run_one (prodcons_pipelined scale) alloc ~nprocs:p in
            let s = r.Runner.r_stats in
            Table.add_row tbl
              [
                alloc.Alloc_intf.label;
                string_of_int p;
                string_of_int r.Runner.r_cycles;
                string_of_int s.Alloc_stats.remote_enqueues;
                string_of_int s.Alloc_stats.deferred_enqueues;
                string_of_int s.Alloc_stats.deferred_reclaims;
                (if s.Alloc_stats.deferred_reclaims = 0 then "-"
                 else
                   Table.cell_ratio
                     (float_of_int s.Alloc_stats.deferred_enqueues
                     /. float_of_int s.Alloc_stats.deferred_reclaims));
                string_of_int s.Alloc_stats.large_maps;
                string_of_int s.Alloc_stats.large_cache_hits;
              ])
          procs)
      allocs;
    tables_only [ tbl ]
  in
  {
    id = "exp_remote";
    title = "Remote-free discipline";
    paper_ref = "beyond the paper: deferred remote frees";
    describe =
      "pipelined producer-consumer (all frees remote, concurrent with the owner): bounded remote \
       queues vs CAS-push deferred lists";
    run;
  }

let all () =
  [
    taxonomy;
    benchmarks_table;
    program_stats;
    fragmentation;
    uniproc_overhead;
    speedup_figure ~id:"fig_threadtest" ~title:"Figure: threadtest" ~paper_ref:"threadtest speedup figure"
      ~describe:"batch allocate/free of small objects; heap contention stress" ~workload_of_scale:threadtest;
    speedup_figure ~id:"fig_shbench" ~title:"Figure: shbench" ~paper_ref:"shbench speedup figure"
      ~describe:"random-size working-set churn (SmartHeap benchmark)" ~workload_of_scale:shbench;
    larson_figure;
    speedup_figure ~id:"fig_active_false" ~title:"Figure: active-false" ~paper_ref:"active-false speedup figure"
      ~describe:"allocator-induced (active) false sharing" ~workload_of_scale:active_false;
    speedup_figure ~id:"fig_passive_false" ~title:"Figure: passive-false" ~paper_ref:"passive-false speedup figure"
      ~describe:"passively induced false sharing via cross-thread free" ~workload_of_scale:passive_false;
    speedup_figure ~id:"fig_bem" ~title:"Figure: BEM-like engine" ~paper_ref:"BEMengine speedup figure"
      ~describe:"phased solver profile (synthetic substitute for the proprietary BEMengine)"
      ~workload_of_scale:bem;
    speedup_figure ~id:"fig_barnes" ~title:"Figure: Barnes-Hut" ~paper_ref:"Barnes-Hut speedup figure"
      ~describe:"octree n-body simulation; compute-dominated" ~workload_of_scale:barnes;
    blowup_exp;
    frag_exp;
    falseshare_exp;
    oversub;
    latency_exp;
    contention_exp;
    remote_exp;
    apps_exp;
    timeline_exp;
    server_exp;
    costmodel_exp;
    numa_exp;
    scale_exp;
    abl_f;
    abl_k;
    abl_sbsize;
    abl_lock;
    abl_nheaps;
  ]

let find id = List.find_opt (fun e -> e.id = id) (all ())

let allocator label = Allocators.find label

let workload name scale =
  match name with
  | "threadtest" -> Some (threadtest scale)
  | "shbench" -> Some (shbench scale)
  | "larson" -> Some (larson scale)
  | "active-false" -> Some (active_false scale)
  | "passive-false" -> Some (passive_false scale)
  | "bem" -> Some (bem scale)
  | "barnes-hut" -> Some (barnes scale)
  | "producer-consumer" ->
    Some (producer_consumer ~rounds:(List.nth (prodcons_rounds scale) 2) ~batch:200)
  | "producer-consumer-pipelined" -> Some (prodcons_pipelined scale)
  | "phased-blowup" -> Some (phased_blowup ~rounds:16)
  | "kv-store" -> Some (kv_store scale)
  | "doc-tree" -> Some (doc_tree scale)
  | "server-steady" -> Some (Server_mix.make ~params:(server_params Server_mix.Steady scale) ())
  | "server-bursty" -> Some (Server_mix.make ~params:(server_params Server_mix.Bursty scale) ())
  | "server-flash" -> Some (Server_mix.make ~params:(server_params Server_mix.Flash scale) ())
  | _ ->
    (* churn-<pattern>-<body>, e.g. "churn-wave-larson". *)
    (match String.split_on_char '-' name with
     | [ "churn"; pat; bod ] ->
       (match (Churn.pattern_of_string pat, Churn.body_of_string bod) with
        | Some pattern, Some body -> Some (churn ~pattern ~body scale)
        | _ -> None)
     | _ -> None)

let workload_names =
  [
    "threadtest"; "shbench"; "larson"; "active-false"; "passive-false"; "bem"; "barnes-hut";
    "producer-consumer"; "producer-consumer-pipelined"; "phased-blowup"; "kv-store"; "doc-tree";
    "server-steady"; "server-bursty"; "server-flash";
  ]
  @ List.concat_map
      (fun pat ->
        List.map
          (fun bod -> Printf.sprintf "churn-%s-%s" (Churn.pattern_name pat) (Churn.body_name bod))
          Churn.bodies)
      Churn.patterns

let ids () = List.map (fun e -> e.id) (all ())

(* Representative workload for an experiment id: what [--metrics] runs its
   instrumented companion pass on. *)
let obs_workload id scale =
  let name =
    match id with
    | "fig_shbench" -> "shbench"
    | "fig_larson" | "exp_oversub" | "abl_lock" -> "larson"
    | "fig_active_false" -> "active-false"
    | "fig_passive_false" -> "passive-false"
    | "fig_bem" -> "bem"
    | "fig_barnes" -> "barnes-hut"
    | "exp_blowup" -> "phased-blowup"
    | "exp_remote" -> "producer-consumer-pipelined"
    | "exp_fragmentation" -> "larson"
    | "exp_apps" -> "kv-store"
    | "exp_server" -> "server-bursty"
    | "exp_scale" -> "churn-wave-threadtest"
    | _ -> "threadtest"
  in
  match workload name scale with
  | Some w -> w
  | None -> assert false (* every name above is registered *)
