let front_end_default = 16

let hoard_fe ?(front_end = front_end_default) () =
  let config = { Hoard_config.default with Hoard_config.front_end } in
  {
    (Hoard.factory ~config ()) with
    Alloc_intf.label = "hoard-fe";
    description =
      Printf.sprintf "hoard with the lock-free front end (%d cached blocks per class per thread)" front_end;
  }

let hoard_san ?(quarantine = 32) () =
  let config = { Hoard_config.default with Hoard_config.sanitize = true; quarantine } in
  {
    (Hoard.factory ~config ()) with
    Alloc_intf.label = "hoard-san";
    description =
      Printf.sprintf "hoard with the heap sanitizer (poison-on-free, %d-block quarantine)" quarantine;
  }

let hoard_res ?(reservoir = 8) ?(vmem_backend = Vmem_backend.First_fit) () =
  let config = { Hoard_config.default with Hoard_config.reservoir; vmem_backend } in
  {
    (Hoard.factory ~config ()) with
    Alloc_intf.label = "hoard-res";
    description =
      Printf.sprintf
        "hoard with the superblock reservoir (cap %d, decommit-on-park) on the %s vmem backend"
        reservoir
        (Vmem_backend.kind_name vmem_backend);
  }

let hoard_shelf ?(shelf = 8) ?(reservoir = 8) () =
  let config =
    { Hoard_config.default with Hoard_config.shelf; reservoir; front_end = front_end_default }
  in
  {
    (Hoard.factory ~config ()) with
    Alloc_intf.label = "hoard-shelf";
    description =
      Printf.sprintf
        "hoard with the lock-free shelf (cap %d) and reservoir (cap %d) in front of the global heap"
        shelf reservoir;
  }

let all () =
  [
    Serial_alloc.factory ();
    Concurrent_single.factory ();
    Pure_private.factory ();
    Private_ownership.factory ();
    Private_threshold.factory ();
    Hoard.factory ();
    hoard_fe ();
  ]

(* Checking configurations: resolvable by [find] but excluded from [all]
   (sweeps and comparison tables run the seven measurement allocators). *)
let extras () = [ hoard_san (); hoard_res (); hoard_shelf () ]

let labels () = List.map (fun f -> f.Alloc_intf.label) (all ())

let find label = List.find_opt (fun f -> f.Alloc_intf.label = label) (all () @ extras ())

let help () =
  String.concat "\n"
    (List.map
       (fun f -> Printf.sprintf "  %-18s %s" f.Alloc_intf.label f.Alloc_intf.description)
       (all () @ extras ()))
