let front_end_default = 16

let hoard_fe ?(front_end = front_end_default) () =
  let config = { Hoard_config.default with Hoard_config.front_end } in
  {
    (Hoard.factory ~config ()) with
    Alloc_intf.label = "hoard-fe";
    description =
      Printf.sprintf "hoard with the lock-free front end (%d cached blocks per class per thread)" front_end;
  }

let all () =
  [
    Serial_alloc.factory ();
    Concurrent_single.factory ();
    Pure_private.factory ();
    Private_ownership.factory ();
    Private_threshold.factory ();
    Hoard.factory ();
    hoard_fe ();
  ]

let labels () = List.map (fun f -> f.Alloc_intf.label) (all ())

let find label = List.find_opt (fun f -> f.Alloc_intf.label = label) (all ())

let help () =
  String.concat "\n"
    (List.map (fun f -> Printf.sprintf "  %-18s %s" f.Alloc_intf.label f.Alloc_intf.description) (all ()))
