let front_end_default = 16

let large_cache_default = 4

let fe_config ?(front_end = front_end_default) () = Hoard_config.make ~front_end ()

let df_config ?(front_end = front_end_default) ?(large_cache = large_cache_default) () =
  Hoard_config.make ~front_end ~deferred:true ~large_cache ()

let san_config ?(quarantine = 32) () = Hoard_config.make ~sanitize:true ~quarantine ()

let res_config ?(reservoir = 8) ?(vmem_backend = Vmem_backend.First_fit) () =
  Hoard_config.make ~reservoir ~vmem_backend ()

let shelf_config ?(shelf = 8) ?(reservoir = 8) () =
  Hoard_config.make ~shelf ~reservoir ~front_end:front_end_default ()

let gl_config ?(front_end = front_end_default) () =
  Hoard_config.make ~front_end ~deferred:true ~global:Hoard_config.Lockfree ()

let hoard_fe ?front_end () =
  let config = fe_config ?front_end () in
  let front_end = config.Hoard_config.front_end in
  {
    (Hoard.factory ~config ()) with
    Alloc_intf.label = "hoard-fe";
    description =
      Printf.sprintf "hoard with the lock-free front end (%d cached blocks per class per thread)" front_end;
  }

let hoard_df ?front_end ?large_cache () =
  let config = df_config ?front_end ?large_cache () in
  let large_cache = config.Hoard_config.large_cache in
  {
    (Hoard.factory ~config ()) with
    Alloc_intf.label = "hoard-df";
    description =
      Printf.sprintf
        "hoard-fe plus deferred remote-free lists (CAS push, exchange reclaim) and the large-object cache (cap %d per bucket)"
        large_cache;
  }

let hoard_san ?quarantine () =
  let config = san_config ?quarantine () in
  let quarantine = config.Hoard_config.quarantine in
  {
    (Hoard.factory ~config ()) with
    Alloc_intf.label = "hoard-san";
    description =
      Printf.sprintf "hoard with the heap sanitizer (poison-on-free, %d-block quarantine)" quarantine;
  }

let hoard_res ?reservoir ?vmem_backend () =
  let config = res_config ?reservoir ?vmem_backend () in
  let reservoir = config.Hoard_config.reservoir in
  let vmem_backend = config.Hoard_config.vmem_backend in
  {
    (Hoard.factory ~config ()) with
    Alloc_intf.label = "hoard-res";
    description =
      Printf.sprintf
        "hoard with the superblock reservoir (cap %d, decommit-on-park) on the %s vmem backend"
        reservoir
        (Vmem_backend.kind_name vmem_backend);
  }

let hoard_shelf ?shelf ?reservoir () =
  let config = shelf_config ?shelf ?reservoir () in
  let shelf = config.Hoard_config.shelf in
  let reservoir = config.Hoard_config.reservoir in
  {
    (Hoard.factory ~config ()) with
    Alloc_intf.label = "hoard-shelf";
    description =
      Printf.sprintf
        "hoard with the lock-free shelf (cap %d) and reservoir (cap %d) in front of the global heap"
        shelf reservoir;
  }

let hoard_gl ?front_end () =
  let config = gl_config ?front_end () in
  {
    (Hoard.factory ~config ()) with
    Alloc_intf.label = "hoard-gl";
    description =
      "hoard-df with the lock-free global heap: CAS-published fullness index, no heap-0 lock on any transfer";
  }

let all () =
  [
    Serial_alloc.factory ();
    Concurrent_single.factory ();
    Pure_private.factory ();
    Private_ownership.factory ();
    Private_threshold.factory ();
    Hoard.factory ();
    hoard_fe ();
    hoard_df ();
  ]

(* Checking configurations: resolvable by [find] but excluded from [all]
   (sweeps and comparison tables run the eight measurement allocators). *)
let extras () = [ hoard_san (); hoard_res (); hoard_shelf (); hoard_gl () ]

let labels () = List.map (fun f -> f.Alloc_intf.label) (all ())

let find label = List.find_opt (fun f -> f.Alloc_intf.label = label) (all () @ extras ())

(* The hoard-family labels and the configs their factories register
   with — [None] for the non-hoard comparison allocators, which have no
   knobs to override. *)
let base_config = function
  | "hoard" -> Some Hoard_config.default
  | "hoard-fe" -> Some (fe_config ())
  | "hoard-df" -> Some (df_config ())
  | "hoard-san" -> Some (san_config ())
  | "hoard-res" -> Some (res_config ())
  | "hoard-shelf" -> Some (shelf_config ())
  | "hoard-gl" -> Some (gl_config ())
  | _ -> None

let with_overrides f label =
  match (find label, base_config label) with
  | Some fac, Some cfg ->
    let config = f cfg in
    Some { fac with Alloc_intf.instantiate = (Hoard.factory ~config ()).Alloc_intf.instantiate }
  | _, _ -> None

let help () =
  String.concat "\n"
    (List.map
       (fun f -> Printf.sprintf "  %-18s %s" f.Alloc_intf.label f.Alloc_intf.description)
       (all () @ extras ()))
