type sample = { at : int; held : int; live : int; resident : int }

type t = { mutable rev_samples : sample list; mutable ops : int; every : int }

type metric = Held | Live | Resident

let record t (a : Alloc_intf.t) =
  t.ops <- t.ops + 1;
  if t.ops mod t.every = 0 then begin
    let s = a.Alloc_intf.stats () in
    t.rev_samples <-
      {
        at = Sim.now ();
        held = s.Alloc_stats.held_bytes;
        live = s.Alloc_stats.live_bytes;
        resident = s.Alloc_stats.resident_bytes;
      }
      :: t.rev_samples
  end

let wrap ?(every = 32) (a : Alloc_intf.t) =
  if every < 1 then invalid_arg "Timeline.wrap: every must be >= 1";
  let t = { rev_samples = []; ops = 0; every } in
  ( t,
    {
      a with
      Alloc_intf.malloc =
        (fun size ->
          let p = a.Alloc_intf.malloc size in
          record t a;
          p);
      free =
        (fun addr ->
          a.Alloc_intf.free addr;
          record t a);
      (* A batch counts as one operation: the curve tracks allocator
         traffic, and one fill is one interaction with the heap. *)
      malloc_batch =
        (fun n size ->
          let ps = a.Alloc_intf.malloc_batch n size in
          record t a;
          ps);
      free_batch =
        (fun addrs ->
          a.Alloc_intf.free_batch addrs;
          record t a);
      realloc =
        (fun ~addr ~size ->
          let p = a.Alloc_intf.realloc ~addr ~size in
          record t a;
          p);
    } )

let samples t = List.rev t.rev_samples

let peak_held t = List.fold_left (fun acc s -> max acc s.held) 0 t.rev_samples

let peak_resident t = List.fold_left (fun acc s -> max acc s.resident) 0 t.rev_samples

let metric_value m s =
  match m with
  | Held -> s.held
  | Live -> s.live
  | Resident -> s.resident

let metric_name = function
  | Held -> "held"
  | Live -> "live"
  | Resident -> "resident"

let plot ?(metric = Held) labelled ~title =
  let series =
    List.map
      (fun (label, t) ->
        ( label,
          List.map (fun s -> (float_of_int s.at, float_of_int (metric_value metric s) /. 1024.0)) (samples t)
        ))
      labelled
  in
  Ascii_plot.render ~title ~x_label:"cycles" ~y_label:(metric_name metric ^ " KiB") ~series ()
