(* The SLO layer: declarative latency/RSS objectives evaluated against a
   server-mix run, reported as tables, metrics JSON (the CI gate's input)
   and Perfetto counter tracks. *)

(* --- specs --- *)

type rule = { ru_metric : string; ru_quantile : float; ru_ceiling : int }

type spec = { sp_name : string; sp_rules : rule list; sp_rss_ceiling : int option }

let quantile_name q =
  if Float.abs (q -. 0.5) < 1e-9 then "p50"
  else if Float.abs (q -. 0.95) < 1e-9 then "p95"
  else if Float.abs (q -. 0.99) < 1e-9 then "p99"
  else if Float.abs (q -. 0.999) < 1e-9 then "p999"
  else Printf.sprintf "q%g" q

let quantile_of_string = function
  | "p50" -> Some 0.5
  | "p95" -> Some 0.95
  | "p99" -> Some 0.99
  | "p999" -> Some 0.999
  | _ -> None

let spec_of_json j =
  let open Json_lite in
  let ( let* ) = Result.bind in
  let name =
    match Option.bind (member "name" j) to_string with
    | Some n -> n
    | None -> "slo"
  in
  let* rules =
    match Option.bind (member "rules" j) to_list with
    | None -> Error "spec: missing rules array"
    | Some rs ->
      List.fold_left
        (fun acc r ->
          let* acc = acc in
          let metric = Option.bind (member "metric" r) to_string in
          let quantile =
            match member "quantile" r with
            | Some (Num q) -> Some q
            | Some (Str s) -> quantile_of_string s
            | _ -> None
          in
          let ceiling = Option.bind (member "ceiling" r) to_float in
          match (metric, quantile, ceiling) with
          | Some m, Some q, Some c when q > 0.0 && q <= 1.0 && c > 0.0 ->
            Ok ({ ru_metric = m; ru_quantile = q; ru_ceiling = int_of_float c } :: acc)
          | _ -> Error "spec: each rule needs metric (string), quantile (0<q<=1 or \"p99\"), ceiling (>0)")
        (Ok []) rs
      |> Result.map List.rev
  in
  let rss =
    match Option.bind (member "rss_ceiling" j) to_float with
    | Some b when b > 0.0 -> Some (int_of_float b)
    | _ -> None
  in
  Ok { sp_name = name; sp_rules = rules; sp_rss_ceiling = rss }

let spec_of_string s =
  match Json_lite.parse s with
  | Error m -> Error ("spec: invalid JSON: " ^ m)
  | Ok j -> spec_of_json j

(* --- one instrumented server run --- *)

type server_run = {
  sv_profile : Server_mix.profile;
  sv_allocator : string;
  sv_nprocs : int;
  sv_cycles : int;
  sv_recorder : Server_mix.recorder;
  sv_probe : Latency_probe.t;
  sv_timeline : Timeline.t;
  sv_obs : Obs.t;
  sv_stats : Alloc_stats.snapshot;
}

let run_server ?(params = Server_mix.default_params) ?(every = 16) (factory : Alloc_intf.factory) ~nprocs =
  let sim = Sim.create ~nprocs () in
  let pf = Sim.platform sim in
  let probe, a = Latency_probe.wrap (factory.Alloc_intf.instantiate pf) in
  let timeline, a = Timeline.wrap ~every a in
  let recorder = Server_mix.new_recorder () in
  let obs = Obs.create () in
  let ring = Obs.new_ring obs "server" in
  Server_mix.set_sink recorder (fun ~arrival ~latency ~who ->
      Event_ring.record ring ~at:arrival ~kind:Event_ring.Req_arrival ~who ~heap:(-1) ~sclass:(-1) ~arg:0;
      Event_ring.record ring ~at:(arrival + latency) ~kind:Event_ring.Req_done ~who ~heap:(-1)
        ~sclass:(-1) ~arg:latency);
  let w = Server_mix.make ~params ~recorder () in
  w.Workload_intf.spawn sim pf a ~nthreads:nprocs;
  Sim.run sim;
  a.Alloc_intf.check ();
  {
    sv_profile = params.Server_mix.profile;
    sv_allocator = factory.Alloc_intf.label;
    sv_nprocs = nprocs;
    sv_cycles = Sim.total_cycles sim;
    sv_recorder = recorder;
    sv_probe = probe;
    sv_timeline = timeline;
    sv_obs = obs;
    sv_stats = a.Alloc_intf.stats ();
  }

let metric_histogram run metric =
  match metric with
  | "request" -> Some (Server_mix.request_latencies run.sv_recorder)
  | "malloc" -> Some (Latency_probe.malloc_latencies run.sv_probe)
  | "free" -> Some (Latency_probe.free_latencies run.sv_probe)
  | "batch.malloc" -> Some (Latency_probe.batch_malloc_latencies run.sv_probe)
  | "batch.free" -> Some (Latency_probe.batch_free_latencies run.sv_probe)
  | "realloc" -> Some (Latency_probe.realloc_latencies run.sv_probe)
  | _ -> None

let metric_names = [ "request"; "malloc"; "free"; "batch.malloc"; "batch.free"; "realloc" ]

(* --- evaluation --- *)

type check = { ck_name : string; ck_observed : int; ck_ceiling : int; ck_ok : bool }

type report = { rp_spec : string; rp_checks : check list; rp_ok : bool }

let evaluate spec run =
  let checks =
    List.map
      (fun r ->
        let name = Printf.sprintf "%s.%s" r.ru_metric (quantile_name r.ru_quantile) in
        match metric_histogram run r.ru_metric with
        | None -> { ck_name = name; ck_observed = -1; ck_ceiling = r.ru_ceiling; ck_ok = false }
        | Some h ->
          let v = Histogram.percentile h r.ru_quantile in
          { ck_name = name; ck_observed = v; ck_ceiling = r.ru_ceiling; ck_ok = v <= r.ru_ceiling })
      spec.sp_rules
  in
  let checks =
    match spec.sp_rss_ceiling with
    | None -> checks
    | Some cap ->
      let peak = run.sv_stats.Alloc_stats.peak_resident_bytes in
      checks @ [ { ck_name = "rss.peak"; ck_observed = peak; ck_ceiling = cap; ck_ok = peak <= cap } ]
  in
  { rp_spec = spec.sp_name; rp_checks = checks; rp_ok = List.for_all (fun c -> c.ck_ok) checks }

let report_table report =
  let tbl =
    Table.create
      ~title:(Printf.sprintf "SLO report: %s (%s)" report.rp_spec (if report.rp_ok then "PASS" else "FAIL"))
      ~columns:
        [ ("objective", Table.Left); ("observed", Table.Right); ("ceiling", Table.Right); ("verdict", Table.Left) ]
  in
  List.iter
    (fun c ->
      Table.add_row tbl
        [
          c.ck_name;
          (if c.ck_observed < 0 then "unknown metric" else string_of_int c.ck_observed);
          string_of_int c.ck_ceiling;
          (if c.ck_ok then "ok" else "VIOLATED");
        ])
    report.rp_checks;
  tbl

(* --- metrics JSON (the CI gate's input) ---

   Gate values are flat integers, not distribution objects, because
   [hoard_trace check-json --baseline --sum-prefix] sums numeric values
   only; [slo.request.p99] must be directly summable. *)

let publish run metrics =
  let labels =
    [
      ("allocator", run.sv_allocator);
      ("profile", Server_mix.profile_name run.sv_profile);
      ("procs", string_of_int run.sv_nprocs);
    ]
  in
  let h = Server_mix.request_latencies run.sv_recorder in
  let reg name v = Metrics.register metrics ~name ~labels (fun () -> Metrics.Int v) in
  reg "slo.request.count" (Histogram.count h);
  reg "slo.request.p50" (Histogram.percentile h 0.5);
  reg "slo.request.p99" (Histogram.percentile h 0.99);
  reg "slo.request.p999" (Histogram.percentile h 0.999);
  reg "slo.request.max" (Option.value ~default:0 (Histogram.max_value h));
  reg "slo.rss.peak" run.sv_stats.Alloc_stats.peak_resident_bytes;
  reg "slo.run.cycles" run.sv_cycles;
  Latency_probe.publish run.sv_probe metrics

let metrics_json run =
  let metrics = Metrics.create () in
  publish run metrics;
  Printf.sprintf
    "{\"run\":{\"name\":%s,\"nprocs\":%d,\"cycles\":%d,\"events_recorded\":%d,\"events_dropped\":%d},\n\
     \"metrics\":%s}"
    (Perfetto.str (Printf.sprintf "server-%s/%s" (Server_mix.profile_name run.sv_profile) run.sv_allocator))
    run.sv_nprocs run.sv_cycles (Obs.total_recorded run.sv_obs) (Obs.total_dropped run.sv_obs)
    (Metrics.to_json metrics)

(* --- Perfetto export ---

   Counter samples are recorded by whichever simulated thread ran last,
   so raw timestamps are only *nearly* sorted (a long step on one
   processor can complete after a later-picked short step on another).
   Tracks are sorted before emission: Perfetto counter tracks must be
   monotone to render, and the round-trip test asserts it. *)

let sorted_by_ts xs = List.stable_sort (fun (a, _) (b, _) -> compare a b) xs

let timeline_counters p ~pid ~name tl =
  List.iter
    (fun (at, s) ->
      Perfetto.counter p ~name ~ts:at ~pid
        ~series:
          [
            ("held", s.Timeline.held / 1024);
            ("live", s.Timeline.live / 1024);
            ("resident", s.Timeline.resident / 1024);
          ])
    (sorted_by_ts (List.map (fun (s : Timeline.sample) -> (s.Timeline.at, s)) (Timeline.samples tl)))

let request_counters p ~pid recorder =
  List.iter
    (fun (ts, latency) -> Perfetto.counter p ~name:"request.latency" ~ts ~pid ~series:[ ("cycles", latency) ])
    (sorted_by_ts
       (List.map (fun (arrival, latency, _) -> (arrival + latency, latency)) (Server_mix.samples recorder)))

let request_spans p ~pid recorder =
  List.iter
    (fun (arrival, latency, who) ->
      Perfetto.span p ~name:"request" ~cat:"server" ~ts:arrival ~dur:(max 1 latency) ~pid ~tid:who ())
    (Server_mix.samples recorder)

let perfetto_json run =
  let p = Perfetto.create () in
  let pid = 0 in
  Perfetto.process_name p ~pid
    (Printf.sprintf "server-%s/%s (simulated machine)" (Server_mix.profile_name run.sv_profile)
       run.sv_allocator);
  for proc = 0 to run.sv_nprocs - 1 do
    Perfetto.thread_name p ~pid ~tid:proc (Printf.sprintf "proc%d" proc)
  done;
  request_spans p ~pid run.sv_recorder;
  request_counters p ~pid run.sv_recorder;
  timeline_counters p ~pid ~name:"memory KiB" run.sv_timeline;
  List.iter
    (fun (rname, ring) ->
      Event_ring.iter ring (fun (e : Event_ring.event) ->
          Perfetto.instant p ~name:(Event_ring.kind_name e.kind) ~cat:("ring." ^ rname) ~ts:e.at ~pid
            ~tid:(max 0 e.who)
            ~args:[ ("arg", string_of_int e.arg) ]
            ()))
    (Obs.rings run.sv_obs);
  Perfetto.to_json p
