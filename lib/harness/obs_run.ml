type bundle = {
  b_name : string;
  b_nprocs : int;
  b_cycles : int;
  b_stats : Alloc_stats.snapshot;
  b_obs : Obs.t;
  b_latency : Latency_probe.t;
  b_lock_stats : (string * int * int) list;
  b_contention : Contention.entry list;
  b_perfetto : string;
  b_heatmap : string;
}

(* Lock-hold spans retained for the Perfetto export. Long runs release
   locks millions of times; past this cap the trace stops gaining detail
   and only gains megabytes. *)
let max_spans = 50_000

let heatmap_of hoard =
  let classes = Hoard.size_classes hoard in
  let ncols = Size_class.count classes in
  let rows =
    Array.to_list (Hoard.fullness_profile hoard)
    |> List.map (fun (label, profile) ->
           ( label,
             Array.to_list profile
             |> List.map (fun (count, fullness) -> if count = 0 then None else Some fullness) ))
  in
  let legend =
    let b = Buffer.create 128 in
    Buffer.add_string b "columns (size class -> block size): ";
    Array.iteri
      (fun c size ->
        if c > 0 then Buffer.add_string b " ";
        Buffer.add_string b (Printf.sprintf "%d=%dB" c size))
      (Size_class.sizes classes);
    Buffer.contents b
  in
  Heatmap.render ~title:"superblock fullness (heap x size class, deciles)" ~ncols ~rows ~legend ()

let perfetto_of ~name ~nprocs ~cycles obs spans =
  let p = Perfetto.create () in
  Perfetto.process_name p ~pid:0 (name ^ " (simulated machine)");
  for proc = 0 to nprocs - 1 do
    Perfetto.thread_name p ~pid:0 ~tid:proc (Printf.sprintf "proc%d" proc)
  done;
  List.iter
    (fun (rname, ring) ->
      Event_ring.iter ring (fun (e : Event_ring.event) ->
          Perfetto.instant p ~name:(Event_ring.kind_name e.kind) ~cat:("ring." ^ rname) ~ts:e.at ~pid:0
            ~tid:(max 0 e.who)
            ~args:
              [
                ("heap", string_of_int e.heap);
                ("sclass", string_of_int e.sclass);
                ("arg", string_of_int e.arg);
              ]
            ()))
    (Obs.rings obs);
  List.iter
    (fun (lname, proc, t0, t1) ->
      Perfetto.span p ~name:lname ~cat:"lock" ~ts:t0 ~dur:(max 1 (t1 - t0)) ~pid:0 ~tid:proc ())
    spans;
  Perfetto.counter p ~name:"run" ~ts:cycles ~pid:0 ~series:[ ("cycles", cycles) ];
  Perfetto.to_json p

let run_spawned ?(config = Hoard_config.default) ?obs_config ?(cost = Cost_model.default)
    ?(lock_kind = Sim.Spin) ~name ~nprocs spawn =
  (* The platform must be built with the backend the config names — a
     reservoir config on the exact-reuse backend would still be correct,
     just not the run the caller asked to instrument. *)
  let sim = Sim.create ~cost ~lock_kind ~vmem_backend:config.Hoard_config.vmem_backend ~nprocs () in
  let pf = Sim.platform sim in
  let obs = Obs.create ?config:obs_config () in
  let hoard = Hoard.create ~config ~obs pf in
  let lock_ring = Obs.new_ring obs "locks" in
  let cont = Contention.create () in
  let spans = ref [] and nspans = ref 0 in
  Sim.set_lock_hooks sim
    ~on_acquire:(fun ~name ~proc ~spins ~at ->
      Contention.on_acquire cont ~name ~spins;
      if spins > 0 then
        Event_ring.record lock_ring ~at ~kind:Event_ring.Lock_acquire ~who:proc ~heap:(-1) ~sclass:(-1)
          ~arg:spins)
    ~on_release:(fun ~name ~proc ~acquired_at ~at ->
      if !nspans < max_spans then begin
        incr nspans;
        spans := (name, proc, acquired_at, at) :: !spans
      end)
    ();
  let probe, a = Latency_probe.wrap (Hoard.allocator hoard) in
  Latency_probe.publish probe (Obs.metrics obs);
  spawn sim pf a;
  Sim.run sim;
  a.Alloc_intf.check ();
  (* Return any front-end-cached blocks before reading the final figures;
     [check] is exact on both sides of the flush. *)
  Hoard.flush_caches hoard;
  a.Alloc_intf.check ();
  let lock_stats = Sim.lock_stats sim in
  let contention = Contention.finalize cont ~lock_stats ~spin_cost:cost.Cost_model.lock_spin in
  Contention.publish contention (Obs.metrics obs);
  let cycles = Sim.total_cycles sim in
  {
    b_name = name;
    b_nprocs = nprocs;
    b_cycles = cycles;
    b_stats = a.Alloc_intf.stats ();
    b_obs = obs;
    b_latency = probe;
    b_lock_stats = lock_stats;
    b_contention = contention;
    b_perfetto = perfetto_of ~name ~nprocs ~cycles obs (List.rev !spans);
    b_heatmap = heatmap_of hoard;
  }

let run_workload ?config ?obs_config ?cost ?lock_kind ?nthreads workload ~nprocs =
  let nthreads =
    match nthreads with
    | Some n -> n
    | None -> nprocs
  in
  run_spawned ?config ?obs_config ?cost ?lock_kind ~name:workload.Workload_intf.w_name ~nprocs
    (fun sim pf a -> workload.Workload_intf.spawn sim pf a ~nthreads)

let metrics_json b =
  Printf.sprintf
    "{\"run\":{\"name\":%s,\"nprocs\":%d,\"cycles\":%d,\"events_recorded\":%d,\"events_dropped\":%d},\n\
     \"metrics\":%s}"
    (Perfetto.str b.b_name) b.b_nprocs b.b_cycles (Obs.total_recorded b.b_obs) (Obs.total_dropped b.b_obs)
    (Metrics.to_json (Obs.metrics b.b_obs))

let contention_table ?(n = 10) b =
  let tbl =
    Table.create ~title:"lock contention (spin cycles, worst first)"
      ~columns:
        [
          ("lock", Table.Left);
          ("acqs", Table.Right);
          ("spins", Table.Right);
          ("spins/acq", Table.Right);
          ("contended", Table.Right);
          ("max spin", Table.Right);
          ("spin cycles", Table.Right);
        ]
  in
  List.iter
    (fun (e : Contention.entry) ->
      Table.add_row tbl
        [
          e.c_name;
          string_of_int e.c_acqs;
          string_of_int e.c_spins;
          Table.cell_float (Contention.spins_per_acq e);
          string_of_int e.c_contended;
          string_of_int e.c_max_spin;
          string_of_int e.c_spin_cycles;
        ])
    (Contention.top ~n b.b_contention);
  tbl
