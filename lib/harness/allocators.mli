(** The one registry of allocator factories every executable draws from
    (the benchmark harness, the trace tooling and the experiment suite
    used to carry their own copies of this list).

    [hoard] here is the paper-exact configuration ([front_end = 0]);
    [hoard-fe] is the same allocator with the lock-free front end turned
    on, registered separately so paper-fidelity sweeps never pick it up
    by accident. *)

val all : unit -> Alloc_intf.factory list
(** Every measurement factory, in presentation order. Checking
    configurations ({!extras}) are not included, so sweeps and tables
    stay on the eight comparison allocators. *)

val extras : unit -> Alloc_intf.factory list
(** Checking configurations ([hoard-san], [hoard-res]); resolvable
    through {!find}. *)

val labels : unit -> string list

val find : string -> Alloc_intf.factory option
(** Lookup by [Alloc_intf.label], across {!all} and {!extras}. *)

val base_config : string -> Hoard_config.t option
(** The {!Hoard_config} a hoard-family label's factory registers with;
    [None] for the non-hoard comparison allocators. *)

val with_overrides :
  (Hoard_config.t -> Hoard_config.t) -> string -> Alloc_intf.factory option
(** [with_overrides f label] rebuilds the labelled hoard-family factory
    over [f base_config] — how the CLIs apply [--set knob=value]
    overrides on top of an [--allocator] choice. [None] when the label
    is unknown or has no config ({!base_config}). *)

val help : unit -> string
(** One "label  description" line per factory, for [--allocator help]. *)

val front_end_default : int
(** Cache capacity [hoard-fe] registers with. *)

val large_cache_default : int
(** Per-bucket large-cache capacity [hoard-df] registers with. *)

val hoard_fe : ?front_end:int -> unit -> Alloc_intf.factory
(** A front-end-enabled hoard factory with an explicit capacity. *)

val hoard_df : ?front_end:int -> ?large_cache:int -> unit -> Alloc_intf.factory
(** [hoard-fe] plus the deferred remote-free lists
    (see {!Hoard_config.t.deferred}: CAS push, exchange reclaim, no
    owner-lock fallback) and the lock-free MPSC large-object cache
    (see {!Hoard_config.t.large_cache}). *)

val hoard_san : ?quarantine:int -> unit -> Alloc_intf.factory
(** A sanitizer-enabled hoard factory (see {!Hoard_config.t.sanitize}). *)

val hoard_res : ?reservoir:int -> ?vmem_backend:Vmem_backend.kind -> unit -> Alloc_intf.factory
(** A reservoir-enabled hoard factory (see {!Hoard_config.t.reservoir}):
    empty superblocks park decommitted instead of unmapping, up to
    [reservoir] (default 8) of them, on the [vmem_backend] (default
    {!Vmem_backend.First_fit}) reuse policy. Harnesses that build their
    own platform must honour [config.vmem_backend] when doing so
    (e.g. {!Runner.spec}'s [vmem_backend]). *)

val hoard_shelf : ?shelf:int -> ?reservoir:int -> unit -> Alloc_intf.factory
(** A hoard factory with the lock-free transfer path fully on: the
    empty-superblock shelf (see {!Hoard_config.t.shelf}, default cap 8)
    and the reservoir behind it, plus the front end — the configuration
    where refills and trims of empty superblocks bypass the global lock
    entirely. *)

val hoard_gl : ?front_end:int -> unit -> Alloc_intf.factory
(** [hoard-df] with the lock-free global heap (see
    {!Hoard_config.t.global} = [Lockfree]): heap 0's Dlist fullness
    groups replaced by the CAS-published {!Global_index}, so superblock
    transfer in either direction — and frees into global superblocks —
    never acquire the heap-0 lock. *)
