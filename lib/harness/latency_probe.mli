(** Per-operation latency instrumentation.

    Wraps an allocator so that every [malloc], [free], [malloc_batch],
    [free_batch] and [realloc] records its duration in simulated cycles
    (read from the executing processor's clock, so lock spinning and
    cache misses are included). Batch calls record the whole call, not
    per-block shares: a fill that has to take a heap lock is exactly the
    tail spike worth seeing. Only meaningful on the simulated platform —
    {!Sim.now} must be callable, i.e. the wrapped allocator must run
    inside simulated threads.

    Histograms use log-linear (HDR-style) buckets, so the p999 column of
    the published distributions is accurate to ~12.5% rather than the
    factor of two a power-of-two layout allows.

    This extends the paper's evaluation (which reports only completion
    times) with tail-latency visibility: heap contention shows up as a
    long malloc tail rather than just a slower total. *)

type t

val wrap : Alloc_intf.t -> t * Alloc_intf.t
(** The returned allocator behaves identically but records latencies. *)

val malloc_latencies : t -> Histogram.t

val free_latencies : t -> Histogram.t

val batch_malloc_latencies : t -> Histogram.t

val batch_free_latencies : t -> Histogram.t

val realloc_latencies : t -> Histogram.t

val dist_of : Histogram.t -> Metrics.value
(** Summarise a histogram as a {!Metrics.Dist}
    (count, mean, p50/p95/p99/p999, max). *)

val publish : t -> Metrics.t -> unit
(** Registers [latency.malloc], [latency.free], [latency.batch.malloc],
    [latency.batch.free] and [latency.realloc] distribution gauges
    (count, mean, p50/p95/p99/p999, max — in simulated cycles).
    Summaries are computed when the registry is read. *)
