(** Per-operation latency instrumentation.

    Wraps an allocator so that every [malloc] and [free] records its
    duration in simulated cycles (read from the executing processor's
    clock, so lock spinning and cache misses are included). Only
    meaningful on the simulated platform — {!Sim.now} must be callable,
    i.e. the wrapped allocator must run inside simulated threads.

    This extends the paper's evaluation (which reports only completion
    times) with tail-latency visibility: heap contention shows up as a
    long malloc tail rather than just a slower total. *)

type t

val wrap : Alloc_intf.t -> t * Alloc_intf.t
(** The returned allocator behaves identically but records latencies. *)

val malloc_latencies : t -> Histogram.t

val free_latencies : t -> Histogram.t

val publish : t -> Metrics.t -> unit
(** Registers [latency.malloc] and [latency.free] distribution gauges
    (count, mean, p50/p95/p99, max — in simulated cycles). Summaries are
    computed when the registry is read. *)
