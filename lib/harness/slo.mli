(** Latency-tail SLO evaluation for the server-mix scenarios.

    A declarative {!spec} states objectives — quantile ceilings over the
    run's latency histograms (per-request and per-op) and an optional
    peak-RSS ceiling — and {!evaluate} grades one instrumented
    {!server_run} against it. Reports render as a {!Table} for humans and
    as flat metrics JSON for CI: [hoard_trace check-json --baseline
    --sum-prefix slo.request.p99] compares the same file a passing run
    uploads, which is the whole p99 regression gate.

    All latencies are simulated cycles ({!Sim.now} deltas), so runs are
    bit-reproducible and the committed baselines are stable across hosts. *)

(** One objective: [metric]'s [quantile] must not exceed [ceiling] cycles.
    Metrics: ["request"] (per-request, from the workload recorder) or a
    {!Latency_probe} op — ["malloc"], ["free"], ["batch.malloc"],
    ["batch.free"], ["realloc"]. *)
type rule = { ru_metric : string; ru_quantile : float; ru_ceiling : int }

type spec = {
  sp_name : string;
  sp_rules : rule list;
  sp_rss_ceiling : int option;  (** bytes; checked against peak resident *)
}

val quantile_name : float -> string
(** 0.5 -> ["p50"], 0.999 -> ["p999"], otherwise ["q<value>"]. *)

val metric_names : string list

val spec_of_json : Json_lite.t -> (spec, string) result
(** Expected shape:
    [{"name":"front-tier","rules":[{"metric":"request","quantile":"p99",
    "ceiling":12000},...],"rss_ceiling":4194304}]. [quantile] accepts a
    number in (0,1] or one of "p50"/"p95"/"p99"/"p999"; [rss_ceiling] is
    optional. *)

val spec_of_string : string -> (spec, string) result

(** One instrumented server-mix run: the workload recorder, an op-level
    {!Latency_probe}, an RSS {!Timeline} and a request-event ring, all
    wired around whichever allocator the factory builds. *)
type server_run = {
  sv_profile : Server_mix.profile;
  sv_allocator : string;
  sv_nprocs : int;
  sv_cycles : int;
  sv_recorder : Server_mix.recorder;
  sv_probe : Latency_probe.t;
  sv_timeline : Timeline.t;
  sv_obs : Obs.t;
  sv_stats : Alloc_stats.snapshot;
}

val run_server :
  ?params:Server_mix.params -> ?every:int -> Alloc_intf.factory -> nprocs:int -> server_run
(** Runs the workload to completion on a fresh simulator; [every] is the
    timeline sampling period in allocator operations (default 16). The
    recorder's sink records [Req_arrival]/[Req_done] into the run's
    ["server"] ring, so ring totals cross-check recorder counts. *)

type check = {
  ck_name : string;  (** e.g. ["request.p999"] *)
  ck_observed : int;  (** -1 when the rule names an unknown metric *)
  ck_ceiling : int;
  ck_ok : bool;
}

type report = { rp_spec : string; rp_checks : check list; rp_ok : bool }

val evaluate : spec -> server_run -> report
(** A rule naming an unknown metric fails its check (a typo in a spec
    must not silently pass CI). *)

val report_table : report -> Table.t

val publish : server_run -> Metrics.t -> unit
(** Registers [slo.request.{count,p50,p99,p999,max}], [slo.rss.peak] and
    [slo.run.cycles] as flat integer gauges labelled
    [allocator]/[profile]/[procs] (flat so [check-json --sum-prefix] can
    sum them), plus the probe's op-latency distributions. *)

val metrics_json : server_run -> string
(** The [{"run":..,"metrics":[..]}] document [hoard_trace check-json
    --expect metrics] consumes; the CI gate diffs this file against a
    committed baseline. *)

val perfetto_json : server_run -> string
(** Trace with request spans per worker, a [request.latency] counter
    track, [held]/[live]/[resident] memory counter tracks (KiB) and every
    ring event as instants. Counter tracks are sorted to monotone
    timestamps before emission. *)
