(** The per-experiment index: one registered experiment per table/figure of
    the paper, plus the analysis-section blowup/false-sharing measurements
    and design ablations (see DESIGN.md section 4).

    Experiments render their results as {!Table.t} values; the CLI and the
    bench harness print or CSV-dump them. [Quick] scale shrinks workload
    parameters for fast smoke runs (used by tests); [Full] scale is what
    EXPERIMENTS.md records. *)

type scale = Quick | Full

type output = {
  tables : Table.t list;
  plot : string option;  (** ASCII chart of the figure's curves, when one applies *)
}

type t = {
  id : string;
  title : string;
  paper_ref : string;  (** which table/figure of the paper this regenerates *)
  describe : string;
  run : scale -> procs:int list option -> output;
}

val all : unit -> t list
(** Every experiment, in presentation order. *)

val find : string -> t option

val ids : unit -> string list

val default_procs : scale -> int list
(** Processor counts swept by the speedup figures: 1..8 for [Quick],
    1..14 for [Full] (the paper's Sun Enterprise had 14 processors). *)

val figure_allocators : unit -> Alloc_intf.factory list
(** The allocators the paper's figures compare (its hoard / ptmalloc /
    mtmalloc / Solaris set, as reproduced here). *)

val all_allocators : unit -> Alloc_intf.factory list
(** The figure set plus pure-private and private-threshold — every row of
    the taxonomy. *)

val allocator : string -> Alloc_intf.factory option
(** Look an allocator up by its label. *)

val server_params : Server_mix.profile -> scale -> Server_mix.params
(** The server-mix request mix [exp_server] runs at each scale (1200
    requests at [Quick], 8000 at [Full]); also what [hoard_bench serve]
    uses, so CLI runs and the experiment grade the same workload. *)

val server_allocators : unit -> Alloc_intf.factory list
(** The latency-tail comparison set: serial and private-ownership
    baselines plus hoard, hoard-fe, hoard-df and hoard-shelf. *)

val workload : string -> scale -> Workload_intf.t option
(** The benchmark suite by name ("threadtest", "shbench", "larson",
    "active-false", "passive-false", "bem", "barnes-hut",
    "producer-consumer", "producer-consumer-pipelined", "phased-blowup")
    at the given scale. *)

val workload_names : string list

val obs_workload : string -> scale -> Workload_intf.t
(** The representative workload an experiment id's [--metrics] companion
    pass instruments (e.g. ["fig_shbench"] -> shbench); defaults to
    threadtest for ids with no obvious single workload. *)
