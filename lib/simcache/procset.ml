(* Mutable fixed-width processor sets. One bit per processor, packed 62
   bits to a word: the directory used to keep a single [int] mask, which
   capped the machine at 62 processors; an array of words lifts that cap
   (128-processor machines fit in three words) while keeping membership
   tests and updates O(1). *)

type t = int array

let bits_per_word = 62

let make ~width =
  if width < 1 then invalid_arg "Procset.make: width must be >= 1";
  Array.make ((width + bits_per_word - 1) / bits_per_word) 0

let copy = Array.copy

let mem s p = s.(p / bits_per_word) land (1 lsl (p mod bits_per_word)) <> 0

let add s p = s.(p / bits_per_word) <- s.(p / bits_per_word) lor (1 lsl (p mod bits_per_word))

let remove s p = s.(p / bits_per_word) <- s.(p / bits_per_word) land lnot (1 lsl (p mod bits_per_word))

let clear s = Array.fill s 0 (Array.length s) 0

(* Set [s] to the singleton {p}. *)
let assign_singleton s p =
  clear s;
  add s p

let is_empty s =
  let rec loop i = i >= Array.length s || (s.(i) = 0 && loop (i + 1)) in
  loop 0

let popcount_word w =
  let rec loop m acc = if m = 0 then acc else loop (m land (m - 1)) (acc + 1) in
  loop w 0

let count s = Array.fold_left (fun acc w -> acc + popcount_word w) 0 s

(* Members other than [p] (the "remote copies" of a directory entry). *)
let count_excluding s p = count s - if mem s p then 1 else 0

let iter f s =
  Array.iteri
    (fun wi w ->
      let m = ref w in
      while !m <> 0 do
        let bit = !m land (- !m) in
        let rec idx b i = if b = 1 then i else idx (b lsr 1) (i + 1) in
        f ((wi * bits_per_word) + idx bit 0);
        m := !m land lnot bit
      done)
    s

let fold f s init =
  let acc = ref init in
  iter (fun p -> acc := f p !acc) s;
  !acc
