(** Mutable fixed-width processor sets (bit sets packed into an int
    array), replacing the single-[int] directory masks that capped the
    simulated machine at 62 processors. All operations are O(1) except
    [count]/[iter]/[fold], which are O(width / 62). *)

type t

val make : width:int -> t
(** Empty set able to hold processors [0 .. width - 1]. *)

val copy : t -> t

val mem : t -> int -> bool

val add : t -> int -> unit

val remove : t -> int -> unit

val clear : t -> unit

val assign_singleton : t -> int -> unit
(** [assign_singleton s p] makes [s] exactly [{p}]. *)

val is_empty : t -> bool

val count : t -> int

val count_excluding : t -> int -> int
(** Cardinality ignoring one processor: the "remote copy" count. *)

val iter : (int -> unit) -> t -> unit
(** Calls the function on each member in increasing order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
