(* Two-tier machine topology: [sockets] sockets of [cores_per_socket]
   processors each, numbered socket-major (processor p sits on socket
   p / cores_per_socket). A socket is both the coherence domain boundary
   and the memory node: traffic that leaves a socket pays the cost
   model's [cross_node] surcharge plus the steeper [cross_socket] one.
   The shared helper exists so the simulator, the cache directory and the
   experiments all derive the same placement instead of hand-rolling
   divisor tricks per call site. *)

type t = { sockets : int; cores_per_socket : int }

let make ~sockets ~cores_per_socket =
  if sockets < 1 then invalid_arg "Topology.make: sockets must be >= 1";
  if cores_per_socket < 1 then invalid_arg "Topology.make: cores_per_socket must be >= 1";
  { sockets; cores_per_socket }

let flat ~nprocs = make ~sockets:1 ~cores_per_socket:nprocs

let of_pair (sockets, cores_per_socket) = make ~sockets ~cores_per_socket

let sockets t = t.sockets

let cores_per_socket t = t.cores_per_socket

let nprocs t = t.sockets * t.cores_per_socket

let socket_of t p =
  if p < 0 || p >= nprocs t then
    invalid_arg
      (Printf.sprintf "Topology.socket_of: processor %d outside [0, %d)" p (nprocs t));
  p / t.cores_per_socket

let is_flat t = t.sockets = 1

let describe t =
  if is_flat t then Printf.sprintf "flat (%d procs)" (nprocs t)
  else Printf.sprintf "%d sockets x %d cores" t.sockets t.cores_per_socket

(* Check that a topology matches a machine width: every processor must
   have a socket, and no socket may be empty. *)
let check ~nprocs:n t =
  if nprocs t <> n then
    invalid_arg
      (Printf.sprintf "Topology.check: %s covers %d processors, machine has %d" (describe t)
         (nprocs t) n)
