type proc = int

type outcome = Hit | Cold_miss | Coherence_miss

type summary = {
  hits : int;
  cold_misses : int;
  coherence_misses : int;
  invalidations_sent : int;
  cross_node_events : int;
  cross_socket_events : int;
}

type proc_stats = {
  p_hits : int;
  p_cold_misses : int;
  p_coherence_misses : int;
  p_invalidations_sent : int;
  p_invalidations_received : int;
  p_evictions : int;
}

(* Directory entry: which processors hold the line, and whether one of them
   holds it exclusively (dirty). [mask] is a processor set (multi-word bit
   set, so machines wider than 62 processors work). *)
type line_state = { mask : Procset.t; mutable exclusive : bool }

type counters = {
  mutable hits : int;
  mutable cold : int;
  mutable coher : int;
  mutable inval_sent : int;
  mutable inval_recv : int;
  mutable evictions : int;
}

(* Per-processor LRU tracking for finite caches: a doubly-linked list in
   recency order plus a line -> node index. *)
type lru = { order : int Dlist.t; nodes : (int, int Dlist.node) Hashtbl.t }

type t = {
  line_size : int;
  line_shift : int;
  nprocs : int;
  capacity_lines : int option;
  nodes : int array; (* processor -> NUMA node, validated at creation *)
  sockets : int array; (* processor -> socket, validated at creation *)
  directory : (int, line_state) Hashtbl.t; (* line index -> state *)
  counters : counters array;
  lrus : lru array; (* used only when capacity_lines is set *)
  mutable cross_node_total : int;
  mutable cross_socket_total : int;
}

let max_procs = 1024

(* Materialise and validate a processor -> domain-id map. Out-of-range or
   non-contiguous ids would silently miscount [cross_node_events] (a
   processor mapped to a node nobody else can reach makes every event
   "remote"), so both are rejected loudly. *)
let validated_domain_map ~what ~nprocs f =
  let a = Array.init nprocs f in
  Array.iteri
    (fun p d ->
      if d < 0 || d >= nprocs then
        invalid_arg
          (Printf.sprintf "Cache.create: %s maps processor %d to id %d, outside [0, %d)" what p d
             nprocs))
    a;
  let max_id = Array.fold_left max 0 a in
  let seen = Array.make (max_id + 1) false in
  Array.iter (fun d -> seen.(d) <- true) a;
  Array.iteri
    (fun d used ->
      if not used then
        invalid_arg
          (Printf.sprintf "Cache.create: %s ids are non-contiguous: id %d appears but %d is unused"
             what max_id d))
    seen;
  a

let create ?(line_size = 64) ?capacity_lines ?(node_of = fun _ -> 0) ?(socket_of = fun _ -> 0)
    ~nprocs () =
  if line_size <= 0 || line_size land (line_size - 1) <> 0 then
    invalid_arg "Cache.create: line_size must be a positive power of two";
  if nprocs < 1 || nprocs > max_procs then
    invalid_arg (Printf.sprintf "Cache.create: nprocs must be in [1, %d]" max_procs);
  (match capacity_lines with
   | Some c when c < 1 -> invalid_arg "Cache.create: capacity_lines must be >= 1"
   | _ -> ());
  let rec log2 n = if n = 1 then 0 else 1 + log2 (n / 2) in
  {
    line_size;
    line_shift = log2 line_size;
    nprocs;
    capacity_lines;
    nodes = validated_domain_map ~what:"node_of" ~nprocs node_of;
    sockets = validated_domain_map ~what:"socket_of" ~nprocs socket_of;
    directory = Hashtbl.create 4096;
    counters =
      Array.init nprocs (fun _ -> { hits = 0; cold = 0; coher = 0; inval_sent = 0; inval_recv = 0; evictions = 0 });
    lrus = Array.init nprocs (fun _ -> { order = Dlist.create (); nodes = Hashtbl.create 256 });
    cross_node_total = 0;
    cross_socket_total = 0;
  }

let line_size t = t.line_size

let nprocs t = t.nprocs

let node_of t p = t.nodes.(p)

let socket_of t p = t.sockets.(p)

let line_of_addr t addr = addr lsr t.line_shift

let credit_invalidations t p remote =
  let n = Procset.count remote in
  if n > 0 then begin
    t.counters.(p).inval_sent <- t.counters.(p).inval_sent + n;
    Procset.iter (fun q -> t.counters.(q).inval_recv <- t.counters.(q).inval_recv + 1) remote
  end;
  n

let state_of t line =
  match Hashtbl.find_opt t.directory line with
  | Some s -> s
  | None ->
    let s = { mask = Procset.make ~width:t.nprocs; exclusive = false } in
    Hashtbl.replace t.directory line s;
    s

(* Coherence events whose peer lives on another domain (node or socket).
   For an invalidating write, each remote copy is an event; for a served
   miss, one event if any current holder is remote. *)
let cross_of_mask domains p mask =
  let my = domains.(p) in
  Procset.fold (fun q n -> if domains.(q) <> my then n + 1 else n) mask 0

let access_line t p line ~is_write =
  let s = state_of t line in
  let holds = Procset.mem s.mask p in
  let nremote = Procset.count_excluding s.mask p in
  if is_write then
    if holds && nremote = 0 then begin
      (* Already sole holder: silent upgrade to exclusive. *)
      s.exclusive <- true;
      t.counters.(p).hits <- t.counters.(p).hits + 1;
      (Hit, 0)
    end
    else if holds then begin
      (* Upgrade: kill the other copies but the data is local. *)
      Procset.remove s.mask p;
      let n = credit_invalidations t p s.mask in
      Procset.assign_singleton s.mask p;
      s.exclusive <- true;
      t.counters.(p).hits <- t.counters.(p).hits + 1;
      (Hit, n)
    end
    else if nremote > 0 then begin
      let n = credit_invalidations t p s.mask in
      Procset.assign_singleton s.mask p;
      s.exclusive <- true;
      t.counters.(p).coher <- t.counters.(p).coher + 1;
      (Coherence_miss, n)
    end
    else begin
      Procset.assign_singleton s.mask p;
      s.exclusive <- true;
      t.counters.(p).cold <- t.counters.(p).cold + 1;
      (Cold_miss, 0)
    end
  else if holds then begin
    t.counters.(p).hits <- t.counters.(p).hits + 1;
    (Hit, 0)
  end
  else if nremote > 0 then begin
    (* Served cache-to-cache; an exclusive holder is downgraded to shared
       (no invalidation: the remote copy survives). *)
    Procset.add s.mask p;
    s.exclusive <- false;
    t.counters.(p).coher <- t.counters.(p).coher + 1;
    (Coherence_miss, 0)
  end
  else begin
    Procset.assign_singleton s.mask p;
    s.exclusive <- false;
    t.counters.(p).cold <- t.counters.(p).cold + 1;
    (Cold_miss, 0)
  end

(* Record that processor [p] now caches [line]; evict its least recently
   used line when over capacity (the victim silently drops out of the
   directory — writebacks are modelled as free/asynchronous). *)
let lru_touch t p line =
  match t.capacity_lines with
  | None -> ()
  | Some capacity ->
    let lru = t.lrus.(p) in
    (match Hashtbl.find_opt lru.nodes line with
     | Some node -> Dlist.remove lru.order node
     | None -> ());
    Hashtbl.replace lru.nodes line (Dlist.push_front lru.order line);
    if Dlist.length lru.order > capacity then
      match Dlist.peek_back lru.order with
      | None -> ()
      | Some victim ->
        (match Hashtbl.find_opt lru.nodes victim with
         | Some node -> Dlist.remove lru.order node
         | None -> ());
        Hashtbl.remove lru.nodes victim;
        (match Hashtbl.find_opt t.directory victim with
         | Some st ->
           Procset.remove st.mask p;
           if Procset.is_empty st.mask then st.exclusive <- false
         | None -> ());
        t.counters.(p).evictions <- t.counters.(p).evictions + 1

let access t p ~addr ~len ~is_write =
  if len <= 0 then invalid_arg "Cache.access: len must be positive";
  if p < 0 || p >= t.nprocs then invalid_arg "Cache.access: bad processor id";
  let acc =
    ref
      {
        hits = 0;
        cold_misses = 0;
        coherence_misses = 0;
        invalidations_sent = 0;
        cross_node_events = 0;
        cross_socket_events = 0;
      }
  in
  let first = line_of_addr t addr and last = line_of_addr t (addr + len - 1) in
  for line = first to last do
    (* Snapshot the holder set before the transition to attribute
       cross-node traffic. *)
    let pre_mask =
      match Hashtbl.find_opt t.directory line with
      | Some s ->
        let m = Procset.copy s.mask in
        Procset.remove m p;
        m
      | None -> Procset.make ~width:t.nprocs
    in
    let outcome, invals = access_line t p line ~is_write in
    lru_touch t p line;
    let cross_counts domains =
      if is_write && invals > 0 then cross_of_mask domains p pre_mask
      else if outcome = Coherence_miss then min 1 (cross_of_mask domains p pre_mask)
      else 0
    in
    let cross = cross_counts t.nodes in
    let cross_sock = cross_counts t.sockets in
    t.cross_node_total <- t.cross_node_total + cross;
    t.cross_socket_total <- t.cross_socket_total + cross_sock;
    let a = !acc in
    acc :=
      {
        hits = (a.hits + if outcome = Hit then 1 else 0);
        cold_misses = (a.cold_misses + if outcome = Cold_miss then 1 else 0);
        coherence_misses = (a.coherence_misses + if outcome = Coherence_miss then 1 else 0);
        invalidations_sent = a.invalidations_sent + invals;
        cross_node_events = a.cross_node_events + cross;
        cross_socket_events = a.cross_socket_events + cross_sock;
      }
  done;
  !acc

let read t p ~addr ~len = access t p ~addr ~len ~is_write:false

let write t p ~addr ~len = access t p ~addr ~len ~is_write:true

let stats t p =
  let c = t.counters.(p) in
  {
    p_hits = c.hits;
    p_cold_misses = c.cold;
    p_coherence_misses = c.coher;
    p_invalidations_sent = c.inval_sent;
    p_invalidations_received = c.inval_recv;
    p_evictions = c.evictions;
  }

let total_cross_node_events t = t.cross_node_total

let total_cross_socket_events t = t.cross_socket_total

let total_invalidations t = Array.fold_left (fun acc c -> acc + c.inval_recv) 0 t.counters

let total_coherence_misses t = Array.fold_left (fun acc c -> acc + c.coher) 0 t.counters

let sharers t ~line =
  match Hashtbl.find_opt t.directory line with
  | None -> []
  | Some s -> List.rev (Procset.fold (fun q acc -> q :: acc) s.mask [])

let reset_stats t =
  Array.iter
    (fun c ->
      c.hits <- 0;
      c.cold <- 0;
      c.coher <- 0;
      c.inval_sent <- 0;
      c.inval_recv <- 0;
      c.evictions <- 0)
    t.counters
