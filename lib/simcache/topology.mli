(** Two-tier (socket/core) machine topology shared by the simulator, the
    cache directory and the experiments.

    Processors are numbered socket-major: processor [p] lives on socket
    [p / cores_per_socket]. The socket doubles as the memory node, so a
    coherence event that crosses a socket boundary is charged both the
    {!Cost_model.t.cross_node} and the steeper
    {!Cost_model.t.cross_socket} surcharge by the simulator. *)

type t

val make : sockets:int -> cores_per_socket:int -> t
(** Raises [Invalid_argument] unless both dimensions are >= 1. *)

val flat : nprocs:int -> t
(** Single-socket machine: no cross-socket traffic is possible. *)

val of_pair : int * int -> t
(** [(sockets, cores_per_socket)], the form [Sim.create ~topology] takes. *)

val sockets : t -> int

val cores_per_socket : t -> int

val nprocs : t -> int

val socket_of : t -> int -> int
(** Socket of a processor; raises [Invalid_argument] out of range. *)

val is_flat : t -> bool

val describe : t -> string

val check : nprocs:int -> t -> unit
(** Raises [Invalid_argument] when the topology's processor count does
    not equal the machine's. *)
