(** Cycle cost model for the simulated multiprocessor.

    The constants are loosely calibrated to a late-1990s bus-based SMP (the
    paper's Sun Enterprise 5000 class of machine): an L1/L2 hit is cheap, a
    miss that must consult memory or another processor's cache costs tens of
    cycles, and lock operations pay a coherence round-trip. Absolute values
    only scale the curves; the reproduced results depend on their ratios. *)

type t = {
  cache_hit : int;  (** load/store hitting in the local cache *)
  cold_miss : int;  (** line never cached anywhere: memory fetch *)
  coherence_miss : int;  (** line held elsewhere: cache-to-cache transfer *)
  invalidation : int;  (** cost charged to a writer per remote copy killed *)
  lock_uncontended : int;  (** acquiring a free lock (RMW round-trip) *)
  lock_spin : int;  (** one spin-retry iteration on a held lock *)
  lock_release : int;
  page_map : int;  (** OS call to map pages *)
  page_unmap : int;
  page_decommit : int;  (** [madvise(DONTNEED)]-style page drop: address space kept *)
  page_commit : int;  (** fault-in repopulating a decommitted region *)
  cross_node : int;
      (** additional cycles per coherence event (miss service or
          invalidation) that crosses a NUMA node boundary; only charged
          when the machine is given a topology (see {!Cache.create}). *)
  cross_socket : int;
      (** additional cycles per coherence event that crosses a socket
          boundary in the two-tier topology — remote-socket miss service
          and cross-socket invalidations ride the inter-socket link, so
          this is charged on top of [cross_node] and is distinctly
          larger; 0 on single-socket machines. *)
  atomic_op : int;
      (** one hardware atomic (CAS, fetch-and-add, atomic load/store):
          the RMW round-trip beyond the cache traffic on the operand's
          line, same order as an uncontended lock acquisition. *)
}

val default : t

val uniform_memory : t
(** Degenerate model where all memory accesses cost the same — used by
    tests to isolate scheduling behaviour from cache behaviour. *)

val cheap_memory : t
(** Fast-memory variant (misses ~2x a hit): a machine where the
    interconnect is nearly free. Used by the cost-model sensitivity
    analysis. *)

val expensive_memory : t
(** Slow-memory variant (misses and invalidations ~3x the default):
    a machine dominated by coherence traffic. *)
