type t = {
  cache_hit : int;
  cold_miss : int;
  coherence_miss : int;
  invalidation : int;
  lock_uncontended : int;
  lock_spin : int;
  lock_release : int;
  page_map : int;
  page_unmap : int;
  page_decommit : int;
  page_commit : int;
  cross_node : int;
  cross_socket : int;
  atomic_op : int;
}

let default =
  {
    cache_hit = 1;
    cold_miss = 60;
    coherence_miss = 80;
    invalidation = 25;
    lock_uncontended = 30;
    lock_spin = 40;
    lock_release = 10;
    page_map = 400;
    page_unmap = 300;
    page_decommit = 120;
    page_commit = 180;
    cross_node = 120;
    cross_socket = 300;
    atomic_op = 30;
  }

let uniform_memory =
  {
    cache_hit = 1;
    cold_miss = 1;
    coherence_miss = 1;
    invalidation = 0;
    lock_uncontended = 1;
    lock_spin = 1;
    lock_release = 1;
    page_map = 1;
    page_unmap = 1;
    page_decommit = 1;
    page_commit = 1;
    cross_node = 0;
    cross_socket = 0;
    atomic_op = 1;
  }

let cheap_memory =
  {
    cache_hit = 1;
    cold_miss = 3;
    coherence_miss = 4;
    invalidation = 1;
    lock_uncontended = 5;
    lock_spin = 6;
    lock_release = 2;
    page_map = 40;
    page_unmap = 30;
    page_decommit = 12;
    page_commit = 18;
    cross_node = 6;
    cross_socket = 15;
    atomic_op = 5;
  }

let expensive_memory =
  {
    cache_hit = 1;
    cold_miss = 180;
    coherence_miss = 240;
    invalidation = 75;
    lock_uncontended = 90;
    lock_spin = 120;
    lock_release = 30;
    page_map = 1200;
    page_unmap = 900;
    page_decommit = 360;
    page_commit = 540;
    cross_node = 360;
    cross_socket = 900;
    atomic_op = 90;
  }
