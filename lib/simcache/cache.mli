(** Directory-based cache-coherence simulator.

    Models the property false sharing is defined by: at any instant each
    cache line is either uncached, held Shared by a set of processors, or
    held Exclusive (dirty) by one processor. Reads and writes update the
    directory MESI-style and are classified as hits, cold misses (line
    never cached by this processor before and not supplied by a peer) or
    coherence misses (another processor's copy had to be downgraded or
    invalidated). Writes invalidate remote copies; every invalidation is
    counted on both sides, which is the direct measurement behind the
    paper's active/passive false-sharing experiments.

    Caches are infinite by default (no capacity evictions): the
    experiments target coherence traffic, not working-set effects, and an
    infinite cache gives a *lower bound* on misses that still exposes
    false sharing exactly. Pass [capacity_lines] for a finite LRU cache
    per processor. *)

type t

type proc = int

(** Classification of one line access. *)
type outcome =
  | Hit
  | Cold_miss  (** first touch of this line by this processor, no remote copy *)
  | Coherence_miss  (** a remote copy was downgraded or invalidated to serve it *)

type summary = {
  hits : int;
  cold_misses : int;
  coherence_misses : int;
  invalidations_sent : int;  (** remote copies killed by this access *)
  cross_node_events : int;
      (** coherence events (miss service or invalidation) whose peer sits
          on a different NUMA node; 0 on flat machines *)
  cross_socket_events : int;
      (** coherence events whose peer sits on a different socket (the
          two-tier topology's outer tier); 0 on single-socket machines *)
}
(** Aggregate over the (possibly several) lines an access spans. *)

type proc_stats = {
  p_hits : int;
  p_cold_misses : int;
  p_coherence_misses : int;
  p_invalidations_sent : int;
  p_invalidations_received : int;
  p_evictions : int;  (** capacity evictions (finite caches only) *)
}

val create :
  ?line_size:int ->
  ?capacity_lines:int ->
  ?node_of:(proc -> int) ->
  ?socket_of:(proc -> int) ->
  nprocs:int ->
  unit ->
  t
(** [line_size] defaults to 64 bytes and must be a power of two. [nprocs]
    must be in [\[1, 1024\]] (processor sets are multi-word bit sets).
    [node_of], when given, assigns each processor to a NUMA node;
    coherence events between processors on different nodes are counted in
    [cross_node_events] (the simulator charges them extra). [socket_of]
    likewise assigns each processor to a socket for the two-tier
    topology; socket-crossing events are counted in
    [cross_socket_events] and charged the steeper
    {!Cost_model.t.cross_socket} surcharge. Both maps are materialised
    and validated at creation: ids must lie in [\[0, nprocs)] and be
    contiguous (every id up to the maximum used), otherwise
    [Invalid_argument] is raised — a silently out-of-range id would
    miscount cross-domain events.
    [capacity_lines], when given, bounds each processor's cache to that
    many lines with LRU replacement; a line evicted for capacity must be
    fetched again on the next access (classified as a cold miss when no
    remote copy exists, a coherence miss otherwise). By default caches are
    infinite: the false-sharing experiments want pure coherence traffic. *)

val line_size : t -> int

val nprocs : t -> int

val read : t -> proc -> addr:int -> len:int -> summary

val write : t -> proc -> addr:int -> len:int -> summary

val stats : t -> proc -> proc_stats

val total_cross_node_events : t -> int

val total_cross_socket_events : t -> int

val node_of : t -> proc -> int
(** NUMA node of a processor under the validated map. *)

val socket_of : t -> proc -> int
(** Socket of a processor under the validated map. *)

val total_invalidations : t -> int
(** Sum over processors of invalidations received. *)

val total_coherence_misses : t -> int

val line_of_addr : t -> int -> int
(** Line index containing an address (for tests). *)

val sharers : t -> line:int -> proc list
(** Processors currently holding the line (empty if uncached). *)

val reset_stats : t -> unit
(** Zeroes all counters; directory state is preserved. *)
