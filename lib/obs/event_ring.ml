type kind =
  | Sb_map
  | Sb_unmap
  | Sb_from_global
  | Sb_to_global
  | Emptiness_cross
  | Remote_free
  | Large_map
  | Large_unmap
  | Lock_acquire
  | Cache_hit
  | Cache_flush
  | Remote_enqueue
  | Remote_drain
  | Decommit
  | Recommit
  | Shelf_push
  | Shelf_pop
  | Remote_forward
  | Req_arrival
  | Req_done
  | Large_cache_hit
  | Deferred_enqueue
  | Deferred_reclaim
  | Orphan_adopt
  | Global_push
  | Global_pop
  | Global_revalidate

let all_kinds =
  [ Sb_map; Sb_unmap; Sb_from_global; Sb_to_global; Emptiness_cross; Remote_free; Large_map; Large_unmap;
    Lock_acquire; Cache_hit; Cache_flush; Remote_enqueue; Remote_drain; Decommit; Recommit; Shelf_push;
    Shelf_pop; Remote_forward; Req_arrival; Req_done; Large_cache_hit; Deferred_enqueue; Deferred_reclaim;
    Orphan_adopt; Global_push; Global_pop; Global_revalidate ]

let nkinds = List.length all_kinds

let kind_index = function
  | Sb_map -> 0
  | Sb_unmap -> 1
  | Sb_from_global -> 2
  | Sb_to_global -> 3
  | Emptiness_cross -> 4
  | Remote_free -> 5
  | Large_map -> 6
  | Large_unmap -> 7
  | Lock_acquire -> 8
  | Cache_hit -> 9
  | Cache_flush -> 10
  | Remote_enqueue -> 11
  | Remote_drain -> 12
  | Decommit -> 13
  | Recommit -> 14
  | Shelf_push -> 15
  | Shelf_pop -> 16
  | Remote_forward -> 17
  | Req_arrival -> 18
  | Req_done -> 19
  | Large_cache_hit -> 20
  | Deferred_enqueue -> 21
  | Deferred_reclaim -> 22
  | Orphan_adopt -> 23
  | Global_push -> 24
  | Global_pop -> 25
  | Global_revalidate -> 26

let kind_of_index = function
  | 0 -> Sb_map
  | 1 -> Sb_unmap
  | 2 -> Sb_from_global
  | 3 -> Sb_to_global
  | 4 -> Emptiness_cross
  | 5 -> Remote_free
  | 6 -> Large_map
  | 7 -> Large_unmap
  | 8 -> Lock_acquire
  | 9 -> Cache_hit
  | 10 -> Cache_flush
  | 11 -> Remote_enqueue
  | 12 -> Remote_drain
  | 13 -> Decommit
  | 14 -> Recommit
  | 15 -> Shelf_push
  | 16 -> Shelf_pop
  | 17 -> Remote_forward
  | 18 -> Req_arrival
  | 19 -> Req_done
  | 20 -> Large_cache_hit
  | 21 -> Deferred_enqueue
  | 22 -> Deferred_reclaim
  | 23 -> Orphan_adopt
  | 24 -> Global_push
  | 25 -> Global_pop
  | 26 -> Global_revalidate
  | i -> invalid_arg (Printf.sprintf "Event_ring.kind_of_index: %d" i)

let kind_name = function
  | Sb_map -> "sb_map"
  | Sb_unmap -> "sb_unmap"
  | Sb_from_global -> "sb_from_global"
  | Sb_to_global -> "sb_to_global"
  | Emptiness_cross -> "emptiness_cross"
  | Remote_free -> "remote_free"
  | Large_map -> "large_map"
  | Large_unmap -> "large_unmap"
  | Lock_acquire -> "lock_acquire"
  | Cache_hit -> "cache_hit"
  | Cache_flush -> "cache_flush"
  | Remote_enqueue -> "remote_enqueue"
  | Remote_drain -> "remote_drain"
  | Decommit -> "decommit"
  | Recommit -> "recommit"
  | Shelf_push -> "shelf_push"
  | Shelf_pop -> "shelf_pop"
  | Remote_forward -> "remote_forward"
  | Req_arrival -> "req_arrival"
  | Req_done -> "req_done"
  | Large_cache_hit -> "large_cache_hit"
  | Deferred_enqueue -> "deferred_enqueue"
  | Deferred_reclaim -> "deferred_reclaim"
  | Orphan_adopt -> "orphan_adopt"
  | Global_push -> "global_push"
  | Global_pop -> "global_pop"
  | Global_revalidate -> "global_revalidate"

type event = { at : int; kind : kind; who : int; heap : int; sclass : int; arg : int }

(* Struct-of-arrays so that recording an event is five plain int stores and
   never allocates: the contract is the same as an [Alloc_stats] shard —
   every [record] happens under the lock of the ring's domain. *)
type t = {
  cap : int;
  e_at : int array;
  e_kind : int array;
  e_who : int array;
  e_heap : int array;
  e_sclass : int array;
  e_arg : int array;
  counts : int array; (* per-kind totals, exact even after wrap-around *)
  mutable n : int; (* total events ever recorded *)
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Event_ring.create: capacity must be >= 1";
  {
    cap = capacity;
    e_at = Array.make capacity 0;
    e_kind = Array.make capacity 0;
    e_who = Array.make capacity 0;
    e_heap = Array.make capacity 0;
    e_sclass = Array.make capacity 0;
    e_arg = Array.make capacity 0;
    counts = Array.make nkinds 0;
    n = 0;
  }

let capacity t = t.cap

let record t ~at ~kind ~who ~heap ~sclass ~arg =
  let i = t.n mod t.cap in
  t.e_at.(i) <- at;
  t.e_kind.(i) <- kind_index kind;
  t.e_who.(i) <- who;
  t.e_heap.(i) <- heap;
  t.e_sclass.(i) <- sclass;
  t.e_arg.(i) <- arg;
  t.counts.(kind_index kind) <- t.counts.(kind_index kind) + 1;
  t.n <- t.n + 1

let recorded t = t.n

let dropped t = max 0 (t.n - t.cap)

let retained t = min t.n t.cap

let recorded_kind t kind = t.counts.(kind_index kind)

let event_at t i =
  {
    at = t.e_at.(i);
    kind = kind_of_index t.e_kind.(i);
    who = t.e_who.(i);
    heap = t.e_heap.(i);
    sclass = t.e_sclass.(i);
    arg = t.e_arg.(i);
  }

(* Oldest retained event first. *)
let iter t f =
  let len = retained t in
  let start = if t.n <= t.cap then 0 else t.n mod t.cap in
  for k = 0 to len - 1 do
    f (event_at t ((start + k) mod t.cap))
  done

let to_list t =
  let acc = ref [] in
  iter t (fun e -> acc := e :: !acc);
  List.rev !acc
