(** Per-lock-domain event rings: the allocator's internal events
    (superblock transfers, emptiness crossings, remote frees, OS calls,
    contended lock acquisitions) captured as they happen.

    Concurrency contract — the same as an [Alloc_stats] shard: a ring
    belongs to one lock domain (a heap, the large path, the simulator),
    and {!record} must only be called while holding that domain's lock.
    Recording is a handful of plain int stores into preallocated arrays
    and never allocates, so a ring on the hot path costs a few cache
    lines, not a traversal.

    Rings have fixed capacity; when full they wrap, overwriting the oldest
    events. Per-kind totals ({!recorded_kind}) are maintained separately
    and stay exact even after wrap-around, which is what the event-count
    invariants (ring totals == stats counter deltas) are checked against. *)

(** The event taxonomy (see docs/observability.md). *)
type kind =
  | Sb_map  (** fresh superblock mapped from the OS; [arg] = bytes *)
  | Sb_unmap  (** empty superblock returned to the OS; [arg] = bytes *)
  | Sb_from_global  (** superblock transfer, global heap -> [heap] *)
  | Sb_to_global  (** superblock transfer, [heap] -> global heap *)
  | Emptiness_cross  (** [heap] crossed the emptiness threshold; [arg] = u bytes *)
  | Remote_free  (** a free into [heap] by a thread of another heap *)
  | Large_map  (** large-object allocation mapped; [arg] = bytes *)
  | Large_unmap  (** large-object free unmapped; [arg] = bytes *)
  | Lock_acquire  (** contended lock acquisition; [arg] = spin count *)
  | Cache_hit  (** malloc served from the thread's front-end cache *)
  | Cache_flush  (** front-end cache flushed blocks; [arg] = block count *)
  | Remote_enqueue  (** block pushed onto [heap]'s remote-free queue; [arg] = addr *)
  | Remote_drain  (** [heap] drained its remote-free queue; [arg] = block count *)
  | Decommit  (** region's pages returned to the OS, address space kept; [arg] = bytes *)
  | Recommit  (** decommitted region re-populated for reuse; [arg] = bytes *)
  | Shelf_push  (** empty superblock CAS-pushed onto the lock-free shelf; [arg] = base *)
  | Shelf_pop  (** refill served by popping the shelf, no global lock; [arg] = base *)
  | Remote_forward  (** drain re-forwarded a migrated block to its new owner; [arg] = addr *)
  | Req_arrival  (** server-mix request arrived (scheduled or issued); [arg] = request id *)
  | Req_done  (** server-mix request completed; [arg] = latency in cycles *)
  | Large_cache_hit  (** large allocation served by cache take → commit; [arg] = bytes *)
  | Deferred_enqueue  (** block CAS-pushed onto [heap]'s deferred free list; [arg] = addr *)
  | Deferred_reclaim  (** [heap] exchanged its deferred list empty; [arg] = block count *)
  | Orphan_adopt  (** an orphaned superblock adopted on a thread's exit path *)
  | Global_push  (** superblock published to the lock-free global index; [arg] = base *)
  | Global_pop  (** superblock acquired from the lock-free global index; [arg] = base *)
  | Global_revalidate
      (** a popped membership entry failed revalidation and was repushed;
          [arg] = base *)

val all_kinds : kind list

val kind_name : kind -> string
(** Stable snake_case name used in exports. *)

type event = {
  at : int;  (** timestamp: simulated cycles or host logical time *)
  kind : kind;
  who : int;  (** executing processor *)
  heap : int;  (** owning heap id; -1 when not heap-scoped *)
  sclass : int;  (** size class; -1 when not class-scoped *)
  arg : int;  (** kind-specific payload *)
}

type t

val create : capacity:int -> t

val capacity : t -> int

val record : t -> at:int -> kind:kind -> who:int -> heap:int -> sclass:int -> arg:int -> unit
(** Call under the ring's domain lock. *)

val recorded : t -> int
(** Total events ever recorded (including overwritten ones). *)

val dropped : t -> int
(** Events overwritten by wrap-around: [max 0 (recorded - capacity)]. *)

val retained : t -> int

val recorded_kind : t -> kind -> int
(** Exact per-kind total, unaffected by wrap-around. *)

val iter : t -> (event -> unit) -> unit
(** Retained events, oldest first. Call at quiescence. *)

val to_list : t -> event list
