(** ASCII heatmaps: a matrix of optional [0, 1] intensities (e.g. mean
    superblock fullness per heap × size class) rendered one character per
    cell — digits are deciles, ['-'] marks an absent cell. *)

val render :
  title:string ->
  ncols:int ->
  rows:(string * float option list) list ->
  ?legend:string ->
  unit ->
  string
(** Rows shorter than [ncols] are padded with absent cells. [legend] is
    appended verbatim (e.g. the column-index → size-class key). *)
