(** The observability context an instrumented allocator run threads
    through its stack: a set of named per-lock-domain {!Event_ring}s plus
    one shared {!Metrics} registry.

    Tracing is opt-in: allocators take an optional [Obs.t] at
    construction and, when absent, pay at most a branch per slow-path
    event site (the malloc/free fast paths carry no event sites at all).
    Ring creation and metric registration happen at construction time,
    single-threaded; ring writes then follow each ring's own lock-domain
    contract (see {!Event_ring}). *)

type config = { ring_capacity : int  (** events retained per ring *) }

val default_config : config
(** 65536 events per ring. *)

type t

val create : ?config:config -> unit -> t

val metrics : t -> Metrics.t

val new_ring : t -> string -> Event_ring.t
(** Creates and registers a named ring (e.g. ["heap3"], ["large"],
    ["locks"]); its running event count is published to the registry as
    [obs.events{ring=<name>}]. Raises on duplicate names. *)

val rings : t -> (string * Event_ring.t) list
(** In creation order. *)

val find_ring : t -> string -> Event_ring.t option

val total_recorded : t -> int

val total_dropped : t -> int

val count_kind : t -> Event_ring.kind -> int
(** Exact per-kind total across every ring (drop-proof). *)
