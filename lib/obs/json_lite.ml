type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

type state = { s : string; mutable pos : int }

let error st msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | _ -> error st (Printf.sprintf "expected %c" c)

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.s && String.sub st.s st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else error st (Printf.sprintf "expected %s" word)

let parse_string st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' ->
      advance st;
      (match peek st with
       | Some '"' -> Buffer.add_char b '"'; advance st
       | Some '\\' -> Buffer.add_char b '\\'; advance st
       | Some '/' -> Buffer.add_char b '/'; advance st
       | Some 'n' -> Buffer.add_char b '\n'; advance st
       | Some 't' -> Buffer.add_char b '\t'; advance st
       | Some 'r' -> Buffer.add_char b '\r'; advance st
       | Some 'b' -> Buffer.add_char b '\b'; advance st
       | Some 'f' -> Buffer.add_char b '\012'; advance st
       | Some 'u' ->
         advance st;
         if st.pos + 4 > String.length st.s then error st "bad \\u escape";
         let hex = String.sub st.s st.pos 4 in
         (match int_of_string_opt ("0x" ^ hex) with
          | None -> error st "bad \\u escape"
          | Some code ->
            (* Keep it simple: non-ASCII escapes render as '?'. *)
            Buffer.add_char b (if code < 128 then Char.chr code else '?');
            st.pos <- st.pos + 4)
       | _ -> error st "bad escape");
      go ()
    | Some c ->
      Buffer.add_char b c;
      advance st;
      go ()
  in
  go ();
  Buffer.contents b

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
  in
  let rec go () =
    match peek st with
    | Some c when is_num_char c ->
      advance st;
      go ()
    | _ -> ()
  in
  go ();
  let tok = String.sub st.s start (st.pos - start) in
  match float_of_string_opt tok with
  | Some f -> Num f
  | None -> error st (Printf.sprintf "bad number %S" tok)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error st "unexpected end of input"
  | Some '{' -> parse_obj st
  | Some '[' -> parse_arr st
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> error st (Printf.sprintf "unexpected character %c" c)

and parse_obj st =
  expect st '{';
  skip_ws st;
  if peek st = Some '}' then begin
    advance st;
    Obj []
  end
  else begin
    let rec members acc =
      skip_ws st;
      let key = parse_string st in
      skip_ws st;
      expect st ':';
      let v = parse_value st in
      skip_ws st;
      match peek st with
      | Some ',' ->
        advance st;
        members ((key, v) :: acc)
      | Some '}' ->
        advance st;
        List.rev ((key, v) :: acc)
      | _ -> error st "expected , or } in object"
    in
    Obj (members [])
  end

and parse_arr st =
  expect st '[';
  skip_ws st;
  if peek st = Some ']' then begin
    advance st;
    Arr []
  end
  else begin
    let rec elements acc =
      let v = parse_value st in
      skip_ws st;
      match peek st with
      | Some ',' ->
        advance st;
        elements (v :: acc)
      | Some ']' ->
        advance st;
        List.rev (v :: acc)
      | _ -> error st "expected , or ] in array"
    in
    Arr (elements [])
  end

let parse s =
  let st = { s; pos = 0 } in
  try
    let v = parse_value st in
    skip_ws st;
    if st.pos <> String.length s then Error (Printf.sprintf "trailing garbage at offset %d" st.pos)
    else Ok v
  with Parse_error m -> Error m

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_list = function
  | Arr xs -> Some xs
  | _ -> None

let to_float = function
  | Num f -> Some f
  | _ -> None

let to_string = function
  | Str s -> Some s
  | _ -> None
