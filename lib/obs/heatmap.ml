(* One character per cell: fullness deciles as digits keep the map pure
   ASCII and trivially greppable in CI logs. *)

let cell = function
  | None -> '-'
  | Some v ->
    let v = if Float.is_nan v then 0.0 else Float.max 0.0 (Float.min 1.0 v) in
    let d = int_of_float (v *. 9.999) in
    Char.chr (Char.code '0' + min 9 d)

let render ~title ~ncols ~rows ?legend () =
  let b = Buffer.create 512 in
  Buffer.add_string b title;
  Buffer.add_char b '\n';
  Buffer.add_string b "(cells: fullness decile 0-9, '-' = no superblocks)\n";
  let label_w = List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 rows in
  (* Column index ruler, tens then units, so wide maps stay readable. *)
  if ncols > 10 then begin
    Buffer.add_string b (String.make (label_w + 3) ' ');
    for c = 0 to ncols - 1 do
      Buffer.add_char b (if c mod 10 = 0 then Char.chr (Char.code '0' + c / 10 mod 10) else ' ')
    done;
    Buffer.add_char b '\n'
  end;
  Buffer.add_string b (String.make (label_w + 3) ' ');
  for c = 0 to ncols - 1 do
    Buffer.add_char b (Char.chr (Char.code '0' + (c mod 10)))
  done;
  Buffer.add_char b '\n';
  List.iter
    (fun (label, cells) ->
      Buffer.add_string b (Printf.sprintf "%-*s | " label_w label);
      let n = ref 0 in
      List.iter
        (fun v ->
          Buffer.add_char b (cell v);
          incr n)
        cells;
      for _ = !n to ncols - 1 do
        Buffer.add_char b '-'
      done;
      Buffer.add_char b '\n')
    rows;
  (match legend with
   | Some l ->
     Buffer.add_string b l;
     Buffer.add_char b '\n'
   | None -> ());
  Buffer.contents b
