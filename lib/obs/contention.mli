(** Lock-contention profiler: attributes spin work to individual named
    locks by combining the simulator's end-of-run [lock_stats] (exact
    acquisition and spin totals per lock) with per-acquisition spin events
    delivered through the simulator's lock hooks.

    The accumulator side ({!on_acquire}) is called from the scheduler, not
    from simulated threads, so it is single-threaded by construction. *)

type entry = {
  c_name : string;  (** lock name, e.g. ["hoard.heap3"] *)
  c_acqs : int;  (** successful acquisitions *)
  c_spins : int;  (** failed (spinning) attempts, all threads *)
  c_contended : int;  (** acquisitions that needed at least one spin *)
  c_max_spin : int;  (** worst spins paid by a single acquisition *)
  c_spin_cycles : int;  (** [spins * spin_cost] — the wasted cycles *)
}

type t

val create : unit -> t

val on_acquire : t -> name:string -> spins:int -> unit
(** Feed one successful acquisition and the spins it took. *)

val finalize : t -> lock_stats:(string * int * int) list -> spin_cost:int -> entry list
(** Merge with [(name, acquisitions, spins)] totals (the shape of
    [Sim.lock_stats]); entries sorted most-contended first. *)

val of_lock_stats : ?spin_cost:int -> (string * int * int) list -> entry list
(** Profile from end-of-run totals alone (no per-acquisition detail). *)

val spins_per_acq : entry -> float

val top : ?n:int -> entry list -> entry list

val publish : entry list -> Metrics.t -> unit
(** Register [lock.acquisitions]/[lock.spins]/[lock.spin_cycles] gauges,
    one label set per lock. *)
