type dist = {
  d_count : int;
  d_mean : float;
  d_p50 : int;
  d_p95 : int;
  d_p99 : int;
  d_p999 : int;
  d_max : int;
}

type value = Int of int | Float of float | Dist of dist

type metric = { m_name : string; m_labels : (string * string) list; m_read : unit -> value }

type t = { mutable rev_metrics : metric list }

let create () = { rev_metrics = [] }

let canonical_labels labels = List.sort compare labels

let register t ~name ?(labels = []) read =
  let labels = canonical_labels labels in
  if List.exists (fun m -> m.m_name = name && m.m_labels = labels) t.rev_metrics then
    invalid_arg (Printf.sprintf "Metrics.register: duplicate metric %S" name);
  t.rev_metrics <- { m_name = name; m_labels = labels; m_read = read } :: t.rev_metrics

let counter t ~name ?labels () =
  let r = ref 0 in
  register t ~name ?labels (fun () -> Int !r);
  r

let snapshot t = List.rev_map (fun m -> (m.m_name, m.m_labels, m.m_read ())) t.rev_metrics

let get t ~name ?(labels = []) () =
  let labels = canonical_labels labels in
  List.find_map
    (fun m -> if m.m_name = name && m.m_labels = labels then Some (m.m_read ()) else None)
    (List.rev t.rev_metrics)

(* --- export --- *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float f =
  if Float.is_nan f then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let json_value = function
  | Int i -> string_of_int i
  | Float f -> json_float f
  | Dist d ->
    Printf.sprintf "{\"count\":%d,\"mean\":%s,\"p50\":%d,\"p95\":%d,\"p99\":%d,\"p999\":%d,\"max\":%d}"
      d.d_count (json_float d.d_mean) d.d_p50 d.d_p95 d.d_p99 d.d_p999 d.d_max

let json_labels labels =
  "{"
  ^ String.concat "," (List.map (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (escape k) (escape v)) labels)
  ^ "}"

let to_json t =
  let b = Buffer.create 1024 in
  Buffer.add_string b "[";
  List.iteri
    (fun i (name, labels, v) ->
      if i > 0 then Buffer.add_string b ",";
      Buffer.add_string b
        (Printf.sprintf "\n  {\"name\":\"%s\",\"labels\":%s,\"value\":%s}" (escape name) (json_labels labels)
           (json_value v)))
    (snapshot t);
  Buffer.add_string b "\n]";
  Buffer.contents b

let label_string labels = String.concat ";" (List.map (fun (k, v) -> k ^ "=" ^ v) labels)

let csv_cell s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let b = Buffer.create 1024 in
  Buffer.add_string b "name,labels,value\n";
  let row name labels v =
    Buffer.add_string b
      (Printf.sprintf "%s,%s,%s\n" (csv_cell name) (csv_cell (label_string labels))
         (match v with
          | Int i -> string_of_int i
          | Float f -> Printf.sprintf "%g" f
          | Dist _ -> assert false))
  in
  List.iter
    (fun (name, labels, v) ->
      match v with
      | Int _ | Float _ -> row name labels v
      | Dist d ->
        row (name ^ ".count") labels (Int d.d_count);
        row (name ^ ".mean") labels (Float d.d_mean);
        row (name ^ ".p50") labels (Int d.d_p50);
        row (name ^ ".p95") labels (Int d.d_p95);
        row (name ^ ".p99") labels (Int d.d_p99);
        row (name ^ ".p999") labels (Int d.d_p999);
        row (name ^ ".max") labels (Int d.d_max))
    (snapshot t);
  Buffer.contents b
