(* Chrome trace-event / Perfetto JSON. Events accumulate as pre-rendered
   JSON fragments; the format does not require ordering, so emission order
   is whatever the caller produced. *)

type t = { buf : Buffer.t; mutable n : int }

let create () = { buf = Buffer.create 4096; n = 0 }

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let args_json args =
  "{" ^ String.concat "," (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%s" (escape k) v) args) ^ "}"

let str v = Printf.sprintf "\"%s\"" (escape v)

let add t fragment =
  if t.n > 0 then Buffer.add_string t.buf ",";
  Buffer.add_string t.buf "\n  ";
  Buffer.add_string t.buf fragment;
  t.n <- t.n + 1

let event_count t = t.n

let process_name t ~pid name =
  add t
    (Printf.sprintf "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":%s}}" pid
       (str name))

let thread_name t ~pid ~tid name =
  add t
    (Printf.sprintf "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":%s}}" pid tid
       (str name))

let instant t ~name ~cat ~ts ~pid ~tid ?(args = []) () =
  add t
    (Printf.sprintf "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%d,\"pid\":%d,\"tid\":%d%s}"
       (escape name) (escape cat) ts pid tid
       (if args = [] then "" else ",\"args\":" ^ args_json args))

let span t ~name ~cat ~ts ~dur ~pid ~tid ?(args = []) () =
  add t
    (Printf.sprintf "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%d,\"dur\":%d,\"pid\":%d,\"tid\":%d%s}"
       (escape name) (escape cat) ts dur pid tid
       (if args = [] then "" else ",\"args\":" ^ args_json args))

let counter t ~name ~ts ~pid ~series =
  add t
    (Printf.sprintf "{\"name\":\"%s\",\"ph\":\"C\",\"ts\":%d,\"pid\":%d,\"tid\":0,\"args\":%s}" (escape name) ts
       pid
       (args_json (List.map (fun (k, v) -> (k, string_of_int v)) series)))

let to_json t =
  Printf.sprintf "{\"traceEvents\":[%s\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"source\":\"hoard_repro\"}}"
    (Buffer.contents t.buf)
