(** A minimal JSON parser, just enough to validate the observability
    exports (metrics JSON, Perfetto trace JSON) without external
    dependencies. Numbers parse as floats; [\uXXXX] escapes outside ASCII
    decode to ['?'] (validation does not inspect them). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result

val member : string -> t -> t option
(** Object field lookup; [None] on missing key or non-object. *)

val to_list : t -> t list option

val to_float : t -> float option

val to_string : t -> string option
