type config = { ring_capacity : int }

let default_config = { ring_capacity = 1 lsl 16 }

type t = { config : config; metrics : Metrics.t; mutable rev_rings : (string * Event_ring.t) list }

let create ?(config = default_config) () =
  if config.ring_capacity < 1 then invalid_arg "Obs.create: ring_capacity must be >= 1";
  { config; metrics = Metrics.create (); rev_rings = [] }

let metrics t = t.metrics

let new_ring t name =
  if List.mem_assoc name t.rev_rings then invalid_arg (Printf.sprintf "Obs.new_ring: duplicate ring %S" name);
  let r = Event_ring.create ~capacity:t.config.ring_capacity in
  t.rev_rings <- (name, r) :: t.rev_rings;
  Metrics.register t.metrics ~name:"obs.events"
    ~labels:[ ("ring", name) ]
    (fun () -> Metrics.Int (Event_ring.recorded r));
  r

let rings t = List.rev t.rev_rings

let find_ring t name = List.assoc_opt name t.rev_rings

let total_recorded t = List.fold_left (fun acc (_, r) -> acc + Event_ring.recorded r) 0 t.rev_rings

let total_dropped t = List.fold_left (fun acc (_, r) -> acc + Event_ring.dropped r) 0 t.rev_rings

let count_kind t kind = List.fold_left (fun acc (_, r) -> acc + Event_ring.recorded_kind r kind) 0 t.rev_rings
