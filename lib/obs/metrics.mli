(** Metrics registry: named counters, gauges and latency distributions
    with string labels, snapshotted to JSON or CSV.

    Producers register once (at allocator or harness construction) and the
    registry reads them lazily at export time, so registration costs
    nothing on any hot path. Counter refs handed out by {!counter} follow
    the owning domain's locking discipline — increment them only under
    that lock, exactly like an [Alloc_stats] shard. Gauges are closures
    evaluated at {!snapshot}; call exports only at quiescent points. *)

type dist = {
  d_count : int;
  d_mean : float;
  d_p50 : int;
  d_p95 : int;
  d_p99 : int;
  d_p999 : int;
  d_max : int;
}

type value = Int of int | Float of float | Dist of dist

type t

val create : unit -> t

val register : t -> name:string -> ?labels:(string * string) list -> (unit -> value) -> unit
(** Registers a gauge read at export time. Raises [Invalid_argument] on a
    duplicate (name, labels) pair. *)

val counter : t -> name:string -> ?labels:(string * string) list -> unit -> int ref
(** Registers and returns a counter cell. Increment under the owning
    domain's lock. *)

val snapshot : t -> (string * (string * string) list * value) list
(** Every metric in registration order, labels sorted. *)

val get : t -> name:string -> ?labels:(string * string) list -> unit -> value option

val to_json : t -> string
(** A JSON array of [{"name":..,"labels":{..},"value":..}] objects;
    distributions export as objects with count/mean/percentile fields. *)

val to_csv : t -> string
(** [name,labels,value] rows; distributions flatten to [name.p50] etc. *)
