(** Chrome trace-event / Perfetto JSON export.

    Produces the classic [traceEvents] JSON that https://ui.perfetto.dev
    and chrome://tracing load directly. The convention used by the
    harness: one process (pid 0) for the simulated machine, one thread
    track per processor, allocator events as thread-scoped instants, lock
    holds as complete ("X") spans, and held-bytes curves as counter
    events. Timestamps are simulated cycles written into the [ts]
    microsecond field — absolute units are irrelevant for inspection. *)

type t

val create : unit -> t

val process_name : t -> pid:int -> string -> unit

val thread_name : t -> pid:int -> tid:int -> string -> unit

val instant : t -> name:string -> cat:string -> ts:int -> pid:int -> tid:int -> ?args:(string * string) list -> unit -> unit
(** Thread-scoped instant event. [args] values must be rendered JSON
    (use {!str} for strings). *)

val span : t -> name:string -> cat:string -> ts:int -> dur:int -> pid:int -> tid:int -> ?args:(string * string) list -> unit -> unit
(** Complete event ("X" phase): a [dur]-long slice starting at [ts]. *)

val counter : t -> name:string -> ts:int -> pid:int -> series:(string * int) list -> unit

val str : string -> string
(** Quote + escape a string for use as an [args] value. *)

val event_count : t -> int

val to_json : t -> string
