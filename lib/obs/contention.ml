type entry = {
  c_name : string;
  c_acqs : int;
  c_spins : int;
  c_contended : int;
  c_max_spin : int;
  c_spin_cycles : int;
}

(* Per-acquisition accumulator, fed by the simulator's lock hooks. *)
type acc = { mutable a_contended : int; mutable a_max_spin : int }

type t = { table : (string, acc) Hashtbl.t }

let create () = { table = Hashtbl.create 16 }

let on_acquire t ~name ~spins =
  if spins > 0 then begin
    let a =
      match Hashtbl.find_opt t.table name with
      | Some a -> a
      | None ->
        let a = { a_contended = 0; a_max_spin = 0 } in
        Hashtbl.add t.table name a;
        a
    in
    a.a_contended <- a.a_contended + 1;
    if spins > a.a_max_spin then a.a_max_spin <- spins
  end

let finalize t ~lock_stats ~spin_cost =
  let entries =
    List.map
      (fun (name, acqs, spins) ->
        let contended, max_spin =
          match Hashtbl.find_opt t.table name with
          | Some a -> (a.a_contended, a.a_max_spin)
          | None -> (0, 0)
        in
        {
          c_name = name;
          c_acqs = acqs;
          c_spins = spins;
          c_contended = contended;
          c_max_spin = max_spin;
          c_spin_cycles = spins * spin_cost;
        })
      lock_stats
  in
  List.stable_sort (fun a b -> compare (b.c_spin_cycles, b.c_acqs) (a.c_spin_cycles, a.c_acqs)) entries

let of_lock_stats ?(spin_cost = 1) lock_stats = finalize (create ()) ~lock_stats ~spin_cost

let spins_per_acq e = if e.c_acqs = 0 then 0.0 else float_of_int e.c_spins /. float_of_int e.c_acqs

let top ?(n = 10) entries =
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | e :: rest -> e :: take (k - 1) rest
  in
  take n entries

let publish entries metrics =
  List.iter
    (fun e ->
      let labels = [ ("lock", e.c_name) ] in
      Metrics.register metrics ~name:"lock.acquisitions" ~labels (fun () -> Metrics.Int e.c_acqs);
      Metrics.register metrics ~name:"lock.spins" ~labels (fun () -> Metrics.Int e.c_spins);
      Metrics.register metrics ~name:"lock.spin_cycles" ~labels (fun () -> Metrics.Int e.c_spin_cycles))
    entries
