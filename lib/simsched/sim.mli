(** Deterministic discrete-event multiprocessor simulator.

    Threads are ordinary OCaml closures that interact with the machine
    through effects ({!work}, {!read}, {!write}, lock operations, …). A
    scheduler resumes, at every step, one thread of the processor with the
    smallest virtual clock (ties broken by processor id), so a run is a
    pure function of its inputs — speedup curves are bit-reproducible on
    any host.

    Costs: each primitive advances the executing processor's clock
    according to {!Cost_model.t}; loads and stores are classified by the
    directory-based {!Cache} simulator (hit / cold miss / coherence miss /
    invalidations) and charged accordingly. Locks are spin locks: a failed
    acquisition re-reads the lock word and charges a spin-retry, so lock
    contention appears as both cycles and coherence traffic.

    This is the substrate substituting for the paper's 14-processor Sun
    Enterprise: scalability is measured in simulated cycles rather than
    wall-clock seconds. *)

type t

type lock

(** Lock discipline for every lock of a machine: plain test-and-set spin
    locks, or FIFO ticket locks (fair, slightly more coherence traffic). *)
type lock_kind = Spin | Ticket

type barrier

exception Deadlock of string
(** Raised by {!run} when live threads remain but none can make progress.
    The message names every stuck thread: for lock waiters, the lock and
    its current holder's thread id and processor; for barrier waiters,
    the barrier. Detected both when all run queues drain (threads parked
    on barriers) and when the machine degenerates into pure lock spinning
    with no holder able to run (spin-lock deadlock, e.g. AB–BA). *)

type step_report = {
  sr_step : int;  (** global step index of the reported step *)
  sr_proc : int;  (** processor that executed it *)
  sr_tid : int;  (** thread that executed it *)
  sr_sync : string option;  (** lock name or ["barrier"] if it was a sync op *)
  sr_spin : bool;  (** it was a failed spin retry *)
  sr_reads : int list;  (** cache lines read (line indices) *)
  sr_writes : int list;  (** cache lines written *)
}
(** What the last scheduler step did. Fed to a controlling strategy so
    model checkers can recognise synchronisation points (preemption
    points) and compute dependence between steps (conflicting lines). *)

type choice = {
  ch_step : int;  (** index the chosen step will have *)
  ch_runnable : int list;  (** processors that can make progress, ascending *)
  ch_spinning : int list;
      (** processors whose thread would only burn a failed lock-acquire
          retry; not legal choices (pure no-ops that would make
          exploration trees infinite) *)
  ch_last : step_report option;  (** [None] before the first step *)
}

val create :
  ?cost:Cost_model.t ->
  ?lock_kind:lock_kind ->
  ?fuzz_schedule:int ->
  ?control:(choice -> int) ->
  ?line_size:int ->
  ?cache_capacity_lines:int ->
  ?node_of:(int -> int) ->
  ?topology:int * int ->
  ?page_size:int ->
  ?vmem_backend:Vmem_backend.kind ->
  nprocs:int ->
  unit ->
  t
(** [cache_capacity_lines] bounds each processor's cache (LRU); by default
    caches are infinite (see {!Cache.create}).

    [node_of] assigns processors to NUMA nodes; coherence events crossing
    nodes pay the cost model's [cross_node] surcharge. The map is
    validated at creation (ids in range and contiguous — see
    {!Cache.create}).

    [topology (sockets, cores_per_socket)] builds the two-tier machine:
    processor [p] sits on socket [p / cores_per_socket], which is also
    its memory node, so remote-socket miss service and cross-socket
    invalidations pay [cross_node] {e plus} the distinctly larger
    [cross_socket] surcharge while intra-socket coherence pays neither.
    [sockets * cores_per_socket] must equal [nprocs]; mutually exclusive
    with [node_of].

    [fuzz_schedule seed] replaces min-clock scheduling with a seeded
    random choice among runnable processors: a schedule *fuzzer* for
    exploring interleavings in correctness tests. Runs remain
    deterministic per seed, but reported cycles are not meaningful
    timing.

    [control strategy] replaces min-clock scheduling with a pluggable
    strategy consulted at every step: it receives the current {!choice}
    (runnable processors plus a {!step_report} of the previous step) and
    must return a member of [ch_runnable]. This is the hook the
    [Check.Explorer] model checker drives. Controlled runs require at
    most one thread per processor ({!run} checks), so a processor id
    identifies a thread. Mutually exclusive with [fuzz_schedule]; cycles
    are not meaningful timing. *)

val nprocs : t -> int

val topology : t -> Topology.t option
(** The two-tier topology the machine was created with, if any. *)

val cache : t -> Cache.t

val vmem : t -> Vmem.t

val spawn : t -> ?proc:int -> (unit -> unit) -> int
(** [spawn t fn] registers a thread to run when {!run} is called; returns
    its thread id. Threads are placed round-robin on processors unless
    [proc] pins them. Must be called before {!run}. *)

val spawn_at : t -> at:int -> ?proc:int -> (unit -> unit) -> int
(** [spawn_at t ~at fn] registers a thread that joins its processor's run
    queue once the machine's virtual time reaches [at] (an idle machine
    jumps forward to it). Unlike {!spawn} it may also be called from
    inside a running thread, so workloads can create and retire thread
    populations mid-run (churn). A thread exits by returning from its
    body; {!live_threads} and {!peak_live_threads} track the resulting
    population. Placement and tid assignment follow {!spawn}. *)

val live_threads : t -> int
(** Threads started (or spawned for time 0) and not yet finished. *)

val peak_live_threads : t -> int
(** High-water mark of {!live_threads}: the P in the blowup envelope
    [O(U + P)] under thread churn — peak concurrently-live threads, not
    the total ever created. *)

val run : ?max_steps:int -> t -> unit
(** Executes all spawned threads to completion. [max_steps] (default
    [2_000_000_000]) bounds scheduler steps as a livelock backstop.
    Raises {!Deadlock} if every remaining thread is blocked. *)

val total_cycles : t -> int
(** Completion time: the maximum processor clock. *)

val proc_cycles : t -> int -> int

(** {2 Primitives — call only from inside a simulated thread} *)

val work : int -> unit

val read : addr:int -> len:int -> unit

val write : addr:int -> len:int -> unit

val self_proc : unit -> int

val self_tid : unit -> int

(** {2 Synchronisation} *)

val new_lock : t -> string -> lock
(** Creates a spin lock. Its lock word occupies a private cache line. May
    be called from inside or outside threads. *)

val acquire : lock -> unit

val release : lock -> unit
(** Raises [Invalid_argument] if the calling thread does not hold it. *)

val lock_acquisitions : lock -> int

val lock_spins : lock -> int
(** Number of failed (spinning) acquisition attempts. *)

val lock_stats : t -> (string * int * int) list
(** [(name, acquisitions, spins)] for every lock, in creation order. *)

val set_lock_hooks :
  t ->
  ?on_acquire:(name:string -> proc:int -> spins:int -> at:int -> unit) ->
  ?on_release:(name:string -> proc:int -> acquired_at:int -> at:int -> unit) ->
  unit ->
  unit
(** Observability hooks, invoked by the scheduler (host code, outside any
    simulated thread) and charging no simulated cycles, so installing them
    cannot change a run's timing. [on_acquire] fires after each successful
    lock acquisition with the number of failed (spinning) attempts this
    acquisition cost; [on_release] fires on release with the holder's
    clock at acquisition, yielding the lock-hold span
    [acquired_at..at]. Call before {!run}; omitted hooks are cleared. *)

val now : unit -> int
(** The executing processor's current clock, from inside a thread. *)

val new_barrier : t -> parties:int -> barrier

val barrier_wait : barrier -> unit

(** {2 Atomics}

    A simulated atomic machine word for lock-free protocols. Each
    operation is step-atomic — the whole read-modify-write happens inside
    one scheduler step, with preemption points before and after — charges
    {!Cost_model.t.atomic_op} plus the coherence traffic of touching the
    word's private cache line, and is visible to a controlling strategy
    as a sync point carrying the atomic's name (like a lock). *)

type atom

val new_atomic : t -> string -> int -> atom
(** [new_atomic t name init]. May be called from inside or outside
    threads (charges nothing). *)

val atomic_load : atom -> int

val atomic_store : atom -> int -> unit

val atomic_cas : atom -> expected:int -> desired:int -> bool
(** One hardware CAS: true iff the word held [expected] and now holds
    [desired]. *)

val atomic_faa : atom -> int -> int
(** Fetch-and-add; returns the value before the addition. *)

(** {2 Platform} *)

val platform : t -> Platform.t
(** The {!Platform.t} exposing this machine to allocators and workloads.
    Its [page_map]/[page_unmap] charge OS-call costs and account into the
    simulator's {!Vmem}. *)
