open Effect
open Effect.Deep

type lock_kind = Spin | Ticket

type lock = {
  l_name : string;
  l_addr : int; (* cache line holding the lock word *)
  l_kind : lock_kind;
  mutable holder : int option; (* tid *)
  mutable acqs : int;
  mutable spins : int;
  mutable waiters : int list; (* FIFO ticket queue (Ticket kind only) *)
  mutable acquired_at : int; (* holder's clock when it acquired (for hold spans) *)
}

(* What the scheduler should do next with a thread. *)
type pending =
  | Start of (unit -> unit) (* body not yet started *)
  | Resume of (unit -> unit) (* stored continuation step *)
  | Try_acquire of lock * (unit -> unit) (* spinning on a lock *)
  | Blocked (* parked on a barrier *)
  | Done

type thread = {
  tid : int;
  proc : int;
  mutable pending : pending;
  mutable cur_spins : int; (* spins paid so far for the acquisition in flight *)
}

type barrier = {
  b_addr : int;
  parties : int;
  mutable arrived : int;
  mutable waiting : (thread * (unit -> unit)) list;
}

type schedule = Exact | Fuzzed of Rng.t

type t = {
  nprocs : int;
  lock_kind : lock_kind;
  schedule : schedule;
  cost : Cost_model.t;
  cch : Cache.t;
  vm : Vmem.t;
  clocks : int array;
  runq : thread Queue.t array;
  mutable live : int;
  mutable next_tid : int;
  mutable next_meta : int; (* addresses for lock/barrier words *)
  mutable locks_rev : lock list;
  mutable started : bool;
  (* Observability hooks, called from the scheduler (not from simulated
     threads) so they may touch host state freely. They charge no cycles. *)
  mutable hook_acquire : (name:string -> proc:int -> spins:int -> at:int -> unit) option;
  mutable hook_release : (name:string -> proc:int -> acquired_at:int -> at:int -> unit) option;
}

exception Deadlock of string

type _ Effect.t +=
  | E_work : int -> unit Effect.t
  | E_read : (int * int) -> unit Effect.t
  | E_write : (int * int) -> unit Effect.t
  | E_acquire : lock -> unit Effect.t
  | E_release : lock -> unit Effect.t
  | E_barrier : barrier -> unit Effect.t
  | E_self : (int * int) Effect.t
  | E_now : int Effect.t
  | E_page_map : (int * int * int) -> int Effect.t (* bytes, align, owner *)
  | E_page_unmap : int -> unit Effect.t

let create ?(cost = Cost_model.default) ?(lock_kind = Spin) ?fuzz_schedule ?(line_size = 64)
    ?cache_capacity_lines ?node_of ?(page_size = 4096) ~nprocs () =
  if nprocs < 1 then invalid_arg "Sim.create: nprocs must be >= 1";
  {
    nprocs;
    lock_kind;
    schedule =
      (match fuzz_schedule with
       | None -> Exact
       | Some seed -> Fuzzed (Rng.create seed));
    cost;
    cch = Cache.create ~line_size ?capacity_lines:cache_capacity_lines ?node_of ~nprocs ();
    vm = Vmem.create ~page_size ();
    clocks = Array.make nprocs 0;
    runq = Array.init nprocs (fun _ -> Queue.create ());
    live = 0;
    next_tid = 0;
    next_meta = 0x0800_0000; (* below the Vmem base: never collides with heap data *)
    locks_rev = [];
    started = false;
    hook_acquire = None;
    hook_release = None;
  }

let nprocs t = t.nprocs

let cache t = t.cch

let vmem t = t.vm

let total_cycles t = Array.fold_left max 0 t.clocks

let proc_cycles t p = t.clocks.(p)

let fresh_meta_addr t =
  let a = t.next_meta in
  t.next_meta <- a + Cache.line_size t.cch;
  a

let new_lock t l_name =
  let l =
    {
      l_name;
      l_addr = fresh_meta_addr t;
      l_kind = t.lock_kind;
      holder = None;
      acqs = 0;
      spins = 0;
      waiters = [];
      acquired_at = 0;
    }
  in
  t.locks_rev <- l :: t.locks_rev;
  l

let lock_acquisitions l = l.acqs

let lock_spins l = l.spins

let lock_stats t = List.rev_map (fun l -> (l.l_name, l.acqs, l.spins)) t.locks_rev

let set_lock_hooks t ?on_acquire ?on_release () =
  t.hook_acquire <- on_acquire;
  t.hook_release <- on_release

let new_barrier t ~parties =
  if parties < 1 then invalid_arg "Sim.new_barrier: parties must be >= 1";
  { b_addr = fresh_meta_addr t; parties; arrived = 0; waiting = [] }

(* Thread-side primitives: just effects. *)
let work n = if n > 0 then perform (E_work n)

let read ~addr ~len = perform (E_read (addr, len))

let write ~addr ~len = perform (E_write (addr, len))

let self_proc () = fst (perform E_self)

let self_tid () = snd (perform E_self)

let now () = perform E_now

let acquire l = perform (E_acquire l)

let release l = perform (E_release l)

let barrier_wait b = perform (E_barrier b)

let charge_access t p (s : Cache.summary) =
  let c = t.cost in
  t.clocks.(p) <-
    t.clocks.(p)
    + (s.hits * c.cache_hit)
    + (s.cold_misses * c.cold_miss)
    + (s.coherence_misses * c.coherence_miss)
    + (s.invalidations_sent * c.invalidation)
    + (s.cross_node_events * c.cross_node)

let charge t p n = t.clocks.(p) <- t.clocks.(p) + n

(* The per-thread effect handler. Scheduling effects park the continuation
   in [th.pending] and return to the engine; [E_self] resumes inline since
   it has no cost. *)
let handler t th =
  {
    retc = (fun () -> th.pending <- Done; t.live <- t.live - 1);
    exnc = (fun e -> raise e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | E_work n ->
          Some
            (fun (k : (a, unit) continuation) ->
              charge t th.proc n;
              th.pending <- Resume (fun () -> continue k ()))
        | E_read (addr, len) ->
          Some
            (fun k ->
              charge_access t th.proc (Cache.read t.cch th.proc ~addr ~len);
              th.pending <- Resume (fun () -> continue k ()))
        | E_write (addr, len) ->
          Some
            (fun k ->
              charge_access t th.proc (Cache.write t.cch th.proc ~addr ~len);
              th.pending <- Resume (fun () -> continue k ()))
        | E_acquire l -> Some (fun k -> th.pending <- Try_acquire (l, fun () -> continue k ()))
        | E_release l ->
          Some
            (fun k ->
              if l.holder <> Some th.tid then
                discontinue k (Invalid_argument ("Sim.release: thread does not hold " ^ l.l_name))
              else begin
                l.holder <- None;
                charge_access t th.proc (Cache.write t.cch th.proc ~addr:l.l_addr ~len:8);
                charge t th.proc t.cost.lock_release;
                (match t.hook_release with
                 | Some f -> f ~name:l.l_name ~proc:th.proc ~acquired_at:l.acquired_at ~at:t.clocks.(th.proc)
                 | None -> ());
                th.pending <- Resume (fun () -> continue k ())
              end)
        | E_barrier b ->
          Some
            (fun k ->
              charge_access t th.proc (Cache.write t.cch th.proc ~addr:b.b_addr ~len:8);
              b.arrived <- b.arrived + 1;
              if b.arrived < b.parties then begin
                th.pending <- Blocked;
                b.waiting <- (th, fun () -> continue k ()) :: b.waiting
              end
              else begin
                (* Last arrival: release everyone at this instant. *)
                let now = t.clocks.(th.proc) in
                List.iter
                  (fun (w, resume) ->
                    w.pending <- Resume resume;
                    if t.clocks.(w.proc) < now then t.clocks.(w.proc) <- now;
                    Queue.push w t.runq.(w.proc))
                  b.waiting;
                b.waiting <- [];
                b.arrived <- 0;
                th.pending <- Resume (fun () -> continue k ())
              end)
        | E_self -> Some (fun k -> continue k (th.proc, th.tid))
        | E_now -> Some (fun k -> continue k t.clocks.(th.proc))
        | E_page_map (bytes, align, owner) ->
          Some
            (fun k ->
              charge t th.proc t.cost.page_map;
              let addr = Vmem.map t.vm ~owner ~bytes ~align () in
              th.pending <- Resume (fun () -> continue k addr))
        | E_page_unmap addr ->
          Some
            (fun k ->
              charge t th.proc t.cost.page_unmap;
              Vmem.unmap t.vm ~addr;
              th.pending <- Resume (fun () -> continue k ()))
        | _ -> None);
  }

let spawn t ?proc body =
  if t.started then invalid_arg "Sim.spawn: simulation already running";
  let tid = t.next_tid in
  t.next_tid <- tid + 1;
  let proc =
    match proc with
    | Some p ->
      if p < 0 || p >= t.nprocs then invalid_arg "Sim.spawn: bad processor";
      p
    | None -> tid mod t.nprocs
  in
  let th = { tid; proc; pending = Start body; cur_spins = 0 } in
  Queue.push th t.runq.(proc);
  t.live <- t.live + 1;
  tid

let step t th =
  match th.pending with
  | Start body -> match_with body () (handler t th)
  | Resume f -> f ()
  | Try_acquire (l, resume) ->
    let may_enter =
      match l.l_kind with
      | Spin -> l.holder = None
      | Ticket ->
        (* Take a ticket on the first attempt; enter only at the head of
           the queue (FIFO fairness). *)
        if not (List.mem th.tid l.waiters) then l.waiters <- l.waiters @ [ th.tid ];
        l.holder = None
        && (match l.waiters with
            | head :: _ -> head = th.tid
            | [] -> true)
    in
    if may_enter then begin
      (match l.l_kind with
       | Ticket -> l.waiters <- (match l.waiters with _ :: rest -> rest | [] -> [])
       | Spin -> ());
      l.holder <- Some th.tid;
      l.acqs <- l.acqs + 1;
      charge_access t th.proc (Cache.write t.cch th.proc ~addr:l.l_addr ~len:8);
      charge t th.proc t.cost.lock_uncontended;
      l.acquired_at <- t.clocks.(th.proc);
      (match t.hook_acquire with
       | Some f -> f ~name:l.l_name ~proc:th.proc ~spins:th.cur_spins ~at:t.clocks.(th.proc)
       | None -> ());
      th.cur_spins <- 0;
      resume ()
    end
    else begin
      (* Spin: re-read the lock word and burn a retry quantum. *)
      l.spins <- l.spins + 1;
      th.cur_spins <- th.cur_spins + 1;
      charge_access t th.proc (Cache.read t.cch th.proc ~addr:l.l_addr ~len:8);
      charge t th.proc t.cost.lock_spin
    end
  | Blocked | Done -> assert false

let pick_proc t =
  match t.schedule with
  | Exact ->
    let best = ref (-1) in
    for p = t.nprocs - 1 downto 0 do
      if not (Queue.is_empty t.runq.(p)) && (!best < 0 || t.clocks.(p) <= t.clocks.(!best)) then best := p
    done;
    !best
  | Fuzzed rng ->
    (* Correctness fuzzing: any runnable processor may go next. The run
       explores a legal interleaving (effect-granularity atomicity is
       unchanged) but its clocks are not meaningful as timing. *)
    let runnable = ref [] in
    for p = t.nprocs - 1 downto 0 do
      if not (Queue.is_empty t.runq.(p)) then runnable := p :: !runnable
    done;
    (match !runnable with
     | [] -> -1
     | ps -> List.nth ps (Rng.int rng (List.length ps)))

let run ?(max_steps = 2_000_000_000) t =
  if t.started then invalid_arg "Sim.run: already ran";
  t.started <- true;
  let steps = ref 0 in
  while t.live > 0 do
    incr steps;
    if !steps > max_steps then failwith "Sim.run: max_steps exceeded (livelock?)";
    let p = pick_proc t in
    if p < 0 then raise (Deadlock (Printf.sprintf "%d thread(s) blocked with empty run queues" t.live));
    let th = Queue.pop t.runq.(p) in
    step t th;
    (match th.pending with
     | Done | Blocked -> ()
     | Start _ | Resume _ | Try_acquire _ -> Queue.push th t.runq.(p))
  done

let platform t =
  {
    Platform.nprocs = t.nprocs;
    page_size = Vmem.page_size t.vm;
    self_proc;
    self_tid;
    work;
    read = (fun ~addr ~len -> read ~addr ~len);
    write = (fun ~addr ~len -> write ~addr ~len);
    new_lock =
      (fun name ->
        let l = new_lock t name in
        { Platform.acquire = (fun () -> acquire l); release = (fun () -> release l); lock_name = name });
    now;
    page_map = (fun ~bytes ~align ~owner -> perform (E_page_map (bytes, align, owner)));
    page_unmap = (fun ~addr -> perform (E_page_unmap addr));
    mapped_bytes = (fun ~owner -> Vmem.mapped_bytes_of_owner t.vm owner);
    peak_mapped_bytes = (fun ~owner -> Vmem.peak_bytes_of_owner t.vm owner);
  }
