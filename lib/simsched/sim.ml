open Effect
open Effect.Deep

type lock_kind = Spin | Ticket

type lock = {
  l_name : string;
  l_addr : int; (* cache line holding the lock word *)
  l_kind : lock_kind;
  mutable holder : int option; (* tid *)
  mutable acqs : int;
  mutable spins : int;
  mutable waiters : int list; (* FIFO ticket queue (Ticket kind only) *)
  mutable acquired_at : int; (* holder's clock when it acquired (for hold spans) *)
}

(* What the scheduler should do next with a thread. *)
type pending =
  | Start of (unit -> unit) (* body not yet started *)
  | Resume of (unit -> unit) (* stored continuation step *)
  | Try_acquire of lock * (unit -> unit) (* spinning on a lock *)
  | Blocked (* parked on a barrier *)
  | Done

type thread = {
  tid : int;
  proc : int;
  mutable pending : pending;
  mutable cur_spins : int; (* spins paid so far for the acquisition in flight *)
}

type barrier = {
  b_addr : int;
  parties : int;
  mutable arrived : int;
  mutable waiting : (thread * (unit -> unit)) list;
}

(* A simulated atomic word. The value lives in a host [Atomic.t] and every
   operation runs inside the effect handler — one scheduler step, so it is
   step-atomic (linearizable) by construction, with preemption points
   before and after. Like a lock word, it occupies a private cache line so
   coherence traffic (and step footprints, for the explorer's dependence
   analysis) are modelled. *)
type atom = {
  a_name : string;
  a_addr : int;
  a_cell : int Atomic.t;
}

(* The operation an [E_atomic] performs; CAS encodes its outcome as 0/1 in
   the effect's int result. *)
type atomic_op = A_load | A_store of int | A_cas of int * int | A_faa of int

(* What one scheduler step did: fed back to a controlling strategy so
   model checkers can recognise synchronisation points and compute
   dependence between steps (conflicting cache lines). *)
type step_report = {
  sr_step : int;
  sr_proc : int;
  sr_tid : int;
  sr_sync : string option;
  sr_spin : bool;
  sr_reads : int list;
  sr_writes : int list;
}

type choice = {
  ch_step : int;
  ch_runnable : int list;
  ch_spinning : int list;
  ch_last : step_report option;
}

type schedule = Exact | Fuzzed of Rng.t | Controlled of (choice -> int)

type t = {
  nprocs : int;
  topology : Topology.t option;
  lock_kind : lock_kind;
  schedule : schedule;
  cost : Cost_model.t;
  cch : Cache.t;
  vm : Vmem.t;
  clocks : int array;
  runq : thread Queue.t array;
  mutable live : int;
  (* Threads that have started (or were spawned for time 0) and not yet
     finished: the churn envelope's P is the peak of this gauge, not the
     total number of threads ever created. *)
  mutable cur_active : int;
  mutable peak_active : int;
  (* Deferred thread creations, sorted by (start time, tid): activated by
     the engine once the machine's next event reaches their start time. *)
  mutable pending_spawns : (int * thread) list;
  mutable next_tid : int;
  mutable next_meta : int; (* addresses for lock/barrier words *)
  mutable locks_rev : lock list;
  mutable started : bool;
  (* Observability hooks, called from the scheduler (not from simulated
     threads) so they may touch host state freely. They charge no cycles. *)
  mutable hook_acquire : (name:string -> proc:int -> spins:int -> at:int -> unit) option;
  mutable hook_release : (name:string -> proc:int -> acquired_at:int -> at:int -> unit) option;
  (* Every spawned thread, newest first: deadlock analysis and reporting. *)
  mutable threads_rev : thread list;
  (* Step bookkeeping for controlled scheduling. [observing] gates the
     per-step report collection so the default modes pay nothing. *)
  observing : bool;
  mutable step_idx : int;
  mutable last_report : step_report option;
  mutable rep_sync : string option;
  mutable rep_spin : bool;
  mutable rep_reads : int list;
  mutable rep_writes : int list;
  (* Consecutive failed-spin steps: when the whole machine does nothing but
     spin, run the (O(threads)) progress analysis and report deadlocks that
     spin locks would otherwise turn into max_steps livelocks. *)
  mutable spin_streak : int;
}

exception Deadlock of string

type _ Effect.t +=
  | E_work : int -> unit Effect.t
  | E_read : (int * int) -> unit Effect.t
  | E_write : (int * int) -> unit Effect.t
  | E_acquire : lock -> unit Effect.t
  | E_release : lock -> unit Effect.t
  | E_barrier : barrier -> unit Effect.t
  | E_self : (int * int) Effect.t
  | E_now : int Effect.t
  | E_page_map : (int * int * int) -> int Effect.t (* bytes, align, owner *)
  | E_page_unmap : int -> unit Effect.t
  | E_page_decommit : int -> unit Effect.t
  | E_page_commit : int -> unit Effect.t
  | E_atomic : (atom * atomic_op) -> int Effect.t

let create ?(cost = Cost_model.default) ?(lock_kind = Spin) ?fuzz_schedule ?control ?(line_size = 64)
    ?cache_capacity_lines ?node_of ?topology ?(page_size = 4096) ?(vmem_backend = Vmem_backend.Exact)
    ~nprocs () =
  if nprocs < 1 then invalid_arg "Sim.create: nprocs must be >= 1";
  if fuzz_schedule <> None && control <> None then
    invalid_arg "Sim.create: fuzz_schedule and control are mutually exclusive";
  if node_of <> None && topology <> None then
    invalid_arg "Sim.create: node_of and topology are mutually exclusive";
  let topology = Option.map Topology.of_pair topology in
  (match topology with Some topo -> Topology.check ~nprocs topo | None -> ());
  (* Under the two-tier topology the socket is also the memory node, so
     cross-socket traffic pays both surcharges (cross_node + the steeper
     cross_socket) while intra-socket coherence pays neither. *)
  let node_of, socket_of =
    match topology with
    | Some topo ->
      let f p = Topology.socket_of topo p in
      (Some f, Some f)
    | None -> (node_of, None)
  in
  {
    nprocs;
    topology;
    lock_kind;
    schedule =
      (match fuzz_schedule, control with
       | None, None -> Exact
       | Some seed, None -> Fuzzed (Rng.create seed)
       | None, Some f -> Controlled f
       | Some _, Some _ -> assert false);
    cost;
    cch = Cache.create ~line_size ?capacity_lines:cache_capacity_lines ?node_of ?socket_of ~nprocs ();
    vm = Vmem.create ~page_size ~backend:vmem_backend ();
    clocks = Array.make nprocs 0;
    runq = Array.init nprocs (fun _ -> Queue.create ());
    live = 0;
    cur_active = 0;
    peak_active = 0;
    pending_spawns = [];
    next_tid = 0;
    next_meta = 0x0800_0000; (* below the Vmem base: never collides with heap data *)
    locks_rev = [];
    started = false;
    hook_acquire = None;
    hook_release = None;
    threads_rev = [];
    observing = control <> None;
    step_idx = 0;
    last_report = None;
    rep_sync = None;
    rep_spin = false;
    rep_reads = [];
    rep_writes = [];
    spin_streak = 0;
  }

let nprocs t = t.nprocs

let topology t = t.topology

let live_threads t = t.cur_active

let peak_live_threads t = t.peak_active

let cache t = t.cch

let vmem t = t.vm

let total_cycles t = Array.fold_left max 0 t.clocks

let proc_cycles t p = t.clocks.(p)

let fresh_meta_addr t =
  let a = t.next_meta in
  t.next_meta <- a + Cache.line_size t.cch;
  a

let new_lock t l_name =
  let l =
    {
      l_name;
      l_addr = fresh_meta_addr t;
      l_kind = t.lock_kind;
      holder = None;
      acqs = 0;
      spins = 0;
      waiters = [];
      acquired_at = 0;
    }
  in
  t.locks_rev <- l :: t.locks_rev;
  l

let lock_acquisitions l = l.acqs

let lock_spins l = l.spins

let lock_stats t = List.rev_map (fun l -> (l.l_name, l.acqs, l.spins)) t.locks_rev

let set_lock_hooks t ?on_acquire ?on_release () =
  t.hook_acquire <- on_acquire;
  t.hook_release <- on_release

let new_barrier t ~parties =
  if parties < 1 then invalid_arg "Sim.new_barrier: parties must be >= 1";
  { b_addr = fresh_meta_addr t; parties; arrived = 0; waiting = [] }

let new_atomic t a_name init = { a_name; a_addr = fresh_meta_addr t; a_cell = Atomic.make init }

(* Thread-side primitives: just effects. *)
let work n = if n > 0 then perform (E_work n)

let read ~addr ~len = perform (E_read (addr, len))

let write ~addr ~len = perform (E_write (addr, len))

let self_proc () = fst (perform E_self)

let self_tid () = snd (perform E_self)

let now () = perform E_now

let acquire l = perform (E_acquire l)

let release l = perform (E_release l)

let barrier_wait b = perform (E_barrier b)

let atomic_load a = perform (E_atomic (a, A_load))

let atomic_store a v = ignore (perform (E_atomic (a, A_store v)))

let atomic_cas a ~expected ~desired = perform (E_atomic (a, A_cas (expected, desired))) = 1

let atomic_faa a n = perform (E_atomic (a, A_faa n))

let charge_access t p (s : Cache.summary) =
  let c = t.cost in
  t.clocks.(p) <-
    t.clocks.(p)
    + (s.hits * c.cache_hit)
    + (s.cold_misses * c.cold_miss)
    + (s.coherence_misses * c.coherence_miss)
    + (s.invalidations_sent * c.invalidation)
    + (s.cross_node_events * c.cross_node)
    + (s.cross_socket_events * c.cross_socket)

let charge t p n = t.clocks.(p) <- t.clocks.(p) + n

(* Step-report collection (controlled mode only): distinct cache lines the
   current step touched, and whether it interacted with a lock/barrier. *)
let note_lines t ~addr ~len ~wr =
  if t.observing then begin
    let ls = Cache.line_size t.cch in
    let first = addr / ls and last = (addr + max 1 len - 1) / ls in
    for line = first to last do
      if wr then begin
        if not (List.mem line t.rep_writes) then t.rep_writes <- line :: t.rep_writes
      end
      else if not (List.mem line t.rep_reads) then t.rep_reads <- line :: t.rep_reads
    done
  end

let note_sync t name = if t.observing then t.rep_sync <- Some name

(* The per-thread effect handler. Scheduling effects park the continuation
   in [th.pending] and return to the engine; [E_self] resumes inline since
   it has no cost. *)
let handler t th =
  {
    retc =
      (fun () ->
        th.pending <- Done;
        t.live <- t.live - 1;
        t.cur_active <- t.cur_active - 1);
    exnc = (fun e -> raise e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | E_work n ->
          Some
            (fun (k : (a, unit) continuation) ->
              charge t th.proc n;
              th.pending <- Resume (fun () -> continue k ()))
        | E_read (addr, len) ->
          Some
            (fun k ->
              note_lines t ~addr ~len ~wr:false;
              charge_access t th.proc (Cache.read t.cch th.proc ~addr ~len);
              th.pending <- Resume (fun () -> continue k ()))
        | E_write (addr, len) ->
          Some
            (fun k ->
              note_lines t ~addr ~len ~wr:true;
              charge_access t th.proc (Cache.write t.cch th.proc ~addr ~len);
              th.pending <- Resume (fun () -> continue k ()))
        | E_acquire l ->
          Some
            (fun k ->
              (* The parking step is the thread's publicly visible intent to
                 acquire: marking it as a sync point lets a controlling
                 strategy preempt between the intent and the attempt. *)
              note_sync t l.l_name;
              th.pending <- Try_acquire (l, fun () -> continue k ()))
        | E_release l ->
          Some
            (fun k ->
              if l.holder <> Some th.tid then
                discontinue k (Invalid_argument ("Sim.release: thread does not hold " ^ l.l_name))
              else begin
                l.holder <- None;
                note_sync t l.l_name;
                note_lines t ~addr:l.l_addr ~len:8 ~wr:true;
                charge_access t th.proc (Cache.write t.cch th.proc ~addr:l.l_addr ~len:8);
                charge t th.proc t.cost.lock_release;
                (match t.hook_release with
                 | Some f -> f ~name:l.l_name ~proc:th.proc ~acquired_at:l.acquired_at ~at:t.clocks.(th.proc)
                 | None -> ());
                th.pending <- Resume (fun () -> continue k ())
              end)
        | E_barrier b ->
          Some
            (fun k ->
              note_sync t "barrier";
              note_lines t ~addr:b.b_addr ~len:8 ~wr:true;
              charge_access t th.proc (Cache.write t.cch th.proc ~addr:b.b_addr ~len:8);
              b.arrived <- b.arrived + 1;
              if b.arrived < b.parties then begin
                th.pending <- Blocked;
                b.waiting <- (th, fun () -> continue k ()) :: b.waiting
              end
              else begin
                (* Last arrival: release everyone at this instant. *)
                let now = t.clocks.(th.proc) in
                List.iter
                  (fun (w, resume) ->
                    w.pending <- Resume resume;
                    if t.clocks.(w.proc) < now then t.clocks.(w.proc) <- now;
                    Queue.push w t.runq.(w.proc))
                  b.waiting;
                b.waiting <- [];
                b.arrived <- 0;
                th.pending <- Resume (fun () -> continue k ())
              end)
        | E_self -> Some (fun k -> continue k (th.proc, th.tid))
        | E_now -> Some (fun k -> continue k t.clocks.(th.proc))
        | E_page_map (bytes, align, owner) ->
          Some
            (fun k ->
              charge t th.proc t.cost.page_map;
              let addr = Vmem.map t.vm ~owner ~bytes ~align () in
              th.pending <- Resume (fun () -> continue k addr))
        | E_page_unmap addr ->
          Some
            (fun k ->
              charge t th.proc t.cost.page_unmap;
              Vmem.unmap t.vm ~addr;
              th.pending <- Resume (fun () -> continue k ()))
        | E_page_decommit addr ->
          Some
            (fun k ->
              charge t th.proc t.cost.page_decommit;
              Vmem.decommit t.vm ~addr;
              th.pending <- Resume (fun () -> continue k ()))
        | E_page_commit addr ->
          Some
            (fun k ->
              charge t th.proc t.cost.page_commit;
              Vmem.commit t.vm ~addr;
              th.pending <- Resume (fun () -> continue k ()))
        | E_atomic (a, op) ->
          Some
            (fun k ->
              (* The whole RMW happens inside this step: step-atomic, a
                 sync point the explorer can preempt around, with the
                 word's cache line in the step footprint so concurrent
                 operations on the same atomic conflict. *)
              note_sync t a.a_name;
              let wr = match op with A_load -> false | A_store _ | A_cas _ | A_faa _ -> true in
              note_lines t ~addr:a.a_addr ~len:8 ~wr;
              charge_access t th.proc
                (if wr then Cache.write t.cch th.proc ~addr:a.a_addr ~len:8
                 else Cache.read t.cch th.proc ~addr:a.a_addr ~len:8);
              charge t th.proc t.cost.atomic_op;
              let r =
                match op with
                | A_load -> Atomic.get a.a_cell
                | A_store v ->
                  Atomic.set a.a_cell v;
                  0
                | A_cas (expected, desired) ->
                  if Atomic.compare_and_set a.a_cell expected desired then 1 else 0
                | A_faa n -> Atomic.fetch_and_add a.a_cell n
              in
              th.pending <- Resume (fun () -> continue k r))
        | _ -> None);
  }

let mark_active t =
  t.cur_active <- t.cur_active + 1;
  if t.cur_active > t.peak_active then t.peak_active <- t.cur_active

let fresh_thread t ?proc body =
  let tid = t.next_tid in
  t.next_tid <- tid + 1;
  let proc =
    match proc with
    | Some p ->
      if p < 0 || p >= t.nprocs then invalid_arg "Sim.spawn: bad processor";
      p
    | None -> tid mod t.nprocs
  in
  let th = { tid; proc; pending = Start body; cur_spins = 0 } in
  t.threads_rev <- th :: t.threads_rev;
  t.live <- t.live + 1;
  th

let spawn t ?proc body =
  if t.started then invalid_arg "Sim.spawn: simulation already running";
  let th = fresh_thread t ?proc body in
  Queue.push th t.runq.(th.proc);
  mark_active t;
  th.tid

(* Deferred creation: the thread exists (it has a tid and a processor) but
   joins its run queue only once the machine reaches [at]. Callable both
   before [run] and from inside a running thread, so workloads can model
   churn — populations that are born, serve a burst, and retire. *)
let spawn_at t ~at ?proc body =
  if at < 0 then invalid_arg "Sim.spawn_at: at must be >= 0";
  let th = fresh_thread t ?proc body in
  let rec insert = function
    | [] -> [ (at, th) ]
    | (at', th') :: rest when at' < at || (at' = at && th'.tid < th.tid) -> (at', th') :: insert rest
    | later -> (at, th) :: later
  in
  t.pending_spawns <- insert t.pending_spawns;
  th.tid

(* Move every deferred spawn whose start time has come onto its run queue.
   "Has come" means at or before the machine's next event (the minimum
   clock over runnable processors); when the machine is idle the earliest
   pending spawn defines the next event and time jumps forward to it. *)
let activate_due_spawns t =
  match t.pending_spawns with
  | [] -> ()
  | _ ->
    let next_event () =
      let m = ref max_int in
      for p = 0 to t.nprocs - 1 do
        if (not (Queue.is_empty t.runq.(p))) && t.clocks.(p) < !m then m := t.clocks.(p)
      done;
      !m
    in
    let rec loop () =
      match t.pending_spawns with
      | (at, th) :: rest when at <= next_event () ->
        t.pending_spawns <- rest;
        if Queue.is_empty t.runq.(th.proc) && t.clocks.(th.proc) < at then t.clocks.(th.proc) <- at;
        Queue.push th t.runq.(th.proc);
        mark_active t;
        loop ()
      | _ -> ()
    in
    loop ()

(* Whether the thread could advance its pending acquisition right now: a
   spinner on a held lock (or a non-head ticket waiter) only burns a retry. *)
let acquire_can_enter l th =
  l.holder = None
  && (match l.l_kind with
      | Spin -> true
      | Ticket ->
        (match l.waiters with
         | [] -> true
         | head :: _ -> head = th.tid))

(* Whether any live thread could make progress if scheduled: false exactly
   when the machine is deadlocked (every thread parked on a barrier or
   spinning on a lock whose holder can itself never run again). A lock
   with no holder always admits progress: for spin locks any waiter may
   enter, for ticket locks the queue head (necessarily a live waiter). *)
let progress_possible t =
  List.exists
    (fun th ->
      match th.pending with
      | Start _ | Resume _ -> true
      | Try_acquire (l, _) -> l.holder = None
      | Blocked | Done -> false)
    t.threads_rev

let deadlock_message t =
  let live = List.filter (fun th -> match th.pending with Done -> false | _ -> true) (List.rev t.threads_rev) in
  let describe th =
    match th.pending with
    | Try_acquire (l, _) ->
      let holder =
        match l.holder with
        | None -> "nobody"
        | Some tid ->
          (match List.find_opt (fun h -> h.tid = tid) t.threads_rev with
           | Some h -> Printf.sprintf "tid %d (proc %d)" h.tid h.proc
           | None -> Printf.sprintf "tid %d" tid)
      in
      Printf.sprintf "tid %d (proc %d) waits for lock %S held by %s" th.tid th.proc l.l_name holder
    | Blocked -> Printf.sprintf "tid %d (proc %d) blocked on a barrier" th.tid th.proc
    | Start _ | Resume _ -> Printf.sprintf "tid %d (proc %d) runnable" th.tid th.proc
    | Done -> assert false
  in
  Printf.sprintf "%d thread(s) cannot progress: %s" (List.length live)
    (String.concat "; " (List.map describe live))

let step t th =
  match th.pending with
  | Start body ->
    t.spin_streak <- 0;
    match_with body () (handler t th)
  | Resume f ->
    t.spin_streak <- 0;
    f ()
  | Try_acquire (l, resume) ->
    let may_enter =
      match l.l_kind with
      | Spin -> l.holder = None
      | Ticket ->
        (* Take a ticket on the first attempt; enter only at the head of
           the queue (FIFO fairness). *)
        if not (List.mem th.tid l.waiters) then l.waiters <- l.waiters @ [ th.tid ];
        l.holder = None
        && (match l.waiters with
            | head :: _ -> head = th.tid
            | [] -> true)
    in
    if may_enter then begin
      (match l.l_kind with
       | Ticket -> l.waiters <- (match l.waiters with _ :: rest -> rest | [] -> [])
       | Spin -> ());
      l.holder <- Some th.tid;
      l.acqs <- l.acqs + 1;
      note_sync t l.l_name;
      note_lines t ~addr:l.l_addr ~len:8 ~wr:true;
      charge_access t th.proc (Cache.write t.cch th.proc ~addr:l.l_addr ~len:8);
      charge t th.proc t.cost.lock_uncontended;
      l.acquired_at <- t.clocks.(th.proc);
      (match t.hook_acquire with
       | Some f -> f ~name:l.l_name ~proc:th.proc ~spins:th.cur_spins ~at:t.clocks.(th.proc)
       | None -> ());
      th.cur_spins <- 0;
      resume ()
    end
    else begin
      (* Spin: re-read the lock word and burn a retry quantum. *)
      t.spin_streak <- t.spin_streak + 1;
      l.spins <- l.spins + 1;
      th.cur_spins <- th.cur_spins + 1;
      note_sync t l.l_name;
      if t.observing then t.rep_spin <- true;
      charge_access t th.proc (Cache.read t.cch th.proc ~addr:l.l_addr ~len:8);
      charge t th.proc t.cost.lock_spin
    end
  | Blocked | Done -> assert false

let pick_proc t =
  match t.schedule with
  | Exact ->
    let best = ref (-1) in
    for p = t.nprocs - 1 downto 0 do
      if not (Queue.is_empty t.runq.(p)) && (!best < 0 || t.clocks.(p) <= t.clocks.(!best)) then best := p
    done;
    !best
  | Fuzzed rng ->
    (* Correctness fuzzing: any runnable processor may go next. The run
       explores a legal interleaving (effect-granularity atomicity is
       unchanged) but its clocks are not meaningful as timing. *)
    let runnable = ref [] in
    for p = t.nprocs - 1 downto 0 do
      if not (Queue.is_empty t.runq.(p)) then runnable := p :: !runnable
    done;
    (match !runnable with
     | [] -> -1
     | ps -> List.nth ps (Rng.int rng (List.length ps)))
  | Controlled strategy ->
    (* Classify each non-empty processor by what its queue head would do if
       scheduled: a thread whose pending acquisition cannot enter right now
       would only burn a spin retry, so it is reported separately and is not
       a legal choice — this keeps exploration trees finite (a doomed spin is
       a pure no-op transition) and makes "no runnable processor" mean a real
       deadlock. Controlled mode requires at most one thread per processor
       (checked in [run]), so the queue head fully describes the processor. *)
    let runnable = ref [] and spinning = ref [] in
    for p = t.nprocs - 1 downto 0 do
      if not (Queue.is_empty t.runq.(p)) then begin
        let th = Queue.peek t.runq.(p) in
        match th.pending with
        | Try_acquire (l, _) when not (acquire_can_enter l th) -> spinning := p :: !spinning
        | _ -> runnable := p :: !runnable
      end
    done;
    (match !runnable with
     | [] -> -1
     | ps ->
       let choice =
         { ch_step = t.step_idx; ch_runnable = ps; ch_spinning = !spinning; ch_last = t.last_report }
       in
       let p = strategy choice in
       if not (List.mem p ps) then
         invalid_arg (Printf.sprintf "Sim: control strategy chose processor %d, not in runnable set" p);
       p)

let run ?(max_steps = 2_000_000_000) t =
  if t.started then invalid_arg "Sim.run: already ran";
  t.started <- true;
  if t.observing then
    Array.iter
      (fun q -> if Queue.length q > 1 then invalid_arg "Sim.run: controlled mode needs at most one thread per processor")
      t.runq;
  let steps = ref 0 in
  while t.live > 0 do
    incr steps;
    if !steps > max_steps then failwith "Sim.run: max_steps exceeded (livelock?)";
    activate_due_spawns t;
    let p = pick_proc t in
    if p < 0 then raise (Deadlock (deadlock_message t));
    let th = Queue.pop t.runq.(p) in
    if t.observing then begin
      t.rep_sync <- None;
      t.rep_spin <- false;
      t.rep_reads <- [];
      t.rep_writes <- []
    end;
    step t th;
    if t.observing then begin
      t.last_report <-
        Some
          {
            sr_step = t.step_idx;
            sr_proc = p;
            sr_tid = th.tid;
            sr_sync = t.rep_sync;
            sr_spin = t.rep_spin;
            sr_reads = t.rep_reads;
            sr_writes = t.rep_writes;
          };
      t.step_idx <- t.step_idx + 1
    end;
    (* Livelock-to-deadlock promotion for the timing modes: a long unbroken
       run of failed spin retries triggers a progress scan; if no live thread
       could ever advance, this is a deadlock that happens to keep the run
       queues busy (spinners never park), so report it as such. *)
    if t.spin_streak > (2 * t.live) + 8 then begin
      if progress_possible t then t.spin_streak <- 0
      else raise (Deadlock (deadlock_message t))
    end;
    (match th.pending with
     | Done | Blocked -> ()
     | Start _ | Resume _ | Try_acquire _ -> Queue.push th t.runq.(p))
  done

let platform t =
  {
    Platform.nprocs = t.nprocs;
    page_size = Vmem.page_size t.vm;
    self_proc;
    self_tid;
    work;
    read = (fun ~addr ~len -> read ~addr ~len);
    write = (fun ~addr ~len -> write ~addr ~len);
    new_lock =
      (fun name ->
        let l = new_lock t name in
        { Platform.acquire = (fun () -> acquire l); release = (fun () -> release l); lock_name = name });
    new_atomic =
      (fun name init ->
        let a = new_atomic t name init in
        {
          Platform.load = (fun () -> atomic_load a);
          store = (fun v -> atomic_store a v);
          cas = (fun ~expected ~desired -> atomic_cas a ~expected ~desired);
          faa = (fun n -> atomic_faa a n);
          (* Inspection hooks: read/write the cell directly, charge
             nothing, perturb no schedule (cf. page_residency). *)
          peek = (fun () -> Atomic.get a.a_cell);
          poke = (fun v -> Atomic.set a.a_cell v);
          atomic_name = name;
        });
    now;
    page_map = (fun ~bytes ~align ~owner -> perform (E_page_map (bytes, align, owner)));
    page_unmap = (fun ~addr -> perform (E_page_unmap addr));
    page_decommit = (fun ~addr -> perform (E_page_decommit addr));
    page_commit = (fun ~addr -> perform (E_page_commit addr));
    (* An inspection hook, not a machine op: reads the vmem directly,
       charges nothing, perturbs no schedule. *)
    page_residency = (fun ~addr -> Vmem.residency t.vm ~addr);
    mapped_bytes = (fun ~owner -> Vmem.mapped_bytes_of_owner t.vm owner);
    peak_mapped_bytes = (fun ~owner -> Vmem.peak_bytes_of_owner t.vm owner);
  }
