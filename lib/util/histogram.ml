type t = {
  bounds : int array;
  counts : int array; (* length = Array.length bounds + 1; last = overflow *)
  mutable n : int;
  mutable sum : int;
  mutable min_v : int;
  mutable max_v : int;
}

let create ~bounds =
  if Array.length bounds = 0 then invalid_arg "Histogram.create: empty bounds";
  Array.iteri
    (fun i b -> if i > 0 && bounds.(i - 1) >= b then invalid_arg "Histogram.create: bounds not increasing")
    bounds;
  {
    bounds;
    counts = Array.make (Array.length bounds + 1) 0;
    n = 0;
    sum = 0;
    min_v = max_int;
    max_v = min_int;
  }

let exponential_bounds ~lo ~hi =
  let rec collect acc b = if b > hi then List.rev acc else collect (b :: acc) (b * 2) in
  Array.of_list (collect [] (max 1 lo))

(* HDR-style log-linear bounds: each power-of-two span [b, 2b) is cut
   into [sub] equal linear sub-buckets, so the relative quantile error is
   bounded by 1/sub everywhere instead of the factor-of-two a pure
   power-of-two layout gives — the difference between a usable and a
   useless p999 on latency data. Sub-bucket widths below 1 collapse
   (small spans cannot be cut finer than integers), so the low end
   degenerates gracefully into exact integer buckets. *)
let log_linear_bounds ~lo ~hi ~sub =
  if sub < 1 then invalid_arg "Histogram.log_linear_bounds: sub must be >= 1";
  let lo = max 1 lo in
  let acc = ref [] in
  let b = ref lo in
  while !b <= hi do
    let span = !b in
    let step = max 1 (span / sub) in
    let s = ref span in
    while !s < 2 * span do
      acc := !s :: !acc;
      s := !s + step
    done;
    b := 2 * span
  done;
  (* Top edge: the last bucket below overflow ends at the next
     power-of-two boundary past [hi]. *)
  acc := !b :: !acc;
  Array.of_list (List.rev !acc)

let create_log_linear ~lo ~hi ~sub = create ~bounds:(log_linear_bounds ~lo ~hi ~sub)

(* Binary search for the first bound strictly greater than [x]. *)
let bucket_of t x =
  let lo = ref 0 and hi = ref (Array.length t.bounds) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if x < t.bounds.(mid) then hi := mid else lo := mid + 1
  done;
  !lo

let add t x =
  t.counts.(bucket_of t x) <- t.counts.(bucket_of t x) + 1;
  t.n <- t.n + 1;
  t.sum <- t.sum + x;
  if x < t.min_v then t.min_v <- x;
  if x > t.max_v then t.max_v <- x

let count t = t.n

let total t = t.sum

let min_value t = if t.n = 0 then None else Some t.min_v

let max_value t = if t.n = 0 then None else Some t.max_v

let mean t = if t.n = 0 then 0.0 else float_of_int t.sum /. float_of_int t.n

let percentile t q =
  if t.n = 0 then 0
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let target = int_of_float (ceil (q *. float_of_int t.n)) in
    let target = max 1 target in
    let acc = ref 0 and result = ref t.max_v in
    (try
       Array.iteri
         (fun i c ->
           acc := !acc + c;
           if !acc >= target then begin
             result := (if i = Array.length t.bounds then t.max_v else t.bounds.(i));
             raise Exit
           end)
         t.counts
     with Exit -> ());
    !result
  end

let buckets t =
  Array.mapi
    (fun i c ->
      let lo = if i = 0 then 0 else t.bounds.(i - 1) in
      let hi = if i = Array.length t.bounds then max_int else t.bounds.(i) in
      (lo, hi, c))
    t.counts

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  Array.iter
    (fun (lo, hi, c) ->
      if c > 0 then
        if hi = max_int then Format.fprintf fmt "[%d, inf): %d@," lo c
        else Format.fprintf fmt "[%d, %d): %d@," lo hi c)
    (buckets t);
  Format.fprintf fmt "n=%d mean=%.1f@]" t.n (mean t)
