type align = Left | Right

type row = Cells of string list | Separator

type t = {
  title : string;
  columns : (string * align) list;
  mutable rows : row list; (* reversed *)
}

let create ~title ~columns = { title; columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg
      (Printf.sprintf "Table.add_row (%s): %d cells, %d columns" t.title (List.length cells)
         (List.length t.columns));
  t.rows <- Cells cells :: t.rows

let add_int_row t label xs = add_row t (label :: List.map string_of_int xs)

let add_separator t = t.rows <- Separator :: t.rows

let rows t = List.rev t.rows

let widths t =
  let w = Array.of_list (List.map (fun (h, _) -> String.length h) t.columns) in
  List.iter
    (function
      | Separator -> ()
      | Cells cells -> List.iteri (fun i c -> if String.length c > w.(i) then w.(i) <- String.length c) cells)
    (rows t);
  w

let pad align width s =
  let n = width - String.length s in
  if n <= 0 then s
  else
    match align with
    | Left -> s ^ String.make n ' '
    | Right -> String.make n ' ' ^ s

let render t =
  let w = widths t in
  let aligns = Array.of_list (List.map snd t.columns) in
  let buf = Buffer.create 256 in
  let rule () =
    Array.iter (fun width -> Buffer.add_string buf ("+" ^ String.make (width + 2) '-')) w;
    Buffer.add_string buf "+\n"
  in
  let line cells =
    List.iteri
      (fun i c ->
        Buffer.add_string buf "| ";
        Buffer.add_string buf (pad aligns.(i) w.(i) c);
        Buffer.add_char buf ' ')
      cells;
    Buffer.add_string buf "|\n"
  in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  rule ();
  line (List.map fst t.columns);
  rule ();
  List.iter
    (function
      | Separator -> rule ()
      | Cells cells -> line cells)
    (rows t);
  rule ();
  Buffer.contents buf

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let buf = Buffer.create 256 in
  let line cells = Buffer.add_string buf (String.concat "," (List.map csv_escape cells) ^ "\n") in
  line (List.map fst t.columns);
  List.iter
    (function
      | Separator -> ()
      | Cells cells -> line cells)
    (rows t);
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  let str s = "\"" ^ json_escape s ^ "\"" in
  let arr xs = "[" ^ String.concat "," xs ^ "]" in
  let cells =
    List.filter_map
      (function
        | Separator -> None
        | Cells cs -> Some (arr (List.map str cs)))
      (rows t)
  in
  Printf.sprintf "{\"title\":%s,\"columns\":%s,\"rows\":%s}" (str t.title)
    (arr (List.map (fun (h, _) -> str h) t.columns))
    (arr cells)

let print t = print_string (render t)

let cell_float f = Printf.sprintf "%.2f" f

let cell_ratio f = Printf.sprintf "%.2fx" f
