(** ASCII and CSV rendering for the tables and figure series that the
    benchmark harness regenerates. *)

type align = Left | Right

type t

val create : title:string -> columns:(string * align) list -> t
(** [create ~title ~columns] begins a table with the given header. *)

val add_row : t -> string list -> unit
(** Appends a row; must have exactly one cell per column. *)

val add_int_row : t -> string -> int list -> unit
(** [add_int_row t label xs] is a convenience for a label cell followed by
    integer cells. *)

val add_separator : t -> unit
(** Inserts a horizontal rule between row groups. *)

val render : t -> string
(** Boxed ASCII rendering. *)

val to_csv : t -> string
(** Comma-separated rendering (header row included, title omitted). Cells
    containing commas or quotes are quoted. *)

val to_json : t -> string
(** One JSON object [{"title", "columns", "rows"}] with every cell a
    string (separators are omitted) — the machine-readable form CI
    report artifacts are built from. *)

val print : t -> unit
(** [render] to stdout followed by a newline. *)

val cell_float : float -> string
(** Canonical float formatting used across reports ("%.2f"). *)

val cell_ratio : float -> string
(** Ratio formatting ("%.2fx"). *)
