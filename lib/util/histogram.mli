(** Fixed-bucket histograms over non-negative integer samples.

    Used to summarise object-size and latency distributions in benchmark
    reports. *)

type t

val create : bounds:int array -> t
(** [create ~bounds] makes a histogram whose bucket [i] counts samples [x]
    with [bounds.(i-1) <= x < bounds.(i)] (bucket 0 is [x < bounds.(0)]; a
    final overflow bucket counts [x >= bounds.(last)]). [bounds] must be
    strictly increasing and non-empty. *)

val exponential_bounds : lo:int -> hi:int -> int array
(** Power-of-two bucket boundaries covering [\[lo, hi\]]. *)

val log_linear_bounds : lo:int -> hi:int -> sub:int -> int array
(** HDR-style log-linear boundaries covering [\[lo, hi\]]: every
    power-of-two span is cut into [sub] equal linear sub-buckets, bounding
    the relative error of {!percentile} by [1/sub] instead of the factor
    of two a pure power-of-two layout allows. Sub-buckets narrower than 1
    collapse into exact integer buckets at the low end. [sub >= 1]. *)

val create_log_linear : lo:int -> hi:int -> sub:int -> t
(** [create ~bounds:(log_linear_bounds ~lo ~hi ~sub)]. *)

val add : t -> int -> unit

val count : t -> int
(** Total number of samples. *)

val total : t -> int
(** Sum of all samples. *)

val min_value : t -> int option

val max_value : t -> int option

val mean : t -> float
(** 0.0 when empty. *)

val percentile : t -> float -> int
(** [percentile t q] for [q] in [\[0, 1\]]: an upper bound on the q-th
    quantile (the exclusive upper bound of the bucket where the quantile
    falls; [max_value] for the overflow bucket). 0 when empty. *)

val buckets : t -> (int * int * int) array
(** [(lo, hi_exclusive, count)] per bucket; the overflow bucket reports
    [hi_exclusive = max_int]. *)

val pp : Format.formatter -> t -> unit
