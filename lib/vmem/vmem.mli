(** Simulated OS virtual memory.

    Stands in for the [mmap]/[munmap]/[madvise] interface the paper's
    allocators sit on. Addresses are plain integers in a private simulated
    address space; no backing store is kept because the experiments only
    require address arithmetic, cache-line identity and accounting.

    The module is an accounting shell over a pluggable {!Vmem_backend}
    reuse policy (exact-size reuse — the compatibility default — a
    coalescing first-fit free list, or a binary buddy system). All
    policies share this surface: owner-tagged mapped/peak accounting,
    map/unmap counts, and an interval index serving {!is_mapped} and
    {!region_size} in O(log n).

    The allocator-visible quantities of the paper — memory *held* from the
    OS (the "A" of the blowup definition) and its high-water mark — are
    tracked here exactly, per owner tag, so fragmentation and blowup are
    measured rather than estimated.

    Regions additionally carry a *residency* bit: {!decommit} models
    [madvise(MADV_DONTNEED)] (address space retained, physical pages
    returned), {!commit} the re-population on next touch. {!mapped_bytes}
    counts address space held; {!resident_bytes} counts only committed
    pages — the number a production allocator's RSS story is about. *)

type t

type residency = Resident | Decommitted | Unmapped

val create : ?page_size:int -> ?base:int -> ?backend:Vmem_backend.kind -> unit -> t
(** [create ()] makes an empty address space. [page_size] defaults to 4096;
    [base] (default [0x1000_0000], page-aligned) is the first address
    handed out; [backend] (default [Exact]) selects the reuse policy. *)

val page_size : t -> int

val backend_kind : t -> Vmem_backend.kind

val map : t -> ?owner:int -> bytes:int -> align:int -> unit -> int
(** [map t ~bytes ~align ()] reserves [bytes] (rounded up to whole pages)
    at an address that is a multiple of [align] (a power of two, at least
    [page_size]). [owner] tags the region for per-allocator accounting
    (default 0). The region starts resident. Returns the base address. *)

val unmap : t -> addr:int -> unit
(** Releases a region previously returned by {!map}. Raises
    [Invalid_argument] on an address that is not a live region base. *)

val decommit : t -> addr:int -> unit
(** Marks the whole region based at [addr] non-resident (simulated
    [madvise(MADV_DONTNEED)]): the address range stays mapped and
    reusable, but its bytes leave {!resident_bytes}. Idempotent. Raises
    [Invalid_argument] if [addr] is not a live region base. *)

val commit : t -> addr:int -> unit
(** Re-populates a decommitted region (the fault-in on next touch).
    Idempotent; raises [Invalid_argument] on a non-region base. *)

val region_size : t -> addr:int -> int option
(** Size in bytes of the live region based at [addr], if any. O(log n). *)

val is_mapped : t -> addr:int -> bool
(** True when [addr] falls inside any live region. O(log n) via the
    interval index — independent of region sizes and counts of pages. *)

val residency : t -> addr:int -> residency
(** Residency of the page containing [addr]: [Resident] or
    [Decommitted] when inside a live region, [Unmapped] otherwise. *)

val is_resident : t -> addr:int -> bool

val mapped_bytes : t -> int
(** Total bytes currently held from the simulated OS (address space). *)

val peak_bytes : t -> int
(** High-water mark of {!mapped_bytes}. *)

val resident_bytes : t -> int
(** Bytes currently resident (mapped and committed) — the simulated RSS. *)

val peak_resident_bytes : t -> int

val address_space_bytes : t -> int
(** Width of the address range ever bump-allocated (frontier - base):
    mapped regions plus backend-held free bytes. Growth here with flat
    {!mapped_bytes} is external fragmentation the backend failed to
    recycle. *)

val mapped_bytes_of_owner : t -> int -> int

val peak_bytes_of_owner : t -> int -> int

val map_count : t -> int
(** Number of {!map} calls ever made (OS traffic). *)

val unmap_count : t -> int

val decommit_count : t -> int
(** Decommits that actually dropped pages (idempotent repeats excluded). *)

val commit_count : t -> int
(** Commits that re-populated a decommitted region ({!map}'s initial
    population is not counted). *)

val iter_regions : t -> (addr:int -> bytes:int -> owner:int -> unit) -> unit
(** Iterates over live regions in ascending address order. *)

val check : t -> unit
(** Deep validation: page alignment and disjointness of regions,
    mapped/resident/owner totals against the region set, backend
    structural invariants, and byte conservation
    (backend free + live = frontier - base). Raises [Failure]. *)
