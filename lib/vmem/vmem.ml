type region = { r_bytes : int; r_owner : int; mutable r_resident : bool }

type owner_acct = { mutable cur : int; mutable peak : int }

type residency = Resident | Decommitted | Unmapped

module Imap = Map.Make (Int)

type t = {
  page_size : int;
  base : int;
  backend : Vmem_backend.t;
  mutable next_addr : int;
  mutable regions : region Imap.t; (* base addr -> region: the interval index *)
  owners : (int, owner_acct) Hashtbl.t;
  mutable mapped : int;
  mutable peak : int;
  mutable resident : int;
  mutable peak_resident : int;
  mutable maps : int;
  mutable unmaps : int;
  mutable decommits : int;
  mutable commits : int;
}

let create ?(page_size = 4096) ?(base = 0x1000_0000) ?(backend = Vmem_backend.Exact) () =
  if page_size <= 0 || page_size land (page_size - 1) <> 0 then
    invalid_arg "Vmem.create: page_size must be a positive power of two";
  if base land (page_size - 1) <> 0 then invalid_arg "Vmem.create: base must be page-aligned";
  {
    page_size;
    base;
    backend = Vmem_backend.create backend ~page_size;
    next_addr = base;
    regions = Imap.empty;
    owners = Hashtbl.create 16;
    mapped = 0;
    peak = 0;
    resident = 0;
    peak_resident = 0;
    maps = 0;
    unmaps = 0;
    decommits = 0;
    commits = 0;
  }

let page_size t = t.page_size

let backend_kind t = t.backend.Vmem_backend.be_kind

let round_up x align = (x + align - 1) land lnot (align - 1)

let owner_acct t owner =
  match Hashtbl.find_opt t.owners owner with
  | Some a -> a
  | None ->
    let a = { cur = 0; peak = 0 } in
    Hashtbl.replace t.owners owner a;
    a

let map t ?(owner = 0) ~bytes ~align () =
  if bytes <= 0 then invalid_arg "Vmem.map: bytes must be positive";
  if align < t.page_size || align land (align - 1) <> 0 then
    invalid_arg "Vmem.map: align must be a power of two >= page_size";
  let bytes = round_up bytes t.page_size in
  let addr =
    match t.backend.Vmem_backend.take ~bytes ~align with
    | Some addr -> addr
    | None ->
      (* Extend the bump frontier; the alignment gap is not lost — the
         backend gets it, so later maps may carve it (policy permitting)
         and the conservation invariant stays exact. *)
      let addr = round_up t.next_addr align in
      if addr > t.next_addr then t.backend.Vmem_backend.give ~addr:t.next_addr ~bytes:(addr - t.next_addr);
      t.next_addr <- addr + bytes;
      addr
  in
  t.regions <- Imap.add addr { r_bytes = bytes; r_owner = owner; r_resident = true } t.regions;
  t.mapped <- t.mapped + bytes;
  if t.mapped > t.peak then t.peak <- t.mapped;
  t.resident <- t.resident + bytes;
  if t.resident > t.peak_resident then t.peak_resident <- t.resident;
  let acct = owner_acct t owner in
  acct.cur <- acct.cur + bytes;
  if acct.cur > acct.peak then acct.peak <- acct.cur;
  t.maps <- t.maps + 1;
  addr

let unmap t ~addr =
  match Imap.find_opt addr t.regions with
  | None -> invalid_arg "Vmem.unmap: not a live region base"
  | Some r ->
    t.regions <- Imap.remove addr t.regions;
    t.mapped <- t.mapped - r.r_bytes;
    if r.r_resident then t.resident <- t.resident - r.r_bytes;
    let acct = owner_acct t r.r_owner in
    acct.cur <- acct.cur - r.r_bytes;
    t.unmaps <- t.unmaps + 1;
    t.backend.Vmem_backend.give ~addr ~bytes:r.r_bytes

let decommit t ~addr =
  match Imap.find_opt addr t.regions with
  | None -> invalid_arg "Vmem.decommit: not a live region base"
  | Some r ->
    if r.r_resident then begin
      r.r_resident <- false;
      t.resident <- t.resident - r.r_bytes;
      t.decommits <- t.decommits + 1
    end

let commit t ~addr =
  match Imap.find_opt addr t.regions with
  | None -> invalid_arg "Vmem.commit: not a live region base"
  | Some r ->
    if not r.r_resident then begin
      r.r_resident <- true;
      t.resident <- t.resident + r.r_bytes;
      if t.resident > t.peak_resident then t.peak_resident <- t.resident;
      t.commits <- t.commits + 1
    end

let region_size t ~addr =
  match Imap.find_opt addr t.regions with
  | None -> None
  | Some r -> Some r.r_bytes

(* The region covering [addr], found by the interval index: the live
   region with the greatest base <= addr, if [addr] falls inside it.
   O(log n) regardless of region sizes. *)
let covering t addr =
  match Imap.find_last_opt (fun base -> base <= addr) t.regions with
  | Some (base, r) when addr < base + r.r_bytes -> Some r
  | _ -> None

let is_mapped t ~addr = Option.is_some (covering t addr)

let residency t ~addr =
  match covering t addr with
  | None -> Unmapped
  | Some r -> if r.r_resident then Resident else Decommitted

let is_resident t ~addr = residency t ~addr = Resident

let mapped_bytes t = t.mapped

let peak_bytes t = t.peak

let resident_bytes t = t.resident

let peak_resident_bytes t = t.peak_resident

let address_space_bytes t = t.next_addr - t.base

let mapped_bytes_of_owner t owner =
  match Hashtbl.find_opt t.owners owner with
  | None -> 0
  | Some a -> a.cur

let peak_bytes_of_owner t owner =
  match Hashtbl.find_opt t.owners owner with
  | None -> 0
  | Some a -> a.peak

let map_count t = t.maps

let unmap_count t = t.unmaps

let decommit_count t = t.decommits

let commit_count t = t.commits

let iter_regions t f = Imap.iter (fun addr r -> f ~addr ~bytes:r.r_bytes ~owner:r.r_owner) t.regions

let check t =
  let fail fmt = Printf.ksprintf failwith fmt in
  let live = ref 0 and res = ref 0 and prev_end = ref min_int in
  let by_owner = Hashtbl.create 16 in
  Imap.iter
    (fun addr r ->
      if addr land (t.page_size - 1) <> 0 then fail "Vmem.check: region %#x not page-aligned" addr;
      if r.r_bytes <= 0 || r.r_bytes land (t.page_size - 1) <> 0 then
        fail "Vmem.check: region %#x has bad size %d" addr r.r_bytes;
      if addr < !prev_end then fail "Vmem.check: overlapping regions at %#x" addr;
      prev_end := addr + r.r_bytes;
      live := !live + r.r_bytes;
      if r.r_resident then res := !res + r.r_bytes;
      Hashtbl.replace by_owner r.r_owner
        (r.r_bytes + Option.value (Hashtbl.find_opt by_owner r.r_owner) ~default:0))
    t.regions;
  if !live <> t.mapped then fail "Vmem.check: region total %d <> mapped %d" !live t.mapped;
  if !res <> t.resident then fail "Vmem.check: resident total %d <> resident %d" !res t.resident;
  if t.resident > t.mapped then fail "Vmem.check: resident %d > mapped %d" t.resident t.mapped;
  Hashtbl.iter
    (fun owner acct ->
      let want = Option.value (Hashtbl.find_opt by_owner owner) ~default:0 in
      if acct.cur <> want then fail "Vmem.check: owner %d accounted %d <> region total %d" owner acct.cur want)
    t.owners;
  t.backend.Vmem_backend.check ();
  let free = t.backend.Vmem_backend.free_bytes () in
  if free + !live <> t.next_addr - t.base then
    fail "Vmem.check: free %d + live %d <> address space %d (leaked or double-counted bytes)" free !live
      (t.next_addr - t.base)
