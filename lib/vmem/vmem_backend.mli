(** Reuse policies for the simulated address space.

    {!Vmem} is an accounting shell over one of these backends: the
    backend owns the free portion of the bump-allocated range and
    decides how unmapped regions are recycled. All backends share the
    same byte-exact contract, so the shell's conservation invariant
    (backend free bytes + live region bytes = bump frontier - base)
    holds under any policy:

    - [take ~bytes ~align] returns an [align]-aligned base of a free
      range of exactly [bytes] bytes and debits [bytes], or [None];
    - [give ~addr ~bytes] donates the range (a freed region, or an
      alignment gap the shell skipped while bumping) and credits
      [bytes].

    [bytes] is always a positive multiple of the page size and [align]
    a power of two at least the page size; addresses are page-aligned. *)

type kind =
  | Exact  (** seed policy: exact-size free lists, no splitting or coalescing *)
  | First_fit  (** address-ordered free list, coalesced on free, carved on allocate *)
  | Buddy  (** binary buddy system: power-of-two chunks, buddy merging *)

val kind_name : kind -> string
(** ["exact"], ["first-fit"], ["buddy"] — the names the CLI accepts. *)

val kind_of_string : string -> kind option

val all_kinds : kind list

type t = {
  be_kind : kind;
  take : bytes:int -> align:int -> int option;
  give : addr:int -> bytes:int -> unit;
  free_bytes : unit -> int;  (** bytes currently in the pool *)
  check : unit -> unit;
      (** deep structural validation (alignment, coalescing/merge
          invariants, pool-total agreement); raises [Failure] *)
}

val create : kind -> page_size:int -> t
