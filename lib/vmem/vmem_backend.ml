(* Reuse policies for the simulated address space.

   A backend owns the *free* portion of the address range Vmem has bump-
   allocated so far; the shell keeps the live-region interval index and
   all accounting. The contract is byte-exact: [take ~bytes ~align]
   either returns an aligned base and debits exactly [bytes] from the
   backend's free pool, or returns [None]; [give ~addr ~bytes] credits
   exactly [bytes]. The shell relies on this for its conservation
   invariant (free + live = bump frontier - base), so backends that
   carve oversized chunks (buddy) must return the surplus to themselves
   before answering. *)

type kind = Exact | First_fit | Buddy

let kind_name = function Exact -> "exact" | First_fit -> "first-fit" | Buddy -> "buddy"

let all_kinds = [ Exact; First_fit; Buddy ]

let kind_of_string s =
  match String.lowercase_ascii s with
  | "exact" -> Some Exact
  | "first-fit" | "first_fit" | "firstfit" | "ff" -> Some First_fit
  | "buddy" -> Some Buddy
  | _ -> None

type t = {
  be_kind : kind;
  take : bytes:int -> align:int -> int option;
  give : addr:int -> bytes:int -> unit;
  free_bytes : unit -> int;
  check : unit -> unit;
}

let round_up x align = (x + align - 1) land lnot (align - 1)

(* ------------------------------------------------------------------ *)
(* Exact-size reuse: the seed policy. A freed region is only ever
   reused for a request of the same (page-rounded) size whose alignment
   its base happens to satisfy. Cheap and deterministic, but requests of
   a size never freed always extend the bump frontier. *)

let make_exact () =
  let free_by_size : (int, int list ref) Hashtbl.t = Hashtbl.create 64 in
  let free = ref 0 in
  let take ~bytes ~align =
    match Hashtbl.find_opt free_by_size bytes with
    | None -> None
    | Some lst ->
      let rec pick acc = function
        | [] -> None
        | addr :: rest when addr land (align - 1) = 0 ->
          lst := List.rev_append acc rest;
          free := !free - bytes;
          Some addr
        | addr :: rest -> pick (addr :: acc) rest
      in
      pick [] !lst
  in
  let give ~addr ~bytes =
    let lst =
      match Hashtbl.find_opt free_by_size bytes with
      | Some lst -> lst
      | None ->
        let lst = ref [] in
        Hashtbl.replace free_by_size bytes lst;
        lst
    in
    lst := addr :: !lst;
    free := !free + bytes
  in
  let check () =
    let total = Hashtbl.fold (fun sz lst acc -> acc + (sz * List.length !lst)) free_by_size 0 in
    if total <> !free then
      failwith
        (Printf.sprintf "Vmem_backend(exact): free-list total %d <> accounted free %d" total !free)
  in
  { be_kind = Exact; take; give; free_bytes = (fun () -> !free); check }

(* ------------------------------------------------------------------ *)
(* Coalescing first-fit: free chunks in an address-ordered map, merged
   with both neighbours on release, carved (head gap / tail remainder
   returned to the pool) on allocation. First fit = lowest usable
   address, which keeps the address space compact under churn. *)

module Imap = Map.Make (Int)

let make_first_fit () =
  let chunks = ref Imap.empty in
  (* addr -> size, fully coalesced *)
  let free = ref 0 in
  let overlap a = failwith (Printf.sprintf "Vmem_backend(first-fit): overlapping free at %#x" a) in
  let give ~addr ~bytes =
    (* Credit only the caller's bytes — merged neighbours are already
       counted in [free]. *)
    let given = bytes in
    let addr, bytes =
      match Imap.find_last_opt (fun a -> a < addr) !chunks with
      | Some (a, sz) when a + sz > addr -> overlap addr
      | Some (a, sz) when a + sz = addr ->
        chunks := Imap.remove a !chunks;
        (a, sz + bytes)
      | _ -> (addr, bytes)
    in
    let bytes =
      match Imap.find_first_opt (fun a -> a > addr) !chunks with
      | Some (a, _) when addr + bytes > a -> overlap addr
      | Some (a, sz) when addr + bytes = a ->
        chunks := Imap.remove a !chunks;
        bytes + sz
      | _ -> bytes
    in
    chunks := Imap.add addr bytes !chunks;
    free := !free + given
  in
  let take ~bytes ~align =
    let exception Found of int * int * int in
    (* chunk base, chunk size, aligned carve start *)
    match
      Imap.iter
        (fun a sz ->
          let aligned = round_up a align in
          if aligned + bytes <= a + sz then raise (Found (a, sz, aligned)))
        !chunks
    with
    | () -> None
    | exception Found (a, sz, aligned) ->
      chunks := Imap.remove a !chunks;
      if aligned > a then chunks := Imap.add a (aligned - a) !chunks;
      let tail = a + sz - (aligned + bytes) in
      if tail > 0 then chunks := Imap.add (aligned + bytes) tail !chunks;
      free := !free - bytes;
      Some aligned
  in
  let check () =
    let total = ref 0 and prev = ref None in
    Imap.iter
      (fun a sz ->
        if sz <= 0 then failwith "Vmem_backend(first-fit): empty chunk";
        (match !prev with
         | Some (pa, psz) ->
           if pa + psz > a then overlap a;
           if pa + psz = a then
             failwith (Printf.sprintf "Vmem_backend(first-fit): uncoalesced neighbours at %#x" a)
         | None -> ());
        prev := Some (a, sz);
        total := !total + sz)
      !chunks;
    if !total <> !free then
      failwith
        (Printf.sprintf "Vmem_backend(first-fit): chunk total %d <> accounted free %d" !total !free)
  in
  { be_kind = First_fit; take; give; free_bytes = (fun () -> !free); check }

(* ------------------------------------------------------------------ *)
(* Binary buddy: free chunks are power-of-two sized and size-aligned;
   a freed chunk merges with its buddy (addr lxor size) whenever the
   buddy is wholly free at the same order, recursively. Arbitrary
   page-multiple regions are accepted by splitting them into maximal
   aligned power-of-two pieces, so the backend composes with the
   shell's page-rounded (not power-of-two-rounded) regions: [take]
   internally grabs a chunk of order >= the request and immediately
   re-releases the tail. *)

let make_buddy ~page_size () =
  ignore page_size;
  let max_order = 48 in
  let lists = Array.make (max_order + 1) [] in
  let order_of : (int, int) Hashtbl.t = Hashtbl.create 256 in
  (* addr -> order, the authoritative free set; list entries are lazily
     invalidated (merges remove from the table only). *)
  let free = ref 0 in
  let push a k =
    lists.(k) <- a :: lists.(k);
    Hashtbl.replace order_of a k
  in
  let rec pop k =
    match lists.(k) with
    | [] -> None
    | a :: rest ->
      lists.(k) <- rest;
      if Hashtbl.find_opt order_of a = Some k then begin
        Hashtbl.remove order_of a;
        Some a
      end
      else pop k
  in
  (* Free one size-aligned chunk of order [k], merging with free buddies. *)
  let rec release a k =
    let buddy = a lxor (1 lsl k) in
    if k < max_order && Hashtbl.find_opt order_of buddy = Some k then begin
      Hashtbl.remove order_of buddy;
      release (min a buddy) (k + 1)
    end
    else push a k
  in
  let ntz x =
    let rec go x n = if x land 1 = 1 then n else go (x lsr 1) (n + 1) in
    if x = 0 then max_order else go x 0
  in
  let floor_log2 x =
    let rec go x n = if x <= 1 then n else go (x lsr 1) (n + 1) in
    go x 0
  in
  let ceil_log2 x =
    let f = floor_log2 x in
    if 1 lsl f = x then f else f + 1
  in
  (* Split [addr, addr+bytes) into maximal aligned power-of-two chunks. *)
  let rec carve a remaining =
    if remaining > 0 then begin
      let k = min (min (ntz a) (floor_log2 remaining)) max_order in
      release a k;
      carve (a + (1 lsl k)) (remaining - (1 lsl k))
    end
  in
  let give ~addr ~bytes =
    carve addr bytes;
    free := !free + bytes
  in
  let take ~bytes ~align =
    (* A chunk of order k is 2^k-aligned, so order >= log2 align suffices. *)
    let nk = max (ceil_log2 bytes) (ceil_log2 align) in
    if nk > max_order then None
    else begin
      let rec find k = if k > max_order then None else match pop k with Some a -> Some (a, k) | None -> find (k + 1) in
      match find nk with
      | None -> None
      | Some (a, k) ->
        (* Keep the low half at each split; the request needs only 2^nk. *)
        for j = k - 1 downto nk do
          push (a + (1 lsl j)) j
        done;
        (* Return the unrequested tail of the 2^nk chunk to the pool. *)
        if 1 lsl nk > bytes then carve (a + bytes) ((1 lsl nk) - bytes);
        free := !free - bytes;
        Some a
    end
  in
  let check () =
    let live = Hashtbl.fold (fun a k acc -> (a, k) :: acc) order_of [] in
    let live = List.sort compare live in
    let total = ref 0 and prev_end = ref min_int in
    List.iter
      (fun (a, k) ->
        let sz = 1 lsl k in
        if a land (sz - 1) <> 0 then
          failwith (Printf.sprintf "Vmem_backend(buddy): chunk %#x not aligned to its order %d" a k);
        if a < !prev_end then failwith (Printf.sprintf "Vmem_backend(buddy): overlapping chunk at %#x" a);
        if k < max_order && Hashtbl.find_opt order_of (a lxor sz) = Some k then
          failwith (Printf.sprintf "Vmem_backend(buddy): unmerged buddy pair at %#x order %d" a k);
        prev_end := a + sz;
        total := !total + sz)
      live;
    if !total <> !free then
      failwith (Printf.sprintf "Vmem_backend(buddy): chunk total %d <> accounted free %d" !total !free)
  in
  { be_kind = Buddy; take; give; free_bytes = (fun () -> !free); check }

let create kind ~page_size =
  match kind with
  | Exact -> make_exact ()
  | First_fit -> make_first_fit ()
  | Buddy -> make_buddy ~page_size ()
