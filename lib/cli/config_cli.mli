(** The [--set knob=value] Cmdliner option shared by the three CLIs,
    backed by the {!Hoard_config} knob registry. *)

val set_opt : string list Cmdliner.Term.t
(** Repeatable [--set KNOB=VALUE]; empty when not given. *)

val apply : Hoard_config.t -> string list -> Hoard_config.t
(** Left fold of {!Hoard_config.set} over the overrides; prints the knob
    registry and exits 1 on an unknown knob or malformed value. *)
