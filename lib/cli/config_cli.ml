(* The one [--set knob=value] option shared by hoard_bench, hoard_trace
   and hoard_check: textual overrides over the Hoard_config knob
   registry, applied after (and on top of) each command's individual
   flags — which stay as aliases for the knobs they predate. A new knob
   becomes settable everywhere by adding its registry entry, with no
   edits to any CLI. *)

open Cmdliner

let set_opt =
  Arg.(
    value
    & opt_all string []
    & info [ "set" ] ~docv:"KNOB=VALUE"
        ~doc:
          (Printf.sprintf
             "Override one allocator knob (repeatable; applied on top of the individual flags, left \
              to right). Knobs: %s. Values: ints, floats, true/false, and $(b,auto) for nheaps."
             (String.concat ", " (Hoard_config.knob_names ()))))

(* Fold the overrides over [base], turning a bad knob or value into a
   usage error that lists the registry instead of a raw exception. *)
let apply base overrides =
  match Hoard_config.set_all base overrides with
  | cfg -> cfg
  | exception Invalid_argument msg ->
    Printf.eprintf "--set: %s\n\nknown knobs:\n%s\n" msg (Hoard_config.knob_doc ());
    exit 1
