type pheap = {
  free_lists : int list array; (* per class *)
  counts : int array;
  current : Superblock.t option array; (* superblock being carved, per class *)
  mutable free_bytes : int;
}

type pool = { lock : Platform.lock; mutable blocks : int list; mutable count : int }

type t = {
  pf : Platform.t;
  classes : Size_class.t;
  reg : Sb_registry.t;
  stats : Alloc_stats.t;
  sh : Alloc_stats.shard; (* shard 0: small-path events; thread-private heaps are sim-only *)
  owner : int;
  large : Locked_large.t;
  sb_size : int;
  path_work : int;
  threshold : int;
  heaps : (int, pheap) Hashtbl.t; (* tid -> heap *)
  table_lock : Platform.lock;
  pools : pool array; (* per class *)
}

let create ?(sb_size = 8192) ?(path_work = 22) ?(threshold = 32) pf =
  if threshold < 2 then invalid_arg "Private_threshold.create: threshold must be >= 2";
  let classes = Size_class.create ~max_small:(sb_size / 2) () in
  let stats = Alloc_stats.create ~shards:2 () in
  let owner = Alloc_intf.next_owner () in
  {
    pf;
    classes;
    reg = Sb_registry.create pf ~sb_size;
    stats;
    sh = Alloc_stats.shard stats 0;
    owner;
    large = Locked_large.create pf ~owner ~stats ~shard:1 ~threshold:(sb_size / 2);
    sb_size;
    path_work;
    threshold;
    heaps = Hashtbl.create 32;
    table_lock = pf.Platform.new_lock "threshold.table";
    pools =
      Array.init (Size_class.count classes) (fun i ->
          { lock = pf.Platform.new_lock (Printf.sprintf "threshold.pool%d" i); blocks = []; count = 0 });
  }

let my_heap t =
  let tid = t.pf.Platform.self_tid () in
  match Hashtbl.find_opt t.heaps tid with
  | Some h -> h
  | None ->
    t.table_lock.acquire ();
    let h =
      match Hashtbl.find_opt t.heaps tid with
      | Some h -> h
      | None ->
        let n = Size_class.count t.classes in
        let h = { free_lists = Array.make n []; counts = Array.make n 0; current = Array.make n None; free_bytes = 0 } in
        Hashtbl.replace t.heaps tid h;
        h
    in
    t.table_lock.release ();
    h

(* Move half of an overflowing class list to the global pool. *)
let flush_excess t h sclass block_size =
  let keep = t.threshold / 2 in
  let rec split n acc = function
    | rest when n = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> split (n - 1) (x :: acc) rest
  in
  let kept, excess = split keep [] h.free_lists.(sclass) in
  let n_excess = h.counts.(sclass) - keep in
  h.free_lists.(sclass) <- kept;
  h.counts.(sclass) <- keep;
  h.free_bytes <- h.free_bytes - (n_excess * block_size);
  let pool = t.pools.(sclass) in
  pool.lock.acquire ();
  pool.blocks <- List.rev_append excess pool.blocks;
  pool.count <- pool.count + n_excess;
  pool.lock.release ()

(* Refill up to half a threshold's worth of blocks from the global pool. *)
let refill_from_pool t h sclass block_size =
  let want = t.threshold / 2 in
  let pool = t.pools.(sclass) in
  pool.lock.acquire ();
  let rec take n acc = function
    | rest when n = 0 -> (acc, rest, want - n)
    | [] -> (acc, [], want - n)
    | x :: rest -> take (n - 1) (x :: acc) rest
  in
  let got, rest, n_got = take want [] pool.blocks in
  pool.blocks <- rest;
  pool.count <- pool.count - n_got;
  pool.lock.release ();
  if n_got > 0 then begin
    h.free_lists.(sclass) <- got @ h.free_lists.(sclass);
    h.counts.(sclass) <- h.counts.(sclass) + n_got;
    h.free_bytes <- h.free_bytes + (n_got * block_size);
    true
  end
  else false

let malloc t size =
  if size <= 0 then invalid_arg "Private_threshold.malloc: size must be positive";
  t.pf.Platform.work t.path_work;
  if Locked_large.is_large t.large size then Locked_large.malloc t.large size
  else begin
    let sclass = Size_class.class_of_size t.classes size in
    let block_size = Size_class.size_of_class t.classes sclass in
    let h = my_heap t in
    if h.counts.(sclass) = 0 then ignore (refill_from_pool t h sclass block_size);
    let addr =
      match h.free_lists.(sclass) with
      | addr :: rest ->
        h.free_lists.(sclass) <- rest;
        h.counts.(sclass) <- h.counts.(sclass) - 1;
        h.free_bytes <- h.free_bytes - block_size;
        addr
      | [] ->
        let sb =
          match h.current.(sclass) with
          | Some sb when not (Superblock.is_full sb) -> sb
          | _ ->
            let base = t.pf.Platform.page_map ~bytes:t.sb_size ~align:t.sb_size ~owner:t.owner in
            let sb = Superblock.create ~base ~sb_size:t.sb_size ~sclass ~block_size in
            Superblock.set_owner sb (t.pf.Platform.self_tid ());
            Sb_registry.register t.reg sb;
            Alloc_stats.on_map t.stats ~bytes:t.sb_size;
            h.current.(sclass) <- Some sb;
            sb
        in
        Superblock.alloc_block sb
    in
    Alloc_stats.on_malloc t.sh ~requested:size ~usable:block_size;
    t.pf.Platform.write ~addr ~len:8;
    addr
  end

let free t addr =
  t.pf.Platform.work t.path_work;
  match Sb_registry.lookup t.reg ~addr with
  | Some sb ->
    let sclass = Superblock.sclass sb in
    let block_size = Superblock.block_size sb in
    let h = my_heap t in
    t.pf.Platform.write ~addr ~len:8;
    h.free_lists.(sclass) <- addr :: h.free_lists.(sclass);
    h.counts.(sclass) <- h.counts.(sclass) + 1;
    h.free_bytes <- h.free_bytes + block_size;
    Alloc_stats.on_free t.sh ~usable:block_size;
    if h.counts.(sclass) > t.threshold then flush_excess t h sclass block_size
  | None ->
    if not (Locked_large.try_free t.large ~addr) then invalid_arg "Private_threshold.free: foreign pointer"

let usable_size t addr =
  match Sb_registry.lookup t.reg ~addr with
  | Some sb -> Superblock.block_size sb
  | None ->
    (match Locked_large.usable_size t.large ~addr with
     | Some n -> n
     | None -> invalid_arg "Private_threshold.usable_size: foreign pointer")

let global_pool_blocks t ~sclass = t.pools.(sclass).count

let check t =
  let carved_bytes = ref 0 in
  Sb_registry.iter t.reg (fun sb -> carved_bytes := !carved_bytes + (Superblock.used sb * Superblock.block_size sb));
  let free_bytes = ref 0 in
  Hashtbl.iter
    (fun _ h ->
      let acc = ref 0 in
      Array.iteri
        (fun sclass lst ->
          if List.length lst <> h.counts.(sclass) then failwith "Private_threshold.check: count mismatch";
          List.iter
            (fun addr ->
              match Sb_registry.lookup t.reg ~addr with
              | Some sb when Superblock.sclass sb = sclass -> acc := !acc + Superblock.block_size sb
              | _ -> failwith "Private_threshold.check: bad free-list entry")
            lst)
        h.free_lists;
      if !acc <> h.free_bytes then failwith "Private_threshold.check: free_bytes mismatch";
      free_bytes := !free_bytes + !acc)
    t.heaps;
  Array.iteri
    (fun sclass pool ->
      if List.length pool.blocks <> pool.count then failwith "Private_threshold.check: pool count mismatch";
      List.iter
        (fun addr ->
          match Sb_registry.lookup t.reg ~addr with
          | Some sb when Superblock.sclass sb = sclass ->
            free_bytes := !free_bytes + Superblock.block_size sb
          | _ -> failwith "Private_threshold.check: bad pool entry")
        pool.blocks)
    t.pools;
  let s = Alloc_stats.snapshot t.stats in
  if !carved_bytes - !free_bytes + Locked_large.live_bytes t.large <> s.live_bytes then
    failwith "Private_threshold.check: live-bytes accounting mismatch"

let allocator t =
  Alloc_api.make ~pf:t.pf ~name:"private-threshold" ~owner:t.owner ~large_threshold:(t.sb_size / 2)
    ~malloc:(fun size -> malloc t size)
    ~free:(fun addr -> free t addr)
    ~usable_size:(fun addr -> usable_size t addr)
    ~stats:(fun () -> Alloc_stats.snapshot t.stats)
    ~check:(fun () -> check t)
    ()

let factory ?(sb_size = 8192) ?(threshold = 32) () =
  {
    Alloc_intf.label = "private-threshold";
    description = "per-thread free lists with overflow to a locked global pool (Vee&Hsu/DYNIX style)";
    instantiate = (fun pf -> allocator (create ~sb_size ~threshold pf));
  }
