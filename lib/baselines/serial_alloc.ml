type t = {
  pf : Platform.t;
  heap : Heap_core.t;
  lock : Platform.lock;
  classes : Size_class.t;
  reg : Sb_registry.t;
  stats : Alloc_stats.t;
  sh : Alloc_stats.shard; (* shard 0: all small-path events run under [lock] *)
  owner : int;
  large : Locked_large.t;
  sb_size : int;
  path_work : int;
  release_threshold : int;
}

let create ?(sb_size = 8192) ?(path_work = 25) ?(release_threshold = 4) pf =
  let classes = Size_class.create ~max_small:(sb_size / 2) () in
  let stats = Alloc_stats.create ~shards:2 () in
  let owner = Alloc_intf.next_owner () in
  {
    pf;
    heap = Heap_core.create ~id:0 ~classes ~sb_size ();
    lock = pf.Platform.new_lock "serial.heap";
    classes;
    reg = Sb_registry.create pf ~sb_size;
    stats;
    sh = Alloc_stats.shard stats 0;
    owner;
    large = Locked_large.create pf ~owner ~stats ~shard:1 ~threshold:(sb_size / 2);
    sb_size;
    path_work;
    release_threshold;
  }

let touch_header t sb = t.pf.Platform.write ~addr:(Superblock.base sb) ~len:16

let release_surplus t =
  while Heap_core.empty_superblock_count t.heap > t.release_threshold do
    match Heap_core.pick_victim t.heap ~max_fullness:0.0 with
    | None -> assert false
    | Some sb ->
      Sb_registry.unregister t.reg sb;
      t.pf.Platform.page_unmap ~addr:(Superblock.base sb);
      Alloc_stats.on_unmap t.stats ~bytes:(Superblock.sb_size sb)
  done

let malloc t size =
  if size <= 0 then invalid_arg "Serial_alloc.malloc: size must be positive";
  t.pf.Platform.work t.path_work;
  if Locked_large.is_large t.large size then Locked_large.malloc t.large size
  else begin
    let sclass = Size_class.class_of_size t.classes size in
    let block_size = Size_class.size_of_class t.classes sclass in
    t.lock.acquire ();
    let addr =
      match Heap_core.malloc t.heap ~sclass ~block_size with
      | Some (addr, sb) ->
        touch_header t sb;
        addr
      | None ->
        let base = t.pf.Platform.page_map ~bytes:t.sb_size ~align:t.sb_size ~owner:t.owner in
        let sb = Superblock.create ~base ~sb_size:t.sb_size ~sclass ~block_size in
        Sb_registry.register t.reg sb;
        Alloc_stats.on_map t.stats ~bytes:t.sb_size;
        Heap_core.insert t.heap sb;
        touch_header t sb;
        (match Heap_core.malloc t.heap ~sclass ~block_size with
         | Some (addr, _) -> addr
         | None -> assert false)
    in
    Alloc_stats.on_malloc t.sh ~requested:size ~usable:block_size;
    t.pf.Platform.write ~addr ~len:8;
    t.lock.release ();
    addr
  end

let free t addr =
  t.pf.Platform.work t.path_work;
  match Sb_registry.lookup t.reg ~addr with
  | Some sb ->
    t.lock.acquire ();
    t.pf.Platform.write ~addr ~len:8;
    Heap_core.free t.heap sb addr;
    touch_header t sb;
    Alloc_stats.on_free t.sh ~usable:(Superblock.block_size sb);
    release_surplus t;
    t.lock.release ()
  | None -> if not (Locked_large.try_free t.large ~addr) then invalid_arg "Serial_alloc.free: foreign pointer"

let usable_size t addr =
  match Sb_registry.lookup t.reg ~addr with
  | Some sb ->
    if Superblock.is_block_live sb addr then Superblock.block_size sb
    else invalid_arg "Serial_alloc.usable_size: dead block"
  | None ->
    (match Locked_large.usable_size t.large ~addr with
     | Some n -> n
     | None -> invalid_arg "Serial_alloc.usable_size: foreign pointer")

let check t =
  Heap_core.check t.heap;
  let s = Alloc_stats.snapshot t.stats in
  if Heap_core.u t.heap + Locked_large.live_bytes t.large <> s.live_bytes then
    failwith "Serial_alloc.check: live-bytes accounting mismatch"

let allocator t =
  Alloc_api.make ~pf:t.pf ~name:"serial" ~owner:t.owner ~large_threshold:(t.sb_size / 2)
    ~malloc:(fun size -> malloc t size)
    ~free:(fun addr -> free t addr)
    ~usable_size:(fun addr -> usable_size t addr)
    ~stats:(fun () -> Alloc_stats.snapshot t.stats)
    ~check:(fun () -> check t)
    ()

let factory ?(sb_size = 8192) () =
  {
    Alloc_intf.label = "serial";
    description = "single heap, single lock (Solaris-malloc-style serial allocator)";
    instantiate = (fun pf -> allocator (create ~sb_size pf));
  }
