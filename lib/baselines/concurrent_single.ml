(* Heap id i is the sub-heap dedicated to size class i; free resolves the
   class from the superblock, so a block always returns whence it came. *)

type t = {
  pf : Platform.t;
  classes : Size_class.t;
  subheaps : Heap_core.t array; (* one per size class *)
  locks : Platform.lock array;
  reg : Sb_registry.t;
  stats : Alloc_stats.t;
  owner : int;
  large : Locked_large.t;
  sb_size : int;
  path_work : int;
  release_threshold : int;
}

let create ?(sb_size = 8192) ?(path_work = 32) ?(release_threshold = 1) pf =
  let classes = Size_class.create ~max_small:(sb_size / 2) () in
  let owner = Alloc_intf.next_owner () in
  let n = Size_class.count classes in
  (* One stats shard per class lock, plus one for the large path. *)
  let stats = Alloc_stats.create ~shards:(n + 1) () in
  {
    pf;
    classes;
    subheaps = Array.init n (fun i -> Heap_core.create ~id:i ~classes ~sb_size ());
    locks = Array.init n (fun i -> pf.Platform.new_lock (Printf.sprintf "concsingle.class%d" i));
    reg = Sb_registry.create pf ~sb_size;
    stats;
    owner;
    large = Locked_large.create pf ~owner ~stats ~shard:n ~threshold:(sb_size / 2);
    sb_size;
    path_work;
    release_threshold;
  }

let touch_header t sb = t.pf.Platform.write ~addr:(Superblock.base sb) ~len:16

let release_surplus t sclass =
  let heap = t.subheaps.(sclass) in
  while Heap_core.empty_superblock_count heap > t.release_threshold do
    match Heap_core.pick_victim heap ~max_fullness:0.0 with
    | None -> assert false
    | Some sb ->
      Sb_registry.unregister t.reg sb;
      t.pf.Platform.page_unmap ~addr:(Superblock.base sb);
      Alloc_stats.on_unmap t.stats ~bytes:(Superblock.sb_size sb)
  done

let malloc t size =
  if size <= 0 then invalid_arg "Concurrent_single.malloc: size must be positive";
  t.pf.Platform.work t.path_work;
  if Locked_large.is_large t.large size then Locked_large.malloc t.large size
  else begin
    let sclass = Size_class.class_of_size t.classes size in
    let block_size = Size_class.size_of_class t.classes sclass in
    let heap = t.subheaps.(sclass) in
    let lock = t.locks.(sclass) in
    lock.acquire ();
    let addr =
      match Heap_core.malloc heap ~sclass ~block_size with
      | Some (addr, sb) ->
        touch_header t sb;
        addr
      | None ->
        let base = t.pf.Platform.page_map ~bytes:t.sb_size ~align:t.sb_size ~owner:t.owner in
        let sb = Superblock.create ~base ~sb_size:t.sb_size ~sclass ~block_size in
        Sb_registry.register t.reg sb;
        Alloc_stats.on_map t.stats ~bytes:t.sb_size;
        Heap_core.insert heap sb;
        touch_header t sb;
        (match Heap_core.malloc heap ~sclass ~block_size with
         | Some (addr, _) -> addr
         | None -> assert false)
    in
    Alloc_stats.on_malloc (Alloc_stats.shard t.stats sclass) ~requested:size ~usable:block_size;
    t.pf.Platform.write ~addr ~len:8;
    lock.release ();
    addr
  end

let free t addr =
  t.pf.Platform.work t.path_work;
  match Sb_registry.lookup t.reg ~addr with
  | Some sb ->
    let sclass = Superblock.sclass sb in
    let lock = t.locks.(sclass) in
    lock.acquire ();
    t.pf.Platform.write ~addr ~len:8;
    Heap_core.free t.subheaps.(sclass) sb addr;
    touch_header t sb;
    Alloc_stats.on_free (Alloc_stats.shard t.stats sclass) ~usable:(Superblock.block_size sb);
    release_surplus t sclass;
    lock.release ()
  | None ->
    if not (Locked_large.try_free t.large ~addr) then invalid_arg "Concurrent_single.free: foreign pointer"

let usable_size t addr =
  match Sb_registry.lookup t.reg ~addr with
  | Some sb ->
    if Superblock.is_block_live sb addr then Superblock.block_size sb
    else invalid_arg "Concurrent_single.usable_size: dead block"
  | None ->
    (match Locked_large.usable_size t.large ~addr with
     | Some n -> n
     | None -> invalid_arg "Concurrent_single.usable_size: foreign pointer")

let check t =
  Array.iter Heap_core.check t.subheaps;
  let s = Alloc_stats.snapshot t.stats in
  let u = Array.fold_left (fun acc h -> acc + Heap_core.u h) 0 t.subheaps in
  if u + Locked_large.live_bytes t.large <> s.live_bytes then
    failwith "Concurrent_single.check: live-bytes accounting mismatch"

let allocator t =
  Alloc_api.make ~pf:t.pf ~name:"concurrent-single" ~owner:t.owner ~large_threshold:(t.sb_size / 2)
    ~malloc:(fun size -> malloc t size)
    ~free:(fun addr -> free t addr)
    ~usable_size:(fun addr -> usable_size t addr)
    ~stats:(fun () -> Alloc_stats.snapshot t.stats)
    ~check:(fun () -> check t)
    ()

let factory ?(sb_size = 8192) () =
  {
    Alloc_intf.label = "concurrent-single";
    description = "one shared heap with a lock per size class";
    instantiate = (fun pf -> allocator (create ~sb_size pf));
  }
