type heap = { core : Heap_core.t; lock : Platform.lock; sh : Alloc_stats.shard }

type t = {
  pf : Platform.t;
  classes : Size_class.t;
  heaps : heap array;
  reg : Sb_registry.t;
  stats : Alloc_stats.t;
  owner : int;
  large : Locked_large.t;
  sb_size : int;
  path_work : int;
}

let create ?(sb_size = 8192) ?(path_work = 28) ?nheaps pf =
  let n =
    match nheaps with
    | Some n -> n
    | None -> pf.Platform.nprocs
  in
  if n < 1 then invalid_arg "Private_ownership.create: nheaps must be >= 1";
  let classes = Size_class.create ~max_small:(sb_size / 2) () in
  let stats = Alloc_stats.create ~shards:(n + 1) () in
  let owner = Alloc_intf.next_owner () in
  {
    pf;
    classes;
    heaps =
      Array.init n (fun i ->
          {
            core = Heap_core.create ~id:i ~classes ~sb_size ();
            lock = pf.Platform.new_lock (Printf.sprintf "ownership.heap%d" i);
            sh = Alloc_stats.shard stats i;
          });
    reg = Sb_registry.create pf ~sb_size;
    stats;
    owner;
    large = Locked_large.create pf ~owner ~stats ~shard:n ~threshold:(sb_size / 2);
    sb_size;
    path_work;
  }

let touch_header t sb = t.pf.Platform.write ~addr:(Superblock.base sb) ~len:16

let my_heap t = t.heaps.(t.pf.Platform.self_proc () mod Array.length t.heaps)

let malloc t size =
  if size <= 0 then invalid_arg "Private_ownership.malloc: size must be positive";
  t.pf.Platform.work t.path_work;
  if Locked_large.is_large t.large size then Locked_large.malloc t.large size
  else begin
    let sclass = Size_class.class_of_size t.classes size in
    let block_size = Size_class.size_of_class t.classes sclass in
    let h = my_heap t in
    h.lock.acquire ();
    let addr =
      match Heap_core.malloc h.core ~sclass ~block_size with
      | Some (addr, sb) ->
        touch_header t sb;
        addr
      | None ->
        let base = t.pf.Platform.page_map ~bytes:t.sb_size ~align:t.sb_size ~owner:t.owner in
        let sb = Superblock.create ~base ~sb_size:t.sb_size ~sclass ~block_size in
        Sb_registry.register t.reg sb;
        Alloc_stats.on_map t.stats ~bytes:t.sb_size;
        Heap_core.insert h.core sb;
        touch_header t sb;
        (match Heap_core.malloc h.core ~sclass ~block_size with
         | Some (addr, _) -> addr
         | None -> assert false)
    in
    Alloc_stats.on_malloc h.sh ~requested:size ~usable:block_size;
    t.pf.Platform.write ~addr ~len:8;
    h.lock.release ();
    addr
  end

let free t addr =
  t.pf.Platform.work t.path_work;
  match Sb_registry.lookup t.reg ~addr with
  | Some sb ->
    (* Ownership never changes in this allocator, so a single lock of the
       owning heap suffices. *)
    let h = t.heaps.(Superblock.owner sb) in
    h.lock.acquire ();
    if h != my_heap t then Alloc_stats.on_remote_free h.sh;
    t.pf.Platform.write ~addr ~len:8;
    Heap_core.free h.core sb addr;
    touch_header t sb;
    Alloc_stats.on_free h.sh ~usable:(Superblock.block_size sb);
    h.lock.release ()
  | None ->
    if not (Locked_large.try_free t.large ~addr) then invalid_arg "Private_ownership.free: foreign pointer"

let usable_size t addr =
  match Sb_registry.lookup t.reg ~addr with
  | Some sb ->
    if Superblock.is_block_live sb addr then Superblock.block_size sb
    else invalid_arg "Private_ownership.usable_size: dead block"
  | None ->
    (match Locked_large.usable_size t.large ~addr with
     | Some n -> n
     | None -> invalid_arg "Private_ownership.usable_size: foreign pointer")

let heap_held_bytes t ~heap = Heap_core.a t.heaps.(heap).core

let check t =
  Array.iter (fun h -> Heap_core.check h.core) t.heaps;
  let s = Alloc_stats.snapshot t.stats in
  let u = Array.fold_left (fun acc h -> acc + Heap_core.u h.core) 0 t.heaps in
  if u + Locked_large.live_bytes t.large <> s.live_bytes then
    failwith "Private_ownership.check: live-bytes accounting mismatch"

let allocator t =
  Alloc_api.make ~pf:t.pf ~name:"private-ownership" ~owner:t.owner ~large_threshold:(t.sb_size / 2)
    ~malloc:(fun size -> malloc t size)
    ~free:(fun addr -> free t addr)
    ~usable_size:(fun addr -> usable_size t addr)
    ~stats:(fun () -> Alloc_stats.snapshot t.stats)
    ~check:(fun () -> check t)
    ()

let factory ?(sb_size = 8192) () =
  {
    Alloc_intf.label = "private-ownership";
    description = "per-processor arenas with free-to-owner (Ptmalloc/MTmalloc style; O(P) blowup)";
    instantiate = (fun pf -> allocator (create ~sb_size pf));
  }
