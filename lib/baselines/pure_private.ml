type pheap = {
  free_lists : int list array; (* per class: stack of free block addresses *)
  mutable free_bytes : int;
  current : Superblock.t option array; (* per class: superblock being carved *)
}

type t = {
  pf : Platform.t;
  classes : Size_class.t;
  reg : Sb_registry.t;
  stats : Alloc_stats.t;
  sh : Alloc_stats.shard; (* shard 0: small-path events; thread-private heaps are sim-only *)
  owner : int;
  large : Locked_large.t;
  sb_size : int;
  path_work : int;
  heaps : (int, pheap) Hashtbl.t; (* tid -> heap *)
  table_lock : Platform.lock;
}

let create ?(sb_size = 8192) ?(path_work = 20) pf =
  let classes = Size_class.create ~max_small:(sb_size / 2) () in
  let stats = Alloc_stats.create ~shards:2 () in
  let owner = Alloc_intf.next_owner () in
  {
    pf;
    classes;
    reg = Sb_registry.create pf ~sb_size;
    stats;
    sh = Alloc_stats.shard stats 0;
    owner;
    large = Locked_large.create pf ~owner ~stats ~shard:1 ~threshold:(sb_size / 2);
    sb_size;
    path_work;
    heaps = Hashtbl.create 32;
    table_lock = pf.Platform.new_lock "pureprivate.table";
  }

let my_heap t =
  let tid = t.pf.Platform.self_tid () in
  match Hashtbl.find_opt t.heaps tid with
  | Some h -> h
  | None ->
    t.table_lock.acquire ();
    let h =
      match Hashtbl.find_opt t.heaps tid with
      | Some h -> h
      | None ->
        let n = Size_class.count t.classes in
        let h = { free_lists = Array.make n []; free_bytes = 0; current = Array.make n None } in
        Hashtbl.replace t.heaps tid h;
        h
    in
    t.table_lock.release ();
    h

let malloc t size =
  if size <= 0 then invalid_arg "Pure_private.malloc: size must be positive";
  t.pf.Platform.work t.path_work;
  if Locked_large.is_large t.large size then Locked_large.malloc t.large size
  else begin
    let sclass = Size_class.class_of_size t.classes size in
    let block_size = Size_class.size_of_class t.classes sclass in
    let h = my_heap t in
    let addr =
      match h.free_lists.(sclass) with
      | addr :: rest ->
        h.free_lists.(sclass) <- rest;
        h.free_bytes <- h.free_bytes - block_size;
        addr
      | [] ->
        let sb =
          match h.current.(sclass) with
          | Some sb when not (Superblock.is_full sb) -> sb
          | _ ->
            let base = t.pf.Platform.page_map ~bytes:t.sb_size ~align:t.sb_size ~owner:t.owner in
            let sb =
              Superblock.create ~base ~sb_size:t.sb_size ~sclass ~block_size
            in
            Superblock.set_owner sb (t.pf.Platform.self_tid ());
            Sb_registry.register t.reg sb;
            Alloc_stats.on_map t.stats ~bytes:t.sb_size;
            h.current.(sclass) <- Some sb;
            sb
        in
        Superblock.alloc_block sb
    in
    Alloc_stats.on_malloc t.sh ~requested:size ~usable:block_size;
    t.pf.Platform.write ~addr ~len:8;
    addr
  end

let free t addr =
  t.pf.Platform.work t.path_work;
  match Sb_registry.lookup t.reg ~addr with
  | Some sb ->
    let sclass = Superblock.sclass sb in
    let block_size = Superblock.block_size sb in
    let h = my_heap t in
    t.pf.Platform.write ~addr ~len:8;
    h.free_lists.(sclass) <- addr :: h.free_lists.(sclass);
    h.free_bytes <- h.free_bytes + block_size;
    Alloc_stats.on_free t.sh ~usable:block_size
  | None -> if not (Locked_large.try_free t.large ~addr) then invalid_arg "Pure_private.free: foreign pointer"

let usable_size t addr =
  match Sb_registry.lookup t.reg ~addr with
  | Some sb -> Superblock.block_size sb
  | None ->
    (match Locked_large.usable_size t.large ~addr with
     | Some n -> n
     | None -> invalid_arg "Pure_private.usable_size: foreign pointer")

let thread_free_bytes t ~tid =
  match Hashtbl.find_opt t.heaps tid with
  | None -> 0
  | Some h -> h.free_bytes

let check t =
  (* Carved-and-not-on-a-free-list blocks are exactly the live ones. *)
  let carved_bytes = ref 0 in
  Sb_registry.iter t.reg (fun sb -> carved_bytes := !carved_bytes + (Superblock.used sb * Superblock.block_size sb));
  let free_bytes = ref 0 in
  Hashtbl.iter
    (fun _ h ->
      let acc = ref 0 in
      Array.iteri
        (fun sclass lst ->
          List.iter
            (fun addr ->
              match Sb_registry.lookup t.reg ~addr with
              | Some sb when Superblock.sclass sb = sclass -> acc := !acc + Superblock.block_size sb
              | _ -> failwith "Pure_private.check: free-list entry in wrong class or unknown superblock")
            lst)
        h.free_lists;
      if !acc <> h.free_bytes then failwith "Pure_private.check: free_bytes mismatch";
      free_bytes := !free_bytes + !acc)
    t.heaps;
  let s = Alloc_stats.snapshot t.stats in
  if !carved_bytes - !free_bytes + Locked_large.live_bytes t.large <> s.live_bytes then
    failwith "Pure_private.check: live-bytes accounting mismatch"

let allocator t =
  Alloc_api.make ~pf:t.pf ~name:"pure-private" ~owner:t.owner ~large_threshold:(t.sb_size / 2)
    ~malloc:(fun size -> malloc t size)
    ~free:(fun addr -> free t addr)
    ~usable_size:(fun addr -> usable_size t addr)
    ~stats:(fun () -> Alloc_stats.snapshot t.stats)
    ~check:(fun () -> check t)
    ()

let factory ?(sb_size = 8192) () =
  {
    Alloc_intf.label = "pure-private";
    description = "lock-free per-thread heaps, free-to-freeer (STL/Cilk style; unbounded blowup)";
    instantiate = (fun pf -> allocator (create ~sb_size pf));
  }
