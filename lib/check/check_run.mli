(** Oracle-checked workload runs.

    Wires {!Oracle.wrap} (and, for sanitizer subjects, the
    {!Hoard.sanitizer_access_check} platform hook) into the harness
    runner, then audits the run: quiescent live-byte equality after
    {!Hoard.flush_caches}, the paper's blowup envelope against the
    oracle's ideal-allocator peak U, and optionally zero actively-induced
    false sharing. *)

type subject = {
  s_label : string;
  s_describe : string;
  s_config : Hoard_config.t option;
      (** [Some]: a hoard configuration run with a retained handle.
          [None]: a registry allocator (flush/blowup checks skipped). *)
}

val hoard_subjects : subject list
(** [hoard], [hoard-fe], [hoard-san], [hoard-fe-san]. *)

val find_subject : string -> subject option
(** The hoard subjects, then any {!Allocators} registry label. *)

val subject_help : unit -> string

val blowup_slop : Hoard_config.t -> nprocs:int -> peak_live_threads:int -> int
(** The configuration's O(P) term for {!Oracle.check_blowup}, with
    P = the peak concurrently-live thread population
    ({!Runner.result.r_peak_live_threads}) — never the total number of
    threads ever spawned. Exited threads must not widen the envelope:
    their caches are flushed and their superblocks adopted on
    {!Hoard.on_thread_exit}. *)

type report = {
  c_workload : string;
  c_subject : string;
  c_result : Runner.result;
  c_mallocs : int;
  c_peak_usable : int;
  c_shared_lines : int;
  c_quarantine_peak : int;
}

val run_oracle :
  ?fuzz:int ->
  ?nprocs:int ->
  ?nthreads:int ->
  ?check_blowup:bool ->
  ?expect_no_false_sharing:bool ->
  ?overrides:(Hoard_config.t -> Hoard_config.t) ->
  workload:Workload_intf.t ->
  subject:string ->
  unit ->
  report
(** One oracle-checked run ([nprocs] defaults to 4). Raises
    {!Oracle.Oracle_violation}, {!Hoard.Sanitizer_violation} or the
    allocator's own check failures on any discrepancy. [fuzz] seeds the
    schedule fuzzer for interleaving variety; [overrides] is applied to
    the subject's config when it has one (how the CLI threads
    [--set knob=value] through), and the blowup envelope is computed
    from the overridden config. *)

val quick_workloads : unit -> Workload_intf.t list
(** Quick-scale paper workloads for CI sweeps. *)

val find_workload : string -> Workload_intf.t option

val workload_help : unit -> string
