(** Differential allocation oracle.

    Wraps an {!Alloc_intf.t} so that every operation is mirrored into a
    trivially-correct reference model: a live-set map keyed by block
    address and a serial ideal-allocator tracker of U (live requested and
    usable bytes, with peaks). The model asserts, synchronously with each
    operation:

    - no two live blocks overlap;
    - [usable_size] covers the requested size;
    - frees, reallocs and batch frees hit live blocks only;
    - [aligned_alloc] results are aligned;
    - the allocator's accounted live bytes never fall below the
      program's (caches and quarantines only ever add).

    It also tracks *actively-induced false sharing*: cache lines the
    allocator carved up for two different threads out of fresh memory
    (virgin addresses, never previously handed out). Sharing through
    reuse of recycled addresses is passively inherited and not counted,
    matching the paper's distinction.

    Violations raise {!Oracle_violation}. The oracle's state lives behind
    a host mutex — step-atomic on the simulator, so wrapping an allocator
    never perturbs the schedule being checked. *)

exception Oracle_violation of string

type t

val wrap : ?name:string -> ?line_size:int -> Platform.t -> Alloc_intf.t -> t * Alloc_intf.t
(** [wrap pf a] returns the oracle and the checked view of [a]. Hand the
    checked view to the workload; keep [t] for {!final_check}. All
    traffic must go through the wrapped view or the live set drifts. *)

val live_count : t -> int
val live_usable_bytes : t -> int
val peak_usable_bytes : t -> int
val peak_requested_bytes : t -> int

val active_shared_lines : t -> int
(** Cache lines that handed virgin blocks to two different threads. Zero
    for an allocator that avoids actively-induced false sharing (fresh
    lines are never split across threads). *)

val check_blowup : t -> stats:Alloc_stats.snapshot -> empty_fraction:float -> slop:int -> unit
(** Asserts the paper's bound against the run's peaks:
    [peak_held <= 2 * peak_usable / (1 - f) + slop], where [slop] is the
    caller-computed O(P)-term for the configuration (superblock slack,
    release threshold, cache capacities, quarantine). *)

val check_residency : t -> stats:Alloc_stats.snapshot -> reservoir:int -> sb_size:int -> unit
(** Asserts the memory-lifecycle invariant
    [resident_bytes <= held_bytes + reservoir * sb_size] (and that the
    reservoir itself never exceeds its byte capacity, and stays empty
    when disabled). A parked superblock that skipped its decommit, or a
    bounced park that skipped its unmap, violates it. *)

val final_check : ?expect_quiescent_equality:bool -> t -> stats:Alloc_stats.snapshot -> unit
(** End-of-run audit: internal accounting consistency, and live-byte
    agreement with the allocator — exact equality when
    [expect_quiescent_equality] (all caches flushed and the workload
    freed everything it did not intend to leak), a [>=] envelope
    otherwise. *)
