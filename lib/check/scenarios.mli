(** Canned scenarios for {!Explorer}.

    The counter pair ([lost_update] / [locked_update]) self-tests the
    explorer: the first fails at preemption bound 1, the second passes at
    every bound. The hoard scenarios drive the real allocator on a small
    one-heap configuration; with a planted mutant
    ({!Hoard_config.known_mutants}) they reproduce the concurrency bug
    the mutant hides, which the explorer must find and minimize while
    the unmutated variant passes exhaustively. *)

val lost_update : Explorer.scenario
val locked_update : Explorer.scenario

val transfer_free_race : mutant:string -> Explorer.scenario
(** A free racing the owning heap's superblock transfer to the global
    heap (the paper's free protocol). [mutant = "skip-owner-recheck"]
    drops the post-acquire ownership re-check and fails at preemption
    bound 1; [mutant = ""] is the real allocator and passes. *)

val emptiness_trim : mutant:string -> Explorer.scenario
(** Single-threaded invariant check: frees drive a heap across the
    emptiness threshold; the post-run check demands the invariant.
    [mutant = "emptiness-off-by-one"] fails already at bound 0. *)

val registry_churn : Explorer.scenario
(** Superblock register/unregister churn (release-to-OS at threshold 0)
    against the registry's wait-free lookup on concurrent free paths. *)

val reservoir_churn : Explorer.scenario
(** The same churn through a capacity-2 superblock reservoir:
    park/decommit racing take/recommit across heaps, with the
    memory-lifecycle invariant ([resident <= held + R*S]) and
    {!Hoard.check}'s reservoir validation as the post-run oracle. *)

val lockfree_stack : mutant:string -> Explorer.scenario
(** The bounded Treiber stack under the reservoir and the shelf, driven
    raw: concurrent pops (one pushing back) against a small stack, with a
    conservation walk as the post-run oracle.
    [mutant = "reservoir-no-aba"] freezes the ABA tag and is caught at
    preemption bound <= 2; [mutant = ""] passes exhaustively. *)

val park_take_order : mutant:string -> Explorer.scenario
(** A reservoir park racing a lock-free take from a refill.
    [mutant = "park-before-decommit"] publishes the superblock before
    dropping its pages, so the taker's recommit can be undone beneath its
    live block — caught at bound <= 2 by the sanitizer's residency probe;
    [mutant = ""] passes exhaustively. Explore under {!Explorer.Chess}:
    the oracle reads vmem page residency, which step footprints do not
    see, so sleep-set pruning is unsound for this scenario. *)

val shelf_transfer : Explorer.scenario
(** Empty superblocks churning through the lock-free shelf (CAS push in
    the trim racing CAS pop in the refill), with {!Hoard.check}'s shelf
    validation as the post-run oracle. *)

val deferred_remote_free : mutant:string -> Explorer.scenario
(** Two remote flushes racing CAS pushes onto one heap's deferred free
    list, end to end through the allocator. The post-run oracle counts
    the listed blocks. [mutant = "deferred-lost-node"] treats a failed
    push CAS as success and leaks a block at preemption bound <= 2;
    [mutant = ""] passes exhaustively. *)

val large_cache_churn : mutant:string -> Explorer.scenario
(** The large-object cache's park/take protocol driven raw on one
    bucket: three takers racing a park, with a conservation walk plus
    {!Large_cache.check}'s residency validation as the post-run oracle.
    [mutant = "large-cache-no-aba"] freezes the bucket's ABA tag and is
    caught at bound <= 2; [mutant = ""] passes exhaustively. Explore
    under {!Explorer.Chess}: the oracle reads vmem page residency, which
    step footprints do not see (same caveat as {!park_take_order}). *)

val global_transfer : Explorer.scenario
(** The lock-free global heap end to end ([Hoard_config.global] =
    [Lockfree]): a trim's index publish racing a refill's claim CAS
    racing a deferred free's Busy-handshake reclaim, with
    {!Hoard.check}'s index walk and live-byte conservation as the
    post-run oracle. Passes exhaustively at preemption bound 2. *)

val global_index_churn : mutant:string -> Explorer.scenario
(** {!Global_index}'s ABA-tagged entry stacks driven raw: three racing
    [take_empty] claims against concurrent publishes, with the index's
    exhaustive walk plus a conservation count as the post-run oracle.
    [mutant = "global-no-aba"] freezes the stack tags (the flag
    {!Hoard.create} wires from [Hoard_config.mutant]) and a stale splice
    is caught at bound <= 2; [mutant = ""] passes exhaustively. *)

val global_index_free : mutant:string -> Explorer.scenario
(** {!Global_index.free_block}'s Busy handshake racing an [acquire]'s
    claim CAS on one partial member, driven raw.
    [mutant = "global-skip-revalidate"] claims with a blind store that
    stomps a concurrent Busy word — caught at bound <= 2;
    [mutant = ""] passes exhaustively. *)

val all : unit -> Explorer.scenario list

val find : string -> Explorer.scenario option
(** Lookup by [sc_name] (mutant variants are suffixed ["-mutant"]). *)

val help : unit -> string
(** One line per scenario for [--scenario help]. *)
