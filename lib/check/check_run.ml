(* Oracle-checked workload runs: the harness runner with the
   differential oracle interposed on the allocator, and — for sanitizer
   subjects — the heap sanitizer's access checker installed on the
   workload's view of the platform. This is the layer the hoard_check
   CLI and the deep-check CI job drive. *)

let sprintf = Printf.sprintf

type subject = {
  s_label : string;
  s_describe : string;
  s_config : Hoard_config.t option;
      (* Some: a hoard instance we keep a handle on (flushable, sanitizer
         wirable, blowup-checkable). None: a registry factory (baselines
         have no quiescent-flush or blowup story, so those checks are
         skipped for them). *)
}

let hoard_subjects =
  [
    { s_label = "hoard"; s_describe = "paper-exact configuration"; s_config = Some Hoard_config.default };
    {
      s_label = "hoard-fe";
      s_describe = "lock-free front end";
      s_config = Some (Hoard_config.make ~front_end:Allocators.front_end_default ());
    };
    {
      s_label = "hoard-df";
      s_describe = "front end with deferred remote-free lists and the large-object cache";
      s_config =
        Some
          (Hoard_config.make ~front_end:Allocators.front_end_default ~deferred:true
             ~large_cache:Allocators.large_cache_default ());
    };
    {
      s_label = "hoard-df-san";
      s_describe = "deferred frees and large cache with the sanitizer on";
      s_config =
        Some
          (Hoard_config.make ~front_end:Allocators.front_end_default ~deferred:true
             ~large_cache:Allocators.large_cache_default ~sanitize:true ());
    };
    {
      s_label = "hoard-san";
      s_describe = "sanitizer on (poison, canaries, quarantine)";
      s_config = Some (Hoard_config.make ~sanitize:true ());
    };
    {
      s_label = "hoard-fe-san";
      s_describe = "front end and sanitizer together";
      s_config = Some (Hoard_config.make ~front_end:Allocators.front_end_default ~sanitize:true ());
    };
    {
      s_label = "hoard-res";
      s_describe = "superblock reservoir on the first-fit vmem backend, sanitizer on";
      (* The sanitizer makes decommitted-page touches and
         recommit-on-reuse part of what this subject checks. *)
      s_config =
        Some (Hoard_config.make ~reservoir:4 ~vmem_backend:Vmem_backend.First_fit ~sanitize:true ());
    };
    {
      s_label = "hoard-shelf";
      s_describe = "lock-free shelf and reservoir in front of the global heap, with the front end";
      s_config =
        Some (Hoard_config.make ~shelf:4 ~reservoir:4 ~front_end:Allocators.front_end_default ());
    };
  ]

let find_subject label =
  match List.find_opt (fun s -> s.s_label = label) hoard_subjects with
  | Some s -> Some s
  | None ->
    (match Allocators.find label with
     | Some f -> Some { s_label = label; s_describe = f.Alloc_intf.description; s_config = None }
     | None -> None)

let subject_help () =
  let own =
    List.map (fun s -> sprintf "  %-14s %s" s.s_label s.s_describe) hoard_subjects |> String.concat "\n"
  in
  own ^ "\n(plus any registry allocator: " ^ String.concat ", " (Allocators.labels ()) ^ ")"

(* The O(P) term of the paper's blowup bound, from the configuration: per
   heap, K superblocks of slack, one being installed (the invariant is
   only enforced on frees), one in transit to the global heap, and one
   pinned per size class by the trim's protect-last rule; the global
   heap's retained empties; front-end caches and remote queues park whole
   blocks; the quarantine holds back frees; threads keep one allocation
   in flight. All counted at superblock granularity where a superblock
   could be pinned, so the envelope is generous but still O(U + P).

   P here is the PEAK LIVE thread population (Sim.peak_live_threads),
   not the total ever spawned: a retiring thread's exit path flushes its
   caches and hands its heap's superblocks to the global heap, so under
   churn the threads that have come and gone must not widen the
   envelope. Holding the bound to peak-live P is precisely what tests
   that orphaned-superblock adoption works. *)
let blowup_slop cfg ~nprocs ~peak_live_threads =
  let s = cfg.Hoard_config.sb_size in
  let p = peak_live_threads in
  let heaps = (match cfg.Hoard_config.nheaps with Some n -> n | None -> nprocs) + 1 in
  let per_heap = (cfg.Hoard_config.slack + 4) * s * heaps in
  let retained = (cfg.Hoard_config.release_threshold + 1) * s in
  let in_flight = p * s in
  let fe = if cfg.Hoard_config.front_end > 0 then (p + heaps) * s else 0 in
  let quarantine = if cfg.Hoard_config.sanitize then cfg.Hoard_config.quarantine * Hoard_config.max_small cfg else 0 in
  (* The shelf parks up to [shelf] empty superblocks outside any heap. *)
  let shelf = cfg.Hoard_config.shelf * s in
  (* Deferred lists are unbounded, but a block only floats between a
     producer's eviction (at most a cache's worth per flush) and the
     owner's next fill — the same per-thread granularity as the caches,
     counted once more per heap since reclaims happen heap by heap. *)
  let deferred = if cfg.Hoard_config.deferred && cfg.Hoard_config.front_end > 0 then (p + heaps) * s else 0 in
  (* The large cache keeps up to cap regions per bucket mapped (1..16
     pages each, 4 KiB pages on every platform we build). *)
  let large_cache = cfg.Hoard_config.large_cache * (16 * 17 / 2) * 4096 in
  per_heap + retained + in_flight + fe + quarantine + shelf + deferred + large_cache

type report = {
  c_workload : string;
  c_subject : string;
  c_result : Runner.result;
  c_mallocs : int;  (** operations the oracle checked *)
  c_peak_usable : int;  (** the oracle's ideal-allocator peak U *)
  c_shared_lines : int;  (** actively-induced false sharing (oracle) *)
  c_quarantine_peak : int;  (** sanitizer quarantine length before flush *)
}

(* Run [workload] on [subject] with every operation oracle-checked.
   Raises Oracle.Oracle_violation / Hoard.Sanitizer_violation (or the
   allocator's own check failure) on any discrepancy. *)
let run_oracle ?fuzz ?(nprocs = 4) ?nthreads ?(check_blowup = true) ?(expect_no_false_sharing = false)
    ?(overrides = fun cfg -> cfg) ~workload ~subject () =
  let s =
    match find_subject subject with
    | Some s -> { s with s_config = Option.map overrides s.s_config }
    | None -> invalid_arg (sprintf "Check_run.run_oracle: unknown subject %S" subject)
  in
  let handle = ref None in
  let factory =
    match s.s_config with
    | None -> Option.get (Allocators.find s.s_label)
    | Some config ->
      {
        Alloc_intf.label = s.s_label;
        description = s.s_describe;
        instantiate =
          (fun pf ->
            let h = Hoard.create ~config pf in
            handle := Some h;
            Hoard.allocator h);
      }
  in
  let oracle = ref None in
  let wrap_allocator pf a =
    let o, checked = Oracle.wrap pf a in
    oracle := Some o;
    checked
  in
  let wrap_platform pf =
    match !handle with
    | None -> pf
    | Some h ->
      (match Hoard.sanitizer_access_check h with
       | None -> pf
       | Some checker ->
         {
           pf with
           Platform.read =
             (fun ~addr ~len ->
               checker ~addr ~len ~write:false;
               pf.Platform.read ~addr ~len);
           write =
             (fun ~addr ~len ->
               checker ~addr ~len ~write:true;
               pf.Platform.write ~addr ~len);
         })
  in
  let quarantine_peak = ref 0 in
  let post (a : Alloc_intf.t) =
    let o = Option.get !oracle in
    (match !handle with
     | None -> Oracle.final_check o ~stats:(a.Alloc_intf.stats ())
     | Some h ->
       quarantine_peak := Hoard.quarantine_length h;
       Hoard.flush_caches h;
       Hoard.check h;
       (* Quiescent: caches, queues and quarantine drained, so the
          allocator's live bytes must match the oracle's exactly. *)
       Oracle.final_check ~expect_quiescent_equality:true o ~stats:(a.Alloc_intf.stats ());
       let cfg = Hoard.config h in
       (* The memory-lifecycle invariant holds whether or not the
          reservoir is on (with R = 0 it degenerates to
          resident <= held). *)
       Oracle.check_residency o ~stats:(a.Alloc_intf.stats ())
         ~reservoir:cfg.Hoard_config.reservoir ~sb_size:cfg.Hoard_config.sb_size);
    if expect_no_false_sharing && Oracle.active_shared_lines o > 0 then
      raise
        (Oracle.Oracle_violation
           (sprintf "oracle[%s]: %d cache line(s) actively shared between threads" s.s_label
              (Oracle.active_shared_lines o)))
  in
  let vmem_backend =
    match s.s_config with
    | Some cfg -> cfg.Hoard_config.vmem_backend
    | None -> Vmem_backend.Exact
  in
  let spec = Runner.spec ?nthreads ~vmem_backend workload factory ~nprocs in
  let r = Runner.run_with ?fuzz ~wrap_allocator ~wrap_platform ~post spec in
  let o = Option.get !oracle in
  (* Blowup is checked after the run, when the simulator can report the
     peak LIVE thread population — the P of the O(U + P) bound. Under
     churn workloads this is far below the total thread count; exited
     threads must not leave memory stranded (that is the adoption
     path's contract). The stats snapshot is quiescent: [post] flushed
     every cache before it was taken. *)
  (match !handle with
   | Some h when check_blowup ->
     let cfg = Hoard.config h in
     Oracle.check_blowup o ~stats:r.Runner.r_stats
       ~empty_fraction:cfg.Hoard_config.empty_fraction
       ~slop:(blowup_slop cfg ~nprocs ~peak_live_threads:r.Runner.r_peak_live_threads)
   | _ -> ());
  {
    c_workload = r.Runner.r_workload;
    c_subject = s.s_label;
    c_result = r;
    c_mallocs = r.Runner.r_stats.Alloc_stats.mallocs;
    c_peak_usable = Oracle.peak_usable_bytes o;
    c_shared_lines = Oracle.active_shared_lines o;
    c_quarantine_peak = !quarantine_peak;
  }

(* Quick-scale variants of the paper workloads, the set the deep-check
   CI job sweeps. Sizes chosen so an oracle-checked run stays in the
   hundreds of milliseconds. *)
let quick_workloads () =
  [
    Threadtest.make ~params:{ Threadtest.default_params with Threadtest.iterations = 4; objects = 2000 } ();
    Larson.make
      ~params:{ Larson.default_params with Larson.rounds = 60; handoffs = 4; objects_per_thread = 40 }
      ();
    Producer_consumer.make
      ~params:{ Producer_consumer.default_params with Producer_consumer.rounds = 12; batch = 40 }
      ();
    False_sharing.active ~params:{ False_sharing.default_params with False_sharing.loops = 96; writes_per_object = 40 } ();
    (* Thread churn: every thread retires through the exit path, so the
       oracle checks adoption end to end and the blowup envelope is held
       to P = peak live threads. *)
    Churn.make
      ~params:{ Churn.default_params with Churn.generations = 2; iterations = 2; objects = 24; spawn_gap = 10_000 }
      ();
    Churn.make
      ~params:
        {
          Churn.default_params with
          Churn.pattern = Churn.Rolling;
          body = Churn.Larson_body;
          generations = 2;
          iterations = 2;
          objects = 24;
          spawn_gap = 10_000;
        }
      ();
    Churn.make
      ~params:
        {
          Churn.default_params with
          Churn.pattern = Churn.Flash;
          body = Churn.Server_body;
          generations = 2;
          iterations = 2;
          objects = 24;
          spawn_gap = 10_000;
        }
      ();
  ]

let find_workload name = List.find_opt (fun w -> w.Workload_intf.w_name = name) (quick_workloads ())

let workload_help () =
  quick_workloads ()
  |> List.map (fun w -> sprintf "  %-20s %s" w.Workload_intf.w_name w.Workload_intf.w_describe)
  |> String.concat "\n"
