(* Canned scenarios for the schedule explorer.

   Each scenario builds a fresh machine per run (the explorer replays
   them hundreds of times), spawns at most one thread per processor as
   controlled mode requires, and returns a post-run check. The two
   counter scenarios are self-tests of the explorer itself; the hoard
   scenarios drive the real allocator — optionally with a planted mutant
   (Hoard_config.mutant) whose bug only fires under a specific
   interleaving, which the explorer must find and minimize. *)

let sprintf = Printf.sprintf

(* A classic lost update: both threads read a shared counter, pass a
   synchronisation point (an unrelated lock, which is what makes the
   window visible to a preemption-bounded explorer), then write back
   +1. The counter itself is host state mirrored by simulated accesses
   to a fixed address so that step footprints expose the conflict. *)
let counter_addr = 0x4000_0000

let lost_update =
  {
    Explorer.sc_name = "lost-update";
    sc_describe = "unsynchronized read-modify-write of a shared counter; fails at preemption bound 1";
    sc_nprocs = 2;
    sc_build =
      (fun sim _pf ->
        let c = ref 0 in
        let tick = Sim.new_lock sim "tick" in
        for p = 0 to 1 do
          ignore
            (Sim.spawn sim ~proc:p (fun () ->
                 Sim.read ~addr:counter_addr ~len:8;
                 let v = !c in
                 Sim.acquire tick;
                 Sim.release tick;
                 c := v + 1;
                 Sim.write ~addr:counter_addr ~len:8))
        done;
        fun () -> if !c <> 2 then failwith (sprintf "lost update: counter = %d, expected 2" !c));
  }

(* The same counter correctly guarded: the read-modify-write sits inside
   the critical section. No interleaving loses an update. *)
let locked_update =
  {
    Explorer.sc_name = "locked-update";
    sc_describe = "the same counter under a lock; passes at every bound";
    sc_nprocs = 2;
    sc_build =
      (fun sim _pf ->
        let c = ref 0 in
        let mu = Sim.new_lock sim "mu" in
        for p = 0 to 1 do
          ignore
            (Sim.spawn sim ~proc:p (fun () ->
                 Sim.acquire mu;
                 Sim.read ~addr:counter_addr ~len:8;
                 let v = !c in
                 Sim.work 5;
                 c := v + 1;
                 Sim.write ~addr:counter_addr ~len:8;
                 Sim.release mu))
        done;
        fun () -> if !c <> 2 then failwith (sprintf "locked update: counter = %d, expected 2" !c));
  }

(* Shared scaffolding for the hoard scenarios: a one-heap configuration
   on a 4 KiB superblock so a handful of allocations spans exactly two
   superblocks of one size class. *)
let race_config ~mutant =
  Hoard_config.make ~sb_size:4096 ~nheaps:(Some 1) ~slack:0 ~empty_fraction:0.5 ~path_work:0
    ~release_to_os:false ~front_end:0 ~mutant ()

(* Pick the largest size class whose superblock capacity is at least
   [min_cap] blocks — big blocks keep the setup short, enough capacity
   keeps the fullness arithmetic below valid. *)
let pick_class sc ~sb_size ~min_cap =
  let best = ref None in
  for c = 0 to Size_class.count sc - 1 do
    let bsize = Size_class.size_of_class sc c in
    let cap = (sb_size - Superblock.header_bytes) / bsize in
    if cap >= min_cap then best := Some (bsize, cap)
  done;
  match !best with
  | Some r -> r
  | None -> invalid_arg "pick_class: no class with the requested capacity"

let sb_base ~sb_size addr = addr - (addr mod sb_size)

(* The free/transfer race from the paper's free protocol. Thread A owns a
   heap holding two superblocks: SB1 nearly empty (2 live blocks), SB2
   just above the emptiness threshold; the heap sits exactly ON the
   threshold. A frees one SB2 block, crossing it, so A's free transfers
   SB1 — with thread B's block still live inside — to the global heap.
   Concurrently B frees that block: B reads SB1's owner (heap 1), then
   must lock heap 1. If B's lock attempt lands inside A's critical
   section (one preemption), B enters only after the transfer completed
   and its owner snapshot is stale. The real allocator re-checks
   ownership after acquiring (Hoard's lock_owner) and retries against
   the global heap; the skip-owner-recheck mutant frees into the stale
   heap and Heap_core rejects the foreign superblock. *)
let transfer_free_race ~mutant =
  {
    Explorer.sc_name = (if mutant = "" then "transfer-free-race" else "transfer-free-race-mutant");
    sc_describe =
      (if mutant = "" then "free racing a superblock transfer; the ownership re-check protects it"
       else "same race against the skip-owner-recheck mutant; fails at preemption bound 1");
    sc_nprocs = 2;
    sc_build =
      (fun sim pf ->
        let config = race_config ~mutant in
        let h = Hoard.create ~config pf in
        let a = Hoard.allocator h in
        let sb_size = config.Hoard_config.sb_size in
        let bsize, cap = pick_class (Hoard.size_classes h) ~sb_size ~min_cap:7 in
        let barrier = Sim.new_barrier sim ~parties:2 in
        let a_target = ref 0 and b_target = ref 0 in
        ignore
          (Sim.spawn sim ~proc:0 (fun () ->
               (* Fill two superblocks of the class. *)
               let addrs = Array.init (2 * cap) (fun _ -> a.Alloc_intf.malloc bsize) in
               let base1 = sb_base ~sb_size addrs.(0) in
               let g1, g2 = Array.to_list addrs |> List.partition (fun x -> sb_base ~sb_size x = base1) in
               if List.length g1 <> cap || List.length g2 <> cap then
                 failwith "transfer-free-race: allocations did not split 2 superblocks evenly";
               (* Leave 2 blocks live in SB1 (one is B's target) and
                  cap-2 in SB2: cap live blocks total, exactly on the
                  emptiness threshold (u = cap * bsize = (1-f) * a). *)
               (match g1 with
                | keep :: _ :: rest -> b_target := keep; List.iter a.Alloc_intf.free rest
                | _ -> assert false);
               (match g2 with
                | x :: y :: next :: _ -> a.Alloc_intf.free x; a.Alloc_intf.free y; a_target := next
                | _ -> assert false);
               Sim.barrier_wait barrier;
               (* Crosses the threshold: trim picks SB1 (2/cap full vs
                  SB2's (cap-3)/cap > 1-f) and transfers it. *)
               a.Alloc_intf.free !a_target));
        ignore
          (Sim.spawn sim ~proc:1 (fun () ->
               Sim.barrier_wait barrier;
               a.Alloc_intf.free !b_target));
        fun () ->
          Hoard.check h;
          if not (Hoard.invariant_holds h ~heap_id:1) then
            failwith "transfer-free-race: emptiness invariant violated on heap 1");
  }

(* Single-threaded emptiness-invariant scenario: drive a heap well below
   the threshold and rely on the post-run check. The real allocator
   restores the invariant during the frees; the emptiness-off-by-one
   mutant trims against K+1 and leaves the heap too empty — caught even
   on the default schedule (preemption bound 0), i.e. by the invariant
   check alone, no interleaving needed. *)
let emptiness_trim ~mutant =
  {
    Explorer.sc_name = (if mutant = "" then "emptiness-trim" else "emptiness-trim-mutant");
    sc_describe =
      (if mutant = "" then "frees crossing the emptiness threshold; trims restore the invariant"
       else "emptiness-off-by-one mutant retains too-empty superblocks; fails at bound 0");
    sc_nprocs = 1;
    sc_build =
      (fun sim pf ->
        let config = { (race_config ~mutant) with Hoard_config.slack = 1 } in
        let h = Hoard.create ~config pf in
        let a = Hoard.allocator h in
        let sb_size = config.Hoard_config.sb_size in
        let bsize, cap = pick_class (Hoard.size_classes h) ~sb_size ~min_cap:7 in
        ignore
          (Sim.spawn sim ~proc:0 (fun () ->
               let addrs = Array.init (3 * cap) (fun _ -> a.Alloc_intf.malloc bsize) in
               (* Empty the first two superblocks down to one live block
                  each: u = (cap+2) * bsize out of 3 superblocks held. *)
               for i = 0 to cap - 2 do
                 a.Alloc_intf.free addrs.(i);
                 a.Alloc_intf.free addrs.(cap + i)
               done));
        fun () ->
          Hoard.check h;
          if not (Hoard.invariant_holds h ~heap_id:1) then
            failwith "emptiness-trim: emptiness invariant violated on heap 1");
  }

(* Superblock registry churn: three threads on two heaps, each cycling a
   block that fills a whole superblock, with release_to_os at threshold
   0 — every free empties a superblock, transfers it to the global heap
   and unmaps it, so register/unregister runs concurrently with the
   wait-free lookup on every other thread's free path. The explorer
   checks no interleaving makes a lookup observe a freed superblock
   (which would surface as a crash or a wrong usable_size). *)
let registry_churn =
  {
    Explorer.sc_name = "registry-churn";
    sc_describe = "mallocs/frees churning superblock map/unmap under concurrent wait-free lookups";
    sc_nprocs = 3;
    sc_build =
      (fun sim pf ->
        let config =
          {
            (race_config ~mutant:"") with
            Hoard_config.nheaps = Some 2;
            release_to_os = true;
            release_threshold = 0;
          }
        in
        let h = Hoard.create ~config pf in
        let a = Hoard.allocator h in
        let size = Hoard_config.max_small config in
        for p = 0 to 2 do
          ignore
            (Sim.spawn sim ~proc:p (fun () ->
                 for _ = 1 to 3 do
                   let addr = a.Alloc_intf.malloc size in
                   let u = a.Alloc_intf.usable_size addr in
                   if u < size then failwith (sprintf "registry-churn: usable %d < %d" u size);
                   a.Alloc_intf.free addr
                 done))
        done;
        fun () -> Hoard.check h);
  }

(* The registry-churn pattern with the reservoir interposed: every free
   empties a superblock which now parks (decommitted) instead of
   unmapping, and the next malloc takes it back (commit + reformat +
   re-register) — so park/take runs concurrently with wait-free lookups
   and with other threads' park offers racing for the last slot. The
   post-run check leans on [Hoard.check]'s reservoir validation (parked
   superblocks empty, unregistered, decommitted) plus the lifecycle
   invariant on the stats. *)
let reservoir_churn =
  {
    Explorer.sc_name = "reservoir-churn";
    sc_describe = "whole-superblock churn through the reservoir: park/decommit racing take/recommit";
    sc_nprocs = 3;
    sc_build =
      (fun sim pf ->
        let config =
          {
            (race_config ~mutant:"") with
            Hoard_config.nheaps = Some 2;
            release_to_os = true;
            release_threshold = 0;
            reservoir = 2;
          }
        in
        let h = Hoard.create ~config pf in
        let a = Hoard.allocator h in
        let size = Hoard_config.max_small config in
        for p = 0 to 2 do
          ignore
            (Sim.spawn sim ~proc:p (fun () ->
                 for _ = 1 to 3 do
                   let addr = a.Alloc_intf.malloc size in
                   let u = a.Alloc_intf.usable_size addr in
                   if u < size then failwith (sprintf "reservoir-churn: usable %d < %d" u size);
                   a.Alloc_intf.free addr
                 done))
        done;
        fun () ->
          Hoard.check h;
          let len = Hoard.reservoir_length h in
          if len > config.Hoard_config.reservoir then
            failwith
              (sprintf "reservoir-churn: %d parked superblocks above cap %d" len
                 config.Hoard_config.reservoir);
          let s = (Hoard.allocator h).Alloc_intf.stats () in
          let cap = config.Hoard_config.reservoir * config.Hoard_config.sb_size in
          if s.Alloc_stats.resident_bytes > s.Alloc_stats.held_bytes + cap then
            failwith
              (sprintf "reservoir-churn: resident %d > held %d + R*S %d" s.Alloc_stats.resident_bytes
                 s.Alloc_stats.held_bytes cap));
  }

(* The Treiber protocol itself, raw: the bounded lock-free stack that
   carries both the superblock reservoir and the empty-superblock shelf,
   driven directly so every link word is a schedule step. Three threads
   pop (one of them pushes back) against a 3-deep stack; the post-run
   check walks the structure and demands every accepted push is
   accounted for exactly once. With the ABA tag frozen
   (mutant = "reservoir-no-aba"), a popper preempted between its link
   load and its head CAS can resume after the top slot was recycled and
   install a stale link — the walk then finds a payload-less or
   twice-linked slot. Two preemptions suffice: one to park the popper in
   its window, one to split another pop between its head CAS and its
   free-stack push (which is what lets the slot pool hand the recycled
   slot out under a different link). *)
let lockfree_stack ~mutant =
  {
    Explorer.sc_name = (if mutant = "" then "lockfree-stack" else "lockfree-stack-mutant");
    sc_describe =
      (if mutant = "" then "pops racing pushes on the tagged Treiber stack under the reservoir and shelf"
       else "the same race with the ABA tag frozen; a stale pop corrupts the stack at bound <= 2");
    sc_nprocs = 3;
    sc_build =
      (fun sim pf ->
        let stack =
          Lockfree.create pf ~name:"stack" ~cap:4 ~aba_tag:(mutant <> "reservoir-no-aba") ()
        in
        let barrier = Sim.new_barrier sim ~parties:3 in
        let popped = Array.make 3 [] in
        let note p = function None -> () | Some v -> popped.(p) <- v :: popped.(p) in
        ignore
          (Sim.spawn sim ~proc:0 (fun () ->
               ignore (Lockfree.push stack 101);
               ignore (Lockfree.push stack 102);
               ignore (Lockfree.push stack 103);
               Sim.barrier_wait barrier;
               note 0 (Lockfree.pop stack)));
        ignore
          (Sim.spawn sim ~proc:1 (fun () ->
               Sim.barrier_wait barrier;
               note 1 (Lockfree.pop stack)));
        ignore
          (Sim.spawn sim ~proc:2 (fun () ->
               Sim.barrier_wait barrier;
               note 2 (Lockfree.pop stack);
               ignore (Lockfree.push stack 105)));
        fun () ->
          (* [iter] itself rejects cycles, twice-linked slots and
             payload-less live slots — the structural ABA signatures. *)
          let remaining = ref [] in
          Lockfree.iter stack (fun v -> remaining := v :: !remaining);
          if List.length !remaining <> Lockfree.length stack then
            failwith
              (sprintf "lockfree-stack: walk found %d elements, counters say %d"
                 (List.length !remaining) (Lockfree.length stack));
          let acc = !remaining @ popped.(0) @ popped.(1) @ popped.(2) in
          if List.length acc <> Lockfree.pushes stack then
            failwith
              (sprintf "lockfree-stack: %d elements accounted for, %d pushes accepted"
                 (List.length acc) (Lockfree.pushes stack));
          let rec dup = function
            | a :: (b :: _ as tl) -> a = b || dup tl
            | _ -> false
          in
          if dup (List.sort compare acc) then
            failwith "lockfree-stack: an element surfaced twice (lost ABA tag?)");
  }

(* The park/take ordering of the reservoir lifecycle. Thread 0 empties a
   whole superblock, whose free transfers and parks it; thread 1
   concurrently mallocs, and its refill — having found the global heap
   empty and released the global lock — races the lock-free take against
   the park. The real path decommits strictly BEFORE publishing, so any
   taker recommits pages nobody will touch again; the
   park-before-decommit mutant publishes first, and in the schedule
   where the take lands inside that window the parker's decommit drops
   pages out from under thread 1's live block — which the sanitizer's
   residency probe (both threads quiescent, after the barrier) reports. *)
let park_take_order ~mutant =
  {
    Explorer.sc_name = (if mutant = "" then "park-take-order" else "park-take-order-mutant");
    sc_describe =
      (if mutant = "" then "reservoir park racing a lock-free take; decommit-before-publish protects the taker"
       else "park-before-decommit mutant: the parker decommits under the taker's live block at bound <= 2");
    sc_nprocs = 2;
    sc_build =
      (fun sim pf ->
        let config =
          {
            (race_config ~mutant) with
            Hoard_config.nheaps = Some 2;
            release_to_os = true;
            release_threshold = 0;
            reservoir = 1;
            (* quarantine 0: frees are checked but recycle immediately, so
               thread 0's free still empties its superblock on the spot. *)
            sanitize = true;
            quarantine = 0;
          }
        in
        let h = Hoard.create ~config pf in
        let a = Hoard.allocator h in
        let checker = Option.get (Hoard.sanitizer_access_check h) in
        let size = Hoard_config.max_small config in
        let barrier = Sim.new_barrier sim ~parties:2 in
        ignore
          (Sim.spawn sim ~proc:0 (fun () ->
               (* One block fills the whole superblock: the free empties
                  it, the trim transfers it, release_surplus parks it. *)
               let addr = a.Alloc_intf.malloc size in
               a.Alloc_intf.free addr;
               Sim.barrier_wait barrier));
        ignore
          (Sim.spawn sim ~proc:1 (fun () ->
               let addr = a.Alloc_intf.malloc size in
               Sim.barrier_wait barrier;
               (* Both threads quiescent: if the parker's decommit landed
                  after our recommit, the pages under this live block are
                  gone now. *)
               checker ~addr ~len:8 ~write:true;
               Sim.write ~addr ~len:8));
        fun () -> Hoard.check h);
  }

(* The non-blocking transfer path end to end: with a shelf configured,
   every emptiness trim pushes its empty victim with one CAS and every
   refill pops the same way, three threads on two heaps churning
   whole-superblock blocks through it. The post-run check leans on
   [Hoard.check]'s shelf validation (shelved superblocks empty,
   registered, resident, owned by heap 0, walked by the
   corruption-detecting [Lockfree.iter]) plus the cap. *)
let shelf_transfer =
  {
    Explorer.sc_name = "shelf-transfer";
    sc_describe = "empty superblocks churning through the lock-free shelf: CAS push racing CAS pop";
    sc_nprocs = 3;
    sc_build =
      (fun sim pf ->
        let config = { (race_config ~mutant:"") with Hoard_config.nheaps = Some 2; shelf = 2 } in
        let h = Hoard.create ~config pf in
        let a = Hoard.allocator h in
        let size = Hoard_config.max_small config in
        for p = 0 to 2 do
          ignore
            (Sim.spawn sim ~proc:p (fun () ->
                 for _ = 1 to 2 do
                   let addr = a.Alloc_intf.malloc size in
                   let u = a.Alloc_intf.usable_size addr in
                   if u < size then failwith (sprintf "shelf-transfer: usable %d < %d" u size);
                   a.Alloc_intf.free addr
                 done))
        done;
        fun () ->
          Hoard.check h;
          let len = Hoard.shelf_length h in
          if len > config.Hoard_config.shelf then
            failwith (sprintf "shelf-transfer: %d shelved superblocks above cap %d" len config.Hoard_config.shelf));
  }

(* Producers racing CAS pushes onto one owner's deferred free list, end
   to end through the allocator: thread 0 (heap 1) allocates two blocks
   and hands one to each of threads 1 and 2 (heaps 2 and 3); their
   remote frees land in their front-end caches, and the flushes
   surrender each block with a push onto heap 1's deferred list — the
   two pushes race on the list head. The real push retries a failed
   CAS; the deferred-lost-node mutant treats the failure as success, so
   in the schedule where one push lands inside the other's load-to-CAS
   window a block leaves every list and the post-run count comes up
   short. *)
let deferred_remote_free ~mutant =
  {
    Explorer.sc_name = (if mutant = "" then "deferred-remote-free" else "deferred-remote-free-mutant");
    sc_describe =
      (if mutant = "" then "remote flushes racing CAS pushes onto one heap's deferred free list"
       else "the same push race with the lost-node mutant; a dropped push leaks a block at bound <= 2");
    sc_nprocs = 3;
    sc_build =
      (fun sim pf ->
        let config =
          { (race_config ~mutant) with Hoard_config.nheaps = Some 3; front_end = 2; deferred = true }
        in
        let h = Hoard.create ~config pf in
        let a = Hoard.allocator h in
        let bsize, _ =
          pick_class (Hoard.size_classes h) ~sb_size:config.Hoard_config.sb_size ~min_cap:7
        in
        let barrier = Sim.new_barrier sim ~parties:3 in
        let t1 = ref 0 and t2 = ref 0 in
        ignore
          (Sim.spawn sim ~proc:0 (fun () ->
               t1 := a.Alloc_intf.malloc bsize;
               t2 := a.Alloc_intf.malloc bsize;
               Sim.barrier_wait barrier));
        List.iter
          (fun (p, target) ->
            ignore
              (Sim.spawn sim ~proc:p (fun () ->
                   Sim.barrier_wait barrier;
                   a.Alloc_intf.free !target;
                   a.Alloc_intf.flush ())))
          [ (1, t1); (2, t2) ];
        fun () ->
          Hoard.check h;
          let listed = Array.fold_left ( + ) 0 (Hoard.deferred_lengths h) in
          if listed <> 2 then
            failwith
              (sprintf "deferred-remote-free: %d block(s) on the deferred lists, expected 2" listed));
  }

(* The large-object cache's park/take protocol, raw (the lockfree-stack
   pattern over a Large_cache bucket): three threads take 1-page regions
   from a 3-deep bucket while one of them parks a fourth back. The
   post-run check walks the buckets (Lockfree.iter rejects the
   structural ABA signatures), re-runs the residency check, and demands
   every accepted park is accounted for exactly once across takers and
   the remaining parked set. With the tag frozen
   (mutant = "large-cache-no-aba"), a taker preempted between its link
   load and its head CAS can install a stale link after the slot was
   recycled — caught at preemption bound <= 2 like the reservoir's
   stack. *)
let large_cache_churn ~mutant =
  {
    Explorer.sc_name = (if mutant = "" then "large-cache-churn" else "large-cache-churn-mutant");
    sc_describe =
      (if mutant = "" then "takes racing a park on one large-cache bucket: pop CAS against push CAS"
       else "the same churn with the ABA tag frozen; a stale take corrupts the bucket at bound <= 2");
    sc_nprocs = 3;
    sc_build =
      (fun sim pf ->
        let page = pf.Platform.page_size in
        let cache =
          Large_cache.create pf ~name:"lcache" ~cap:4 ~aba_tag:(mutant <> "large-cache-no-aba") ()
        in
        let regions = Array.make 4 0 in
        let park i =
          match Large_cache.park cache ~addr:regions.(i) ~mapped:page with
          | `Parked -> ()
          | `Bounced | `Uncacheable -> failwith "large-cache-churn: park into a free slot failed"
        in
        let barrier = Sim.new_barrier sim ~parties:3 in
        let taken = Array.make 3 [] in
        let note p = function None -> () | Some v -> taken.(p) <- v :: taken.(p) in
        ignore
          (Sim.spawn sim ~proc:0 (fun () ->
               (* page_map is a machine operation: regions are mapped from
                  inside the simulation, before the others unblock. *)
               for i = 0 to 3 do
                 regions.(i) <- pf.Platform.page_map ~bytes:page ~align:page ~owner:0
               done;
               park 0;
               park 1;
               park 2;
               Sim.barrier_wait barrier;
               note 0 (Large_cache.take cache ~mapped:page)));
        ignore
          (Sim.spawn sim ~proc:1 (fun () ->
               Sim.barrier_wait barrier;
               note 1 (Large_cache.take cache ~mapped:page)));
        ignore
          (Sim.spawn sim ~proc:2 (fun () ->
               Sim.barrier_wait barrier;
               note 2 (Large_cache.take cache ~mapped:page);
               park 3));
        fun () ->
          Large_cache.check cache;
          let remaining = ref [] in
          Large_cache.iter cache (fun ~addr ~mapped:_ -> remaining := addr :: !remaining);
          let acc = !remaining @ taken.(0) @ taken.(1) @ taken.(2) in
          if List.length acc <> Large_cache.parks cache then
            failwith
              (sprintf "large-cache-churn: %d regions accounted for, %d parks accepted"
                 (List.length acc) (Large_cache.parks cache));
          let rec dup = function
            | a :: (b :: _ as tl) -> a = b || dup tl
            | _ -> false
          in
          if dup (List.sort compare acc) then
            failwith "large-cache-churn: a region surfaced twice (lost ABA tag?)");
  }

(* The thread-exit adoption protocol. Thread 0 fills one superblock on
   its heap completely and retires; [Hoard.on_thread_exit] must adopt
   the full superblock — live blocks and all — into the global heap
   (full superblocks are exactly what the emptiness trim's victim pick
   never returns, so adoption walks the heap instead). Thread 1
   concurrently frees one of thread 0's blocks: its owner snapshot can
   be taken before, during or after the adoption's owner flip,
   exercising the lock_owner re-check against an exiting heap; it then
   refills from the global heap, potentially taking the adopted
   superblock. Filling the superblock completely keeps thread 0's heap
   above the emptiness threshold whatever thread 1 does, so exactly one
   adoption happens on every schedule and the count can be asserted.
   The orphan-lost-superblock mutant drops the adopted superblock on
   the floor — heap accounting loses its live blocks and [Hoard.check]'s
   live-bytes conservation reports it on every schedule. *)
let exit_adoption ~mutant =
  {
    Explorer.sc_name = (if mutant = "" then "exit-adoption" else "exit-adoption-mutant");
    sc_describe =
      (if mutant = "" then
         "a remote free racing thread-exit's orphaned-superblock adoption; passes at every bound"
       else "the orphan-lost-superblock mutant strands the exiting heap's superblock; fails at bound 0");
    sc_nprocs = 2;
    sc_build =
      (fun sim pf ->
        let config = { (race_config ~mutant) with Hoard_config.nheaps = Some 2 } in
        let h = Hoard.create ~config pf in
        let a = Hoard.allocator h in
        let sb_size = config.Hoard_config.sb_size in
        let bsize, cap = pick_class (Hoard.size_classes h) ~sb_size ~min_cap:7 in
        let barrier = Sim.new_barrier sim ~parties:2 in
        let hand = ref 0 in
        let kept = ref [] in
        ignore
          (Sim.spawn sim ~proc:0 (fun () ->
               (* Fill one superblock completely: the heap stays above
                  the emptiness threshold whatever thread 1 frees, so
                  the only way these blocks reach the global heap is the
                  exit path's adoption. *)
               let addrs = Array.init cap (fun _ -> a.Alloc_intf.malloc bsize) in
               hand := addrs.(0);
               kept := Array.to_list (Array.sub addrs 1 (cap - 1));
               Sim.barrier_wait barrier;
               a.Alloc_intf.thread_exit ()));
        ignore
          (Sim.spawn sim ~proc:1 (fun () ->
               Sim.barrier_wait barrier;
               (* Races the adoption: the owner snapshot can be stale by
                  the time the heap lock is acquired. *)
               a.Alloc_intf.free !hand;
               (* Refill from the global heap — possibly with the adopted
                  superblock — then return the block. *)
               let mine = a.Alloc_intf.malloc bsize in
               a.Alloc_intf.free mine));
        fun () ->
          Hoard.check h;
          let s = (Hoard.allocator h).Alloc_intf.stats () in
          if s.Alloc_stats.orphan_adoptions <> 1 then
            failwith
              (sprintf "exit-adoption: %d superblocks adopted, expected exactly 1"
                 s.Alloc_stats.orphan_adoptions);
          List.iter
            (fun addr ->
              let u = a.Alloc_intf.usable_size addr in
              if u < bsize then failwith (sprintf "exit-adoption: survivor block usable %d < %d" u bsize))
            !kept);
  }

(* The lock-free global heap end to end: with [global = Lockfree], heap
   0 is the CAS-published fullness index and every path below runs
   without the heap-0 lock. Thread 0 engineers the transfer-free-race
   setup (two superblocks on the emptiness threshold) and its free
   publishes SB1 — two blocks still live inside — to the index. Thread 1
   frees one of those blocks: its owner snapshot races the publish's
   owner flip, so the free lands either in heap 1 (locked) or on the
   global deferred list; its flush then reclaims through the index's
   Busy handshake. Thread 2 mallocs on an empty heap: its refill
   reclaims the deferred list (racing thread 1's reclaim — the Requeue
   path) and claims SB1 out of the index with the pop/revalidate/claim
   CAS, racing the free throughout. [Hoard.check] — index walk,
   member validation, live-byte conservation — is the post-run oracle. *)
let global_transfer =
  {
    Explorer.sc_name = "global-transfer";
    sc_describe =
      "superblock transfer through the lock-free global index: publish racing claim racing the Busy-handshake free";
    sc_nprocs = 3;
    sc_build =
      (fun sim pf ->
        let config =
          {
            (race_config ~mutant:"") with
            Hoard_config.nheaps = Some 3;
            ngroups = 2;
            global = Hoard_config.Lockfree;
          }
        in
        let h = Hoard.create ~config pf in
        let a = Hoard.allocator h in
        let sb_size = config.Hoard_config.sb_size in
        let bsize, cap = pick_class (Hoard.size_classes h) ~sb_size ~min_cap:7 in
        let barrier = Sim.new_barrier sim ~parties:3 in
        let a_target = ref 0 and b_target = ref 0 in
        ignore
          (Sim.spawn sim ~proc:0 (fun () ->
               (* The transfer-free-race setup: SB1 keeps 2 live blocks
                  (one is thread 1's target), SB2 keeps cap-2, the heap
                  sits exactly on the emptiness threshold. *)
               let addrs = Array.init (2 * cap) (fun _ -> a.Alloc_intf.malloc bsize) in
               let base1 = sb_base ~sb_size addrs.(0) in
               let g1, g2 = Array.to_list addrs |> List.partition (fun x -> sb_base ~sb_size x = base1) in
               if List.length g1 <> cap || List.length g2 <> cap then
                 failwith "global-transfer: allocations did not split 2 superblocks evenly";
               (match g1 with
                | keep :: _ :: rest ->
                  b_target := keep;
                  List.iter a.Alloc_intf.free rest
                | _ -> assert false);
               (match g2 with
                | x :: y :: next :: _ ->
                  a.Alloc_intf.free x;
                  a.Alloc_intf.free y;
                  a_target := next
                | _ -> assert false);
               Sim.barrier_wait barrier;
               (* Crosses the threshold: the trim publishes SB1 to the
                  index with one CAS-published word, no heap-0 lock. *)
               a.Alloc_intf.free !a_target));
        ignore
          (Sim.spawn sim ~proc:1 (fun () ->
               Sim.barrier_wait barrier;
               (* Owner snapshot races the publish: the free lands in
                  heap 1 or on the global deferred list; the flush then
                  reclaims it through the index's Busy handshake. *)
               a.Alloc_intf.free !b_target;
               a.Alloc_intf.flush ()));
        ignore
          (Sim.spawn sim ~proc:2 (fun () ->
               Sim.barrier_wait barrier;
               (* Empty heap: the refill reclaims the deferred list and
                  claims SB1 with the pop/revalidate/claim CAS. *)
               let mine = a.Alloc_intf.malloc bsize in
               a.Alloc_intf.free mine));
        fun () ->
          Hoard.check h;
          for id = 1 to 3 do
            if not (Hoard.invariant_holds h ~heap_id:id) then
              failwith (sprintf "global-transfer: emptiness invariant violated on heap %d" id)
          done);
  }

(* The index's entry stacks driven raw (the lockfree-stack pattern over
   the empties stack): thread 0 publishes three empty superblocks, then
   all three threads race [take_empty] while thread 2 publishes a
   fourth — claim pops and publish pushes CAS-racing on the empties
   head with entry nodes recycling through the free list. The post-run
   oracle is [Global_index.check]'s exhaustive walk plus conservation.
   With the tag frozen (mutant = "global-no-aba", the same flag
   [Hoard.create] wires from [Hoard_config.mutant]), a popper preempted
   between its link load and its head CAS can resume after the top node
   was recycled under a republish and splice a stale tail — the walk
   then finds a node reachable twice or stranded. *)
let global_index_churn ~mutant =
  {
    Explorer.sc_name = (if mutant = "" then "global-index-churn" else "global-index-churn-mutant");
    sc_describe =
      (if mutant = "" then "empty superblocks churning through the global index's tagged entry stacks"
       else "the same churn with the ABA tag frozen; a stale splice corrupts a stack at bound <= 2");
    sc_nprocs = 3;
    sc_build =
      (fun sim pf ->
        let gi =
          Global_index.create pf ~name:"gidx" ~nclasses:1 ~ngroups:2
            ~aba_tag:(mutant <> "global-no-aba") ()
        in
        let sbs =
          Array.init 4 (fun i -> Superblock.create ~base:(i * 4096) ~sb_size:4096 ~sclass:0 ~block_size:512)
        in
        let barrier = Sim.new_barrier sim ~parties:3 in
        let popped = Array.make 3 [] in
        let note p = function None -> () | Some s -> popped.(p) <- s :: popped.(p) in
        ignore
          (Sim.spawn sim ~proc:0 (fun () ->
               Global_index.publish gi sbs.(0);
               Global_index.publish gi sbs.(1);
               Global_index.publish gi sbs.(2);
               Sim.barrier_wait barrier;
               note 0 (Global_index.take_empty gi)));
        ignore
          (Sim.spawn sim ~proc:1 (fun () ->
               Sim.barrier_wait barrier;
               note 1 (Global_index.take_empty gi)));
        ignore
          (Sim.spawn sim ~proc:2 (fun () ->
               Sim.barrier_wait barrier;
               note 2 (Global_index.take_empty gi);
               Global_index.publish gi sbs.(3)));
        fun () ->
          Global_index.check gi;
          let claimed = popped.(0) @ popped.(1) @ popped.(2) in
          (* Entries always outnumber the takers, so every take claims. *)
          if List.length claimed <> 3 then
            failwith (sprintf "global-index-churn: %d takes claimed, expected 3" (List.length claimed));
          let rec dup = function
            | a :: (b :: _ as tl) -> a = b || dup tl
            | _ -> false
          in
          if dup (List.sort compare (List.map Superblock.base claimed)) then
            failwith "global-index-churn: a superblock claimed twice (lost ABA tag?)";
          if Global_index.members gi <> 1 then
            failwith (sprintf "global-index-churn: %d members left, expected 1" (Global_index.members gi)));
  }

(* The claim CAS against the Busy-handshake free, raw: one partial
   member (2 live blocks), two threads freeing one block each through
   [free_block] while a third races [acquire]. The real claim is a CAS
   Idle -> Absent that fails if a reclaimer got the word first; the
   skip-revalidate mutant (the same flag [Hoard.create] wires from
   [Hoard_config.mutant]) claims with a blind store, which can stomp a
   concurrent reclaimer's Busy — the reclaimer's closing store then
   resurrects the word and [Global_index.check] finds a member the
   gauges say was claimed away. *)
let global_index_free ~mutant =
  {
    Explorer.sc_name = (if mutant = "" then "global-index-free" else "global-index-free-mutant");
    sc_describe =
      (if mutant = "" then "frees through the Busy handshake racing an acquire's claim CAS on one member"
       else "the same race claiming with a blind store; it stomps a Busy word at bound <= 2");
    sc_nprocs = 3;
    sc_build =
      (fun sim pf ->
        let gi =
          Global_index.create pf ~name:"gidx" ~nclasses:1 ~ngroups:2
            ~skip_revalidate:(mutant = "global-skip-revalidate") ()
        in
        let sb = Superblock.create ~base:4096 ~sb_size:4096 ~sclass:0 ~block_size:512 in
        let a1 = Superblock.alloc_block sb in
        let a2 = Superblock.alloc_block sb in
        let barrier = Sim.new_barrier sim ~parties:3 in
        let freed = Array.make 3 0 in
        let claimed = ref None in
        (* Requeues and Not_members are legitimate outcomes (a Busy
           holder or a finished claim); only completed frees count. *)
        let free_one p addr =
          match Global_index.free_block gi sb ~addr with
          | Global_index.Freed _ -> freed.(p) <- 1
          | Global_index.Requeue | Global_index.Not_member _ -> ()
        in
        ignore
          (Sim.spawn sim ~proc:0 (fun () ->
               Global_index.publish gi sb;
               Sim.barrier_wait barrier;
               free_one 0 a1));
        ignore
          (Sim.spawn sim ~proc:1 (fun () ->
               Sim.barrier_wait barrier;
               claimed := Global_index.acquire gi ~sclass:0));
        ignore
          (Sim.spawn sim ~proc:2 (fun () ->
               Sim.barrier_wait barrier;
               free_one 2 a2));
        fun () ->
          Global_index.check gi;
          let nfreed = freed.(0) + freed.(2) in
          if Superblock.used sb <> 2 - nfreed then
            failwith
              (sprintf "global-index-free: %d completed frees but %d blocks live" nfreed (Superblock.used sb));
          match !claimed with
          | Some s ->
            if Superblock.base s <> Superblock.base sb then
              failwith "global-index-free: acquire claimed a different superblock";
            if Global_index.members gi <> 0 then
              failwith "global-index-free: claimed superblock still a member"
          | None ->
            if Global_index.members gi <> 1 then
              failwith "global-index-free: unclaimed superblock left the index");
  }

let all () =
  [
    lost_update;
    locked_update;
    transfer_free_race ~mutant:"";
    transfer_free_race ~mutant:"skip-owner-recheck";
    emptiness_trim ~mutant:"";
    emptiness_trim ~mutant:"emptiness-off-by-one";
    registry_churn;
    reservoir_churn;
    lockfree_stack ~mutant:"";
    lockfree_stack ~mutant:"reservoir-no-aba";
    park_take_order ~mutant:"";
    park_take_order ~mutant:"park-before-decommit";
    shelf_transfer;
    deferred_remote_free ~mutant:"";
    deferred_remote_free ~mutant:"deferred-lost-node";
    large_cache_churn ~mutant:"";
    large_cache_churn ~mutant:"large-cache-no-aba";
    exit_adoption ~mutant:"";
    exit_adoption ~mutant:"orphan-lost-superblock";
    global_transfer;
    global_index_churn ~mutant:"";
    global_index_churn ~mutant:"global-no-aba";
    global_index_free ~mutant:"";
    global_index_free ~mutant:"global-skip-revalidate";
  ]

let find name = List.find_opt (fun s -> s.Explorer.sc_name = name) (all ())

let help () =
  all ()
  |> List.map (fun s -> sprintf "  %-26s %s" s.Explorer.sc_name s.Explorer.sc_describe)
  |> String.concat "\n"
