(* Differential allocation oracle: a trivially-correct reference model
   mirrored alongside a real allocator. Every malloc/free/realloc/...
   flowing through the wrapped interface is checked against a live-set
   map (no overlap, usable >= requested, frees of live blocks only) and
   an ideal serial allocator U tracker (peak live bytes, requested and
   usable), which at quiescence yields the paper's blowup test:
   held <= O(U + P-term).

   The oracle's own state is host state behind a host mutex: step-atomic
   on the simulator (so installing it never changes a run's schedule or
   timing) and safe across real domains. Oracle updates happen on the
   caller's side of the allocator call that owns the address (insert
   after malloc returns, remove before free is issued), so the window in
   which another thread could legally reuse the address is empty. *)

exception Oracle_violation of string

module IntMap = Map.Make (Int)

type info = {
  i_req : int; (* requested size *)
  i_usable : int;
  i_tid : int;
  i_virgin : bool; (* address never allocated before this block *)
}

type t = {
  a_name : string;
  line_size : int;
  mu : Mutex.t;
  mutable live : info IntMap.t; (* block start -> info *)
  ever : (int, unit) Hashtbl.t; (* every address ever handed out *)
  mutable u_req : int;
  mutable u_usable : int;
  mutable peak_req : int;
  mutable peak_usable : int;
  mutable n_mallocs : int;
  mutable n_frees : int;
  (* Cache lines the allocator carved for two different threads out of
     fresh (never previously handed out) memory: actively-induced false
     sharing. Reuse of recycled addresses is passively inherited and not
     counted. Lines are counted once. *)
  shared_lines : (int, unit) Hashtbl.t;
  line_tids : (int, int list) Hashtbl.t; (* line -> distinct tids given virgin blocks there *)
}

let fail t fmt = Printf.ksprintf (fun s -> raise (Oracle_violation (Printf.sprintf "oracle[%s]: %s" t.a_name s))) fmt

let create ?(name = "alloc") ?(line_size = 64) () =
  {
    a_name = name;
    line_size;
    mu = Mutex.create ();
    live = IntMap.empty;
    ever = Hashtbl.create 1024;
    u_req = 0;
    u_usable = 0;
    peak_req = 0;
    peak_usable = 0;
    n_mallocs = 0;
    n_frees = 0;
    shared_lines = Hashtbl.create 64;
    line_tids = Hashtbl.create 1024;
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let lines_of t ~addr ~len =
  let first = addr / t.line_size and last = (addr + max 1 len - 1) / t.line_size in
  List.init (last - first + 1) (fun i -> first + i)

(* Caller holds [mu]. *)
let note_insert t ~addr ~req ~usable ~tid =
  (match IntMap.find_last_opt (fun k -> k <= addr) t.live with
   | Some (k, inf) when k + inf.i_usable > addr ->
     fail t "block 0x%x+%d overlaps live block 0x%x+%d" addr usable k inf.i_usable
   | _ -> ());
  (match IntMap.find_first_opt (fun k -> k > addr) t.live with
   | Some (k, inf) when addr + usable > k ->
     fail t "block 0x%x+%d overlaps live block 0x%x+%d" addr usable k inf.i_usable
   | _ -> ());
  if usable < req then fail t "usable %d < requested %d at 0x%x" usable req addr;
  let virgin = not (Hashtbl.mem t.ever addr) in
  Hashtbl.replace t.ever addr ();
  t.live <- IntMap.add addr { i_req = req; i_usable = usable; i_tid = tid; i_virgin = virgin } t.live;
  t.u_req <- t.u_req + req;
  t.u_usable <- t.u_usable + usable;
  if t.u_req > t.peak_req then t.peak_req <- t.u_req;
  if t.u_usable > t.peak_usable then t.peak_usable <- t.u_usable;
  t.n_mallocs <- t.n_mallocs + 1;
  if virgin then
    List.iter
      (fun line ->
        let tids = try Hashtbl.find t.line_tids line with Not_found -> [] in
        if not (List.mem tid tids) then begin
          if tids <> [] then Hashtbl.replace t.shared_lines line ();
          Hashtbl.replace t.line_tids line (tid :: tids)
        end)
      (lines_of t ~addr ~len:usable)

(* Caller holds [mu]. *)
let note_remove t ~addr ~what =
  match IntMap.find_opt addr t.live with
  | None -> fail t "%s of address 0x%x that is not a live block" what addr
  | Some inf ->
    t.live <- IntMap.remove addr t.live;
    t.u_req <- t.u_req - inf.i_req;
    t.u_usable <- t.u_usable - inf.i_usable;
    t.n_frees <- t.n_frees + 1;
    inf

(* Undo a [note_remove] whose allocator-side operation raised before
   taking effect (a realloc rejected up front): the block is still live.
   Caller holds [mu]. *)
let note_restore t ~addr inf =
  t.live <- IntMap.add addr inf t.live;
  t.u_req <- t.u_req + inf.i_req;
  t.u_usable <- t.u_usable + inf.i_usable;
  t.n_frees <- t.n_frees - 1

let live_count t = locked t (fun () -> IntMap.cardinal t.live)

let live_usable_bytes t = locked t (fun () -> t.u_usable)

let peak_usable_bytes t = locked t (fun () -> t.peak_usable)

let peak_requested_bytes t = locked t (fun () -> t.peak_req)

let active_shared_lines t = locked t (fun () -> Hashtbl.length t.shared_lines)

let wrap ?name ?(line_size = 64) (pf : Platform.t) (a : Alloc_intf.t) =
  let t = create ?name:(Some (Option.value name ~default:a.Alloc_intf.name)) ~line_size () in
  let tid () = pf.Platform.self_tid () in
  let insert ~addr ~req =
    let usable = a.Alloc_intf.usable_size addr in
    locked t (fun () -> note_insert t ~addr ~req ~usable ~tid:(tid ()))
  in
  let wrapped =
    {
      a with
      Alloc_intf.malloc =
        (fun size ->
          let addr = a.Alloc_intf.malloc size in
          insert ~addr ~req:size;
          addr);
      free =
        (fun addr ->
          ignore (locked t (fun () -> note_remove t ~addr ~what:"free"));
          a.Alloc_intf.free addr);
      realloc =
        (fun ~addr ~size ->
          let inf = locked t (fun () -> note_remove t ~addr ~what:"realloc") in
          (match a.Alloc_intf.realloc ~addr ~size with
           | fresh ->
             insert ~addr:fresh ~req:size;
             fresh
           | exception e ->
             (* Rejected up front (e.g. size 0): the old block survives. *)
             locked t (fun () -> note_restore t ~addr inf);
             raise e));
      calloc =
        (fun ~count ~size ->
          let addr = a.Alloc_intf.calloc ~count ~size in
          insert ~addr ~req:(count * size);
          addr);
      aligned_alloc =
        (fun ~align ~size ->
          let addr = a.Alloc_intf.aligned_alloc ~align ~size in
          if addr mod align <> 0 then fail t "aligned_alloc(%d) returned unaligned 0x%x" align addr;
          insert ~addr ~req:size;
          addr);
      malloc_batch =
        (fun n size ->
          let addrs = a.Alloc_intf.malloc_batch n size in
          Array.iter (fun addr -> insert ~addr ~req:size) addrs;
          addrs);
      free_batch =
        (fun addrs ->
          Array.iter (fun addr -> ignore (locked t (fun () -> note_remove t ~addr ~what:"free"))) addrs;
          a.Alloc_intf.free_batch addrs);
      check =
        (fun () ->
          a.Alloc_intf.check ();
          let s = a.Alloc_intf.stats () in
          locked t (fun () ->
              (* Blocks parked in front-end caches or the sanitizer
                 quarantine keep the allocator's live bytes above the
                 program's; it must never fall below. *)
              if s.Alloc_stats.live_bytes < t.u_usable then
                fail t "allocator live bytes %d below the program's %d" s.Alloc_stats.live_bytes t.u_usable));
    }
  in
  (t, wrapped)

(* The quiescent envelope for the paper's blowup bound. [slop] is the
   caller-computed P-term: superblock slack, release threshold, cache and
   queue capacities — everything the configuration permits beyond
   O(U). The factor 2/(1-f) over peak usable U is the superblock
   worst case: at most half a superblock is lost to header + carving
   waste (the S/2 size class), and a heap may be up to f empty. *)
let check_blowup t ~(stats : Alloc_stats.snapshot) ~empty_fraction ~slop =
  let u = peak_usable_bytes t in
  let bound = int_of_float (2.0 *. float_of_int u /. (1.0 -. empty_fraction)) + slop in
  if stats.Alloc_stats.peak_held_bytes > bound then
    fail t "blowup: peak held %d bytes exceeds bound %d (U_usable=%d, slop=%d)"
      stats.Alloc_stats.peak_held_bytes bound u slop

(* The memory-lifecycle invariant: resident (committed) bytes never
   exceed what the heaps hold plus the reservoir's worst case of R
   still-committed parked superblocks — a parked superblock missing its
   decommit, or a drop that skipped its unmap, breaks this. *)
let check_residency t ~(stats : Alloc_stats.snapshot) ~reservoir ~sb_size =
  let cap = reservoir * sb_size in
  if stats.Alloc_stats.reservoir_bytes > cap then
    fail t "reservoir holds %d bytes, above its capacity %d (R=%d x S=%d)"
      stats.Alloc_stats.reservoir_bytes cap reservoir sb_size;
  if stats.Alloc_stats.resident_bytes > stats.Alloc_stats.held_bytes + cap then
    fail t "resident %d bytes exceeds held %d + reservoir capacity %d"
      stats.Alloc_stats.resident_bytes stats.Alloc_stats.held_bytes cap;
  if reservoir = 0 && (stats.Alloc_stats.reservoir_bytes <> 0 || stats.Alloc_stats.reservoir_parks <> 0) then
    fail t "reservoir disabled yet %d bytes parked across %d parks"
      stats.Alloc_stats.reservoir_bytes stats.Alloc_stats.reservoir_parks

let final_check ?expect_quiescent_equality t ~(stats : Alloc_stats.snapshot) =
  locked t (fun () ->
      let sum_req = IntMap.fold (fun _ i acc -> acc + i.i_req) t.live 0 in
      let sum_usable = IntMap.fold (fun _ i acc -> acc + i.i_usable) t.live 0 in
      if sum_req <> t.u_req || sum_usable <> t.u_usable then
        fail t "internal accounting drift (req %d/%d, usable %d/%d)" sum_req t.u_req sum_usable t.u_usable;
      match expect_quiescent_equality with
      | Some true ->
        if stats.Alloc_stats.live_bytes <> t.u_usable then
          fail t "at quiescence allocator live bytes %d <> program live %d" stats.Alloc_stats.live_bytes
            t.u_usable
      | _ ->
        if stats.Alloc_stats.live_bytes < t.u_usable then
          fail t "allocator live bytes %d below the program's %d" stats.Alloc_stats.live_bytes t.u_usable)
