(* Stateless schedule exploration on top of Sim's controlled mode.

   A run is driven by a *schedule*: the list of processors chosen at the
   decision points (steps where more than one processor could go next and
   a context switch is admissible). The explorer replays a scenario under
   schedule prefixes, extends each run with a deterministic default
   policy, and enumerates alternatives Chess-style: the default never
   preempts (it keeps running the current processor until it blocks,
   spins or finishes, considering switches only after synchronisation
   steps), and alternatives that switch away from a still-runnable
   processor spend one unit of the preemption bound. Processors whose
   next step is a doomed lock-acquire retry are never schedulable (Sim
   reports them separately), which keeps the tree finite.

   The Sleep_dfs strategy adds sleep sets: once a choice has been
   explored at a node, it is put to sleep for the node's later siblings
   and pruned at any decision until a dependent step (one touching an
   overlapping cache line with at least one write, or the same lock)
   wakes it. Dependence is computed from the step footprints Sim
   reports. Caveat: communication through plain host state (OCaml refs
   not mirrored by Sim.read/write) is invisible to footprints, so
   sleep-set pruning is only sound for scenarios whose shared state is
   simulated memory or locks; Chess does not prune and has no such
   requirement. *)

type scenario = {
  sc_name : string;
  sc_describe : string;
  sc_nprocs : int;
  sc_build : Sim.t -> Platform.t -> (unit -> unit);
}

type strategy = Chess | Sleep_dfs

type failure = {
  f_schedule : int list;
  f_message : string;
  f_minimize_runs : int;
}

type outcome = {
  o_runs : int;
  o_truncated : bool;
  o_failure : failure option;
}

(* Footprint of one executed step, for dependence tests. *)
type fp = { p_sync : string option; p_reads : int list; p_writes : int list }

let fp_of_report (r : Sim.step_report) = { p_sync = r.sr_sync; p_reads = r.sr_reads; p_writes = r.sr_writes }

let conflicts a b =
  (match (a.p_sync, b.p_sync) with
   | Some x, Some y -> x = y
   | _ -> false)
  || List.exists (fun l -> List.mem l b.p_writes) a.p_writes
  || List.exists (fun l -> List.mem l b.p_writes) a.p_reads
  || List.exists (fun l -> List.mem l a.p_writes) b.p_reads

(* One recorded decision of a run. *)
type decision = {
  d_step : int; (* Sim step index the decision chose for *)
  d_runnable : int list;
  d_last : int option; (* processor of the previous step *)
  d_preemptible : bool; (* the previous processor was still a legal choice *)
  d_chosen : int;
  d_preempts_before : int; (* preemptions among decisions before this one *)
  d_sleep : (int * fp) list; (* active sleep set when the decision was taken *)
}

type run_result = {
  rr_decisions : decision list; (* in order *)
  rr_reports : (int, fp) Hashtbl.t; (* step index -> footprint *)
  rr_failed : string option;
}

(* Execute the scenario once: follow [prefix] at decision points, then
   the default policy. [sleep0] seeds the sleep set (Sleep_dfs); entries
   wake when a dependent step executes. *)
let run_once ?(max_steps = 500_000) sc ~prefix ~sleep0 =
  let decisions = ref [] in
  let reports = Hashtbl.create 256 in
  let sleep = ref sleep0 in
  let todo = ref prefix in
  let last_proc = ref None in
  let preempts = ref 0 in
  let control (ch : Sim.choice) =
    (match ch.Sim.ch_last with
     | Some r ->
       let f = fp_of_report r in
       Hashtbl.replace reports r.Sim.sr_step f;
       last_proc := Some r.Sim.sr_proc;
       sleep := List.filter (fun (_, sf) -> not (conflicts f sf)) !sleep
     | None -> ());
    let runnable = ch.Sim.ch_runnable in
    match runnable with
    | [ p ] -> p
    | _ ->
      let last = !last_proc in
      let last_runnable =
        match last with
        | Some p -> List.mem p runnable
        | None -> false
      in
      let switch_point =
        match ch.Sim.ch_last with
        | None -> true
        | Some r -> r.Sim.sr_sync <> None || not last_runnable
      in
      if not switch_point then Option.get last
      else begin
        let default = if last_runnable then Option.get last else List.hd runnable in
        let chosen =
          match !todo with
          | want :: rest when List.mem want runnable ->
            todo := rest;
            want
          | _ :: rest ->
            (* Divergence (possible during minimization trials): drop the
               stale entry and continue with the default. *)
            todo := rest;
            default
          | [] -> default
        in
        decisions :=
          {
            d_step = ch.Sim.ch_step;
            d_runnable = runnable;
            d_last = last;
            d_preemptible = last_runnable;
            d_chosen = chosen;
            d_preempts_before = !preempts;
            d_sleep = !sleep;
          }
          :: !decisions;
        if last_runnable && chosen <> Option.get last then incr preempts;
        chosen
      end
  in
  let failed =
    try
      let sim = Sim.create ~control ~nprocs:sc.sc_nprocs () in
      let pf = Sim.platform sim in
      let check = sc.sc_build sim pf in
      Sim.run ~max_steps sim;
      check ();
      None
    with
    | Sim.Deadlock msg -> Some (Printf.sprintf "deadlock: %s" msg)
    | e -> Some (Printexc.to_string e)
  in
  { rr_decisions = List.rev !decisions; rr_reports = reports; rr_failed = failed }

let schedule_to_string s = String.concat "," (List.map string_of_int s)

let schedule_of_string str =
  match String.trim str with
  | "" -> []
  | str -> List.map (fun tok -> int_of_string (String.trim tok)) (String.split_on_char ',' str)

let replay ?max_steps sc ~schedule =
  let r = run_once ?max_steps sc ~prefix:schedule ~sleep0:[] in
  match r.rr_failed with
  | None -> Ok ()
  | Some msg -> Error msg

(* Shrink a failing schedule: first truncate to the shortest failing
   prefix, then greedily drop single decisions. Every trial is one run;
   [budget] bounds them. *)
let minimize ?max_steps sc ~schedule ~budget =
  let trials = ref 0 in
  let fails s =
    if !trials >= budget then false
    else begin
      incr trials;
      match replay ?max_steps sc ~schedule:s with
      | Ok () -> false
      | Error _ -> true
    end
  in
  let arr = Array.of_list schedule in
  let n = Array.length arr in
  let best = ref schedule in
  (try
     for k = 0 to n - 1 do
       let cand = Array.to_list (Array.sub arr 0 k) in
       if fails cand then begin
         best := cand;
         raise Exit
       end
     done
   with Exit -> ());
  let changed = ref true in
  while !changed && !trials < budget do
    changed := false;
    let cur = Array.of_list !best in
    let m = Array.length cur in
    (try
       for i = 0 to m - 1 do
         let cand = Array.to_list (Array.append (Array.sub cur 0 i) (Array.sub cur (i + 1) (m - i - 1))) in
         if fails cand then begin
           best := cand;
           changed := true;
           raise Exit
         end
       done
     with Exit -> ())
  done;
  (!best, !trials)

type job = { j_prefix : int list; j_expand_from : int; j_sleep0 : (int * fp) list }

let explore ?(strategy = Chess) ?(bound = 2) ?(max_runs = 10_000) ?max_steps ?(minimize_budget = 300) sc =
  let runs = ref 0 in
  let truncated = ref false in
  let failure = ref None in
  let stack = ref [ { j_prefix = []; j_expand_from = 0; j_sleep0 = [] } ] in
  while !failure = None && !stack <> [] && not !truncated do
    match !stack with
    | [] -> ()
    | job :: rest ->
      stack := rest;
      if !runs >= max_runs then truncated := true
      else begin
        incr runs;
        let r = run_once ?max_steps sc ~prefix:job.j_prefix ~sleep0:job.j_sleep0 in
        match r.rr_failed with
        | Some msg ->
          let full = List.map (fun d -> d.d_chosen) r.rr_decisions in
          let shrunk, trials = minimize ?max_steps sc ~schedule:full ~budget:minimize_budget in
          failure := Some { f_schedule = shrunk; f_message = msg; f_minimize_runs = trials }
        | None ->
          (* Expand alternatives at decisions past the inherited prefix
             (earlier ones belong to ancestors). Push in reverse so the
             leftmost alternative is explored first (depth-first). *)
          let ds = Array.of_list r.rr_decisions in
          let chosen_prefix i = List.filteri (fun j _ -> j < i) (List.map (fun d -> d.d_chosen) r.rr_decisions) in
          for i = Array.length ds - 1 downto job.j_expand_from do
            let d = ds.(i) in
            let sleeping p = strategy = Sleep_dfs && List.mem_assoc p d.d_sleep in
            List.iter
              (fun a ->
                if a <> d.d_chosen && not (sleeping a) then begin
                  let extra = if d.d_preemptible then 1 else 0 in
                  if d.d_preempts_before + extra <= bound then begin
                    let sleep0 =
                      if strategy <> Sleep_dfs then []
                      else begin
                        (* The explored choice at this node goes to sleep
                           for this sibling, with the footprint of the
                           step it performed. *)
                        match Hashtbl.find_opt r.rr_reports d.d_step with
                        | Some f -> (d.d_chosen, f) :: d.d_sleep
                        | None -> d.d_sleep
                      end
                    in
                    stack := { j_prefix = chosen_prefix i @ [ a ]; j_expand_from = i + 1; j_sleep0 = sleep0 } :: !stack
                  end
                end)
              (List.rev d.d_runnable)
          done
      end
  done;
  { o_runs = !runs; o_truncated = !truncated; o_failure = !failure }
