(** Schedule explorer: bounded, systematic interleaving enumeration on
    top of {!Sim}'s controlled-scheduling mode.

    A *schedule* is the list of processors chosen at decision points
    (steps where several processors are runnable and a context switch is
    admissible: after a synchronisation step, or when the running
    processor blocked). Runs follow a schedule prefix and extend it with
    a deterministic non-preemptive default, so any failing run is
    replayable from its (minimized) decision list — the "seed" printed on
    violation. *)

type scenario = {
  sc_name : string;
  sc_describe : string;
  sc_nprocs : int;
  sc_build : Sim.t -> Platform.t -> (unit -> unit);
      (** Builds the scenario on a fresh machine (spawn threads, at most
          one per processor) and returns the post-run check; the check
          and any thread may raise to signal a violation. *)
}

(** [Chess]: exhaustive bounded-preemption enumeration (Musuvathi &
    Qadeer's iterative context bounding): all schedules reachable with at
    most [bound] preemptions, no pruning.

    [Sleep_dfs]: the same tree with sleep-set pruning — an explored
    choice sleeps for its later siblings until a dependent step (shared
    cache line with a write, or the same lock) wakes it. Sound only when
    threads communicate through simulated memory and locks; host-state
    side channels are invisible to footprints. *)
type strategy = Chess | Sleep_dfs

type failure = {
  f_schedule : int list;  (** minimized failing schedule *)
  f_message : string;  (** the violation (exception text) *)
  f_minimize_runs : int;  (** replays spent minimizing *)
}

type outcome = {
  o_runs : int;  (** interleavings executed (excluding minimization) *)
  o_truncated : bool;  (** stopped at [max_runs] before exhausting *)
  o_failure : failure option;
}

val explore :
  ?strategy:strategy ->
  ?bound:int ->
  ?max_runs:int ->
  ?max_steps:int ->
  ?minimize_budget:int ->
  scenario ->
  outcome
(** Enumerates admissible interleavings of the scenario up to [bound]
    preemptions (default 2), stopping at the first violation (returned
    minimized) or after [max_runs] runs (default 10_000; sets
    [o_truncated]). Deterministic. *)

val replay : ?max_steps:int -> scenario -> schedule:int list -> (unit, string) result
(** One run under the given schedule (default policy past its end);
    [Error message] if it violates. *)

val schedule_to_string : int list -> string
(** Comma-separated, e.g. ["1,0,1"] — the replayable seed format. *)

val schedule_of_string : string -> int list
(** Inverse of {!schedule_to_string}. Raises [Failure] on bad input. *)
