let header_bytes = 64

type t = {
  sb_base : int;
  size : int;
  mutable bsize : int;
  mutable cls : int;
  mutable cap : int; (* blocks at current block size *)
  mutable used_blocks : int;
  mutable carved : int; (* blocks handed out at least once (bump frontier) *)
  mutable free_head : int; (* head of LIFO free list, -1 when empty *)
  next_free : int array; (* free-list links, indexed by block number *)
  live : Bytes.t; (* allocation bitmap, one byte per block *)
  (* Front-end custody bitmap: set while a freed (or fill-surplus) block
     sits in a thread cache or remote-free queue, cleared when it returns
     to the program (cache hit) or the heap core (drain). Lets ANY thread
     detect a double free of a block cached by ANOTHER thread in O(1) —
     a per-thread membership scan can't. Same write discipline as [live]:
     single-byte stores, owned by whichever thread holds the block. *)
  cached : Bytes.t;
  mutable own : int;
  mutable grp : int;
  mutable node : t Dlist.node option;
  (* Slot id in the lock-free global index, assigned once on the
     superblock's first publication there and stable for its lifetime
     (reformat keeps it: the slot is identity, not membership). -1 until
     first published. *)
  mutable gslot : int;
}

let capacity_for size bsize = (size - header_bytes) / bsize

let create ~base ~sb_size ~sclass ~block_size =
  if base mod sb_size <> 0 then invalid_arg "Superblock.create: base not aligned";
  if block_size < 8 || block_size > sb_size - header_bytes then invalid_arg "Superblock.create: bad block_size";
  let max_cap = capacity_for sb_size 8 in
  {
    sb_base = base;
    size = sb_size;
    bsize = block_size;
    cls = sclass;
    cap = capacity_for sb_size block_size;
    used_blocks = 0;
    carved = 0;
    free_head = -1;
    next_free = Array.make max_cap (-1);
    live = Bytes.make max_cap '\000';
    cached = Bytes.make max_cap '\000';
    own = -1;
    grp = -1;
    node = None;
    gslot = -1;
  }

let base t = t.sb_base

let sb_size t = t.size

let block_size t = t.bsize

let sclass t = t.cls

let n_blocks t = t.cap

let used t = t.used_blocks

let fullness t = float_of_int t.used_blocks /. float_of_int t.cap

let is_empty t = t.used_blocks = 0

let is_full t = t.used_blocks = t.cap

let owner t = t.own

let set_owner t o = t.own <- o

let addr_of_index t i = t.sb_base + header_bytes + (i * t.bsize)

let index_of_addr t addr =
  let off = addr - t.sb_base - header_bytes in
  if off < 0 || off >= t.cap * t.bsize then invalid_arg "Superblock: address outside block area";
  if off mod t.bsize <> 0 then invalid_arg "Superblock: address not at a block boundary";
  off / t.bsize

let contains t addr =
  let off = addr - t.sb_base - header_bytes in
  off >= 0 && off < t.cap * t.bsize

let alloc_block t =
  let i =
    if t.free_head >= 0 then begin
      let i = t.free_head in
      t.free_head <- t.next_free.(i);
      i
    end
    else if t.carved < t.cap then begin
      let i = t.carved in
      t.carved <- i + 1;
      i
    end
    else failwith "Superblock.alloc_block: full"
  in
  assert (Bytes.get t.live i = '\000');
  Bytes.set t.live i '\001';
  t.used_blocks <- t.used_blocks + 1;
  addr_of_index t i

let free_block t addr =
  let i = index_of_addr t addr in
  if i >= t.carved then invalid_arg "Superblock.free_block: block never allocated";
  if Bytes.get t.live i = '\000' then failwith "Superblock.free_block: double free";
  Bytes.set t.live i '\000';
  t.next_free.(i) <- t.free_head;
  t.free_head <- i;
  t.used_blocks <- t.used_blocks - 1

let is_block_live t addr =
  let i = index_of_addr t addr in
  i < t.carved && Bytes.get t.live i = '\001'

let mark_cached t addr = Bytes.set t.cached (index_of_addr t addr) '\001'

let clear_cached t addr = Bytes.set t.cached (index_of_addr t addr) '\000'

let is_block_cached t addr = Bytes.get t.cached (index_of_addr t addr) = '\001'

type region =
  | Header
  | Block of { b_start : int; b_index : int; b_live : bool }
  | Tail_waste

let locate t addr =
  let off = addr - t.sb_base in
  if off < 0 || off >= t.size then invalid_arg "Superblock.locate: address outside superblock";
  if off < header_bytes then Header
  else
    let boff = off - header_bytes in
    let i = boff / t.bsize in
    if i >= t.cap then Tail_waste
    else
      Block
        {
          b_start = addr_of_index t i;
          b_index = i;
          b_live = (i < t.carved && Bytes.get t.live i = '\001');
        }

let reinit t ~sclass ~block_size =
  if t.used_blocks > 0 then failwith "Superblock.reinit: superblock not empty";
  if block_size < 8 || block_size > t.size - header_bytes then invalid_arg "Superblock.reinit: bad block_size";
  t.bsize <- block_size;
  t.cls <- sclass;
  t.cap <- capacity_for t.size block_size;
  t.carved <- 0;
  t.free_head <- -1

(* Reservoir reuse: unlike [reinit] (same-heap recycling, where owner and
   group are about to be overwritten by the caller anyway), a superblock
   leaving the reservoir may land in any heap and any size class, and its
   pages were decommitted in between — so scrub everything: format for the
   new class, sever ownership/grouping, and clear the free-list links the
   way a recommit hands back zeroed pages. *)
let reformat t ~sclass ~block_size =
  if t.used_blocks > 0 then failwith "Superblock.reformat: superblock not empty";
  if block_size < 8 || block_size > t.size - header_bytes then
    invalid_arg "Superblock.reformat: bad block_size";
  t.bsize <- block_size;
  t.cls <- sclass;
  t.cap <- capacity_for t.size block_size;
  t.carved <- 0;
  t.free_head <- -1;
  t.own <- -1;
  t.grp <- -1;
  t.node <- None;
  Array.fill t.next_free 0 (Array.length t.next_free) (-1);
  Bytes.fill t.live 0 (Bytes.length t.live) '\000';
  Bytes.fill t.cached 0 (Bytes.length t.cached) '\000'

let gslot t = t.gslot

let set_gslot t i = t.gslot <- i

let group_index t = t.grp

let set_group t g node =
  t.grp <- g;
  t.node <- node

let group_node t = t.node

let check t =
  if t.used_blocks < 0 || t.used_blocks > t.cap then failwith "Superblock.check: used out of range";
  if t.carved < 0 || t.carved > t.cap then failwith "Superblock.check: carved out of range";
  let live = ref 0 in
  for i = 0 to t.carved - 1 do
    if Bytes.get t.live i = '\001' then incr live
  done;
  for i = t.carved to t.cap - 1 do
    if Bytes.get t.live i = '\001' then failwith "Superblock.check: live block beyond bump frontier"
  done;
  if !live <> t.used_blocks then failwith "Superblock.check: bitmap/used mismatch";
  for i = 0 to t.cap - 1 do
    if Bytes.get t.cached i = '\001' && Bytes.get t.live i <> '\001' then
      failwith "Superblock.check: cached block not live"
  done;
  (* Free-list nodes must be carved, dead and non-repeating. *)
  let seen = Bytes.make t.cap '\000' in
  let rec walk i n =
    if i >= 0 then begin
      if i >= t.carved then failwith "Superblock.check: free list beyond frontier";
      if Bytes.get t.live i = '\001' then failwith "Superblock.check: live block on free list";
      if Bytes.get seen i = '\001' then failwith "Superblock.check: free-list cycle";
      Bytes.set seen i '\001';
      if n > t.cap then failwith "Superblock.check: free list too long";
      walk t.next_free.(i) (n + 1)
    end
  in
  walk t.free_head 0;
  let free_len = ref 0 in
  for i = 0 to t.cap - 1 do
    if Bytes.get seen i = '\001' then incr free_len
  done;
  if !free_len <> t.carved - t.used_blocks then failwith "Superblock.check: free-list length mismatch"
